(* One recorder, many domains: each domain that enters a span gets its own
   state (depth counter + completed-span list) keyed by its domain id, so
   recording never contends across domains beyond the find-or-create
   lookup. [spans] merges the per-domain lists into one timeline; on a
   single-domain recorder it degrades to the historical completion order
   exactly. *)

type span = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
  tid : int;
}

type dstate = {
  tid : int;
  mutable depth : int;
  mutable closed : span list; (* most recently completed first *)
}

type t = {
  clock : unit -> int64;
  epoch_ns : int64;
  lock : Mutex.t;
  states : (int, dstate) Hashtbl.t;
}

let create ?(clock = Monotonic_clock.now) () =
  { clock; epoch_ns = clock (); lock = Mutex.create (); states = Hashtbl.create 4 }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let state t =
  let tid = (Domain.self () :> int) in
  locked t (fun () ->
      match Hashtbl.find_opt t.states tid with
      | Some s -> s
      | None ->
        let s = { tid; depth = 0; closed = [] } in
        Hashtbl.replace t.states tid s;
        s)

let with_span t ?(cat = "default") name f =
  let st = state t in
  (* [st] is only ever mutated by its own domain; the lock above just
     guards the find-or-create. *)
  let start_ns = t.clock () in
  let depth = st.depth in
  st.depth <- depth + 1;
  Fun.protect
    ~finally:(fun () ->
      st.depth <- depth;
      let dur = Int64.sub (t.clock ()) start_ns in
      let dur_ns = if Int64.compare dur 0L < 0 then 0L else dur in
      st.closed <- { name; cat; start_ns; dur_ns; depth; tid = st.tid } :: st.closed)
    f

let end_ns s = Int64.add s.start_ns s.dur_ns

(* Deterministic timeline order: completion time, then start, then domain
   and name as tie-breakers. A single domain's list is already in
   completion order (monotonic clock), so the sort is the identity there. *)
let merge_order a b =
  let c = Int64.compare (end_ns a) (end_ns b) in
  if c <> 0 then c
  else
    let c = Int64.compare a.start_ns b.start_ns in
    if c <> 0 then c
    else
      let c = compare a.tid b.tid in
      if c <> 0 then c else compare (a.cat, a.name) (b.cat, b.name)

let all_states t = locked t (fun () -> Hashtbl.fold (fun _ s acc -> s :: acc) t.states [])

let spans t =
  match all_states t with
  | [] -> []
  | [ s ] -> List.rev s.closed
  | states ->
    List.concat_map (fun s -> List.rev s.closed) states |> List.sort merge_order

let count t = List.fold_left (fun acc s -> acc + List.length s.closed) 0 (all_states t)

let aggregate t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let calls, total =
        match Hashtbl.find_opt tbl (s.cat, s.name) with
        | Some (c, tot) -> (c, tot)
        | None -> (0, 0L)
      in
      Hashtbl.replace tbl (s.cat, s.name) (calls + 1, Int64.add total s.dur_ns))
    (spans t);
  Hashtbl.fold (fun (cat, name) (calls, total_ns) acc -> (cat, name, calls, total_ns) :: acc) tbl []
  |> List.sort compare

let by_category t =
  let all = spans t in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (s : span) ->
      (* Only top-level spans of each category — and nesting is a
         per-domain notion, so only spans of the same domain can contain
         this one. A nested span of the same category would double-count
         its parent's time. *)
      let nested_same_cat =
        List.exists
          (fun (p : span) ->
            p.tid = s.tid && p.cat = s.cat && p.depth < s.depth
            && Int64.compare p.start_ns s.start_ns <= 0
            && Int64.compare (end_ns s) (end_ns p) <= 0)
          all
      in
      if not nested_same_cat then
        let total = Option.value ~default:0L (Hashtbl.find_opt tbl s.cat) in
        Hashtbl.replace tbl s.cat (Int64.add total s.dur_ns))
    all;
  Hashtbl.fold (fun cat total acc -> (cat, total) :: acc) tbl [] |> List.sort compare

let us_of_ns ns = Int64.to_int (Int64.div ns 1000L)

(* Chrome trace_event format: an object with a "traceEvents" array of "X"
   (complete) events; chrome://tracing and Perfetto load it directly.
   Timestamps are microseconds relative to the recorder's creation; each
   recording domain renders as its own "tid" lane, so a pooled run shows
   the worker domains side by side. *)
let to_chrome_json t =
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.name);
            ("cat", Json.Str s.cat);
            ("ph", Json.Str "X");
            ("ts", Json.Int (us_of_ns (Int64.sub s.start_ns t.epoch_ns)));
            ("dur", Json.Int (us_of_ns s.dur_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int s.tid);
          ])
      (spans t)
  in
  Json.Obj [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]
