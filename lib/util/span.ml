type span = {
  name : string;
  cat : string;
  start_ns : int64;
  dur_ns : int64;
  depth : int;
}

type t = {
  clock : unit -> int64;
  epoch_ns : int64;
  mutable depth : int;
  mutable closed : span list; (* most recently completed first *)
}

let create ?(clock = Monotonic_clock.now) () =
  { clock; epoch_ns = clock (); depth = 0; closed = [] }

let with_span t ?(cat = "default") name f =
  let start_ns = t.clock () in
  let depth = t.depth in
  t.depth <- depth + 1;
  Fun.protect
    ~finally:(fun () ->
      t.depth <- depth;
      let dur = Int64.sub (t.clock ()) start_ns in
      let dur_ns = if Int64.compare dur 0L < 0 then 0L else dur in
      t.closed <- { name; cat; start_ns; dur_ns; depth } :: t.closed)
    f

let spans t = List.rev t.closed

let count t = List.length t.closed

let aggregate t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let calls, total =
        match Hashtbl.find_opt tbl (s.cat, s.name) with
        | Some (c, tot) -> (c, tot)
        | None -> (0, 0L)
      in
      Hashtbl.replace tbl (s.cat, s.name) (calls + 1, Int64.add total s.dur_ns))
    t.closed;
  Hashtbl.fold (fun (cat, name) (calls, total_ns) acc -> (cat, name, calls, total_ns) :: acc) tbl []
  |> List.sort compare

let by_category t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun s ->
      (* Only top-level spans of each category: a nested span of the same
         category would double-count its parent's time. *)
      let nested_same_cat =
        List.exists
          (fun p ->
            p.cat = s.cat && p.depth < s.depth
            && Int64.compare p.start_ns s.start_ns <= 0
            && Int64.compare (Int64.add s.start_ns s.dur_ns) (Int64.add p.start_ns p.dur_ns) <= 0)
          t.closed
      in
      if not nested_same_cat then
        let total = Option.value ~default:0L (Hashtbl.find_opt tbl s.cat) in
        Hashtbl.replace tbl s.cat (Int64.add total s.dur_ns))
    t.closed;
  Hashtbl.fold (fun cat total acc -> (cat, total) :: acc) tbl [] |> List.sort compare

let us_of_ns ns = Int64.to_int (Int64.div ns 1000L)

(* Chrome trace_event format: an object with a "traceEvents" array of "X"
   (complete) events; chrome://tracing and Perfetto load it directly.
   Timestamps are microseconds relative to the recorder's creation. *)
let to_chrome_json t =
  let events =
    List.map
      (fun s ->
        Json.Obj
          [
            ("name", Json.Str s.name);
            ("cat", Json.Str s.cat);
            ("ph", Json.Str "X");
            ("ts", Json.Int (us_of_ns (Int64.sub s.start_ns t.epoch_ns)));
            ("dur", Json.Int (us_of_ns s.dur_ns));
            ("pid", Json.Int 1);
            ("tid", Json.Int 1);
          ])
      (spans t)
  in
  Json.Obj [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]
