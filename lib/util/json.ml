type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string

(* ------------------------------------------------------------ printing *)

let escape b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec write b ~indent ~level v =
  let pad n = if indent then Buffer.add_string b (String.make (2 * n) ' ') in
  let sep () = if indent then Buffer.add_string b "\n" in
  match v with
  | Null -> Buffer.add_string b "null"
  | Bool x -> Buffer.add_string b (if x then "true" else "false")
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float f ->
    if not (Float.is_finite f) then Buffer.add_string b "null"
    else Buffer.add_string b (float_repr f)
  | Str s ->
    Buffer.add_char b '"';
    escape b s;
    Buffer.add_char b '"'
  | Arr [] -> Buffer.add_string b "[]"
  | Arr xs ->
    Buffer.add_char b '[';
    sep ();
    List.iteri
      (fun i x ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        write b ~indent ~level:(level + 1) x)
      xs;
    sep ();
    pad level;
    Buffer.add_char b ']'
  | Obj [] -> Buffer.add_string b "{}"
  | Obj kvs ->
    Buffer.add_char b '{';
    sep ();
    List.iteri
      (fun i (k, x) ->
        if i > 0 then begin
          Buffer.add_char b ',';
          sep ()
        end;
        pad (level + 1);
        Buffer.add_char b '"';
        escape b k;
        Buffer.add_string b "\": ";
        write b ~indent ~level:(level + 1) x)
      kvs;
    sep ();
    pad level;
    Buffer.add_char b '}'

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  write b ~indent:pretty ~level:0 v;
  Buffer.contents b

(* ------------------------------------------------------------- parsing *)

type state = { s : string; mutable pos : int }

let fail st msg = raise (Parse_error (st.pos, msg))

let peek st = if st.pos < String.length st.s then Some st.s.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.s
    && match st.s.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some x when x = c -> st.pos <- st.pos + 1
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word v =
  let n = String.length word in
  if st.pos + n <= String.length st.s && String.sub st.s st.pos n = word then begin
    st.pos <- st.pos + n;
    v
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    if st.pos >= String.length st.s then fail st "unterminated string";
    let c = st.s.[st.pos] in
    st.pos <- st.pos + 1;
    if c = '"' then Buffer.contents b
    else if c = '\\' then begin
      if st.pos >= String.length st.s then fail st "unterminated escape";
      let e = st.s.[st.pos] in
      st.pos <- st.pos + 1;
      (match e with
      | '"' -> Buffer.add_char b '"'
      | '\\' -> Buffer.add_char b '\\'
      | '/' -> Buffer.add_char b '/'
      | 'b' -> Buffer.add_char b '\b'
      | 'f' -> Buffer.add_char b '\012'
      | 'n' -> Buffer.add_char b '\n'
      | 'r' -> Buffer.add_char b '\r'
      | 't' -> Buffer.add_char b '\t'
      | 'u' ->
        if st.pos + 4 > String.length st.s then fail st "bad \\u escape";
        let hex = String.sub st.s st.pos 4 in
        st.pos <- st.pos + 4;
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
        in
        (* Encode as UTF-8; surrogate pairs are not recombined (we never
           emit them ourselves). *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail st "unknown escape");
      go ()
    end
    else begin
      Buffer.add_char b c;
      go ()
    end
  in
  go ()

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  while st.pos < String.length st.s && is_num_char st.s.[st.pos] do
    st.pos <- st.pos + 1
  done;
  let text = String.sub st.s start (st.pos - start) in
  match int_of_string_opt text with
  | Some i -> Int i
  | None -> (
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '"' -> Str (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some '[' ->
    expect st '[';
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      Arr []
    end
    else begin
      let acc = ref [] in
      let rec items () =
        acc := parse_value st :: !acc;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items ()
        | Some ']' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or ']'"
      in
      items ();
      Arr (List.rev !acc)
    end
  | Some '{' ->
    expect st '{';
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let acc = ref [] in
      let rec items () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        acc := (k, v) :: !acc;
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items ()
        | Some '}' -> st.pos <- st.pos + 1
        | _ -> fail st "expected ',' or '}'"
      in
      items ();
      Obj (List.rev !acc)
    end
  | Some _ -> parse_number st

let parse s =
  let st = { s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

(* ------------------------------------------------------------ accessors *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None

let to_list = function Arr xs -> Some xs | _ -> None

let to_int = function Int i -> Some i | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_float = function Float f -> Some f | Int i -> Some (float_of_int i) | _ -> None

let to_str = function Str s -> Some s | _ -> None
