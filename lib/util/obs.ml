let schema = "colayout/obs/v1"

type snapshot = {
  seq : int;
  ts_ns : int64;
  label : string;
  fields : (string * Json.t) list;
}

type t = {
  clock : unit -> int64;
  capacity : int;
  ring : snapshot option array;
  mutable next_seq : int;
  mutable count : int; (* snapshots currently resident in the ring *)
  mutable dropped : int;
  mutable stream : (string -> unit) option;
  lock : Mutex.t;
}

let create ?(capacity = 256) ?(clock = Metrics.default_clock) () =
  if capacity <= 0 then invalid_arg "Obs.create: capacity must be positive";
  {
    clock;
    capacity;
    ring = Array.make capacity None;
    next_seq = 0;
    count = 0;
    dropped = 0;
    stream = None;
    lock = Mutex.create ();
  }

let capacity t = t.capacity

let set_stream t f = Mutex.protect t.lock (fun () -> t.stream <- f)

let snapshot_json s =
  Json.Obj
    (("schema", Json.Str schema)
    :: ("seq", Json.Int s.seq)
    :: ("ts_ns", Json.Int (Int64.to_int s.ts_ns))
    :: ("label", Json.Str s.label)
    :: s.fields)

let record t ~label fields =
  let line =
    Mutex.protect t.lock (fun () ->
        let s = { seq = t.next_seq; ts_ns = t.clock (); label; fields } in
        t.next_seq <- t.next_seq + 1;
        (* Drop-oldest: the ring keeps the tail of the series, and [dropped]
           owns up to the head that fell off. *)
        if t.count = t.capacity then t.dropped <- t.dropped + 1
        else t.count <- t.count + 1;
        t.ring.(s.seq mod t.capacity) <- Some s;
        match t.stream with
        | None -> None
        | Some f -> Some (f, Json.to_string (snapshot_json s)))
  in
  (* Stream outside the lock: a slow writer must not block recorders. *)
  match line with None -> () | Some (f, l) -> f l

let snapshots t =
  Mutex.protect t.lock (fun () ->
      let first = t.next_seq - t.count in
      List.init t.count (fun i ->
          match t.ring.((first + i) mod t.capacity) with
          | Some s -> s
          | None -> assert false))

let recorded t = Mutex.protect t.lock (fun () -> t.next_seq)

let dropped t = Mutex.protect t.lock (fun () -> t.dropped)

let to_jsonl t =
  snapshots t |> List.map (fun s -> Json.to_string (snapshot_json s)) |> String.concat "\n"

(* ---------------- field builders ---------------- *)

let metrics_fields m =
  let hist (name, h) =
    ( name,
      Json.Obj
        [
          ("count", Json.Int (Metrics.observations h));
          ("p50_ns", Json.Float (Metrics.percentile h 0.50));
          ("p95_ns", Json.Float (Metrics.percentile h 0.95));
          ("p99_ns", Json.Float (Metrics.percentile h 0.99));
        ] )
  in
  [
    ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Metrics.counters m)));
    ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (Metrics.gauges m)));
    ("histograms", Json.Obj (List.map hist (Metrics.histograms m)));
  ]

let gc_fields () =
  let s = Gc.quick_stat () in
  [
    ( "gc",
      Json.Obj
        [
          ("minor_words", Json.Float s.Gc.minor_words);
          ("major_words", Json.Float s.Gc.major_words);
          ("promoted_words", Json.Float s.Gc.promoted_words);
          ("minor_collections", Json.Int s.Gc.minor_collections);
          ("major_collections", Json.Int s.Gc.major_collections);
          ("compactions", Json.Int s.Gc.compactions);
          ("heap_words", Json.Int s.Gc.heap_words);
        ] );
  ]
