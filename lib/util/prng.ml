type t = {
  mutable state : int64;
  (* Per-instance (n, s) -> CDF memo for [zipf]. A pure cache of a
     deterministic function of the key, so it never influences drawn
     sequences — but it must live inside [t]: a process-global table would
     be shared mutable state across otherwise isolated PRNG instances (and
     a data race under Domain-parallel use). *)
  zipf_tables : (int * float, float array) Hashtbl.t;
}

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed; zipf_tables = Hashtbl.create 4 }

(* The copy gets a fresh (empty) memo: caches are derived data, and sharing
   the table would couple the two instances through hidden mutable state. *)
let copy t = { state = t.state; zipf_tables = Hashtbl.create 4 }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed64 = next_int64 t in
  { state = mix seed64; zipf_tables = Hashtbl.create 4 }

let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Mask to 62 bits before [to_int]: [Int64.to_int] truncates modulo 2^63,
     so a 63-bit value could come out negative. *)
  let r = Int64.to_int (Int64.logand (next_int64 t) 0x3FFF_FFFF_FFFF_FFFFL) in
  r mod bound

let int_in t ~lo ~hi =
  if hi < lo then invalid_arg "Prng.int_in: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  (* 53 high-quality bits -> [0,1). *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  float_of_int bits *. (1.0 /. 9007199254740992.0)

let bool t ~p = float t < p

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose: empty array";
  a.(int t (Array.length a))

let geometric t ~p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Prng.geometric";
  if p >= 1.0 then 0
  else
    let u = float t in
    (* Inverse CDF; [u < 1] so [log1p (-.u)] is finite. *)
    int_of_float (floor (log1p (-.u) /. log1p (-.p)))

let zipf t ~n ~s =
  if n <= 0 then invalid_arg "Prng.zipf";
  (* Rejection-inversion would be overkill for the block counts we use;
     inverse-transform over the explicit harmonic CDF is exact and the
     tables are tiny relative to trace sizes. A per-(n,s) memo avoids
     recomputing the CDF on every draw. *)
  let key = (n, s) in
  let cdf =
    match Hashtbl.find_opt t.zipf_tables key with
    | Some c -> c
    | None ->
      let weights = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
      let total = Array.fold_left ( +. ) 0.0 weights in
      let acc = ref 0.0 in
      let c =
        Array.map
          (fun w ->
            acc := !acc +. (w /. total);
            !acc)
          weights
      in
      Hashtbl.replace t.zipf_tables key c;
      c
  in
  let u = float t in
  (* Binary search for the first index with cdf >= u. *)
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo
