(** Doubly-linked list with externally held nodes.

    This is the "link list" of the paper's §II-F stack processing: the LRU
    stack is a linked list so that move-to-front is O(1), and a hash table
    maps a code block to its node for O(1) search (mirroring the Linux-kernel
    page-list technique the authors cite). *)

type 'a t

type 'a node

val create : unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val value : 'a node -> 'a

val push_front : 'a t -> 'a -> 'a node

val push_back : 'a t -> 'a -> 'a node

val remove : 'a t -> 'a node -> unit
(** O(1). @raise Invalid_argument if the node was already removed or belongs
    to a different list. *)

val move_to_front : 'a t -> 'a node -> unit

val clear : 'a t -> unit
(** Empty the list, detaching every node (O(n)). Externally held handles
    to removed nodes become invalid, as after {!remove}. *)

val front : 'a t -> 'a node option

val back : 'a t -> 'a node option

val next : 'a node -> 'a node option
(** Toward the back. *)

val prev : 'a node -> 'a node option

val iter : ('a -> unit) -> 'a t -> unit
(** Front to back. *)

val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val to_list : 'a t -> 'a list
