(* Open addressing with linear probing over two parallel int arrays.
   [empty] marks a never-used slot (probe sequences stop there), [tomb] a
   deleted one (probe sequences continue through it). Both sentinels are
   negative, which is why client keys must be non-negative. *)

let () = assert (Sys.int_size >= 63)

let max_coord = (1 lsl 31) - 1

let pack x y = (x lsl 31) lor y

let fst_of k = k lsr 31

let snd_of k = k land max_coord

let empty = -1

let tomb = -2

type t = {
  mutable keys : int array;
  mutable vals : int array;
  mutable mask : int; (* capacity - 1; capacity is a power of two *)
  mutable len : int; (* live bindings *)
  mutable used : int; (* live bindings + tombstones *)
}

let rec next_pow2 n k = if k >= n then k else next_pow2 n (k * 2)

let create ?(capacity = 16) () =
  if capacity < 0 then invalid_arg "Int_pair_tbl.create";
  (* Size for a <= 3/4 load factor at the hinted entry count. *)
  let cap = next_pow2 (max 8 (capacity + (capacity / 2))) 8 in
  { keys = Array.make cap empty; vals = Array.make cap 0; mask = cap - 1; len = 0; used = 0 }

let length t = t.len

(* splitmix64-style finalizer: full avalanche, so linear probing behaves even
   on the highly regular packed-pair keys. *)
let hash k =
  let h = k lxor (k lsr 33) in
  let h = h * 0x2545F4914F6CDD1D in
  h lxor (h lsr 29)

(* Slot holding [key], or -1 when absent. *)
let find_slot t key =
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i =
    let k = Array.unsafe_get keys i in
    if k = key then i else if k = empty then -1 else probe ((i + 1) land mask)
  in
  probe (hash key land mask)

let check_key key = if key < 0 then invalid_arg "Int_pair_tbl: negative key"

let mem t key = key >= 0 && find_slot t key >= 0

let find t key ~default =
  if key < 0 then default
  else
    let i = find_slot t key in
    if i < 0 then default else Array.unsafe_get t.vals i

let find_opt t key =
  if key < 0 then None
  else
    let i = find_slot t key in
    if i < 0 then None else Some (Array.unsafe_get t.vals i)

(* Insert [key -> v] into arrays known to contain no tombstone for [key] and
   to have room; used for both resizing and the post-lookup insert. *)
let rec insert_fresh keys vals mask key v i =
  let k = Array.unsafe_get keys i in
  if k = empty || k = tomb then begin
    Array.unsafe_set keys i key;
    Array.unsafe_set vals i v
  end
  else insert_fresh keys vals mask key v ((i + 1) land mask)

let resize t =
  (* Double when genuinely full; a same-size rebuild just clears tombstones. *)
  let cap = next_pow2 (max 8 (2 * (t.len + 1))) 8 in
  let keys = Array.make cap empty in
  let vals = Array.make cap 0 in
  let mask = cap - 1 in
  let old_keys = t.keys and old_vals = t.vals in
  for i = 0 to Array.length old_keys - 1 do
    let k = Array.unsafe_get old_keys i in
    if k >= 0 then insert_fresh keys vals mask k (Array.unsafe_get old_vals i) (hash k land mask)
  done;
  t.keys <- keys;
  t.vals <- vals;
  t.mask <- mask;
  t.used <- t.len

let maybe_grow t =
  let cap = t.mask + 1 in
  if t.used + 1 > cap - (cap / 4) then resize t

(* Probe for [key]; on a hit set the slot to [merge old], on a miss insert
   [if_absent] (reusing the first tombstone seen). Returns the stored value.
   This single probe sequence backs both [replace] and [add_to]. *)
let upsert t key ~if_absent ~merge =
  check_key key;
  maybe_grow t;
  let mask = t.mask in
  let keys = t.keys in
  let rec probe i first_tomb =
    let k = Array.unsafe_get keys i in
    if k = key then begin
      let v = merge (Array.unsafe_get t.vals i) in
      Array.unsafe_set t.vals i v;
      v
    end
    else if k = empty then begin
      let slot = if first_tomb >= 0 then first_tomb else i in
      Array.unsafe_set keys slot key;
      Array.unsafe_set t.vals slot if_absent;
      t.len <- t.len + 1;
      if slot = i then t.used <- t.used + 1;
      if_absent
    end
    else if k = tomb && first_tomb < 0 then probe ((i + 1) land mask) i
    else probe ((i + 1) land mask) first_tomb
  in
  probe (hash key land mask) (-1)

let replace t key v = ignore (upsert t key ~if_absent:v ~merge:(fun _ -> v))

let add_to t key delta = upsert t key ~if_absent:delta ~merge:(fun old -> old + delta)

let remove t key =
  if key >= 0 then begin
    let i = find_slot t key in
    if i >= 0 then begin
      t.keys.(i) <- tomb;
      t.vals.(i) <- 0;
      t.len <- t.len - 1
    end
  end

let iter f t =
  let keys = t.keys and vals = t.vals in
  for i = 0 to Array.length keys - 1 do
    let k = Array.unsafe_get keys i in
    if k >= 0 then f k (Array.unsafe_get vals i)
  done

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Array.fill t.keys 0 (Array.length t.keys) empty;
  t.len <- 0;
  t.used <- 0
