(** Fixed-size domain pool with a shared work queue.

    A pool owns [jobs] worker domains (default
    [Domain.recommended_domain_count () - 1], at least 1). With
    [~jobs:1] no domains are spawned at all: {!map} and {!run_all}
    degrade to plain sequential iteration on the caller's domain, so a
    single-job pool adds no threading machinery to the code path.

    Determinism contract: {!map} gathers results into an index-addressed
    array and returns them in input order, whatever order the workers
    completed them in. If several tasks raise, the exception of the
    {e lowest-indexed} failing task is re-raised on the caller's domain
    (with its original backtrace, via [Printexc.raise_with_backtrace]) —
    the same exception a sequential run would have surfaced first.

    Pools are single-consumer: submit batches from one domain at a time.
    Submitting from inside a pool task ({e nested use}) is rejected with
    [Invalid_argument] rather than deadlocking. *)

type t

val create : ?jobs:int -> ?metrics:Metrics.t -> unit -> t
(** [jobs] defaults to [Domain.recommended_domain_count () - 1] (min 1);
    values < 1 raise [Invalid_argument]. When [metrics] is given, each
    worker domain records its task count and busy nanoseconds into a
    private per-domain registry; completed batches fold those deltas into
    [metrics] with {!Metrics.merge} as [pool.tasks], [pool.busy_ns] and
    per-worker [pool.worker.<i>.tasks]. *)

val jobs : t -> int
(** The parallelism width, including the [jobs = 1] no-domain case. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every element, in parallel across the pool's workers;
    results come back in input order. Blocks the calling domain until the
    whole batch is done. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val run_all : t -> (unit -> unit) list -> unit
(** [run_all t fs] runs every thunk to completion (in parallel), raising
    the lowest-indexed failure, if any. *)

val shutdown : t -> unit
(** Stop and join the worker domains, folding any pending per-domain
    metric deltas. Idempotent; the pool must not be used afterwards. *)

val with_pool : ?jobs:int -> ?metrics:Metrics.t -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (exception-safe). *)
