(** Work-stealing domain pool.

    A pool owns [jobs] worker domains (default {!default_jobs}). With
    [~jobs:1] no domains are spawned at all: {!map} and {!run_all}
    degrade to plain sequential iteration on the caller's domain, so a
    single-job pool adds no threading machinery to the code path.

    Scheduling: a batch of [n] tasks is pre-split into [jobs] contiguous
    index ranges — one per worker, the same block split a fixed-chunk
    scheduler would commit to — but the split is only a starting
    assignment. Each range is a lock-free cell; the owning worker takes
    task indices from its bottom, and a worker whose own range is empty
    steals single tasks from the top of another worker's range. Skewed
    batches (a few expensive tasks among many cheap ones — the shape
    heterogeneous candidate evaluations produce) therefore rebalance onto
    idle workers instead of serializing behind one domain.

    Determinism contract: {!map} gathers results into an index-addressed
    array and returns them in input order, whatever order — and on
    whichever worker — the tasks completed. If several tasks raise, the
    exception of the {e lowest-indexed} failing task is re-raised on the
    caller's domain (with its original backtrace, via
    [Printexc.raise_with_backtrace]) — the same exception a sequential
    run would have surfaced first. Stealing moves {e where} a task runs,
    never what it computes, so results are bit-identical at any jobs
    count for pure task functions.

    Pools are single-consumer: submit batches from one domain at a time.
    Submitting from inside a pool task ({e nested use}) is rejected with
    [Invalid_argument] rather than deadlocking. *)

type t

val default_jobs : unit -> int
(** [max 1 (Domain.recommended_domain_count () - 1)] — the pool's own
    default width, exposed so CLIs and benches resolve "machine width"
    identically instead of re-deriving it. *)

val create : ?jobs:int -> ?metrics:Metrics.t -> unit -> t
(** [jobs] defaults to {!default_jobs}; values < 1 raise
    [Invalid_argument]. When [metrics] is given, each worker domain
    records its task count, busy nanoseconds and steal count into a
    private per-domain registry; completed batches fold those deltas into
    [metrics] with {!Metrics.merge} as [pool.tasks], [pool.busy_ns],
    [pool.steals] and per-worker [pool.worker.<i>.tasks] /
    [pool.worker.<i>.steals]. *)

val jobs : t -> int
(** The parallelism width, including the [jobs = 1] no-domain case. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every element, in parallel across the pool's workers;
    results come back in input order. Blocks the calling domain until the
    whole batch is done. *)

val map_array : t -> ('a -> 'b) -> 'a array -> 'b array

val map_array_w : t -> (worker:int -> 'a -> 'b) -> 'a array -> 'b array
(** Like {!map_array}, but [f] also receives the index of the worker
    executing the task: a stable id in [0, jobs) ([0] on the [jobs = 1]
    inline path), unique per domain within a batch. This is the hook for
    per-worker state — e.g. one lazily-built engine clone per worker,
    reused across every task and batch that lands on it — without keying
    anything off task indices, which stealing redistributes. [f] must
    not depend on {e which} worker runs a task (only use [worker] to
    pick private scratch), or results stop being schedule-invariant. *)

val run_all : t -> (unit -> unit) list -> unit
(** [run_all t fs] runs every thunk to completion (in parallel), raising
    the lowest-indexed failure, if any. *)

val shutdown : t -> unit
(** Stop and join the worker domains, folding any pending per-domain
    metric deltas. Idempotent; the pool must not be used afterwards. *)

val with_pool : ?jobs:int -> ?metrics:Metrics.t -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (exception-safe). *)
