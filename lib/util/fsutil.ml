let rec mkdir_p dir =
  if dir = "" || dir = "." || dir = "/" || Sys.file_exists dir then ()
  else begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end
