(** Deterministic splitmix64 pseudo-random number generator.

    Every stochastic choice in the repository (workload generation,
    data-dependent branches, sampling) goes through an explicitly seeded
    [Prng.t] so that traces, experiments and tests are bit-reproducible.
    The global [Random] state is never used. *)

type t

val create : seed:int -> t

val copy : t -> t

val split : t -> t
(** Derive an independent stream; the parent advances. *)

val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> lo:int -> hi:int -> int
(** Uniform in the inclusive range [[lo, hi]]. *)

val float : t -> float
(** Uniform in [[0, 1)]. *)

val bool : t -> p:float -> bool
(** True with probability [p]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val geometric : t -> p:float -> int
(** Number of failures before the first success, [p] in (0,1]. *)

val zipf : t -> n:int -> s:float -> int
(** Zipf-distributed rank in [[0, n)] with exponent [s]; used to give
    synthetic workloads the skewed hot/cold block popularity that real
    programs show. The per-[(n, s)] CDF memo lives inside [t] — no state
    is shared between instances. *)
