(** Flat open-addressing hash table from non-negative [int] keys to [int]
    values, specialised for the analysis kernels' pair-indexed counters.

    The generic [Hashtbl] keyed by [(int * int)] tuples pays a boxed tuple
    allocation per probe plus the polymorphic hash on every access, and one
    bucket-cell allocation per insert. This table stores keys and values in
    two parallel [int array]s — no allocation on any operation except a
    capacity doubling — and hashes with a splitmix64-style integer mixer.

    Pair keys are packed as [(x lsl 31) lor y], so each coordinate must lie
    in [[0, 2^31)] ({!max_coord}); the packed key then fits a 63-bit native
    int with the sign bit clear. Callers guard their symbol universe once
    (e.g. [Trg.build] raises [Invalid_argument] when
    [num_symbols > max_coord]) and pack/unpack for free afterwards.

    Negative keys are reserved for the implementation's empty/tombstone
    sentinels and are rejected. *)

type t

val max_coord : int
(** [2^31 - 1]: the largest value either pair coordinate may take. *)

val pack : int -> int -> int
(** [pack x y = (x lsl 31) lor y]. Unchecked: both must be in
    [[0, max_coord]]. *)

val fst_of : int -> int
(** First coordinate of a packed key. *)

val snd_of : int -> int
(** Second coordinate of a packed key. *)

val create : ?capacity:int -> unit -> t
(** [capacity] is a hint for the number of expected entries. *)

val length : t -> int
(** Number of live bindings. O(1). *)

val mem : t -> int -> bool

val find : t -> int -> default:int -> int
(** The bound value, or [default] when absent. Never allocates. *)

val find_opt : t -> int -> int option

val replace : t -> int -> int -> unit
(** Insert or overwrite. @raise Invalid_argument on a negative key. *)

val add_to : t -> int -> int -> int
(** [add_to t key delta] adds [delta] to the binding of [key] (treating an
    absent key as bound to [0]), stores the sum and returns it. One probe
    sequence for the read-modify-write. *)

val remove : t -> int -> unit
(** No-op when absent. Leaves a tombstone; slots are reclaimed on the next
    resize. *)

val iter : (int -> int -> unit) -> t -> unit
(** [iter f t] applies [f key value] to every live binding, in unspecified
    order. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a

val clear : t -> unit
(** Drop all bindings, keeping the current capacity. *)
