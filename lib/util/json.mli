(** Minimal JSON tree: build, print, parse.

    Small on purpose — just what the observability layer (metrics snapshots,
    Chrome trace export, bench manifests) and its validators need. Integers
    are kept distinct from floats so counters round-trip exactly. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Parse_error of int * string
(** Position (byte offset) and message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize; [pretty] (default false) adds newlines and 2-space indent.
    Non-finite floats print as [null]. *)

val parse : string -> t
(** @raise Parse_error on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Object field lookup; [None] on non-objects and missing keys. *)

val to_list : t -> t list option

val to_int : t -> int option

val to_bool : t -> bool option

val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_str : t -> string option
