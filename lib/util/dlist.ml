type 'a node = {
  value : 'a;
  mutable prev : 'a node option;
  mutable next : 'a node option;
  mutable owner : 'a t option;
}

and 'a t = {
  mutable first : 'a node option;
  mutable last : 'a node option;
  mutable size : int;
}

let create () = { first = None; last = None; size = 0 }

let length t = t.size

let is_empty t = t.size = 0

let value n = n.value

let check_owner t n =
  match n.owner with
  | Some o when o == t -> ()
  | _ -> invalid_arg "Dlist: node does not belong to this list"

let push_front t v =
  let n = { value = v; prev = None; next = t.first; owner = Some t } in
  (match t.first with
  | Some f -> f.prev <- Some n
  | None -> t.last <- Some n);
  t.first <- Some n;
  t.size <- t.size + 1;
  n

let push_back t v =
  let n = { value = v; prev = t.last; next = None; owner = Some t } in
  (match t.last with
  | Some l -> l.next <- Some n
  | None -> t.first <- Some n);
  t.last <- Some n;
  t.size <- t.size + 1;
  n

let remove t n =
  check_owner t n;
  (match n.prev with
  | Some p -> p.next <- n.next
  | None -> t.first <- n.next);
  (match n.next with
  | Some s -> s.prev <- n.prev
  | None -> t.last <- n.prev);
  n.prev <- None;
  n.next <- None;
  n.owner <- None;
  t.size <- t.size - 1

let move_to_front t n =
  check_owner t n;
  let already_front = match t.first with Some f -> f == n | None -> false in
  if not already_front then begin
    (* Unlink in place and relink at the front so that external handles to
       [n] (the hash table in stack processing) stay valid. *)
    (match n.prev with
    | Some p -> p.next <- n.next
    | None -> t.first <- n.next);
    (match n.next with
    | Some s -> s.prev <- n.prev
    | None -> t.last <- n.prev);
    n.prev <- None;
    n.next <- t.first;
    (match t.first with
    | Some f -> f.prev <- Some n
    | None -> t.last <- Some n);
    t.first <- Some n
  end

let clear t =
  (* O(n): unlink every node and clear its owner so stale external handles
     fail [check_owner] instead of silently corrupting a reused list. *)
  let rec loop = function
    | None -> ()
    | Some n ->
      let next = n.next in
      n.prev <- None;
      n.next <- None;
      n.owner <- None;
      loop next
  in
  loop t.first;
  t.first <- None;
  t.last <- None;
  t.size <- 0

let front t = t.first

let back t = t.last

let next n = n.next

let prev n = n.prev

let iter f t =
  let rec loop = function
    | None -> ()
    | Some n ->
      f n.value;
      loop n.next
  in
  loop t.first

let fold f acc t =
  let acc = ref acc in
  iter (fun v -> acc := f !acc v) t;
  !acc

let to_list t = List.rev (fold (fun acc v -> v :: acc) [] t)
