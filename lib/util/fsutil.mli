val mkdir_p : string -> unit
(** Create a directory and all missing parents ([mkdir -p]). No-op when it
    already exists; races with concurrent creators are tolerated. *)
