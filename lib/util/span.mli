(** Nested monotonic-clock spans with Chrome [trace_event] export.

    A recorder is a plain value (one per harness [Ctx] or bench run —
    never process-global). {!with_span} brackets a computation; spans may
    nest arbitrarily and are recorded with their nesting depth, so the
    exported trace reconstructs the flame graph. Durations are clamped
    non-negative. *)

type span = {
  name : string;
  cat : string;  (** Category, e.g. ["optimizer"], ["cache-sim"]. *)
  start_ns : int64;  (** Raw clock reading (relative to nothing). *)
  dur_ns : int64;  (** >= 0. *)
  depth : int;  (** Nesting depth at entry; 0 = top level. *)
}

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** Default clock: the monotonic nanosecond clock. Injectable for
    deterministic tests. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span; exception-safe (the span is closed
    and recorded, then the exception re-raised). *)

val spans : t -> span list
(** Completed spans in completion order. *)

val count : t -> int

val aggregate : t -> (string * string * int * int64) list
(** [(cat, name, calls, total_ns)] per distinct span, sorted. *)

val by_category : t -> (string * int64) list
(** Total nanoseconds per category, counting only spans not nested inside
    another span of the same category (no double-counting). *)

val to_chrome_json : t -> Json.t
(** Chrome [trace_event] JSON ({["traceEvents"]} array of ["X"] complete
    events, timestamps in microseconds since recorder creation); loadable
    by chrome://tracing and Perfetto. *)
