(** Nested monotonic-clock spans with Chrome [trace_event] export.

    A recorder is a plain value (one per harness [Ctx] or bench run —
    never process-global). {!with_span} brackets a computation; spans may
    nest arbitrarily and are recorded with their nesting depth, so the
    exported trace reconstructs the flame graph. Durations are clamped
    non-negative.

    One recorder may be driven from many domains at once: each domain
    records into its own lane (nesting depth is per-domain), and the
    accessors merge the lanes into a single deterministic timeline —
    the Chrome export shows one ["tid"] track per recording domain. *)

type span = {
  name : string;
  cat : string;  (** Category, e.g. ["optimizer"], ["cache-sim"]. *)
  start_ns : int64;  (** Raw clock reading (relative to nothing). *)
  dur_ns : int64;  (** >= 0. *)
  depth : int;  (** Nesting depth at entry {e on its domain}; 0 = top level. *)
  tid : int;  (** Id of the domain that recorded the span. *)
}

type t

val create : ?clock:(unit -> int64) -> unit -> t
(** Default clock: the monotonic nanosecond clock. Injectable for
    deterministic tests. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** Run the thunk inside a named span; exception-safe (the span is closed
    and recorded, then the exception re-raised). *)

val spans : t -> span list
(** Completed spans in completion order. With several recording domains,
    the per-domain lanes are merged by (end time, start time, domain id) —
    a deterministic total order that coincides with completion order on a
    single domain. *)

val count : t -> int

val aggregate : t -> (string * string * int * int64) list
(** [(cat, name, calls, total_ns)] per distinct span, sorted. *)

val by_category : t -> (string * int64) list
(** Total nanoseconds per category, counting only spans not nested inside
    another same-domain span of the same category (no double-counting). *)

val to_chrome_json : t -> Json.t
(** Chrome [trace_event] JSON ({["traceEvents"]} array of ["X"] complete
    events, timestamps in microseconds since recorder creation); loadable
    by chrome://tracing and Perfetto. *)
