(** Named counters, gauges and timers in an explicit registry.

    The registry is a plain value — no process-global state — so each
    {e handle} (a harness [Ctx], a benchmark run, a test) owns its own
    metrics and two runs can never bleed into each other. Counter handles
    are cached by the caller for hot paths; [add]/[set_gauge] are the
    convenience forms. Snapshots serialize to JSON
    (schema [colayout/metrics/v1]) with deterministically sorted keys.

    A registry is domain-safe: counters and gauges are atomics (an [incr]
    from any domain is never lost, so invariants like hits + misses =
    lookups survive parallel fan-out), and the registry's own tables and
    timers sit behind a mutex. Per-domain {e delta} registries can be
    folded into one with {!merge}. *)

type t

type counter

type gauge

type histogram
(** Fixed-bucket latency histogram: samples land in one of 62 binary-
    magnitude buckets ([2^i, 2^(i+1)); bucket 0 also takes 0), counted
    with atomics so any domain can [observe] concurrently. Negative
    samples clamp to 0. *)

val create : ?clock:(unit -> int64) -> unit -> t
(** [clock] (nanoseconds, monotonic) is used by {!time}; injectable for
    deterministic tests. *)

val default_clock : unit -> int64
(** The monotonic nanosecond clock {!create} defaults to — exported for
    callers that wall-clock whole phases rather than single thunks. *)

val counter : t -> string -> counter
(** Find-or-create; the handle stays valid for the registry's lifetime. *)

val incr : ?by:int -> counter -> unit

val count : counter -> int

val add : t -> string -> int -> unit
(** [add t name by] = [incr ~by (counter t name)]. *)

val gauge : t -> string -> gauge

val set : gauge -> float -> unit

val set_gauge : t -> string -> float -> unit

val histogram : t -> string -> histogram
(** Find-or-create; the handle stays valid for the registry's lifetime. *)

val observe : histogram -> int -> unit

val observe_ns : t -> string -> int -> unit
(** [observe_ns t name v] = [observe (histogram t name) v]. *)

val observations : histogram -> int

val hist_total : histogram -> int
(** Sum of every observed sample (post clamping). *)

val percentile : histogram -> float -> float
(** [percentile h p] with [p] in [0, 1] (clamped): the upper bound of the
    bucket holding the rank-[ceil p*n] sample — deterministic, stable
    under {!merge}, within a factor of two of the true order statistic.
    0.0 on an empty histogram. *)

val time : t -> string -> (unit -> 'a) -> 'a
(** Run the thunk under the named timer (accumulates call count and total
    nanoseconds); exception-safe. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

val gauges : t -> (string * float) list

val timers : t -> (string * int * int64) list
(** [(name, calls, total_ns)], sorted by name. *)

val histograms : t -> (string * histogram) list
(** Sorted by name. *)

val find_counter : t -> string -> int option

val reset : t -> unit
(** Zero every counter, gauge and timer in place; existing handles remain
    attached to their (now zeroed) cells. *)

val merge : into:t -> t -> unit
(** Fold a (typically per-domain) delta registry into [into]: counter
    counts, timer calls/nanoseconds and histogram buckets {e add} (merging
    N worker deltas in any order yields one total, preserving
    hits + misses = lookups and pooled-sample percentiles), gauges — level
    readings — are overwritten with the source value. Zero-valued source
    cells still create no entries in [into]. *)

val to_json : t -> Json.t
