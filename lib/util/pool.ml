(* Work-stealing domain pool. A pool owns [jobs] persistent worker
   domains. A batch ([map_array] / [map_array_w]) is an index range
   [0, n): it is pre-split into [jobs] contiguous per-worker ranges (the
   same block split the old fixed-chunk scheduler used as its *final*
   assignment), but here the split is only the starting point — each
   range lives in a single lock-free cell, the owning worker takes task
   indices from its bottom and any worker that drains its own range
   steals from the top of another's. Skewed batches (a few expensive
   tasks among many cheap ones) therefore rebalance dynamically instead
   of pinning the heavy tail to one domain.

   Determinism is unaffected by who runs what: every task writes its
   outcome into an index-addressed slot of the batch's result array, so
   collection order never depends on scheduling. jobs = 1 spawns nothing
   and runs batches inline on the caller. *)

type outcome = Pending | Ok_done | Raised of exn * Printexc.raw_backtrace

type worker_stats = {
  w_metrics : Metrics.t;
  tasks : Metrics.counter; (* this worker's share *)
  total : Metrics.counter; (* "pool.tasks": summed across workers by merge *)
  busy_ns : Metrics.counter;
  steals : Metrics.counter; (* tasks this worker took from another's range *)
  steals_total : Metrics.counter; (* "pool.steals": summed by merge *)
}

(* One live batch. [run idx w] executes task [idx] on worker [w]
   (outcome capture, metrics and completion accounting are all inside —
   it never raises). [ranges.(w)] packs the worker's remaining index
   interval [lo, hi) as [(lo lsl 31) lor hi]: both bounds move by CAS on
   the one cell, so owner-take (lo+1) and steal (hi-1) linearize without
   locks, and an interval only ever shrinks — no ABA. *)
type batch = { run : int -> int -> unit; ranges : int Atomic.t array }

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t; (* a new batch arrived, or the pool is stopping *)
  batch_done : Condition.t;
  mutable batch : batch option; (* the in-flight batch, if any *)
  mutable gen : int; (* bumped per installed batch; workers sleep on it *)
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  worker_ids : Domain.id list ref;
  stats : worker_stats array; (* one slot per worker; empty when jobs = 1 *)
  sink : Metrics.t option; (* merge target for per-domain deltas *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

(* Packed-range helpers. 31 bits per bound keeps the pack inside a 63-bit
   OCaml int; batches beyond 2^31 tasks are rejected at submission. *)
let range_limit = 1 lsl 31

let pack lo hi = (lo lsl 31) lor hi

let take_own r =
  let rec go () =
    let v = Atomic.get r in
    let lo = v lsr 31 and hi = v land (range_limit - 1) in
    if lo >= hi then -1
    else if Atomic.compare_and_set r v (pack (lo + 1) hi) then lo
    else go ()
  in
  go ()

let steal_top r =
  let rec go () =
    let v = Atomic.get r in
    let lo = v lsr 31 and hi = v land (range_limit - 1) in
    if lo >= hi then -1
    else if Atomic.compare_and_set r v (pack lo (hi - 1)) then hi - 1
    else go ()
  in
  go ()

(* Drain one batch from worker [w]'s point of view: own range first, then
   scan the other ranges (starting past [w] so thieves spread out) and
   steal from their top. Work within a batch only ever shrinks, so a scan
   that finds every range empty is final for this worker. *)
let drain_batch (b : batch) w ws =
  let jobs = Array.length b.ranges in
  let next () =
    match take_own b.ranges.(w) with
    | -1 ->
      let rec scan k =
        if k = jobs then -1
        else
          let v = (w + k) mod jobs in
          match steal_top b.ranges.(v) with
          | -1 -> scan (k + 1)
          | idx ->
            Metrics.incr ws.steals;
            Metrics.incr ws.steals_total;
            idx
      in
      scan 1
    | idx -> idx
  in
  let rec loop () =
    let idx = next () in
    if idx >= 0 then begin
      b.run idx w;
      loop ()
    end
  in
  loop ()

let worker_loop t w (ws : worker_stats) =
  let last_gen = ref 0 in
  let rec loop () =
    Mutex.lock t.lock;
    while t.gen = !last_gen && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if t.gen = !last_gen then Mutex.unlock t.lock (* stopping, all drained *)
    else begin
      let gen = t.gen and batch = t.batch in
      Mutex.unlock t.lock;
      last_gen := gen;
      (* [batch] can be [None] if the other workers finished the whole
         batch before this one woke up — nothing left to do but resync. *)
      (match batch with Some b -> drain_batch b w ws | None -> ());
      loop ()
    end
  in
  loop ()

let create ?jobs ?metrics () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let nworkers = if jobs = 1 then 0 else jobs in
  let stats =
    Array.init nworkers (fun i ->
        let w_metrics = Metrics.create () in
        {
          w_metrics;
          tasks = Metrics.counter w_metrics (Printf.sprintf "pool.worker.%d.tasks" i);
          total = Metrics.counter w_metrics "pool.tasks";
          busy_ns = Metrics.counter w_metrics "pool.busy_ns";
          steals = Metrics.counter w_metrics (Printf.sprintf "pool.worker.%d.steals" i);
          steals_total = Metrics.counter w_metrics "pool.steals";
        })
  in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      batch_done = Condition.create ();
      batch = None;
      gen = 0;
      stopping = false;
      workers = [];
      worker_ids = ref [];
      stats;
      sink = metrics;
    }
  in
  let workers =
    Array.to_list (Array.mapi (fun w ws -> Domain.spawn (fun () -> worker_loop t w ws)) stats)
  in
  t.workers <- workers;
  t.worker_ids := List.map Domain.get_id workers;
  t

let jobs t = t.jobs

(* Fold each worker's private registry into the sink and zero it, so the
   next fold only carries new deltas. Only called with the batch fully
   accounted (every task's metric updates precede its completion
   decrement) or after join. *)
let fold_metrics t =
  match t.sink with
  | None -> ()
  | Some sink ->
    Array.iter
      (fun ws ->
        Metrics.merge ~into:sink ws.w_metrics;
        Metrics.reset ws.w_metrics)
      t.stats

let reject_nested t =
  let self = Domain.self () in
  if List.mem self !(t.worker_ids) then
    invalid_arg "Pool: nested use (map/run_all called from inside a pool task)"

let reraise_first results =
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Ok_done -> ())
    results

let map_array_w t f xs =
  reject_nested t;
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.workers = [] then Array.map (fun x -> f ~worker:0 x) xs
  else if n >= range_limit then invalid_arg "Pool: batch too large"
  else begin
    let results : 'b option array = Array.make n None in
    let outcomes = Array.make n Pending in
    let remaining = ref n in
    (* All accounting — outcome, per-worker metrics — happens before the
       completion decrement, so once [remaining] hits 0 nothing in the
       batch is still being written and [fold_metrics] sees it all. *)
    let run idx w =
      let ws = t.stats.(w) in
      let t0 = Monotonic_clock.now () in
      (match f ~worker:w xs.(idx) with
      | v -> results.(idx) <- Some v (* slot [idx] is this task's alone *)
      | exception e -> outcomes.(idx) <- Raised (e, Printexc.get_raw_backtrace ()));
      let dt = Int64.sub (Monotonic_clock.now ()) t0 in
      Metrics.incr ws.tasks;
      Metrics.incr ws.total;
      Metrics.incr ~by:(Int64.to_int (Int64.max 0L dt)) ws.busy_ns;
      Mutex.lock t.lock;
      if outcomes.(idx) = Pending then outcomes.(idx) <- Ok_done;
      decr remaining;
      if !remaining = 0 then Condition.broadcast t.batch_done;
      Mutex.unlock t.lock
    in
    (* Initial block-contiguous split: worker [w] starts on the same
       chunk the fixed scheduler would have pinned it to (good locality
       for per-worker state), and stealing handles whatever skew the
       split got wrong. *)
    let jobs = t.jobs in
    let chunk = (n + jobs - 1) / jobs in
    let ranges =
      Array.init jobs (fun w ->
          let lo = min n (w * chunk) in
          let hi = min n ((w + 1) * chunk) in
          Atomic.make (pack lo hi))
    in
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool: used after shutdown"
    end;
    t.batch <- Some { run; ranges };
    t.gen <- t.gen + 1;
    Condition.broadcast t.work;
    while !remaining > 0 do
      Condition.wait t.batch_done t.lock
    done;
    t.batch <- None;
    Mutex.unlock t.lock;
    fold_metrics t;
    reraise_first outcomes;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every non-raising task filled its slot *))
      results
  end

let map_array t f xs = map_array_w t (fun ~worker:_ x -> f x) xs

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let run_all t fs = ignore (map t (fun f -> f ()) fs)

let shutdown t =
  reject_nested t;
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- [];
    fold_metrics t
  end

let with_pool ?jobs ?metrics f =
  let t = create ?jobs ?metrics () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
