(* Fixed-size domain pool: a mutex/condition work queue feeding [jobs]
   persistent worker domains. Batches ([map] / [run_all]) enqueue one
   closure per item; each closure writes its outcome into an
   index-addressed slot of the batch's result array, so collection order
   never depends on scheduling. jobs = 1 spawns nothing and runs batches
   inline on the caller. *)

type outcome = Pending | Ok_done | Raised of exn * Printexc.raw_backtrace

type worker_stats = {
  w_metrics : Metrics.t;
  tasks : Metrics.counter; (* this worker's share *)
  total : Metrics.counter; (* "pool.tasks": summed across workers by merge *)
  busy_ns : Metrics.counter;
}

type t = {
  jobs : int;
  lock : Mutex.t;
  work : Condition.t; (* work arrived, or the pool is stopping *)
  batch_done : Condition.t;
  queue : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable workers : unit Domain.t list;
  worker_ids : Domain.id list ref;
  stats : worker_stats array; (* one slot per worker; empty when jobs = 1 *)
  sink : Metrics.t option; (* merge target for per-domain deltas *)
}

let default_jobs () = max 1 (Domain.recommended_domain_count () - 1)

let worker_loop t (ws : worker_stats) =
  let rec loop () =
    Mutex.lock t.lock;
    while Queue.is_empty t.queue && not t.stopping do
      Condition.wait t.work t.lock
    done;
    if Queue.is_empty t.queue then Mutex.unlock t.lock (* stopping *)
    else begin
      let task = Queue.pop t.queue in
      Mutex.unlock t.lock;
      let t0 = Monotonic_clock.now () in
      task () (* never raises: batch closures capture their own outcome *)
      ;
      let dt = Int64.sub (Monotonic_clock.now ()) t0 in
      Metrics.incr ws.tasks;
      Metrics.incr ws.total;
      Metrics.incr ~by:(Int64.to_int (Int64.max 0L dt)) ws.busy_ns;
      loop ()
    end
  in
  loop ()

let create ?jobs ?metrics () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create: jobs must be >= 1";
  let nworkers = if jobs = 1 then 0 else jobs in
  let stats =
    Array.init nworkers (fun i ->
        let w_metrics = Metrics.create () in
        {
          w_metrics;
          tasks = Metrics.counter w_metrics (Printf.sprintf "pool.worker.%d.tasks" i);
          total = Metrics.counter w_metrics "pool.tasks";
          busy_ns = Metrics.counter w_metrics "pool.busy_ns";
        })
  in
  let t =
    {
      jobs;
      lock = Mutex.create ();
      work = Condition.create ();
      batch_done = Condition.create ();
      queue = Queue.create ();
      stopping = false;
      workers = [];
      worker_ids = ref [];
      stats;
      sink = metrics;
    }
  in
  let workers = Array.to_list (Array.map (fun ws -> Domain.spawn (fun () -> worker_loop t ws)) stats) in
  t.workers <- workers;
  t.worker_ids := List.map Domain.get_id workers;
  t

let jobs t = t.jobs

(* Fold each worker's private registry into the sink and zero it, so the
   next fold only carries new deltas. Only called with all workers idle
   (end of a batch, or after join), when no worker touches its registry. *)
let fold_metrics t =
  match t.sink with
  | None -> ()
  | Some sink ->
    Array.iter
      (fun ws ->
        Metrics.merge ~into:sink ws.w_metrics;
        Metrics.reset ws.w_metrics)
      t.stats

let reject_nested t =
  let self = Domain.self () in
  if List.mem self !(t.worker_ids) then
    invalid_arg "Pool: nested use (map/run_all called from inside a pool task)"

let reraise_first results =
  Array.iter
    (function
      | Raised (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending | Ok_done -> ())
    results

let map_array t f xs =
  reject_nested t;
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.workers = [] then Array.map f xs
  else begin
    let results : 'b option array = Array.make n None in
    let outcomes = Array.make n Pending in
    let remaining = ref n in
    Mutex.lock t.lock;
    if t.stopping then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool: used after shutdown"
    end;
    for i = 0 to n - 1 do
      let x = xs.(i) in
      Queue.add
        (fun () ->
          (match f x with
          | v -> results.(i) <- Some v (* slot [i] is this task's alone *)
          | exception e -> outcomes.(i) <- Raised (e, Printexc.get_raw_backtrace ()));
          Mutex.lock t.lock;
          if outcomes.(i) = Pending then outcomes.(i) <- Ok_done;
          decr remaining;
          if !remaining = 0 then Condition.broadcast t.batch_done;
          Mutex.unlock t.lock)
        t.queue
    done;
    Condition.broadcast t.work;
    while !remaining > 0 do
      Condition.wait t.batch_done t.lock
    done;
    Mutex.unlock t.lock;
    fold_metrics t;
    reraise_first outcomes;
    Array.map
      (function
        | Some v -> v
        | None -> assert false (* every non-raising task filled its slot *))
      results
  end

let map t f xs = Array.to_list (map_array t f (Array.of_list xs))

let run_all t fs = ignore (map t (fun f -> f ()) fs)

let shutdown t =
  reject_nested t;
  Mutex.lock t.lock;
  let already = t.stopping in
  t.stopping <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.lock;
  if not already then begin
    List.iter Domain.join t.workers;
    t.workers <- [];
    fold_metrics t
  end

let with_pool ?jobs ?metrics f =
  let t = create ?jobs ?metrics () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
