(** Snapshot telemetry: a ring-buffered time-series of labelled JSON
    records with an optional live JSONL stream (schema [colayout/obs/v1]).

    {!Metrics} answers "what are the totals now"; [Obs] answers "how did
    they move over time". A producer (the serve epoch loop, a bench phase)
    calls {!record} with whatever fields matter at that instant — counter
    values, percentile summaries via {!metrics_fields}, GC state via
    {!gc_fields}, domain-specific structures like the interference matrix
    — and the buffer keeps the most recent [capacity] snapshots, counting
    (never silently hiding) what fell off. Each snapshot is stamped with a
    dense sequence number and a monotonic timestamp, so consumers can
    detect both gaps (ring overflow: [seq] jumps past what they hold) and
    ordering.

    When a stream sink is attached, every snapshot is also serialized to
    one JSON line and handed to it as it happens — that is the
    [serve --obs FILE] / [repro monitor] transport. Serialization happens
    under the recorder's lock (snapshots are immutable once built) but the
    sink itself runs outside it, so a slow writer never blocks recording.

    All operations are domain-safe behind one mutex; recording is O(fields)
    and never allocates proportionally to history. *)

val schema : string
(** ["colayout/obs/v1"] — stamped on every serialized snapshot. *)

type snapshot = {
  seq : int;  (** Dense from 0, never reused. *)
  ts_ns : int64;  (** Monotonic clock at {!record} time. *)
  label : string;  (** Producer-chosen kind, e.g. ["epoch"]. *)
  fields : (string * Json.t) list;
}

type t

val create : ?capacity:int -> ?clock:(unit -> int64) -> unit -> t
(** [capacity] (default 256) bounds resident snapshots. [clock]
    (nanoseconds, monotonic) defaults to {!Metrics.default_clock};
    injectable for deterministic tests. *)

val capacity : t -> int

val record : t -> label:string -> (string * Json.t) list -> unit
(** Append one snapshot, dropping the oldest when full, and forward its
    serialized line to the stream sink if one is attached. *)

val snapshots : t -> snapshot list
(** Resident snapshots, oldest first; sequence numbers are consecutive. *)

val recorded : t -> int
(** Total snapshots ever recorded (= next sequence number). *)

val dropped : t -> int
(** Snapshots that fell off the ring; [recorded = dropped + resident]. *)

val set_stream : t -> (string -> unit) option -> unit
(** Attach (or detach with [None]) a sink receiving each snapshot as one
    JSON text line, in recording order. *)

val snapshot_json : snapshot -> Json.t
(** The serialized form: [schema]/[seq]/[ts_ns]/[label] followed by the
    producer's fields. *)

val to_jsonl : t -> string
(** Resident snapshots as newline-separated JSON lines (no trailing
    newline). *)

val metrics_fields : Metrics.t -> (string * Json.t) list
(** Summarize a registry for embedding: all counters and gauges verbatim,
    histograms as [count]/[p50_ns]/[p95_ns]/[p99_ns]. *)

val gc_fields : unit -> (string * Json.t) list
(** One ["gc"] object from [Gc.quick_stat]: minor/major/promoted words,
    collection and compaction counts, heap words. *)
