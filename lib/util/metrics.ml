(* Counters are lock-free atomics so handles can be bumped concurrently
   from any domain without losing updates (hits + misses = lookups style
   invariants survive parallel fan-out). The registry hashtables and the
   timer cells are guarded by one mutex: find-or-create and timer updates
   are rare (per stage, not per event), so contention is negligible. *)

type counter = int Atomic.t

type gauge = float Atomic.t

type timer = { mutable calls : int; mutable total_ns : int64 }

(* Histograms bucket non-negative samples by binary magnitude: bucket [i]
   holds values in [2^i, 2^(i+1)) (bucket 0 also takes 0). 62 buckets
   cover every non-negative OCaml int, so an [observe] is one shift loop
   plus three atomic adds — cheap enough for per-trace ingest latency. *)
let hist_buckets = 62

type histogram = {
  buckets : int Atomic.t array;
  observations : int Atomic.t;
  total : int Atomic.t;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  hists : (string, histogram) Hashtbl.t;
  clock : unit -> int64;
  lock : Mutex.t;
}

let default_clock = Monotonic_clock.now

let create ?(clock = default_clock) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    timers = Hashtbl.create 8;
    hists = Hashtbl.create 8;
    clock;
    lock = Mutex.create ();
  }

let locked t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let find_or_create tbl name make =
  match Hashtbl.find_opt tbl name with
  | Some c -> c
  | None ->
    let c = make () in
    Hashtbl.replace tbl name c;
    c

let counter t name = locked t (fun () -> find_or_create t.counters name (fun () -> Atomic.make 0))

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c by)

let count c = Atomic.get c

let add t name by = incr ~by (counter t name)

let gauge t name = locked t (fun () -> find_or_create t.gauges name (fun () -> Atomic.make 0.0))

let set g v = Atomic.set g v

let set_gauge t name v = set (gauge t name) v

let timer t name =
  locked t (fun () -> find_or_create t.timers name (fun () -> { calls = 0; total_ns = 0L }))

let make_histogram () =
  {
    buckets = Array.init hist_buckets (fun _ -> Atomic.make 0);
    observations = Atomic.make 0;
    total = Atomic.make 0;
  }

let histogram t name = locked t (fun () -> find_or_create t.hists name make_histogram)

let bucket_of v =
  let rec go n acc = if n <= 1 then acc else go (n lsr 1) (acc + 1) in
  if v <= 1 then 0 else go v 0

let observe h v =
  let v = if v < 0 then 0 else v in
  ignore (Atomic.fetch_and_add h.buckets.(bucket_of v) 1);
  ignore (Atomic.fetch_and_add h.observations 1);
  ignore (Atomic.fetch_and_add h.total v)

let observe_ns t name v = observe (histogram t name) v

let observations h = Atomic.get h.observations

let hist_total h = Atomic.get h.total

(* Percentiles resolve to the upper bound of the bucket holding the
   requested rank: deterministic, merge-stable, and within a factor of two
   of the true sample — all a latency SLO summary needs. *)
let percentile h p =
  let n = Atomic.get h.observations in
  if n <= 0 then 0.0
  else begin
    let p = if p < 0.0 then 0.0 else if p > 1.0 then 1.0 else p in
    let rank =
      let r = int_of_float (ceil (p *. float_of_int n)) in
      if r < 1 then 1 else if r > n then n else r
    in
    let rec walk i cum =
      if i >= hist_buckets then float_of_int max_int
      else begin
        let cum = cum + Atomic.get h.buckets.(i) in
        if cum >= rank then float_of_int ((1 lsl (i + 1)) - 1) else walk (i + 1) cum
      end
    in
    walk 0 0
  end

let time t name f =
  let tm = timer t name in
  let t0 = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Int64.sub (t.clock ()) t0 in
      let dt = if Int64.compare dt 0L < 0 then 0L else dt in
      locked t (fun () ->
          tm.calls <- tm.calls + 1;
          tm.total_ns <- Int64.add tm.total_ns dt))
    f

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t =
  locked t (fun () -> List.map (fun (k, c) -> (k, Atomic.get c)) (sorted_bindings t.counters))

let gauges t =
  locked t (fun () -> List.map (fun (k, g) -> (k, Atomic.get g)) (sorted_bindings t.gauges))

let timers t =
  locked t (fun () ->
      List.map (fun (k, x) -> (k, x.calls, x.total_ns)) (sorted_bindings t.timers))

let histograms t = locked t (fun () -> sorted_bindings t.hists)

let find_counter t name =
  locked t (fun () -> Option.map Atomic.get (Hashtbl.find_opt t.counters name))

(* Zero in place rather than clearing the tables: callers cache handles,
   and a cleared table would leave those handles updating orphaned cells. *)
let reset t =
  locked t (fun () ->
      Hashtbl.iter (fun _ c -> Atomic.set c 0) t.counters;
      Hashtbl.iter (fun _ g -> Atomic.set g 0.0) t.gauges;
      Hashtbl.iter
        (fun _ x ->
          x.calls <- 0;
          x.total_ns <- 0L)
        t.timers;
      Hashtbl.iter
        (fun _ h ->
          Array.iter (fun b -> Atomic.set b 0) h.buckets;
          Atomic.set h.observations 0;
          Atomic.set h.total 0)
        t.hists)

(* Fold [src] into [into]: counters and timers accumulate (addition
   commutes, so folding per-domain deltas in any order gives one total);
   gauges are level readings, so the source value overwrites. Snapshot
   [src] first rather than nesting the two registry locks. *)
let merge ~into src =
  let cs = counters src and gs = gauges src and ts = timers src in
  let hs = histograms src in
  List.iter (fun (name, v) -> if v <> 0 then add into name v) cs;
  List.iter (fun (name, v) -> set_gauge into name v) gs;
  List.iter
    (fun (name, calls, total_ns) ->
      if calls > 0 || Int64.compare total_ns 0L > 0 then begin
        let tm = timer into name in
        locked into (fun () ->
            tm.calls <- tm.calls + calls;
            tm.total_ns <- Int64.add tm.total_ns total_ns)
      end)
    ts;
  (* Histograms add bucket-wise, like counters: merging per-domain deltas
     in any order gives the same distribution, so percentiles computed on
     the merged histogram equal those of the pooled samples (at bucket
     resolution). Empty source histograms create no entry. *)
  List.iter
    (fun (name, h) ->
      if Atomic.get h.observations > 0 then begin
        let dst = histogram into name in
        Array.iteri (fun i b -> ignore (Atomic.fetch_and_add dst.buckets.(i) (Atomic.get b))) h.buckets;
        ignore (Atomic.fetch_and_add dst.observations (Atomic.get h.observations));
        ignore (Atomic.fetch_and_add dst.total (Atomic.get h.total))
      end)
    hs

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "colayout/metrics/v1");
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)));
      ( "timers",
        Json.Obj
          (List.map
             (fun (k, calls, total_ns) ->
               ( k,
                 Json.Obj
                   [
                     ("calls", Json.Int calls);
                     ("total_ns", Json.Int (Int64.to_int total_ns));
                   ] ))
             (timers t)) );
      ( "histograms",
        Json.Obj
          (List.map
             (fun (k, h) ->
               let buckets =
                 Array.to_list h.buckets
                 |> List.mapi (fun i b -> (i, Atomic.get b))
                 |> List.filter (fun (_, c) -> c > 0)
                 |> List.map (fun (i, c) -> Json.Arr [ Json.Int i; Json.Int c ])
               in
               ( k,
                 Json.Obj
                   [
                     ("count", Json.Int (observations h));
                     ("total", Json.Int (hist_total h));
                     ("p50", Json.Float (percentile h 0.50));
                     ("p95", Json.Float (percentile h 0.95));
                     ("p99", Json.Float (percentile h 0.99));
                     ("buckets", Json.Arr buckets);
                   ] ))
             (histograms t)) );
    ]
