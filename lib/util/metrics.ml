type counter = { mutable count : int }

type gauge = { mutable value : float }

type timer = { mutable calls : int; mutable total_ns : int64 }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  timers : (string, timer) Hashtbl.t;
  clock : unit -> int64;
}

let default_clock = Monotonic_clock.now

let create ?(clock = default_clock) () =
  {
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    timers = Hashtbl.create 8;
    clock;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.replace t.counters name c;
    c

let incr ?(by = 1) c = c.count <- c.count + by

let count c = c.count

let add t name by = incr ~by (counter t name)

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { value = 0.0 } in
    Hashtbl.replace t.gauges name g;
    g

let set g v = g.value <- v

let set_gauge t name v = set (gauge t name) v

let timer t name =
  match Hashtbl.find_opt t.timers name with
  | Some x -> x
  | None ->
    let x = { calls = 0; total_ns = 0L } in
    Hashtbl.replace t.timers name x;
    x

let time t name f =
  let tm = timer t name in
  let t0 = t.clock () in
  Fun.protect
    ~finally:(fun () ->
      let dt = Int64.sub (t.clock ()) t0 in
      let dt = if Int64.compare dt 0L < 0 then 0L else dt in
      tm.calls <- tm.calls + 1;
      tm.total_ns <- Int64.add tm.total_ns dt)
    f

let sorted_bindings tbl =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = List.map (fun (k, c) -> (k, c.count)) (sorted_bindings t.counters)

let gauges t = List.map (fun (k, g) -> (k, g.value)) (sorted_bindings t.gauges)

let timers t =
  List.map (fun (k, x) -> (k, x.calls, x.total_ns)) (sorted_bindings t.timers)

let find_counter t name = Option.map (fun c -> c.count) (Hashtbl.find_opt t.counters name)

(* Zero in place rather than clearing the tables: callers cache handles,
   and a cleared table would leave those handles updating orphaned cells. *)
let reset t =
  Hashtbl.iter (fun _ c -> c.count <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.value <- 0.0) t.gauges;
  Hashtbl.iter
    (fun _ x ->
      x.calls <- 0;
      x.total_ns <- 0L)
    t.timers

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "colayout/metrics/v1");
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (counters t)));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) (gauges t)));
      ( "timers",
        Json.Obj
          (List.map
             (fun (k, calls, total_ns) ->
               ( k,
                 Json.Obj
                   [
                     ("calls", Json.Int calls);
                     ("total_ns", Json.Int (Int64.to_int total_ns));
                   ] ))
             (timers t)) );
    ]
