(** IR interpreter: the instrumentation run of §II-F.

    Executes a program deterministically (given a seed and input vector) and
    records the dynamic basic-block trace and function trace, plus the
    dynamic instruction count. The paper instruments with the small *test*
    input for analysis and evaluates with the *reference* input; callers
    express that by running twice with different {!input}s. *)

type input = {
  seed : int;  (** Seeds the PRNG behind [Rand] expressions. *)
  params : int array;  (** Initial values of the low-numbered globals. *)
  max_blocks : int;  (** Fuel: maximum number of block executions. *)
}

val test_input : ?seed:int -> ?max_blocks:int -> unit -> input
(** Small-fuel input (default 200k blocks) for analysis runs. *)

val ref_input : ?seed:int -> ?max_blocks:int -> unit -> input
(** Large-fuel input (default 2M blocks) for evaluation runs; different seed
    than {!test_input} so analysis never sees the evaluation randomness. *)

type result = {
  bb_trace : Colayout_trace.Trace.t;  (** One event per executed block. *)
  fn_trace : Colayout_trace.Trace.t;  (** One event per function entry. *)
  data_trace : Colayout_util.Int_vec.t;
      (** One byte-address per executed [Load]/[Store], in order — the data
          reference stream of the unified-cache model (Eq 1). Addresses are
          masked non-negative. *)
  call_trace : Colayout_util.Int_vec.t;
      (** One event per executed [Call], encoding
          [caller_fid * num_funcs + callee_fid] — the dynamic call-pair
          stream that call-graph-based placement (Pettis-Hansen) consumes. *)
  instr_count : int;
  block_execs : int;
  completed : bool;  (** [Halt] reached before the fuel ran out. *)
}

val run :
  ?metrics:Colayout_util.Metrics.t -> Colayout_ir.Program.t -> input -> result
(** @raise Invalid_argument on malformed programs (callers should have
    validated). A [Return] with an empty call stack halts, like returning
    from [main].

    When [metrics] is given, the run adds to the registry's [interp.runs],
    [interp.blocks], [interp.instrs] and [interp.fn_events] counters. *)

val block_instr_counts : Colayout_ir.Program.t -> int array
(** Per-block static instruction counts, indexed by block id — the
    replay-time companion of the trace for the timing model. *)
