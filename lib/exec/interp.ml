open Colayout_util
open Colayout_ir

type input = {
  seed : int;
  params : int array;
  max_blocks : int;
}

let test_input ?(seed = 12345) ?(max_blocks = 200_000) () =
  { seed; params = [||]; max_blocks }

let ref_input ?(seed = 987654321) ?(max_blocks = 2_000_000) () =
  { seed; params = [||]; max_blocks }

type result = {
  bb_trace : Colayout_trace.Trace.t;
  fn_trace : Colayout_trace.Trace.t;
  data_trace : Int_vec.t;
  call_trace : Int_vec.t;
  instr_count : int;
  block_execs : int;
  completed : bool;
}

let num_vars = 64

let eval_binop op a b =
  match op with
  | Types.Add -> a + b
  | Types.Sub -> a - b
  | Types.Mul -> a * b
  | Types.Div -> if b = 0 then 0 else a / b
  | Types.Mod -> if b = 0 then 0 else a mod b
  | Types.Xor -> a lxor b
  | Types.And -> a land b
  | Types.Or -> a lor b
  | Types.Lt -> if a < b then 1 else 0
  | Types.Le -> if a <= b then 1 else 0
  | Types.Eq -> if a = b then 1 else 0
  | Types.Ne -> if a <> b then 1 else 0
  | Types.Gt -> if a > b then 1 else 0
  | Types.Ge -> if a >= b then 1 else 0

let rec eval_expr vars rng = function
  | Types.Const n -> n
  | Types.Var v ->
    if v < 0 || v >= Array.length vars then invalid_arg "Interp: bad variable index";
    vars.(v)
  | Types.Bin (op, a, b) ->
    let va = eval_expr vars rng a in
    let vb = eval_expr vars rng b in
    eval_binop op va vb
  | Types.Rand n -> Prng.int rng n

let address_mask = (1 lsl 40) - 1

let exec_instr vars rng data = function
  | Types.Assign (v, e) ->
    if v < 0 || v >= Array.length vars then invalid_arg "Interp: bad variable index";
    vars.(v) <- eval_expr vars rng e
  | Types.Work _ -> ()
  | Types.Load e | Types.Store e ->
    Int_vec.push data (eval_expr vars rng e land address_mask)

let run ?metrics program input =
  let nb = Program.num_blocks program in
  let nf = Program.num_funcs program in
  let bb_trace =
    Colayout_trace.Trace.create ~name:(Program.name program ^ ".bb") ~num_symbols:nb ()
  in
  let fn_trace =
    Colayout_trace.Trace.create ~name:(Program.name program ^ ".fn") ~num_symbols:nf ()
  in
  let data_trace = Int_vec.create () in
  let call_trace = Int_vec.create () in
  let vars = Array.make num_vars 0 in
  Array.iteri (fun i v -> if i < num_vars then vars.(i) <- v) input.params;
  let rng = Prng.create ~seed:input.seed in
  let call_stack = Vec.create () in
  let instr_count = ref 0 in
  let block_execs = ref 0 in
  let completed = ref false in
  let entry = (Program.main program).entry in
  Colayout_trace.Trace.push fn_trace (Program.main program).fid;
  let cur = ref entry in
  let running = ref true in
  while !running do
    if !block_execs >= input.max_blocks then running := false
    else begin
      let b = Program.block program !cur in
      Colayout_trace.Trace.push bb_trace b.id;
      incr block_execs;
      instr_count := !instr_count + b.instr_count;
      List.iter (exec_instr vars rng data_trace) b.instrs;
      match b.term with
      | Types.Jump target -> cur := target
      | Types.Branch { cond; if_true; if_false } ->
        cur := if eval_expr vars rng cond <> 0 then if_true else if_false
      | Types.Switch { sel; targets; default } ->
        let s = eval_expr vars rng sel in
        cur := if s >= 0 && s < Array.length targets then targets.(s) else default
      | Types.Call { callee; return_to } ->
        Vec.push call_stack return_to;
        Colayout_trace.Trace.push fn_trace callee;
        Int_vec.push call_trace ((b.fn * nf) + callee);
        cur := (Program.func program callee).entry
      | Types.Return -> (
        match Vec.pop call_stack with
        | Some ret -> cur := ret
        | None ->
          completed := true;
          running := false)
      | Types.Halt ->
        completed := true;
        running := false
    end
  done;
  Option.iter
    (fun m ->
      Metrics.add m "interp.runs" 1;
      Metrics.add m "interp.blocks" !block_execs;
      Metrics.add m "interp.instrs" !instr_count;
      Metrics.add m "interp.fn_events" (Colayout_trace.Trace.length fn_trace))
    metrics;
  {
    bb_trace;
    fn_trace;
    data_trace;
    call_trace;
    instr_count = !instr_count;
    block_execs = !block_execs;
    completed = !completed;
  }

let block_instr_counts program =
  Array.map (fun (b : Program.block) -> b.instr_count) (Program.blocks program)
