open Colayout_util
open Colayout_cache

type config = {
  cache : Params.t;
  prefetch : Prefetch.t option;
  width : float;
  ilp : float;
  miss_penalty : int;
}

let default_config ?prefetch () =
  { cache = Params.default_l1i; prefetch; width = 4.0; ilp = 3.2; miss_penalty = 8 }

type code = {
  layout : Icache.layout;
  instr_counts : int array;
}

type thread_stats = {
  instrs : int;
  cycles : int;
  fetch_accesses : int;
  fetch_misses : int;
  blocks : int;
}

let ipc s = if s.cycles = 0 then 0.0 else float_of_int s.instrs /. float_of_int s.cycles

let miss_ratio s =
  if s.fetch_accesses = 0 then 0.0
  else float_of_int s.fetch_misses /. float_of_int s.fetch_accesses

type thread = {
  code : code;
  trace : Int_vec.t;
  tid : int;
  line_offset : int;
  restart : bool;
  work_scale : float;
  mutable pos : int;
  mutable work : float; (* instructions left in the current block *)
  mutable stall : int;
  mutable done_ : bool;
  mutable finish_cycle : int;
  mutable instrs : int;
  mutable accesses : int;
  mutable misses : int;
  mutable blocks : int;
}

let make_thread ?(work_scale = 1.0) code trace ~tid ~line_offset ~restart =
  if work_scale <= 0.0 then invalid_arg "Smt: work_scale must be positive";
  {
    code;
    trace;
    tid;
    line_offset;
    restart;
    work_scale;
    pos = 0;
    work = 0.0;
    stall = 0;
    done_ = Int_vec.length trace = 0;
    finish_cycle = 0;
    instrs = 0;
    accesses = 0;
    misses = 0;
    blocks = 0;
  }

(* Fetch the next block of [th] through the shared cache: counts accesses
   and misses, charges the stall, and loads the block's work. Returns false
   when the trace is exhausted and the thread does not restart. The
   profiled dispatch mirrors Icache/Hierarchy: with a sink the access goes
   through the attributing twin, without one the bare hot path runs. *)
let advance_block cfg cache sink th ~cycle =
  if th.pos >= Int_vec.length th.trace then begin
    if th.restart then th.pos <- 0
    else begin
      th.done_ <- true;
      th.finish_cycle <- cycle
    end
  end;
  if th.done_ then false
  else begin
    let bid = Int_vec.get th.trace th.pos in
    th.pos <- th.pos + 1;
    th.blocks <- th.blocks + 1;
    let first, last = Icache.lines_of_block ~params:cfg.cache ~layout:th.code.layout bid in
    for line = first to last do
      let l = line + th.line_offset in
      th.accesses <- th.accesses + 1;
      let hit =
        match sink with
        | None -> Set_assoc.access_line cache l
        | Some s -> Set_assoc.access_line_profiled cache s ~thread:th.tid ~block:bid l
      in
      if hit then ()
      else begin
        th.misses <- th.misses + 1;
        th.stall <- th.stall + cfg.miss_penalty;
        Option.iter
          (fun p ->
            (* Prefetch fills are not demand accesses; stats tracked by the
               cache-level simulators, not needed here. *)
            for n = l + 1 to l + Prefetch.degree p do
              if not (Set_assoc.probe_line cache n) then Set_assoc.fill_line cache n
            done)
          cfg.prefetch
      end
    done;
    th.work <- th.work +. (float_of_int th.code.instr_counts.(bid) *. th.work_scale);
    th.instrs <- th.instrs + th.code.instr_counts.(bid);
    true
  end

let run_threads cfg sink threads ~stop =
  let cache = Set_assoc.create cfg.cache in
  let cycle = ref 0 in
  (* Prime each thread with its first block. *)
  Array.iter (fun th -> if not th.done_ then ignore (advance_block cfg cache sink th ~cycle:0)) threads;
  let guard = ref 0 in
  while (not (stop threads)) && !guard < 4_000_000_000 do
    incr guard;
    incr cycle;
    let active =
      Array.fold_left
        (fun n th -> if (not th.done_) && th.stall = 0 then n + 1 else n)
        0 threads
    in
    Array.iter
      (fun th ->
        if not th.done_ then begin
          if th.stall > 0 then th.stall <- th.stall - 1
          else begin
            let share = cfg.width /. float_of_int (max 1 active) in
            let rate = Float.min cfg.ilp share in
            th.work <- th.work -. rate;
            (* A fast thread can finish several short blocks in one cycle;
               keep fetching until work is pending or a miss stalls it. *)
            let continue = ref (th.work <= 0.0) in
            while !continue do
              if not (advance_block cfg cache sink th ~cycle:!cycle) then continue := false
              else if th.stall > 0 || th.work > 0.0 then continue := false
            done
          end
        end)
      threads
  done;
  !cycle

let stats_of th ~total_cycles =
  {
    instrs = th.instrs;
    cycles = (if th.done_ then th.finish_cycle else total_cycles);
    fetch_accesses = th.accesses;
    fetch_misses = th.misses;
    blocks = th.blocks;
  }

let solo ?work_scale ?sink cfg code trace =
  let th = make_thread ?work_scale code trace ~tid:0 ~line_offset:0 ~restart:false in
  let total = run_threads cfg sink [| th |] ~stop:(fun ths -> ths.(0).done_) in
  stats_of th ~total_cycles:total

type corun_mode = Finish_both | Measure_first

type corun_result = {
  t0 : thread_stats;
  t1 : thread_stats;
  total_cycles : int;
}

let corun ?(work_scales = (1.0, 1.0)) ?sink cfg ~mode (code0, trace0) (code1, trace1) =
  let offset = 1 lsl 40 in
  let ws0, ws1 = work_scales in
  let restart1 = match mode with Measure_first -> true | Finish_both -> false in
  let th0 = make_thread ~work_scale:ws0 code0 trace0 ~tid:0 ~line_offset:0 ~restart:false in
  let th1 = make_thread ~work_scale:ws1 code1 trace1 ~tid:1 ~line_offset:offset ~restart:restart1 in
  let stop =
    match mode with
    | Finish_both -> fun (ths : thread array) -> ths.(0).done_ && ths.(1).done_
    | Measure_first -> fun ths -> ths.(0).done_
  in
  let total = run_threads cfg sink [| th0; th1 |] ~stop in
  { t0 = stats_of th0 ~total_cycles:total; t1 = stats_of th1 ~total_cycles:total; total_cycles = total }
