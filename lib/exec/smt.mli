(** Cycle-approximate SMT (hyper-threading) core model.

    The paper evaluates on two hyper-threads of one Xeon core sharing the L1
    instruction cache. This model reproduces the two first-order phenomena
    that evaluation rests on:

    - a single thread cannot fill the core's issue width (it is capped by
      [ilp]), so co-running two threads raises combined throughput — Fig 7a's
      15–30% gain;
    - instruction-cache misses stall the *fetching* thread while the peer
      keeps issuing, so reducing one program's misses speeds up both —
      the magnification effect of Fig 7b.

    Mechanics per cycle: threads stalled on a miss count down their penalty;
    the remaining active threads split [width] issue slots evenly, each
    capped at [ilp] instructions per cycle. Entering a block fetches its
    cache lines through the shared L1I (misses stall [miss_penalty] cycles
    each). Replay is trace-driven: the block sequence comes from
    {!Interp.run} and is layout-independent, exactly as code reordering
    preserves program semantics. *)

type config = {
  cache : Colayout_cache.Params.t;
  prefetch : Colayout_cache.Prefetch.t option;
  width : float;  (** Issue slots per cycle (core width). *)
  ilp : float;  (** Per-thread IPC cap from dependence chains. *)
  miss_penalty : int;  (** Stall cycles per L1I miss. *)
}

val default_config : ?prefetch:Colayout_cache.Prefetch.t -> unit -> config
(** 4-wide core, per-thread ILP 3.2, 8-cycle effective miss penalty (an
    out-of-order front-end hides part of an L1I miss), paper L1I
    geometry. The width/ILP ratio is calibrated so baseline co-run
    throughput gains land in the paper's 15–30% band. *)

type code = {
  layout : Colayout_cache.Icache.layout;
  instr_counts : int array;
      (** Per block id; must include any layout-added jump instructions. *)
}

type thread_stats = {
  instrs : int;
  cycles : int;  (** Cycle at which the thread finished its measured pass. *)
  fetch_accesses : int;
  fetch_misses : int;
  blocks : int;
}

val ipc : thread_stats -> float

val miss_ratio : thread_stats -> float

val solo :
  ?work_scale:float ->
  ?sink:Colayout_cache.Profile_sink.t ->
  config ->
  code ->
  Colayout_util.Int_vec.t ->
  thread_stats
(** Run one thread alone to completion of one pass. [work_scale] (default 1)
    multiplies each instruction's latency — >1 models a data-bound program
    whose unmodelled D-cache stalls slow both its execution and its
    instruction fetching. [sink] attributes every demand fetch (thread 0,
    block id, line) without perturbing the simulation; prefetch fills
    bypass it. *)

type corun_mode =
  | Finish_both
      (** Each thread runs one pass and then idles; simulation ends when both
          are done (throughput experiments, Fig 7). *)
  | Measure_first
      (** Thread 0 runs one pass; thread 1 loops continuously as the probe
          (co-run speedup experiments, Fig 6 / Table II). Thread 1's stats
          cover whatever it executed before thread 0 finished. *)

type corun_result = {
  t0 : thread_stats;
  t1 : thread_stats;
  total_cycles : int;  (** End of simulation. *)
}

val corun :
  ?work_scales:float * float ->
  ?sink:Colayout_cache.Profile_sink.t ->
  config ->
  mode:corun_mode ->
  code * Colayout_util.Int_vec.t ->
  code * Colayout_util.Int_vec.t ->
  corun_result
(** [sink] (create it with [~threads:2]) attributes every demand fetch of
    both hyper-threads — thread 0 is the first pair, thread 1 the probe —
    enabling the cross-thread interference matrices. Attaching it does not
    change the simulation: replacement decisions are identical with or
    without. *)
