(** Leveled progress reporting for the harness, on [Logs].

    Replaces the seed's raw [Printf.eprintf] calls. All harness chatter
    goes through the ["colayout.harness"] source; CLI front-ends pick a
    {!verbosity} and call {!setup} once. Library code that never calls
    {!setup} inherits [Logs]' default no-op reporter, so embedding the
    harness stays silent by default. *)

type verbosity =
  | Quiet  (** No stderr chatter at all. *)
  | Normal  (** Progress notes ([Logs.Info]). *)
  | Debug  (** Everything ([Logs.Debug]). *)

val src : Logs.src

val verbosity_of_string : string -> verbosity option
(** ["quiet" | "normal" | "debug"]. *)

val verbosity_to_string : verbosity -> string

val setup : verbosity -> unit
(** Install the stderr reporter and set the harness source's level. *)

val info : ('a, Format.formatter, unit, unit) format4 -> 'a

val debug : ('a, Format.formatter, unit, unit) format4 -> 'a
