open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

(* Ranking phase: the func-affinity speedup of every (self, probe) cell,
   fanned out over the pool (all memo hits if fig6 already ran in this
   context), then averaged per self. *)
let top3 ctx =
  let cells =
    List.concat_map
      (fun self -> List.map (fun probe -> (self, probe)) W.Spec.deep_eight)
      W.Spec.deep_eight
  in
  let values =
    Ctx.par_map ctx
      (fun (self, probe) -> Exp_fig6.speedup ctx O.Func_affinity ~self ~probe)
      cells
  in
  let value = Array.of_list values in
  let np = List.length W.Spec.deep_eight in
  let scored =
    List.mapi
      (fun si self ->
        (self, Stats.mean (List.init np (fun pi -> value.((si * np) + pi)))))
      W.Spec.deep_eight
  in
  List.sort (fun (_, a) (_, b) -> compare b a) scored
  |> List.filteri (fun i _ -> i < 3)
  |> List.map fst

let cycles ctx ~self ~peer =
  (Ctx.smt_corun ctx ~mode:E.Smt.Measure_first ~self ~peer).E.Smt.t0.E.Smt.cycles

let run ctx =
  Ctx.prewarm ctx ~kinds:[ O.Original; O.Func_affinity ] W.Spec.deep_eight;
  let best = top3 ctx in
  Ctx.progress ctx ("optopt: top-3 func-affinity programs: " ^ String.concat ", " best);
  let t =
    Table.create
      ~title:
        "§III-F: optimized+optimized vs optimized+baseline co-run (paper: negligible delta, \
         no slowdown)"
      ~columns:
        [
          ("self (optimized)", Table.Left);
          ("peer", Table.Left);
          ("delta speedup", Table.Right);
        ]
  in
  let duels =
    List.concat_map
      (fun self ->
        List.filter_map (fun peer -> if self <> peer then Some (self, peer) else None) best)
      best
  in
  let rows =
    Ctx.par_map ctx
      (fun (self, peer) ->
        let base = cycles ctx ~self:(self, O.Func_affinity) ~peer:(peer, O.Original) in
        let both = cycles ctx ~self:(self, O.Func_affinity) ~peer:(peer, O.Func_affinity) in
        let delta = (float_of_int base /. float_of_int both -. 1.0) *. 100.0 in
        [ self; peer; Printf.sprintf "%+.2f%%" delta ])
      duels
  in
  Table.add_rows t rows;
  [ t ]
