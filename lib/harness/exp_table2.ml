open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

let pct_reduction ~base ~v = if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0

(* Average, over the 8 probes, of this program's co-run miss-ratio reduction
   relative to its original layout. *)
let avg_miss_reduction ctx ~hw kind self =
  let per_probe probe =
    let base =
      Ctx.corun_miss_ratio ctx ~hw ~self:(self, O.Original) ~peer:(probe, O.Original)
    in
    let opt = Ctx.corun_miss_ratio ctx ~hw ~self:(self, kind) ~peer:(probe, O.Original) in
    pct_reduction ~base ~v:opt
  in
  Stats.mean (List.map per_probe W.Spec.deep_eight)

let avg_speedup ctx kind self =
  Stats.mean
    (List.map (fun probe -> Exp_fig6.speedup ctx kind ~self ~probe) W.Spec.deep_eight)

(* Phase 2 fans out one pool task per (program, optimizer) pair — each
   covers that pair's 8-probe speedup and miss-reduction averages — into a
   row-major array; the starring of each program's best speedup happens
   sequentially on the gathered values. *)
let run ctx =
  let t =
    Table.create
      ~title:
        "Table II: average co-run speedup and miss-ratio reduction per optimizer (speedup \
         as %; '*' marks the best speedup per program)"
      ~columns:
        (("program", Table.Left)
        :: List.concat_map
             (fun kind ->
               let n = O.kind_name kind in
               [
                 (n ^ " speedup", Table.Right);
                 (n ^ " mr hw", Table.Right);
                 (n ^ " mr sim", Table.Right);
               ])
             Exp_fig6.optimizers)
  in
  Ctx.prewarm ctx ~kinds:(O.Original :: Exp_fig6.optimizers) W.Spec.deep_eight;
  let pairs =
    List.concat_map
      (fun self -> List.map (fun kind -> (self, kind)) Exp_fig6.optimizers)
      W.Spec.deep_eight
  in
  let stats =
    Ctx.par_map ctx
      (fun (self, kind) ->
        Ctx.progress ctx (Printf.sprintf "table2: %s / %s" self (O.kind_name kind));
        ( avg_speedup ctx kind self,
          avg_miss_reduction ctx ~hw:true kind self,
          avg_miss_reduction ctx ~hw:false kind self ))
      pairs
  in
  let nk = List.length Exp_fig6.optimizers in
  let stat = Array.of_list stats in
  List.iteri
    (fun si self ->
      let row = List.init nk (fun ki -> stat.((si * nk) + ki)) in
      let speedups = List.map (fun (sp, _, _) -> sp) row in
      let best = Stats.maximum speedups in
      let cells =
        List.concat_map
          (fun (sp, mr_hw, mr_sim) ->
            let star = if sp = best && sp > 1.0 then "*" else "" in
            [
              Printf.sprintf "%+.2f%%%s" ((sp -. 1.0) *. 100.0) star;
              Printf.sprintf "%.1f%%" mr_hw;
              Printf.sprintf "%.1f%%" mr_sim;
            ])
          row
      in
      Table.add_row t (self :: cells))
    W.Spec.deep_eight;
  [ t ]
