open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

(* The paper's Figure 7 x-axis spans 400, 403, 429, 453, 458, 471, 483 —
   seven of the eight study programs (gobmk is absent) — giving C(7,2)+7 = 28
   pairs including self-pairs. *)
let pair_programs =
  [
    "400.perlbench"; "403.gcc"; "429.mcf"; "453.povray"; "458.sjeng"; "471.omnetpp";
    "483.xalancbmk";
  ]

let pairs =
  let rec go = function
    | [] -> []
    | a :: rest -> List.map (fun b -> (a, b)) (a :: rest) @ go rest
  in
  go pair_programs

let pair_label (a, b) = W.Spec.short_name a ^ "+" ^ W.Spec.short_name b

(* Throughput improvement of SMT co-run over running A then B sequentially
   on a single hardware thread. *)
let improvement ctx ~kind_a (a, b) =
  let solo_a = float_of_int (Ctx.smt_solo ctx a kind_a).E.Smt.cycles in
  let solo_b = float_of_int (Ctx.smt_solo ctx b O.Original).E.Smt.cycles in
  (* Self-pairings desynchronize the two instances (rotate the peer half a
     pass); two identical deterministic traces would otherwise hit every
     phase transition in lockstep, which real co-runs do not. *)
  let co =
    Ctx.smt_corun ~rotate_peer:(a = b) ctx ~mode:E.Smt.Finish_both ~self:(a, kind_a)
      ~peer:(b, O.Original)
  in
  ((solo_a +. solo_b) /. float_of_int co.E.Smt.total_cycles) -. 1.0

(* Phase 2 is one pool task per program pair (baseline and optimized
   improvement together); the tables and the summary statistics are built
   sequentially from the pair-ordered results. *)
let run ctx =
  let t7a =
    Table.create
      ~title:
        "Figure 7a: throughput improvement of baseline co-run over solo-run (paper: 15% to \
         30%+)"
      ~columns:[ ("pair", Table.Left); ("improvement", Table.Right) ]
  in
  let t7b =
    Table.create
      ~title:
        "Figure 7b: magnification of the 7a gain by function-affinity optimization (paper: \
         mean 7.9%, max 26%, one -8%)"
      ~columns:
        [
          ("pair", Table.Left);
          ("baseline gain", Table.Right);
          ("optimized gain", Table.Right);
          ("magnification", Table.Right);
        ]
  in
  Ctx.prewarm ctx ~kinds:[ O.Original; O.Func_affinity ] pair_programs;
  let measured =
    Ctx.par_map ctx
      (fun pair ->
        Ctx.progress ctx ("fig7: " ^ pair_label pair);
        let base = improvement ctx ~kind_a:O.Original pair in
        let opt = improvement ctx ~kind_a:O.Func_affinity pair in
        (base, opt))
      pairs
  in
  let magnifications =
    List.map2
      (fun pair (base, opt) ->
        let magnification = if base = 0.0 then 0.0 else (opt /. base) -. 1.0 in
        Table.add_row t7a [ pair_label pair; Table.fmt_pct (100.0 *. base) ];
        Table.add_row t7b
          [
            pair_label pair;
            Table.fmt_pct (100.0 *. base);
            Table.fmt_pct (100.0 *. opt);
            Printf.sprintf "%+.1f%%" (100.0 *. magnification);
          ];
        magnification)
      pairs measured
  in
  let summary =
    Table.create ~title:"Figure 7b summary"
      ~columns:[ ("statistic", Table.Left); ("value", Table.Right) ]
  in
  let n = List.length magnifications in
  let count p = List.length (List.filter p magnifications) in
  Table.add_rows summary
    [
      [ "pairs"; string_of_int n ];
      [ "pairs with magnification > 5.6% (paper: 16/28)";
        string_of_int (count (fun m -> m > 0.056)) ];
      [ "pairs with magnification >= 10% (paper: 9/28)";
        string_of_int (count (fun m -> m >= 0.10)) ];
      [ "largest (paper: 26%)"; Table.fmt_pct (100.0 *. Stats.maximum magnifications) ];
      [ "mean (paper: 7.9%)"; Table.fmt_pct (100.0 *. Stats.mean magnifications) ];
      [ "degradations (paper: 1)"; string_of_int (count (fun m -> m < 0.0)) ];
    ];
  [ t7a; t7b; summary ]
