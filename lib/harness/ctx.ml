open Colayout
module U = Colayout_util
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

type scale = Fast | Full

(* A memoization table with lookup/hit/miss counters in the context's
   metrics registry: every lookup is either a hit or a miss, so
   hits + misses = lookups is an invariant tests can assert (the counters
   are atomic, so it holds under concurrent lookups too).

   The table is single-flight under a pool: the first domain to ask for a
   key marks it [Computing] and computes outside the lock; any other
   domain asking for the same key waits on the condition instead of
   recomputing, and counts a hit once the value lands. A failed
   computation clears the mark (waiters retry, one of them recomputing)
   and re-raises on the computing domain. *)
type 'v slot = Computing | Done of 'v

type 'v memo_tbl = {
  tbl : (string, 'v slot) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  lookups : U.Metrics.counter;
  hits : U.Metrics.counter;
  misses : U.Metrics.counter;
}

type t = {
  scale : scale;
  params : C.Params.t;
  opt_config : Optimizer.config;
  smt_cfg : E.Smt.config;
  hw_prefetch : C.Prefetch.t;
  metrics : U.Metrics.t;
  spans : U.Span.t;
  pool : U.Pool.t option;
  programs : Colayout_ir.Program.t memo_tbl;
  ref_results : E.Interp.result memo_tbl;
  analyses : Optimizer.analysis memo_tbl;
  layouts : Layout.t memo_tbl;
  solo_cache : C.Cache_stats.t memo_tbl;
  corun_cache : C.Cache_stats.t memo_tbl;
  smt_solo_cache : E.Smt.thread_stats memo_tbl;
  smt_corun_cache : E.Smt.corun_result memo_tbl;
}

let memo_tbl metrics name size =
  {
    tbl = Hashtbl.create size;
    lock = Mutex.create ();
    cond = Condition.create ();
    lookups = U.Metrics.counter metrics (Printf.sprintf "ctx.memo.%s.lookups" name);
    hits = U.Metrics.counter metrics (Printf.sprintf "ctx.memo.%s.hits" name);
    misses = U.Metrics.counter metrics (Printf.sprintf "ctx.memo.%s.misses" name);
  }

let create ?(scale = Full) ?metrics ?spans ?pool () =
  let params = C.Params.default_l1i in
  let metrics = match metrics with Some m -> m | None -> U.Metrics.create () in
  let spans = match spans with Some s -> s | None -> U.Span.create () in
  {
    scale;
    params;
    opt_config = { Optimizer.default_config with params };
    smt_cfg = E.Smt.default_config ~prefetch:(C.Prefetch.create ~degree:1 ()) ();
    hw_prefetch = C.Prefetch.create ~degree:2 ();
    metrics;
    spans;
    pool;
    programs = memo_tbl metrics "programs" 32;
    ref_results = memo_tbl metrics "ref_results" 32;
    analyses = memo_tbl metrics "analyses" 32;
    layouts = memo_tbl metrics "layouts" 64;
    solo_cache = memo_tbl metrics "solo_cache" 64;
    corun_cache = memo_tbl metrics "corun_cache" 256;
    smt_solo_cache = memo_tbl metrics "smt_solo_cache" 64;
    smt_corun_cache = memo_tbl metrics "smt_corun_cache" 256;
  }

let scale t = t.scale

let jobs t = match t.pool with None -> 1 | Some p -> U.Pool.jobs p

let pool t = t.pool

(* Parallel fan-out seam for the experiments: a pooled context maps over
   the pool's worker domains, an unpooled one (or jobs = 1, where the pool
   spawns no domains) is plain List.map on the calling domain. Results are
   in input order either way — table construction downstream is identical
   whatever the jobs count. *)
let par_map t f xs = match t.pool with None -> List.map f xs | Some p -> U.Pool.map p f xs

let par_iter t f xs = ignore (par_map t f xs)

let params t = t.params

let opt_config t = t.opt_config

let metrics t = t.metrics

let spans t = t.spans

let ref_fuel t = match t.scale with Fast -> 200_000 | Full -> 600_000

let test_fuel t = match t.scale with Fast -> 80_000 | Full -> 200_000

let memo m key f =
  U.Metrics.incr m.lookups;
  Mutex.lock m.lock;
  let rec resolve () =
    match Hashtbl.find_opt m.tbl key with
    | Some (Done v) ->
      Mutex.unlock m.lock;
      U.Metrics.incr m.hits;
      v
    | Some Computing ->
      (* Another domain is computing this key: await it (single-flight). *)
      Condition.wait m.cond m.lock;
      resolve ()
    | None ->
      Hashtbl.replace m.tbl key Computing;
      Mutex.unlock m.lock;
      U.Metrics.incr m.misses;
      (match f () with
      | v ->
        Mutex.lock m.lock;
        Hashtbl.replace m.tbl key (Done v);
        Condition.broadcast m.cond;
        Mutex.unlock m.lock;
        v
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        Mutex.lock m.lock;
        Hashtbl.remove m.tbl key;
        Condition.broadcast m.cond;
        Mutex.unlock m.lock;
        Printexc.raise_with_backtrace e bt)
  in
  resolve ()

let progress _t msg = Report.info "%s" msg

let publish_cache_stats t ~mode stats =
  let add name v =
    U.Metrics.add t.metrics ("cache." ^ name) v;
    U.Metrics.add t.metrics (Printf.sprintf "cache.%s.%s" mode name) v
  in
  add "accesses" (C.Cache_stats.accesses stats);
  add "misses" (C.Cache_stats.misses stats);
  add "evictions" (C.Cache_stats.evictions stats);
  add "prefetches" (C.Cache_stats.prefetches stats)

let program t name =
  memo t.programs name (fun () ->
      U.Span.with_span t.spans ~cat:"workload" ("build:" ^ name) (fun () ->
          W.Gen.build (W.Spec.profile name)))

let fetch_rate _t name = (W.Spec.profile name).W.Gen.fetch_rate

let ref_result t name =
  memo t.ref_results name (fun () ->
      let p = program t name in
      U.Span.with_span t.spans ~cat:"interp" ("ref-run:" ^ name) (fun () ->
          E.Interp.run ~metrics:t.metrics p (E.Interp.ref_input ~max_blocks:(ref_fuel t) ())))

let ref_trace t name = (ref_result t name).E.Interp.bb_trace

let analysis t name =
  memo t.analyses name (fun () ->
      progress t (Printf.sprintf "analyzing %s (test input)" name);
      let p = program t name in
      U.Span.with_span t.spans ~cat:"optimizer" ("analyze:" ^ name) (fun () ->
          Optimizer.analyze ~config:t.opt_config p
            (E.Interp.test_input ~max_blocks:(test_fuel t) ())))

let kname = Optimizer.kind_name

let layout t name kind =
  memo t.layouts
    (name ^ "/" ^ kname kind)
    (fun () ->
      match kind with
      | Optimizer.Original ->
        let p = program t name in
        U.Span.with_span t.spans ~cat:"optimizer"
          ("layout:" ^ name ^ "/original")
          (fun () -> Layout.original p)
      | _ ->
        progress t (Printf.sprintf "laying out %s with %s" name (kname kind));
        let p = program t name in
        let a = analysis t name in
        U.Span.with_span t.spans ~cat:"optimizer"
          (Printf.sprintf "layout:%s/%s" name (kname kind))
          (fun () -> Optimizer.layout_for ~config:t.opt_config kind p a))

let smt_code t name kind = Layout.to_smt_code (layout t name kind)

let hw_tag hw = if hw then "hw" else "sim"

let solo_stats t ~hw name kind =
  memo t.solo_cache
    (Printf.sprintf "%s/%s/%s" name (kname kind) (hw_tag hw))
    (fun () ->
      let lay = layout t name kind and trace = ref_trace t name in
      U.Span.with_span t.spans ~cat:"cache-sim"
        (Printf.sprintf "solo:%s/%s/%s" name (kname kind) (hw_tag hw))
        (fun () ->
          let prefetch = if hw then Some t.hw_prefetch else None in
          let stats = Pipeline.miss_ratio_solo ?prefetch ~params:t.params ~layout:lay trace in
          publish_cache_stats t ~mode:"solo" stats;
          stats))

let corun_stats t ~hw ~self ~peer =
  let sn, sk = self and pn, pk = peer in
  memo t.corun_cache
    (Printf.sprintf "%s/%s|%s/%s|%s" sn (kname sk) pn (kname pk) (hw_tag hw))
    (fun () ->
      let self_lay = layout t sn sk and self_trace = ref_trace t sn in
      let peer_lay = layout t pn pk and peer_trace = ref_trace t pn in
      U.Span.with_span t.spans ~cat:"cache-sim"
        (Printf.sprintf "corun:%s/%s|%s/%s|%s" sn (kname sk) pn (kname pk) (hw_tag hw))
        (fun () ->
          let prefetch = if hw then Some t.hw_prefetch else None in
          let stats =
            Pipeline.miss_ratio_corun ?prefetch
              ~rates:(fetch_rate t sn, fetch_rate t pn)
              ~params:t.params ~self:(self_lay, self_trace) ~peer:(peer_lay, peer_trace) ()
          in
          publish_cache_stats t ~mode:"corun" stats;
          stats))

let smt_solo t name kind =
  memo t.smt_solo_cache
    (name ^ "/" ^ kname kind)
    (fun () ->
      let code = smt_code t name kind and trace = ref_trace t name in
      U.Span.with_span t.spans ~cat:"smt"
        (Printf.sprintf "smt-solo:%s/%s" name (kname kind))
        (fun () ->
          let work_scale = 1.0 /. fetch_rate t name in
          E.Smt.solo ~work_scale t.smt_cfg code (Colayout_trace.Trace.events trace)))

let mode_tag = function E.Smt.Finish_both -> "fb" | E.Smt.Measure_first -> "mf"

let smt_config t = t.smt_cfg

let rotate_half v =
  let open Colayout_util in
  let n = Int_vec.length v in
  let out = Int_vec.create ~capacity:(max 1 n) () in
  for i = 0 to n - 1 do
    Int_vec.push out (Int_vec.get v ((i + (n / 2)) mod n))
  done;
  out

let smt_corun ?(rotate_peer = false) t ~mode ~self ~peer =
  let sn, sk = self and pn, pk = peer in
  memo t.smt_corun_cache
    (Printf.sprintf "%s/%s|%s/%s|%s%s" sn (kname sk) pn (kname pk) (mode_tag mode)
       (if rotate_peer then "|rot" else ""))
    (fun () ->
      let self_code = smt_code t sn sk and self_trace = ref_trace t sn in
      let peer_code = smt_code t pn pk and peer_trace = ref_trace t pn in
      U.Span.with_span t.spans ~cat:"smt"
        (Printf.sprintf "smt-corun:%s/%s|%s/%s|%s" sn (kname sk) pn (kname pk) (mode_tag mode))
        (fun () ->
          let ws = (1.0 /. fetch_rate t sn, 1.0 /. fetch_rate t pn) in
          let peer_events = Colayout_trace.Trace.events peer_trace in
          let peer_events = if rotate_peer then rotate_half peer_events else peer_events in
          E.Smt.corun ~work_scales:ws t.smt_cfg ~mode
            (self_code, Colayout_trace.Trace.events self_trace)
            (peer_code, peer_events)))

(* Profiled twins of solo_stats/corun_stats. Deliberately unmemoized: a
   sink is mutable per-run state, and sharing one across callers would
   double-count. The expensive inputs (layouts, traces) still come from the
   memo tables, so a profiled run costs one extra simulation pass. *)
let publish_profile t sink =
  let add name v = U.Metrics.add t.metrics ("ctx.profile." ^ name) v in
  add "runs" 1;
  add "accesses" (C.Profile_sink.accesses sink);
  add "misses" (C.Profile_sink.misses sink);
  add "evictions" (C.Profile_sink.evictions sink);
  add "cold" (C.Profile_sink.cold_misses sink);
  add "capacity" (C.Profile_sink.capacity_misses sink);
  add "conflict" (C.Profile_sink.conflict_misses sink)

let profiled_solo t ~hw name kind =
  let lay = layout t name kind and trace = ref_trace t name in
  U.Span.with_span t.spans ~cat:"profile"
    (Printf.sprintf "profile-solo:%s/%s/%s" name (kname kind) (hw_tag hw))
    (fun () ->
      let sink =
        C.Profile_sink.create ~num_blocks:(Array.length lay.Layout.addr) ~params:t.params ()
      in
      let prefetch = if hw then Some t.hw_prefetch else None in
      let stats = Pipeline.miss_ratio_solo ?prefetch ~sink ~params:t.params ~layout:lay trace in
      publish_cache_stats t ~mode:"solo" stats;
      publish_profile t sink;
      (stats, sink))

let profiled_corun t ~hw ~self ~peer =
  let sn, sk = self and pn, pk = peer in
  let self_lay = layout t sn sk and self_trace = ref_trace t sn in
  let peer_lay = layout t pn pk and peer_trace = ref_trace t pn in
  U.Span.with_span t.spans ~cat:"profile"
    (Printf.sprintf "profile-corun:%s/%s|%s/%s|%s" sn (kname sk) pn (kname pk) (hw_tag hw))
    (fun () ->
      let nb = max (Array.length self_lay.Layout.addr) (Array.length peer_lay.Layout.addr) in
      let sink = C.Profile_sink.create ~threads:2 ~num_blocks:nb ~params:t.params () in
      let prefetch = if hw then Some t.hw_prefetch else None in
      let stats =
        Pipeline.miss_ratio_corun ?prefetch ~sink
          ~rates:(fetch_rate t sn, fetch_rate t pn)
          ~params:t.params ~self:(self_lay, self_trace) ~peer:(peer_lay, peer_trace) ()
      in
      publish_cache_stats t ~mode:"corun" stats;
      publish_profile t sink;
      (stats, sink))

(* Phase 1 of the two-phase parallel experiment schedule: compute every
   per-program artifact (program build, reference trace, analysis when an
   optimizing kind needs it, and the requested layouts) with one pool task
   per program. Phase 2 — the solo/co-run simulation fan-out — then finds
   all its inputs memoized, so its tasks are pure simulations of roughly
   even size. Values are identical to the lazy sequential path; only the
   order of computation changes. *)
let prewarm ?(kinds = []) t names =
  U.Span.with_span t.spans ~cat:"experiment" "prewarm" (fun () ->
      par_iter t
        (fun name ->
          ignore (ref_trace t name);
          if List.exists (fun k -> k <> Optimizer.Original) kinds then
            ignore (analysis t name);
          List.iter (fun kind -> ignore (layout t name kind)) kinds)
        names)

let solo_miss_ratio t ~hw name kind = C.Cache_stats.miss_ratio (solo_stats t ~hw name kind)

let corun_miss_ratio t ~hw ~self ~peer =
  C.Cache_stats.thread_miss_ratio (corun_stats t ~hw ~self ~peer) 0
