(** Shared experiment context.

    All experiments draw programs, traces, analyses, layouts and simulation
    results from one context; everything is memoized, so e.g. Figure 6 and
    Table II share their co-run simulations, and the whole suite runs each
    expensive step once.

    Two measurement modes mirror the paper's §III:
    - {b simulated} (`hw = false`): the pure LRU cache simulator (the
      paper's Pin-based simulator);
    - {b hw-counter} (`hw = true`): the same simulator with a next-line
      prefetcher, standing in for the PAPI hardware counters, whose measured
      reductions the paper found systematically smaller than simulated
      ones. *)

type scale =
  | Fast  (** Small fuels: smoke-test quality, minutes for the full suite. *)
  | Full  (** The calibrated setting every reported number used. *)

type t

val create :
  ?scale:scale ->
  ?metrics:Colayout_util.Metrics.t ->
  ?spans:Colayout_util.Span.t ->
  ?pool:Colayout_util.Pool.t ->
  unit ->
  t
(** Default [Full]. Each context owns its own metrics registry and span
    recorder (fresh ones unless passed in) — no state is shared between two
    contexts, so back-to-back runs are fully isolated.

    Passing [pool] makes the context parallel: {!par_map} and {!prewarm}
    fan out over the pool's worker domains, and every accessor is safe to
    call from inside pool tasks — the memo tables are single-flight (a key
    being computed by one domain is awaited by the others, never
    recomputed), counters are atomic, and spans record per-domain. The
    caller keeps ownership of the pool (and shuts it down). *)

val scale : t -> scale

val jobs : t -> int
(** The pool's parallelism width; 1 for an unpooled context. *)

val pool : t -> Colayout_util.Pool.t option
(** The context's pool, for experiments that drive pool-aware engines
    directly (e.g. a {!Colayout.Layout_eval} batch evaluator). [None] for
    an unpooled context. Callers must respect the pool's single-consumer
    contract: fan out from the experiment's own (caller) domain only. *)

val par_map : t -> ('a -> 'b) -> 'a list -> 'b list
(** Map over the context's pool (plain [List.map] when unpooled or
    [jobs = 1]); results are always in input order, so the caller's table
    construction is deterministic whatever the jobs count. Must be called
    from outside the pool — nesting fan-outs inside pool tasks is rejected
    by {!Colayout_util.Pool.map}. *)

val par_iter : t -> ('a -> unit) -> 'a list -> unit

val prewarm : ?kinds:Colayout.Optimizer.kind list -> t -> string list -> unit
(** Phase 1 of the two-phase experiment schedule: one pool task per
    program computes its build, reference trace, analysis (when [kinds]
    asks for an optimizing layout) and the [kinds] layouts, so the
    simulation fan-out that follows hits warm memo tables. Runs inside a
    ["prewarm"] span; a no-op-shaped sequential loop when unpooled. *)

val metrics : t -> Colayout_util.Metrics.t
(** The context's metrics registry. Memo tables report
    [ctx.memo.<table>.{hits,misses}] (hits + misses = lookups); interpreter
    runs add [interp.*]; cache simulations add
    [cache.{accesses,misses,evictions,prefetches}] totals plus
    per-mode [cache.{solo,corun}.*] breakdowns. *)

val spans : t -> Colayout_util.Span.t
(** The context's span recorder: every program build, reference run,
    analysis, layout and simulation runs inside a named span. *)

val params : t -> Colayout_cache.Params.t

val opt_config : t -> Colayout.Optimizer.config

val ref_fuel : t -> int

val test_fuel : t -> int

val program : t -> string -> Colayout_ir.Program.t

val fetch_rate : t -> string -> float

val ref_trace : t -> string -> Colayout_trace.Trace.t
(** Reference-input block trace (layout-independent, memoized). *)

val ref_result : t -> string -> Colayout_exec.Interp.result
(** Full reference-run result (for instruction counts etc.). *)

val analysis : t -> string -> Colayout.Optimizer.analysis
(** Test-input instrumentation (memoized). *)

val layout : t -> string -> Colayout.Optimizer.kind -> Colayout.Layout.t

val smt_code : t -> string -> Colayout.Optimizer.kind -> Colayout_exec.Smt.code

val solo_stats :
  t -> hw:bool -> string -> Colayout.Optimizer.kind -> Colayout_cache.Cache_stats.t

val corun_stats :
  t ->
  hw:bool ->
  self:string * Colayout.Optimizer.kind ->
  peer:string * Colayout.Optimizer.kind ->
  Colayout_cache.Cache_stats.t
(** Shared-cache co-run at the two programs' fetch rates; thread 0 = self. *)

val profiled_solo :
  t ->
  hw:bool ->
  string ->
  Colayout.Optimizer.kind ->
  Colayout_cache.Cache_stats.t * Colayout_cache.Profile_sink.t
(** Like {!solo_stats}, but with a {!Colayout_cache.Profile_sink} attached:
    every demand access is attributed per block and every miss classified
    cold/capacity/conflict. Unmemoized (the sink is per-run mutable state);
    layouts and traces still come from the memo tables. Publishes
    [ctx.profile.*] counters. With [hw:true] the prefetcher's fills bypass
    the sink, so classification reflects demand traffic only. *)

val profiled_corun :
  t ->
  hw:bool ->
  self:string * Colayout.Optimizer.kind ->
  peer:string * Colayout.Optimizer.kind ->
  Colayout_cache.Cache_stats.t * Colayout_cache.Profile_sink.t
(** Profiled co-run; the sink attributes per (thread, block), thread 0 =
    self. Unmemoized, like {!profiled_solo}. *)

val smt_solo : t -> string -> Colayout.Optimizer.kind -> Colayout_exec.Smt.thread_stats

val smt_config : t -> Colayout_exec.Smt.config

val smt_corun :
  ?rotate_peer:bool ->
  t ->
  mode:Colayout_exec.Smt.corun_mode ->
  self:string * Colayout.Optimizer.kind ->
  peer:string * Colayout.Optimizer.kind ->
  Colayout_exec.Smt.corun_result
(** [rotate_peer] (default false) starts the peer half a pass into its
    trace — used for self-pairings, where two identical processes would
    otherwise run in artificial lockstep (real co-runs drift). *)

val solo_miss_ratio : t -> hw:bool -> string -> Colayout.Optimizer.kind -> float

val corun_miss_ratio :
  t ->
  hw:bool ->
  self:string * Colayout.Optimizer.kind ->
  peer:string * Colayout.Optimizer.kind ->
  float
(** Thread 0's miss ratio in the shared cache. *)

val progress : t -> string -> unit
(** Emit a progress note through the {!Report} logger ([Logs.Info] on the
    harness source); silent unless a front-end installed a reporter via
    [Report.setup]. *)
