type experiment = {
  id : string;
  paper_ref : string;
  summary : string;
  run : Ctx.t -> Colayout_util.Table.t list;
}

let all =
  [
    {
      id = "intro";
      paper_ref = "Section I table";
      summary = "average miss ratio of non-trivial programs, solo vs two co-runs";
      run = Exp_intro.run;
    };
    {
      id = "table1";
      paper_ref = "Table I";
      summary = "characteristics of the 8 deep-study programs";
      run = Exp_table1.run;
    };
    {
      id = "fig4";
      paper_ref = "Figure 4";
      summary = "L1I miss ratios of all 29 programs, solo and probed";
      run = Exp_fig4.run;
    };
    {
      id = "fig5";
      paper_ref = "Figure 5";
      summary = "solo-run speedup and miss reduction of the affinity optimizers";
      run = Exp_fig5.run;
    };
    {
      id = "fig6";
      paper_ref = "Figure 6";
      summary = "co-run speedups of three optimizers against every probe";
      run = Exp_fig6.run;
    };
    {
      id = "table2";
      paper_ref = "Table II";
      summary = "average co-run speedup and miss reduction (hw vs simulated)";
      run = Exp_table2.run;
    };
    {
      id = "fig7";
      paper_ref = "Figure 7";
      summary = "hyper-threading throughput gain and its magnification";
      run = Exp_fig7.run;
    };
    {
      id = "optopt";
      paper_ref = "Section III-F";
      summary = "optimized+optimized co-run (defensiveness meets politeness)";
      run = Exp_optopt.run;
    };
    {
      id = "wall";
      paper_ref = "Section III-D";
      summary = "Petrank-Rawitz wall: heuristics vs the exhaustive optimum";
      run = Exp_wall.run;
    };
    {
      id = "unified";
      paper_ref = "Section II-A, Eq 1 (extension)";
      summary = "unified-L2 hierarchy: layout optimization relieves the data side too";
      run = Exp_unified.run;
    };
    {
      id = "model";
      paper_ref = "Section II-A, Eqs 1-2 (validation)";
      summary = "footprint-theory predictions vs the trace-driven simulator";
      run = Exp_model.run;
    };
    {
      id = "mrc";
      paper_ref = "HOTL companion (extension)";
      summary = "working-set knees per layout via one-pass miss-ratio curves";
      run = Exp_mrc.run;
    };
    {
      id = "synergy";
      paper_ref = "Section III-F (conjecture)";
      summary = "big-code co-run where optimizing both sides is synergistic";
      run = Exp_synergy.run;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

let ids = List.map (fun e -> e.id) all

let run_by_ids ctx requested =
  List.map
    (fun id ->
      match find id with
      | None ->
        invalid_arg
          (Printf.sprintf "unknown experiment %S (known: %s)" id (String.concat ", " ids))
      | Some e ->
        Report.info "== running %s (%s) ==" e.id e.paper_ref;
        let tables =
          Colayout_util.Span.with_span (Ctx.spans ctx) ~cat:"experiment" ("exp:" ^ e.id)
            (fun () -> e.run ctx)
        in
        (id, tables))
    requested
