open Colayout
open Colayout_util
module W = Colayout_workloads
module E = Colayout_exec
module O = Colayout.Optimizer

(* A deliberately tiny program: 2 phases x 2 workers + 1 shared + 1 cold
   function + main = 7 functions, 5040 layouts — searchable. *)
let tiny_profile =
  {
    W.Gen.default_profile with
    pname = "wall-tiny";
    seed = 404;
    phases = 2;
    funcs_per_phase = 2;
    shared_funcs = 1;
    arms = 4;
    arm_blocks = 3;
    arm_work = 40;
    cold_funcs = 1;
    iters_per_phase = 60;
  }

(* A cache small enough that this tiny program's layout matters. *)
let params = Colayout_cache.Params.make ~size_bytes:2048 ~assoc:2 ~line_bytes:64

let log10_factorial n =
  let rec go acc k = if k <= 1 then acc else go (acc +. log10 (float_of_int k)) (k - 1) in
  go 0.0 n

let run ctx =
  let scale_blocks = match Ctx.scale ctx with Ctx.Fast -> 20_000 | Ctx.Full -> 40_000 in
  let program = W.Gen.build tiny_profile in
  let nf = Colayout_ir.Program.num_funcs program in
  let ref_run = E.Interp.run program (E.Interp.ref_input ~max_blocks:scale_blocks ()) in
  let trace = ref_run.E.Interp.bb_trace in
  Ctx.progress ctx
    (Printf.sprintf "wall: exhaustive search over %d! = %.0f function layouts" nf
       (exp (log10_factorial nf *. log 10.0)));
  let opt = Optimal.search ~params program trace in
  let analysis = Optimizer.analyze program (E.Interp.test_input ~max_blocks:scale_blocks ()) in
  let miss_of_layout layout =
    Colayout_cache.Cache_stats.miss_ratio
      (Pipeline.miss_ratio_solo ~params ~layout trace)
  in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Petrank-Rawitz wall (§III-D): heuristics vs the true optimum over all %d \
            function layouts of a 7-function program"
           opt.Optimal.evaluated)
      ~columns:
        [
          ("layout", Table.Left);
          ("miss ratio", Table.Right);
          ("gap to optimal", Table.Right);
        ]
  in
  let add name mr =
    let gap =
      if opt.Optimal.best_miss_ratio = 0.0 then 0.0
      else (mr -. opt.Optimal.best_miss_ratio) /. opt.Optimal.best_miss_ratio *. 100.0
    in
    Table.add_row t
      [ name; Table.fmt_pct (100.0 *. mr); Printf.sprintf "+%.1f%%" gap ]
  in
  add "optimal (exhaustive)" opt.Optimal.best_miss_ratio;
  List.iter
    (fun kind ->
      add (O.kind_name kind) (miss_of_layout (Optimizer.layout_for kind program analysis)))
    [ O.Func_affinity; O.Func_trg; O.Original ];
  add "padded TPCM (Gloy-Smith)"
    (miss_of_layout
       (Trg_place.layout_for
          ~config:{ Optimizer.default_config with Optimizer.params }
          program analysis));
  add "Pettis-Hansen call graph"
    (miss_of_layout (Pettis_hansen.layout_for program ref_run.E.Interp.call_trace));
  let annealed =
    Anneal.search ~seed:11 ~steps:(match Ctx.scale ctx with Ctx.Fast -> 150 | Ctx.Full -> 400)
      ~params program trace
  in
  add
    (Printf.sprintf "simulated annealing (%d sims)" annealed.Anneal.steps)
    annealed.Anneal.miss_ratio;
  (* Batched annealing: the same search driven through Layout_eval's batch
     API — a whole neighborhood scored per temperature step, fanned across
     the context's pool when it has one. Results are bit-identical at any
     jobs count (the engine's determinism contract), so this row is safe
     under the parallel table-equality tests. *)
  let engine = Layout_eval.create ?pool:(Ctx.pool ctx) ~params program trace in
  let batched =
    Anneal.search_batch ~seed:11
      ~steps:(match Ctx.scale ctx with Ctx.Fast -> 30 | Ctx.Full -> 80)
      ~width:8 engine
  in
  add
    (Printf.sprintf "batched annealing (%d sims, width 8)" batched.Anneal.steps)
    batched.Anneal.miss_ratio;
  add "worst permutation" opt.Optimal.worst_miss_ratio;
  (* Why this stops at toy scale: the paper's programs. *)
  let t2 =
    Table.create ~title:"The wall: function-layout search spaces of the 8 study programs"
      ~columns:[ ("program", Table.Left); ("functions", Table.Right); ("layouts (F!)", Table.Right) ]
  in
  List.iter
    (fun name ->
      let f = Colayout_ir.Program.num_funcs (Ctx.program ctx name) in
      Table.add_row t2
        [ name; string_of_int f; Printf.sprintf "~10^%.0f" (log10_factorial f) ])
    W.Spec.deep_eight;
  [ t; t2 ]
