open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

let kinds = [ O.Original; O.Func_affinity; O.Bb_affinity ]

let pct_reduction ~base ~v = if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0

(* Phase 1 warms programs, analyses and the three layouts in parallel;
   phase 2 runs one pool task per program, covering that row's SMT solo
   runs and hw-counter miss ratios. *)
let run ctx =
  let speed =
    Table.create
      ~title:
        "Figure 5a: solo-run performance speedup of the affinity optimizers (paper: -1%..3%)"
      ~columns:
        [
          ("program", Table.Left);
          ("function reordering", Table.Right);
          ("BB reordering", Table.Right);
        ]
  in
  let miss =
    Table.create
      ~title:
        "Figure 5b: solo-run I-cache miss reduction, hw counters (paper: up to 34% func / \
         37% BB)"
      ~columns:
        [
          ("program", Table.Left);
          ("function reordering", Table.Right);
          ("BB reordering", Table.Right);
        ]
  in
  Ctx.prewarm ctx ~kinds W.Spec.deep_eight;
  let rows =
    Ctx.par_map ctx
      (fun name ->
        Ctx.progress ctx (Printf.sprintf "fig5: %s" name);
        let base_cycles = float_of_int (Ctx.smt_solo ctx name O.Original).E.Smt.cycles in
        let base_miss = Ctx.solo_miss_ratio ctx ~hw:true name O.Original in
        let speedup kind =
          Stats.speedup ~base:base_cycles
            ~opt:(float_of_int (Ctx.smt_solo ctx name kind).E.Smt.cycles)
        in
        let reduction kind =
          pct_reduction ~base:base_miss ~v:(Ctx.solo_miss_ratio ctx ~hw:true name kind)
        in
        let pct_speedup kind = (speedup kind -. 1.0) *. 100.0 in
        ( [
            name;
            Printf.sprintf "%+.2f%%" (pct_speedup O.Func_affinity);
            Printf.sprintf "%+.2f%%" (pct_speedup O.Bb_affinity);
          ],
          [
            name;
            Printf.sprintf "%.1f%%" (reduction O.Func_affinity);
            Printf.sprintf "%.1f%%" (reduction O.Bb_affinity);
          ] ))
      W.Spec.deep_eight
  in
  List.iter
    (fun (speed_row, miss_row) ->
      Table.add_row speed speed_row;
      Table.add_row miss miss_row)
    rows;
  [ speed; miss ]
