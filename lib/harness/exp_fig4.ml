open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

(* Two-phase parallel schedule: phase 1 warms every program's artifacts
   (original layouts and reference traces, one pool task per program);
   phase 2 fans the 29 x (solo + 2 probes) simulation matrix out over the
   pool, one task per table row. Rows come back in program order, so the
   table is byte-identical at any jobs count. *)
let run ctx =
  let t =
    Table.create ~title:"Figure 4: L1I miss ratios under solo- and co-run (29 programs)"
      ~columns:
        [
          ("program", Table.Left);
          ("solo", Table.Right);
          ("403.gcc as probe", Table.Right);
          ("416.gamess as probe", Table.Right);
        ]
  in
  Ctx.prewarm ctx ~kinds:[ O.Original ] W.Spec.names;
  let rows =
    Ctx.par_map ctx
      (fun name ->
        let solo = Ctx.solo_miss_ratio ctx ~hw:false name O.Original in
        let co probe =
          Ctx.corun_miss_ratio ctx ~hw:false ~self:(name, O.Original)
            ~peer:(probe, O.Original)
        in
        [
          name;
          Table.fmt_pct (100.0 *. solo);
          Table.fmt_pct (100.0 *. co "403.gcc");
          Table.fmt_pct (100.0 *. co "416.gamess");
        ])
      W.Spec.names
  in
  Table.add_rows t rows;
  [ t ]
