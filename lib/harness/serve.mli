(** The `repro serve` driver: a long-lived streaming profile-ingest
    service over synthetic users.

    Users are independent runs of one workload program with per-user
    seeds and fuel drawn from each user's own [Prng] stream (the
    per-workload input distribution). Generation fans out over the pool
    in batches; ingest commits traces to the sharded multi-walker online
    accumulators ([Ingest]) in user order, so every artifact — digests,
    epoch rows, bounded-mode evictions — is a pure function of the
    config at any jobs count (and, in exact configurations, at any
    walker count). At each ingest epoch the consensus profile is merged and
    the consensus layout re-optimized by a warm-started
    [Layout_eval.Delta]-mode anneal against the newest trace. *)

type config = {
  program : string;
  users : int;
  seed : int;
  fuel : int;  (** Max fuel per user; each user draws from [fuel/2, fuel]. *)
  walkers : int;  (** Parallel ingest walkers (see [Ingest.config]). *)
  shards : int;
  trg_window : int;
  affinity_w : int;
  trg_cap : int;
  wits_cap : int;
  decay_shift : int;
  epoch_traces : int;
  gen_batch : int;  (** Users generated per parallel batch. *)
  reopt_steps : int;  (** Anneal steps per epoch re-optimization; 0 = off. *)
  verify : bool;
      (** Also run the batch kernels on every user trace and merge them
          with [Ingest.batch_digests_parts]. *)
}

val config :
  ?users:int ->
  ?seed:int ->
  ?fuel:int ->
  ?walkers:int ->
  ?shards:int ->
  ?trg_window:int ->
  ?affinity_w:int ->
  ?trg_cap:int ->
  ?wits_cap:int ->
  ?decay_shift:int ->
  ?epoch_traces:int ->
  ?gen_batch:int ->
  ?reopt_steps:int ->
  ?verify:bool ->
  program:string ->
  unit ->
  config
(** Validated smart constructor; ingest-level fields are checked by
    [Ingest.config] at {!run} time. *)

type epoch_row = {
  epoch : int;
  at_trace : int;
  partial : bool;  (** Flush-on-exit row covering an unfinished epoch. *)
  trg_edges : int;
  affine_pairs : int;
  miss_ratio : float;  (** Re-optimized order on the newest trace; nan if reopt off. *)
  improved_from : float;  (** Previous consensus order on that trace; nan if reopt off. *)
}

type summary = {
  cfg : config;
  num_symbols : int;
  num_funcs : int;
  stats : Colayout.Ingest.stats;
  wall_ns : int;
  gen_ns : int;
  ingest_ns : int;
  reopt_ns : int;
  traces_per_sec : float;  (** Traces over the end-to-end wall. *)
  events_per_sec : float;  (** Raw events over ingest time alone. *)
  edge_ops_per_sec : float;  (** TRG + witness table ops over ingest time. *)
  trg_digest : string;
  affine_digest : string;
  batch_trg_digest : string option;  (** [verify] only. *)
  batch_affine_digest : string option;
  digests_match : bool option;
  epoch_rows : epoch_row list;
  trace_p50_ns : float;
  trace_p95_ns : float;
  trace_p99_ns : float;
  merge_p50_ns : float;
  final_order : int array;  (** Last re-optimized consensus function order. *)
}

val run :
  ?pool:Colayout_util.Pool.t ->
  ?metrics:Colayout_util.Metrics.t ->
  ?spans:Colayout_util.Span.t ->
  ?obs:Colayout_util.Obs.t ->
  config ->
  summary
(** Run the service to completion over [cfg.users] users. When [users] is
    not a multiple of [epoch_traces], a final {e partial} epoch row (and
    snapshot) flushes the tail on exit, so ingested traces are never
    silently absorbed. With [obs], every epoch additionally records a
    [colayout/obs/v1] snapshot: the epoch row, the drift signal, metrics
    counter/percentile summaries, GC state, and a conservation-checked
    interference probe of the current consensus layout co-running against
    the unoptimized original (its defensiveness/politeness scores) — the
    probe simulation runs only when [obs] is attached.
    @raise Not_found on an unknown program name (callers pre-validate
    against [Workloads.Spec.names]). *)

val summary_to_json : summary -> Colayout_util.Json.t
(** Schema [colayout/serve/v1]. *)

(** {1 Spool watching}

    `repro serve --from DIR` follows a live trace spool: directories are
    polled for [.trc] / [.trace] files, and each file is ingested exactly
    once, after its (size, mtime) is stable across two consecutive
    polls. *)

type spool_report = {
  sp_polls : int;
  sp_ingested : int;
  sp_skipped : int;  (** Universe mismatches. *)
  sp_pending : string list;  (** Seen but not (yet) ingested at exit. *)
}

val wait_spool_symbols :
  dirs:string list -> ?poll_ms:int -> timeout_s:float -> unit -> int option
(** Poll [dirs] until some trace file's header parses; its symbol
    universe size bootstraps the ingest config when the spool starts
    empty. [None] when the deadline passes with no readable file. *)

val watch_spool :
  ing:Colayout.Ingest.t ->
  dirs:string list ->
  ?poll_ms:int ->
  ?skip:string list ->
  ?on_poll:(int -> unit) ->
  timeout_s:float ->
  unit ->
  spool_report
(** Tail [dirs] until [timeout_s] elapses (always polling at least twice,
    so a pre-existing stable file is ingested even with [timeout_s = 0.]),
    feeding each stable new file through [Ingest.feed_file]. Files listed
    in [skip] are treated as already ingested; files with a mismatched
    symbol universe are skipped and counted; files whose body is still
    truncated mid-write are retried on later polls. [on_poll] (a test
    hook) fires with the 0-based poll index before each scan.
    @raise Invalid_argument when [poll_ms < 1]. *)
