open Colayout
module U = Colayout_util
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

(* The `repro serve` driver: a long-lived profile-ingest service fed by
   synthetic "users". Each user is one run of a workload program with a
   per-user input seed and fuel drawn from the user's own [Prng] stream —
   the per-workload input distribution — so thousands of users exercise
   thousands of distinct control paths through the same code. Users are
   generated in pool-parallel batches but committed to the [Ingest]
   walker in user order, so the accumulated profile (and everything
   downstream: digests, consensus layouts, bounded-mode evictions) is a
   pure function of the config, at any jobs count.

   At every ingest epoch the shard tables merge into a consensus profile
   and the layout is re-optimized incrementally: a short warm-started
   anneal ([~initial] = the previous consensus order) scored through
   [Layout_eval.Delta] against the newest user trace. [improved_from]
   in each epoch row is the previous order's miss ratio on that trace —
   the drift signal the re-optimization absorbs. *)

type config = {
  program : string;
  users : int;
  seed : int;
  fuel : int;  (** Max fuel per user; each user draws from [fuel/2, fuel]. *)
  walkers : int;  (** Parallel ingest walkers (see [Ingest.config]). *)
  shards : int;
  trg_window : int;
  affinity_w : int;
  trg_cap : int;
  wits_cap : int;
  decay_shift : int;
  epoch_traces : int;
  gen_batch : int;  (** Users generated per parallel batch. *)
  reopt_steps : int;  (** Anneal steps per epoch re-optimization; 0 = off. *)
  verify : bool;  (** Also run the batch kernels on every user trace and merge. *)
}

let config ?(users = 64) ?(seed = 1) ?(fuel = 4_000) ?(walkers = 1) ?(shards = 2)
    ?(trg_window = 64) ?(affinity_w = 16) ?(trg_cap = 0) ?(wits_cap = 0) ?(decay_shift = 0)
    ?(epoch_traces = 16) ?(gen_batch = 16) ?(reopt_steps = 120) ?(verify = false) ~program () =
  if users < 1 then invalid_arg "Serve.config: users must be >= 1";
  if fuel < 2 then invalid_arg "Serve.config: fuel must be >= 2";
  if walkers < 1 then invalid_arg "Serve.config: walkers must be >= 1";
  if gen_batch < 1 then invalid_arg "Serve.config: gen_batch must be >= 1";
  if reopt_steps < 0 then invalid_arg "Serve.config: reopt_steps must be >= 0";
  {
    program;
    users;
    seed;
    fuel;
    walkers;
    shards;
    trg_window;
    affinity_w;
    trg_cap;
    wits_cap;
    decay_shift;
    epoch_traces;
    gen_batch;
    reopt_steps;
    verify;
  }

type epoch_row = {
  epoch : int;
  at_trace : int;
  partial : bool;  (** Flush-on-exit row covering an unfinished epoch. *)
  trg_edges : int;
  affine_pairs : int;
  miss_ratio : float;  (** Re-optimized order on the newest trace; nan if reopt off. *)
  improved_from : float;  (** Previous consensus order on that trace; nan if reopt off. *)
}

type summary = {
  cfg : config;
  num_symbols : int;
  num_funcs : int;
  stats : Ingest.stats;
  wall_ns : int;
  gen_ns : int;
  ingest_ns : int;
  reopt_ns : int;
  traces_per_sec : float;  (** Traces over the end-to-end wall. *)
  events_per_sec : float;  (** Raw events over ingest time alone. *)
  edge_ops_per_sec : float;  (** TRG + witness table ops over ingest time. *)
  trg_digest : string;
  affine_digest : string;
  batch_trg_digest : string option;  (** [verify] only. *)
  batch_affine_digest : string option;
  digests_match : bool option;
  epoch_rows : epoch_row list;
  trace_p50_ns : float;
  trace_p95_ns : float;
  trace_p99_ns : float;
  merge_p50_ns : float;
  final_order : int array;  (** Last re-optimized consensus function order. *)
}

(* Per-user generation: seed and fuel come from the user's own stream so
   any worker can generate any user independently and identically. *)
let gen_user program cfg u =
  let prng = U.Prng.create ~seed:(cfg.seed + ((u + 1) * 0x9E3779B1)) in
  let input_seed = U.Prng.int prng 1_000_000_000 in
  let fuel = (cfg.fuel / 2) + U.Prng.int prng ((cfg.fuel / 2) + 1) in
  (E.Interp.run program (E.Interp.test_input ~seed:input_seed ~max_blocks:fuel ())).E.Interp
    .bb_trace

let run ?pool ?metrics ?spans ?obs cfg =
  let metrics = match metrics with Some m -> m | None -> U.Metrics.create () in
  let spans = match spans with Some s -> s | None -> U.Span.create () in
  let program = W.Spec.build cfg.program in
  let num_symbols = Colayout_ir.Program.num_blocks program in
  let num_funcs = Colayout_ir.Program.num_funcs program in
  let icfg =
    Ingest.config ~num_symbols ~walkers:cfg.walkers ~shards:cfg.shards
      ~trg_window:cfg.trg_window ~affinity_w:cfg.affinity_w ~trg_cap:cfg.trg_cap
      ~wits_cap:cfg.wits_cap ~decay_shift:cfg.decay_shift ~epoch_traces:cfg.epoch_traces ()
  in
  let ing = Ingest.create ?pool ~metrics icfg in
  let clock = U.Metrics.default_clock in
  let t_start = clock () in
  let gen_ns = ref 0L and ingest_ns = ref 0L and reopt_ns = ref 0L in
  let params = C.Params.default_l1i in
  let order = ref (Array.init num_funcs Fun.id) in
  let epoch_rows = ref [] in
  let seen_epochs = ref 0 in
  (* Per-trace streams: the batch reference runs the kernels on each user
     trace independently and merges with [Ingest.batch_digests_parts] —
     the same algebra the walkers use, at any walker count. *)
  let verify_parts = if cfg.verify then Some (ref []) else None in
  (* Interference probe, taken only when an observatory is attached (the
     co-run simulation is real work; without [obs] the epoch loop pays
     nothing): the current consensus order co-runs against the unoptimized
     layout of the same program on the newest trace, and the sink's
     conservation-checked matrices say how defensive/polite the layout the
     service is converging on actually is. *)
  let interference tr =
    let self = Layout.of_function_order program !order in
    let peer = Layout.original program in
    let sink =
      C.Profile_sink.create ~threads:2 ~classify:false ~num_blocks:num_symbols ~params ()
    in
    let stats = Pipeline.miss_ratio_corun ~sink ~params ~self:(self, tr) ~peer:(peer, tr) () in
    C.Profile.interference_json ~label:"consensus_vs_original" ~sink ~stats
  in
  let run_epoch ~partial tr =
    let t0 = clock () in
    let ep = if partial then !seen_epochs + 1 else !seen_epochs in
    let c = Ingest.finalize ing in
    let miss, improved =
      if cfg.reopt_steps > 0 then begin
        let r =
          Anneal.search ~seed:(cfg.seed + ep) ~steps:cfg.reopt_steps
            ~initial:(Array.copy !order) ~max_span:8 ~params program tr
        in
        order := r.Anneal.order;
        (r.Anneal.miss_ratio, r.Anneal.improved_from)
      end
      else (Float.nan, Float.nan)
    in
    let trg_edges =
      let n = ref 0 in
      Trg.iter_edges (fun _ _ _ -> incr n) c.Ingest.trg;
      !n
    in
    let at_trace = (Ingest.stats ing).Ingest.traces in
    let affine_pairs = Array.length c.Ingest.affine in
    epoch_rows :=
      { epoch = ep; at_trace; partial; trg_edges; affine_pairs; miss_ratio = miss; improved_from = improved }
      :: !epoch_rows;
    reopt_ns := Int64.add !reopt_ns (Int64.sub (clock ()) t0);
    match obs with
    | None -> ()
    | Some o ->
      let open U.Json in
      let num f = if Float.is_nan f then Null else Float f in
      U.Obs.record o ~label:"epoch"
        ([
           ("epoch", Int ep);
           ("at_trace", Int at_trace);
           ("partial", Bool partial);
           ("trg_edges", Int trg_edges);
           ("affine_pairs", Int affine_pairs);
           ("miss_ratio", num miss);
           ("improved_from", num improved);
           ("drift", num (improved -. miss));
           ("interference", interference tr);
         ]
        @ U.Obs.metrics_fields metrics
        @ U.Obs.gc_fields ())
  in
  let last_trace = ref None in
  let traces_at_epoch = ref 0 in
  U.Span.with_span spans ~cat:"serve" "serve.ingest" (fun () ->
      let u = ref 0 in
      while !u < cfg.users do
        let batch = min cfg.gen_batch (cfg.users - !u) in
        let idx = Array.init batch (fun i -> !u + i) in
        let t0 = clock () in
        let traces =
          match pool with
          | Some p -> U.Pool.map_array p (fun i -> gen_user program cfg i) idx
          | None -> Array.map (fun i -> gen_user program cfg i) idx
        in
        gen_ns := Int64.add !gen_ns (Int64.sub (clock ()) t0);
        Array.iter
          (fun tr ->
            (match verify_parts with Some parts -> parts := tr :: !parts | None -> ());
            let t0 = clock () in
            Ingest.ingest_trace ing tr;
            ingest_ns := Int64.add !ingest_ns (Int64.sub (clock ()) t0);
            last_trace := Some tr;
            let st = Ingest.stats ing in
            if st.Ingest.epochs > !seen_epochs then begin
              seen_epochs := st.Ingest.epochs;
              traces_at_epoch := st.Ingest.traces;
              run_epoch ~partial:false tr
            end)
          traces;
        u := !u + batch
      done;
      (* Flush-on-exit: a run whose user count is not a multiple of
         [epoch_traces] ends mid-epoch; without this the tail's traces
         would be merged into the consensus digests yet never surface in
         an epoch row or snapshot. *)
      match !last_trace with
      | Some tr when (Ingest.stats ing).Ingest.traces > !traces_at_epoch ->
        run_epoch ~partial:true tr
      | _ -> ());
  let consensus = U.Span.with_span spans ~cat:"serve" "serve.merge" (fun () -> Ingest.finalize ing) in
  let trg_digest, affine_digest = Ingest.consensus_digests consensus in
  let batch_trg, batch_aff, digests_match =
    match verify_parts with
    | Some parts ->
      let bt, ba =
        Ingest.batch_digests_parts ~trg_window:cfg.trg_window ~affinity_w:cfg.affinity_w
          (List.rev !parts)
      in
      (Some bt, Some ba, Some (bt = trg_digest && ba = affine_digest))
    | None -> (None, None, None)
  in
  let wall_ns = Int64.to_int (Int64.sub (clock ()) t_start) in
  let stats = Ingest.stats ing in
  let per_sec count ns = if ns <= 0 then 0.0 else float_of_int count *. 1e9 /. float_of_int ns in
  let h_trace = U.Metrics.histogram metrics "ingest.trace_ns" in
  let h_merge = U.Metrics.histogram metrics "ingest.merge_ns" in
  U.Metrics.set_gauge metrics "serve.traces_per_sec" (per_sec stats.Ingest.traces wall_ns);
  U.Metrics.set_gauge metrics "serve.events_per_sec"
    (per_sec stats.Ingest.events (Int64.to_int !ingest_ns));
  U.Metrics.add metrics "serve.users" cfg.users;
  {
    cfg;
    num_symbols;
    num_funcs;
    stats;
    wall_ns;
    gen_ns = Int64.to_int !gen_ns;
    ingest_ns = Int64.to_int !ingest_ns;
    reopt_ns = Int64.to_int !reopt_ns;
    traces_per_sec = per_sec stats.Ingest.traces wall_ns;
    events_per_sec = per_sec stats.Ingest.events (Int64.to_int !ingest_ns);
    edge_ops_per_sec =
      per_sec (stats.Ingest.trg_ops + stats.Ingest.wit_ops) (Int64.to_int !ingest_ns);
    trg_digest;
    affine_digest;
    batch_trg_digest = batch_trg;
    batch_affine_digest = batch_aff;
    digests_match;
    epoch_rows = List.rev !epoch_rows;
    trace_p50_ns = U.Metrics.percentile h_trace 0.50;
    trace_p95_ns = U.Metrics.percentile h_trace 0.95;
    trace_p99_ns = U.Metrics.percentile h_trace 0.99;
    merge_p50_ns = U.Metrics.percentile h_merge 0.50;
    final_order = !order;
  }

let float_or_null f = if Float.is_nan f then U.Json.Null else U.Json.Float f

let summary_to_json (s : summary) =
  let open U.Json in
  let st = s.stats in
  Obj
    [
      ("schema", Str "colayout/serve/v1");
      ( "config",
        Obj
          [
            ("program", Str s.cfg.program);
            ("users", Int s.cfg.users);
            ("seed", Int s.cfg.seed);
            ("fuel", Int s.cfg.fuel);
            ("walkers", Int s.cfg.walkers);
            ("shards", Int s.cfg.shards);
            ("trg_window", Int s.cfg.trg_window);
            ("affinity_w", Int s.cfg.affinity_w);
            ("trg_cap", Int s.cfg.trg_cap);
            ("wits_cap", Int s.cfg.wits_cap);
            ("decay_shift", Int s.cfg.decay_shift);
            ("epoch_traces", Int s.cfg.epoch_traces);
            ("gen_batch", Int s.cfg.gen_batch);
            ("reopt_steps", Int s.cfg.reopt_steps);
          ] );
      ("num_symbols", Int s.num_symbols);
      ("num_funcs", Int s.num_funcs);
      ( "stats",
        Obj
          [
            ("traces", Int st.Ingest.traces);
            ("events", Int st.Ingest.events);
            ("kept_events", Int st.Ingest.kept_events);
            ("trg_ops", Int st.Ingest.trg_ops);
            ("wit_ops", Int st.Ingest.wit_ops);
            ("flushes", Int st.Ingest.flushes);
            ("dispatches", Int st.Ingest.dispatches);
            ("epochs", Int st.Ingest.epochs);
            ("merges", Int st.Ingest.merges);
            ("trg_live", Int st.Ingest.trg_live);
            ("wits_live", Int st.Ingest.wits_live);
            ("trg_peak_shard", Int st.Ingest.trg_peak_shard);
            ("wits_peak_shard", Int st.Ingest.wits_peak_shard);
            ("trg_evicted", Int st.Ingest.trg_evicted);
            ("wits_evicted", Int st.Ingest.wits_evicted);
            ("decay_dropped", Int st.Ingest.decay_dropped);
            ("dead_pruned", Int st.Ingest.dead_pruned);
          ] );
      ("wall_ns", Int s.wall_ns);
      ("gen_ns", Int s.gen_ns);
      ("ingest_ns", Int s.ingest_ns);
      ("reopt_ns", Int s.reopt_ns);
      ("traces_per_sec", Float s.traces_per_sec);
      ("events_per_sec", Float s.events_per_sec);
      ("edge_ops_per_sec", Float s.edge_ops_per_sec);
      ("trg_digest", Str s.trg_digest);
      ("affine_digest", Str s.affine_digest);
      ( "verify",
        match s.digests_match with
        | None -> Null
        | Some ok ->
          Obj
            [
              ("batch_trg_digest", Str (Option.get s.batch_trg_digest));
              ("batch_affine_digest", Str (Option.get s.batch_affine_digest));
              ("digests_match", Bool ok);
            ] );
      ( "epochs",
        Arr
          (List.map
             (fun (r : epoch_row) ->
               Obj
                 [
                   ("epoch", Int r.epoch);
                   ("at_trace", Int r.at_trace);
                   ("partial", Bool r.partial);
                   ("trg_edges", Int r.trg_edges);
                   ("affine_pairs", Int r.affine_pairs);
                   ("miss_ratio", float_or_null r.miss_ratio);
                   ("improved_from", float_or_null r.improved_from);
                 ])
             s.epoch_rows) );
      ("trace_p50_ns", Float s.trace_p50_ns);
      ("trace_p95_ns", Float s.trace_p95_ns);
      ("trace_p99_ns", Float s.trace_p99_ns);
      ("merge_p50_ns", Float s.merge_p50_ns);
    ]

(* --- Directory-watch spool tail loop (`repro serve --from DIR`) ----------

   Polls one or more spool directories for trace files and feeds each new
   file to the ingest walker exactly once. A file is only ingested after
   its (size, mtime) has been stable across two consecutive polls — the
   cheap "the writer is done" heuristic for files that land via rename or
   a fast sequential write — and a file whose body still turns out to be
   truncated ([Trace_io] raises [Failure]) is retried on later polls.
   Files whose header universe disagrees with the ingest config are
   skipped (counted, never retried): a shared spool can hold traces for
   several programs. *)

type spool_report = {
  sp_polls : int;
  sp_ingested : int;
  sp_skipped : int;  (** Universe mismatches. *)
  sp_pending : string list;  (** Seen but not (yet) ingested at exit. *)
}

let is_trace_file name =
  Filename.check_suffix name ".trc" || Filename.check_suffix name ".trace"

let list_spool dirs =
  List.concat_map
    (fun dir ->
      match Sys.readdir dir with
      | entries ->
        let files =
          Array.to_list entries |> List.filter is_trace_file
          |> List.map (fun e -> Filename.concat dir e)
        in
        List.sort compare files
      | exception Sys_error _ -> [])
    dirs

let stat_file path =
  match Unix.stat path with
  | st -> Some (st.Unix.st_size, st.Unix.st_mtime)
  | exception Unix.Unix_error _ -> None

(* Poll [dirs] until some trace file's header parses, returning its
   symbol-universe size — how `serve --from DIR` bootstraps an [Ingest]
   config when the spool starts empty. *)
let wait_spool_symbols ~dirs ?(poll_ms = 50) ~timeout_s () =
  let clock = U.Metrics.default_clock in
  let t0 = clock () in
  let elapsed () = Int64.to_float (Int64.sub (clock ()) t0) /. 1e9 in
  let probe () =
    List.find_map
      (fun path ->
        match Colayout_trace.Trace_io.with_reader ~path Colayout_trace.Trace_io.reader_num_symbols with
        | n -> Some n
        | exception _ -> None)
      (list_spool dirs)
  in
  let rec go () =
    match probe () with
    | Some n -> Some n
    | None ->
      if elapsed () >= timeout_s then None
      else begin
        Unix.sleepf (float_of_int poll_ms /. 1e3);
        go ()
      end
  in
  go ()

type spool_state = Pending of int * float | Ingested | Skipped

let watch_spool ~ing ~dirs ?(poll_ms = 50) ?(skip = []) ?on_poll ~timeout_s () =
  if poll_ms < 1 then invalid_arg "Serve.watch_spool: poll_ms must be >= 1";
  let clock = U.Metrics.default_clock in
  let t0 = clock () in
  let elapsed () = Int64.to_float (Int64.sub (clock ()) t0) /. 1e9 in
  let seen : (string, spool_state) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun p -> Hashtbl.replace seen p Ingested) skip;
  let ingested = ref 0 and skipped = ref 0 in
  let try_ingest path =
    match Ingest.feed_file ing ~path with
    | () ->
      Hashtbl.replace seen path Ingested;
      incr ingested
    | exception Failure _ ->
      (* Truncated body: the stability heuristic lost; retry from scratch
         on a later poll once the stat settles again. *)
      Hashtbl.remove seen path
    | exception Invalid_argument _ ->
      Hashtbl.replace seen path Skipped;
      incr skipped
  in
  let scan () =
    List.iter
      (fun path ->
        match stat_file path with
        | None -> ()
        | Some (size, mtime) -> (
          match Hashtbl.find_opt seen path with
          | Some Ingested | Some Skipped -> ()
          | Some (Pending (psize, pmtime)) when psize = size && pmtime = mtime ->
            try_ingest path
          | _ -> Hashtbl.replace seen path (Pending (size, mtime))))
      (list_spool dirs)
  in
  let polls = ref 0 in
  let continue = ref true in
  while !continue do
    (match on_poll with Some f -> f !polls | None -> ());
    scan ();
    incr polls;
    (* Always poll at least twice so files present at startup pass the
       two-poll stability check even with [timeout_s = 0.]. *)
    if !polls >= 2 && elapsed () >= timeout_s then continue := false
    else begin
      let remaining = timeout_s -. elapsed () in
      Unix.sleepf (Float.min (float_of_int poll_ms /. 1e3) (Float.max remaining 1e-4))
    end
  done;
  let pending =
    Hashtbl.fold (fun p st acc -> match st with Pending _ -> p :: acc | _ -> acc) seen []
    |> List.sort compare
  in
  { sp_polls = !polls; sp_ingested = !ingested; sp_skipped = !skipped; sp_pending = pending }
