type verbosity = Quiet | Normal | Debug

let src = Logs.Src.create "colayout.harness" ~doc:"Experiment-harness progress"

module Log = (val Logs.src_log src : Logs.LOG)

let verbosity_of_string = function
  | "quiet" -> Some Quiet
  | "normal" -> Some Normal
  | "debug" -> Some Debug
  | _ -> None

let verbosity_to_string = function Quiet -> "quiet" | Normal -> "normal" | Debug -> "debug"

let level_of_verbosity = function
  | Quiet -> None
  | Normal -> Some Logs.Info
  | Debug -> Some Logs.Debug

(* A minimal stderr reporter in the seed's "  [harness] ..." style; no
   colors, one line per message, flushed eagerly so progress interleaves
   correctly with table output on stdout. Pool tasks log from worker
   domains, and err_formatter's buffer is shared — a mutex keeps each
   line whole. *)
let reporter () =
  let lock = Mutex.create () in
  let report _src level ~over k msgf =
    let k _ =
      Mutex.unlock lock;
      over ();
      k ()
    in
    msgf (fun ?header:_ ?tags:_ fmt ->
        let prefix = match level with Logs.Debug -> "  [harness:debug] " | _ -> "  [harness] " in
        Mutex.lock lock;
        Format.kfprintf k Format.err_formatter ("%s" ^^ fmt ^^ "@.") prefix)
  in
  { Logs.report }

let setup verbosity =
  Logs.set_reporter (reporter ());
  Logs.Src.set_level src (level_of_verbosity verbosity)

let info fmt = Format.kasprintf (fun s -> Log.info (fun m -> m "%s" s)) fmt

let debug fmt = Format.kasprintf (fun s -> Log.debug (fun m -> m "%s" s)) fmt
