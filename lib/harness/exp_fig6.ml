open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

let optimizers = [ O.Func_affinity; O.Bb_affinity; O.Func_trg ]

let corun_cycles ctx ~self ~probe =
  let r =
    Ctx.smt_corun ctx ~mode:E.Smt.Measure_first ~self ~peer:(probe, O.Original)
  in
  float_of_int r.E.Smt.t0.E.Smt.cycles

let speedup ctx kind ~self ~probe =
  let base = corun_cycles ctx ~self:(self, O.Original) ~probe in
  let opt = corun_cycles ctx ~self:(self, kind) ~probe in
  Stats.speedup ~base ~opt

(* The whole (kind x self x probe) co-run matrix as one flat fan-out:
   phase 1 warms the per-program artifacts, phase 2 runs one pool task per
   cell (the baseline original|probe co-run is shared across kinds through
   the single-flight memo). Cells land in an index-addressed array, so the
   per-kind tables read identically at any jobs count. *)
let run ctx =
  Ctx.prewarm ctx ~kinds:(O.Original :: optimizers) W.Spec.deep_eight;
  let selves = Array.of_list W.Spec.deep_eight in
  let probes = Array.of_list W.Spec.deep_eight in
  let cells =
    List.concat_map
      (fun kind ->
        List.concat_map
          (fun self ->
            List.map (fun probe -> (kind, self, probe)) (Array.to_list probes))
          (Array.to_list selves))
      optimizers
  in
  let values =
    Ctx.par_map ctx
      (fun (kind, self, probe) ->
        Ctx.progress ctx
          (Printf.sprintf "fig6 %s: %s | %s" (O.kind_name kind) self probe);
        speedup ctx kind ~self ~probe)
      cells
  in
  let value = Array.of_list values in
  let np = Array.length probes in
  let cell ~ki ~si ~pi = value.((((ki * Array.length selves) + si) * np) + pi) in
  List.mapi
    (fun ki kind ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 6 (%s): co-run speedup of optimized vs original, per probe"
               (O.kind_name kind))
          ~columns:
            (("program", Table.Left)
            :: (List.map (fun p -> (W.Spec.short_name p, Table.Right)) W.Spec.deep_eight
               @ [ ("avg", Table.Right) ]))
      in
      Array.iteri
        (fun si self ->
          let row = List.init np (fun pi -> cell ~ki ~si ~pi) in
          Table.add_row t
            (self
            :: (List.map Table.fmt_ratio row @ [ Table.fmt_ratio (Stats.mean row) ])))
        selves;
      t)
    optimizers
