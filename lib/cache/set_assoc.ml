type t = {
  params : Params.t;
  (* ways.(set).(i) is the line cached in way i of the set, or -1; way order
     encodes recency: index 0 is MRU. Associativities are small (4 in the
     paper's configuration), so shifting an array segment on access is
     cheaper than pointer structures. *)
  ways : int array array;
  mutable evictions : int;
}

let create params =
  {
    params;
    ways = Array.init params.Params.num_sets (fun _ -> Array.make params.Params.assoc (-1));
    evictions = 0;
  }

let evictions t = t.evictions

let params t = t.params

let find_way set line =
  let rec loop i = if i >= Array.length set then -1 else if set.(i) = line then i else loop (i + 1) in
  loop 0

let promote set i =
  (* Move way [i] to MRU position 0, shifting [0, i) down by one. *)
  let line = set.(i) in
  Array.blit set 0 set 1 i;
  set.(0) <- line

let access_line t line =
  let set = t.ways.(Params.set_of_line t.params line) in
  let i = find_way set line in
  if i >= 0 then begin
    promote set i;
    true
  end
  else begin
    (* Miss: evict LRU (last slot) by shifting everything down. *)
    if set.(Array.length set - 1) >= 0 then t.evictions <- t.evictions + 1;
    Array.blit set 0 set 1 (Array.length set - 1);
    set.(0) <- line;
    false
  end

(* Profiled twin of [access_line]: same replacement decisions, but the
   eviction verdict (with the victim line, for ownership attribution) and
   the block/thread context are reported to the sink. A separate function
   — not a flag on the hot path — so unprofiled simulation pays nothing
   for the profiler's existence. *)
let access_line_profiled t sink ~thread ~block line =
  let set = t.ways.(Params.set_of_line t.params line) in
  let i = find_way set line in
  if i >= 0 then begin
    promote set i;
    Profile_sink.record sink ~thread ~block ~line ~hit:true ~victim:(-1);
    true
  end
  else begin
    let victim = set.(Array.length set - 1) in
    if victim >= 0 then t.evictions <- t.evictions + 1;
    Array.blit set 0 set 1 (Array.length set - 1);
    set.(0) <- line;
    Profile_sink.record sink ~thread ~block ~line ~hit:false ~victim;
    false
  end

let probe_line t line =
  let set = t.ways.(Params.set_of_line t.params line) in
  find_way set line >= 0

let fill_line t line =
  let set = t.ways.(Params.set_of_line t.params line) in
  let i = find_way set line in
  if i >= 0 then promote set i
  else begin
    if set.(Array.length set - 1) >= 0 then t.evictions <- t.evictions + 1;
    Array.blit set 0 set 1 (Array.length set - 1);
    set.(0) <- line
  end

let access_range t ~addr ~bytes ~hits ~misses =
  let first, last = Params.lines_spanned t.params ~addr ~bytes in
  for line = first to last do
    if access_line t line then incr hits else incr misses
  done

let invalidate_all t =
  Array.iter (fun set -> Array.fill set 0 (Array.length set) (-1)) t.ways

let resident_lines t =
  let acc = ref [] in
  Array.iter (fun set -> Array.iter (fun l -> if l >= 0 then acc := l :: !acc) set) t.ways;
  List.sort compare !acc

let occupancy t = List.length (resident_lines t)
