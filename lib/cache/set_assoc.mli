(** Set-associative LRU cache over line numbers.

    This is the simulator counterpart of the paper's Pin-based CMP L1
    instruction cache (§III-A). It is address-agnostic above the line level:
    callers pass line numbers (address / 64). Used for both solo-run and
    shared (SMT) simulation — in the shared case two fetch streams simply
    access the same instance. *)

type t

val create : Params.t -> t

val params : t -> Params.t

val access_line : t -> int -> bool
(** [access_line t line] touches a line; returns [true] on hit. Misses fill
    the line, evicting the set's LRU way. *)

val access_line_profiled : t -> Profile_sink.t -> thread:int -> block:int -> int -> bool
(** Exactly {!access_line}, additionally reporting the access (with its
    set, the evicted victim line if any, and the caller's block/thread
    attribution) to the profile sink. Kept separate so the unprofiled path
    stays unchanged. *)

val probe_line : t -> int -> bool
(** Hit test without state change. *)

val fill_line : t -> int -> unit
(** Insert without being an access (prefetch fills). *)

val access_range : t -> addr:int -> bytes:int -> hits:int ref -> misses:int ref -> unit
(** Touch every line spanned by [bytes] at [addr], accumulating counts. *)

val evictions : t -> int
(** Cumulative count of valid lines replaced (by {!access_line} misses and
    {!fill_line} inserts) since creation. *)

val invalidate_all : t -> unit

val resident_lines : t -> int list
(** Sorted list of currently cached line numbers (for tests). *)

val occupancy : t -> int
