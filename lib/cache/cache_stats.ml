(* Evictions come from two sources with different semantics: [set_evictions]
   syncs the *absolute* cumulative count of this object's own simulator
   (idempotent — Hierarchy re-syncs on every stats read), while [merge_into]
   folds in *totals of other stats objects*. Keeping the two in separate
   cells makes both operations correct in any order: a re-sync after a merge
   refreshes only the own-simulator part and never clobbers merged
   contributions. *)
type t = {
  acc : int array;
  miss : int array;
  mutable pf : int;
  mutable ev_synced : int; (* last set_evictions value: own simulator *)
  mutable ev_merged : int; (* accumulated from merge_into sources *)
}

let create ?(threads = 1) () =
  if threads <= 0 then invalid_arg "Cache_stats.create";
  { acc = Array.make threads 0; miss = Array.make threads 0; pf = 0; ev_synced = 0; ev_merged = 0 }

let check t thread =
  if thread < 0 || thread >= Array.length t.acc then
    invalid_arg (Printf.sprintf "Cache_stats: bad thread %d" thread)

let record t ~thread ~hit =
  check t thread;
  t.acc.(thread) <- t.acc.(thread) + 1;
  if not hit then t.miss.(thread) <- t.miss.(thread) + 1

let record_prefetch t = t.pf <- t.pf + 1

let set_evictions t n = t.ev_synced <- n

let evictions t = t.ev_synced + t.ev_merged

let sum = Array.fold_left ( + ) 0

let accesses t = sum t.acc

let misses t = sum t.miss

let hits t = accesses t - misses t

let prefetches t = t.pf

let miss_ratio t =
  let a = accesses t in
  if a = 0 then 0.0 else float_of_int (misses t) /. float_of_int a

let thread_accesses t i =
  check t i;
  t.acc.(i)

let thread_misses t i =
  check t i;
  t.miss.(i)

let thread_miss_ratio t i =
  let a = thread_accesses t i in
  if a = 0 then 0.0 else float_of_int (thread_misses t i) /. float_of_int a

let merge_into ~dst src =
  if Array.length dst.acc <> Array.length src.acc then
    invalid_arg "Cache_stats.merge_into: thread count mismatch";
  Array.iteri (fun i v -> dst.acc.(i) <- dst.acc.(i) + v) src.acc;
  Array.iteri (fun i v -> dst.miss.(i) <- dst.miss.(i) + v) src.miss;
  dst.pf <- dst.pf + src.pf;
  dst.ev_merged <- dst.ev_merged + evictions src

let to_string t =
  Printf.sprintf "accesses=%d misses=%d (%.3f%%) prefetches=%d evictions=%d" (accesses t)
    (misses t)
    (100.0 *. miss_ratio t)
    t.pf (evictions t)
