(** Mutable access/miss counters, optionally broken down per thread. *)

type t

val create : ?threads:int -> unit -> t
(** [threads] defaults to 1. *)

val record : t -> thread:int -> hit:bool -> unit

val record_prefetch : t -> unit

val set_evictions : t -> int -> unit
(** Record the simulator's cumulative eviction count (taken from the cache
    model, which observes replacements; see {!Set_assoc.evictions}). *)

val evictions : t -> int

val accesses : t -> int

val misses : t -> int

val hits : t -> int

val prefetches : t -> int

val miss_ratio : t -> float
(** 0 when no accesses. *)

val thread_accesses : t -> int -> int

val thread_misses : t -> int -> int

val thread_miss_ratio : t -> int -> float

val merge_into : dst:t -> t -> unit
(** Add per-thread and total counters of the source into [dst]. *)

val to_string : t -> string
