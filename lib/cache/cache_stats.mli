(** Mutable access/miss counters, optionally broken down per thread. *)

type t

val create : ?threads:int -> unit -> t
(** [threads] defaults to 1. *)

val record : t -> thread:int -> hit:bool -> unit

val record_prefetch : t -> unit

val set_evictions : t -> int -> unit
(** Sync the {e absolute} cumulative eviction count of this object's own
    simulator (taken from the cache model, which observes replacements; see
    {!Set_assoc.evictions}). Idempotent: re-syncing with the same simulator
    refreshes the value. Each stats object should be synced from at most
    one simulator; eviction totals of {e other} stats objects are combined
    with {!merge_into}, which accumulates separately — a [set_evictions]
    after a merge never clobbers merged contributions. *)

val evictions : t -> int
(** Own-simulator synced count plus all merged-in totals. *)

val accesses : t -> int

val misses : t -> int

val hits : t -> int

val prefetches : t -> int

val miss_ratio : t -> float
(** 0 when no accesses. *)

val thread_accesses : t -> int -> int

val thread_misses : t -> int -> int

val thread_miss_ratio : t -> int -> float

val merge_into : dst:t -> t -> unit
(** Add per-thread and total counters of the source into [dst]. The
    source's {!evictions} total is folded into [dst]'s merged bucket, so
    merging commutes with {!set_evictions} on either side. *)

val to_string : t -> string
