(** Per-block miss attribution and cross-thread interference accounting
    for the cache simulators.

    A sink collects, alongside the aggregate {!Cache_stats}, the {e where}
    and — under co-run — the {e who} of every cache event:

    - {b per code block} (and per thread): accesses, misses, evictions
      caused, peer-caused misses, peer-victim evictions, and the miss
      classification below;
    - {b per cache set}: accesses, misses, evictions, and cross-thread
      evictions — the conflict heatmap the paper's layouts redistribute;
    - {b miss classification} into cold / capacity / conflict via a
      fully-associative shadow cache of the same capacity run alongside the
      set-associative model: a first-ever touch of a line is a {e cold}
      miss; a re-miss that also misses in the shadow is a {e capacity}
      miss; a re-miss that hits in the shadow is a {e conflict} miss — the
      quantity Eq 1-2's defensiveness/politeness layouts are meant to kill;
    - {b interference matrices} attributing every eviction to
      (evictor thread, victim-owner thread) and every non-first miss to
      (missing thread, last evictor of its line). Lines only leave the
      cache by eviction, so the two matrices partition the totals exactly:
      [sum ev_matrix = evictions] and, per thread [t],
      [first_misses.(t) + sum (miss_matrix t) = thread_misses t]. From
      them come the paper's co-run scores: {!defensiveness} (how few of my
      misses a peer caused) and {!politeness} (how few misses I inflicted
      on peers).

    Profiling is pay-as-you-go: the simulators take a sink as an option and
    their unprofiled hot paths are untouched; attaching a sink roughly
    doubles simulation cost (every access also updates the shadow LRU).
    Classification assumes demand accesses only — prefetch fills bypass the
    sink, so profile with prefetching disabled (the simulated mode).

    The attribution invariant, asserted by the differential tests: with a
    sink attached to a whole simulation, {!accesses}/{!misses}/{!evictions}
    (equivalently, the per-block or per-set sums) equal the corresponding
    {!Cache_stats} totals exactly, [cold + capacity + conflict = misses]
    whenever classification is on, and the matrix conservation laws above
    hold unconditionally. *)

type t

val create : ?threads:int -> ?classify:bool -> ?num_blocks:int -> params:Params.t -> unit -> t
(** [threads] defaults to 1, as in {!Cache_stats}. [classify] (default
    [true]) runs the fully-associative shadow cache; when [false] the
    cold/capacity/conflict counters stay 0 and only attribution counts are
    kept (the interference matrices are always maintained). [num_blocks]
    pre-sizes the per-block tables (they grow on demand otherwise). *)

val params : t -> Params.t

val num_threads : t -> int

val record : t -> thread:int -> block:int -> line:int -> hit:bool -> victim:int -> unit
(** Called by the simulators for every demand access; [victim] is the line
    a miss evicted to make room, or [-1] when nothing was replaced (hits,
    and misses filling an invalid way). [block] must be non-negative;
    unattributed accesses (e.g. {!Hierarchy} lines with no block context)
    are recorded under block 0 by the caller's convention.
    @raise Invalid_argument on a bad thread index. *)

(** {1 Totals} *)

val accesses : t -> int

val misses : t -> int

val evictions : t -> int

val cold_misses : t -> int

val capacity_misses : t -> int

val conflict_misses : t -> int
(** Always 0 when [classify] is off; otherwise
    [cold + capacity + conflict = misses]. *)

val thread_accesses : t -> int -> int

val thread_misses : t -> int -> int

val thread_evictions : t -> int -> int

(** {1 Interference} *)

val ev_matrix : t -> int array array
(** [(ev_matrix t).(e).(o)] counts evictions performed by thread [e] whose
    victim line was owned (last inserted) by thread [o]. Row sums over all
    owners give each thread's {!thread_evictions}; the grand total equals
    {!evictions}. Returns a fresh copy. *)

val miss_matrix : t -> int array array
(** [(miss_matrix t).(m).(e)] counts misses by thread [m] on lines whose
    most recent departure from the cache was an eviction by thread [e].
    Together with {!first_misses} each row partitions that thread's
    misses. Returns a fresh copy. *)

val first_misses : t -> int array
(** Per-thread misses on lines never previously evicted (first touches of
    this simulation). Returns a fresh copy. *)

val suffered_misses : t -> thread:int -> int
(** Misses of [thread] caused by some {e other} thread's eviction: the
    off-diagonal row sum of {!miss_matrix}. *)

val inflicted_misses : t -> thread:int -> int
(** Misses [thread]'s evictions caused in {e other} threads: the
    off-diagonal column sum of {!miss_matrix}. *)

val defensiveness : t -> thread:int -> float
(** [1 - suffered_misses / thread_accesses], the fraction of [thread]'s
    fetches that peers could not disturb; 1.0 when it made no accesses.
    Higher is better. *)

val politeness : t -> thread:int -> float
(** [1 - inflicted_misses / peer accesses], the fraction of the peers'
    fetches [thread] left undisturbed; 1.0 when peers made no accesses.
    Higher is better. *)

(** {1 Attribution} *)

type block_counts = {
  thread : int;
  block : int;
  b_accesses : int;
  b_misses : int;
  b_cold : int;
  b_capacity : int;
  b_conflict : int;
  b_evictions : int;
  b_peer_misses : int;  (** misses on lines a peer thread last evicted *)
  b_peer_evictions : int;  (** insertions here that evicted a peer-owned line *)
}

val block_rows : t -> block_counts list
(** One row per (thread, block) with at least one access, ordered by
    (thread, block). *)

val top_conflict_blocks : t -> n:int -> block_counts list
(** The [n] rows with the most conflict misses (ties toward more misses,
    then smaller ids), rows with none excluded. *)

val num_sets : t -> int

val set_counters : t -> set:int -> int * int * int
(** [(accesses, misses, evictions)] of one cache set. *)

val set_cross_evictions : t -> set:int -> int
(** Evictions in one set whose victim belonged to a different thread than
    the evictor — the per-set cross-interference heatmap. *)
