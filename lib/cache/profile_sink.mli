(** Per-block miss attribution for the cache simulators.

    A sink collects, alongside the aggregate {!Cache_stats}, the {e where}
    of every cache event:

    - {b per code block} (and per thread): accesses, misses, evictions
      caused, and the miss classification below;
    - {b per cache set}: accesses, misses, evictions — the conflict heatmap
      the paper's layouts redistribute;
    - {b miss classification} into cold / capacity / conflict via a
      fully-associative shadow cache of the same capacity run alongside the
      set-associative model: a first-ever touch of a line is a {e cold}
      miss; a re-miss that also misses in the shadow is a {e capacity}
      miss; a re-miss that hits in the shadow is a {e conflict} miss — the
      quantity Eq 1-2's defensiveness/politeness layouts are meant to kill.

    Profiling is pay-as-you-go: the simulators take a sink as an option and
    their unprofiled hot paths are untouched; attaching a sink roughly
    doubles simulation cost (every access also updates the shadow LRU).
    Classification assumes demand accesses only — prefetch fills bypass the
    sink, so profile with prefetching disabled (the simulated mode).

    The attribution invariant, asserted by the differential tests: with a
    sink attached to a whole simulation, {!accesses}/{!misses}/{!evictions}
    (equivalently, the per-block or per-set sums) equal the corresponding
    {!Cache_stats} totals exactly, and [cold + capacity + conflict =
    misses] whenever classification is on. *)

type t

val create : ?threads:int -> ?classify:bool -> ?num_blocks:int -> params:Params.t -> unit -> t
(** [threads] defaults to 1, as in {!Cache_stats}. [classify] (default
    [true]) runs the fully-associative shadow cache; when [false] the
    cold/capacity/conflict counters stay 0 and only attribution counts are
    kept. [num_blocks] pre-sizes the per-block tables (they grow on demand
    otherwise). *)

val params : t -> Params.t

val record : t -> thread:int -> block:int -> line:int -> hit:bool -> evicted:bool -> unit
(** Called by the simulators for every demand access; [evicted] marks a
    miss that replaced a valid line. [block] must be non-negative;
    unattributed accesses (e.g. {!Hierarchy} lines with no block context)
    are recorded under block 0 by the caller's convention.
    @raise Invalid_argument on a bad thread index. *)

(** {1 Totals} *)

val accesses : t -> int

val misses : t -> int

val evictions : t -> int

val cold_misses : t -> int

val capacity_misses : t -> int

val conflict_misses : t -> int
(** Always 0 when [classify] is off; otherwise
    [cold + capacity + conflict = misses]. *)

(** {1 Attribution} *)

type block_counts = {
  thread : int;
  block : int;
  b_accesses : int;
  b_misses : int;
  b_cold : int;
  b_capacity : int;
  b_conflict : int;
  b_evictions : int;
}

val block_rows : t -> block_counts list
(** One row per (thread, block) with at least one access, ordered by
    (thread, block). *)

val top_conflict_blocks : t -> n:int -> block_counts list
(** The [n] rows with the most conflict misses (ties toward more misses,
    then smaller ids), rows with none excluded. *)

val num_sets : t -> int

val set_counters : t -> set:int -> int * int * int
(** [(accesses, misses, evictions)] of one cache set. *)
