(** Fully-associative LRU cache over line numbers.

    The reference model behind the capacity-miss equations of §II-A: a
    fully-associative cache of capacity [c] lines misses exactly when the
    reuse distance reaches [c]. Used as a test oracle for {!Set_assoc} (with
    [num_sets = 1] they must agree), by the miss-probability model, and as
    the shadow cache of {!Profile_sink}'s miss classifier (a reference that
    misses in the set-associative cache but hits here is a conflict miss). *)

type t

val create : capacity:int -> t
(** Capacity in lines. *)

val access_line : t -> int -> bool

val probe_line : t -> int -> bool
(** Hit test without state change. *)

val evictions : t -> int
(** Cumulative count of lines replaced since creation. *)

val occupancy : t -> int

val resident_lines : t -> int list
