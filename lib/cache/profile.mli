(** Self-describing cache-behavior profile artifact
    (schema [colayout/profile/v1]).

    Aggregates what a {!Profile_sink} attributed — classification totals,
    top conflict-missing blocks, the per-set pressure histogram — and what
    the optimizer's decision trace counted, into one JSON document with a
    before/after delta section: the explanatory artifact behind the paper's
    claim that layout moves misses out of the conflict class. *)

val schema : string
(** ["colayout/profile/v1"]. *)

type layout_profile = {
  label : string;  (** e.g. the optimizer kind name. *)
  sink : Profile_sink.t;
  stats : Cache_stats.t;  (** The simulator totals the sink must match. *)
}

val layout_json :
  ?top:int -> ?block_name:(int -> string) -> layout_profile -> Colayout_util.Json.t
(** One layout's section: totals (accesses/misses/evictions and the
    cold/capacity/conflict split), the [top] (default 10) conflict-missing
    blocks (optionally named via [block_name]), and per-set
    access/miss/eviction arrays.
    @raise Invalid_argument if the sink's access/miss totals disagree with
    [stats] — attribution must be exact, a mismatch is a simulator bug. *)

val interference_json :
  label:string -> sink:Profile_sink.t -> stats:Cache_stats.t -> Colayout_util.Json.t
(** One co-run cell's interference section: per-thread access/miss totals,
    the eviction and miss-provenance matrices, first-touch misses, and the
    derived suffered/inflicted counts and defensiveness/politeness scores.
    @raise Invalid_argument unless the matrices conserve: the eviction
    matrix sums to [Cache_stats.evictions], and each thread's
    [first + miss-matrix row] equals its [Cache_stats] miss count (with
    access totals matching too). *)

val to_json :
  ?top:int ->
  ?block_name:(int -> string) ->
  ?decisions:(string * int) list ->
  program:string ->
  params:Params.t ->
  layouts:layout_profile list ->
  unit ->
  Colayout_util.Json.t
(** The full artifact. [layouts] must be non-empty; the first entry is the
    baseline, and a ["delta"] section reports miss / conflict-miss /
    eviction changes of every other layout against it. [decisions] are
    [(stage.action, count)] pairs from the optimizer's decision trace. *)
