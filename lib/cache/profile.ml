module J = Colayout_util.Json

let schema = "colayout/profile/v1"

type layout_profile = {
  label : string;
  sink : Profile_sink.t;
  stats : Cache_stats.t;
}

let totals_json sink =
  J.Obj
    [
      ("accesses", J.Int (Profile_sink.accesses sink));
      ("misses", J.Int (Profile_sink.misses sink));
      ("evictions", J.Int (Profile_sink.evictions sink));
      ("cold", J.Int (Profile_sink.cold_misses sink));
      ("capacity", J.Int (Profile_sink.capacity_misses sink));
      ("conflict", J.Int (Profile_sink.conflict_misses sink));
    ]

let block_json ?block_name (r : Profile_sink.block_counts) =
  let base =
    [
      ("thread", J.Int r.Profile_sink.thread);
      ("block", J.Int r.Profile_sink.block);
      ("accesses", J.Int r.Profile_sink.b_accesses);
      ("misses", J.Int r.Profile_sink.b_misses);
      ("cold", J.Int r.Profile_sink.b_cold);
      ("capacity", J.Int r.Profile_sink.b_capacity);
      ("conflict", J.Int r.Profile_sink.b_conflict);
      ("evictions", J.Int r.Profile_sink.b_evictions);
    ]
  in
  match block_name with
  | None -> J.Obj base
  | Some f -> J.Obj (("name", J.Str (f r.Profile_sink.block)) :: base)

let set_histogram_json sink =
  let n = Profile_sink.num_sets sink in
  let col f = J.Arr (List.init n (fun s -> J.Int (f (Profile_sink.set_counters sink ~set:s)))) in
  J.Obj
    [
      ("sets", J.Int n);
      ("accesses", col (fun (a, _, _) -> a));
      ("misses", col (fun (_, m, _) -> m));
      ("evictions", col (fun (_, _, e) -> e));
    ]

let layout_json ?(top = 10) ?block_name lp =
  (* The attribution contract: a sink wired through a whole simulation saw
     every demand access the stats counted, no more, no less. *)
  if
    Profile_sink.accesses lp.sink <> Cache_stats.accesses lp.stats
    || Profile_sink.misses lp.sink <> Cache_stats.misses lp.stats
  then
    invalid_arg
      (Printf.sprintf
         "Profile.layout_json: %s attribution disagrees with Cache_stats (acc %d/%d, miss %d/%d)"
         lp.label (Profile_sink.accesses lp.sink) (Cache_stats.accesses lp.stats)
         (Profile_sink.misses lp.sink) (Cache_stats.misses lp.stats));
  J.Obj
    [
      ("label", J.Str lp.label);
      ("totals", totals_json lp.sink);
      ( "top_conflict_blocks",
        J.Arr (List.map (block_json ?block_name) (Profile_sink.top_conflict_blocks lp.sink ~n:top)) );
      ("set_histogram", set_histogram_json lp.sink);
    ]

let delta_json ~baseline other =
  let d f = J.Int (f baseline.sink - f other.sink) in
  J.Obj
    [
      ("label", J.Str other.label);
      ("baseline", J.Str baseline.label);
      ("miss_reduction", d Profile_sink.misses);
      ("conflict_reduction", d Profile_sink.conflict_misses);
      ("eviction_reduction", d Profile_sink.evictions);
    ]

let to_json ?(top = 10) ?block_name ?(decisions = []) ~program ~params ~layouts () =
  match layouts with
  | [] -> invalid_arg "Profile.to_json: layouts must be non-empty"
  | baseline :: rest ->
    J.Obj
      [
        ("schema", J.Str schema);
        ("program", J.Str program);
        ("cache", J.Str (Params.to_string params));
        ("top", J.Int top);
        ("layouts", J.Arr (List.map (layout_json ~top ?block_name) layouts));
        ("delta", J.Arr (List.map (delta_json ~baseline) rest));
        ( "decisions",
          J.Obj
            [
              ("total", J.Int (List.fold_left (fun acc (_, n) -> acc + n) 0 decisions));
              ("by_action", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) decisions));
            ] );
      ]
