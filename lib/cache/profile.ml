module J = Colayout_util.Json

let schema = "colayout/profile/v1"

type layout_profile = {
  label : string;
  sink : Profile_sink.t;
  stats : Cache_stats.t;
}

let totals_json sink =
  J.Obj
    [
      ("accesses", J.Int (Profile_sink.accesses sink));
      ("misses", J.Int (Profile_sink.misses sink));
      ("evictions", J.Int (Profile_sink.evictions sink));
      ("cold", J.Int (Profile_sink.cold_misses sink));
      ("capacity", J.Int (Profile_sink.capacity_misses sink));
      ("conflict", J.Int (Profile_sink.conflict_misses sink));
    ]

let block_json ?block_name (r : Profile_sink.block_counts) =
  let base =
    [
      ("thread", J.Int r.Profile_sink.thread);
      ("block", J.Int r.Profile_sink.block);
      ("accesses", J.Int r.Profile_sink.b_accesses);
      ("misses", J.Int r.Profile_sink.b_misses);
      ("cold", J.Int r.Profile_sink.b_cold);
      ("capacity", J.Int r.Profile_sink.b_capacity);
      ("conflict", J.Int r.Profile_sink.b_conflict);
      ("evictions", J.Int r.Profile_sink.b_evictions);
      ("peer_misses", J.Int r.Profile_sink.b_peer_misses);
      ("peer_evictions", J.Int r.Profile_sink.b_peer_evictions);
    ]
  in
  match block_name with
  | None -> J.Obj base
  | Some f -> J.Obj (("name", J.Str (f r.Profile_sink.block)) :: base)

let set_histogram_json sink =
  let n = Profile_sink.num_sets sink in
  let col f = J.Arr (List.init n (fun s -> J.Int (f (Profile_sink.set_counters sink ~set:s)))) in
  J.Obj
    [
      ("sets", J.Int n);
      ("accesses", col (fun (a, _, _) -> a));
      ("misses", col (fun (_, m, _) -> m));
      ("evictions", col (fun (_, _, e) -> e));
    ]

let layout_json ?(top = 10) ?block_name lp =
  (* The attribution contract: a sink wired through a whole simulation saw
     every demand access the stats counted, no more, no less. *)
  if
    Profile_sink.accesses lp.sink <> Cache_stats.accesses lp.stats
    || Profile_sink.misses lp.sink <> Cache_stats.misses lp.stats
  then
    invalid_arg
      (Printf.sprintf
         "Profile.layout_json: %s attribution disagrees with Cache_stats (acc %d/%d, miss %d/%d)"
         lp.label (Profile_sink.accesses lp.sink) (Cache_stats.accesses lp.stats)
         (Profile_sink.misses lp.sink) (Cache_stats.misses lp.stats));
  J.Obj
    [
      ("label", J.Str lp.label);
      ("totals", totals_json lp.sink);
      ( "top_conflict_blocks",
        J.Arr (List.map (block_json ?block_name) (Profile_sink.top_conflict_blocks lp.sink ~n:top)) );
      ("set_histogram", set_histogram_json lp.sink);
    ]

let matrix_json m = J.Arr (Array.to_list (Array.map (fun row -> J.Arr (Array.to_list (Array.map (fun n -> J.Int n) row))) m))

let interference_json ~label ~sink ~stats =
  (* Conservation is the whole point of the matrices: every eviction has
     exactly one (evictor, owner) cell, every miss is first-touch or has
     exactly one last-evictor cell, and the marginals must reproduce the
     simulator's own totals. A mismatch is a simulator bug, same contract
     as [layout_json]. *)
  let nt = Profile_sink.num_threads sink in
  let ev = Profile_sink.ev_matrix sink
  and ms = Profile_sink.miss_matrix sink
  and first = Profile_sink.first_misses sink in
  let sum2 m = Array.fold_left (fun a row -> Array.fold_left ( + ) a row) 0 m in
  if sum2 ev <> Cache_stats.evictions stats then
    invalid_arg
      (Printf.sprintf
         "Profile.interference_json: %s eviction matrix sums to %d, Cache_stats counted %d"
         label (sum2 ev) (Cache_stats.evictions stats));
  for th = 0 to nt - 1 do
    let row = Array.fold_left ( + ) first.(th) ms.(th) in
    if row <> Cache_stats.thread_misses stats th then
      invalid_arg
        (Printf.sprintf
           "Profile.interference_json: %s thread %d miss row sums to %d, Cache_stats counted %d"
           label th row (Cache_stats.thread_misses stats th));
    if Profile_sink.thread_accesses sink th <> Cache_stats.thread_accesses stats th then
      invalid_arg
        (Printf.sprintf
           "Profile.interference_json: %s thread %d attribution disagrees with Cache_stats (acc %d/%d)"
           label th (Profile_sink.thread_accesses sink th)
           (Cache_stats.thread_accesses stats th))
  done;
  let per f = J.Arr (List.init nt (fun th -> f th)) in
  J.Obj
    [
      ("label", J.Str label);
      ("threads", J.Int nt);
      ("accesses", per (fun th -> J.Int (Cache_stats.thread_accesses stats th)));
      ("misses", per (fun th -> J.Int (Cache_stats.thread_misses stats th)));
      ("evictions", J.Int (Cache_stats.evictions stats));
      ("ev_matrix", matrix_json ev);
      ("miss_matrix", matrix_json ms);
      ("first_misses", J.Arr (Array.to_list (Array.map (fun n -> J.Int n) first)));
      ("suffered", per (fun th -> J.Int (Profile_sink.suffered_misses sink ~thread:th)));
      ("inflicted", per (fun th -> J.Int (Profile_sink.inflicted_misses sink ~thread:th)));
      ("defensiveness", per (fun th -> J.Float (Profile_sink.defensiveness sink ~thread:th)));
      ("politeness", per (fun th -> J.Float (Profile_sink.politeness sink ~thread:th)));
    ]

let delta_json ~baseline other =
  let d f = J.Int (f baseline.sink - f other.sink) in
  J.Obj
    [
      ("label", J.Str other.label);
      ("baseline", J.Str baseline.label);
      ("miss_reduction", d Profile_sink.misses);
      ("conflict_reduction", d Profile_sink.conflict_misses);
      ("eviction_reduction", d Profile_sink.evictions);
    ]

let to_json ?(top = 10) ?block_name ?(decisions = []) ~program ~params ~layouts () =
  match layouts with
  | [] -> invalid_arg "Profile.to_json: layouts must be non-empty"
  | baseline :: rest ->
    J.Obj
      [
        ("schema", J.Str schema);
        ("program", J.Str program);
        ("cache", J.Str (Params.to_string params));
        ("top", J.Int top);
        ("layouts", J.Arr (List.map (layout_json ~top ?block_name) layouts));
        ("delta", J.Arr (List.map (delta_json ~baseline) rest));
        ( "decisions",
          J.Obj
            [
              ("total", J.Int (List.fold_left (fun acc (_, n) -> acc + n) 0 decisions));
              ("by_action", J.Obj (List.map (fun (k, n) -> (k, J.Int n)) decisions));
            ] );
      ]
