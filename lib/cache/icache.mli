(** Trace-driven instruction-cache simulation.

    Replays a basic-block execution trace against a {!Set_assoc} cache given
    a code layout (per-block start address and byte size): each executed
    block fetches every cache line its bytes span. Solo and shared (two
    streams in one cache, round-robin per line, approximating SMT fetch
    interleaving) modes — the trace-driven counterpart of the paper's Pin
    simulator. *)

type layout = {
  addr : int array;  (** Start address per block id. *)
  bytes : int array;  (** Size per block id. *)
}

val solo :
  ?prefetch:Prefetch.t ->
  ?sink:Profile_sink.t ->
  params:Params.t ->
  layout:layout ->
  Colayout_util.Int_vec.t ->
  Cache_stats.t
(** Replay one block trace; stats have a single thread. When [sink] is
    given, every demand access is attributed to its block and cache set
    (and classified, see {!Profile_sink}); the sink's totals equal the
    returned stats exactly. *)

val shared :
  ?prefetch:Prefetch.t ->
  ?sink:Profile_sink.t ->
  ?rates:float * float ->
  params:Params.t ->
  layouts:layout * layout ->
  Colayout_util.Int_vec.t * Colayout_util.Int_vec.t ->
  Cache_stats.t
(** Replay two block traces into one cache, alternating line accesses
    between the threads ([rates], default [1.0, 1.0], scale how many line
    fetches each thread performs per step — a data-bound program fetches
    instructions more slowly than a compute-bound one). The second
    thread's addresses are offset by a disambiguating stride so the two
    programs do not alias by accident, as two processes' code would not.
    Stats have two threads. When one trace ends it is restarted, until the
    longer trace completes one full pass — both programs keep running, as in
    the paper's co-run methodology of timing against a continuously running
    peer. A [sink] (it must have two threads) attributes each access to the
    fetching thread's current block; the offset address spaces keep the
    shadow classifier's line universe disjoint while the per-set heatmap
    folds both threads onto the physical sets they share. *)

val lines_of_block : params:Params.t -> layout:layout -> int -> int * int
(** [(first_line, last_line)] of a block id under a layout. *)
