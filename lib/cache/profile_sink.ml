(* Per-block / per-set attribution counters plus the 3C classifier.

   Per-thread block tables are flat int arrays indexed by block id, grown
   by doubling — block ids are dense (program block numbering), so arrays
   beat hashing on the access path. The shadow cache and the seen-lines
   table key on raw line numbers, so the co-run simulator's offset address
   spaces (thread 1 at +2^40 lines) stay distinct, while the per-set
   counters fold both threads onto the physical sets they really share. *)

type per_thread = {
  mutable acc : int array;
  mutable miss : int array;
  mutable cold : int array;
  mutable cap : int array;
  mutable conf : int array;
  mutable ev : int array;
  mutable hi : int; (* 1 + highest block id seen, bounds the live prefix *)
}

type t = {
  params : Params.t;
  threads : per_thread array;
  set_acc : int array;
  set_miss : int array;
  set_ev : int array;
  shadow : Fully_assoc.t option;
  seen : (int, unit) Hashtbl.t;
}

let make_thread n =
  {
    acc = Array.make n 0;
    miss = Array.make n 0;
    cold = Array.make n 0;
    cap = Array.make n 0;
    conf = Array.make n 0;
    ev = Array.make n 0;
    hi = 0;
  }

let create ?(threads = 1) ?(classify = true) ?(num_blocks = 64) ~params () =
  if threads <= 0 then invalid_arg "Profile_sink.create: threads must be positive";
  if num_blocks <= 0 then invalid_arg "Profile_sink.create: num_blocks must be positive";
  {
    params;
    threads = Array.init threads (fun _ -> make_thread num_blocks);
    set_acc = Array.make params.Params.num_sets 0;
    set_miss = Array.make params.Params.num_sets 0;
    set_ev = Array.make params.Params.num_sets 0;
    shadow = (if classify then Some (Fully_assoc.create ~capacity:(Params.lines_total params)) else None);
    seen = Hashtbl.create 1024;
  }

let params t = t.params

let grow a n =
  let a' = Array.make n 0 in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure pt block =
  if block >= Array.length pt.acc then begin
    let n = ref (2 * Array.length pt.acc) in
    while block >= !n do
      n := 2 * !n
    done;
    pt.acc <- grow pt.acc !n;
    pt.miss <- grow pt.miss !n;
    pt.cold <- grow pt.cold !n;
    pt.cap <- grow pt.cap !n;
    pt.conf <- grow pt.conf !n;
    pt.ev <- grow pt.ev !n
  end;
  if block >= pt.hi then pt.hi <- block + 1

let record t ~thread ~block ~line ~hit ~evicted =
  if thread < 0 || thread >= Array.length t.threads then
    invalid_arg (Printf.sprintf "Profile_sink.record: bad thread %d" thread);
  let block = if block < 0 then 0 else block in
  let set = Params.set_of_line t.params line in
  t.set_acc.(set) <- t.set_acc.(set) + 1;
  (* The shadow LRU must observe every access — hits keep its recency
     honest — so classification stays exact even though only misses read
     its verdict. *)
  let shadow_hit =
    match t.shadow with Some sh -> Fully_assoc.access_line sh line | None -> false
  in
  let pt = t.threads.(thread) in
  ensure pt block;
  pt.acc.(block) <- pt.acc.(block) + 1;
  if not hit then begin
    t.set_miss.(set) <- t.set_miss.(set) + 1;
    pt.miss.(block) <- pt.miss.(block) + 1;
    if evicted then begin
      t.set_ev.(set) <- t.set_ev.(set) + 1;
      pt.ev.(block) <- pt.ev.(block) + 1
    end;
    if t.shadow <> None then
      if not (Hashtbl.mem t.seen line) then begin
        (* A hit implies an earlier access, so first touches are always
           misses: recording seen lines on the miss path alone is exact. *)
        Hashtbl.replace t.seen line ();
        pt.cold.(block) <- pt.cold.(block) + 1
      end
      else if shadow_hit then pt.conf.(block) <- pt.conf.(block) + 1
      else pt.cap.(block) <- pt.cap.(block) + 1
  end

let sum_field f t =
  Array.fold_left
    (fun acc pt ->
      let s = ref acc in
      let a = f pt in
      for b = 0 to pt.hi - 1 do
        s := !s + a.(b)
      done;
      !s)
    0 t.threads

let accesses t = sum_field (fun pt -> pt.acc) t

let misses t = sum_field (fun pt -> pt.miss) t

let evictions t = sum_field (fun pt -> pt.ev) t

let cold_misses t = sum_field (fun pt -> pt.cold) t

let capacity_misses t = sum_field (fun pt -> pt.cap) t

let conflict_misses t = sum_field (fun pt -> pt.conf) t

type block_counts = {
  thread : int;
  block : int;
  b_accesses : int;
  b_misses : int;
  b_cold : int;
  b_capacity : int;
  b_conflict : int;
  b_evictions : int;
}

let block_rows t =
  let rows = ref [] in
  for th = Array.length t.threads - 1 downto 0 do
    let pt = t.threads.(th) in
    for b = pt.hi - 1 downto 0 do
      if pt.acc.(b) > 0 then
        rows :=
          {
            thread = th;
            block = b;
            b_accesses = pt.acc.(b);
            b_misses = pt.miss.(b);
            b_cold = pt.cold.(b);
            b_capacity = pt.cap.(b);
            b_conflict = pt.conf.(b);
            b_evictions = pt.ev.(b);
          }
          :: !rows
    done
  done;
  !rows

let top_conflict_blocks t ~n =
  block_rows t
  |> List.filter (fun r -> r.b_conflict > 0)
  |> List.sort (fun a b ->
         if a.b_conflict <> b.b_conflict then compare b.b_conflict a.b_conflict
         else if a.b_misses <> b.b_misses then compare b.b_misses a.b_misses
         else compare (a.thread, a.block) (b.thread, b.block))
  |> List.filteri (fun i _ -> i < n)

let num_sets t = t.params.Params.num_sets

let set_counters t ~set =
  if set < 0 || set >= num_sets t then invalid_arg "Profile_sink.set_counters";
  (t.set_acc.(set), t.set_miss.(set), t.set_ev.(set))
