(* Per-block / per-set attribution counters, the 3C classifier, and the
   cross-thread interference matrices.

   Per-thread block tables are flat int arrays indexed by block id, grown
   by doubling — block ids are dense (program block numbering), so arrays
   beat hashing on the access path. The shadow cache and the seen-lines
   table key on raw line numbers, so the co-run simulator's offset address
   spaces (thread 1 at +2^40 lines) stay distinct, while the per-set
   counters fold both threads onto the physical sets they really share.

   Interference is attributed by line ownership: every insertion records
   which thread owns the filled line, so when a later insertion evicts it
   the sink knows whose working set just shrank, and when the owner
   re-misses on that line the sink knows which thread's eviction caused
   the miss. Lines leave the cache only by eviction, so every non-first
   miss has exactly one provenance (the last evictor of its line) and the
   matrices partition the Cache_stats totals exactly. *)

type per_thread = {
  mutable acc : int array;
  mutable miss : int array;
  mutable cold : int array;
  mutable cap : int array;
  mutable conf : int array;
  mutable ev : int array;
  mutable miss_peer : int array; (* misses whose line a peer last evicted *)
  mutable ev_peer : int array; (* insertions that evicted a peer-owned line *)
  mutable hi : int; (* 1 + highest block id seen, bounds the live prefix *)
}

type t = {
  params : Params.t;
  threads : per_thread array;
  set_acc : int array;
  set_miss : int array;
  set_ev : int array;
  set_ev_cross : int array; (* evictions where evictor <> victim owner *)
  ev_mat : int array array; (* ev_mat.(evictor).(owner) *)
  miss_mat : int array array; (* miss_mat.(misser).(last evictor) *)
  first_miss : int array; (* per-thread first-touch (never-evicted) misses *)
  owners : (int, int) Hashtbl.t; (* resident line -> inserting thread *)
  last_ev : (int, int) Hashtbl.t; (* line -> thread that last evicted it *)
  shadow : Fully_assoc.t option;
  seen : (int, unit) Hashtbl.t;
}

let make_thread n =
  {
    acc = Array.make n 0;
    miss = Array.make n 0;
    cold = Array.make n 0;
    cap = Array.make n 0;
    conf = Array.make n 0;
    ev = Array.make n 0;
    miss_peer = Array.make n 0;
    ev_peer = Array.make n 0;
    hi = 0;
  }

let create ?(threads = 1) ?(classify = true) ?(num_blocks = 64) ~params () =
  if threads <= 0 then invalid_arg "Profile_sink.create: threads must be positive";
  if num_blocks <= 0 then invalid_arg "Profile_sink.create: num_blocks must be positive";
  {
    params;
    threads = Array.init threads (fun _ -> make_thread num_blocks);
    set_acc = Array.make params.Params.num_sets 0;
    set_miss = Array.make params.Params.num_sets 0;
    set_ev = Array.make params.Params.num_sets 0;
    set_ev_cross = Array.make params.Params.num_sets 0;
    ev_mat = Array.make_matrix threads threads 0;
    miss_mat = Array.make_matrix threads threads 0;
    first_miss = Array.make threads 0;
    owners = Hashtbl.create 1024;
    last_ev = Hashtbl.create 1024;
    shadow = (if classify then Some (Fully_assoc.create ~capacity:(Params.lines_total params)) else None);
    seen = Hashtbl.create 1024;
  }

let params t = t.params

let num_threads t = Array.length t.threads

let grow a n =
  let a' = Array.make n 0 in
  Array.blit a 0 a' 0 (Array.length a);
  a'

let ensure pt block =
  if block >= Array.length pt.acc then begin
    let n = ref (2 * Array.length pt.acc) in
    while block >= !n do
      n := 2 * !n
    done;
    pt.acc <- grow pt.acc !n;
    pt.miss <- grow pt.miss !n;
    pt.cold <- grow pt.cold !n;
    pt.cap <- grow pt.cap !n;
    pt.conf <- grow pt.conf !n;
    pt.ev <- grow pt.ev !n;
    pt.miss_peer <- grow pt.miss_peer !n;
    pt.ev_peer <- grow pt.ev_peer !n
  end;
  if block >= pt.hi then pt.hi <- block + 1

let record t ~thread ~block ~line ~hit ~victim =
  if thread < 0 || thread >= Array.length t.threads then
    invalid_arg (Printf.sprintf "Profile_sink.record: bad thread %d" thread);
  let block = if block < 0 then 0 else block in
  let set = Params.set_of_line t.params line in
  t.set_acc.(set) <- t.set_acc.(set) + 1;
  (* The shadow LRU must observe every access — hits keep its recency
     honest — so classification stays exact even though only misses read
     its verdict. *)
  let shadow_hit =
    match t.shadow with Some sh -> Fully_assoc.access_line sh line | None -> false
  in
  let pt = t.threads.(thread) in
  ensure pt block;
  pt.acc.(block) <- pt.acc.(block) + 1;
  if not hit then begin
    t.set_miss.(set) <- t.set_miss.(set) + 1;
    pt.miss.(block) <- pt.miss.(block) + 1;
    (* Miss provenance: a line that missed and was seen before must have
       been evicted in between (eviction is the only way out of the
       cache), so the last-evictor table classifies every miss as first /
       self-caused / peer-caused with nothing left over. *)
    (match Hashtbl.find_opt t.last_ev line with
    | None -> t.first_miss.(thread) <- t.first_miss.(thread) + 1
    | Some e ->
      t.miss_mat.(thread).(e) <- t.miss_mat.(thread).(e) + 1;
      if e <> thread then pt.miss_peer.(block) <- pt.miss_peer.(block) + 1);
    if victim >= 0 then begin
      t.set_ev.(set) <- t.set_ev.(set) + 1;
      pt.ev.(block) <- pt.ev.(block) + 1;
      (* A victim with no recorded owner was inserted behind the sink's
         back (prefetch fills, pre-warmed state); charge it to the evictor
         so cross-thread counts stay conservative. *)
      let owner =
        match Hashtbl.find_opt t.owners victim with Some o -> o | None -> thread
      in
      Hashtbl.remove t.owners victim;
      Hashtbl.replace t.last_ev victim thread;
      t.ev_mat.(thread).(owner) <- t.ev_mat.(thread).(owner) + 1;
      if owner <> thread then begin
        pt.ev_peer.(block) <- pt.ev_peer.(block) + 1;
        let vset = Params.set_of_line t.params victim in
        t.set_ev_cross.(vset) <- t.set_ev_cross.(vset) + 1
      end
    end;
    (* This miss fills [line]: the missing thread owns it from here on. *)
    Hashtbl.replace t.owners line thread;
    if t.shadow <> None then
      if not (Hashtbl.mem t.seen line) then begin
        (* A hit implies an earlier access, so first touches are always
           misses: recording seen lines on the miss path alone is exact. *)
        Hashtbl.replace t.seen line ();
        pt.cold.(block) <- pt.cold.(block) + 1
      end
      else if shadow_hit then pt.conf.(block) <- pt.conf.(block) + 1
      else pt.cap.(block) <- pt.cap.(block) + 1
  end

let sum_field f t =
  Array.fold_left
    (fun acc pt ->
      let s = ref acc in
      let a = f pt in
      for b = 0 to pt.hi - 1 do
        s := !s + a.(b)
      done;
      !s)
    0 t.threads

let thread_sum f pt =
  let s = ref 0 in
  let a = f pt in
  for b = 0 to pt.hi - 1 do
    s := !s + a.(b)
  done;
  !s

let accesses t = sum_field (fun pt -> pt.acc) t

let misses t = sum_field (fun pt -> pt.miss) t

let evictions t = sum_field (fun pt -> pt.ev) t

let cold_misses t = sum_field (fun pt -> pt.cold) t

let capacity_misses t = sum_field (fun pt -> pt.cap) t

let conflict_misses t = sum_field (fun pt -> pt.conf) t

let check_thread t i =
  if i < 0 || i >= Array.length t.threads then
    invalid_arg (Printf.sprintf "Profile_sink: bad thread %d" i)

let thread_accesses t i =
  check_thread t i;
  thread_sum (fun pt -> pt.acc) t.threads.(i)

let thread_misses t i =
  check_thread t i;
  thread_sum (fun pt -> pt.miss) t.threads.(i)

let thread_evictions t i =
  check_thread t i;
  thread_sum (fun pt -> pt.ev) t.threads.(i)

(* ---------------- interference ---------------- *)

let copy_matrix m = Array.map Array.copy m

let ev_matrix t = copy_matrix t.ev_mat

let miss_matrix t = copy_matrix t.miss_mat

let first_misses t = Array.copy t.first_miss

let suffered_misses t ~thread =
  check_thread t thread;
  let s = ref 0 in
  Array.iteri (fun e n -> if e <> thread then s := !s + n) t.miss_mat.(thread);
  !s

let inflicted_misses t ~thread =
  check_thread t thread;
  let s = ref 0 in
  Array.iteri
    (fun m row -> if m <> thread then s := !s + row.(thread))
    t.miss_mat;
  !s

let defensiveness t ~thread =
  let a = thread_accesses t thread in
  if a = 0 then 1.0
  else 1.0 -. (float_of_int (suffered_misses t ~thread) /. float_of_int a)

let politeness t ~thread =
  check_thread t thread;
  let peer_acc = ref 0 in
  Array.iteri (fun i _ -> if i <> thread then peer_acc := !peer_acc + thread_accesses t i) t.threads;
  if !peer_acc = 0 then 1.0
  else 1.0 -. (float_of_int (inflicted_misses t ~thread) /. float_of_int !peer_acc)

type block_counts = {
  thread : int;
  block : int;
  b_accesses : int;
  b_misses : int;
  b_cold : int;
  b_capacity : int;
  b_conflict : int;
  b_evictions : int;
  b_peer_misses : int;
  b_peer_evictions : int;
}

let block_rows t =
  let rows = ref [] in
  for th = Array.length t.threads - 1 downto 0 do
    let pt = t.threads.(th) in
    for b = pt.hi - 1 downto 0 do
      if pt.acc.(b) > 0 then
        rows :=
          {
            thread = th;
            block = b;
            b_accesses = pt.acc.(b);
            b_misses = pt.miss.(b);
            b_cold = pt.cold.(b);
            b_capacity = pt.cap.(b);
            b_conflict = pt.conf.(b);
            b_evictions = pt.ev.(b);
            b_peer_misses = pt.miss_peer.(b);
            b_peer_evictions = pt.ev_peer.(b);
          }
          :: !rows
    done
  done;
  !rows

let top_conflict_blocks t ~n =
  block_rows t
  |> List.filter (fun r -> r.b_conflict > 0)
  |> List.sort (fun a b ->
         if a.b_conflict <> b.b_conflict then compare b.b_conflict a.b_conflict
         else if a.b_misses <> b.b_misses then compare b.b_misses a.b_misses
         else compare (a.thread, a.block) (b.thread, b.block))
  |> List.filteri (fun i _ -> i < n)

let num_sets t = t.params.Params.num_sets

let set_counters t ~set =
  if set < 0 || set >= num_sets t then invalid_arg "Profile_sink.set_counters";
  (t.set_acc.(set), t.set_miss.(set), t.set_ev.(set))

let set_cross_evictions t ~set =
  if set < 0 || set >= num_sets t then invalid_arg "Profile_sink.set_cross_evictions";
  t.set_ev_cross.(set)
