type t = {
  l1i : Set_assoc.t;
  l1d : Set_assoc.t;
  l2 : Set_assoc.t;
  l1i_sink : Profile_sink.t option;
  l1i_stats : Cache_stats.t;
  l1d_stats : Cache_stats.t;
  l2_stats : Cache_stats.t;
  mutable l2_instr_misses : int;
  mutable l2_data_misses : int;
}

let default_l1d = Params.make ~size_bytes:(32 * 1024) ~assoc:8 ~line_bytes:64

let default_l2 = Params.make ~size_bytes:(256 * 1024) ~assoc:8 ~line_bytes:64

let create ?(l1i = Params.default_l1i) ?(l1d = default_l1d) ?(l2 = default_l2)
    ?l1i_sink ?(threads = 1) () =
  {
    l1i = Set_assoc.create l1i;
    l1d = Set_assoc.create l1d;
    l2 = Set_assoc.create l2;
    l1i_sink;
    l1i_stats = Cache_stats.create ~threads ();
    l1d_stats = Cache_stats.create ~threads ();
    l2_stats = Cache_stats.create ~threads ();
    l2_instr_misses = 0;
    l2_data_misses = 0;
  }

(* L2 is unified: keep instruction and data lines apart with a space bit. *)
let l2_line ~is_instr line = (line lsl 1) lor if is_instr then 1 else 0

let access_l2 t ~thread ~is_instr line =
  let hit = Set_assoc.access_line t.l2 (l2_line ~is_instr line) in
  Cache_stats.record t.l2_stats ~thread ~hit;
  if not hit then
    if is_instr then t.l2_instr_misses <- t.l2_instr_misses + 1
    else t.l2_data_misses <- t.l2_data_misses + 1

let access_instr ?(block = -1) t ~thread ~line =
  let hit =
    match t.l1i_sink with
    | None -> Set_assoc.access_line t.l1i line
    | Some sink -> Set_assoc.access_line_profiled t.l1i sink ~thread ~block line
  in
  Cache_stats.record t.l1i_stats ~thread ~hit;
  if not hit then access_l2 t ~thread ~is_instr:true line

let access_data t ~thread ~addr =
  if addr < 0 then invalid_arg "Hierarchy.access_data: negative address";
  let line = addr / (Set_assoc.params t.l1d).Params.line_bytes in
  let hit = Set_assoc.access_line t.l1d line in
  Cache_stats.record t.l1d_stats ~thread ~hit;
  if not hit then access_l2 t ~thread ~is_instr:false line

(* Stats accessors sync the eviction totals from the cache models, so a
   snapshot taken at any point carries all four counters. *)
let l1i_stats t =
  Cache_stats.set_evictions t.l1i_stats (Set_assoc.evictions t.l1i);
  t.l1i_stats

let l1d_stats t =
  Cache_stats.set_evictions t.l1d_stats (Set_assoc.evictions t.l1d);
  t.l1d_stats

let l2_stats t =
  Cache_stats.set_evictions t.l2_stats (Set_assoc.evictions t.l2);
  t.l2_stats

let l2_instr_misses t = t.l2_instr_misses

let l2_data_misses t = t.l2_data_misses
