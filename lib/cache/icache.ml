open Colayout_util

type layout = {
  addr : int array;
  bytes : int array;
}

let lines_of_block ~params ~layout bid =
  Params.lines_spanned params ~addr:layout.addr.(bid) ~bytes:layout.bytes.(bid)

let access ?prefetch ?sink cache stats ~thread ~block line =
  let hit =
    match sink with
    | None -> Set_assoc.access_line cache line
    | Some s -> Set_assoc.access_line_profiled cache s ~thread ~block line
  in
  Cache_stats.record stats ~thread ~hit;
  if not hit then Option.iter (fun p -> Prefetch.on_miss p cache stats line) prefetch

let solo ?prefetch ?sink ~params ~layout trace =
  let cache = Set_assoc.create params in
  let stats = Cache_stats.create ~threads:1 () in
  Int_vec.iter
    (fun bid ->
      let first, last = lines_of_block ~params ~layout bid in
      for line = first to last do
        access ?prefetch ?sink cache stats ~thread:0 ~block:bid line
      done)
    trace;
  Cache_stats.set_evictions stats (Set_assoc.evictions cache);
  stats

(* One SMT hardware thread's walk over its block trace, exposed one cache
   line at a time. *)
type cursor = {
  trace : Int_vec.t;
  layout : layout;
  line_offset : int;
  mutable pos : int; (* index into trace *)
  mutable cur_block : int; (* block the next line belongs to *)
  mutable cur_line : int; (* next line to fetch *)
  mutable last_line : int; (* last line of current block *)
  mutable in_block : bool;
  mutable passes : int;
}

let cursor_make trace layout ~line_offset =
  {
    trace;
    layout;
    line_offset;
    pos = 0;
    cur_block = -1;
    cur_line = 0;
    last_line = -1;
    in_block = false;
    passes = 0;
  }

let rec cursor_next ~params c =
  if c.in_block && c.cur_line <= c.last_line then begin
    let l = c.cur_line in
    c.cur_line <- l + 1;
    Some (l + c.line_offset)
  end
  else if c.pos < Int_vec.length c.trace then begin
    let bid = Int_vec.get c.trace c.pos in
    c.pos <- c.pos + 1;
    let first, last = lines_of_block ~params ~layout:c.layout bid in
    c.cur_block <- bid;
    c.cur_line <- first;
    c.last_line <- last;
    c.in_block <- true;
    cursor_next ~params c
  end
  else begin
    (* Completed a pass; restart so the peer keeps creating contention. *)
    c.passes <- c.passes + 1;
    if Int_vec.length c.trace = 0 then None
    else begin
      c.pos <- 0;
      c.in_block <- false;
      cursor_next ~params c
    end
  end

let shared ?prefetch ?sink ?(rates = (1.0, 1.0)) ~params ~layouts (t0, t1) =
  let r0, r1 = rates in
  if r0 <= 0.0 || r1 <= 0.0 then invalid_arg "Icache.shared: rates must be positive";
  let l0, l1 = layouts in
  let cache = Set_assoc.create params in
  let stats = Cache_stats.create ~threads:2 () in
  (* Offset thread 1 into a distinct, set-alignment-preserving address
     region: distinct processes cannot share lines, but their set mapping is
     what it would be solo. *)
  let offset_lines = 1 lsl 40 in
  let c0 = cursor_make t0 l0 ~line_offset:0 in
  let c1 = cursor_make t1 l1 ~line_offset:offset_lines in
  let finished c = c.passes >= 1 in
  let step cursor ~thread =
    Option.iter
      (fun line -> access ?prefetch ?sink cache stats ~thread ~block:cursor.cur_block line)
      (cursor_next ~params cursor)
  in
  (* Both threads keep fetching (restarting at end of trace) until each has
     completed at least one full pass, so neither runs contention-free.
     Credit accounting delivers [r] line fetches per step per thread. *)
  let credit0 = ref 0.0 and credit1 = ref 0.0 in
  while not (finished c0 && finished c1) do
    credit0 := !credit0 +. r0;
    credit1 := !credit1 +. r1;
    while !credit0 >= 1.0 do
      credit0 := !credit0 -. 1.0;
      step c0 ~thread:0
    done;
    while !credit1 >= 1.0 do
      credit1 := !credit1 -. 1.0;
      step c1 ~thread:1
    done
  done;
  Cache_stats.set_evictions stats (Set_assoc.evictions cache);
  stats
