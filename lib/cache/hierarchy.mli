(** Two-level cache hierarchy: split L1 (instruction + data) over a shared
    unified L2.

    §II-A's Eq 1 speaks about the *unified* cache, where instruction and
    data footprints compete; the paper's evaluation measures only the L1I,
    but its benefit classification (locality / defensiveness / politeness)
    covers both. This hierarchy makes the unified level measurable: code
    layout optimization shrinks the instruction footprint, which also
    relieves L2 pressure on the data side.

    Address spaces: callers pass instruction {e lines} and data {e byte
    addresses}; instruction and data streams are disambiguated internally,
    so they never alias in L2. For SMT co-run, offset each thread's
    addresses as the L1-only simulators do — on one core, hyper-threads
    share all levels. *)

type t

val create :
  ?l1i:Params.t ->
  ?l1d:Params.t ->
  ?l2:Params.t ->
  ?l1i_sink:Profile_sink.t ->
  ?threads:int ->
  unit ->
  t
(** Defaults follow the paper's Xeon E5520: L1I 32KB/4-way, L1D 32KB/8-way,
    unified L2 256KB/8-way, all 64-byte lines. [threads] defaults to 1.
    [l1i_sink] attaches a profile sink to the L1I (the level the paper
    evaluates); it must be created with the same [l1i] params. *)

val access_instr : ?block:int -> t -> thread:int -> line:int -> unit
(** Fetch one instruction line: L1I, on miss L2. [block] (default [-1],
    i.e. unattributed) labels the access for an attached [l1i_sink]. *)

val access_data : t -> thread:int -> addr:int -> unit
(** One data reference: L1D, on miss L2. @raise Invalid_argument on negative
    addresses. *)

val l1i_stats : t -> Cache_stats.t

val l1d_stats : t -> Cache_stats.t

val l2_stats : t -> Cache_stats.t
(** L2 sees only L1 misses; its accesses equal [l1i misses + l1d misses]. *)

val l2_instr_misses : t -> int

val l2_data_misses : t -> int
