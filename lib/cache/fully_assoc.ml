open Colayout_util

type t = {
  capacity : int;
  list : int Dlist.t; (* MRU at front *)
  nodes : (int, int Dlist.node) Hashtbl.t;
  mutable evictions : int;
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Fully_assoc.create";
  { capacity; list = Dlist.create (); nodes = Hashtbl.create (2 * capacity); evictions = 0 }

let access_line t line =
  match Hashtbl.find_opt t.nodes line with
  | Some node ->
    Dlist.move_to_front t.list node;
    true
  | None ->
    if Dlist.length t.list >= t.capacity then begin
      match Dlist.back t.list with
      | Some victim ->
        Hashtbl.remove t.nodes (Dlist.value victim);
        Dlist.remove t.list victim;
        t.evictions <- t.evictions + 1
      | None -> ()
    end;
    Hashtbl.replace t.nodes line (Dlist.push_front t.list line);
    false

let probe_line t line = Hashtbl.mem t.nodes line

let evictions t = t.evictions

let occupancy t = Dlist.length t.list

let resident_lines t = List.sort compare (Dlist.to_list t.list)
