open Colayout_util
open Colayout_trace

(* Affine pairs live in a flat packed-key set: canonical (min, max) pairs
   packed as [(lo lsl 31) lor hi], value unused. *)
type pair_set = {
  pairs : Int_pair_tbl.t;
}

let canon_key x y = if x < y then Int_pair_tbl.pack x y else Int_pair_tbl.pack y x

let is_affine ps x y = x = y || Int_pair_tbl.mem ps.pairs (canon_key x y)

let pair_list ps =
  Int_pair_tbl.fold
    (fun k _ acc -> (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k) :: acc)
    ps.pairs []
  |> List.sort compare

let require_trimmed t =
  if not (Trim.is_trimmed t) then
    invalid_arg "Affinity: trace must be trimmed (no two consecutive equal blocks)"

let check_universe trace =
  if Trace.num_symbols trace > Int_pair_tbl.max_coord then
    invalid_arg "Affinity: num_symbols >= 2^31 exceeds the packed-key coordinate bound";
  if Trace.length trace > Int_pair_tbl.max_coord then
    invalid_arg "Affinity: trace length >= 2^31 exceeds the packed-payload bound"

(* Witness bookkeeping for the efficient algorithm: for the ordered pair
   (a, b), [sat] counts occurrences of [a] that have some occurrence of [b]
   within the w-window, and [last_occ] is the occurrence index of [a] most
   recently counted (so one occurrence is never counted twice). Both live in
   one packed int payload, [(last_occ lsl 31) lor sat] — an absent entry
   reads as 0, i.e. [sat = 0, last_occ = 0], exactly the old record's
   initial state, so the table never allocates per witness. *)

let affine_pairs trace ~w =
  if w < 1 then invalid_arg "Affinity.affine_pairs: w must be >= 1";
  require_trimmed trace;
  check_universe trace;
  let occ = Trace.occurrences trace in
  let occ_idx = Array.make (Trace.num_symbols trace) 0 in
  let wits = Int_pair_tbl.create ~capacity:4096 () in
  let witness a b a_occ =
    let key = Int_pair_tbl.pack a b in
    let p = Int_pair_tbl.find wits key ~default:0 in
    if Int_pair_tbl.fst_of p < a_occ then
      Int_pair_tbl.replace wits key (Int_pair_tbl.pack a_occ (Int_pair_tbl.snd_of p + 1))
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun y ->
      occ_idx.(y) <- occ_idx.(y) + 1;
      let ky = occ_idx.(y) in
      (* Walk the stack top-down. A block [x] at 1-based depth [d] has
         fp<last(x), here> = d + 1, or d if [y]'s previous occurrence lies
         above [x] (then y is already among the d-1 more-recent blocks). *)
      let y_seen = ref false in
      Lru_stack.iter_until_depth stack (fun d x ->
          if x = y then begin
            y_seen := true;
            true
          end
          else begin
            let fp = d + if !y_seen then 0 else 1 in
            if fp <= w then begin
              (* This y-occurrence sees x (backward); x's latest occurrence
                 sees y (forward). *)
              witness y x ky;
              witness x y occ_idx.(x)
            end;
            d < w
          end);
      Lru_stack.touch stack y)
    trace;
  let pairs = Int_pair_tbl.create ~capacity:1024 () in
  Int_pair_tbl.iter
    (fun key p ->
      let a = Int_pair_tbl.fst_of key in
      let b = Int_pair_tbl.snd_of key in
      if a < b then begin
        let sat_ab = Int_pair_tbl.snd_of p in
        let sat_ba = Int_pair_tbl.snd_of (Int_pair_tbl.find wits (Int_pair_tbl.pack b a) ~default:0) in
        if sat_ab = occ.(a) && sat_ba = occ.(b) && occ.(a) > 0 && occ.(b) > 0 then
          Int_pair_tbl.replace pairs key 1
      end)
    wits;
  { pairs }

let window_footprint trace a b =
  let lo = min a b and hi = max a b in
  if lo < 0 || hi >= Trace.length trace then invalid_arg "Affinity.window_footprint";
  let seen = Hashtbl.create 16 in
  for i = lo to hi do
    Hashtbl.replace seen (Trace.get trace i) ()
  done;
  Hashtbl.length seen

let positions_by_symbol trace =
  let pos = Array.make (Trace.num_symbols trace) [] in
  Trace.iteri (fun i s -> pos.(s) <- i :: pos.(s)) trace;
  Array.map List.rev pos

let affine_pairs_naive trace ~w =
  if w < 1 then invalid_arg "Affinity.affine_pairs_naive: w must be >= 1";
  require_trimmed trace;
  check_universe trace;
  let pos = positions_by_symbol trace in
  let present =
    List.filter (fun s -> pos.(s) <> []) (List.init (Trace.num_symbols trace) Fun.id)
  in
  (* Definition 3, directly: x is satisfied w.r.t. y iff every occurrence of
     x has some occurrence of y with window footprint <= w. The minimum
     footprint is reached at the nearest y occurrence on either side, but we
     simply scan them all — this is the oracle, not the fast path. *)
  let satisfied x y =
    List.for_all
      (fun p -> List.exists (fun q -> window_footprint trace p q <= w) pos.(y))
      pos.(x)
  in
  let pairs = Int_pair_tbl.create ~capacity:64 () in
  List.iter
    (fun x ->
      List.iter
        (fun y ->
          if x < y && satisfied x y && satisfied y x then
            Int_pair_tbl.replace pairs (Int_pair_tbl.pack x y) 1)
        present)
    present;
  { pairs }

let partition trace ~w =
  require_trimmed trace;
  let ps = affine_pairs trace ~w in
  let first = Trace.first_occurrence trace in
  let present =
    List.init (Trace.num_symbols trace) Fun.id
    |> List.filter (fun s -> first.(s) >= 0)
    |> List.sort (fun a b -> compare first.(a) first.(b))
  in
  (* Algorithm 1's greedy grouping: each block joins the first existing group
     in which it is affine with every member. *)
  let groups : int list list ref = ref [] in
  List.iter
    (fun blk ->
      let rec place = function
        | [] -> [ [ blk ] ]
        | g :: rest ->
          if List.for_all (fun m -> is_affine ps blk m) g then (blk :: g) :: rest
          else g :: place rest
      in
      groups := place !groups)
    present;
  List.map List.rev !groups
