open Colayout_trace

type node =
  | Leaf of int
  | Group of { k : int; children : node list }

type t = {
  roots : node list;
  ks : int list;
}

let default_ks = List.init 8 (fun i -> i + 1)

let rec members = function
  | Leaf b -> [ b ]
  | Group { children; _ } -> List.concat_map members children

let check_ks ks =
  let rec ok = function
    | [] -> true
    | [ k ] -> k >= 1
    | k1 :: (k2 :: _ as rest) -> k1 >= 1 && k1 < k2 && ok rest
  in
  if ks = [] || not (ok ks) then
    invalid_arg "Link_affinity: ks must be positive and strictly ascending"

type work = {
  node : node;
  mems : int list;
  size : int;
  first_pos : int;
}

let build ?decisions ?(algo = Affinity_hierarchy.Efficient) ?(ks = default_ks)
    ?(max_window = 64) trace =
  check_ks ks;
  if max_window < 2 then invalid_arg "Link_affinity: max_window must be >= 2";
  if not (Trim.is_trimmed trace) then
    invalid_arg "Link_affinity.build: trace must be trimmed";
  let first = Trace.first_occurrence trace in
  let present =
    List.init (Trace.num_symbols trace) Fun.id
    |> List.filter (fun s -> first.(s) >= 0)
    |> List.sort (fun a b -> compare first.(a) first.(b))
  in
  (* Pair sets per window, computed on demand: the proportional windows
     depend on group sizes discovered during merging. *)
  let pair_cache : (int, Affinity.pair_set) Hashtbl.t = Hashtbl.create 16 in
  let pairs_at w =
    let w = max 1 (min w max_window) in
    match Hashtbl.find_opt pair_cache w with
    | Some ps -> ps
    | None ->
      let ps =
        match algo with
        | Affinity_hierarchy.Efficient -> Affinity.affine_pairs trace ~w
        | Affinity_hierarchy.Exact -> Affinity.affine_pairs_naive trace ~w
      in
      Hashtbl.replace pair_cache w ps;
      ps
  in
  let merge_level ~k groups =
    let clusters : work list ref list ref = ref [] in
    List.iter
      (fun g ->
        let compatible cluster =
          let cluster_size = List.fold_left (fun acc g' -> acc + g'.size) 0 !cluster in
          (* The window grows with the would-be combined group. *)
          let w = k * (cluster_size + g.size) in
          let ps = pairs_at w in
          List.for_all
            (fun g' ->
              List.for_all
                (fun a -> List.for_all (fun b -> Affinity.is_affine ps a b) g'.mems)
                g.mems)
            !cluster
        in
        let rec place i = function
          | [] -> clusters := !clusters @ [ ref [ g ] ]
          | c :: rest ->
            if compatible c then begin
              (match !c with
              | first :: _ ->
                Decision_trace.emit decisions ~stage:"link-affinity" ~action:"join"
                  ~x:(List.hd g.mems) ~y:(List.hd first.mems) ~weight:k ~group:i
                  ~size:(List.length !c + 1) ()
              | [] -> ());
              c := !c @ [ g ]
            end
            else place (i + 1) rest
        in
        place 0 !clusters)
      groups;
    List.map
      (fun c ->
        match !c with
        | [] -> assert false
        | [ g ] -> g
        | gs ->
          {
            node = Group { k; children = List.map (fun g -> g.node) gs };
            mems = List.concat_map (fun g -> g.mems) gs;
            size = List.fold_left (fun acc g -> acc + g.size) 0 gs;
            first_pos = List.fold_left (fun acc g -> min acc g.first_pos) max_int gs;
          })
      !clusters
  in
  let groups =
    ref
      (List.map
         (fun b -> { node = Leaf b; mems = [ b ]; size = 1; first_pos = first.(b) })
         present)
  in
  List.iter
    (fun k ->
      if List.length !groups > 1 then begin
        groups := merge_level ~k !groups;
        Decision_trace.emit decisions ~stage:"link-affinity" ~action:"level" ~weight:k
          ~size:(List.length !groups) ()
      end)
    ks;
  let roots = List.sort (fun a b -> compare a.first_pos b.first_pos) !groups in
  { roots = List.map (fun g -> g.node) roots; ks }

let order t = List.concat_map members t.roots

let partition_at t ~k =
  let rec cut node =
    match node with
    | Leaf b -> [ [ b ] ]
    | Group { k = gk; children } ->
      if gk <= k then [ members node ] else List.concat_map cut children
  in
  List.concat_map cut t.roots
