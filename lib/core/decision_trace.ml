module J = Colayout_util.Json

type event = {
  step : int;
  stage : string;
  action : string;
  x : int;
  y : int;
  weight : int;
  group : int;
  size : int;
}

type t = {
  mutable rev_events : event list;
  mutable n : int;
}

let create () = { rev_events = []; n = 0 }

let emit t ~stage ~action ?(x = -1) ?(y = -1) ?(weight = -1) ?(group = -1) ?(size = -1) () =
  match t with
  | None -> ()
  | Some t ->
    t.rev_events <- { step = t.n; stage; action; x; y; weight; group; size } :: t.rev_events;
    t.n <- t.n + 1

let count t = t.n

let events t = List.rev t.rev_events

let counts_by_action t =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let key = e.stage ^ "." ^ e.action in
      Hashtbl.replace tbl key (1 + Option.value ~default:0 (Hashtbl.find_opt tbl key)))
    t.rev_events;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare

let event_json e =
  (* Omit absent (-1) fields: decision streams are long, keep lines lean. *)
  let opt name v rest = if v < 0 then rest else (name, J.Int v) :: rest in
  J.Obj
    (("step", J.Int e.step)
    :: ("stage", J.Str e.stage)
    :: ("action", J.Str e.action)
    :: opt "x" e.x (opt "y" e.y (opt "weight" e.weight (opt "group" e.group (opt "size" e.size [])))))

let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iteri
    (fun i e ->
      let json =
        match (e, event_json e) with
        | _, J.Obj fields when i = 0 ->
          J.Obj (("schema", J.Str "colayout/decisions/v1") :: fields)
        | _, json -> json
      in
      Buffer.add_string buf (J.to_string json);
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
