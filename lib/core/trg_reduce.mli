(** TRG reduction (Algorithm 2): turn a temporal-relationship graph into a
    code-block order.

    The cache is viewed as [K] same-size code slots. Repeatedly take the
    heaviest edge; each unplaced endpoint goes to the slot it conflicts with
    least (an empty slot if any — scanned in index order, first minimum
    wins), is appended to that slot's link list, and is merged into the
    slot's node (edge weights combine). Edges between different slots' nodes
    are removed: blocks in different slots cannot conflict. The output
    sequence interleaves the link lists round-robin, so consecutive output
    blocks land in different slots while same-list blocks land a full cache
    apart — exactly the placement the conflict weights argue against.

    The paper's worked example (Figure 2, 3 slots) is reproduced: reduction
    order A-B, E-F, then C, giving the sequence [A B E F C]. *)

type result = {
  order : int list;
      (** Placed blocks, round-robin across slots. Blocks with no TRG edge
          are not placed; callers append them (the optimizer keeps them in
          original order, as residual cold code). *)
  slot_lists : int list array;  (** Final link-list contents per slot. *)
}

val reduce : ?decisions:Decision_trace.t -> Trg.t -> slots:int -> result
(** @raise Invalid_argument if [slots < 1]. Deterministic: edge ties break
    toward smaller node ids. With [decisions], emits a ["trg-reduce"] event
    per placement ([place] into an empty slot, [merge] into a slot's node),
    carrying the driving edge weight and the slot index. *)

val slots_for :
  params:Colayout_cache.Params.t -> block_bytes:int -> cache_multiplier:float -> int
(** [K = (C/(A·B)) / ceil(S/(A·B))] of §II-C, with [C] scaled by
    [cache_multiplier] (the paper follows Gloy & Smith's advice of 2×). *)
