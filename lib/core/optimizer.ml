open Colayout_trace

type kind =
  | Original
  | Func_affinity
  | Bb_affinity
  | Func_trg
  | Bb_trg

let all_kinds = [ Original; Func_affinity; Bb_affinity; Func_trg; Bb_trg ]

let kind_name = function
  | Original -> "original"
  | Func_affinity -> "func-affinity"
  | Bb_affinity -> "bb-affinity"
  | Func_trg -> "func-trg"
  | Bb_trg -> "bb-trg"

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

type config = {
  ws : int list;
  prune_top : int;
  cache_multiplier : float;
  func_block_bytes : int;
  bb_block_bytes : int;
  params : Colayout_cache.Params.t;
}

let default_config =
  {
    ws = [ 2; 3; 4; 5; 6; 8; 10; 12; 16; 20 ];
    prune_top = Prune.prune_default_top;
    cache_multiplier = 2.0;
    func_block_bytes = 256;
    bb_block_bytes = 64;
    params = Colayout_cache.Params.default_l1i;
  }

type analysis = {
  bb : Trace.t;
  fn : Trace.t;
  prune : Prune.report;
}

let analysis_of_traces ?(config = default_config) ~bb ~fn () =
  let bb_trimmed = Trim.trim bb in
  let bb_pruned, report = Prune.prune bb_trimmed ~top:config.prune_top in
  { bb = bb_pruned; fn = Trim.trim fn; prune = report }

let analyze ?(config = default_config) program input =
  let result = Colayout_exec.Interp.run program input in
  analysis_of_traces ~config ~bb:result.bb_trace ~fn:result.fn_trace ()

let affinity_order ?decisions ~config trace =
  let h =
    Affinity_hierarchy.build ?decisions ~algo:Affinity_hierarchy.Efficient ~ws:config.ws trace
  in
  Affinity_hierarchy.order h

let trg_order ?decisions ~config ~block_bytes trace =
  let window =
    Trg.recommended_window ~params:config.params ~block_bytes
      ~cache_multiplier:config.cache_multiplier
  in
  let trg = Trg.build ~window trace in
  let slots =
    Trg_reduce.slots_for ~params:config.params ~block_bytes
      ~cache_multiplier:config.cache_multiplier
  in
  (Trg_reduce.reduce ?decisions trg ~slots).order

let block_order_for ?decisions ?(config = default_config) kind program analysis =
  match kind with
  | Original -> (Layout.original program).order
  | Func_affinity ->
    let hot = affinity_order ?decisions ~config analysis.fn in
    let forder = Layout.function_order_of_hot_list program ~hot in
    (Layout.of_function_order program forder).order
  | Func_trg ->
    let hot = trg_order ?decisions ~config ~block_bytes:config.func_block_bytes analysis.fn in
    let forder = Layout.function_order_of_hot_list program ~hot in
    (Layout.of_function_order program forder).order
  | Bb_affinity ->
    let hot = affinity_order ?decisions ~config analysis.bb in
    Layout.block_order_of_hot_list program ~hot
  | Bb_trg ->
    let hot = trg_order ?decisions ~config ~block_bytes:config.bb_block_bytes analysis.bb in
    Layout.block_order_of_hot_list program ~hot

let layout_for ?decisions ?(config = default_config) kind program analysis =
  match kind with
  | Original -> Layout.original program
  | Func_affinity | Func_trg ->
    let hot =
      match kind with
      | Func_affinity -> affinity_order ?decisions ~config analysis.fn
      | _ -> trg_order ?decisions ~config ~block_bytes:config.func_block_bytes analysis.fn
    in
    Layout.of_function_order program (Layout.function_order_of_hot_list program ~hot)
  | Bb_affinity | Bb_trg ->
    let order = block_order_for ?decisions ~config kind program analysis in
    Layout.of_block_order ~function_stubs:true program order
