open Colayout_util

type graph = {
  num_funcs : int;
  weights : (int * int, int) Hashtbl.t; (* canonical (min, max) keys *)
}

let canon x y = if x < y then (x, y) else (y, x)

let add_edge g x y w =
  if x <> y && w > 0 then begin
    let key = canon x y in
    let cur = Option.value ~default:0 (Hashtbl.find_opt g.weights key) in
    Hashtbl.replace g.weights key (cur + w)
  end

let graph_of_call_trace ~num_funcs calls =
  if num_funcs <= 0 then invalid_arg "Pettis_hansen: num_funcs must be positive";
  let g = { num_funcs; weights = Hashtbl.create 256 } in
  Int_vec.iter
    (fun code ->
      let caller = code / num_funcs and callee = code mod num_funcs in
      if caller < 0 || caller >= num_funcs then
        invalid_arg "Pettis_hansen: malformed call-pair stream";
      add_edge g caller callee 1)
    calls;
  g

let graph_of_edges ~num_funcs edges =
  if num_funcs <= 0 then invalid_arg "Pettis_hansen: num_funcs must be positive";
  let g = { num_funcs; weights = Hashtbl.create 64 } in
  List.iter
    (fun (x, y, w) ->
      if x < 0 || y < 0 || x >= num_funcs || y >= num_funcs then
        invalid_arg "Pettis_hansen: node out of range";
      if w < 0 then invalid_arg "Pettis_hansen: negative weight";
      add_edge g x y w)
    edges;
  g

let edge_weight g x y =
  if x = y then 0 else Option.value ~default:0 (Hashtbl.find_opt g.weights (canon x y))

(* Chains are int lists in layout order; chain_of maps a node to its chain
   id, chains maps a chain id to its members. *)
let order ?decisions g =
  let edges =
    Hashtbl.fold (fun (x, y) w acc -> (w, x, y) :: acc) g.weights []
    |> List.sort (fun (w1, x1, y1) (w2, x2, y2) ->
           if w1 <> w2 then compare w2 w1 else compare (x1, y1) (x2, y2))
  in
  let chain_of = Hashtbl.create 64 in
  let chains : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  let ensure v =
    if not (Hashtbl.mem chain_of v) then begin
      Hashtbl.replace chain_of v v;
      Hashtbl.replace chains v [ v ]
    end
  in
  let pos_of chain v =
    let rec go i = function
      | [] -> assert false
      | x :: rest -> if x = v then i else go (i + 1) rest
    in
    go 0 chain
  in
  List.iter
    (fun (w, x, y) ->
      ensure x;
      ensure y;
      let cx = Hashtbl.find chain_of x and cy = Hashtbl.find chain_of y in
      if cx <> cy then begin
        let a = Hashtbl.find chains cx and b = Hashtbl.find chains cy in
        Decision_trace.emit decisions ~stage:"pettis-hansen" ~action:"chain-merge" ~x ~y
          ~weight:w ~group:cx
          ~size:(List.length a + List.length b) ();
        (* Orient A so x sits near its end, B so y sits near its start:
           of Pettis-Hansen's four concatenations this pair minimizes the
           x..y distance. *)
        let la = List.length a and lb = List.length b in
        let px = pos_of a x and py = pos_of b y in
        let a' = if la - 1 - px <= px then a else List.rev a in
        let b' = if py <= lb - 1 - py then b else List.rev b in
        let merged = a' @ b' in
        Hashtbl.remove chains cy;
        Hashtbl.replace chains cx merged;
        List.iter (fun v -> Hashtbl.replace chain_of v cx) b'
      end)
    edges;
  (* Emit chains by descending total connection weight, deterministic. *)
  let chain_weight members =
    List.fold_left
      (fun acc v ->
        Hashtbl.fold
          (fun (p, q) w acc' -> if p = v || q = v then acc' + w else acc')
          g.weights acc)
      0 members
  in
  Hashtbl.fold (fun _ members acc -> members :: acc) chains []
  |> List.map (fun members -> (chain_weight members, List.fold_left min max_int members, members))
  |> List.sort (fun (w1, m1, _) (w2, m2, _) ->
         if w1 <> w2 then compare w2 w1 else compare m1 m2)
  |> List.concat_map (fun (_, _, members) -> members)

let layout_for ?decisions program calls =
  let g = graph_of_call_trace ~num_funcs:(Colayout_ir.Program.num_funcs program) calls in
  let hot = order ?decisions g in
  Layout.of_function_order program (Layout.function_order_of_hot_list program ~hot)
