open Colayout_util
open Colayout_trace

(* Streaming profile ingest: the online, sharded form of the two batch
   analysis kernels ([Trg.build], [Affinity.affine_pairs]).

   The design splits each kernel into its two halves. The *walk* half —
   advancing one LRU stack over the (trimmed) concatenated event stream
   and deciding which pair keys each event touches — is inherently
   sequential, so one walker runs it for both kernels at once and emits
   the resulting table operations into per-shard buffers (an op is 1 int
   for a TRG bump, 2 ints for an affinity witness). The *accumulate* half
   — folding those operations into the flat int-packed open-addressing
   tables — is where the memory traffic lives, so it is sharded by a hash
   of the packed pair key: on flush, every shard's buffered ops are
   applied to that shard's private tables by a [Pool] worker, with no
   locks and no cross-shard writes on the hot path.

   Determinism/exactness contract: ops for one key always land in one
   shard's buffer in stream order, TRG bumps commute, and a witness
   update only depends on prior updates to the same key — so the shard
   tables hold exactly what the batch kernels' single tables would hold,
   at any shard count and any jobs count, and [finalize] (which rebuilds
   a CSR via [Trg.of_edges] and applies the batch affinity
   saturated-pair test across shards) is bit-identical to the batch
   result on the concatenated trace. The digest helpers below make that
   checkable from tests and the bench.

   Bounded memory is epoch-based and deterministic given the ingest
   order: at epoch boundaries (every [epoch_traces] traces) TRG weights
   decay by [decay_shift] (dropping zeros), provably-dead affinity
   witnesses are pruned (exact — see [prune_dead_tbl]), and after every
   flush each table is clipped back to its per-shard cap by evicting the
   smallest (rank, key) entries. Decay and caps trade exactness for
   bounded tables; pruning never changes the final affine set. *)

type config = {
  num_symbols : int;
  shards : int;
  trg_window : int;
  affinity_w : int;
  trg_cap : int;
  wits_cap : int;
  decay_shift : int;
  epoch_traces : int;
  prune_dead : bool;
  flush_ops : int;
}

let config ?(shards = 1) ?(trg_window = 256) ?(affinity_w = 16) ?(trg_cap = 0) ?(wits_cap = 0)
    ?(decay_shift = 0) ?(epoch_traces = 0) ?(prune_dead = true) ?(flush_ops = 1 lsl 16)
    ~num_symbols () =
  if num_symbols < 1 then invalid_arg "Ingest.config: num_symbols must be >= 1";
  if num_symbols > Int_pair_tbl.max_coord then
    invalid_arg "Ingest.config: num_symbols >= 2^31 exceeds the packed-key coordinate bound";
  if shards < 1 then invalid_arg "Ingest.config: shards must be >= 1";
  if trg_window < 1 then invalid_arg "Ingest.config: trg_window must be >= 1";
  if affinity_w < 1 then invalid_arg "Ingest.config: affinity_w must be >= 1";
  if trg_cap < 0 || wits_cap < 0 then invalid_arg "Ingest.config: caps must be >= 0";
  if decay_shift < 0 then invalid_arg "Ingest.config: decay_shift must be >= 0";
  if epoch_traces < 0 then invalid_arg "Ingest.config: epoch_traces must be >= 0";
  if flush_ops < 1 then invalid_arg "Ingest.config: flush_ops must be >= 1";
  {
    num_symbols;
    shards;
    trg_window;
    affinity_w;
    trg_cap;
    wits_cap;
    decay_shift;
    epoch_traces;
    prune_dead;
    flush_ops;
  }

type shard = { trg : Int_pair_tbl.t; wits : Int_pair_tbl.t }

(* Declared before [t] so [t]'s same-named mutable fields take label
   priority; [stats] constructions below are type-annotated. *)
type stats = {
  traces : int;
  events : int;
  kept_events : int;
  trg_ops : int;
  wit_ops : int;
  flushes : int;
  epochs : int;
  merges : int;
  trg_live : int;
  wits_live : int;
  trg_peak_shard : int;
  wits_peak_shard : int;
  trg_evicted : int;
  wits_evicted : int;
  decay_dropped : int;
  dead_pruned : int;
}

type t = {
  cfg : config;
  pool : Pool.t option;
  metrics : Metrics.t option;
  h_trace : Metrics.histogram option;
  h_merge : Metrics.histogram option;
  clock : unit -> int64;
  (* Sequential walker state (single-owner). *)
  stack : Lru_stack.t;
  occ : int array; (* trimmed-stream occurrence count per symbol *)
  scratch : Int_vec.t;
  mutable last_sym : int; (* inline trimming across trace boundaries *)
  (* Per-shard op buffers filled by the walker, drained on flush. *)
  trg_bufs : Int_vec.t array; (* packed canonical (lo, hi) keys, +1 each *)
  wit_bufs : Int_vec.t array; (* (packed ordered (a, b) key, a_occ) pairs *)
  mutable pending_ops : int;
  shards : shard array;
  (* Stats. *)
  mutable traces : int;
  mutable events : int;
  mutable kept_events : int;
  mutable trg_ops : int;
  mutable wit_ops : int;
  mutable flushes : int;
  mutable epochs : int;
  mutable merges : int;
  mutable trg_peak_shard : int;
  mutable wits_peak_shard : int;
  mutable trg_evicted : int;
  mutable wits_evicted : int;
  mutable decay_dropped : int;
  mutable dead_pruned : int;
  mutable trace_started : bool;
  mutable trace_t0 : int64;
}

let create ?pool ?metrics cfg =
  {
    cfg;
    pool;
    metrics;
    h_trace = Option.map (fun m -> Metrics.histogram m "ingest.trace_ns") metrics;
    h_merge = Option.map (fun m -> Metrics.histogram m "ingest.merge_ns") metrics;
    clock = Metrics.default_clock;
    stack = Lru_stack.create ();
    occ = Array.make cfg.num_symbols 0;
    scratch = Int_vec.create ~capacity:(min cfg.trg_window 4096) ();
    last_sym = -1;
    trg_bufs = Array.init cfg.shards (fun _ -> Int_vec.create ~capacity:1024 ());
    wit_bufs = Array.init cfg.shards (fun _ -> Int_vec.create ~capacity:1024 ());
    pending_ops = 0;
    shards =
      Array.init cfg.shards (fun _ ->
          {
            trg = Int_pair_tbl.create ~capacity:1024 ();
            wits = Int_pair_tbl.create ~capacity:1024 ();
          });
    traces = 0;
    events = 0;
    kept_events = 0;
    trg_ops = 0;
    wit_ops = 0;
    flushes = 0;
    epochs = 0;
    merges = 0;
    trg_peak_shard = 0;
    wits_peak_shard = 0;
    trg_evicted = 0;
    wits_evicted = 0;
    decay_dropped = 0;
    dead_pruned = 0;
    trace_started = false;
    trace_t0 = 0L;
  }

let config_of t = t.cfg

(* splitmix64-style finisher over the packed key. Shard choice must be a
   pure function of the key (never of arrival order) so one key's ops
   always serialize through one shard's buffer. *)
let mix k =
  let h = k lxor (k lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let shard_of t key = if t.cfg.shards = 1 then 0 else mix key mod t.cfg.shards

(* Deterministic cap eviction: drop the (rank, key) — smallest entries
   until the table is back under [cap]. The key tiebreak makes the order
   total, so the survivors depend only on the table contents, which are
   themselves determined by the ingest order. *)
let evict_to_cap tbl ~cap ~rank =
  let n = Int_pair_tbl.length tbl in
  if cap <= 0 || n <= cap then 0
  else begin
    let entries = Array.make n (0, 0) in
    let i = ref 0 in
    Int_pair_tbl.iter
      (fun k v ->
        entries.(!i) <- (rank k v, k);
        incr i)
      tbl;
    Array.sort compare entries;
    let drop = n - cap in
    for j = 0 to drop - 1 do
      Int_pair_tbl.remove tbl (snd entries.(j))
    done;
    drop
  end

(* Halve-ish TRG weights at epoch boundaries; entries decayed to zero are
   forgotten. Rebuild rather than replace-in-place: a replace can resize
   the table mid-iteration. *)
let decay_tbl tbl shift =
  let n = Int_pair_tbl.length tbl in
  if n = 0 then 0
  else begin
    let ks = Array.make n 0 and vs = Array.make n 0 in
    let i = ref 0 in
    Int_pair_tbl.iter
      (fun k v ->
        ks.(!i) <- k;
        vs.(!i) <- v;
        incr i)
      tbl;
    Int_pair_tbl.clear tbl;
    let dropped = ref 0 in
    for j = 0 to n - 1 do
      let w = vs.(j) lsr shift in
      if w > 0 then Int_pair_tbl.replace tbl ks.(j) w else incr dropped
    done;
    !dropped
  end

(* Exact dead-witness pruning. An occurrence of [a] can only be witnessed
   (counted into sat of (a, b)) while it is a's *latest* occurrence: both
   witness directions pass the current occurrence index. So once [a]
   recurs, an uncounted older occurrence is missed forever, and the final
   saturation test sat = occ(a) can never pass. An entry is provably dead
   when some *closed* occurrence was missed:
   - last_occ = occ(a): the latest is counted, so sat < occ(a) means a
     closed occurrence was missed;
   - last_occ < occ(a): the latest may still be witnessed later, so only
     sat < occ(a) - 1 is conclusive.
   Dropping such an entry cannot change the final affine set — absent and
   unsaturated entries fail the test identically — which is why pruning
   stays on even in digest-checked exact configurations. *)
let prune_dead_tbl occ tbl =
  let dead = Int_vec.create ~capacity:64 () in
  Int_pair_tbl.iter
    (fun key p ->
      let a = Int_pair_tbl.fst_of key in
      let last = Int_pair_tbl.fst_of p and sat = Int_pair_tbl.snd_of p in
      let oa = occ.(a) in
      if (if last = oa then sat < oa else sat < oa - 1) then Int_vec.push dead key)
    tbl;
  Int_vec.iter (fun k -> Int_pair_tbl.remove tbl k) dead;
  Int_vec.length dead

type shard_flush = {
  sf_trg_evicted : int;
  sf_wits_evicted : int;
  sf_decay_dropped : int;
  sf_dead_pruned : int;
  sf_trg_live : int;
  sf_wits_live : int;
}

(* Drain shard [s]'s op buffers into its tables, then run maintenance.
   Runs on a pool worker; touches only shard-private state plus the
   read-only [occ] array (the walker is parked during a flush). Ops apply
   in buffer order = stream order, so order-sensitive witness updates see
   exactly the batch kernel's update sequence. *)
let apply_shard t s ~maintain =
  let sh = t.shards.(s) in
  let tb = t.trg_bufs.(s) and wb = t.wit_bufs.(s) in
  let n = Int_vec.length tb in
  for i = 0 to n - 1 do
    ignore (Int_pair_tbl.add_to sh.trg (Int_vec.unsafe_get tb i) 1)
  done;
  let m = Int_vec.length wb in
  let i = ref 0 in
  while !i < m do
    let key = Int_vec.unsafe_get wb !i in
    let a_occ = Int_vec.unsafe_get wb (!i + 1) in
    let p = Int_pair_tbl.find sh.wits key ~default:0 in
    if Int_pair_tbl.fst_of p < a_occ then
      Int_pair_tbl.replace sh.wits key (Int_pair_tbl.pack a_occ (Int_pair_tbl.snd_of p + 1));
    i := !i + 2
  done;
  Int_vec.clear tb;
  Int_vec.clear wb;
  let decay_dropped =
    if maintain && t.cfg.decay_shift > 0 then decay_tbl sh.trg t.cfg.decay_shift else 0
  in
  let dead_pruned = if maintain && t.cfg.prune_dead then prune_dead_tbl t.occ sh.wits else 0 in
  let trg_evicted = evict_to_cap sh.trg ~cap:t.cfg.trg_cap ~rank:(fun _ w -> w) in
  let wits_evicted =
    evict_to_cap sh.wits ~cap:t.cfg.wits_cap ~rank:(fun _ p -> Int_pair_tbl.fst_of p)
  in
  {
    sf_trg_evicted = trg_evicted;
    sf_wits_evicted = wits_evicted;
    sf_decay_dropped = decay_dropped;
    sf_dead_pruned = dead_pruned;
    sf_trg_live = Int_pair_tbl.length sh.trg;
    sf_wits_live = Int_pair_tbl.length sh.wits;
  }

let flush_internal t ~maintain =
  if t.pending_ops > 0 || maintain then begin
    let run s = apply_shard t s ~maintain in
    let idx = Array.init t.cfg.shards Fun.id in
    let results =
      match t.pool with
      | Some pool when t.cfg.shards > 1 -> Pool.map_array pool run idx
      | _ -> Array.map run idx
    in
    Array.iter
      (fun r ->
        t.trg_evicted <- t.trg_evicted + r.sf_trg_evicted;
        t.wits_evicted <- t.wits_evicted + r.sf_wits_evicted;
        t.decay_dropped <- t.decay_dropped + r.sf_decay_dropped;
        t.dead_pruned <- t.dead_pruned + r.sf_dead_pruned;
        if r.sf_trg_live > t.trg_peak_shard then t.trg_peak_shard <- r.sf_trg_live;
        if r.sf_wits_live > t.wits_peak_shard then t.wits_peak_shard <- r.sf_wits_live)
      results;
    t.pending_ops <- 0;
    t.flushes <- t.flushes + 1
  end

let flush t = flush_internal t ~maintain:false

let feed_sym t x =
  if x < 0 || x >= t.cfg.num_symbols then invalid_arg "Ingest.feed_sym: symbol out of range";
  t.events <- t.events + 1;
  if not t.trace_started then begin
    t.trace_started <- true;
    t.trace_t0 <- t.clock ()
  end;
  if x <> t.last_sym then begin
    (* Inline trimming: the batch kernels require a trimmed trace, so the
       walker drops repeats of the previous kept event — including across
       trace boundaries, matching trimming of the concatenation. *)
    if t.kept_events >= Int_pair_tbl.max_coord then
      invalid_arg "Ingest.feed_sym: stream length >= 2^31 exceeds the packed-payload bound";
    t.last_sym <- x;
    t.kept_events <- t.kept_events + 1;
    t.occ.(x) <- t.occ.(x) + 1;
    let ops_before = t.trg_ops + t.wit_ops in
    (* TRG walk — [Trg.build]'s loop with the bump deferred to an op. *)
    Int_vec.clear t.scratch;
    let found = ref false in
    Lru_stack.iter_until_depth t.stack (fun d y ->
        if y = x then begin
          found := true;
          false
        end
        else if d >= t.cfg.trg_window then false
        else begin
          Int_vec.push t.scratch y;
          true
        end);
    if !found then
      Int_vec.iter
        (fun y ->
          let lo = if x < y then x else y in
          let hi = if x < y then y else x in
          let key = Int_pair_tbl.pack lo hi in
          Int_vec.push t.trg_bufs.(shard_of t key) key;
          t.trg_ops <- t.trg_ops + 1)
        t.scratch;
    (* Affinity walk — [Affinity.affine_pairs]'s loop with both witness
       directions deferred to ops. *)
    let w = t.cfg.affinity_w in
    let kx = t.occ.(x) in
    let x_seen = ref false in
    Lru_stack.iter_until_depth t.stack (fun d y ->
        if y = x then begin
          x_seen := true;
          true
        end
        else begin
          let fp = d + if !x_seen then 0 else 1 in
          if fp <= w then begin
            let kxy = Int_pair_tbl.pack x y in
            let buf = t.wit_bufs.(shard_of t kxy) in
            Int_vec.push buf kxy;
            Int_vec.push buf kx;
            let kyx = Int_pair_tbl.pack y x in
            let buf = t.wit_bufs.(shard_of t kyx) in
            Int_vec.push buf kyx;
            Int_vec.push buf t.occ.(y);
            t.wit_ops <- t.wit_ops + 2
          end;
          d < w
        end);
    Lru_stack.touch t.stack x;
    t.pending_ops <- t.pending_ops + (t.trg_ops + t.wit_ops - ops_before);
    if t.pending_ops >= t.cfg.flush_ops then flush t
  end

let feed_trace t tr =
  if Trace.num_symbols tr <> t.cfg.num_symbols then
    invalid_arg "Ingest.feed_trace: trace symbol universe does not match config";
  Trace.iter (fun x -> feed_sym t x) tr

let feed_chunk t buf n =
  if n < 0 || n > Array.length buf then invalid_arg "Ingest.feed_chunk";
  for i = 0 to n - 1 do
    feed_sym t buf.(i)
  done

let end_trace t =
  t.traces <- t.traces + 1;
  if t.trace_started then begin
    (match t.h_trace with
    | Some h -> Metrics.observe h (Int64.to_int (Int64.sub (t.clock ()) t.trace_t0))
    | None -> ());
    t.trace_started <- false
  end;
  (match t.metrics with Some m -> Metrics.add m "ingest.traces" 1 | None -> ());
  if t.cfg.epoch_traces > 0 && t.traces mod t.cfg.epoch_traces = 0 then begin
    flush_internal t ~maintain:true;
    t.epochs <- t.epochs + 1
  end

let ingest_trace t tr =
  feed_trace t tr;
  end_trace t

let feed_file t ~path =
  Trace_io.with_reader ~path (fun r ->
      if Trace_io.reader_num_symbols r <> t.cfg.num_symbols then
        invalid_arg "Ingest.feed_file: trace symbol universe does not match config";
      let buf = Array.make (1 lsl 16) 0 in
      let rec go () =
        let n = Trace_io.read_chunk r buf in
        if n > 0 then begin
          feed_chunk t buf n;
          go ()
        end
      in
      go ());
  end_trace t

let stats t : stats =
  let trg_live = Array.fold_left (fun a sh -> a + Int_pair_tbl.length sh.trg) 0 t.shards in
  let wits_live = Array.fold_left (fun a sh -> a + Int_pair_tbl.length sh.wits) 0 t.shards in
  {
    traces = t.traces;
    events = t.events;
    kept_events = t.kept_events;
    trg_ops = t.trg_ops;
    wit_ops = t.wit_ops;
    flushes = t.flushes;
    epochs = t.epochs;
    merges = t.merges;
    trg_live;
    wits_live;
    trg_peak_shard = t.trg_peak_shard;
    wits_peak_shard = t.wits_peak_shard;
    trg_evicted = t.trg_evicted;
    wits_evicted = t.wits_evicted;
    decay_dropped = t.decay_dropped;
    dead_pruned = t.dead_pruned;
  }

type consensus = { trg : Trg.t; affine : int array }

let affine_list c =
  Array.to_list (Array.map (fun k -> (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k)) c.affine)

(* Non-destructive merge: rebuilds the consensus CSR from the live shard
   tables and applies the batch saturation test (cross-shard lookup for
   the reverse direction). Accumulation continues afterwards. *)
let finalize t =
  flush t;
  let t0 = t.clock () in
  let edges = ref [] in
  Array.iter
    (fun (sh : shard) ->
      Int_pair_tbl.iter
        (fun k w -> edges := (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k, w) :: !edges)
        sh.trg)
    t.shards;
  let trg = Trg.of_edges ~num_nodes:t.cfg.num_symbols !edges in
  let pairs = Int_vec.create ~capacity:64 () in
  Array.iter
    (fun (sh : shard) ->
      Int_pair_tbl.iter
        (fun key p ->
          let a = Int_pair_tbl.fst_of key in
          let b = Int_pair_tbl.snd_of key in
          if a < b then begin
            let sat_ab = Int_pair_tbl.snd_of p in
            let rk = Int_pair_tbl.pack b a in
            let sat_ba =
              Int_pair_tbl.snd_of
                (Int_pair_tbl.find t.shards.(shard_of t rk).wits rk ~default:0)
            in
            if sat_ab = t.occ.(a) && sat_ba = t.occ.(b) && t.occ.(a) > 0 && t.occ.(b) > 0 then
              Int_vec.push pairs key
          end)
        sh.wits)
    t.shards;
  let affine = Int_vec.to_array pairs in
  Array.sort compare affine;
  t.merges <- t.merges + 1;
  (match t.h_merge with
  | Some h -> Metrics.observe h (Int64.to_int (Int64.sub (t.clock ()) t0))
  | None -> ());
  { trg; affine }

(* Digests — the bit-identity contract made checkable. Both sides digest
   the same canonical renderings: the CSR edge sweep (ascending (x, y))
   and the sorted packed affine-pair array. *)

let trg_digest trg =
  let b = Buffer.create 4096 in
  Trg.iter_edges
    (fun x y w ->
      Buffer.add_string b (string_of_int x);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int y);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int w);
      Buffer.add_char b ';')
    trg;
  Digest.to_hex (Digest.string (Buffer.contents b))

let affine_digest packed =
  let b = Buffer.create 1024 in
  Array.iter
    (fun k ->
      Buffer.add_string b (string_of_int k);
      Buffer.add_char b ';')
    packed;
  Digest.to_hex (Digest.string (Buffer.contents b))

let consensus_digests c = (trg_digest c.trg, affine_digest c.affine)

let batch_digests ~trg_window ~affinity_w trace =
  let trimmed = if Trim.is_trimmed trace then trace else Trim.trim trace in
  let trg = Trg.build ~window:trg_window trimmed in
  let ps = Affinity.affine_pairs trimmed ~w:affinity_w in
  let packed =
    Affinity.pair_list ps |> List.map (fun (a, b) -> Int_pair_tbl.pack a b) |> Array.of_list
  in
  Array.sort compare packed;
  (trg_digest trg, affine_digest packed)
