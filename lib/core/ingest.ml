open Colayout_util
open Colayout_trace

(* Streaming profile ingest: the online, sharded, multi-walker form of the
   two batch analysis kernels ([Trg.build], [Affinity.affine_pairs]).

   The design splits each kernel into its two halves. The *walk* half —
   advancing an LRU stack over a trimmed event stream and deciding which
   pair keys each event touches — is sequential per stream, so each trace
   is walked by exactly one walker. The *accumulate* half — folding the
   emitted table operations into flat int-packed open-addressing tables —
   is where the memory traffic lives, so it is sharded by a hash of the
   packed pair key and, with [walkers > 1], further privatized per
   walker: on flush, each walker drains its own per-shard buffers into
   its own tables with no locks and no cross-walker writes anywhere.

   Stream semantics: every completed trace is an independent stream. Each
   walker resets its LRU stack and trimming state at trace boundaries, so
   the per-trace walk replicates the batch kernels on that trace alone
   (occurrence indices are walker-cumulative, which the witness update
   rule tolerates — see [finalize]). This is what makes the result a pure
   function of the *multiset* of traces, invariant under how they are
   partitioned across walkers:

   - TRG edge weights are sums of per-trace window co-occurrence counts,
     so walker-local tables merge by summing weights per key.
   - An affinity witness entry for directed (a, b) carries (last_occ,
     sat): sat counts occurrences of [a] witnessed by [b] within window
     footprint w. Within one walker, each global occurrence is counted at
     most once (the [last_occ < a_occ] guard), and since windows never
     span trace boundaries, sat decomposes as a sum of per-trace
     saturations. Across walkers sat values therefore merge by summing,
     and the final test "sat(a,b) = occ(a) in both directions" holds for
     the merged stream iff it holds per trace — exactly the batch
     kernels' saturated-pair condition on each part.

   So [finalize] digests are bit-identical at any (walkers, shards, jobs)
   point, in exact configurations. Bounded memory (caps, decay) is a
   deterministic function of the config *including* [walkers] — like
   [shards], the walker count selects which approximation you get, while
   [jobs] (the pool width) never changes any result.

   With [walkers = 1] the walker runs inline in [feed_sym] and can stream
   arbitrarily long traces without materializing them. With [walkers > 1]
   the current trace is staged in memory until [end_trace] assigns it
   round-robin (by completed-trace index — a config-deterministic
   assignment) to a walker queue; queues are drained by [Pool] tasks, one
   task per walker, whenever every walker has work. Flush points are
   driven by walker-local op counts and epoch maintenance by the global
   trace counter, so the pool schedule moves *where* work runs, never
   what is computed. *)

type config = {
  num_symbols : int;
  walkers : int;
  shards : int;
  trg_window : int;
  affinity_w : int;
  trg_cap : int;
  wits_cap : int;
  decay_shift : int;
  epoch_traces : int;
  prune_dead : bool;
  flush_ops : int;
}

let config ?(walkers = 1) ?(shards = 1) ?(trg_window = 256) ?(affinity_w = 16) ?(trg_cap = 0)
    ?(wits_cap = 0) ?(decay_shift = 0) ?(epoch_traces = 0) ?(prune_dead = true)
    ?(flush_ops = 1 lsl 16) ~num_symbols () =
  if num_symbols < 1 then invalid_arg "Ingest.config: num_symbols must be >= 1";
  if num_symbols > Int_pair_tbl.max_coord then
    invalid_arg "Ingest.config: num_symbols >= 2^31 exceeds the packed-key coordinate bound";
  if walkers < 1 then invalid_arg "Ingest.config: walkers must be >= 1";
  if shards < 1 then invalid_arg "Ingest.config: shards must be >= 1";
  if trg_window < 1 then invalid_arg "Ingest.config: trg_window must be >= 1";
  if affinity_w < 1 then invalid_arg "Ingest.config: affinity_w must be >= 1";
  if trg_cap < 0 || wits_cap < 0 then invalid_arg "Ingest.config: caps must be >= 0";
  if decay_shift < 0 then invalid_arg "Ingest.config: decay_shift must be >= 0";
  if epoch_traces < 0 then invalid_arg "Ingest.config: epoch_traces must be >= 0";
  if flush_ops < 1 then invalid_arg "Ingest.config: flush_ops must be >= 1";
  {
    num_symbols;
    walkers;
    shards;
    trg_window;
    affinity_w;
    trg_cap;
    wits_cap;
    decay_shift;
    epoch_traces;
    prune_dead;
    flush_ops;
  }

type shard = { trg : Int_pair_tbl.t; wits : Int_pair_tbl.t }

(* Declared before [walker] and [t] so their same-named mutable fields
   take label priority; [stats] constructions below are type-annotated. *)
type stats = {
  traces : int;
  events : int;
  kept_events : int;
  trg_ops : int;
  wit_ops : int;
  flushes : int;
  dispatches : int;
  epochs : int;
  merges : int;
  trg_live : int;
  wits_live : int;
  trg_peak_shard : int;
  wits_peak_shard : int;
  trg_evicted : int;
  wits_evicted : int;
  decay_dropped : int;
  dead_pruned : int;
}

(* One independent stream walker: private LRU stack, trim state, op
   buffers, shard tables, occurrence counts and stat counters. A walker
   is touched either by the calling domain (walkers = 1) or by exactly
   one pool task per dispatch (walkers > 1) — never concurrently. *)
type walker = {
  id : int;
  stack : Lru_stack.t;
  occ : int array; (* walker-cumulative occurrence count per symbol *)
  scratch : Int_vec.t;
  trg_bufs : Int_vec.t array; (* packed canonical (lo, hi) keys, +1 each *)
  wit_bufs : Int_vec.t array; (* (packed ordered (a, b) key, a_occ) pairs *)
  shards : shard array;
  queue : int array Queue.t; (* completed traces awaiting this walker *)
  delta : Metrics.t option; (* walker-private registry, folded per dispatch *)
  wh_trace : Metrics.histogram option; (* ingest.trace_ns in [delta] *)
  wh_walker : Metrics.histogram option; (* ingest.walker.<id>.trace_ns in [delta] *)
  mutable last_sym : int; (* per-trace inline trimming state *)
  mutable pending_ops : int;
  mutable kept_events : int;
  mutable trg_ops : int;
  mutable wit_ops : int;
  mutable flushes : int;
  mutable trg_peak_shard : int;
  mutable wits_peak_shard : int;
  mutable trg_evicted : int;
  mutable wits_evicted : int;
  mutable decay_dropped : int;
  mutable dead_pruned : int;
}

type t = {
  cfg : config;
  pool : Pool.t option;
  metrics : Metrics.t option;
  h_trace : Metrics.histogram option;
  h_merge : Metrics.histogram option;
  clock : unit -> int64;
  walkers : walker array;
  stage : Int_vec.t; (* current-trace staging buffer (walkers > 1) *)
  mutable next_walker : int; (* round-robin assignment cursor *)
  mutable queued : int; (* completed traces enqueued since last dispatch *)
  mutable traces : int;
  mutable events : int;
  mutable epochs : int;
  mutable merges : int;
  mutable dispatches : int;
  mutable trace_started : bool;
  mutable trace_t0 : int64;
}

let make_walker (cfg : config) metrics i : walker =
  let delta =
    match metrics with Some _ when cfg.walkers > 1 -> Some (Metrics.create ()) | _ -> None
  in
  {
    id = i;
    stack = Lru_stack.create ();
    occ = Array.make cfg.num_symbols 0;
    scratch = Int_vec.create ~capacity:(min cfg.trg_window 4096) ();
    trg_bufs = Array.init cfg.shards (fun _ -> Int_vec.create ~capacity:1024 ());
    wit_bufs = Array.init cfg.shards (fun _ -> Int_vec.create ~capacity:1024 ());
    shards =
      Array.init cfg.shards (fun _ ->
          {
            trg = Int_pair_tbl.create ~capacity:1024 ();
            wits = Int_pair_tbl.create ~capacity:1024 ();
          });
    queue = Queue.create ();
    delta;
    wh_trace = Option.map (fun d -> Metrics.histogram d "ingest.trace_ns") delta;
    wh_walker =
      Option.map (fun d -> Metrics.histogram d (Printf.sprintf "ingest.walker.%d.trace_ns" i)) delta;
    last_sym = -1;
    pending_ops = 0;
    kept_events = 0;
    trg_ops = 0;
    wit_ops = 0;
    flushes = 0;
    trg_peak_shard = 0;
    wits_peak_shard = 0;
    trg_evicted = 0;
    wits_evicted = 0;
    decay_dropped = 0;
    dead_pruned = 0;
  }

let create ?pool ?metrics cfg =
  {
    cfg;
    pool;
    metrics;
    h_trace = Option.map (fun m -> Metrics.histogram m "ingest.trace_ns") metrics;
    h_merge = Option.map (fun m -> Metrics.histogram m "ingest.merge_ns") metrics;
    clock = Metrics.default_clock;
    walkers = Array.init cfg.walkers (make_walker cfg metrics);
    stage = Int_vec.create ~capacity:(if cfg.walkers > 1 then 4096 else 0) ();
    next_walker = 0;
    queued = 0;
    traces = 0;
    events = 0;
    epochs = 0;
    merges = 0;
    dispatches = 0;
    trace_started = false;
    trace_t0 = 0L;
  }

let config_of t = t.cfg

(* splitmix64-style finisher over the packed key. Shard choice must be a
   pure function of the key (never of arrival order) so one key's ops
   always serialize through one shard's buffer. *)
let mix k =
  let h = k lxor (k lsr 31) in
  let h = h * 0x2545F4914F6CDD1D in
  (h lxor (h lsr 29)) land max_int

let shard_of t key = if t.cfg.shards = 1 then 0 else mix key mod t.cfg.shards

(* Deterministic cap eviction: drop the (rank, key) — smallest entries
   until the table is back under [cap]. The key tiebreak makes the order
   total, so the survivors depend only on the table contents, which are
   themselves determined by the walker's stream. *)
let evict_to_cap tbl ~cap ~rank =
  let n = Int_pair_tbl.length tbl in
  if cap <= 0 || n <= cap then 0
  else begin
    let entries = Array.make n (0, 0) in
    let i = ref 0 in
    Int_pair_tbl.iter
      (fun k v ->
        entries.(!i) <- (rank k v, k);
        incr i)
      tbl;
    Array.sort compare entries;
    let drop = n - cap in
    for j = 0 to drop - 1 do
      Int_pair_tbl.remove tbl (snd entries.(j))
    done;
    drop
  end

(* Halve-ish TRG weights at epoch boundaries; entries decayed to zero are
   forgotten. Rebuild rather than replace-in-place: a replace can resize
   the table mid-iteration. *)
let decay_tbl tbl shift =
  let n = Int_pair_tbl.length tbl in
  if n = 0 then 0
  else begin
    let ks = Array.make n 0 and vs = Array.make n 0 in
    let i = ref 0 in
    Int_pair_tbl.iter
      (fun k v ->
        ks.(!i) <- k;
        vs.(!i) <- v;
        incr i)
      tbl;
    Int_pair_tbl.clear tbl;
    let dropped = ref 0 in
    for j = 0 to n - 1 do
      let w = vs.(j) lsr shift in
      if w > 0 then Int_pair_tbl.replace tbl ks.(j) w else incr dropped
    done;
    !dropped
  end

(* Exact dead-witness pruning. An occurrence of [a] can only be witnessed
   (counted into sat of (a, b)) while it is a's *latest* occurrence in
   the current trace. Maintenance runs only at trace boundaries (epoch
   checks fire in [end_trace], after queues drain), where every
   occurrence is closed: the stack resets, so no past occurrence can ever
   be witnessed again. Hence an entry is provably dead as soon as
   sat < occ(a) — some closed occurrence was missed, and the final
   walker-local test sat = occ(a) can never pass. Dropping such an entry
   cannot change the final affine set, per walker or merged: absent and
   unsaturated entries fail the saturation test identically, and a merged
   sum that misses one walker's closed occurrence can never reach the
   merged occurrence total. This is why pruning stays on even in
   digest-checked exact configurations. *)
let prune_dead_tbl occ tbl =
  let dead = Int_vec.create ~capacity:64 () in
  Int_pair_tbl.iter
    (fun key p ->
      let a = Int_pair_tbl.fst_of key in
      let sat = Int_pair_tbl.snd_of p in
      if sat < occ.(a) then Int_vec.push dead key)
    tbl;
  Int_vec.iter (fun k -> Int_pair_tbl.remove tbl k) dead;
  Int_vec.length dead

type shard_flush = {
  sf_trg_evicted : int;
  sf_wits_evicted : int;
  sf_decay_dropped : int;
  sf_dead_pruned : int;
  sf_trg_live : int;
  sf_wits_live : int;
}

(* Drain walker [wk]'s shard [s] op buffer into its tables, then run
   maintenance. Touches only walker-and-shard-private state plus the
   walker's [occ] array (the walk is parked during a flush). Ops apply in
   buffer order = stream order, so order-sensitive witness updates see
   exactly the batch kernel's update sequence. *)
let apply_shard t (wk : walker) s ~maintain =
  let sh = wk.shards.(s) in
  let tb = wk.trg_bufs.(s) and wb = wk.wit_bufs.(s) in
  let n = Int_vec.length tb in
  for i = 0 to n - 1 do
    ignore (Int_pair_tbl.add_to sh.trg (Int_vec.unsafe_get tb i) 1)
  done;
  let m = Int_vec.length wb in
  let i = ref 0 in
  while !i < m do
    let key = Int_vec.unsafe_get wb !i in
    let a_occ = Int_vec.unsafe_get wb (!i + 1) in
    let p = Int_pair_tbl.find sh.wits key ~default:0 in
    if Int_pair_tbl.fst_of p < a_occ then
      Int_pair_tbl.replace sh.wits key (Int_pair_tbl.pack a_occ (Int_pair_tbl.snd_of p + 1));
    i := !i + 2
  done;
  Int_vec.clear tb;
  Int_vec.clear wb;
  let decay_dropped =
    if maintain && t.cfg.decay_shift > 0 then decay_tbl sh.trg t.cfg.decay_shift else 0
  in
  let dead_pruned = if maintain && t.cfg.prune_dead then prune_dead_tbl wk.occ sh.wits else 0 in
  let trg_evicted = evict_to_cap sh.trg ~cap:t.cfg.trg_cap ~rank:(fun _ w -> w) in
  let wits_evicted =
    evict_to_cap sh.wits ~cap:t.cfg.wits_cap ~rank:(fun _ p -> Int_pair_tbl.fst_of p)
  in
  {
    sf_trg_evicted = trg_evicted;
    sf_wits_evicted = wits_evicted;
    sf_decay_dropped = decay_dropped;
    sf_dead_pruned = dead_pruned;
    sf_trg_live = Int_pair_tbl.length sh.trg;
    sf_wits_live = Int_pair_tbl.length sh.wits;
  }

(* Flush one walker's buffers. With a single walker the shards fan out
   over the pool (the legacy path); inside walker tasks the shards apply
   inline — the walkers themselves are the parallel axis, and the pool
   rejects nested submission anyway. *)
let flush_walker t (wk : walker) ~maintain =
  if wk.pending_ops > 0 || maintain then begin
    let run s = apply_shard t wk s ~maintain in
    let idx = Array.init t.cfg.shards Fun.id in
    let results =
      match t.pool with
      | Some pool when t.cfg.walkers = 1 && t.cfg.shards > 1 -> Pool.map_array pool run idx
      | _ -> Array.map run idx
    in
    Array.iter
      (fun r ->
        wk.trg_evicted <- wk.trg_evicted + r.sf_trg_evicted;
        wk.wits_evicted <- wk.wits_evicted + r.sf_wits_evicted;
        wk.decay_dropped <- wk.decay_dropped + r.sf_decay_dropped;
        wk.dead_pruned <- wk.dead_pruned + r.sf_dead_pruned;
        if r.sf_trg_live > wk.trg_peak_shard then wk.trg_peak_shard <- r.sf_trg_live;
        if r.sf_wits_live > wk.wits_peak_shard then wk.wits_peak_shard <- r.sf_wits_live)
      results;
    wk.pending_ops <- 0;
    wk.flushes <- wk.flushes + 1
  end

(* The shared per-event kernel: both batch walks against one walker's
   state, with table bumps deferred to per-shard ops. *)
let walk_event t (wk : walker) x =
  if x <> wk.last_sym then begin
    (* Inline trimming: the batch kernels require a trimmed trace, so the
       walker drops repeats of the previous kept event. [last_sym] resets
       at trace boundaries — each trace is trimmed independently. *)
    if wk.kept_events >= Int_pair_tbl.max_coord then
      invalid_arg "Ingest: per-walker stream length >= 2^31 exceeds the packed-payload bound";
    wk.last_sym <- x;
    wk.kept_events <- wk.kept_events + 1;
    wk.occ.(x) <- wk.occ.(x) + 1;
    let ops_before = wk.trg_ops + wk.wit_ops in
    (* TRG walk — [Trg.build]'s loop with the bump deferred to an op. *)
    Int_vec.clear wk.scratch;
    let found = ref false in
    Lru_stack.iter_until_depth wk.stack (fun d y ->
        if y = x then begin
          found := true;
          false
        end
        else if d >= t.cfg.trg_window then false
        else begin
          Int_vec.push wk.scratch y;
          true
        end);
    if !found then
      Int_vec.iter
        (fun y ->
          let lo = if x < y then x else y in
          let hi = if x < y then y else x in
          let key = Int_pair_tbl.pack lo hi in
          Int_vec.push wk.trg_bufs.(shard_of t key) key;
          wk.trg_ops <- wk.trg_ops + 1)
        wk.scratch;
    (* Affinity walk — [Affinity.affine_pairs]'s loop with both witness
       directions deferred to ops. *)
    let w = t.cfg.affinity_w in
    let kx = wk.occ.(x) in
    let x_seen = ref false in
    Lru_stack.iter_until_depth wk.stack (fun d y ->
        if y = x then begin
          x_seen := true;
          true
        end
        else begin
          let fp = d + if !x_seen then 0 else 1 in
          if fp <= w then begin
            let kxy = Int_pair_tbl.pack x y in
            let buf = wk.wit_bufs.(shard_of t kxy) in
            Int_vec.push buf kxy;
            Int_vec.push buf kx;
            let kyx = Int_pair_tbl.pack y x in
            let buf = wk.wit_bufs.(shard_of t kyx) in
            Int_vec.push buf kyx;
            Int_vec.push buf wk.occ.(y);
            wk.wit_ops <- wk.wit_ops + 2
          end;
          d < w
        end);
    Lru_stack.touch wk.stack x;
    wk.pending_ops <- wk.pending_ops + (wk.trg_ops + wk.wit_ops - ops_before);
    if wk.pending_ops >= t.cfg.flush_ops then flush_walker t wk ~maintain:false
  end

(* Drain one walker's trace queue — the body of a dispatch task. Resets
   the stack and trim state before each trace (per-trace streams) and
   records per-trace walk latency into the walker's private histogram
   registry, folded into the main registry after the dispatch barrier. *)
let walker_drain t (wk : walker) =
  while not (Queue.is_empty wk.queue) do
    let arr = Queue.pop wk.queue in
    let t0 = if Option.is_some wk.delta then t.clock () else 0L in
    Lru_stack.clear wk.stack;
    wk.last_sym <- -1;
    Array.iter (fun x -> walk_event t wk x) arr;
    match wk.wh_trace with
    | Some h ->
      let dt = Int64.to_int (Int64.sub (t.clock ()) t0) in
      Metrics.observe h dt;
      (match wk.wh_walker with Some hw -> Metrics.observe hw dt | None -> ())
    | None -> ()
  done

(* Run every walker's queued traces to completion, one pool task per
   walker, then fold the walker-private metric deltas into the shared
   registry. Which domain runs which walker is schedule-dependent; what
   each walker computes is not. *)
let dispatch t =
  if t.cfg.walkers > 1 && t.queued > 0 then begin
    let idx = Array.init t.cfg.walkers Fun.id in
    let run wi = walker_drain t t.walkers.(wi) in
    (match t.pool with
    | Some pool -> ignore (Pool.map_array pool run idx)
    | None -> Array.iter run idx);
    t.queued <- 0;
    t.dispatches <- t.dispatches + 1;
    match t.metrics with
    | Some m ->
      Array.iter
        (fun (wk : walker) ->
          match wk.delta with
          | Some d ->
            Metrics.merge ~into:m d;
            Metrics.reset d
          | None -> ())
        t.walkers
    | None -> ()
  end

let flush_all t ~maintain =
  dispatch t;
  if t.cfg.walkers = 1 then flush_walker t t.walkers.(0) ~maintain
  else begin
    let any = Array.exists (fun (wk : walker) -> wk.pending_ops > 0) t.walkers in
    if any || maintain then begin
      let idx = Array.init t.cfg.walkers Fun.id in
      let run wi = flush_walker t t.walkers.(wi) ~maintain in
      match t.pool with
      | Some pool -> ignore (Pool.map_array pool run idx)
      | None -> Array.iter run idx
    end
  end

let flush t = flush_all t ~maintain:false

let feed_sym t x =
  if x < 0 || x >= t.cfg.num_symbols then invalid_arg "Ingest.feed_sym: symbol out of range";
  t.events <- t.events + 1;
  if t.cfg.walkers = 1 then begin
    if not t.trace_started then begin
      t.trace_started <- true;
      t.trace_t0 <- t.clock ()
    end;
    walk_event t t.walkers.(0) x
  end
  else Int_vec.push t.stage x

let feed_trace t tr =
  if Trace.num_symbols tr <> t.cfg.num_symbols then
    invalid_arg "Ingest.feed_trace: trace symbol universe does not match config";
  Trace.iter (fun x -> feed_sym t x) tr

let feed_chunk t buf n =
  if n < 0 || n > Array.length buf then invalid_arg "Ingest.feed_chunk";
  for i = 0 to n - 1 do
    feed_sym t buf.(i)
  done

let end_trace t =
  t.traces <- t.traces + 1;
  if t.cfg.walkers = 1 then begin
    let wk = t.walkers.(0) in
    if t.trace_started then begin
      (match t.h_trace with
      | Some h -> Metrics.observe h (Int64.to_int (Int64.sub (t.clock ()) t.trace_t0))
      | None -> ());
      t.trace_started <- false
    end;
    (* Per-trace streams: the next trace starts on an empty stack. *)
    Lru_stack.clear wk.stack;
    wk.last_sym <- -1
  end
  else begin
    let n = Int_vec.length t.stage in
    if n > 0 then begin
      let arr = Int_vec.to_array t.stage in
      Int_vec.clear t.stage;
      (* Round-robin by completed non-empty trace index: a pure function
         of the feed order, independent of the pool schedule. *)
      Queue.push arr t.walkers.(t.next_walker).queue;
      t.next_walker <- (t.next_walker + 1) mod t.cfg.walkers;
      t.queued <- t.queued + 1;
      if t.queued >= t.cfg.walkers then dispatch t
    end
  end;
  (match t.metrics with Some m -> Metrics.add m "ingest.traces" 1 | None -> ());
  if t.cfg.epoch_traces > 0 && t.traces mod t.cfg.epoch_traces = 0 then begin
    flush_all t ~maintain:true;
    t.epochs <- t.epochs + 1
  end

let ingest_trace t tr =
  feed_trace t tr;
  end_trace t

let feed_file t ~path =
  Trace_io.with_reader ~path (fun r ->
      if Trace_io.reader_num_symbols r <> t.cfg.num_symbols then
        invalid_arg "Ingest.feed_file: trace symbol universe does not match config";
      let buf = Array.make (1 lsl 16) 0 in
      let rec go () =
        let n = Trace_io.read_chunk r buf in
        if n > 0 then begin
          feed_chunk t buf n;
          go ()
        end
      in
      go ());
  end_trace t

let stats t : stats =
  let sum f = Array.fold_left (fun a wk -> a + f wk) 0 t.walkers in
  let maxw f = Array.fold_left (fun a wk -> max a (f wk)) 0 t.walkers in
  let live sel =
    Array.fold_left
      (fun a (wk : walker) ->
        Array.fold_left (fun a sh -> a + Int_pair_tbl.length (sel sh)) a wk.shards)
      0 t.walkers
  in
  {
    traces = t.traces;
    events = t.events;
    kept_events = sum (fun wk -> wk.kept_events);
    trg_ops = sum (fun wk -> wk.trg_ops);
    wit_ops = sum (fun wk -> wk.wit_ops);
    flushes = sum (fun wk -> wk.flushes);
    dispatches = t.dispatches;
    epochs = t.epochs;
    merges = t.merges;
    trg_live = live (fun sh -> sh.trg);
    wits_live = live (fun sh -> sh.wits);
    trg_peak_shard = maxw (fun wk -> wk.trg_peak_shard);
    wits_peak_shard = maxw (fun wk -> wk.wits_peak_shard);
    trg_evicted = sum (fun wk -> wk.trg_evicted);
    wits_evicted = sum (fun wk -> wk.wits_evicted);
    decay_dropped = sum (fun wk -> wk.decay_dropped);
    dead_pruned = sum (fun wk -> wk.dead_pruned);
  }

type consensus = { trg : Trg.t; affine : int array }

let affine_list c =
  Array.to_list (Array.map (fun k -> (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k)) c.affine)

(* Non-destructive merge across walkers and shards. TRG edge weights sum
   per key; directed witness saturations sum per key; occurrence counts
   sum per symbol; the batch saturation test then runs against the merged
   totals. With one walker the sums are identities, so the cheaper direct
   paths (no accumulator tables) are kept. Accumulation continues
   afterwards. *)
let finalize t =
  flush t;
  let t0 = t.clock () in
  let nsym = t.cfg.num_symbols in
  let trg =
    if t.cfg.walkers = 1 then begin
      let edges = ref [] in
      Array.iter
        (fun (sh : shard) ->
          Int_pair_tbl.iter
            (fun k w -> edges := (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k, w) :: !edges)
            sh.trg)
        t.walkers.(0).shards;
      Trg.of_edges ~num_nodes:nsym !edges
    end
    else begin
      let acc = Int_pair_tbl.create ~capacity:1024 () in
      Array.iter
        (fun (wk : walker) ->
          Array.iter
            (fun (sh : shard) -> Int_pair_tbl.iter (fun k w -> ignore (Int_pair_tbl.add_to acc k w)) sh.trg)
            wk.shards)
        t.walkers;
      let edges = ref [] in
      Int_pair_tbl.iter
        (fun k w -> edges := (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k, w) :: !edges)
        acc;
      Trg.of_edges ~num_nodes:nsym !edges
    end
  in
  let pairs = Int_vec.create ~capacity:64 () in
  if t.cfg.walkers = 1 then begin
    let wk = t.walkers.(0) in
    Array.iter
      (fun (sh : shard) ->
        Int_pair_tbl.iter
          (fun key p ->
            let a = Int_pair_tbl.fst_of key in
            let b = Int_pair_tbl.snd_of key in
            if a < b then begin
              let sat_ab = Int_pair_tbl.snd_of p in
              let rk = Int_pair_tbl.pack b a in
              let sat_ba =
                Int_pair_tbl.snd_of
                  (Int_pair_tbl.find wk.shards.(shard_of t rk).wits rk ~default:0)
              in
              if sat_ab = wk.occ.(a) && sat_ba = wk.occ.(b) && wk.occ.(a) > 0 && wk.occ.(b) > 0
              then Int_vec.push pairs key
            end)
          sh.wits)
      wk.shards
  end
  else begin
    let occ_tot = Array.make nsym 0 in
    Array.iter
      (fun (wk : walker) ->
        for i = 0 to nsym - 1 do
          occ_tot.(i) <- occ_tot.(i) + wk.occ.(i)
        done)
      t.walkers;
    let sat = Int_pair_tbl.create ~capacity:1024 () in
    Array.iter
      (fun (wk : walker) ->
        Array.iter
          (fun (sh : shard) ->
            Int_pair_tbl.iter
              (fun key p -> ignore (Int_pair_tbl.add_to sat key (Int_pair_tbl.snd_of p)))
              sh.wits)
          wk.shards)
      t.walkers;
    Int_pair_tbl.iter
      (fun key sat_ab ->
        let a = Int_pair_tbl.fst_of key in
        let b = Int_pair_tbl.snd_of key in
        if a < b then begin
          let sat_ba = Int_pair_tbl.find sat (Int_pair_tbl.pack b a) ~default:0 in
          if sat_ab = occ_tot.(a) && sat_ba = occ_tot.(b) && occ_tot.(a) > 0 && occ_tot.(b) > 0
          then Int_vec.push pairs key
        end)
      sat
  end;
  let affine = Int_vec.to_array pairs in
  Array.sort compare affine;
  t.merges <- t.merges + 1;
  (match t.h_merge with
  | Some h -> Metrics.observe h (Int64.to_int (Int64.sub (t.clock ()) t0))
  | None -> ());
  { trg; affine }

(* Digests — the bit-identity contract made checkable. Both sides digest
   the same canonical renderings: the CSR edge sweep (ascending (x, y))
   and the sorted packed affine-pair array. *)

let trg_digest trg =
  let b = Buffer.create 4096 in
  Trg.iter_edges
    (fun x y w ->
      Buffer.add_string b (string_of_int x);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int y);
      Buffer.add_char b ',';
      Buffer.add_string b (string_of_int w);
      Buffer.add_char b ';')
    trg;
  Digest.to_hex (Digest.string (Buffer.contents b))

let affine_digest packed =
  let b = Buffer.create 1024 in
  Array.iter
    (fun k ->
      Buffer.add_string b (string_of_int k);
      Buffer.add_char b ';')
    packed;
  Digest.to_hex (Digest.string (Buffer.contents b))

let consensus_digests c = (trg_digest c.trg, affine_digest c.affine)

(* Batch-kernel reference for a partitioned stream: run both kernels on
   each (independently trimmed) part and combine by the same algebra the
   walkers use — TRG weights sum across parts; a pair is affine for the
   union iff every part either saturates it or contains neither symbol
   (an absent symbol contributes occ = 0 = sat, which is vacuously
   saturated). *)
let batch_digests_parts ~trg_window ~affinity_w traces =
  let num_symbols =
    match traces with
    | [] -> invalid_arg "Ingest.batch_digests_parts: empty trace list"
    | tr :: _ -> Trace.num_symbols tr
  in
  List.iter
    (fun tr ->
      if Trace.num_symbols tr <> num_symbols then
        invalid_arg "Ingest.batch_digests_parts: traces disagree on the symbol universe")
    traces;
  let trimmed = List.map (fun tr -> if Trim.is_trimmed tr then tr else Trim.trim tr) traces in
  let acc = Int_pair_tbl.create ~capacity:1024 () in
  List.iter
    (fun tr ->
      let trg = Trg.build ~window:trg_window tr in
      Trg.iter_edges (fun x y w -> ignore (Int_pair_tbl.add_to acc (Int_pair_tbl.pack x y) w)) trg)
    trimmed;
  let edges = ref [] in
  Int_pair_tbl.iter
    (fun k w -> edges := (Int_pair_tbl.fst_of k, Int_pair_tbl.snd_of k, w) :: !edges)
    acc;
  let trg = Trg.of_edges ~num_nodes:num_symbols !edges in
  let parts =
    List.map
      (fun tr ->
        let present = Array.make num_symbols false in
        Trace.iter (fun s -> present.(s) <- true) tr;
        let pairs = Hashtbl.create 64 in
        List.iter
          (fun (a, b) -> Hashtbl.replace pairs (Int_pair_tbl.pack a b) ())
          (Affinity.pair_list (Affinity.affine_pairs tr ~w:affinity_w));
        (present, pairs))
      trimmed
  in
  let cand = Hashtbl.create 64 in
  List.iter (fun (_, pairs) -> Hashtbl.iter (fun k () -> Hashtbl.replace cand k ()) pairs) parts;
  let keep =
    Hashtbl.fold
      (fun k () acc ->
        let a = Int_pair_tbl.fst_of k and b = Int_pair_tbl.snd_of k in
        if
          List.for_all
            (fun (present, pairs) ->
              Hashtbl.mem pairs k || ((not present.(a)) && not present.(b)))
            parts
        then k :: acc
        else acc)
      cand []
  in
  let packed = Array.of_list keep in
  Array.sort compare packed;
  (trg_digest trg, affine_digest packed)

let batch_digests ~trg_window ~affinity_w trace = batch_digests_parts ~trg_window ~affinity_w [ trace ]
