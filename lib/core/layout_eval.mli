(** Zero-allocation layout-evaluation engine for search loops.

    Every layout-search step ({!Anneal.search}, {!Optimal.search}, the
    wall-clock experiments) needs the same question answered many times:
    {e what is the solo miss ratio of this candidate order?} The seed path
    re-pays the full cost per candidate — a fresh {!Layout.t} (three
    [num_blocks]-sized arrays plus permutation bookkeeping), a tuple
    allocation per trace event inside the line expansion, and a freshly
    allocated {!Colayout_cache.Set_assoc.t} simulator. This engine is
    created {e once} per [(program, trace, params)] and answers
    {!miss_ratio_of_order} with {b zero per-candidate heap allocation}:

    - the trace and per-block geometry (sizes, fallthrough targets, entry
      flags, per-function block lists) are precompiled into flat [int]
      arrays at construction;
    - layout construction, line expansion and LRU cache simulation are
      fused into one streaming pass over preallocated scratch buffers — no
      intermediate {!Colayout_trace.Trace.t}, no per-candidate {!Layout.t};
    - cache state is reset between candidates by bumping an {e epoch
      stamp} checked on every set lookup, instead of reallocating (or even
      clearing) the way arrays.

    Results are bit-equal to the seed evaluator
    ({!Kernel_baseline.miss_ratio_of_function_order}, i.e.
    [Layout.of_function_order] + [Icache.solo] + [Cache_stats.miss_ratio]):
    the engine performs the same line-access sequence against the same LRU
    replacement decisions and divides the same integer counters, so the
    returned [float] is identical, not merely close. [test_layout_eval.ml]
    proves this differentially over random programs, orders and cache
    geometries. *)

type t

val create :
  ?pool:Colayout_util.Pool.t ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  t
(** Precompile [program] and [trace] against the cache geometry [params].
    O(num_blocks + trace length) time and space, paid once. When [pool] is
    given, {!eval_batch} fans candidates across its worker domains (one
    lazily-built engine clone per {e worker}); without it, batches run
    sequentially on the caller.

    @raise Invalid_argument if a trace event is not a valid block id of
    [program]. *)

val num_funcs : t -> int

val num_blocks : t -> int

val trace_length : t -> int

val miss_ratio_of_order : t -> int array -> float
(** Solo L1I miss ratio of the layout that places whole functions in the
    given order (blocks of each function stay in declaration order) — the
    same number as
    [Kernel_baseline.miss_ratio_of_function_order ~params program trace],
    bit-for-bit. Allocation-free. The order array is read, never retained.

    @raise Invalid_argument if [order] is not a permutation of the
    function ids. *)

val miss_ratio_of_block_order : ?function_stubs:bool -> t -> int array -> float
(** Solo miss ratio of an arbitrary {e basic-block} order, mirroring
    [Layout.of_block_order ?function_stubs] — broken fall-through edges
    cost {!Colayout_ir.Size_model.jump_bytes} of added unconditional jump,
    and [function_stubs] adds the call-stub bytes at each function entry.
    Bit-equal to the seed path; allocation-free.

    @raise Invalid_argument if [order] is not a permutation of the block
    ids. *)

val pooled : t -> bool
(** Whether the engine was created with a pool of more than one worker —
    i.e. whether {!eval_batch} will actually fan out. Searches use this to
    pick between batched full evaluation and the sequential delta path. *)

val eval_batch : t -> int array array -> float array
(** Score a whole neighborhood of candidate {e function} orders.
    [eval_batch t orders] returns one miss ratio per candidate, in input
    order. With a construction-time [pool] of [jobs > 1], every candidate
    is its own pool task, scheduled by the pool's work-stealing scheduler
    — skewed batches rebalance onto idle workers instead of serializing
    behind a fixed contiguous chunk. Each worker evaluates on a private
    engine clone sharing the immutable precompiled arrays, created lazily
    by that worker on the first candidate it actually runs and reused
    across batches; a worker that evaluates nothing builds no clone
    ({!clones_built}[ t <= min jobs n]). Results are index-ordered and
    bit-identical to a sequential evaluation at any jobs count — each
    candidate is a pure function of the engine's immutable precompiled
    state, and the worker id only selects scratch. Must be called from
    outside the pool's worker domains (nested fan-out is rejected by
    {!Colayout_util.Pool.map}). *)

val clones_built : t -> int
(** Number of per-worker engine clones materialized by {!eval_batch} so
    far — at most [min jobs n] over all batches, never one for a worker
    that ran no candidate. Only meaningful between batches (clone slots
    are written by the worker domains during a batch). *)

(** {2 Delta (incremental) evaluation}

    A search move — swap two functions, or relocate one — perturbs the
    address mapping of a handful of blocks, yet {!miss_ratio_of_order}
    re-streams the whole trace. A {!Delta.session} instead keeps the
    candidate's geometry and a {e per-cache-set} access/miss ledger alive
    between moves and, on each move, re-simulates only the trace events
    that touch a {e dirty} set.

    {b Exactness.} With power-of-two set indexing, the hit/miss outcome of
    each line access depends only on the subsequence of accesses mapping
    to the same set, simulated from a cold set (every candidate starts
    from an epoch-fresh cache). Total misses are therefore a sum of
    independent per-set counts, and a set's subsequence changes only when
    some block's coverage of it changed — which the session detects by
    diffing the recomputed geometry. Re-simulating exactly the dirty sets
    reproduces the full recompute {b bit for bit}: same integer totals,
    same float division, no error bound. The periodic resync (every
    [resync_interval] {e committed} moves, default 64) is an invariant
    audit — it recounts every set from scratch and fails loudly if the
    incremental ledger ever diverges — not error control.

    A session shares the engine's immutable precompiled state and its LRU
    scratch, so do not interleave a session call with a concurrent
    {!miss_ratio_of_order} on the same engine from another domain (the
    same single-owner rule the engine itself has). Interleaved {e
    sequential} full evaluations are safe: the session owns its geometry
    and ledger. *)
module Delta : sig
  type session

  type stats = {
    moves : int;  (** [apply_*] calls performed. *)
    accepted : int;  (** {!commit}s. *)
    undone : int;  (** {!undo}s. *)
    resyncs : int;  (** Full recount audits run. *)
    replayed_events : int;  (** Trace events visited by the delta path. *)
    full_walks : int;  (** Moves that fell back to a filtered full walk. *)
    dirty_blocks : int;  (** Cumulative blocks whose geometry changed. *)
    dirty_sets : int;  (** Cumulative cache sets re-simulated. *)
  }

  val start : ?resync_interval:int -> t -> int array -> session
  (** Open a session on [order] (a function permutation, copied): lowers
      the geometry, runs one full cold simulation to seed the per-set
      ledger, and builds the engine's per-block touch-lists on first use
      (O(trace length), amortized across all sessions of the engine).
      [resync_interval] is the number of {e committed} moves between
      automatic full-recount audits (default 64).

      @raise Invalid_argument if [order] is not a permutation of the
      function ids or [resync_interval <= 0]. *)

  val miss_ratio : session -> float
  (** The running solo miss ratio of the session's current order —
      bit-equal to [miss_ratio_of_order] on that order, at every point. *)

  val order : session -> int array
  (** Copy of the current function order (including a pending move). *)

  val blit_order : session -> int array -> unit
  (** Allocation-free {!order} into a caller buffer of length
      [num_funcs]. *)

  val apply_swap : session -> int -> int -> float
  (** [apply_swap s a b] exchanges the functions at positions [a] and [b],
      splices the re-simulated dirty sets into the ledger and returns the
      new miss ratio. The move is {e pending} until {!commit} or {!undo};
      only one move may be pending.

      @raise Invalid_argument on out-of-range or equal positions, or if a
      move is already pending. *)

  val apply_relocate : session -> int -> int -> float
  (** [apply_relocate s a b] moves the function at position [a] to
      position [b], shifting the gap over — the same move
      {!Anneal.search} proposes. Same pending discipline as
      {!apply_swap}. *)

  val undo : session -> unit
  (** Revert the pending move: inverse permutation, geometry and per-set
      counters restored from the undo log — O(dirty blocks + dirty sets),
      no re-simulation.

      @raise Invalid_argument if no move is pending. *)

  val commit : session -> unit
  (** Accept the pending move. Every [resync_interval] committed moves
      this triggers {!resync} automatically.

      @raise Invalid_argument if no move is pending. *)

  val resync : session -> float
  (** Full cold recount of every per-set counter under the current
      geometry, compared against the incremental ledger. Returns the
      (unchanged) miss ratio.

      @raise Failure if any per-set count or the running totals diverge —
      the dirty-tracking invariant is broken and the session must not be
      trusted. (The engine itself is proven bit-equal to the
      {!Kernel_baseline} seed evaluator, so agreement here is agreement
      with the oracle.)
      @raise Invalid_argument if a move is pending. *)

  val stats : session -> stats
  (** Cumulative work counters, for honest benchmarking: the delta bench
      reports measured dirty-% and replayed-event fractions from these. *)
end
