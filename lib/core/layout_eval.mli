(** Zero-allocation layout-evaluation engine for search loops.

    Every layout-search step ({!Anneal.search}, {!Optimal.search}, the
    wall-clock experiments) needs the same question answered many times:
    {e what is the solo miss ratio of this candidate order?} The seed path
    re-pays the full cost per candidate — a fresh {!Layout.t} (three
    [num_blocks]-sized arrays plus permutation bookkeeping), a tuple
    allocation per trace event inside the line expansion, and a freshly
    allocated {!Colayout_cache.Set_assoc.t} simulator. This engine is
    created {e once} per [(program, trace, params)] and answers
    {!miss_ratio_of_order} with {b zero per-candidate heap allocation}:

    - the trace and per-block geometry (sizes, fallthrough targets, entry
      flags, per-function block lists) are precompiled into flat [int]
      arrays at construction;
    - layout construction, line expansion and LRU cache simulation are
      fused into one streaming pass over preallocated scratch buffers — no
      intermediate {!Colayout_trace.Trace.t}, no per-candidate {!Layout.t};
    - cache state is reset between candidates by bumping an {e epoch
      stamp} checked on every set lookup, instead of reallocating (or even
      clearing) the way arrays.

    Results are bit-equal to the seed evaluator
    ({!Kernel_baseline.miss_ratio_of_function_order}, i.e.
    [Layout.of_function_order] + [Icache.solo] + [Cache_stats.miss_ratio]):
    the engine performs the same line-access sequence against the same LRU
    replacement decisions and divides the same integer counters, so the
    returned [float] is identical, not merely close. [test_layout_eval.ml]
    proves this differentially over random programs, orders and cache
    geometries. *)

type t

val create :
  ?pool:Colayout_util.Pool.t ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  t
(** Precompile [program] and [trace] against the cache geometry [params].
    O(num_blocks + trace length) time and space, paid once. When [pool] is
    given, {!eval_batch} fans candidates across its worker domains (one
    engine clone per chunk); without it, batches run sequentially on the
    caller.

    @raise Invalid_argument if a trace event is not a valid block id of
    [program]. *)

val num_funcs : t -> int

val num_blocks : t -> int

val trace_length : t -> int

val miss_ratio_of_order : t -> int array -> float
(** Solo L1I miss ratio of the layout that places whole functions in the
    given order (blocks of each function stay in declaration order) — the
    same number as
    [Kernel_baseline.miss_ratio_of_function_order ~params program trace],
    bit-for-bit. Allocation-free. The order array is read, never retained.

    @raise Invalid_argument if [order] is not a permutation of the
    function ids. *)

val miss_ratio_of_block_order : ?function_stubs:bool -> t -> int array -> float
(** Solo miss ratio of an arbitrary {e basic-block} order, mirroring
    [Layout.of_block_order ?function_stubs] — broken fall-through edges
    cost {!Colayout_ir.Size_model.jump_bytes} of added unconditional jump,
    and [function_stubs] adds the call-stub bytes at each function entry.
    Bit-equal to the seed path; allocation-free.

    @raise Invalid_argument if [order] is not a permutation of the block
    ids. *)

val eval_batch : t -> int array array -> float array
(** Score a whole neighborhood of candidate {e function} orders.
    [eval_batch t orders] returns one miss ratio per candidate, in input
    order. With a construction-time [pool] of [jobs > 1], candidates are
    split into contiguous chunks fanned across the pool (one private
    engine clone per chunk, created lazily on first use and reused across
    batches); results are index-ordered and bit-identical to a sequential
    evaluation at any jobs count — each candidate is a pure function of
    the engine's immutable precompiled state. Must be called from outside
    the pool's worker domains (nested fan-out is rejected by
    {!Colayout_util.Pool.map}). *)
