(** Simulated-annealing layout search.

    Between the paper's O(N)–O(N³) heuristics and the impossible exhaustive
    search (§III-D) sits local search: start from a heuristic's function
    order and hill-climb with occasional uphill moves over the simulated
    miss ratio. Too slow to be a compiler pass (each step is a full cache
    simulation) but useful to estimate how much headroom the heuristics
    leave — the experiment harness uses it in the Petrank-Rawitz wall
    study. Deterministic for a fixed seed.

    Since PR 6 the sequential searches score proposals through
    {!Layout_eval.Delta}: the engine keeps a per-cache-set ledger alive
    across moves and re-simulates only the trace segments a move actually
    perturbs, with a periodic full-recount audit (the [resync_interval]).
    The delta ratios are {e bit-equal} to a full streaming evaluation, so
    results are byte-identical to the PR-5 full-recompute path — which
    stays selectable as [~mode:`Full], both as the honest before-side of
    [BENCH_layout_eval_delta.json] and as a differential oracle. *)

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;  (** Simulations performed. *)
  improved_from : float;  (** Miss ratio of the initial order. *)
}

type eval_mode = [ `Delta | `Full ]
(** How proposals are scored: [`Delta] (default) through a
    {!Layout_eval.Delta} session, [`Full] through one full streaming
    evaluation per proposal (the PR-5 behaviour). Both modes draw the same
    PRNG stream and produce bit-equal ratios, hence byte-identical
    results. *)

val apply_swap : int array -> int -> int -> unit
(** Exchange positions [a] and [b] in place. Its own inverse. Exposed for
    the delta benchmark and tests that replay identical move sequences
    down both evaluation paths. *)

val apply_relocate : int array -> int -> int -> unit
(** Move position [a] to position [b] in place, shifting the gap over.
    [apply_relocate o a b] is undone by [apply_relocate o b a]. *)

val search :
  ?seed:int ->
  ?steps:int ->
  ?initial:int array ->
  ?max_span:int ->
  ?resync_interval:int ->
  ?mode:eval_mode ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  result
(** [steps] defaults to 300; [initial] to the identity (original) order;
    temperature decays geometrically to ~0 over the budget. Neighbourhood:
    swap two random functions, or relocate one (50/50). With [max_span]
    the second position is drawn within [max_span] positions of the first
    — the local-refinement regime where delta evaluation shines (a local
    move dirties few cache sets); without it the draw is uniform, the
    exact PR-5 stream. [resync_interval] (default 64 accepted moves) sets
    the cadence of the delta ledger's full-recount audit; [mode] selects
    the evaluation strategy (see {!eval_mode}).

    Degenerate inputs ([num_funcs <= 1]) return the trivial order
    immediately — there is no neighbourhood to draw from, and the
    redraw-until-distinct loop must never spin on one.

    Every step performs a real move: when two drawn positions collide
    ([a = b]) the second draw is repeated rather than burning the step.
    For a fixed [seed] and [max_span], the accepted-order trajectory and
    result are byte-identical across modes. *)

val search_batch :
  ?seed:int ->
  ?steps:int ->
  ?width:int ->
  ?initial:int array ->
  ?max_span:int ->
  ?resync_interval:int ->
  Layout_eval.t ->
  result
(** Batched variant: each of the [steps] (default 60) temperature steps
    draws [width] (default 8) independent moves from the current order,
    scores the whole neighborhood, and Metropolis-accepts the best
    candidate. On a pooled engine ({!Layout_eval.pooled}) the neighborhood
    is materialized and fanned out through {!Layout_eval.eval_batch}'s
    index-ordered merge, exactly as before; on a sequential engine each
    move is scored by a delta apply/undo pair instead — no candidate
    copies, no full re-streams. The two regimes draw the same PRNG stream
    and produce bit-equal ratios, so the search stays deterministic at any
    jobs count. [result.steps] reports simulations performed
    ([steps * width + 1]). *)
