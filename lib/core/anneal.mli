(** Simulated-annealing layout search.

    Between the paper's O(N)–O(N³) heuristics and the impossible exhaustive
    search (§III-D) sits local search: start from a heuristic's function
    order and hill-climb with occasional uphill moves over the simulated
    miss ratio. Too slow to be a compiler pass (each step is a full cache
    simulation) but useful to estimate how much headroom the heuristics
    leave — the experiment harness uses it in the Petrank-Rawitz wall
    study. Deterministic for a fixed seed.

    Both searches evaluate candidates through a {!Layout_eval} engine: one
    streaming pass per candidate over precompiled state, no per-candidate
    allocation (the seed evaluator survives as
    {!Kernel_baseline.miss_ratio_of_function_order}). Moves are applied to
    the current order {e in place} and undone on rejection — no
    [Array.copy] proposal per step. *)

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;  (** Simulations performed. *)
  improved_from : float;  (** Miss ratio of the initial order. *)
}

val search :
  ?seed:int ->
  ?steps:int ->
  ?initial:int array ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  result
(** [steps] defaults to 300; [initial] to the identity (original) order;
    temperature decays geometrically to ~0 over the budget. Neighbourhood:
    swap two random functions, or relocate one (50/50).

    Every step now performs a real move: when the two drawn positions
    collide ([a = b]) the second draw is repeated rather than burning the
    step (the seed loop consumed the step — and both draws — as a no-op).

    Seed compatibility: for a fixed [seed], runs whose move sequence is
    unchanged (no [a = b] collision ever occurred under the seed loop)
    draw the identical PRNG stream and produce the identical accepted-order
    sequence and result. Where the seed loop did collide, this search
    spends those steps on real moves, so the streams — and possibly the
    result — diverge from pre-PR-5 outputs (never in quality contract:
    [miss_ratio <= improved_from] still holds). *)

val search_batch :
  ?seed:int ->
  ?steps:int ->
  ?width:int ->
  ?initial:int array ->
  Layout_eval.t ->
  result
(** Batched variant: each of the [steps] (default 60) temperature steps
    draws [width] (default 8) independent moves from the current order,
    scores the whole neighborhood with one {!Layout_eval.eval_batch} call
    (fanned across the engine's pool when it has one), and
    Metropolis-accepts the best candidate. [result.steps] reports
    simulations performed ([steps * width + 1]). Deterministic for a fixed
    seed at any jobs count — batch evaluation is bit-identical to
    sequential. The candidate buffers are allocated once and reused, so
    the per-step cost is the evaluations themselves. *)
