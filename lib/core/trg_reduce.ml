open Colayout_util

type result = {
  order : int list;
  slot_lists : int list array;
}

(* Heap entries are (weight, x, y) with x < y; heavier first, then smaller
   ids, so the reduction is deterministic. Stale entries (weight no longer
   current, or an endpoint gone) are discarded lazily on pop. *)
let edge_cmp (w1, x1, y1) (w2, x2, y2) =
  if w1 <> w2 then compare w1 w2 else compare (x2, y2) (x1, y1)

let reduce ?decisions trg ~slots =
  if slots < 1 then invalid_arg "Trg_reduce.reduce: slots must be >= 1";
  let n = Trg.num_nodes trg in
  (* Mutable working copy of the adjacency. *)
  let adj = Array.init n (fun _ -> Hashtbl.create 8) in
  let set_w x y w =
    Hashtbl.replace adj.(x) y w;
    Hashtbl.replace adj.(y) x w
  in
  let del_edge x y =
    Hashtbl.remove adj.(x) y;
    Hashtbl.remove adj.(y) x
  in
  let cur_w x y = Option.value ~default:0 (Hashtbl.find_opt adj.(x) y) in
  let heap = Heap.create ~cmp:edge_cmp () in
  (* Seed the working adjacency and the heap straight from the finalized CSR
     arrays; the heap's total order on (w, x, y) makes the pop sequence
     independent of insertion order, so no pre-sorted edge list is needed. *)
  Trg.finalize trg;
  Trg.iter_edges
    (fun x y w ->
      set_w x y w;
      Heap.push heap (w, x, y))
    trg;
  let slot_of = Array.make n (-1) in
  let rep_of_slot = Array.make slots (-1) in
  let slot_vecs = Array.init slots (fun _ -> Vec.create ()) in
  let is_rep v = slot_of.(v) >= 0 && rep_of_slot.(slot_of.(v)) = v in
  let placed v = slot_of.(v) >= 0 in
  (* Steps 19-21: a (possibly merged) node in one slot keeps no edges to the
     nodes of other slots. *)
  let drop_cross_slot_edges v =
    let to_remove =
      Hashtbl.fold
        (fun nb _ acc -> if is_rep nb && slot_of.(nb) <> slot_of.(v) then nb :: acc else acc)
        adj.(v) []
    in
    List.iter (fun nb -> del_edge v nb) to_remove
  in
  let choose_slot v =
    (* Empty slot in index order wins outright; otherwise the strict minimum
       conflict weight against each slot's merged node, first slot on ties. *)
    let rec scan k best best_w =
      if k >= slots then best
      else if rep_of_slot.(k) < 0 then k
      else begin
        let w = cur_w v rep_of_slot.(k) in
        if w < best_w then scan (k + 1) k w else scan (k + 1) best best_w
      end
    in
    scan 0 (-1) max_int
  in
  let place ~w v =
    let k = choose_slot v in
    Vec.push slot_vecs.(k) v;
    slot_of.(v) <- k;
    if rep_of_slot.(k) < 0 then begin
      rep_of_slot.(k) <- v;
      Decision_trace.emit decisions ~stage:"trg-reduce" ~action:"place" ~x:v ~weight:w ~group:k
        ~size:(Vec.length slot_vecs.(k)) ();
      drop_cross_slot_edges v
    end
    else begin
      (* Merge v into the slot's node r: combine edge weights, then drop
         cross-slot edges of the merged node. *)
      let r = rep_of_slot.(k) in
      Decision_trace.emit decisions ~stage:"trg-reduce" ~action:"merge" ~x:v ~y:r ~weight:w
        ~group:k ~size:(Vec.length slot_vecs.(k)) ();
      let neighbours = Hashtbl.fold (fun nb w acc -> (nb, w) :: acc) adj.(v) [] in
      List.iter
        (fun (nb, w) ->
          del_edge v nb;
          if nb <> r then begin
            let w' = cur_w r nb + w in
            set_w r nb w';
            if not (placed nb) || is_rep nb then
              Heap.push heap (w', min r nb, max r nb)
          end)
        neighbours;
      drop_cross_slot_edges r
    end
  in
  let rec drain () =
    match Heap.pop heap with
    | None -> ()
    | Some (w, x, y) ->
      let stale =
        cur_w x y <> w
        || (placed x && not (is_rep x))
        || (placed y && not (is_rep y))
        || (is_rep x && is_rep y)
      in
      if not stale then begin
        if not (placed x) then place ~w x;
        if not (placed y) then place ~w y
      end;
      drain ()
  in
  drain ();
  let slot_lists = Array.map Vec.to_list slot_vecs in
  (* Round-robin output: one head per non-empty list per round. *)
  let order = ref [] in
  let idx = Array.make slots 0 in
  let remaining = ref (Array.fold_left (fun acc v -> acc + List.length v) 0 slot_lists) in
  while !remaining > 0 do
    for k = 0 to slots - 1 do
      let l = slot_lists.(k) in
      if idx.(k) < List.length l then begin
        order := List.nth l idx.(k) :: !order;
        idx.(k) <- idx.(k) + 1;
        decr remaining
      end
    done
  done;
  { order = List.rev !order; slot_lists }

let slots_for ~params ~block_bytes ~cache_multiplier =
  if block_bytes <= 0 then invalid_arg "Trg_reduce.slots_for";
  let open Colayout_cache in
  let ab = params.Params.assoc * params.Params.line_bytes in
  let c = int_of_float (float_of_int params.Params.size_bytes *. cache_multiplier) in
  let total_sets = max 1 (c / ab) in
  let sets_per_block = max 1 ((block_bytes + ab - 1) / ab) in
  max 1 (total_sets / sets_per_block)
