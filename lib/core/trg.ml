open Colayout_util
open Colayout_trace

(* Two representations. During construction the graph accumulates into one
   flat packed-key table, each undirected edge stored exactly once under its
   canonical (min, max) key — no boxed tuples, no per-node hash tables, no
   symmetric double storage. [finalize] converts to CSR: row [x] holds the
   neighbours [y > x] in ascending order with parallel weights, so point
   queries are a binary search and whole-graph iteration is a contiguous
   array sweep. The packed table is dropped at that point, which is what
   halves resident memory versus the old double-stored adjacency. *)

type csr = {
  row_ptr : int array; (* length num_nodes + 1 *)
  src : int array; (* length E: the smaller endpoint of each edge *)
  nbr : int array; (* length E: the larger endpoint, ascending within a row *)
  wt : int array; (* length E *)
  mutable by_weight : int array option; (* edge indices, heaviest first; lazy *)
}

type repr =
  | Building of Int_pair_tbl.t
  | Csr of csr

type t = {
  num_nodes : int;
  deg : int array; (* undirected degree, maintained in both representations *)
  mutable repr : repr;
}

let num_nodes t = t.num_nodes

let check_universe n =
  if n > Int_pair_tbl.max_coord then
    invalid_arg "Trg: num_symbols >= 2^31 exceeds the packed-key coordinate bound"

let create_building n =
  check_universe n;
  { num_nodes = n; deg = Array.make n 0; repr = Building (Int_pair_tbl.create ~capacity:1024 ()) }

let bump t x y dw =
  match t.repr with
  | Csr _ -> invalid_arg "Trg.bump: graph already finalized"
  | Building tbl ->
    let lo = if x < y then x else y in
    let hi = if x < y then y else x in
    let w' = Int_pair_tbl.add_to tbl (Int_pair_tbl.pack lo hi) dw in
    if w' = dw then begin
      (* First occurrence of this edge. *)
      t.deg.(x) <- t.deg.(x) + 1;
      t.deg.(y) <- t.deg.(y) + 1
    end

let finalize t =
  match t.repr with
  | Csr _ -> ()
  | Building tbl ->
    let e = Int_pair_tbl.length tbl in
    let keys = Array.make (max e 1) 0 in
    let cursor = ref 0 in
    Int_pair_tbl.iter
      (fun k _ ->
        keys.(!cursor) <- k;
        incr cursor)
      tbl;
    let keys = if e = Array.length keys then keys else Array.sub keys 0 e in
    (* Canonical packed keys sort as (src, nbr) lexicographically, so one
       int sort yields row-major CSR order directly. *)
    Array.sort (fun (a : int) b -> compare a b) keys;
    let row_ptr = Array.make (t.num_nodes + 1) 0 in
    let src = Array.make e 0 and nbr = Array.make e 0 and wt = Array.make e 0 in
    Array.iteri
      (fun j k ->
        let x = Int_pair_tbl.fst_of k in
        src.(j) <- x;
        nbr.(j) <- Int_pair_tbl.snd_of k;
        wt.(j) <- Int_pair_tbl.find tbl k ~default:0;
        row_ptr.(x + 1) <- row_ptr.(x + 1) + 1)
      keys;
    for x = 1 to t.num_nodes do
      row_ptr.(x) <- row_ptr.(x) + row_ptr.(x - 1)
    done;
    t.repr <- Csr { row_ptr; src; nbr; wt; by_weight = None }

let weight t x y =
  if x = y then 0
  else
    let lo = if x < y then x else y in
    let hi = if x < y then y else x in
    match t.repr with
    | Building tbl -> Int_pair_tbl.find tbl (Int_pair_tbl.pack lo hi) ~default:0
    | Csr c ->
      let rec search l r =
        if l >= r then 0
        else
          let m = (l + r) / 2 in
          let v = Array.unsafe_get c.nbr m in
          if v = hi then Array.unsafe_get c.wt m
          else if v < hi then search (m + 1) r
          else search l m
      in
      search c.row_ptr.(lo) c.row_ptr.(lo + 1)

let degree t x = t.deg.(x)

let csr_of t =
  finalize t;
  match t.repr with Csr c -> c | Building _ -> assert false

let iter_edges f t =
  let c = csr_of t in
  for j = 0 to Array.length c.nbr - 1 do
    f c.src.(j) c.nbr.(j) c.wt.(j)
  done

let sorted_edge_index c =
  match c.by_weight with
  | Some idx -> idx
  | None ->
    let idx = Array.init (Array.length c.nbr) Fun.id in
    (* Heaviest first, then the canonical (src, nbr) order — which is the
       ascending CSR index, so ties compare by index. *)
    Array.sort
      (fun a b -> if c.wt.(a) <> c.wt.(b) then compare c.wt.(b) c.wt.(a) else compare a b)
      idx;
    c.by_weight <- Some idx;
    idx

let iter_edges_by_weight f t =
  let c = csr_of t in
  let idx = sorted_edge_index c in
  Array.iter (fun j -> f c.src.(j) c.nbr.(j) c.wt.(j)) idx

let edges t =
  let acc = ref [] in
  iter_edges_by_weight (fun x y w -> acc := (x, y, w) :: !acc) t;
  List.rev !acc

let build ?(window = max_int) trace =
  if window < 1 then invalid_arg "Trg.build: window must be >= 1";
  if not (Trim.is_trimmed trace) then invalid_arg "Trg.build: trace must be trimmed";
  let t = create_building (Trace.num_symbols trace) in
  let stack = Lru_stack.create () in
  (* One reusable scratch buffer instead of a freshly consed [betweens] list
     per trace event: the steady state allocates nothing. Each event walks
     the stack exactly once, capped at the window; [touch] then updates the
     stack in O(1) instead of [access]'s full-depth counting walk. *)
  let scratch = Int_vec.create ~capacity:(min window 4096) () in
  Trace.iter
    (fun x ->
      (* If x recurs within the window, every block above it on the stack
         occurred between its two successive occurrences: one potential
         conflict each. *)
      Int_vec.clear scratch;
      let found = ref false in
      Lru_stack.iter_until_depth stack (fun d y ->
          if y = x then begin
            found := true;
            false
          end
          else if d >= window then false
          else begin
            Int_vec.push scratch y;
            true
          end);
      (* Only count when x was actually found within the window: the walk
         must have stopped on x, not on depth exhaustion. *)
      if !found then Int_vec.iter (fun y -> bump t x y 1) scratch;
      Lru_stack.touch stack x)
    trace;
  finalize t;
  t

let of_edges ~num_nodes edge_list =
  let t = create_building num_nodes in
  List.iter
    (fun (x, y, w) ->
      if x = y then invalid_arg "Trg.of_edges: self loop";
      if w <= 0 then invalid_arg "Trg.of_edges: non-positive weight";
      if x < 0 || y < 0 || x >= num_nodes || y >= num_nodes then
        invalid_arg "Trg.of_edges: node out of range";
      bump t x y w)
    edge_list;
  finalize t;
  t

let recommended_window ~params ~block_bytes ~cache_multiplier =
  if block_bytes <= 0 then invalid_arg "Trg.recommended_window";
  let c = float_of_int params.Colayout_cache.Params.size_bytes *. cache_multiplier in
  max 1 (int_of_float (c /. float_of_int block_bytes))
