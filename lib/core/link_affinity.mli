(** Link-based reference affinity — the original Zhong et al. model the
    paper's w-window affinity departs from (§II-B).

    "In link-based affinity, the window size is proportional to the size of
    an affinity group and not constant. As a result, the partition is unique
    in link-based affinity but not in w-window affinity. However, the
    benefit of w-window affinity is faster analysis."

    This module implements the size-proportional-window semantics so the two
    models can be compared: at link length [k], two groups merge when every
    cross pair co-occurs within a window of [k × combined group size] —
    larger groups are given proportionally more room, the defining contrast
    with the fixed [w]. Exact analysis of the original definition is
    NP-hard; like the paper's citation of Zhong et al.'s heuristic, this is
    an agglomerative approximation, but one that preserves the
    proportional-window property. *)

type node =
  | Leaf of int
  | Group of { k : int; children : node list }

type t = {
  roots : node list;
  ks : int list;  (** Link lengths analyzed, ascending. *)
}

val default_ks : int list
(** 1..8. *)

val build :
  ?decisions:Decision_trace.t ->
  ?algo:Affinity_hierarchy.algo ->
  ?ks:int list ->
  ?max_window:int ->
  Colayout_trace.Trace.t ->
  t
(** [max_window] (default 64) caps the proportional window, bounding
    analysis cost on large groups. @raise Invalid_argument if the trace is
    not trimmed or [ks] is not positive ascending. With [decisions], emits
    ["link-affinity"] [join] and [level] events mirroring
    {!Affinity_hierarchy.build}, with link length [k] as the weight. *)

val members : node -> int list

val order : t -> int list
(** Bottom-up traversal, as for {!Affinity_hierarchy.order}. *)

val partition_at : t -> k:int -> int list list
