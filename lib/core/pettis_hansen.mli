(** Pettis–Hansen procedure placement — the classic call-graph baseline.

    The canonical "closest is best" heuristic (Pettis & Hansen, PLDI 1990)
    that modern layout tools (hfsort, BOLT, Propeller) descend from, and the
    natural third comparator next to the paper's affinity and TRG models:
    where those use {e temporal co-occurrence}, Pettis–Hansen uses only the
    {e weighted dynamic call graph}.

    Algorithm: nodes start as singleton chains; repeatedly take the heaviest
    remaining call-graph edge and concatenate the two chains its endpoints
    belong to, choosing among the four end-to-end orientations the one that
    puts the edge's endpoints closest together. Remaining chains are emitted
    heaviest-connection first. *)

type graph

val graph_of_call_trace : num_funcs:int -> Colayout_util.Int_vec.t -> graph
(** Decode an {!Colayout_exec.Interp} call-pair stream
    ([caller * num_funcs + callee] per event) into a weighted undirected
    call graph. *)

val graph_of_edges : num_funcs:int -> (int * int * int) list -> graph
(** For tests: [(caller, callee, weight)]. Self edges (recursion) are
    ignored — they do not constrain placement. *)

val edge_weight : graph -> int -> int -> int

val order : ?decisions:Decision_trace.t -> graph -> int list
(** The placement: functions that call each other frequently end up
    adjacent. Functions with no call edges are omitted (callers append them
    in original order). Deterministic. With [decisions], emits a
    ["pettis-hansen"] [chain-merge] event per concatenation with the edge
    weight that drove it and the combined chain length. *)

val layout_for :
  ?decisions:Decision_trace.t -> Colayout_ir.Program.t -> Colayout_util.Int_vec.t -> Layout.t
(** Full function-reordering optimizer from a call trace. *)
