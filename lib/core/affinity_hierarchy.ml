open Colayout_trace

type node =
  | Leaf of int
  | Group of { w : int; children : node list }

type t = {
  roots : node list;
  ws : int list;
}

type algo = Efficient | Exact

let default_ws = List.init 19 (fun i -> i + 2)

let rec members = function
  | Leaf b -> [ b ]
  | Group { children; _ } -> List.concat_map members children

let check_ws ws =
  let rec ok = function
    | [] -> true
    | [ w ] -> w >= 1
    | w1 :: (w2 :: _ as rest) -> w1 >= 1 && w1 < w2 && ok rest
  in
  if ws = [] || not (ok ws) then
    invalid_arg "Affinity_hierarchy: ws must be positive and strictly ascending"

(* A working group: the dendrogram node plus its member list and the first
   trace position of any member (for deterministic ordering). *)
type work = {
  node : node;
  mems : int list;
  first_pos : int;
}

let merge_level ?decisions ?(stage = "affinity") ~w ~affine groups =
  (* Greedy agglomeration: in first-occurrence order, each group joins the
     first accumulated cluster with which every cross pair is affine. *)
  let clusters : (work list ref) list ref = ref [] in
  List.iter
    (fun g ->
      let compatible cluster =
        List.for_all
          (fun (g' : work) ->
            List.for_all (fun a -> List.for_all (fun b -> affine a b) g'.mems) g.mems)
          !cluster
      in
      let rec place k = function
        | [] -> clusters := !clusters @ [ ref [ g ] ]
        | c :: rest ->
          if compatible c then begin
            (match !c with
            | first :: _ ->
              Decision_trace.emit decisions ~stage ~action:"join"
                ~x:(List.hd g.mems) ~y:(List.hd first.mems) ~weight:w ~group:k
                ~size:(List.length !c + 1) ()
            | [] -> ());
            c := !c @ [ g ]
          end
          else place (k + 1) rest
      in
      place 0 !clusters)
    groups;
  List.map
    (fun c ->
      match !c with
      | [] -> assert false
      | [ g ] -> g
      | gs ->
        {
          node = Group { w; children = List.map (fun g -> g.node) gs };
          mems = List.concat_map (fun g -> g.mems) gs;
          first_pos = List.fold_left (fun acc g -> min acc g.first_pos) max_int gs;
        })
    !clusters

let build ?decisions ?(algo = Efficient) ?(ws = default_ws) trace =
  check_ws ws;
  if not (Trim.is_trimmed trace) then
    invalid_arg "Affinity_hierarchy.build: trace must be trimmed";
  let first = Trace.first_occurrence trace in
  let present =
    List.init (Trace.num_symbols trace) Fun.id
    |> List.filter (fun s -> first.(s) >= 0)
    |> List.sort (fun a b -> compare first.(a) first.(b))
  in
  let groups =
    ref (List.map (fun b -> { node = Leaf b; mems = [ b ]; first_pos = first.(b) }) present)
  in
  List.iter
    (fun w ->
      if List.length !groups > 1 then begin
        let ps =
          match algo with
          | Efficient -> Affinity.affine_pairs trace ~w
          | Exact -> Affinity.affine_pairs_naive trace ~w
        in
        groups := merge_level ?decisions ~w ~affine:(Affinity.is_affine ps) !groups;
        Decision_trace.emit decisions ~stage:"affinity" ~action:"level" ~weight:w
          ~size:(List.length !groups) ()
      end)
    ws;
  let roots = List.sort (fun a b -> compare a.first_pos b.first_pos) !groups in
  { roots = List.map (fun g -> g.node) roots; ws }

let order t = List.concat_map members t.roots

let partition_at t ~w =
  let rec cut node =
    match node with
    | Leaf b -> [ [ b ] ]
    | Group { w = gw; children } ->
      if gw <= w then [ members node ]
      else List.concat_map cut children
  in
  List.concat_map cut t.roots

let rec pp_node ppf = function
  | Leaf b -> Format.fprintf ppf "B%d" b
  | Group { w; children } ->
    Format.fprintf ppf "(@[w=%d:%a@])" w
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_node)
      children

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf "@ ") pp_node)
    t.roots
