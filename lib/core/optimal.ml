open Colayout_ir

type result = {
  best_order : int array;
  best_miss_ratio : float;
  worst_miss_ratio : float;
  evaluated : int;
}

(* One-shot evaluation goes through a throwaway [Layout_eval] engine: same
   bit-exact result as the seed path (which lives on as
   [Kernel_baseline.miss_ratio_of_function_order]), and the searches below
   share the amortized engine instead. *)
let miss_ratio_of_function_order ~params program trace forder =
  Layout_eval.miss_ratio_of_order (Layout_eval.create ~params program trace) forder

(* Heap's algorithm, iterative enough for our sizes: visits all n!
   permutations of [a], calling [f] on each. Stops when [f] returns false. *)
let permutations a f =
  let n = Array.length a in
  let c = Array.make n 0 in
  let continue_ = ref (f a) in
  let i = ref 0 in
  while !continue_ && !i < n do
    if c.(!i) < !i then begin
      let j = if !i mod 2 = 0 then 0 else c.(!i) in
      let tmp = a.(j) in
      a.(j) <- a.(!i);
      a.(!i) <- tmp;
      continue_ := f a;
      c.(!i) <- c.(!i) + 1;
      i := 0
    end
    else begin
      c.(!i) <- 0;
      incr i
    end
  done

let search ?max_layouts ~params program trace =
  let nf = Program.num_funcs program in
  (match max_layouts with
  | None when nf > 9 ->
    invalid_arg
      (Printf.sprintf
         "Optimal.search: %d! layouts is beyond exhaustive search; pass ~max_layouts" nf)
  | _ -> ());
  let cap = Option.value ~default:max_int max_layouts in
  if cap <= 0 then invalid_arg "Optimal.search: max_layouts must be positive";
  (* One engine for the whole walk: each permutation costs one streaming
     pass over the precompiled trace, with no per-candidate allocation. *)
  let engine = Layout_eval.create ~params program trace in
  let best_order = ref (Array.init nf Fun.id) in
  let best = ref infinity in
  let worst = ref neg_infinity in
  let evaluated = ref 0 in
  permutations (Array.init nf Fun.id) (fun forder ->
      let mr = Layout_eval.miss_ratio_of_order engine forder in
      incr evaluated;
      if mr < !best then begin
        best := mr;
        best_order := Array.copy forder
      end;
      if mr > !worst then worst := mr;
      !evaluated < cap);
  {
    best_order = !best_order;
    best_miss_ratio = !best;
    worst_miss_ratio = !worst;
    evaluated = !evaluated;
  }
