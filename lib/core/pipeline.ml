open Colayout_trace

type evaluated = {
  kind : Optimizer.kind;
  layout : Layout.t;
  miss_ratio : float;
  accesses : int;
  misses : int;
}

let reference_trace program input = (Colayout_exec.Interp.run program input).bb_trace

let optimize ?config program ~test_input kind =
  let analysis = Optimizer.analyze ?config program test_input in
  Optimizer.layout_for ?config kind program analysis

let miss_ratio_solo ?prefetch ?sink ~params ~layout trace =
  Colayout_cache.Icache.solo ?prefetch ?sink ~params ~layout:(Layout.to_icache layout)
    (Trace.events trace)

let miss_ratio_corun ?prefetch ?sink ?rates ~params ~self ~peer () =
  let self_layout, self_trace = self in
  let peer_layout, peer_trace = peer in
  Colayout_cache.Icache.shared ?prefetch ?sink ?rates ~params
    ~layouts:(Layout.to_icache self_layout, Layout.to_icache peer_layout)
    (Trace.events self_trace, Trace.events peer_trace)

let evaluate_kinds ?(config = Optimizer.default_config) ?prefetch
    ?(kinds = Optimizer.all_kinds) program ~test_input ~ref_input =
  let analysis = Optimizer.analyze ~config program test_input in
  let ref_trace = reference_trace program ref_input in
  List.map
    (fun kind ->
      let layout = Optimizer.layout_for ~config kind program analysis in
      let stats = miss_ratio_solo ?prefetch ~params:config.Optimizer.params ~layout ref_trace in
      {
        kind;
        layout;
        miss_ratio = Colayout_cache.Cache_stats.miss_ratio stats;
        accesses = Colayout_cache.Cache_stats.accesses stats;
        misses = Colayout_cache.Cache_stats.misses stats;
      })
    kinds

let footprint_curve ~params ~layout trace =
  Footprint.curve (Layout.line_trace ~params ~layout trace)
