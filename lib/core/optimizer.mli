(** The four code-layout optimizers of the paper (§II-F): two locality
    models (w-window affinity, TRG) × two granularities (function,
    inter-procedural basic block), plus the original layout as baseline.

    The flow mirrors the paper's system: instrument with the test input
    ({!analyze}: run, trim per Definition 1, prune to the hottest blocks),
    then hand the reordered sequence to the transformation
    ({!layout_for}). *)

type kind =
  | Original
  | Func_affinity
  | Bb_affinity
  | Func_trg
  | Bb_trg

val all_kinds : kind list

val kind_name : kind -> string

val kind_of_name : string -> kind option

type config = {
  ws : int list;  (** Affinity window sizes (§II-B: between 2 and 20). *)
  prune_top : int;  (** Hot-block pruning threshold (§II-F: 10,000). *)
  cache_multiplier : float;  (** TRG analysis cache scaling (§II-C: 2×). *)
  func_block_bytes : int;
      (** Assumed uniform function size for TRG slotting — the compiler
          works on IR and "cannot use actual code size" (§II-C). *)
  bb_block_bytes : int;  (** Assumed uniform basic-block size for TRG. *)
  params : Colayout_cache.Params.t;
}

val default_config : config

type analysis = {
  bb : Colayout_trace.Trace.t;  (** Trimmed, pruned basic-block trace. *)
  fn : Colayout_trace.Trace.t;  (** Trimmed function trace. *)
  prune : Colayout_trace.Prune.report;
}

val analyze :
  ?config:config ->
  Colayout_ir.Program.t ->
  Colayout_exec.Interp.input ->
  analysis
(** The instrumentation run on the test input. *)

val analysis_of_traces :
  ?config:config ->
  bb:Colayout_trace.Trace.t ->
  fn:Colayout_trace.Trace.t ->
  unit ->
  analysis
(** Build an analysis from pre-recorded traces (trimming and pruning are
    applied here). *)

val layout_for :
  ?decisions:Decision_trace.t ->
  ?config:config ->
  kind ->
  Colayout_ir.Program.t ->
  analysis ->
  Layout.t
(** With [decisions], the underlying model ({!Affinity_hierarchy.build} or
    {!Trg_reduce.reduce}) records every merge/placement choice it makes. *)

val block_order_for :
  ?decisions:Decision_trace.t ->
  ?config:config ->
  kind ->
  Colayout_ir.Program.t ->
  analysis ->
  int array
(** The underlying permutation, exposed for inspection and tests. *)
