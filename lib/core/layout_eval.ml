open Colayout_ir
module Pool = Colayout_util.Pool

(* The engine splits into an immutable precompiled part (shared by clones)
   and per-instance scratch buffers. All candidate evaluation state lives
   in the scratch: [order_buf] holds the lowered block order, [baddr] and
   [bbytes] the streaming layout geometry, and [tags]/[vcnt]/[set_epoch]
   the set-associative LRU state. Nothing is allocated per candidate.

   Epoch-reset trick: a set's ways are valid only when [set_epoch.(s)]
   equals the engine's current [cache_epoch]; bumping the epoch at the
   start of a candidate invalidates the whole cache in O(1). Because lines
   are only ever inserted at the MRU slot and shifted down, the valid ways
   of a set always form a prefix, so a single [vcnt.(s)] valid-count per
   set replaces per-way validity bits. *)

type t = {
  (* Immutable precompiled state (shared between clones). *)
  nf : int;
  nb : int;
  line_shift : int; (* log2 line_bytes *)
  set_mask : int; (* num_sets - 1 *)
  assoc : int;
  ev : int array; (* trace events, validated block ids *)
  blk_size : int array; (* base body+terminator bytes per block *)
  blk_ft : int array; (* fallthrough target per block, or -1 *)
  blk_entry : bool array; (* is the block its function's entry? *)
  fn_off : int array; (* nf + 1: CSR offsets into fn_blocks *)
  fn_blocks : int array; (* blocks grouped by function, declaration order *)
  pool : Pool.t option;
  (* Per-instance scratch. *)
  order_buf : int array; (* nb: lowered block order of a function order *)
  baddr : int array; (* nb: per-block start address of the candidate *)
  bbytes : int array; (* nb: per-block size incl. added jumps *)
  tags : int array; (* num_sets * assoc, way 0 of a set is MRU *)
  vcnt : int array; (* num_sets: valid-prefix length *)
  set_epoch : int array; (* num_sets: epoch the set was last touched in *)
  mutable cache_epoch : int;
  seen : int array; (* max nf nb: epoch-stamped permutation check *)
  mutable seen_epoch : int;
  (* Per-worker engine clones for eval_batch, keyed by the pool worker
     index executing the task. A slot is filled lazily, by that worker,
     on the first candidate it actually evaluates — so a worker that
     never receives a task (n < jobs, or everything stolen away) builds
     no clone. Distinct workers touch distinct slots and the consumer
     only reads the array between batches (synchronized through the
     pool's batch completion), so the array needs no lock. *)
  mutable clones : t option array;
  (* Per-block trace touch-lists (CSR over event indices), built lazily on
     the first delta session: [touch_ev.(touch_off.(b) .. touch_off.(b+1)-1)]
     are the ascending positions of block [b] in [ev]. Seeded from the same
     occurrence counts [Trace.occurrences] materializes, but indexed by
     event position so a move can replay exactly the events that matter. *)
  mutable touch_off : int array;
  mutable touch_ev : int array;
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  go 0

let create ?pool ~params program trace =
  let nf = Program.num_funcs program in
  let nb = Program.num_blocks program in
  let ev = Colayout_util.Int_vec.to_array (Colayout_trace.Trace.events trace) in
  Array.iter
    (fun bid ->
      if bid < 0 || bid >= nb then
        invalid_arg
          (Printf.sprintf "Layout_eval.create: trace event %d is not a block id of %s" bid
             (Program.name program)))
    ev;
  let blk_size = Array.make (max 1 nb) 0 in
  let blk_ft = Array.make (max 1 nb) (-1) in
  let blk_entry = Array.make (max 1 nb) false in
  for bid = 0 to nb - 1 do
    let b = Program.block program bid in
    blk_size.(bid) <- b.Program.size_bytes;
    (match Program.fallthrough_target program bid with
    | Some target -> blk_ft.(bid) <- target
    | None -> ());
    blk_entry.(bid) <- (Program.func program b.Program.fn).Program.entry = bid
  done;
  let fn_off = Array.make (nf + 1) 0 in
  for fid = 0 to nf - 1 do
    fn_off.(fid + 1) <- fn_off.(fid) + Array.length (Program.func program fid).Program.blocks
  done;
  let fn_blocks = Array.make (max 1 nb) 0 in
  for fid = 0 to nf - 1 do
    Array.iteri
      (fun i bid -> fn_blocks.(fn_off.(fid) + i) <- bid)
      (Program.func program fid).Program.blocks
  done;
  let num_sets = params.Colayout_cache.Params.num_sets in
  let assoc = params.Colayout_cache.Params.assoc in
  {
    nf;
    nb;
    line_shift = log2_exact params.Colayout_cache.Params.line_bytes;
    set_mask = num_sets - 1;
    assoc;
    ev;
    blk_size;
    blk_ft;
    blk_entry;
    fn_off;
    fn_blocks;
    pool;
    order_buf = Array.make (max 1 nb) 0;
    baddr = Array.make (max 1 nb) 0;
    bbytes = Array.make (max 1 nb) 0;
    tags = Array.make (num_sets * assoc) 0;
    vcnt = Array.make num_sets 0;
    set_epoch = Array.make num_sets 0;
    cache_epoch = 0;
    seen = Array.make (max 1 (max nf nb)) 0;
    seen_epoch = 0;
    clones = [||];
    touch_off = [||];
    touch_ev = [||];
  }

(* A clone shares every immutable array and gets fresh scratch; it never
   carries the pool (clones are the pool's workers, not its consumers). *)
let clone t =
  {
    t with
    pool = None;
    order_buf = Array.make (Array.length t.order_buf) 0;
    baddr = Array.make (Array.length t.baddr) 0;
    bbytes = Array.make (Array.length t.bbytes) 0;
    tags = Array.make (Array.length t.tags) 0;
    vcnt = Array.make (Array.length t.vcnt) 0;
    set_epoch = Array.make (Array.length t.set_epoch) 0;
    cache_epoch = 0;
    seen = Array.make (Array.length t.seen) 0;
    seen_epoch = 0;
    clones = [||];
    touch_off = [||];
    touch_ev = [||];
  }

let num_funcs t = t.nf

let num_blocks t = t.nb

let trace_length t = Array.length t.ev

(* Allocation-free permutation check: [seen] doubles as a visited-set via
   epoch stamps, so no [bool array] is created per candidate (the cost the
   seed [Layout.check_permutation] pays on every evaluation). *)
let check_perm t what n order =
  if Array.length order <> n then
    invalid_arg
      (Printf.sprintf "Layout_eval: %s order has %d entries, expected %d" what
         (Array.length order) n);
  t.seen_epoch <- t.seen_epoch + 1;
  let ep = t.seen_epoch in
  let seen = t.seen in
  for i = 0 to n - 1 do
    let v = order.(i) in
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Layout_eval: bad %s id %d" what v);
    if seen.(v) = ep then
      invalid_arg (Printf.sprintf "Layout_eval: duplicate %s id %d" what v);
    seen.(v) <- ep
  done

(* Streaming equivalent of [Layout.of_block_order]: walk the order once,
   writing each block's address and jump-adjusted size into the scratch
   geometry. Identical byte accounting — a broken fall-through edge adds
   [Size_model.jump_bytes], and [function_stubs] adds the entry stub. *)
let layout_pass_into t order ~function_stubs ~baddr ~bbytes =
  let nb = t.nb in
  let jb = Size_model.jump_bytes in
  let blk_size = t.blk_size and blk_ft = t.blk_ft and blk_entry = t.blk_entry in
  let cursor = ref 0 in
  for pos = 0 to nb - 1 do
    let bid = order.(pos) in
    let ft = Array.unsafe_get blk_ft bid in
    let needs_jump = ft >= 0 && (pos + 1 >= nb || order.(pos + 1) <> ft) in
    let stub = function_stubs && Array.unsafe_get blk_entry bid in
    let bytes =
      Array.unsafe_get blk_size bid
      + (if needs_jump then jb else 0)
      + if stub then jb else 0
    in
    Array.unsafe_set baddr bid !cursor;
    Array.unsafe_set bbytes bid bytes;
    cursor := !cursor + bytes
  done

let layout_pass t order ~function_stubs =
  layout_pass_into t order ~function_stubs ~baddr:t.baddr ~bbytes:t.bbytes

(* Fused line expansion + set-associative LRU simulation: one pass over the
   precompiled event array, counting accesses and misses in locals. The
   replacement decisions are exactly [Set_assoc.access_line]'s (scan for
   the tag, promote on hit, shift-and-insert at MRU on miss), so the
   hit/miss sequence — and therefore the final ratio — matches the seed
   simulator bit-for-bit. *)
let simulate t =
  t.cache_epoch <- t.cache_epoch + 1;
  let ep = t.cache_epoch in
  let ev = t.ev and baddr = t.baddr and bbytes = t.bbytes in
  let tags = t.tags and vcnt = t.vcnt and set_epoch = t.set_epoch in
  let shift = t.line_shift and mask = t.set_mask and assoc = t.assoc in
  let acc = ref 0 and miss = ref 0 in
  for e = 0 to Array.length ev - 1 do
    let bid = Array.unsafe_get ev e in
    let addr = Array.unsafe_get baddr bid in
    let first = addr asr shift in
    let last = (addr + Array.unsafe_get bbytes bid - 1) asr shift in
    acc := !acc + (last - first + 1);
    for line = first to last do
      let s = line land mask in
      let base = s * assoc in
      let k =
        if Array.unsafe_get set_epoch s = ep then Array.unsafe_get vcnt s
        else begin
          Array.unsafe_set set_epoch s ep;
          Array.unsafe_set vcnt s 0;
          0
        end
      in
      (* MRU fast path: sequential code re-touches the line a fall-through
         neighbour just ended in, so way 0 hits are the common case — and
         they need no state change at all. *)
      if k > 0 && Array.unsafe_get tags base = line then ()
      else begin
        let i = ref 1 in
        while !i < k && Array.unsafe_get tags (base + !i) <> line do
          incr i
        done;
        if !i < k then begin
          (* Hit: promote way [i] to MRU. The shifts are open-coded — an
             [Array.blit] pays a C-call per access, which at assoc <= 4
             costs more than the one or two moves it performs. *)
          let j = ref !i in
          while !j > 0 do
            Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
            decr j
          done;
          Array.unsafe_set tags base line
        end
        else begin
          (* Miss: evict LRU by shifting the whole set down one. *)
          incr miss;
          let j = ref (assoc - 1) in
          while !j > 0 do
            Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
            decr j
          done;
          Array.unsafe_set tags base line;
          if k < assoc then Array.unsafe_set vcnt s (k + 1)
        end
      end
    done
  done;
  if !acc = 0 then 0.0 else float_of_int !miss /. float_of_int !acc

let miss_ratio_of_block_order ?(function_stubs = false) t order =
  check_perm t "block" t.nb order;
  layout_pass t order ~function_stubs;
  simulate t

(* Lower a function order into [t.order_buf] (blocks of each function in
   declaration order). The result is a block permutation by construction —
   callers skip the permutation re-check. *)
let lower_into t forder =
  let order_buf = t.order_buf and fn_off = t.fn_off and fn_blocks = t.fn_blocks in
  let pos = ref 0 in
  for idx = 0 to t.nf - 1 do
    let fid = forder.(idx) in
    for j = fn_off.(fid) to fn_off.(fid + 1) - 1 do
      order_buf.(!pos) <- Array.unsafe_get fn_blocks j;
      incr pos
    done
  done

let miss_ratio_of_order t forder =
  check_perm t "function" t.nf forder;
  lower_into t forder;
  layout_pass t t.order_buf ~function_stubs:false;
  simulate t

let pooled t =
  match t.pool with Some pool -> Pool.jobs pool > 1 | None -> false

let clones_built t =
  Array.fold_left (fun acc c -> if c = None then acc else acc + 1) 0 t.clones

(* Per-worker clone, built by the executing worker on its first task.
   Never called for a worker that evaluates nothing — the invariant
   [clones_built t <= min jobs n] that test_layout_eval asserts. *)
let clone_for t worker =
  match t.clones.(worker) with
  | Some eng -> eng
  | None ->
    let eng = clone t in
    t.clones.(worker) <- Some eng;
    eng

let eval_batch t orders =
  let n = Array.length orders in
  match t.pool with
  | Some pool when Pool.jobs pool > 1 && n > 1 ->
    (* One pool task per candidate: the work-stealing scheduler balances
       however the per-candidate costs fall, instead of committing each
       worker to a fixed contiguous chunk up front. Results are
       index-ordered by the pool and each candidate is a pure function
       of the engine's immutable precompiled state, so they are
       bit-identical to a sequential evaluation at any jobs count. *)
    let jobs = Pool.jobs pool in
    if Array.length t.clones <> jobs then t.clones <- Array.make jobs None;
    Pool.map_array_w pool
      (fun ~worker order -> miss_ratio_of_order (clone_for t worker) order)
      orders
  | _ -> Array.map (fun o -> miss_ratio_of_order t o) orders

(* ------------------------------------------------------ delta sessions *)

(* Exactness argument the whole module rests on: with set index
   [line land set_mask], the hit/miss outcome of every line access depends
   only on the subsequence of accesses that map to the same cache set,
   simulated from a cold set (each candidate starts from an epoch-fresh
   cache). Total misses therefore decompose as a sum of independent
   per-set counts. A swap/relocate changes the address mapping of some
   blocks; a set's subsequence changes only if a block's coverage of that
   set changed, and coverage changes only for blocks whose (address, size)
   changed. So re-simulating exactly the {e dirty} sets — against the
   events of every block that covers them under the new layout — and
   splicing the new per-set counts into the running totals reproduces the
   full recompute {b bit for bit}: the same integer totals, hence the same
   float division. There is no error bound to document because there is no
   error. Resync is an invariant audit, not error control. *)

module Delta = struct
  type stats = {
    moves : int;
    accepted : int;
    undone : int;
    resyncs : int;
    replayed_events : int;
    full_walks : int;
    dirty_blocks : int;
    dirty_sets : int;
  }

  type move = Swap of int * int | Relocate of int * int

  type session = {
    eng : t;
    resync_interval : int;
    forder : int array; (* nf: current function order *)
    s_baddr : int array; (* nb: committed candidate geometry *)
    s_bbytes : int array;
    (* Per-set block incidence under the COMMITTED geometry: [inc.(s)]'s
       first [inc_len.(s)] entries are the blocks covering set [s]. Lets a
       move find the blocks that need replaying by walking its dirty sets
       instead of scanning every block; maintained on {!commit} (an undone
       move never touches it). *)
    inc : int array array;
    inc_len : int array;
    set_acc : int array; (* num_sets: per-set access counts, from cold *)
    set_miss : int array; (* num_sets: per-set miss counts, from cold *)
    rs_acc : int array; (* num_sets: resync recount scratch *)
    rs_miss : int array;
    mutable tot_acc : int;
    mutable tot_miss : int;
    (* Dirty tracking for the (single) pending move. *)
    dirty_stamp : int array; (* num_sets *)
    relev_stamp : int array; (* nb *)
    relev_blk : int array; (* nb: blocks found relevant to the pending move *)
    mutable stamp : int;
    relev : int array; (* trace_len: gathered relevant event indices *)
    sort_buf : int array; (* trace_len: radix-sort ping-pong buffer *)
    sort_count : int array; (* 257: radix digit histogram / offsets *)
    sort_bits : int; (* event indices fit in this many bits (multiple of 8) *)
    (* Undo log: geometry and per-set counters saved before the move. *)
    mutable pending : move option;
    u_blk : int array;
    u_addr : int array;
    u_bytes : int array;
    mutable u_nblk : int;
    u_set : int array;
    u_acc : int array;
    u_miss : int array;
    mutable u_nset : int;
    (* Counters for honest benchmarking. *)
    mutable since_resync : int;
    mutable st_moves : int;
    mutable st_accepted : int;
    mutable st_undone : int;
    mutable st_resyncs : int;
    mutable st_replayed : int;
    mutable st_full_walks : int;
    mutable st_dirty_blocks : int;
    mutable st_dirty_sets : int;
  }

  let build_touch_lists t =
    if Array.length t.touch_off = 0 then begin
      let nb = t.nb and ev = t.ev in
      let len = Array.length ev in
      let off = Array.make (nb + 1) 0 in
      for e = 0 to len - 1 do
        let b = Array.unsafe_get ev e in
        off.(b + 1) <- off.(b + 1) + 1
      done;
      for b = 0 to nb - 1 do
        off.(b + 1) <- off.(b + 1) + off.(b)
      done;
      let fill = Array.make (max 1 nb) 0 in
      Array.blit off 0 fill 0 nb;
      let tev = Array.make (max 1 len) 0 in
      for e = 0 to len - 1 do
        let b = Array.unsafe_get ev e in
        tev.(fill.(b)) <- e;
        fill.(b) <- fill.(b) + 1
      done;
      t.touch_off <- off;
      t.touch_ev <- tev
    end

  (* One line access against the engine's epoch-stamped LRU scratch; the
     same replacement decisions as [simulate]'s fused loop (kept separate:
     that loop is the full-eval hot path and stays hand-fused). *)
  let[@inline] access_line t ~ep line =
    let s = line land t.set_mask in
    let base = s * t.assoc in
    let tags = t.tags and vcnt = t.vcnt and set_epoch = t.set_epoch in
    let k =
      if Array.unsafe_get set_epoch s = ep then Array.unsafe_get vcnt s
      else begin
        Array.unsafe_set set_epoch s ep;
        Array.unsafe_set vcnt s 0;
        0
      end
    in
    if k > 0 && Array.unsafe_get tags base = line then false
    else begin
      let i = ref 1 in
      while !i < k && Array.unsafe_get tags (base + !i) <> line do
        incr i
      done;
      if !i < k then begin
        let j = ref !i in
        while !j > 0 do
          Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
          decr j
        done;
        Array.unsafe_set tags base line;
        false
      end
      else begin
        let j = ref (t.assoc - 1) in
        while !j > 0 do
          Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
          decr j
        done;
        Array.unsafe_set tags base line;
        if k < t.assoc then Array.unsafe_set vcnt s (k + 1);
        true
      end
    end

  (* Cold-cache walk of the whole trace under the session geometry,
     recounting every per-set counter — the resync/recovery primitive. *)
  let recount_into sess ~set_acc ~set_miss =
    let eng = sess.eng in
    Array.fill set_acc 0 (Array.length set_acc) 0;
    Array.fill set_miss 0 (Array.length set_miss) 0;
    eng.cache_epoch <- eng.cache_epoch + 1;
    let ep = eng.cache_epoch in
    let ev = eng.ev and baddr = sess.s_baddr and bbytes = sess.s_bbytes in
    let shift = eng.line_shift and mask = eng.set_mask in
    for e = 0 to Array.length ev - 1 do
      let bid = Array.unsafe_get ev e in
      let addr = Array.unsafe_get baddr bid in
      let first = addr asr shift in
      let last = (addr + Array.unsafe_get bbytes bid - 1) asr shift in
      for line = first to last do
        let s = line land mask in
        Array.unsafe_set set_acc s (Array.unsafe_get set_acc s + 1);
        if access_line eng ~ep line then
          Array.unsafe_set set_miss s (Array.unsafe_get set_miss s + 1)
      done
    done

  let sum a =
    let acc = ref 0 in
    Array.iter (fun v -> acc := !acc + v) a;
    !acc

  let inc_push sess s bid =
    let arr = sess.inc.(s) in
    let len = sess.inc_len.(s) in
    let arr =
      if len = Array.length arr then begin
        let grown = Array.make (max 4 (2 * len)) 0 in
        Array.blit arr 0 grown 0 len;
        sess.inc.(s) <- grown;
        grown
      end
      else arr
    in
    arr.(len) <- bid;
    sess.inc_len.(s) <- len + 1

  let inc_remove sess s bid =
    let arr = sess.inc.(s) and len = sess.inc_len.(s) in
    let i = ref 0 in
    while !i < len && arr.(!i) <> bid do
      incr i
    done;
    if !i >= len then
      failwith
        (Printf.sprintf
           "Layout_eval.Delta: incidence invariant broken (block %d not listed for set %d)"
           bid s);
    arr.(!i) <- arr.(len - 1);
    sess.inc_len.(s) <- len - 1

  (* Add or remove one block's coverage [addr, addr+bytes) from the per-set
     incidence. The two directions share the iteration so every (block,
     set) pair added is removed by the same walk: within the non-saturated
     branch consecutive lines hit distinct sets (a repeat needs a span of
     [num_sets + 1] lines, which the saturated branch catches), so the
     lists never hold duplicates. *)
  let inc_cover sess bid ~addr ~bytes ~add =
    let eng = sess.eng in
    let num_sets = eng.set_mask + 1 in
    let first = addr asr eng.line_shift in
    let last = (addr + bytes - 1) asr eng.line_shift in
    if last - first + 1 >= num_sets then
      for s = 0 to num_sets - 1 do
        if add then inc_push sess s bid else inc_remove sess s bid
      done
    else
      for line = first to last do
        let s = line land eng.set_mask in
        if add then inc_push sess s bid else inc_remove sess s bid
      done

  let start ?(resync_interval = 64) eng forder =
    if resync_interval <= 0 then
      invalid_arg "Layout_eval.Delta.start: resync_interval must be positive";
    check_perm eng "function" eng.nf forder;
    build_touch_lists eng;
    let nb = max 1 eng.nb in
    let num_sets = eng.set_mask + 1 in
    let sess =
      {
        eng;
        resync_interval;
        forder = Array.copy forder;
        s_baddr = Array.make nb 0;
        s_bbytes = Array.make nb 0;
        inc = Array.make num_sets [||];
        inc_len = Array.make num_sets 0;
        set_acc = Array.make num_sets 0;
        set_miss = Array.make num_sets 0;
        rs_acc = Array.make num_sets 0;
        rs_miss = Array.make num_sets 0;
        tot_acc = 0;
        tot_miss = 0;
        dirty_stamp = Array.make num_sets 0;
        relev_stamp = Array.make nb 0;
        relev_blk = Array.make nb 0;
        stamp = 0;
        relev = Array.make (max 1 (Array.length eng.ev)) 0;
        sort_buf = Array.make (max 1 (Array.length eng.ev)) 0;
        sort_count = Array.make 257 0;
        sort_bits =
          (let bits = ref 8 in
           while (Array.length eng.ev - 1) asr !bits > 0 do
             bits := !bits + 8
           done;
           !bits);
        pending = None;
        u_blk = Array.make nb 0;
        u_addr = Array.make nb 0;
        u_bytes = Array.make nb 0;
        u_nblk = 0;
        u_set = Array.make num_sets 0;
        u_acc = Array.make num_sets 0;
        u_miss = Array.make num_sets 0;
        u_nset = 0;
        since_resync = 0;
        st_moves = 0;
        st_accepted = 0;
        st_undone = 0;
        st_resyncs = 0;
        st_replayed = 0;
        st_full_walks = 0;
        st_dirty_blocks = 0;
        st_dirty_sets = 0;
      }
    in
    lower_into eng sess.forder;
    layout_pass_into eng eng.order_buf ~function_stubs:false ~baddr:sess.s_baddr
      ~bbytes:sess.s_bbytes;
    for bid = 0 to eng.nb - 1 do
      inc_cover sess bid ~addr:sess.s_baddr.(bid) ~bytes:sess.s_bbytes.(bid) ~add:true
    done;
    recount_into sess ~set_acc:sess.set_acc ~set_miss:sess.set_miss;
    sess.tot_acc <- sum sess.set_acc;
    sess.tot_miss <- sum sess.set_miss;
    sess

  let miss_ratio sess =
    if sess.tot_acc = 0 then 0.0
    else float_of_int sess.tot_miss /. float_of_int sess.tot_acc

  let order sess = Array.copy sess.forder

  let blit_order sess dst =
    if Array.length dst <> sess.eng.nf then
      invalid_arg "Layout_eval.Delta.blit_order: destination length mismatch";
    Array.blit sess.forder 0 dst 0 sess.eng.nf

  (* Sort the gathered event indices [a.(0 .. n-1)] back into trace order:
     LSD radix over byte digits (indices fit in [sort_bits] bits, so two
     passes for traces up to 64k events). Chosen over a comparison sort
     because every loop here is sequential and branch-free on the data —
     a comparison sort's data-dependent branches measured ~30x slower on
     the gathered lists, dwarfing the replay itself. Allocation-free: the
     ping-pong buffer and histogram live in the session. *)
  let radix_sort sess a n =
    if n > 1 then begin
      let count = sess.sort_count in
      let src = ref a and dst = ref sess.sort_buf in
      let shift = ref 0 in
      while !shift < sess.sort_bits do
        Array.fill count 0 257 0;
        let s = !src and sh = !shift in
        for i = 0 to n - 1 do
          let d = (Array.unsafe_get s i lsr sh) land 255 in
          Array.unsafe_set count (d + 1) (Array.unsafe_get count (d + 1) + 1)
        done;
        for d = 1 to 256 do
          count.(d) <- count.(d) + count.(d - 1)
        done;
        let t = !dst in
        for i = 0 to n - 1 do
          let v = Array.unsafe_get s i in
          let d = (v lsr sh) land 255 in
          let p = Array.unsafe_get count d in
          Array.unsafe_set t p v;
          Array.unsafe_set count d (p + 1)
        done;
        let tmp = !src in
        src := !dst;
        dst := tmp;
        shift := sh + 8
      done;
      if !src != a then Array.blit !src 0 a 0 n
    end

  (* Mark every set covered by [addr, addr+bytes) as dirty, snapshotting
     the set's counters into the undo log the first time it is touched this
     move and draining them from the running totals (the replay re-adds the
     fresh counts). *)
  let mark_cover sess ~addr ~bytes =
    let eng = sess.eng in
    let num_sets = eng.set_mask + 1 in
    let mark s =
      if sess.dirty_stamp.(s) <> sess.stamp then begin
        sess.dirty_stamp.(s) <- sess.stamp;
        let i = sess.u_nset in
        sess.u_set.(i) <- s;
        sess.u_acc.(i) <- sess.set_acc.(s);
        sess.u_miss.(i) <- sess.set_miss.(s);
        sess.u_nset <- i + 1;
        sess.tot_acc <- sess.tot_acc - sess.set_acc.(s);
        sess.tot_miss <- sess.tot_miss - sess.set_miss.(s);
        sess.set_acc.(s) <- 0;
        sess.set_miss.(s) <- 0
      end
    in
    let first = addr asr eng.line_shift in
    let last = (addr + bytes - 1) asr eng.line_shift in
    if last - first + 1 >= num_sets then
      for s = 0 to num_sets - 1 do
        mark s
      done
    else
      for line = first to last do
        mark (line land eng.set_mask)
      done

  (* Replay the gathered relevant events (ascending trace positions),
     simulating only the lines that land in dirty sets. *)
  let replay sess ~n =
    let eng = sess.eng in
    eng.cache_epoch <- eng.cache_epoch + 1;
    let ep = eng.cache_epoch in
    let ev = eng.ev and baddr = sess.s_baddr and bbytes = sess.s_bbytes in
    let shift = eng.line_shift and mask = eng.set_mask in
    let dirty = sess.dirty_stamp and stamp = sess.stamp in
    let set_acc = sess.set_acc and set_miss = sess.set_miss in
    let relev = sess.relev in
    for i = 0 to n - 1 do
      let bid = Array.unsafe_get ev (Array.unsafe_get relev i) in
      let addr = Array.unsafe_get baddr bid in
      let first = addr asr shift in
      let last = (addr + Array.unsafe_get bbytes bid - 1) asr shift in
      for line = first to last do
        let s = line land mask in
        if Array.unsafe_get dirty s = stamp then begin
          Array.unsafe_set set_acc s (Array.unsafe_get set_acc s + 1);
          if access_line eng ~ep line then
            Array.unsafe_set set_miss s (Array.unsafe_get set_miss s + 1)
        end
      done
    done

  (* Same, but walking the whole event array: cheaper than gather + sort
     once most of the trace is relevant (the 100 %-dirty regime). *)
  let replay_full_walk sess =
    let eng = sess.eng in
    eng.cache_epoch <- eng.cache_epoch + 1;
    let ep = eng.cache_epoch in
    let ev = eng.ev and baddr = sess.s_baddr and bbytes = sess.s_bbytes in
    let shift = eng.line_shift and mask = eng.set_mask in
    let dirty = sess.dirty_stamp and stamp = sess.stamp in
    let set_acc = sess.set_acc and set_miss = sess.set_miss in
    for e = 0 to Array.length ev - 1 do
      let bid = Array.unsafe_get ev e in
      let addr = Array.unsafe_get baddr bid in
      let first = addr asr shift in
      let last = (addr + Array.unsafe_get bbytes bid - 1) asr shift in
      for line = first to last do
        let s = line land mask in
        if Array.unsafe_get dirty s = stamp then begin
          Array.unsafe_set set_acc s (Array.unsafe_get set_acc s + 1);
          if access_line eng ~ep line then
            Array.unsafe_set set_miss s (Array.unsafe_get set_miss s + 1)
        end
      done
    done

  let check_pos sess what p =
    if p < 0 || p >= sess.eng.nf then
      invalid_arg (Printf.sprintf "Layout_eval.Delta.%s: position %d out of [0,%d)" what p
           sess.eng.nf)

  let do_move sess mv =
    if sess.pending <> None then
      invalid_arg "Layout_eval.Delta: a move is already pending — commit or undo it first";
    let eng = sess.eng in
    (match mv with
    | Swap (a, b) | Relocate (a, b) ->
      let what = match mv with Swap _ -> "apply_swap" | _ -> "apply_relocate" in
      check_pos sess what a;
      check_pos sess what b;
      if a = b then
        invalid_arg (Printf.sprintf "Layout_eval.Delta.%s: positions are equal (%d)" what a));
    (match mv with
    | Swap (a, b) ->
      let v = sess.forder.(a) in
      sess.forder.(a) <- sess.forder.(b);
      sess.forder.(b) <- v
    | Relocate (a, b) ->
      let v = sess.forder.(a) in
      if a < b then Array.blit sess.forder (a + 1) sess.forder a (b - a)
      else Array.blit sess.forder b sess.forder (b + 1) (a - b);
      sess.forder.(b) <- v);
    sess.pending <- Some mv;
    sess.stamp <- sess.stamp + 1;
    sess.u_nblk <- 0;
    sess.u_nset <- 0;
    (* Segment-local geometry pass. Both moves permute only the positions
       in [p_lo, p_hi], and layout is a left-to-right fold of (cursor,
       order suffix): positions before [p_lo] are untouched except the
       last block of the function at [p_lo - 1] (its jump-byte need
       depends on the segment's new first block, though its address does
       not move), and once a function boundary past [p_hi] lands on its
       committed start address every block beyond is bit-identical — so
       the walk recomputes from [p_lo] and stops at the first such
       reconvergence. The diff is fused in: a changed block is undo-logged,
       both its old and new coverage marked dirty, and the new geometry
       written in place. *)
    let p_lo, p_hi =
      match mv with Swap (a, b) | Relocate (a, b) -> (min a b, max a b)
    in
    let jb = Size_model.jump_bytes in
    let fn_off = eng.fn_off and fn_blocks = eng.fn_blocks in
    let blk_size = eng.blk_size and blk_ft = eng.blk_ft in
    let diff_block bid ~addr ~bytes =
      if sess.s_baddr.(bid) <> addr || sess.s_bbytes.(bid) <> bytes then begin
        let i = sess.u_nblk in
        sess.u_blk.(i) <- bid;
        sess.u_addr.(i) <- sess.s_baddr.(bid);
        sess.u_bytes.(i) <- sess.s_bbytes.(bid);
        sess.u_nblk <- i + 1;
        mark_cover sess ~addr:sess.s_baddr.(bid) ~bytes:sess.s_bbytes.(bid);
        mark_cover sess ~addr ~bytes;
        sess.s_baddr.(bid) <- addr;
        sess.s_bbytes.(bid) <- bytes
      end
    in
    let cursor = ref 0 in
    if p_lo > 0 then begin
      let prev_bid = fn_blocks.(fn_off.(sess.forder.(p_lo - 1) + 1) - 1) in
      let succ = fn_blocks.(fn_off.(sess.forder.(p_lo))) in
      let ft = blk_ft.(prev_bid) in
      let bytes = blk_size.(prev_bid) + if ft >= 0 && ft <> succ then jb else 0 in
      let addr = sess.s_baddr.(prev_bid) in
      diff_block prev_bid ~addr ~bytes;
      cursor := addr + bytes
    end;
    (let q = ref p_lo in
     let converged = ref false in
     while (not !converged) && !q < eng.nf do
       let f = sess.forder.(!q) in
       if !q > p_hi && !cursor = sess.s_baddr.(fn_blocks.(fn_off.(f))) then
         converged := true
       else begin
         let lo = fn_off.(f) and hi = fn_off.(f + 1) in
         for j = lo to hi - 1 do
           let bid = fn_blocks.(j) in
           let succ =
             if j + 1 < hi then fn_blocks.(j + 1)
             else if !q + 1 < eng.nf then fn_blocks.(fn_off.(sess.forder.(!q + 1)))
             else -1
           in
           let ft = blk_ft.(bid) in
           let bytes = blk_size.(bid) + if ft >= 0 && ft <> succ then jb else 0 in
           diff_block bid ~addr:!cursor ~bytes;
           cursor := !cursor + bytes
         done;
         incr q
       end
     done);
    sess.st_moves <- sess.st_moves + 1;
    sess.st_dirty_blocks <- sess.st_dirty_blocks + sess.u_nblk;
    sess.st_dirty_sets <- sess.st_dirty_sets + sess.u_nset;
    if sess.u_nset > 0 then begin
      (* Relevant blocks: everything whose current coverage intersects a
         dirty set. Changed blocks qualify by construction (their new
         coverage was just marked); an unchanged block keeps its committed
         coverage, so the per-set incidence lists find every such block by
         walking the dirty sets — no O(num_blocks) scan. *)
      let r = ref 0 and nrel = ref 0 in
      let stamp = sess.stamp in
      let add_relevant bid =
        if sess.relev_stamp.(bid) <> stamp then begin
          sess.relev_stamp.(bid) <- stamp;
          sess.relev_blk.(!nrel) <- bid;
          incr nrel;
          r := !r + (eng.touch_off.(bid + 1) - eng.touch_off.(bid))
        end
      in
      for i = 0 to sess.u_nblk - 1 do
        add_relevant sess.u_blk.(i)
      done;
      for i = 0 to sess.u_nset - 1 do
        let lst = sess.inc.(sess.u_set.(i)) and len = sess.inc_len.(sess.u_set.(i)) in
        for j = 0 to len - 1 do
          add_relevant lst.(j)
        done
      done;
      let len = Array.length eng.ev in
      if 2 * !r >= len then begin
        sess.st_full_walks <- sess.st_full_walks + 1;
        sess.st_replayed <- sess.st_replayed + len;
        replay_full_walk sess
      end
      else begin
        let pos = ref 0 in
        for i = 0 to !nrel - 1 do
          let bid = sess.relev_blk.(i) in
          let lo = eng.touch_off.(bid) and hi = eng.touch_off.(bid + 1) in
          Array.blit eng.touch_ev lo sess.relev !pos (hi - lo);
          pos := !pos + (hi - lo)
        done;
        radix_sort sess sess.relev !pos;
        sess.st_replayed <- sess.st_replayed + !pos;
        replay sess ~n:!pos
      end;
      for i = 0 to sess.u_nset - 1 do
        let s = sess.u_set.(i) in
        sess.tot_acc <- sess.tot_acc + sess.set_acc.(s);
        sess.tot_miss <- sess.tot_miss + sess.set_miss.(s)
      done
    end;
    miss_ratio sess

  let apply_swap sess a b = do_move sess (Swap (a, b))

  let apply_relocate sess a b = do_move sess (Relocate (a, b))

  let undo sess =
    match sess.pending with
    | None -> invalid_arg "Layout_eval.Delta.undo: no pending move"
    | Some mv ->
      (match mv with
      | Swap (a, b) ->
        let v = sess.forder.(a) in
        sess.forder.(a) <- sess.forder.(b);
        sess.forder.(b) <- v
      | Relocate (a, b) ->
        (* The inverse relocate: position [b] back to [a]. *)
        let v = sess.forder.(b) in
        if b < a then Array.blit sess.forder (b + 1) sess.forder b (a - b)
        else Array.blit sess.forder a sess.forder (a + 1) (b - a);
        sess.forder.(a) <- v);
      for i = 0 to sess.u_nblk - 1 do
        let bid = sess.u_blk.(i) in
        sess.s_baddr.(bid) <- sess.u_addr.(i);
        sess.s_bbytes.(bid) <- sess.u_bytes.(i)
      done;
      for i = 0 to sess.u_nset - 1 do
        let s = sess.u_set.(i) in
        sess.tot_acc <- sess.tot_acc - sess.set_acc.(s) + sess.u_acc.(i);
        sess.tot_miss <- sess.tot_miss - sess.set_miss.(s) + sess.u_miss.(i);
        sess.set_acc.(s) <- sess.u_acc.(i);
        sess.set_miss.(s) <- sess.u_miss.(i)
      done;
      sess.pending <- None;
      sess.st_undone <- sess.st_undone + 1

  let resync sess =
    if sess.pending <> None then
      invalid_arg "Layout_eval.Delta.resync: commit or undo the pending move first";
    recount_into sess ~set_acc:sess.rs_acc ~set_miss:sess.rs_miss;
    let num_sets = sess.eng.set_mask + 1 in
    for s = 0 to num_sets - 1 do
      if sess.rs_acc.(s) <> sess.set_acc.(s) || sess.rs_miss.(s) <> sess.set_miss.(s) then
        failwith
          (Printf.sprintf
             "Layout_eval.Delta.resync: set %d diverged (acc %d/%d, miss %d/%d) — \
              dirty-tracking invariant broken"
             s sess.set_acc.(s) sess.rs_acc.(s) sess.set_miss.(s) sess.rs_miss.(s))
    done;
    let acc = sum sess.rs_acc and miss = sum sess.rs_miss in
    if acc <> sess.tot_acc || miss <> sess.tot_miss then
      failwith "Layout_eval.Delta.resync: running totals diverged from the full recount";
    sess.st_resyncs <- sess.st_resyncs + 1;
    sess.since_resync <- 0;
    miss_ratio sess

  let commit sess =
    match sess.pending with
    | None -> invalid_arg "Layout_eval.Delta.commit: no pending move"
    | Some _ ->
      (* The incidence tracks the committed geometry, so fold the accepted
         move's changes in now: the undo log still holds each changed
         block's old coverage, the session geometry its new one. An undone
         move never reaches this point and leaves the lists untouched. *)
      for i = 0 to sess.u_nblk - 1 do
        let bid = sess.u_blk.(i) in
        inc_cover sess bid ~addr:sess.u_addr.(i) ~bytes:sess.u_bytes.(i) ~add:false;
        inc_cover sess bid ~addr:sess.s_baddr.(bid) ~bytes:sess.s_bbytes.(bid) ~add:true
      done;
      sess.pending <- None;
      sess.st_accepted <- sess.st_accepted + 1;
      sess.since_resync <- sess.since_resync + 1;
      if sess.since_resync >= sess.resync_interval then ignore (resync sess)

  let stats sess =
    {
      moves = sess.st_moves;
      accepted = sess.st_accepted;
      undone = sess.st_undone;
      resyncs = sess.st_resyncs;
      replayed_events = sess.st_replayed;
      full_walks = sess.st_full_walks;
      dirty_blocks = sess.st_dirty_blocks;
      dirty_sets = sess.st_dirty_sets;
    }
end
