open Colayout_ir
module Pool = Colayout_util.Pool

(* The engine splits into an immutable precompiled part (shared by clones)
   and per-instance scratch buffers. All candidate evaluation state lives
   in the scratch: [order_buf] holds the lowered block order, [baddr] and
   [bbytes] the streaming layout geometry, and [tags]/[vcnt]/[set_epoch]
   the set-associative LRU state. Nothing is allocated per candidate.

   Epoch-reset trick: a set's ways are valid only when [set_epoch.(s)]
   equals the engine's current [cache_epoch]; bumping the epoch at the
   start of a candidate invalidates the whole cache in O(1). Because lines
   are only ever inserted at the MRU slot and shifted down, the valid ways
   of a set always form a prefix, so a single [vcnt.(s)] valid-count per
   set replaces per-way validity bits. *)

type t = {
  (* Immutable precompiled state (shared between clones). *)
  nf : int;
  nb : int;
  line_shift : int; (* log2 line_bytes *)
  set_mask : int; (* num_sets - 1 *)
  assoc : int;
  ev : int array; (* trace events, validated block ids *)
  blk_size : int array; (* base body+terminator bytes per block *)
  blk_ft : int array; (* fallthrough target per block, or -1 *)
  blk_entry : bool array; (* is the block its function's entry? *)
  fn_off : int array; (* nf + 1: CSR offsets into fn_blocks *)
  fn_blocks : int array; (* blocks grouped by function, declaration order *)
  pool : Pool.t option;
  (* Per-instance scratch. *)
  order_buf : int array; (* nb: lowered block order of a function order *)
  baddr : int array; (* nb: per-block start address of the candidate *)
  bbytes : int array; (* nb: per-block size incl. added jumps *)
  tags : int array; (* num_sets * assoc, way 0 of a set is MRU *)
  vcnt : int array; (* num_sets: valid-prefix length *)
  set_epoch : int array; (* num_sets: epoch the set was last touched in *)
  mutable cache_epoch : int;
  seen : int array; (* max nf nb: epoch-stamped permutation check *)
  mutable seen_epoch : int;
  mutable clones : t array; (* lazy per-chunk engines for eval_batch *)
}

let log2_exact n =
  let rec go k = if 1 lsl k = n then k else go (k + 1) in
  go 0

let create ?pool ~params program trace =
  let nf = Program.num_funcs program in
  let nb = Program.num_blocks program in
  let ev = Colayout_util.Int_vec.to_array (Colayout_trace.Trace.events trace) in
  Array.iter
    (fun bid ->
      if bid < 0 || bid >= nb then
        invalid_arg
          (Printf.sprintf "Layout_eval.create: trace event %d is not a block id of %s" bid
             (Program.name program)))
    ev;
  let blk_size = Array.make (max 1 nb) 0 in
  let blk_ft = Array.make (max 1 nb) (-1) in
  let blk_entry = Array.make (max 1 nb) false in
  for bid = 0 to nb - 1 do
    let b = Program.block program bid in
    blk_size.(bid) <- b.Program.size_bytes;
    (match Program.fallthrough_target program bid with
    | Some target -> blk_ft.(bid) <- target
    | None -> ());
    blk_entry.(bid) <- (Program.func program b.Program.fn).Program.entry = bid
  done;
  let fn_off = Array.make (nf + 1) 0 in
  for fid = 0 to nf - 1 do
    fn_off.(fid + 1) <- fn_off.(fid) + Array.length (Program.func program fid).Program.blocks
  done;
  let fn_blocks = Array.make (max 1 nb) 0 in
  for fid = 0 to nf - 1 do
    Array.iteri
      (fun i bid -> fn_blocks.(fn_off.(fid) + i) <- bid)
      (Program.func program fid).Program.blocks
  done;
  let num_sets = params.Colayout_cache.Params.num_sets in
  let assoc = params.Colayout_cache.Params.assoc in
  {
    nf;
    nb;
    line_shift = log2_exact params.Colayout_cache.Params.line_bytes;
    set_mask = num_sets - 1;
    assoc;
    ev;
    blk_size;
    blk_ft;
    blk_entry;
    fn_off;
    fn_blocks;
    pool;
    order_buf = Array.make (max 1 nb) 0;
    baddr = Array.make (max 1 nb) 0;
    bbytes = Array.make (max 1 nb) 0;
    tags = Array.make (num_sets * assoc) 0;
    vcnt = Array.make num_sets 0;
    set_epoch = Array.make num_sets 0;
    cache_epoch = 0;
    seen = Array.make (max 1 (max nf nb)) 0;
    seen_epoch = 0;
    clones = [||];
  }

(* A clone shares every immutable array and gets fresh scratch; it never
   carries the pool (clones are the pool's workers, not its consumers). *)
let clone t =
  {
    t with
    pool = None;
    order_buf = Array.make (Array.length t.order_buf) 0;
    baddr = Array.make (Array.length t.baddr) 0;
    bbytes = Array.make (Array.length t.bbytes) 0;
    tags = Array.make (Array.length t.tags) 0;
    vcnt = Array.make (Array.length t.vcnt) 0;
    set_epoch = Array.make (Array.length t.set_epoch) 0;
    cache_epoch = 0;
    seen = Array.make (Array.length t.seen) 0;
    seen_epoch = 0;
    clones = [||];
  }

let num_funcs t = t.nf

let num_blocks t = t.nb

let trace_length t = Array.length t.ev

(* Allocation-free permutation check: [seen] doubles as a visited-set via
   epoch stamps, so no [bool array] is created per candidate (the cost the
   seed [Layout.check_permutation] pays on every evaluation). *)
let check_perm t what n order =
  if Array.length order <> n then
    invalid_arg
      (Printf.sprintf "Layout_eval: %s order has %d entries, expected %d" what
         (Array.length order) n);
  t.seen_epoch <- t.seen_epoch + 1;
  let ep = t.seen_epoch in
  let seen = t.seen in
  for i = 0 to n - 1 do
    let v = order.(i) in
    if v < 0 || v >= n then
      invalid_arg (Printf.sprintf "Layout_eval: bad %s id %d" what v);
    if seen.(v) = ep then
      invalid_arg (Printf.sprintf "Layout_eval: duplicate %s id %d" what v);
    seen.(v) <- ep
  done

(* Streaming equivalent of [Layout.of_block_order]: walk the order once,
   writing each block's address and jump-adjusted size into the scratch
   geometry. Identical byte accounting — a broken fall-through edge adds
   [Size_model.jump_bytes], and [function_stubs] adds the entry stub. *)
let layout_pass t order ~function_stubs =
  let nb = t.nb in
  let jb = Size_model.jump_bytes in
  let blk_size = t.blk_size and blk_ft = t.blk_ft and blk_entry = t.blk_entry in
  let baddr = t.baddr and bbytes = t.bbytes in
  let cursor = ref 0 in
  for pos = 0 to nb - 1 do
    let bid = order.(pos) in
    let ft = Array.unsafe_get blk_ft bid in
    let needs_jump = ft >= 0 && (pos + 1 >= nb || order.(pos + 1) <> ft) in
    let stub = function_stubs && Array.unsafe_get blk_entry bid in
    let bytes =
      Array.unsafe_get blk_size bid
      + (if needs_jump then jb else 0)
      + if stub then jb else 0
    in
    Array.unsafe_set baddr bid !cursor;
    Array.unsafe_set bbytes bid bytes;
    cursor := !cursor + bytes
  done

(* Fused line expansion + set-associative LRU simulation: one pass over the
   precompiled event array, counting accesses and misses in locals. The
   replacement decisions are exactly [Set_assoc.access_line]'s (scan for
   the tag, promote on hit, shift-and-insert at MRU on miss), so the
   hit/miss sequence — and therefore the final ratio — matches the seed
   simulator bit-for-bit. *)
let simulate t =
  t.cache_epoch <- t.cache_epoch + 1;
  let ep = t.cache_epoch in
  let ev = t.ev and baddr = t.baddr and bbytes = t.bbytes in
  let tags = t.tags and vcnt = t.vcnt and set_epoch = t.set_epoch in
  let shift = t.line_shift and mask = t.set_mask and assoc = t.assoc in
  let acc = ref 0 and miss = ref 0 in
  for e = 0 to Array.length ev - 1 do
    let bid = Array.unsafe_get ev e in
    let addr = Array.unsafe_get baddr bid in
    let first = addr asr shift in
    let last = (addr + Array.unsafe_get bbytes bid - 1) asr shift in
    acc := !acc + (last - first + 1);
    for line = first to last do
      let s = line land mask in
      let base = s * assoc in
      let k =
        if Array.unsafe_get set_epoch s = ep then Array.unsafe_get vcnt s
        else begin
          Array.unsafe_set set_epoch s ep;
          Array.unsafe_set vcnt s 0;
          0
        end
      in
      (* MRU fast path: sequential code re-touches the line a fall-through
         neighbour just ended in, so way 0 hits are the common case — and
         they need no state change at all. *)
      if k > 0 && Array.unsafe_get tags base = line then ()
      else begin
        let i = ref 1 in
        while !i < k && Array.unsafe_get tags (base + !i) <> line do
          incr i
        done;
        if !i < k then begin
          (* Hit: promote way [i] to MRU. The shifts are open-coded — an
             [Array.blit] pays a C-call per access, which at assoc <= 4
             costs more than the one or two moves it performs. *)
          let j = ref !i in
          while !j > 0 do
            Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
            decr j
          done;
          Array.unsafe_set tags base line
        end
        else begin
          (* Miss: evict LRU by shifting the whole set down one. *)
          incr miss;
          let j = ref (assoc - 1) in
          while !j > 0 do
            Array.unsafe_set tags (base + !j) (Array.unsafe_get tags (base + !j - 1));
            decr j
          done;
          Array.unsafe_set tags base line;
          if k < assoc then Array.unsafe_set vcnt s (k + 1)
        end
      end
    done
  done;
  if !acc = 0 then 0.0 else float_of_int !miss /. float_of_int !acc

let miss_ratio_of_block_order ?(function_stubs = false) t order =
  check_perm t "block" t.nb order;
  layout_pass t order ~function_stubs;
  simulate t

let miss_ratio_of_order t forder =
  check_perm t "function" t.nf forder;
  let order_buf = t.order_buf and fn_off = t.fn_off and fn_blocks = t.fn_blocks in
  let pos = ref 0 in
  for idx = 0 to t.nf - 1 do
    let fid = forder.(idx) in
    for j = fn_off.(fid) to fn_off.(fid + 1) - 1 do
      order_buf.(!pos) <- Array.unsafe_get fn_blocks j;
      incr pos
    done
  done;
  (* [order_buf] is a block permutation by construction — no re-check. *)
  layout_pass t order_buf ~function_stubs:false;
  simulate t

let eval_batch t orders =
  let n = Array.length orders in
  match t.pool with
  | Some pool when Pool.jobs pool > 1 && n > 1 ->
    let jobs = min (Pool.jobs pool) n in
    if Array.length t.clones < jobs then t.clones <- Array.init jobs (fun _ -> clone t);
    let chunk = (n + jobs - 1) / jobs in
    let ranges = Array.init jobs (fun i -> (i, i * chunk, min n ((i + 1) * chunk))) in
    let parts =
      Pool.map_array pool
        (fun (i, lo, hi) ->
          let eng = t.clones.(i) in
          Array.init (max 0 (hi - lo)) (fun j -> miss_ratio_of_order eng orders.(lo + j)))
        ranges
    in
    Array.concat (Array.to_list parts)
  | _ -> Array.map (fun o -> miss_ratio_of_order t o) orders
