open Colayout_trace

(* ------------------------------------------------------------ TRG (seed) *)

type legacy_trg = {
  num_nodes : int;
  adj : (int, int) Hashtbl.t array;
}

let bump t x y dw =
  let upd a b =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.adj.(a) b) in
    Hashtbl.replace t.adj.(a) b (cur + dw)
  in
  upd x y;
  upd y x

let trg_build ?(window = max_int) trace =
  if window < 1 then invalid_arg "Kernel_baseline.trg_build: window must be >= 1";
  if not (Trim.is_trimmed trace) then
    invalid_arg "Kernel_baseline.trg_build: trace must be trimmed";
  let t =
    {
      num_nodes = Trace.num_symbols trace;
      adj = Array.init (Trace.num_symbols trace) (fun _ -> Hashtbl.create 8);
    }
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun x ->
      (* If x recurs within the window, every block above it on the stack
         occurred between its two successive occurrences: one potential
         conflict each. *)
      let d = ref 0 in
      let betweens = ref [] in
      let found = ref false in
      Lru_stack.iter_until stack (fun y ->
          incr d;
          if y = x then begin
            found := true;
            false
          end
          else if !d >= window then false
          else begin
            betweens := y :: !betweens;
            true
          end);
      (* Only count when x was actually found within the window: the walk
         must have stopped on x, not on depth exhaustion. *)
      if !found then List.iter (fun y -> bump t x y 1) !betweens;
      ignore (Lru_stack.access stack x))
    trace;
  t

let trg_weight t x y =
  if x = y then 0
  else
    match Hashtbl.find_opt t.adj.(x) y with
    | Some w -> w
    | None -> 0

let trg_edges t =
  let acc = ref [] in
  Array.iteri
    (fun x h -> Hashtbl.iter (fun y w -> if x < y then acc := (x, y, w) :: !acc) h)
    t.adj;
  List.sort
    (fun (x1, y1, w1) (x2, y2, w2) ->
      if w1 <> w2 then compare w2 w1 else compare (x1, y1) (x2, y2))
    !acc

(* ------------------------------------------------------- Affinity (seed) *)

let require_trimmed t =
  if not (Trim.is_trimmed t) then
    invalid_arg "Affinity: trace must be trimmed (no two consecutive equal blocks)"

type wit = {
  mutable sat : int;
  mutable last_occ : int;
}

let affine_pairs trace ~w =
  if w < 1 then invalid_arg "Kernel_baseline.affine_pairs: w must be >= 1";
  require_trimmed trace;
  let occ = Trace.occurrences trace in
  let occ_idx = Array.make (Trace.num_symbols trace) 0 in
  let wits : (int * int, wit) Hashtbl.t = Hashtbl.create 4096 in
  let witness a b a_occ =
    let key = (a, b) in
    let rec_ =
      match Hashtbl.find_opt wits key with
      | Some r -> r
      | None ->
        let r = { sat = 0; last_occ = 0 } in
        Hashtbl.replace wits key r;
        r
    in
    if rec_.last_occ < a_occ then begin
      rec_.last_occ <- a_occ;
      rec_.sat <- rec_.sat + 1
    end
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun y ->
      occ_idx.(y) <- occ_idx.(y) + 1;
      let ky = occ_idx.(y) in
      let d = ref 0 in
      let y_seen = ref false in
      Lru_stack.iter_until stack (fun x ->
          incr d;
          if x = y then begin
            y_seen := true;
            true
          end
          else begin
            let fp = !d + if !y_seen then 0 else 1 in
            if fp <= w then begin
              witness y x ky;
              witness x y occ_idx.(x)
            end;
            !d < w
          end);
      ignore (Lru_stack.access stack y))
    trace;
  let pairs = ref [] in
  Hashtbl.iter
    (fun (a, b) r ->
      if a < b then begin
        let back =
          match Hashtbl.find_opt wits (b, a) with Some r' -> r'.sat | None -> 0
        in
        if r.sat = occ.(a) && back = occ.(b) && occ.(a) > 0 && occ.(b) > 0 then
          pairs := (a, b) :: !pairs
      end)
    wits;
  List.sort compare !pairs

(* ------------------------------------------------------------------ *)
(* The seed layout evaluator and annealer, kept verbatim as the
   differential oracle / honest bench baseline for [Layout_eval] (PR 5),
   exactly as [Trg.build]/[Affinity.affine_pairs] keep their seed twins
   above. Per candidate this path allocates a full [Layout.t], a tuple per
   trace event inside the line expansion, and a fresh simulator — the
   costs the engine exists to amortize. *)

let miss_ratio_of_function_order ~params program trace forder =
  let layout = Layout.of_function_order program forder in
  Colayout_cache.Cache_stats.miss_ratio
    (Colayout_cache.Icache.solo ~params ~layout:(Layout.to_icache layout)
       (Colayout_trace.Trace.events trace))

let miss_ratio_of_block_order ?function_stubs ~params program trace order =
  let layout = Layout.of_block_order ?function_stubs program order in
  Colayout_cache.Cache_stats.miss_ratio
    (Colayout_cache.Icache.solo ~params ~layout:(Layout.to_icache layout)
       (Colayout_trace.Trace.events trace))

let anneal_search ?(seed = 1) ?(steps = 300) ?initial ~params program trace =
  if steps <= 0 then invalid_arg "Anneal.search: steps must be positive";
  let nf = Colayout_ir.Program.num_funcs program in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then invalid_arg "Anneal.search: initial order length mismatch";
      Array.copy o
  in
  let rng = Colayout_util.Prng.create ~seed in
  let eval order = miss_ratio_of_function_order ~params program trace order in
  let initial_mr = eval current in
  let cur_mr = ref initial_mr in
  let best = ref (Array.copy current) in
  let best_mr = ref initial_mr in
  let t0 = 0.02 in
  let decay = exp (log 1e-3 /. float_of_int steps) in
  let temp = ref t0 in
  for _ = 1 to steps do
    let a = Colayout_util.Prng.int rng nf and b = Colayout_util.Prng.int rng nf in
    if a <> b then begin
      let proposal = Array.copy current in
      if Colayout_util.Prng.bool rng ~p:0.5 then begin
        proposal.(a) <- current.(b);
        proposal.(b) <- current.(a)
      end
      else begin
        let v = current.(a) in
        if a < b then Array.blit current (a + 1) proposal a (b - a)
        else Array.blit current b proposal (b + 1) (a - b);
        proposal.(b) <- v
      end;
      let mr = eval proposal in
      let accept =
        mr <= !cur_mr
        || Colayout_util.Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        Array.blit proposal 0 current 0 nf;
        cur_mr := mr;
        if mr < !best_mr then begin
          best_mr := mr;
          best := Array.copy proposal
        end
      end
    end;
    temp := !temp *. decay
  done;
  (!best, !best_mr, initial_mr)
