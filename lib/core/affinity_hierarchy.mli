(** Hierarchical [w]-window affinity (Definition 5) and the layout order it
    induces.

    The hierarchy is built agglomeratively: starting from singleton groups,
    for each [w] (ascending) existing groups merge when every cross pair is
    [w]-affine. Lower-level groups are kept as units — the paper's
    "lower-level group takes precedence" rule — so partitions nest and form
    the dendrogram of Figure 1(b). The optimized code order is the
    bottom-up traversal of that dendrogram, with sibling subtrees ordered by
    the first trace occurrence of their earliest member (this reproduces the
    paper's worked example: trace [B1 B4 B2 B4 B2 B3 B5 B1 B4] yields
    [B1 B4 B2 B3 B5]). *)

type node =
  | Leaf of int
  | Group of { w : int; children : node list }
      (** [w] is the window size at which the children merged. *)

type t = {
  roots : node list;  (** Top-level groups, first-occurrence order. *)
  ws : int list;  (** The window sizes analyzed, ascending. *)
}

type algo =
  | Efficient
      (** The paper's O(N·w)-per-window stack algorithm; sound (never reports
          a non-affine pair) but may miss affinities when a block re-occurs
          inside the window. Production path. *)
  | Exact  (** Definition-3 oracle; small traces only. *)

val default_ws : int list
(** 2..20 — the paper chooses w between 2 and 20 (§II-B). *)

val build :
  ?decisions:Decision_trace.t -> ?algo:algo -> ?ws:int list -> Colayout_trace.Trace.t -> t
(** @raise Invalid_argument if the trace is not trimmed or [ws] is not
    positive ascending. With [decisions], emits an ["affinity"] [join] event
    per group absorbed into a cluster (weight = window size, group = cluster
    index) and a [level] summary event per window size with the surviving
    group count. *)

val members : node -> int list

val order : t -> int list
(** Bottom-up traversal: the optimized sequence of the blocks that occur in
    the analyzed trace. *)

val partition_at : t -> w:int -> int list list
(** The affinity partition at window size [w]: groups induced by cutting the
    dendrogram at [w] (merges with [Group.w <= w] applied). *)

val pp : Format.formatter -> t -> unit
