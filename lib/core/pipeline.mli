(** End-to-end convenience flows: instrument → analyze → transform →
    evaluate. This is the API the examples and the experiment harness
    drive. *)

type evaluated = {
  kind : Optimizer.kind;
  layout : Layout.t;
  miss_ratio : float;  (** Solo L1I miss ratio under the reference input. *)
  accesses : int;
  misses : int;
}

val reference_trace :
  Colayout_ir.Program.t -> Colayout_exec.Interp.input -> Colayout_trace.Trace.t
(** The evaluation-run block trace (layout-independent). *)

val optimize :
  ?config:Optimizer.config ->
  Colayout_ir.Program.t ->
  test_input:Colayout_exec.Interp.input ->
  Optimizer.kind ->
  Layout.t
(** Instrument with the test input and build the layout for [kind]. *)

val miss_ratio_solo :
  ?prefetch:Colayout_cache.Prefetch.t ->
  ?sink:Colayout_cache.Profile_sink.t ->
  params:Colayout_cache.Params.t ->
  layout:Layout.t ->
  Colayout_trace.Trace.t ->
  Colayout_cache.Cache_stats.t
(** Replay a reference block trace through the I-cache under a layout. With
    [sink], every demand access is attributed per block and classified (see
    {!Colayout_cache.Profile_sink}). *)

val miss_ratio_corun :
  ?prefetch:Colayout_cache.Prefetch.t ->
  ?sink:Colayout_cache.Profile_sink.t ->
  ?rates:float * float ->
  params:Colayout_cache.Params.t ->
  self:Layout.t * Colayout_trace.Trace.t ->
  peer:Layout.t * Colayout_trace.Trace.t ->
  unit ->
  Colayout_cache.Cache_stats.t
(** Shared-cache co-run; thread 0 is [self], thread 1 the peer. *)

val evaluate_kinds :
  ?config:Optimizer.config ->
  ?prefetch:Colayout_cache.Prefetch.t ->
  ?kinds:Optimizer.kind list ->
  Colayout_ir.Program.t ->
  test_input:Colayout_exec.Interp.input ->
  ref_input:Colayout_exec.Interp.input ->
  evaluated list
(** Analyze once, then lay out and solo-evaluate each optimizer. *)

val footprint_curve :
  params:Colayout_cache.Params.t ->
  layout:Layout.t ->
  Colayout_trace.Trace.t ->
  Footprint.t
(** Footprint curve of the induced cache-line trace — input to
    {!Miss_prob}. *)
