(** Streaming profile ingest: sharded, multi-walker online TRG and
    affinity accumulation, bit-identical to the batch kernels.

    Every completed trace is an independent stream: the walker that
    processes it starts from an empty LRU stack and fresh trimming state,
    so the per-trace walk replicates [Trg.build] / [Affinity.affine_pairs]
    on that trace alone. The merged profile is therefore a pure function
    of the *multiset* of ingested traces, which is what makes parallel
    walkers sound:

    - with [walkers = 1] the single walker runs inline in {!feed_sym}
      (streaming, never materializing a trace) and resets its stack at
      every {!end_trace};
    - with [walkers > 1] each completed trace is assigned round-robin (by
      completed-trace index — a config-deterministic assignment) to one
      of W walker states, each owning a private LRU stack, occurrence
      array, per-shard op buffers and shard tables; walker queues drain
      as [Pool] tasks, one task per walker.

    {!finalize} merges walker-local tables by the witness/occurrence
    algebra: TRG edge weights sum per key; directed witness saturations
    sum per key; occurrence counts sum per symbol; the batch saturated-
    pair test (sat(a,b) = occ(a) in both directions) then runs on the
    merged totals. Because windows never span trace boundaries, each
    walker's saturation is itself a sum of per-trace saturations, with
    sat <= occ per trace — so the merged sum saturates iff every trace
    saturates, i.e. exactly the batch condition on each part. Hence the
    consensus CSR and affine set are bit-identical at any
    (walkers x shards x jobs) point in exact configurations
    ({!consensus_digests} vs {!batch_digests_parts} makes the contract
    checkable).

    Memory is bounded, deterministically in the config and feed order
    (never in the pool schedule), by three epoch/flush-time mechanisms:
    per-(walker, shard) table caps (evict smallest (rank, key)), TRG
    weight decay (drop zeros), and exact dead-witness pruning. Pruning
    never changes the final affine set, merged or not; caps and decay
    trade exactness for bounded tables, and — like [shards] — the
    [walkers] count is part of the approximation's definition, while
    [jobs] never changes any result. *)

type config = {
  num_symbols : int;
  walkers : int;  (** Parallel stream walkers; traces partition round-robin. *)
  shards : int;
  trg_window : int;  (** TRG LRU window (distinct blocks). *)
  affinity_w : int;  (** Affinity window footprint bound w. *)
  trg_cap : int;  (** Per-(walker, shard) TRG edge cap; 0 = unbounded. *)
  wits_cap : int;  (** Per-(walker, shard) witness-entry cap; 0 = unbounded. *)
  decay_shift : int;  (** TRG weights decay by [lsr decay_shift] per epoch; 0 = off. *)
  epoch_traces : int;  (** Maintenance every N completed traces; 0 = never. *)
  prune_dead : bool;  (** Exact dead-witness pruning at epochs. *)
  flush_ops : int;  (** Buffered ops per walker that trigger its flush. *)
}

val config :
  ?walkers:int ->
  ?shards:int ->
  ?trg_window:int ->
  ?affinity_w:int ->
  ?trg_cap:int ->
  ?wits_cap:int ->
  ?decay_shift:int ->
  ?epoch_traces:int ->
  ?prune_dead:bool ->
  ?flush_ops:int ->
  num_symbols:int ->
  unit ->
  config
(** Validated smart constructor (defaults: 1 walker, 1 shard, window 256,
    w 16, unbounded, no decay, no epochs, pruning on, flush at 65536
    ops). @raise Invalid_argument on out-of-range fields. *)

type t

val create : ?pool:Colayout_util.Pool.t -> ?metrics:Colayout_util.Metrics.t -> config -> t
(** Without a pool, walkers and shard flushes apply inline on the calling
    domain (still producing identical results). With metrics, per-trace
    walk latency lands in the [ingest.trace_ns] histogram (plus a
    per-walker [ingest.walker.<i>.trace_ns] histogram when
    [walkers > 1]), and merge latency in [ingest.merge_ns]; walker tasks
    record into private registries folded into the shared one with
    [Metrics.merge] after each dispatch barrier, so pooled percentiles
    survive. *)

val config_of : t -> config

val feed_sym : t -> int -> unit
(** Feed one event of the current trace. With [walkers > 1] the event is
    staged in memory until {!end_trace} assigns the completed trace to a
    walker — use [walkers = 1] to stream traces larger than memory.
    @raise Invalid_argument on an out-of-range symbol or a per-walker
    stream longer than the packed-payload bound (2^31 kept events). *)

val feed_chunk : t -> int array -> int -> unit
(** [feed_chunk t buf n] feeds [buf.(0..n-1)] — the shape handed out by
    [Trace_io.read_chunk]. *)

val feed_trace : t -> Colayout_trace.Trace.t -> unit
(** Feed a whole in-memory trace (does not end it).
    @raise Invalid_argument when the trace's symbol universe differs from
    the config's. *)

val end_trace : t -> unit
(** Mark the current user trace complete. Each trace is an independent
    stream: trimming state and the LRU stack reset here, so partitioning
    at trace boundaries preserves the per-trace trimming contract
    exactly. Records ingest latency, assigns the trace to a walker
    (walkers > 1), and runs epoch maintenance when due. *)

val ingest_trace : t -> Colayout_trace.Trace.t -> unit
(** {!feed_trace} then {!end_trace}. *)

val feed_file : t -> path:string -> unit
(** Stream one trace file through the chunked [Trace_io] reader (without
    materializing it when [walkers = 1]) and {!end_trace}. *)

val flush : t -> unit
(** Drain queued traces through their walkers, then drain all buffered
    ops into the walker-local shard tables (no epoch maintenance).
    Called automatically when [flush_ops] is reached and by {!finalize}. *)

type stats = {
  traces : int;
  events : int;
  kept_events : int;  (** Events surviving per-trace inline trimming, summed over walkers. *)
  trg_ops : int;
  wit_ops : int;
  flushes : int;  (** Per-walker flushes, summed. *)
  dispatches : int;  (** Walker-queue dispatch barriers (walkers > 1). *)
  epochs : int;
  merges : int;
  trg_live : int;  (** Current TRG entries, summed over walkers and shards. *)
  wits_live : int;
  trg_peak_shard : int;
      (** Max per-(walker, shard) TRG entries at any flush boundary — the
          quantity the per-table caps bound. *)
  wits_peak_shard : int;
  trg_evicted : int;  (** Summed over walkers; deterministic in config, not pool schedule. *)
  wits_evicted : int;
  decay_dropped : int;
  dead_pruned : int;
}

val stats : t -> stats
(** Cheap (no dispatch): walk-derived counters cover traces already
    dispatched to walkers; totals are complete after {!flush} or
    {!finalize}. All fields are deterministic in (config, feed order) —
    the pool schedule never moves them. *)

type consensus = { trg : Trg.t; affine : int array }
(** The merged profile: a finalized CSR TRG plus the affine pairs as a
    sorted array of packed [(a, b)] keys with [a < b]. *)

val finalize : t -> consensus
(** Drain every walker, then merge all walker-local shard tables into a
    consensus profile by the weight-sum / witness-occurrence algebra.
    Non-destructive: accumulation may continue afterwards. With caps and
    decay disabled this is bit-identical to the batch kernels run on
    each trace independently and merged — at any walkers, shards and
    jobs count. *)

val affine_list : consensus -> (int * int) list

val consensus_digests : consensus -> string * string
(** [(trg_digest, affine_digest)] over canonical renderings (CSR edge
    sweep; sorted packed pairs). *)

val trg_digest : Trg.t -> string

val batch_digests_parts :
  trg_window:int -> affinity_w:int -> Colayout_trace.Trace.t list -> string * string
(** The batch-kernel reference digests for a partitioned stream: trims
    each part independently, runs [Trg.build] and
    [Affinity.affine_pairs] per part, and combines by the same algebra
    as {!finalize} — TRG weights sum; a pair is affine for the union iff
    every part either saturates it or contains neither symbol.
    @raise Invalid_argument on an empty list or mismatched universes. *)

val batch_digests :
  trg_window:int -> affinity_w:int -> Colayout_trace.Trace.t -> string * string
(** [batch_digests_parts] of the single-trace stream. *)
