(** Streaming profile ingest: sharded online TRG and affinity
    accumulation, bit-identical to the batch kernels.

    One sequential walker advances a single LRU stack over the (inline-
    trimmed) concatenation of every fed trace, running both the
    [Trg.build] and [Affinity.affine_pairs] walks per event and emitting
    the resulting table operations into per-shard buffers keyed by a hash
    of the packed pair key. On flush, [Pool] workers drain each shard's
    buffer into that shard's private flat tables — no locks, no
    cross-shard writes. Because one key's ops always pass through one
    shard in stream order, {!finalize} reconstructs exactly what the
    batch kernels produce on the concatenated trace, at any shard count
    and any jobs count ({!consensus_digests} vs {!batch_digests} makes
    the contract checkable).

    Memory is bounded, deterministically in the ingest order, by three
    epoch/flush-time mechanisms: per-shard table caps (evict smallest
    (rank, key)), TRG weight decay (drop zeros), and exact dead-witness
    pruning (never changes the final affine set). With caps and decay off
    the accumulation is exact. *)

type config = {
  num_symbols : int;
  shards : int;
  trg_window : int;  (** TRG LRU window (distinct blocks). *)
  affinity_w : int;  (** Affinity window footprint bound w. *)
  trg_cap : int;  (** Per-shard TRG edge cap; 0 = unbounded. *)
  wits_cap : int;  (** Per-shard witness-entry cap; 0 = unbounded. *)
  decay_shift : int;  (** TRG weights decay by [lsr decay_shift] per epoch; 0 = off. *)
  epoch_traces : int;  (** Maintenance every N completed traces; 0 = never. *)
  prune_dead : bool;  (** Exact dead-witness pruning at epochs. *)
  flush_ops : int;  (** Buffered ops that trigger a flush. *)
}

val config :
  ?shards:int ->
  ?trg_window:int ->
  ?affinity_w:int ->
  ?trg_cap:int ->
  ?wits_cap:int ->
  ?decay_shift:int ->
  ?epoch_traces:int ->
  ?prune_dead:bool ->
  ?flush_ops:int ->
  num_symbols:int ->
  unit ->
  config
(** Validated smart constructor (defaults: 1 shard, window 256, w 16,
    unbounded, no decay, no epochs, pruning on, flush at 65536 ops).
    @raise Invalid_argument on out-of-range fields. *)

type t

val create : ?pool:Colayout_util.Pool.t -> ?metrics:Colayout_util.Metrics.t -> config -> t
(** Without a pool (or with one shard) flushes apply inline on the
    calling domain. With metrics, per-trace ingest latency lands in the
    [ingest.trace_ns] histogram and merge latency in [ingest.merge_ns]. *)

val config_of : t -> config

val feed_sym : t -> int -> unit
(** Feed one event of the current trace.
    @raise Invalid_argument on an out-of-range symbol or a stream longer
    than the packed-payload bound (2^31 kept events). *)

val feed_chunk : t -> int array -> int -> unit
(** [feed_chunk t buf n] feeds [buf.(0..n-1)] — the shape handed out by
    [Trace_io.read_chunk]. *)

val feed_trace : t -> Colayout_trace.Trace.t -> unit
(** Feed a whole in-memory trace (does not end it).
    @raise Invalid_argument when the trace's symbol universe differs from
    the config's. *)

val end_trace : t -> unit
(** Mark the current user trace complete: records its ingest latency and
    runs epoch maintenance when due. Trimming state deliberately persists
    across traces (the reference semantics is the trimmed concatenation). *)

val ingest_trace : t -> Colayout_trace.Trace.t -> unit
(** {!feed_trace} then {!end_trace}. *)

val feed_file : t -> path:string -> unit
(** Stream one trace file through the chunked [Trace_io] reader (never
    materializing it) and {!end_trace}. *)

val flush : t -> unit
(** Drain all buffered ops into the shard tables (no epoch maintenance).
    Called automatically when [flush_ops] is reached and by {!finalize}. *)

type stats = {
  traces : int;
  events : int;
  kept_events : int;  (** Events surviving inline trimming. *)
  trg_ops : int;
  wit_ops : int;
  flushes : int;
  epochs : int;
  merges : int;
  trg_live : int;  (** Current TRG entries, summed over shards. *)
  wits_live : int;
  trg_peak_shard : int;  (** Max per-shard TRG entries at any flush boundary. *)
  wits_peak_shard : int;
  trg_evicted : int;
  wits_evicted : int;
  decay_dropped : int;
  dead_pruned : int;
}

val stats : t -> stats

type consensus = { trg : Trg.t; affine : int array }
(** The merged profile: a finalized CSR TRG plus the affine pairs as a
    sorted array of packed [(a, b)] keys with [a < b]. *)

val finalize : t -> consensus
(** Flush, then merge every shard into a consensus profile. Non-
    destructive: accumulation may continue afterwards. With caps and
    decay disabled this is bit-identical to [Trg.build] /
    [Affinity.affine_pairs] on the trimmed concatenated trace. *)

val affine_list : consensus -> (int * int) list

val consensus_digests : consensus -> string * string
(** [(trg_digest, affine_digest)] over canonical renderings (CSR edge
    sweep; sorted packed pairs). *)

val trg_digest : Trg.t -> string

val batch_digests :
  trg_window:int -> affinity_w:int -> Colayout_trace.Trace.t -> string * string
(** The batch-kernel reference digests for a (concatenated) trace —
    trims, runs [Trg.build] and [Affinity.affine_pairs], digests the same
    canonical renderings as {!consensus_digests}. *)
