(** Exhaustive layout search — the Petrank-Rawitz wall made concrete
    (§III-D).

    Petrank and Rawitz proved that optimal cache-conscious placement is not
    only NP-hard but inapproximable within a constant factor unless P = NP.
    For a program with [F] functions there are [F!] layouts; this module
    searches them exhaustively (feasible only for small [F]), giving the true
    optimum that the paper's heuristics can be measured against. The gap to
    optimum — and how quickly [F!] explodes — is the wall.

    Candidates are scored through one {!Layout_eval} engine built up front
    (bit-equal to the seed evaluator kept in {!Kernel_baseline}), so the
    permutation walk allocates nothing per layout. *)

type result = {
  best_order : int array;  (** Function order with the fewest misses. *)
  best_miss_ratio : float;
  worst_miss_ratio : float;
  evaluated : int;  (** Number of layouts simulated. *)
}

val search :
  ?max_layouts:int ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  result
(** [search ~params program ref_trace] simulates every function permutation
    (or the first [max_layouts] in lexicographic order, default unbounded)
    against the reference block trace. @raise Invalid_argument if the
    program has more than 9 functions and no [max_layouts] cap. *)

val miss_ratio_of_function_order :
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  int array ->
  float
(** Simulate one function order (helper shared with the experiments). *)
