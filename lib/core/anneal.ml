open Colayout_util

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;
  improved_from : float;
}

type eval_mode = [ `Delta | `Full ]

(* Move application in place: a swap of positions [a]/[b], or a relocate of
   position [a] to position [b] with the gap shifted over. Both are their
   own undo with the roles reversed, so a rejected proposal costs two
   O(|a - b|) blits and no allocation. *)
let apply_swap order a b =
  let v = order.(a) in
  order.(a) <- order.(b);
  order.(b) <- v

let apply_relocate order a b =
  let v = order.(a) in
  if a < b then Array.blit order (a + 1) order a (b - a)
  else Array.blit order b order (b + 1) (a - b);
  order.(b) <- v

(* The shared proposal draw: position [a] uniform, then [b <> a] — uniform
   over all positions (the PR-5 stream, unchanged), or within [max_span]
   positions of [a] for the local-refinement neighbourhood the delta
   engine thrives on. With [nf >= 2] (and [max_span >= 1]) the redraw
   window always holds a value other than [a], so the loop terminates;
   degenerate inputs never reach it (the searches return the trivial order
   for [nf <= 1] before drawing anything). *)
let draw_pair rng nf ~max_span =
  let a = Prng.int rng nf in
  let b =
    match max_span with
    | None ->
      let b = ref (Prng.int rng nf) in
      while !b = a do
        b := Prng.int rng nf
      done;
      !b
    | Some span ->
      let lo = max 0 (a - span) and hi = min (nf - 1) (a + span) in
      let b = ref (Prng.int_in rng ~lo ~hi) in
      while !b = a do
        b := Prng.int_in rng ~lo ~hi
      done;
      !b
  in
  (a, b)

let check_max_span what = function
  | Some span when span <= 0 ->
    invalid_arg (Printf.sprintf "Anneal.%s: max_span must be positive" what)
  | _ -> ()

(* One Metropolis loop shared by both evaluation strategies; the
   per-proposal mechanics arrive as closures. [eval ~swap a b] applies the
   move and returns the candidate ratio; [keep]/[revert] finalize the
   decision; [blit_current] snapshots the current order on improvement.
   The delta and full paths draw the identical PRNG stream and their
   ratios are bit-equal, so the accepted-order trajectory — and the result
   — is byte-identical across modes. *)
let metropolis_loop ~rng ~steps ~nf ~max_span ~initial_mr ~eval ~keep ~revert ~blit_current
    ~best =
  let cur_mr = ref initial_mr in
  let best_mr = ref initial_mr in
  (* Temperature scaled to the objective (miss ratios live in [0,1]);
     geometric decay reaches ~1e-3 of the start by the last step. *)
  let t0 = 0.02 in
  let decay = exp (log 1e-3 /. float_of_int steps) in
  let temp = ref t0 in
  for _ = 1 to steps do
    let a, b = draw_pair rng nf ~max_span in
    let swap = Prng.bool rng ~p:0.5 in
    let mr = eval ~swap a b in
    let accept =
      mr <= !cur_mr || Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
    in
    if accept then begin
      keep ~swap a b;
      cur_mr := mr;
      if mr < !best_mr then begin
        best_mr := mr;
        blit_current best
      end
    end
    else revert ~swap a b;
    temp := !temp *. decay
  done;
  !best_mr

let search ?(seed = 1) ?(steps = 300) ?initial ?max_span ?(resync_interval = 64)
    ?(mode = `Delta) ~params program trace =
  if steps <= 0 then invalid_arg "Anneal.search: steps must be positive";
  check_max_span "search" max_span;
  let nf = Colayout_ir.Program.num_funcs program in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then invalid_arg "Anneal.search: initial order length mismatch";
      Array.copy o
  in
  let engine = Layout_eval.create ~params program trace in
  let initial_mr = Layout_eval.miss_ratio_of_order engine current in
  (* Degenerate universes (0 or 1 function) have exactly one layout: return
     it before any proposal machinery spins on an empty neighbourhood. *)
  if nf < 2 then { order = current; miss_ratio = initial_mr; steps; improved_from = initial_mr }
  else begin
    let rng = Prng.create ~seed in
    let best = Array.copy current in
    let best_mr =
      match mode with
      | `Full ->
        (* PR 5's engine path: every proposal pays one full streaming
           evaluation. Kept selectable as the honest before-side of the
           delta benchmark. *)
        metropolis_loop ~rng ~steps ~nf ~max_span ~initial_mr
          ~eval:(fun ~swap a b ->
            if swap then apply_swap current a b else apply_relocate current a b;
            Layout_eval.miss_ratio_of_order engine current)
          ~keep:(fun ~swap:_ _ _ -> ())
          ~revert:(fun ~swap a b ->
            if swap then apply_swap current a b else apply_relocate current b a)
          ~blit_current:(fun best -> Array.blit current 0 best 0 nf)
          ~best
      | `Delta ->
        let sess = Layout_eval.Delta.start ~resync_interval engine current in
        metropolis_loop ~rng ~steps ~nf ~max_span ~initial_mr
          ~eval:(fun ~swap a b ->
            if swap then Layout_eval.Delta.apply_swap sess a b
            else Layout_eval.Delta.apply_relocate sess a b)
          ~keep:(fun ~swap:_ _ _ -> Layout_eval.Delta.commit sess)
          ~revert:(fun ~swap:_ _ _ -> Layout_eval.Delta.undo sess)
          ~blit_current:(Layout_eval.Delta.blit_order sess)
          ~best
    in
    { order = best; miss_ratio = best_mr; steps; improved_from = initial_mr }
  end

let search_batch ?(seed = 1) ?(steps = 60) ?(width = 8) ?initial ?max_span
    ?(resync_interval = 64) engine =
  if steps <= 0 then invalid_arg "Anneal.search_batch: steps must be positive";
  if width <= 0 then invalid_arg "Anneal.search_batch: width must be positive";
  check_max_span "search_batch" max_span;
  let nf = Layout_eval.num_funcs engine in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then
        invalid_arg "Anneal.search_batch: initial order length mismatch";
      Array.copy o
  in
  let initial_mr = Layout_eval.miss_ratio_of_order engine current in
  if nf < 2 then
    { order = current; miss_ratio = initial_mr; steps = 1; improved_from = initial_mr }
  else begin
    let rng = Prng.create ~seed in
    let cur_mr = ref initial_mr in
    let best = Array.copy current in
    let best_mr = ref initial_mr in
    let evals = ref 1 in
    let t0 = 0.02 in
    let decay = exp (log 1e-3 /. float_of_int steps) in
    let temp = ref t0 in
    (* Per-candidate move records, drawn identically in both regimes so the
       PRNG stream — and therefore the result — is independent of the
       evaluation strategy. *)
    let mv_a = Array.make width 0 and mv_b = Array.make width 0 in
    let mv_swap = Array.make width false in
    let ratios = Array.make width 0.0 in
    let pooled = Layout_eval.pooled engine in
    (* Pooled: materialized candidate arrays fanned out via [eval_batch]'s
       index-ordered merge. Sequential: the delta session scores each move
       with an apply/undo pair — bit-equal ratios, no candidate copies. *)
    let cands =
      if pooled then Array.init width (fun _ -> Array.make nf 0) else [||]
    in
    let sess =
      if pooled then None else Some (Layout_eval.Delta.start ~resync_interval engine current)
    in
    for _ = 1 to steps do
      for c = 0 to width - 1 do
        let a, b = draw_pair rng nf ~max_span in
        mv_a.(c) <- a;
        mv_b.(c) <- b;
        mv_swap.(c) <- Prng.bool rng ~p:0.5
      done;
      (match sess with
      | None ->
        for c = 0 to width - 1 do
          let cand = cands.(c) in
          Array.blit current 0 cand 0 nf;
          if mv_swap.(c) then apply_swap cand mv_a.(c) mv_b.(c)
          else apply_relocate cand mv_a.(c) mv_b.(c)
        done;
        Array.blit (Layout_eval.eval_batch engine cands) 0 ratios 0 width
      | Some sess ->
        for c = 0 to width - 1 do
          ratios.(c) <-
            (if mv_swap.(c) then Layout_eval.Delta.apply_swap sess mv_a.(c) mv_b.(c)
             else Layout_eval.Delta.apply_relocate sess mv_a.(c) mv_b.(c));
          Layout_eval.Delta.undo sess
        done);
      evals := !evals + width;
      let pick = ref 0 in
      for c = 1 to width - 1 do
        if ratios.(c) < ratios.(!pick) then pick := c
      done;
      let mr = ratios.(!pick) in
      let accept =
        mr <= !cur_mr || Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        (match sess with
        | None -> Array.blit cands.(!pick) 0 current 0 nf
        | Some sess ->
          ignore
            (if mv_swap.(!pick) then Layout_eval.Delta.apply_swap sess mv_a.(!pick) mv_b.(!pick)
             else Layout_eval.Delta.apply_relocate sess mv_a.(!pick) mv_b.(!pick));
          Layout_eval.Delta.commit sess;
          Layout_eval.Delta.blit_order sess current);
        cur_mr := mr;
        if mr < !best_mr then begin
          best_mr := mr;
          Array.blit current 0 best 0 nf
        end
      end;
      temp := !temp *. decay
    done;
    { order = best; miss_ratio = !best_mr; steps = !evals; improved_from = initial_mr }
  end
