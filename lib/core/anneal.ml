open Colayout_util

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;
  improved_from : float;
}

(* Move application in place: a swap of positions [a]/[b], or a relocate of
   position [a] to position [b] with the gap shifted over. Both are their
   own undo with the roles reversed, so a rejected proposal costs two
   O(|a - b|) blits and no allocation. *)
let apply_swap order a b =
  let v = order.(a) in
  order.(a) <- order.(b);
  order.(b) <- v

let apply_relocate order a b =
  let v = order.(a) in
  if a < b then Array.blit order (a + 1) order a (b - a)
  else Array.blit order b order (b + 1) (a - b);
  order.(b) <- v

let search ?(seed = 1) ?(steps = 300) ?initial ~params program trace =
  if steps <= 0 then invalid_arg "Anneal.search: steps must be positive";
  let nf = Colayout_ir.Program.num_funcs program in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then invalid_arg "Anneal.search: initial order length mismatch";
      Array.copy o
  in
  let engine = Layout_eval.create ~params program trace in
  let initial_mr = Layout_eval.miss_ratio_of_order engine current in
  if nf < 2 then { order = current; miss_ratio = initial_mr; steps; improved_from = initial_mr }
  else begin
    let rng = Prng.create ~seed in
    let cur_mr = ref initial_mr in
    let best = Array.copy current in
    let best_mr = ref initial_mr in
    (* Temperature scaled to the objective (miss ratios live in [0,1]);
       geometric decay reaches ~1e-3 of the start by the last step. *)
    let t0 = 0.02 in
    let decay = exp (log 1e-3 /. float_of_int steps) in
    let temp = ref t0 in
    for _ = 1 to steps do
      let a = Prng.int rng nf in
      let b = ref (Prng.int rng nf) in
      while !b = a do
        b := Prng.int rng nf
      done;
      let b = !b in
      let swap = Prng.bool rng ~p:0.5 in
      if swap then apply_swap current a b else apply_relocate current a b;
      let mr = Layout_eval.miss_ratio_of_order engine current in
      let accept =
        mr <= !cur_mr
        || Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        cur_mr := mr;
        if mr < !best_mr then begin
          best_mr := mr;
          Array.blit current 0 best 0 nf
        end
      end
      else if swap then apply_swap current a b
      else apply_relocate current b a;
      temp := !temp *. decay
    done;
    { order = best; miss_ratio = !best_mr; steps; improved_from = initial_mr }
  end

let search_batch ?(seed = 1) ?(steps = 60) ?(width = 8) ?initial engine =
  if steps <= 0 then invalid_arg "Anneal.search_batch: steps must be positive";
  if width <= 0 then invalid_arg "Anneal.search_batch: width must be positive";
  let nf = Layout_eval.num_funcs engine in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then
        invalid_arg "Anneal.search_batch: initial order length mismatch";
      Array.copy o
  in
  let initial_mr = Layout_eval.miss_ratio_of_order engine current in
  if nf < 2 then
    { order = current; miss_ratio = initial_mr; steps = 1; improved_from = initial_mr }
  else begin
    let rng = Prng.create ~seed in
    (* The candidate arrays are allocated once and refilled every step;
       eval_batch scores the whole neighborhood in one fan-out. *)
    let cands = Array.init width (fun _ -> Array.make nf 0) in
    let cur_mr = ref initial_mr in
    let best = Array.copy current in
    let best_mr = ref initial_mr in
    let evals = ref 1 in
    let t0 = 0.02 in
    let decay = exp (log 1e-3 /. float_of_int steps) in
    let temp = ref t0 in
    for _ = 1 to steps do
      for c = 0 to width - 1 do
        let cand = cands.(c) in
        Array.blit current 0 cand 0 nf;
        let a = Prng.int rng nf in
        let b = ref (Prng.int rng nf) in
        while !b = a do
          b := Prng.int rng nf
        done;
        if Prng.bool rng ~p:0.5 then apply_swap cand a !b else apply_relocate cand a !b
      done;
      let ratios = Layout_eval.eval_batch engine cands in
      evals := !evals + width;
      let pick = ref 0 in
      for c = 1 to width - 1 do
        if ratios.(c) < ratios.(!pick) then pick := c
      done;
      let mr = ratios.(!pick) in
      let accept =
        mr <= !cur_mr
        || Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        Array.blit cands.(!pick) 0 current 0 nf;
        cur_mr := mr;
        if mr < !best_mr then begin
          best_mr := mr;
          Array.blit current 0 best 0 nf
        end
      end;
      temp := !temp *. decay
    done;
    { order = best; miss_ratio = !best_mr; steps = !evals; improved_from = initial_mr }
  end
