(** Structured decision tracing for the layout optimizers.

    The optimizers make thousands of tiny greedy choices — which TRG edge
    drives the next placement, which cluster a group joins, which chains
    Pettis-Hansen concatenates. A trace records each as a compact event so
    a profile artifact can say {e why} a layout looks the way it does, and
    so regressions in decision counts are visible.

    Tracing is pay-as-you-go: every producer takes [?decisions] and emits
    through {!emit}, which is a no-op when the option is [None]. Events
    export as JSONL (one JSON object per line, schema tag
    [colayout/decisions/v1] in the first line's ["schema"] field). *)

type event = {
  step : int;  (** Sequence number within the trace, from 0. *)
  stage : string;  (** Producer: ["trg-reduce"], ["affinity"], ... *)
  action : string;  (** e.g. ["place"], ["merge"], ["join"], ["chain-merge"]. *)
  x : int;  (** Primary node/block/function involved; -1 when n/a. *)
  y : int;  (** Partner node (merge target, chain head); -1 when n/a. *)
  weight : int;  (** Driving edge weight or window size; -1 when n/a. *)
  group : int;  (** Resulting slot/cluster/chain id; -1 when n/a. *)
  size : int;  (** Resulting group size; -1 when n/a. *)
}

type t

val create : unit -> t

val emit :
  t option ->
  stage:string ->
  action:string ->
  ?x:int ->
  ?y:int ->
  ?weight:int ->
  ?group:int ->
  ?size:int ->
  unit ->
  unit
(** Append one event; does nothing when the trace is [None], so producers
    thread their [?decisions] straight through. *)

val count : t -> int

val events : t -> event list
(** In emission order. *)

val counts_by_action : t -> (string * int) list
(** [("stage.action", count)] pairs, sorted by key — the summary the
    profile artifact embeds. *)

val to_jsonl : t -> string
(** One compact JSON object per line, in emission order. *)

val event_json : event -> Colayout_util.Json.t
