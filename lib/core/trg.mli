(** Temporal-relationship graph (Definition 6, after Gloy & Smith).

    Nodes are code blocks; an undirected edge's weight counts potential cache
    conflicts: the number of times two successive occurrences of one endpoint
    are interleaved with at least one occurrence of the other (and vice
    versa). Construction follows the original algorithm with the paper's
    hash-table-plus-linked-list speedup: one LRU-stack pass; when a block
    recurs within the analysis window, every distinct block accessed in
    between gets its edge incremented.

    The window [q] bounds how far apart (in distinct blocks) two successive
    occurrences may be and still count — Gloy & Smith recommend a window of
    twice the cache size, which {!recommended_window} computes.

    Representation: construction accumulates each undirected edge once into
    a flat packed-key table ([Int_pair_tbl], key [(min lsl 31) lor max]);
    {!finalize} converts to a CSR index (sorted neighbour/weight arrays)
    that answers {!weight} by binary search in either argument order and
    iterates edges over contiguous arrays. Both {!build} and {!of_edges}
    return finalized graphs. The packed coordinates bound the symbol
    universe: constructors raise [Invalid_argument] when
    [num_symbols >= 2^31]. *)

type t

val build : ?window:int -> Colayout_trace.Trace.t -> t
(** [window] in blocks; default unbounded. The trace must be trimmed. *)

val finalize : t -> unit
(** Convert to the CSR representation, dropping the construction-time
    table. Idempotent; called implicitly by the edge iterators and by the
    constructors, so ordinary callers never need it. *)

val num_nodes : t -> int
(** Size of the symbol universe (not all need occur). *)

val weight : t -> int -> int -> int
(** Symmetric; 0 when no edge. *)

val edges : t -> (int * int * int) list
(** [(x, y, w)] with [x < y], sorted by decreasing weight then ids. *)

val iter_edges : (int -> int -> int -> unit) -> t -> unit
(** [iter_edges f t] applies [f x y w] to each undirected edge once
    ([x < y]), in CSR (ascending [(x, y)]) order, without building a list. *)

val iter_edges_by_weight : (int -> int -> int -> unit) -> t -> unit
(** Like {!iter_edges} in the {!edges} order: decreasing weight, then ids. *)

val degree : t -> int -> int

val of_edges : num_nodes:int -> (int * int * int) list -> t
(** Build directly from weighted edges (for tests and the Figure 2 worked
    example). @raise Invalid_argument on self loops, non-positive weights or
    out-of-range nodes. *)

val recommended_window :
  params:Colayout_cache.Params.t -> block_bytes:int -> cache_multiplier:float -> int
(** Number of same-size blocks spanned by [cache_multiplier] × cache size:
    the 2C window of §II-C when [cache_multiplier = 2.0]. *)
