(** The seed tuple-[Hashtbl] analysis kernels, kept verbatim.

    PR 1 rebuilt {!Trg.build} and {!Affinity.affine_pairs} on flat
    packed-int tables ([Int_pair_tbl]) with CSR finalization. These are the
    original implementations — per-node [(int, int) Hashtbl.t] adjacency
    with symmetric double storage, and [(int * int)]-keyed witness records —
    retained for two jobs:

    - differential-test oracles: the packed kernels must produce identical
      edge sets / pair sets on any trimmed trace;
    - honest benchmark baselines: [bench/main.exe] times both paths in the
      same run and reports the speedup in [BENCH_kernels.json]. *)

type legacy_trg = {
  num_nodes : int;
  adj : (int, int) Hashtbl.t array; (* symmetric: each edge stored twice *)
}

val trg_build : ?window:int -> Colayout_trace.Trace.t -> legacy_trg
(** The seed [Trg.build]: per-event [betweens] list accumulation, double
    bump into the per-node hash tables. *)

val trg_weight : legacy_trg -> int -> int -> int

val trg_edges : legacy_trg -> (int * int * int) list
(** [(x, y, w)] with [x < y], sorted by decreasing weight then ids — the
    same order {!Trg.edges} promises. *)

val affine_pairs : Colayout_trace.Trace.t -> w:int -> (int * int) list
(** The seed [Affinity.affine_pairs] with tuple-keyed witness records,
    returning the sorted [(x, y)], [x < y] pair list — directly comparable
    to [Affinity.pair_list (Affinity.affine_pairs ...)]. *)

(** {2 Seed layout evaluator (PR 5 oracle)} *)

val miss_ratio_of_function_order :
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  int array ->
  float
(** The seed [Optimal.miss_ratio_of_function_order], verbatim:
    [Layout.of_function_order] + [Icache.solo] + [Cache_stats.miss_ratio],
    paying a fresh layout, a tuple per trace event and a fresh simulator
    per call. {!Layout_eval.miss_ratio_of_order} must match it
    bit-for-bit; [bench/main.exe --layout-eval-only] times both. *)

val miss_ratio_of_block_order :
  ?function_stubs:bool ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  int array ->
  float
(** Seed evaluation of an arbitrary block order (with optional entry
    stubs), the oracle for {!Layout_eval.miss_ratio_of_block_order}. *)

val anneal_search :
  ?seed:int ->
  ?steps:int ->
  ?initial:int array ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  int array * float * float
(** The seed [Anneal.search] loop, verbatim (one [Array.copy] proposal and
    one full seed evaluation per step; [a = b] draws burn the step), used
    as the before-side of the anneal wall-clock benchmark. Returns
    [(best_order, best_miss_ratio, initial_miss_ratio)]. *)
