(** The 29 SPEC CPU2006 analog programs.

    Real SPEC binaries are unavailable here; each analog is a {!Gen.profile}
    whose structure (hot working set vs the 32 KB L1I, phase count, branch
    fan-out, dispatch style) is sized so the program's *solo* L1I miss ratio
    and its co-run sensitivity land in the band the paper reports for its
    namesake (Table I and Figure 4). Names keep the SPEC numbering so
    experiment output reads like the paper's.

    The paper studies 8 programs in depth (Table I) and uses gcc and gamess
    as contention probes. *)

val names : string list
(** All 29, in Figure 4's x-axis order. *)

val profile : string -> Gen.profile
(** @raise Not_found for unknown names. *)

val build : string -> Colayout_ir.Program.t
(** Build the analog program. Pure and deterministic: every call constructs
    a fresh, structurally identical program — no hidden global memo.
    Callers that rebuild heavily (the harness [Ctx]) memoize themselves. *)

val deep_eight : string list
(** perlbench, gcc, mcf, gobmk, povray, sjeng, omnetpp, xalancbmk. *)

val probes : string list
(** gcc and gamess, the paper's co-run probes. *)

val short_name : string -> string
(** ["400.perlbench" -> "perlbench"]. *)
