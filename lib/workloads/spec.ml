open Gen

(* Parameter recipes, calibrated so each analog's solo L1I miss ratio lands
   at its namesake's value from the paper (Table I / Figure 4), and so the
   gcc/gamess probes reproduce the paper's co-run interference ordering
   (gamess > gcc, §I and Table I).

   The driving dimensions: [phases * funcs_per_phase] scales the total hot
   code (sweep working set), [funcs_per_phase] the per-phase working set
   against the 32 KB L1I, [iters_per_phase] amortizes phase-transition
   misses, and [Dispatch] flattens the phase structure (interpreter-shaped
   programs). [fetch_rate] (< 1 = data-bound, fetching instructions slowly)
   shapes a program's aggressiveness as a co-run peer. Seeds pick the
   original-layout shuffle and were chosen during calibration. *)

let base = { default_profile with cold_funcs = 12; cold_func_blocks = 5 }

(* Hot set far below 32 KB: essentially zero solo misses. *)
let tiny name seed ~rate =
  {
    base with
    pname = name;
    seed;
    phases = 2;
    funcs_per_phase = 4;
    arms = 4;
    arm_blocks = 2;
    arm_work = 20;
    iters_per_phase = 300;
    fetch_rate = rate;
  }

(* Hot set near or just under the cache: near-zero solo misses but visible
   co-run sensitivity (the mcf / omnetpp shape). *)
let edge name seed ~funcs ~rate =
  {
    base with
    pname = name;
    seed;
    phases = 2;
    funcs_per_phase = funcs;
    shared_funcs = 2;
    arms = 6;
    arm_blocks = 2;
    arm_work = 24;
    iters_per_phase = 400;
    fetch_rate = rate;
  }

(* Multi-phase programs whose per-phase set presses on the cache and whose
   sweep set exceeds it. *)
let phased name seed ~phases ~funcs ~iters ~rate =
  {
    base with
    pname = name;
    seed;
    phases;
    funcs_per_phase = funcs;
    shared_funcs = 3;
    arms = 6;
    arm_blocks = 2;
    arm_work = 26;
    cold_arms = 3;
    iters_per_phase = iters;
    fetch_rate = rate;
  }

(* Interpreter/compiler-shaped: one big dispatch loop over many functions
   with Zipf popularity (perlbench, gcc, xalancbmk). *)
let dispatch name seed ~funcs ~table ~zipf ~rate =
  {
    base with
    pname = name;
    seed;
    style = Dispatch { table; zipf_s = zipf };
    phases = 4;
    funcs_per_phase = funcs / 4;
    shared_funcs = 2;
    arms = 6;
    arm_blocks = 2;
    arm_work = 26;
    cold_arms = 3;
    iters_per_phase = 40;
    fetch_rate = rate;
  }

(* The gamess analog: few large functions, huge phase residency, slow fetch —
   a data-bound Fortran code that misses rarely itself (0.3% solo in Fig 4)
   but squats on most of the shared cache, making it the paper's nastier
   probe (+153% average peer miss increase vs +67% for gcc). *)
let gamess_profile =
  {
    base with
    pname = "416.gamess";
    seed = 3;
    phases = 3;
    funcs_per_phase = 4;
    shared_funcs = 1;
    arms = 4;
    arm_blocks = 8;
    arm_work = 40;
    cold_arms = 1;
    cold_work = 40;
    cold_funcs = 2;
    cold_func_blocks = 5;
    iters_per_phase = 3000;
    fetch_rate = 0.32;
  }

let profiles : (string * profile) list =
  [
    (* The 8 deep-study programs (Table I). *)
    ("400.perlbench", dispatch "400.perlbench" 6103 ~funcs:40 ~table:96 ~zipf:1.0 ~rate:0.9);
    ("403.gcc", dispatch "403.gcc" 6201 ~funcs:48 ~table:96 ~zipf:1.4 ~rate:0.40);
    ("429.mcf", edge "429.mcf" 4290 ~funcs:4 ~rate:0.45);
    ("445.gobmk", phased "445.gobmk" 5310 ~phases:9 ~funcs:7 ~iters:71 ~rate:1.0);
    ("453.povray", phased "453.povray" 5302 ~phases:6 ~funcs:9 ~iters:5481 ~rate:0.95);
    ("458.sjeng", phased "458.sjeng" 5321 ~phases:4 ~funcs:8 ~iters:4292 ~rate:1.0);
    ("471.omnetpp", edge "471.omnetpp" 4710 ~funcs:10 ~rate:0.75);
    ("483.xalancbmk", dispatch "483.xalancbmk" 6302 ~funcs:48 ~table:72 ~zipf:1.3 ~rate:0.85);
    (* The second probe. *)
    ("416.gamess", gamess_profile);
    (* The remaining Figure 4 programs, by miss-ratio band. *)
    ("410.bwaves", phased "410.bwaves" 5332 ~phases:5 ~funcs:9 ~iters:235 ~rate:0.7);
    ("456.hmmer", phased "456.hmmer" 5340 ~phases:5 ~funcs:8 ~iters:398 ~rate:1.0);
    ("401.bzip2", phased "401.bzip2" 5350 ~phases:4 ~funcs:8 ~iters:4836 ~rate:0.9);
    ("464.h264ref", phased "464.h264ref" 5360 ~phases:5 ~funcs:8 ~iters:310 ~rate:1.0);
    ("434.zeusmp", phased "434.zeusmp" 5370 ~phases:4 ~funcs:8 ~iters:1145 ~rate:0.6);
    ("435.gromacs", phased "435.gromacs" 5380 ~phases:4 ~funcs:8 ~iters:315 ~rate:0.8);
    ("444.namd", tiny "444.namd" 4440 ~rate:0.9);
    ("436.cactusADM", phased "436.cactusADM" 5391 ~phases:3 ~funcs:8 ~iters:634 ~rate:0.6);
    ("433.milc", tiny "433.milc" 4330 ~rate:0.5);
    ("447.dealII", phased "447.dealII" 5401 ~phases:3 ~funcs:7 ~iters:7003 ~rate:0.9);
    ("482.sphinx3", tiny "482.sphinx3" 4820 ~rate:0.8);
    ("481.wrf", phased "481.wrf" 5410 ~phases:3 ~funcs:7 ~iters:5196 ~rate:0.7);
    ("450.soplex", tiny "450.soplex" 4500 ~rate:0.6);
    ("470.lbm", tiny "470.lbm" 4700 ~rate:0.4);
    ("462.libquantum", tiny "462.libquantum" 4620 ~rate:0.5);
    ("465.tonto", phased "465.tonto" 5421 ~phases:4 ~funcs:8 ~iters:413 ~rate:0.7);
    ("473.astar", tiny "473.astar" 4730 ~rate:0.8);
    ("459.GemsFDTD", tiny "459.GemsFDTD" 4590 ~rate:0.5);
    ("454.calculix", tiny "454.calculix" 4540 ~rate:0.7);
    ("437.leslie3d", tiny "437.leslie3d" 4370 ~rate:0.5);
  ]

let names =
  [
    "453.povray"; "429.mcf"; "410.bwaves"; "445.gobmk"; "456.hmmer"; "401.bzip2";
    "464.h264ref"; "458.sjeng"; "400.perlbench"; "434.zeusmp"; "435.gromacs"; "403.gcc";
    "444.namd"; "436.cactusADM"; "483.xalancbmk"; "433.milc"; "447.dealII"; "482.sphinx3";
    "481.wrf"; "450.soplex"; "470.lbm"; "462.libquantum"; "465.tonto"; "473.astar";
    "459.GemsFDTD"; "454.calculix"; "437.leslie3d"; "416.gamess"; "471.omnetpp";
  ]

let profile name =
  match List.assoc_opt name profiles with
  | Some p -> p
  | None -> raise Not_found

(* Pure: a fresh program every call. The seed version kept a process-global
   memo here, which silently double-cached with [Ctx.programs] and leaked
   built programs across [Ctx] instances and test runs (and would race under
   Domain parallelism). Callers that build repeatedly — the harness [Ctx],
   the bench's lazy shared inputs — already memoize at their own scope. *)
let build name = Gen.build (profile name)

let deep_eight =
  [
    "400.perlbench"; "403.gcc"; "429.mcf"; "445.gobmk"; "453.povray"; "458.sjeng";
    "471.omnetpp"; "483.xalancbmk";
  ]

let probes = [ "403.gcc"; "416.gamess" ]

let short_name s =
  match String.index_opt s '.' with
  | Some i -> String.sub s (i + 1) (String.length s - i - 1)
  | None -> s
