(** LRU stack processing with a hash table + linked list (§II-F "Stack
    Processing").

    The stack orders code blocks by recency: position 0 is the most recently
    accessed block. [access] returns the number of *distinct* blocks accessed
    since the previous access to the same block, inclusive of that block —
    i.e. the footprint of the reuse window in block units, which is what both
    the affinity analysis (fp<a,b>) and TRG construction consume. *)

type t

val create : unit -> t

val depth : t -> int
(** Number of distinct blocks currently on the stack. *)

val clear : t -> unit
(** Drop every block, keeping allocated capacity. The streaming ingest
    walkers reset their stack at each trace boundary with this. *)

val access : t -> int -> int option
(** [access t sym] pushes/moves [sym] to the top and returns [Some d] where
    [d] was its 1-based stack depth before the access (d = footprint of the
    window between the two occurrences, counting both endpoints as one
    block), or [None] on first access. *)

val access_bounded : t -> limit:int -> int -> int option
(** Like {!access} but walks at most [limit] nodes when computing the depth:
    returns [Some d] only when the previous depth [d <= limit], and [None]
    both on a first access and on a reuse deeper than [limit] (the stack is
    updated either way). The windowed kernels use this to cap the per-event
    walk at their analysis window. *)

val touch : t -> int -> unit
(** Push/move [sym] to the top without computing its previous depth (and
    without the O(depth) walk {!access} pays for it). *)

val top_k : t -> k:int -> int list
(** The [k] most recent distinct blocks, most recent first (includes the
    block just accessed at position 0). *)

val iter_top : t -> k:int -> (int -> unit) -> unit
(** Like {!top_k} without the intermediate list. *)

val iter_until : t -> (int -> bool) -> unit
(** Visit blocks from most recent; stop when the callback returns false. *)

val iter_until_depth : t -> (int -> int -> bool) -> unit
(** [iter_until_depth t f] is {!iter_until} with the 1-based stack depth
    passed as [f]'s first argument, sparing callers the mutable depth
    counter the analysis kernels otherwise thread through the walk. *)

val position : t -> int -> int option
(** Current 0-based depth of a symbol, O(stack depth). *)

val contents : t -> int list
(** Most recent first. *)
