open Colayout_util

type t = {
  name : string;
  num_symbols : int;
  events : Int_vec.t;
  (* Occurrence counts, materialized on the first [occurrences] or
     [distinct_count] query and kept current incrementally by [push]
     afterwards. Lazy rather than eager because [num_symbols] may vastly
     exceed the distinct symbols actually pushed (the 2^31-universe guard
     traces, line traces over sparse layouts): a trace that is never asked
     pays nothing. *)
  mutable occ : int array option;
  mutable distinct : int; (* meaningful only when [occ] is materialized *)
}

let create ?(name = "trace") ~num_symbols () =
  if num_symbols <= 0 then invalid_arg "Trace.create: num_symbols must be positive";
  { name; num_symbols; events = Int_vec.create (); occ = None; distinct = 0 }

let name t = t.name

let num_symbols t = t.num_symbols

let length t = Int_vec.length t.events

let push t sym =
  if sym < 0 || sym >= t.num_symbols then
    invalid_arg (Printf.sprintf "Trace.push: symbol %d out of [0,%d)" sym t.num_symbols);
  Int_vec.push t.events sym;
  match t.occ with
  | None -> ()
  | Some occ ->
    let c = occ.(sym) in
    if c = 0 then t.distinct <- t.distinct + 1;
    occ.(sym) <- c + 1

let get t i = Int_vec.get t.events i

let iter f t = Int_vec.iter f t.events

let iteri f t = Int_vec.iteri f t.events

let of_list ?name ~num_symbols l =
  let t = create ?name ~num_symbols () in
  List.iter (push t) l;
  t

let of_array ?name ~num_symbols a =
  let t = create ?name ~num_symbols () in
  Array.iter (push t) a;
  t

let to_list t = Int_vec.to_list t.events

let events t = t.events

let materialize_occ t =
  match t.occ with
  | Some occ -> occ
  | None ->
    let occ = Array.make t.num_symbols 0 in
    let distinct = ref 0 in
    iter
      (fun s ->
        if occ.(s) = 0 then incr distinct;
        occ.(s) <- occ.(s) + 1)
      t;
    t.occ <- Some occ;
    t.distinct <- !distinct;
    occ

let occurrences t = Array.copy (materialize_occ t)

let distinct_count t =
  ignore (materialize_occ t);
  t.distinct

let first_occurrence t =
  let first = Array.make t.num_symbols (-1) in
  iteri (fun i s -> if first.(s) < 0 then first.(s) <- i) t;
  first

let equal a b = Int_vec.equal a.events b.events
