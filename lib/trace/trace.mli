(** A dynamic reference trace of code blocks (or functions).

    Events are dense integer symbol ids — the paper's "mapping file" that
    assigns each basic block or function an index (§II-F). The same container
    serves basic-block traces and function traces. *)

type t

val create : ?name:string -> num_symbols:int -> unit -> t
(** [num_symbols] is the id universe size; events must lie in
    [[0, num_symbols)]. *)

val name : t -> string

val num_symbols : t -> int

val length : t -> int

val push : t -> int -> unit
(** @raise Invalid_argument if the symbol is out of range. *)

val get : t -> int -> int

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val of_list : ?name:string -> num_symbols:int -> int list -> t

val of_array : ?name:string -> num_symbols:int -> int array -> t

val to_list : t -> int list

val events : t -> Colayout_util.Int_vec.t
(** The underlying storage (shared, not copied). *)

val distinct_count : t -> int
(** Number of distinct symbols that actually occur. O(1) after the first
    query on a given trace: the count is cached and kept current
    incrementally by {!push} (the seed recomputed a full occurrence pass
    per call). *)

val occurrences : t -> int array
(** Occurrence count per symbol id; a fresh array the caller may mutate.
    Backed by the same lazily-materialized cache as {!distinct_count}. *)

val first_occurrence : t -> int array
(** First position per symbol, or [-1] if absent. *)

val equal : t -> t -> bool
(** Same length and event sequence (names and symbol universe ignored). *)
