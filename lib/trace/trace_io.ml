let magic = "CLTR1\n"

let write_varint buf n =
  if n < 0 then invalid_arg "Trace_io.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1

let unzigzag z = if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

(* Streaming varint reader over an input channel with a one-byte interface;
   buffered by the channel itself. *)
let read_varint ic =
  let rec go shift acc =
    match In_channel.input_char ic with
    | None -> failwith "Trace_io: truncated varint"
    | Some c ->
      let b = Char.code c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let save ~path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let buf = Buffer.create (4 * Trace.length trace) in
      write_varint buf (Trace.num_symbols trace);
      write_varint buf (Trace.length trace);
      let prev = ref 0 in
      Trace.iter
        (fun s ->
          write_varint buf (zigzag (s - !prev));
          prev := s)
        trace;
      Buffer.output_buffer oc buf)

(* Chunked streaming reader: decodes the header eagerly, then hands out
   events in caller-sized chunks so ingest never holds a whole trace in
   memory (403.gcc-scale traces run to gigabytes). The eager [load] below
   is the same loop with a Trace.t as the sink. *)
type reader = {
  ic : in_channel;
  r_num_symbols : int;
  r_length : int;
  mutable r_remaining : int;
  mutable r_prev : int;
  mutable r_closed : bool;
}

let open_reader ~path =
  let ic = open_in_bin path in
  match
    let m = really_input_string ic (String.length magic) in
    if m <> magic then failwith "Trace_io: bad magic";
    let num_symbols = read_varint ic in
    let len = read_varint ic in
    (num_symbols, len)
  with
  | num_symbols, len ->
    {
      ic;
      r_num_symbols = num_symbols;
      r_length = len;
      r_remaining = len;
      r_prev = 0;
      r_closed = false;
    }
  | exception e ->
    close_in_noerr ic;
    raise e

let reader_num_symbols r = r.r_num_symbols

let reader_length r = r.r_length

let reader_remaining r = r.r_remaining

let read_chunk r buf =
  if r.r_closed then invalid_arg "Trace_io.read_chunk: reader closed";
  let n = min (Array.length buf) r.r_remaining in
  let prev = ref r.r_prev in
  for i = 0 to n - 1 do
    let s = !prev + unzigzag (read_varint r.ic) in
    buf.(i) <- s;
    prev := s
  done;
  r.r_prev <- !prev;
  r.r_remaining <- r.r_remaining - n;
  n

let close_reader r =
  if not r.r_closed then begin
    r.r_closed <- true;
    close_in_noerr r.ic
  end

let with_reader ~path f =
  let r = open_reader ~path in
  Fun.protect ~finally:(fun () -> close_reader r) (fun () -> f r)

let fold_chunks ~path ?(chunk = 1 lsl 16) f acc =
  with_reader ~path (fun r ->
      let buf = Array.make (max 1 chunk) 0 in
      let rec go acc =
        let n = read_chunk r buf in
        if n = 0 then acc else go (f acc buf n)
      in
      go acc)

let load ~path =
  with_reader ~path (fun r ->
      let t =
        Trace.create ~name:(Filename.basename path) ~num_symbols:(reader_num_symbols r) ()
      in
      let buf = Array.make (1 lsl 16) 0 in
      let rec go () =
        let n = read_chunk r buf in
        if n > 0 then begin
          for i = 0 to n - 1 do
            Trace.push t buf.(i)
          done;
          go ()
        end
      in
      go ();
      t)

let save_mapping ~path ~names =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iteri (fun i name -> Printf.fprintf oc "%d\t%s\n" i name) names)

let load_mapping ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           if line <> "" then begin
             match String.index_opt line '\t' with
             | None -> failwith ("Trace_io: malformed mapping line: " ^ line)
             | Some tab ->
               let idx = int_of_string (String.sub line 0 tab) in
               let name = String.sub line (tab + 1) (String.length line - tab - 1) in
               entries := (idx, name) :: !entries
           end
         done
       with End_of_file -> ());
      let sorted = List.sort compare (List.rev !entries) in
      List.iteri
        (fun i (idx, _) ->
          if i <> idx then failwith "Trace_io: mapping indices not contiguous from 0")
        sorted;
      Array.of_list (List.map snd sorted))
