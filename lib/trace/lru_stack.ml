open Colayout_util

type t = {
  list : int Dlist.t;
  nodes : (int, int Dlist.node) Hashtbl.t;
}

let create () = { list = Dlist.create (); nodes = Hashtbl.create 1024 }

let depth t = Dlist.length t.list

let clear t =
  Dlist.clear t.list;
  Hashtbl.clear t.nodes

(* 1-based depth by walking from the top. Only used on a hit, where the cost
   is proportional to the distance itself — the same work any list-based
   stack simulation does (Mattson et al. 1970). [Stack_dist] provides the
   O(log n) tree-based alternative for long-distance-heavy traces. *)
let stack_depth_of t node =
  let rec from_front n acc =
    match n with
    | None -> assert false
    | Some x -> if x == node then acc else from_front (Dlist.next x) (acc + 1)
  in
  from_front (Dlist.front t.list) 1

let access t sym =
  match Hashtbl.find_opt t.nodes sym with
  | Some node ->
    let d = stack_depth_of t node in
    Dlist.move_to_front t.list node;
    Some d
  | None ->
    let node = Dlist.push_front t.list sym in
    Hashtbl.replace t.nodes sym node;
    None

let push_new t sym =
  let node = Dlist.push_front t.list sym in
  Hashtbl.replace t.nodes sym node

let access_bounded t ~limit sym =
  match Hashtbl.find_opt t.nodes sym with
  | Some node ->
    (* Walk at most [limit] nodes: windowed clients (TRG construction) never
       consume depths beyond their window, so the full-depth walk of
       {!access} would be pure waste on deep reuses. *)
    let rec from_front n acc =
      if acc > limit then None
      else
        match n with
        | None -> assert false
        | Some x -> if x == node then Some acc else from_front (Dlist.next x) (acc + 1)
    in
    let d = from_front (Dlist.front t.list) 1 in
    Dlist.move_to_front t.list node;
    d
  | None ->
    push_new t sym;
    None

let touch t sym =
  match Hashtbl.find_opt t.nodes sym with
  | Some node -> Dlist.move_to_front t.list node
  | None -> push_new t sym

let iter_top t ~k f =
  let rec loop n i =
    if i < k then
      match n with
      | None -> ()
      | Some x ->
        f (Dlist.value x);
        loop (Dlist.next x) (i + 1)
  in
  loop (Dlist.front t.list) 0

let top_k t ~k =
  let acc = ref [] in
  iter_top t ~k (fun s -> acc := s :: !acc);
  List.rev !acc

let iter_until t f =
  let rec loop n =
    match n with
    | None -> ()
    | Some x -> if f (Dlist.value x) then loop (Dlist.next x)
  in
  loop (Dlist.front t.list)

let iter_until_depth t f =
  let rec loop n d =
    match n with
    | None -> ()
    | Some x -> if f d (Dlist.value x) then loop (Dlist.next x) (d + 1)
  in
  loop (Dlist.front t.list) 1

let position t sym =
  match Hashtbl.find_opt t.nodes sym with
  | None -> None
  | Some node -> Some (stack_depth_of t node - 1)

let contents t = Dlist.to_list t.list
