(** Trace and mapping-file persistence (§II-F "Instrumentation").

    The paper's instrumentation "records the trace of all functions and all
    basic blocks in a file" together with "a mapping file to assign each
    basic block or function an index". This module provides both: a compact
    varint-encoded binary trace format (block traces run to hundreds of
    millions of events — 403.gcc's test-input trace was 8 GB) and a textual
    mapping file from symbol index to name.

    Binary format: the magic bytes ["CLTR1\n"], then the symbol-universe
    size and the event count as varints, then the delta-zigzag-varint event
    stream. Deltas make hot loops (which bounce between nearby ids) encode
    in one byte per event. *)

val save : path:string -> Trace.t -> unit
(** @raise Sys_error on I/O failure. *)

val load : path:string -> Trace.t
(** Eager read (built on {!with_reader}) for the batch path.
    @raise Failure on a malformed or truncated file. *)

(** {2 Chunked streaming reads}

    A {!reader} decodes the header eagerly and then streams events in
    caller-sized chunks, so a consumer (e.g. the ingest service) never
    materializes a whole trace in memory. Readers are single-owner and
    not domain-safe. *)

type reader

val open_reader : path:string -> reader
(** @raise Failure on bad magic or a truncated header;
    @raise Sys_error on I/O failure. The channel is closed on raise. *)

val reader_num_symbols : reader -> int

val reader_length : reader -> int
(** Total events in the file (from the header). *)

val reader_remaining : reader -> int
(** Events not yet handed out by {!read_chunk}. *)

val read_chunk : reader -> int array -> int
(** [read_chunk r buf] fills a prefix of [buf] with the next events and
    returns how many were written — 0 exactly at end of stream.
    @raise Failure on a truncated body;
    @raise Invalid_argument after {!close_reader}. *)

val close_reader : reader -> unit
(** Idempotent. *)

val with_reader : path:string -> (reader -> 'a) -> 'a
(** Open, run, close (exception-safe). *)

val fold_chunks : path:string -> ?chunk:int -> ('a -> int array -> int -> 'a) -> 'a -> 'a
(** [fold_chunks ~path f acc] folds [f acc buf n] over the stream, where
    only [buf.(0..n-1)] is valid and the buffer is reused between calls
    ([chunk] events long, default 65536). *)

val save_mapping : path:string -> names:string array -> unit
(** One [index<TAB>name] line per symbol. *)

val load_mapping : path:string -> string array
(** @raise Failure on malformed lines or non-contiguous indices. *)

(**/**)

val write_varint : Buffer.t -> int -> unit
(** Exposed for tests: LEB128, non-negative ints only. *)

val zigzag : int -> int

val unzigzag : int -> int
