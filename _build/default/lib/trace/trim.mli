(** Trace trimming (Definition 1 of the paper).

    A trimmed trace has no two consecutive identical symbols: repeated
    executions of one block (a tight self-loop) carry no layout information,
    and both locality models are defined over trimmed traces. *)

val trim : Trace.t -> Trace.t

val is_trimmed : Trace.t -> bool
