open Colayout_util

type result = {
  distances : Histogram.t;
  reuse_times : Histogram.t;
  accesses : int;
  distinct : int;
}

let run t =
  let distances = Histogram.create () in
  let reuse_times = Histogram.create () in
  let last_access : (int, int) Hashtbl.t = Hashtbl.create 4096 in
  let tree = Ostree.create () in
  let time = ref 0 in
  Trace.iter
    (fun sym ->
      (match Hashtbl.find_opt last_access sym with
      | None ->
        Histogram.add_infinite distances;
        Histogram.add_infinite reuse_times
      | Some prev ->
        (* Blocks accessed strictly after [prev] are exactly the distinct
           blocks between the two accesses. *)
        let d = Ostree.rank_above tree prev in
        Histogram.add distances d;
        Histogram.add reuse_times (!time - prev);
        Ostree.delete tree prev);
      Ostree.insert tree !time;
      Hashtbl.replace last_access sym !time;
      incr time)
    t;
  {
    distances;
    reuse_times;
    accesses = Trace.length t;
    distinct = Hashtbl.length last_access;
  }

let distances_naive t =
  let n = Trace.length t in
  let out = Array.make n None in
  for i = 0 to n - 1 do
    let sym = Trace.get t i in
    (* Find previous occurrence. *)
    let rec find_prev j = if j < 0 then None else if Trace.get t j = sym then Some j else find_prev (j - 1) in
    match find_prev (i - 1) with
    | None -> out.(i) <- None
    | Some p ->
      let seen = Hashtbl.create 16 in
      for j = p + 1 to i - 1 do
        Hashtbl.replace seen (Trace.get t j) ()
      done;
      out.(i) <- Some (Hashtbl.length seen)
  done;
  out

let miss_ratio_at r ~capacity =
  if capacity < 0 then invalid_arg "Stack_dist.miss_ratio_at";
  let total = Histogram.total r.distances in
  if total = 0 then 0.0
  else begin
    (* Hits are accesses with distance < capacity (the block plus the
       distinct blocks in between fit). *)
    let hits = if capacity = 0 then 0 else Histogram.cumulative_at r.distances (capacity - 1) in
    float_of_int (total - hits) /. float_of_int total
  end
