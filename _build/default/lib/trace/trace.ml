open Colayout_util

type t = {
  name : string;
  num_symbols : int;
  events : Int_vec.t;
}

let create ?(name = "trace") ~num_symbols () =
  if num_symbols <= 0 then invalid_arg "Trace.create: num_symbols must be positive";
  { name; num_symbols; events = Int_vec.create () }

let name t = t.name

let num_symbols t = t.num_symbols

let length t = Int_vec.length t.events

let push t sym =
  if sym < 0 || sym >= t.num_symbols then
    invalid_arg (Printf.sprintf "Trace.push: symbol %d out of [0,%d)" sym t.num_symbols);
  Int_vec.push t.events sym

let get t i = Int_vec.get t.events i

let iter f t = Int_vec.iter f t.events

let iteri f t = Int_vec.iteri f t.events

let of_list ?name ~num_symbols l =
  let t = create ?name ~num_symbols () in
  List.iter (push t) l;
  t

let of_array ?name ~num_symbols a =
  let t = create ?name ~num_symbols () in
  Array.iter (push t) a;
  t

let to_list t = Int_vec.to_list t.events

let events t = t.events

let occurrences t =
  let occ = Array.make t.num_symbols 0 in
  iter (fun s -> occ.(s) <- occ.(s) + 1) t;
  occ

let distinct_count t =
  Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 (occurrences t)

let first_occurrence t =
  let first = Array.make t.num_symbols (-1) in
  iteri (fun i s -> if first.(s) < 0 then first.(s) <- i) t;
  first

let equal a b = Int_vec.equal a.events b.events
