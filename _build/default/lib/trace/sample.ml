let windows t ~period ~window =
  if window <= 0 || period <= 0 || window > period then
    invalid_arg "Sample.windows: need 0 < window <= period";
  let out =
    Trace.create ~name:(Trace.name t ^ ".sampled") ~num_symbols:(Trace.num_symbols t) ()
  in
  Trace.iteri (fun i s -> if i mod period < window then Trace.push out s) t;
  out

let prefix t ~n =
  if n < 0 then invalid_arg "Sample.prefix";
  let out =
    Trace.create ~name:(Trace.name t ^ ".prefix") ~num_symbols:(Trace.num_symbols t) ()
  in
  Trace.iteri (fun i s -> if i < n then Trace.push out s) t;
  out

let sampling_ratio ~period ~window = float_of_int window /. float_of_int period
