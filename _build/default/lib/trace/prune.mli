(** Trace pruning (§II-F).

    Basic-block traces can be enormous (the paper cites an 8 GB trace for
    403.gcc on the *test* input). The paper prunes by keeping only the
    occurrences of the 10,000 most frequently executed blocks — following
    Hashemi et al.'s popularity selection — which typically retains over 90%
    of the trace. *)

type report = {
  kept_symbols : int;  (** Hot symbols retained. *)
  total_symbols : int;  (** Distinct symbols before pruning. *)
  kept_events : int;
  total_events : int;
  coverage : float;  (** [kept_events / total_events]. *)
}

val hot_symbols : Trace.t -> top:int -> int array
(** The [top] most frequent symbols, most frequent first. Ties break toward
    the smaller id for determinism. *)

val prune : Trace.t -> top:int -> Trace.t * report
(** Keep only occurrences of the [top] hottest symbols. Symbol ids are
    preserved (not re-numbered), so downstream orders stay meaningful. *)

val prune_default_top : int
(** 10,000, the paper's setting. *)
