let magic = "CLTR1\n"

let write_varint buf n =
  if n < 0 then invalid_arg "Trace_io.write_varint: negative";
  let rec go n =
    if n < 0x80 then Buffer.add_char buf (Char.chr n)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (n land 0x7F)));
      go (n lsr 7)
    end
  in
  go n

let zigzag n = if n >= 0 then n lsl 1 else ((-n) lsl 1) - 1

let unzigzag z = if z land 1 = 0 then z lsr 1 else -((z + 1) lsr 1)

(* Streaming varint reader over an input channel with a one-byte interface;
   buffered by the channel itself. *)
let read_varint ic =
  let rec go shift acc =
    match In_channel.input_char ic with
    | None -> failwith "Trace_io: truncated varint"
    | Some c ->
      let b = Char.code c in
      let acc = acc lor ((b land 0x7F) lsl shift) in
      if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let save ~path trace =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc magic;
      let buf = Buffer.create (4 * Trace.length trace) in
      write_varint buf (Trace.num_symbols trace);
      write_varint buf (Trace.length trace);
      let prev = ref 0 in
      Trace.iter
        (fun s ->
          write_varint buf (zigzag (s - !prev));
          prev := s)
        trace;
      Buffer.output_buffer oc buf)

let load ~path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let m = really_input_string ic (String.length magic) in
      if m <> magic then failwith "Trace_io: bad magic";
      let num_symbols = read_varint ic in
      let len = read_varint ic in
      let t = Trace.create ~name:(Filename.basename path) ~num_symbols () in
      let prev = ref 0 in
      for _ = 1 to len do
        let s = !prev + unzigzag (read_varint ic) in
        Trace.push t s;
        prev := s
      done;
      t)

let save_mapping ~path ~names =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Array.iteri (fun i name -> Printf.fprintf oc "%d\t%s\n" i name) names)

let load_mapping ~path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let entries = ref [] in
      (try
         while true do
           let line = input_line ic in
           if line <> "" then begin
             match String.index_opt line '\t' with
             | None -> failwith ("Trace_io: malformed mapping line: " ^ line)
             | Some tab ->
               let idx = int_of_string (String.sub line 0 tab) in
               let name = String.sub line (tab + 1) (String.length line - tab - 1) in
               entries := (idx, name) :: !entries
           end
         done
       with End_of_file -> ());
      let sorted = List.sort compare (List.rev !entries) in
      List.iteri
        (fun i (idx, _) ->
          if i <> idx then failwith "Trace_io: mapping indices not contiguous from 0")
        sorted;
      Array.of_list (List.map snd sorted))
