(** Trace sampling (§II-F mentions "techniques for trace sampling to refine
    and extract an effective sub-trace").

    Two strategies:
    - [windows]: systematic window sampling — keep [window] consecutive
      events out of every [period]; preserves local co-occurrence structure,
      which is what both locality models consume.
    - [prefix]: simple truncation, for bounding analysis cost. *)

val windows : Trace.t -> period:int -> window:int -> Trace.t
(** @raise Invalid_argument unless [0 < window <= period]. *)

val prefix : Trace.t -> n:int -> Trace.t

val sampling_ratio : period:int -> window:int -> float
