let trim t =
  let out = Trace.create ~name:(Trace.name t ^ ".trimmed") ~num_symbols:(Trace.num_symbols t) () in
  let prev = ref (-1) in
  Trace.iter
    (fun s ->
      if s <> !prev then begin
        Trace.push out s;
        prev := s
      end)
    t;
  out

let is_trimmed t =
  let prev = ref (-1) in
  let ok = ref true in
  Trace.iter
    (fun s ->
      if s = !prev then ok := false;
      prev := s)
    t;
  !ok
