lib/trace/sample.ml: Trace
