lib/trace/trace.mli: Colayout_util
