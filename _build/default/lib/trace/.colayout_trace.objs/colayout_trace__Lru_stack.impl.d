lib/trace/lru_stack.ml: Colayout_util Dlist Hashtbl List
