lib/trace/prune.mli: Trace
