lib/trace/stack_dist.mli: Histogram Trace
