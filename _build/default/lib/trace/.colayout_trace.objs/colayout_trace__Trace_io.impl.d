lib/trace/trace_io.ml: Array Buffer Char Filename Fun In_channel List Printf String Trace
