lib/trace/trace_io.mli: Buffer Trace
