lib/trace/trace.ml: Array Colayout_util Int_vec List Printf
