lib/trace/sample.mli: Trace
