lib/trace/stack_dist.ml: Array Colayout_util Hashtbl Histogram Ostree Trace
