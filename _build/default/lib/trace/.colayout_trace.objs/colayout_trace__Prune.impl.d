lib/trace/prune.ml: Array List Trace
