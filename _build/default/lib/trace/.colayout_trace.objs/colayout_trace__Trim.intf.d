lib/trace/trim.mli: Trace
