lib/trace/lru_stack.mli:
