lib/trace/trim.ml: Trace
