lib/trace/histogram.mli:
