lib/trace/histogram.ml: Hashtbl List Option
