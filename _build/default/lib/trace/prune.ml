type report = {
  kept_symbols : int;
  total_symbols : int;
  kept_events : int;
  total_events : int;
  coverage : float;
}

let prune_default_top = 10_000

let hot_symbols t ~top =
  if top <= 0 then invalid_arg "Prune.hot_symbols: top must be positive";
  let occ = Trace.occurrences t in
  let present = ref [] in
  Array.iteri (fun sym c -> if c > 0 then present := (sym, c) :: !present) occ;
  let sorted =
    List.sort
      (fun (s1, c1) (s2, c2) -> if c1 <> c2 then compare c2 c1 else compare s1 s2)
      !present
  in
  let rec take n = function
    | [] -> []
    | _ when n = 0 -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  Array.of_list (List.map fst (take top sorted))

let prune t ~top =
  let hot = hot_symbols t ~top in
  let keep = Array.make (Trace.num_symbols t) false in
  Array.iter (fun s -> keep.(s) <- true) hot;
  let out = Trace.create ~name:(Trace.name t ^ ".pruned") ~num_symbols:(Trace.num_symbols t) () in
  Trace.iter (fun s -> if keep.(s) then Trace.push out s) t;
  let occ = Trace.occurrences t in
  let total_symbols = Array.fold_left (fun acc c -> if c > 0 then acc + 1 else acc) 0 occ in
  let total_events = Trace.length t in
  let kept_events = Trace.length out in
  let report =
    {
      kept_symbols = Array.length hot;
      total_symbols;
      kept_events;
      total_events;
      coverage = (if total_events = 0 then 1.0 else float_of_int kept_events /. float_of_int total_events);
    }
  in
  (out, report)
