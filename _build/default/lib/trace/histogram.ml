type t = {
  bins : (int, int) Hashtbl.t;
  mutable inf : int;
  mutable total_finite : int;
}

let create () = { bins = Hashtbl.create 256; inf = 0; total_finite = 0 }

let add_many t v n =
  if v < 0 then invalid_arg "Histogram.add: negative bin";
  if n < 0 then invalid_arg "Histogram.add_many: negative count";
  if n > 0 then begin
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.bins v) in
    Hashtbl.replace t.bins v (cur + n);
    t.total_finite <- t.total_finite + n
  end

let add t v = add_many t v 1

let add_infinite t = t.inf <- t.inf + 1

let count t v = Option.value ~default:0 (Hashtbl.find_opt t.bins v)

let infinite t = t.inf

let finite_total t = t.total_finite

let total t = t.total_finite + t.inf

let to_sorted_list t =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.bins []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let max_bin t = List.fold_left (fun acc (k, _) -> max acc k) (-1) (to_sorted_list t)

let iter f t = List.iter (fun (k, v) -> f k v) (to_sorted_list t)

let fold f acc t = List.fold_left (fun acc (k, v) -> f acc k v) acc (to_sorted_list t)

let cumulative_at t v = fold (fun acc k c -> if k <= v then acc + c else acc) 0 t

let mean t =
  if t.total_finite = 0 then 0.0
  else
    let sum = fold (fun acc k c -> acc +. (float_of_int k *. float_of_int c)) 0.0 t in
    sum /. float_of_int t.total_finite

let quantile t ~q =
  if q < 0.0 || q > 1.0 then invalid_arg "Histogram.quantile";
  if t.total_finite = 0 then -1
  else begin
    let target = q *. float_of_int t.total_finite in
    let acc = ref 0 in
    let found = ref (-1) in
    iter
      (fun k c ->
        if !found < 0 then begin
          acc := !acc + c;
          if float_of_int !acc >= target then found := k
        end)
      t;
    if !found < 0 then max_bin t else !found
  end
