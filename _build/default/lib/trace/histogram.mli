(** Sparse integer histogram (reuse distances, reuse times, footprints).

    The special bin {!infinite} collects cold events (first accesses, whose
    reuse distance is unbounded). *)

type t

val create : unit -> t

val add : t -> int -> unit
(** Count one event in bin [v]; [v >= 0]. *)

val add_many : t -> int -> int -> unit

val add_infinite : t -> unit

val count : t -> int -> int

val infinite : t -> int

val total : t -> int
(** All events including the infinite bin. *)

val finite_total : t -> int

val max_bin : t -> int
(** Largest non-empty finite bin; -1 if none. *)

val iter : (int -> int -> unit) -> t -> unit
(** [f bin count] over non-empty finite bins in increasing bin order. *)

val fold : ('acc -> int -> int -> 'acc) -> 'acc -> t -> 'acc

val cumulative_at : t -> int -> int
(** Number of finite events with bin value [<= v]. *)

val mean : t -> float
(** Mean over finite events. *)

val quantile : t -> q:float -> int
(** Smallest bin at which the cumulative fraction of finite events reaches
    [q] in [[0,1]]; -1 for an empty histogram. *)

val to_sorted_list : t -> (int * int) list
