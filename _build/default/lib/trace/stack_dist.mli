(** Stack-distance (reuse-distance) and reuse-time computation.

    Implementation follows the Linux-kernel-inspired structure the paper
    describes (§II-F): a hash table records each block's last access time,
    and an order-statistic red-black tree over last-access timestamps counts,
    in O(log n), how many distinct blocks were touched since — the LRU stack
    distance. Reuse *time* (the wall-clock window length used by footprint
    theory) falls out of the same pass. *)

type result = {
  distances : Histogram.t;
      (** Reuse (stack) distance per access: number of distinct other blocks
          accessed since the previous access to the same block. Cold accesses
          land in the infinite bin. *)
  reuse_times : Histogram.t;
      (** Reuse time per access: gap in trace positions to the previous
          access of the same block. Cold accesses land in the infinite
          bin. *)
  accesses : int;
  distinct : int;
}

val run : Trace.t -> result

val distances_naive : Trace.t -> int option array
(** Quadratic reference implementation (per-access distances; [None] = cold).
    For tests. *)

val miss_ratio_at : result -> capacity:int -> float
(** Fraction of accesses whose stack distance is [>= capacity] (cold counts
    as a miss): the miss ratio of a fully-associative LRU cache holding
    [capacity] blocks (Mattson et al.). *)
