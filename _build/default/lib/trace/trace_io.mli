(** Trace and mapping-file persistence (§II-F "Instrumentation").

    The paper's instrumentation "records the trace of all functions and all
    basic blocks in a file" together with "a mapping file to assign each
    basic block or function an index". This module provides both: a compact
    varint-encoded binary trace format (block traces run to hundreds of
    millions of events — 403.gcc's test-input trace was 8 GB) and a textual
    mapping file from symbol index to name.

    Binary format: the magic bytes ["CLTR1\n"], then the symbol-universe
    size and the event count as varints, then the delta-zigzag-varint event
    stream. Deltas make hot loops (which bounce between nearby ids) encode
    in one byte per event. *)

val save : path:string -> Trace.t -> unit
(** @raise Sys_error on I/O failure. *)

val load : path:string -> Trace.t
(** @raise Failure on a malformed or truncated file. *)

val save_mapping : path:string -> names:string array -> unit
(** One [index<TAB>name] line per symbol. *)

val load_mapping : path:string -> string array
(** @raise Failure on malformed lines or non-contiguous indices. *)

(**/**)

val write_varint : Buffer.t -> int -> unit
(** Exposed for tests: LEB128, non-negative ints only. *)

val zigzag : int -> int

val unzigzag : int -> int
