type t = {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  num_sets : int;
}

let is_pow2 n = n > 0 && n land (n - 1) = 0

let make ~size_bytes ~assoc ~line_bytes =
  if not (is_pow2 size_bytes) then invalid_arg "Params.make: size must be a power of two";
  if not (is_pow2 line_bytes) then invalid_arg "Params.make: line size must be a power of two";
  if assoc <= 0 then invalid_arg "Params.make: assoc must be positive";
  if size_bytes mod (assoc * line_bytes) <> 0 then
    invalid_arg "Params.make: size not divisible by assoc * line";
  let num_sets = size_bytes / (assoc * line_bytes) in
  if not (is_pow2 num_sets) then invalid_arg "Params.make: set count must be a power of two";
  { size_bytes; assoc; line_bytes; num_sets }

let default_l1i = make ~size_bytes:(32 * 1024) ~assoc:4 ~line_bytes:64

let lines_total t = t.size_bytes / t.line_bytes

let line_of_addr t addr = addr / t.line_bytes

let set_of_line t line = line land (t.num_sets - 1)

let set_of_addr t addr = set_of_line t (line_of_addr t addr)

let lines_spanned t ~addr ~bytes =
  if bytes <= 0 then invalid_arg "Params.lines_spanned: bytes must be positive";
  (line_of_addr t addr, line_of_addr t (addr + bytes - 1))

let to_string t =
  let size =
    if t.size_bytes >= 1024 then Printf.sprintf "%dKB" (t.size_bytes / 1024)
    else Printf.sprintf "%dB" t.size_bytes
  in
  Printf.sprintf "%s/%d-way/%dB (%d sets)" size t.assoc t.line_bytes t.num_sets
