(** Cache geometry.

    The paper's configuration — both the real Xeon E5520 L1I and its Pin
    simulator — is 32 KB, 4-way set associative, 64-byte lines (128 sets);
    {!default_l1i} encodes it. *)

type t = private {
  size_bytes : int;
  assoc : int;
  line_bytes : int;
  num_sets : int;
}

val make : size_bytes:int -> assoc:int -> line_bytes:int -> t
(** @raise Invalid_argument unless sizes are positive powers of two and
    [size_bytes] is divisible by [assoc * line_bytes]. *)

val default_l1i : t
(** 32 KB / 4-way / 64 B. *)

val lines_total : t -> int

val line_of_addr : t -> int -> int
(** Line number (address / line size). *)

val set_of_line : t -> int -> int

val set_of_addr : t -> int -> int

val lines_spanned : t -> addr:int -> bytes:int -> int * int
(** [(first_line, last_line)] touched by a [bytes]-long object at [addr].
    @raise Invalid_argument if [bytes <= 0]. *)

val to_string : t -> string
