(** Next-line instruction prefetcher.

    The paper observes (§III-C) that hardware-counter miss reductions are
    systematically smaller than simulated ones, naming prefetching as a
    cause. Enabling this prefetcher turns the pure simulator into the
    "hardware-like" configuration used for Table II's hw-counter columns. *)

type t

val create : ?degree:int -> unit -> t
(** [degree] next lines fetched on each demand miss (default 1). *)

val degree : t -> int

val on_miss : t -> Set_assoc.t -> Cache_stats.t -> int -> unit
(** [on_miss t cache stats line] fills [line+1 .. line+degree] (recorded as
    prefetches, not accesses). *)

val none : t option
(** Convenience for the pure-simulation configuration. *)
