(** Fully-associative LRU cache over line numbers.

    The reference model behind the capacity-miss equations of §II-A: a
    fully-associative cache of capacity [c] lines misses exactly when the
    reuse distance reaches [c]. Used as a test oracle for {!Set_assoc} (with
    [num_sets = 1] they must agree) and by the miss-probability model. *)

type t

val create : capacity:int -> t
(** Capacity in lines. *)

val access_line : t -> int -> bool

val occupancy : t -> int

val resident_lines : t -> int list
