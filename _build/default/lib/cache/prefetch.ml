type t = { degree : int }

let create ?(degree = 1) () =
  if degree <= 0 then invalid_arg "Prefetch.create";
  { degree }

let degree t = t.degree

let on_miss t cache stats line =
  for l = line + 1 to line + t.degree do
    if not (Set_assoc.probe_line cache l) then begin
      Set_assoc.fill_line cache l;
      Cache_stats.record_prefetch stats
    end
  done

let none = None
