lib/cache/set_assoc.mli: Params
