lib/cache/hierarchy.ml: Cache_stats Params Set_assoc
