lib/cache/cache_stats.ml: Array Printf
