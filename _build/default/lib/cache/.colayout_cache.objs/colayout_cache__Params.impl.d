lib/cache/params.ml: Printf
