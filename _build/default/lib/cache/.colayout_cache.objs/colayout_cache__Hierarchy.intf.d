lib/cache/hierarchy.mli: Cache_stats Params
