lib/cache/icache.mli: Cache_stats Colayout_util Params Prefetch
