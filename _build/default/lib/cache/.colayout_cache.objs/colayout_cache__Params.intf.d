lib/cache/params.mli:
