lib/cache/icache.ml: Array Cache_stats Colayout_util Int_vec Option Params Prefetch Set_assoc
