lib/cache/prefetch.mli: Cache_stats Set_assoc
