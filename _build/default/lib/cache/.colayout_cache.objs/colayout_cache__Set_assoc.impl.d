lib/cache/set_assoc.ml: Array List Params
