lib/cache/fully_assoc.ml: Colayout_util Dlist Hashtbl List
