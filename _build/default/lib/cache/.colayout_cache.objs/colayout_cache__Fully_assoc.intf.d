lib/cache/fully_assoc.mli:
