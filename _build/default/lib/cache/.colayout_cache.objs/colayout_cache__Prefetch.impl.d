lib/cache/prefetch.ml: Cache_stats Set_assoc
