lib/exec/interp.mli: Colayout_ir Colayout_trace Colayout_util
