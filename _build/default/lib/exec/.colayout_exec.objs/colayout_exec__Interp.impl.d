lib/exec/interp.ml: Array Colayout_ir Colayout_trace Colayout_util Int_vec List Prng Program Types Vec
