lib/exec/smt.mli: Colayout_cache Colayout_util
