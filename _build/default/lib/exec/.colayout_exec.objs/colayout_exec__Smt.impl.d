lib/exec/smt.ml: Array Colayout_cache Colayout_util Float Icache Int_vec Option Params Prefetch Set_assoc
