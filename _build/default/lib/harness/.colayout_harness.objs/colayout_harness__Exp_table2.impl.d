lib/harness/exp_table2.ml: Colayout Colayout_util Colayout_workloads Ctx Exp_fig6 List Printf Stats Table
