lib/harness/exp_fig7.mli: Colayout_util Ctx
