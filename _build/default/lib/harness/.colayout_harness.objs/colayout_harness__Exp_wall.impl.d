lib/harness/exp_wall.ml: Anneal Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_util Colayout_workloads Ctx List Optimal Optimizer Pettis_hansen Pipeline Printf Table Trg_place
