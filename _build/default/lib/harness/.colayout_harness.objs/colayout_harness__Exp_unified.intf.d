lib/harness/exp_unified.mli: Colayout_util Ctx
