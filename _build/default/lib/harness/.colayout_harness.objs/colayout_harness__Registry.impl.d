lib/harness/registry.ml: Colayout_util Ctx Exp_fig4 Exp_fig5 Exp_fig6 Exp_fig7 Exp_intro Exp_model Exp_mrc Exp_optopt Exp_synergy Exp_table1 Exp_table2 Exp_unified Exp_wall List Printf String
