lib/harness/exp_model.mli: Colayout_util Ctx
