lib/harness/exp_intro.ml: Colayout Colayout_util Colayout_workloads Ctx List Printf Stats Table
