lib/harness/exp_fig7.ml: Colayout Colayout_exec Colayout_util Colayout_workloads Ctx List Printf Stats Table
