lib/harness/exp_fig5.mli: Colayout_util Ctx
