lib/harness/exp_mrc.mli: Colayout_util Ctx
