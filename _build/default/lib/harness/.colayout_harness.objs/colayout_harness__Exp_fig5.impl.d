lib/harness/exp_fig5.ml: Colayout Colayout_exec Colayout_util Colayout_workloads Ctx List Printf Stats Table
