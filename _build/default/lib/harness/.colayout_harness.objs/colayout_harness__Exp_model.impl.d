lib/harness/exp_model.ml: Colayout Colayout_cache Colayout_util Colayout_workloads Ctx List Miss_prob Pipeline Printf Stats Table
