lib/harness/exp_synergy.mli: Colayout_util Ctx
