lib/harness/ctx.ml: Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_util Colayout_workloads Hashtbl Int_vec Layout Optimizer Pipeline Printf
