lib/harness/ctx.mli: Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace
