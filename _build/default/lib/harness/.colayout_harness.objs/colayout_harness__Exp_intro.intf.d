lib/harness/exp_intro.mli: Colayout_util Ctx
