lib/harness/exp_synergy.ml: Colayout Colayout_cache Colayout_exec Colayout_trace Colayout_util Colayout_workloads Ctx Layout List Optimizer Pipeline Printf Table
