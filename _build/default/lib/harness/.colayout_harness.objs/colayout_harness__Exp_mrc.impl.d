lib/harness/exp_mrc.ml: Colayout Colayout_cache Colayout_util Colayout_workloads Ctx List Mrc Printf Table
