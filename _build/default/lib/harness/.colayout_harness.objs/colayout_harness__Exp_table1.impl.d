lib/harness/exp_table1.ml: Colayout Colayout_exec Colayout_ir Colayout_util Colayout_workloads Ctx List Table
