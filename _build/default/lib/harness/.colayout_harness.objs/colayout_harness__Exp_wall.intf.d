lib/harness/exp_wall.mli: Colayout_util Ctx
