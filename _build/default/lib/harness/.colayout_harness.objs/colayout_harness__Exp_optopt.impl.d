lib/harness/exp_optopt.ml: Colayout Colayout_exec Colayout_util Colayout_workloads Ctx Exp_fig6 List Printf Stats String Table
