lib/harness/exp_optopt.mli: Colayout_util Ctx
