lib/harness/exp_unified.ml: Array Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_util Colayout_workloads Ctx Int_vec Layout List Optimizer Table
