lib/harness/exp_fig4.ml: Colayout Colayout_util Colayout_workloads Ctx List Table
