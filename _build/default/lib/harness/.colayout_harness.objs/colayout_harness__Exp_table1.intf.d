lib/harness/exp_table1.mli: Colayout_util Ctx
