lib/harness/exp_fig6.mli: Colayout Colayout_util Ctx
