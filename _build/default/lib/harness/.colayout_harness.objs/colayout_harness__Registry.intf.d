lib/harness/registry.mli: Colayout_util Ctx
