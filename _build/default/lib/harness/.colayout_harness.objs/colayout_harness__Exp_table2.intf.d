lib/harness/exp_table2.mli: Colayout_util Ctx
