lib/harness/exp_fig4.mli: Colayout_util Ctx
