open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

let pct_reduction ~base ~v = if base = 0.0 then 0.0 else (base -. v) /. base *. 100.0

(* Average, over the 8 probes, of this program's co-run miss-ratio reduction
   relative to its original layout. *)
let avg_miss_reduction ctx ~hw kind self =
  let per_probe probe =
    let base =
      Ctx.corun_miss_ratio ctx ~hw ~self:(self, O.Original) ~peer:(probe, O.Original)
    in
    let opt = Ctx.corun_miss_ratio ctx ~hw ~self:(self, kind) ~peer:(probe, O.Original) in
    pct_reduction ~base ~v:opt
  in
  Stats.mean (List.map per_probe W.Spec.deep_eight)

let avg_speedup ctx kind self =
  Stats.mean
    (List.map (fun probe -> Exp_fig6.speedup ctx kind ~self ~probe) W.Spec.deep_eight)

let run ctx =
  let t =
    Table.create
      ~title:
        "Table II: average co-run speedup and miss-ratio reduction per optimizer (speedup \
         as %; '*' marks the best speedup per program)"
      ~columns:
        (("program", Table.Left)
        :: List.concat_map
             (fun kind ->
               let n = O.kind_name kind in
               [
                 (n ^ " speedup", Table.Right);
                 (n ^ " mr hw", Table.Right);
                 (n ^ " mr sim", Table.Right);
               ])
             Exp_fig6.optimizers)
  in
  List.iter
    (fun self ->
      Ctx.progress ctx ("table2: " ^ self);
      let speedups = List.map (fun k -> avg_speedup ctx k self) Exp_fig6.optimizers in
      let best = Stats.maximum speedups in
      let cells =
        List.concat
          (List.map2
             (fun kind sp ->
               let star = if sp = best && sp > 1.0 then "*" else "" in
               [
                 Printf.sprintf "%+.2f%%%s" ((sp -. 1.0) *. 100.0) star;
                 Printf.sprintf "%.1f%%" (avg_miss_reduction ctx ~hw:true kind self);
                 Printf.sprintf "%.1f%%" (avg_miss_reduction ctx ~hw:false kind self);
               ])
             Exp_fig6.optimizers speedups)
      in
      Table.add_row t (self :: cells))
    W.Spec.deep_eight;
  [ t ]
