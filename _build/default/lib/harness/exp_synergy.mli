(** §III-F's closing conjecture, tested: "in cases where the active code
    size is large, e.g. database, ... combining defensiveness and politeness
    should see a synergistic improvement."

    Two instances of a database-like analog (active code well beyond the
    L1I even after packing) co-run; unlike the SPEC-sized programs of the
    optopt experiment, optimizing {e both} sides should now beat optimizing
    one. *)

val run : Ctx.t -> Colayout_util.Table.t list
