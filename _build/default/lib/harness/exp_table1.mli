(** Table I: characteristics of the 8 deep-study programs — dynamic
    instruction count, static code size, and L1I miss ratios solo and under
    the gcc/gamess probes. *)

val run : Ctx.t -> Colayout_util.Table.t list
