(** Experiment registry: id → runner, in paper order. *)

type experiment = {
  id : string;
  paper_ref : string;  (** e.g. "Table I", "Figure 6". *)
  summary : string;
  run : Ctx.t -> Colayout_util.Table.t list;
}

val all : experiment list

val find : string -> experiment option

val ids : string list

val run_by_ids : Ctx.t -> string list -> (string * Colayout_util.Table.t list) list
(** @raise Invalid_argument on an unknown id. *)
