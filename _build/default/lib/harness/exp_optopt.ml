open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

let top3 ctx =
  let scored =
    List.map
      (fun self ->
        let avg =
          Stats.mean
            (List.map
               (fun probe -> Exp_fig6.speedup ctx O.Func_affinity ~self ~probe)
               W.Spec.deep_eight)
        in
        (self, avg))
      W.Spec.deep_eight
  in
  List.sort (fun (_, a) (_, b) -> compare b a) scored
  |> List.filteri (fun i _ -> i < 3)
  |> List.map fst

let cycles ctx ~self ~peer =
  (Ctx.smt_corun ctx ~mode:E.Smt.Measure_first ~self ~peer).E.Smt.t0.E.Smt.cycles

let run ctx =
  let best = top3 ctx in
  Ctx.progress ctx ("optopt: top-3 func-affinity programs: " ^ String.concat ", " best);
  let t =
    Table.create
      ~title:
        "§III-F: optimized+optimized vs optimized+baseline co-run (paper: negligible delta, \
         no slowdown)"
      ~columns:
        [
          ("self (optimized)", Table.Left);
          ("peer", Table.Left);
          ("delta speedup", Table.Right);
        ]
  in
  List.iter
    (fun self ->
      List.iter
        (fun peer ->
          if self <> peer then begin
            let base =
              cycles ctx ~self:(self, O.Func_affinity) ~peer:(peer, O.Original)
            in
            let both =
              cycles ctx ~self:(self, O.Func_affinity) ~peer:(peer, O.Func_affinity)
            in
            let delta = (float_of_int base /. float_of_int both -. 1.0) *. 100.0 in
            Table.add_row t [ self; peer; Printf.sprintf "%+.2f%%" delta ]
          end)
        best)
    best;
  [ t ]
