(** §III-D, the Petrank-Rawitz wall: on a program small enough to search
    exhaustively, measure how close the paper's heuristics get to the true
    optimal function layout — and tabulate why exhaustive search is
    impossible for the real programs ([F!] layouts). *)

val run : Ctx.t -> Colayout_util.Table.t list
