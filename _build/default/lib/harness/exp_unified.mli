(** Eq 1 beyond the L1I: the unified-cache benefit classes of §II-A.

    The paper's evaluation measures the instruction cache (Eq 2), but its
    benefit classification covers the unified lower level, where instruction
    and data footprints compete (Eq 1). This experiment runs a workload with
    a real data stream through a split-L1 + unified-L2 hierarchy and shows
    that code layout optimization also removes L2 instruction misses —
    leaving more unified capacity to data, solo and co-run. *)

val run : Ctx.t -> Colayout_util.Table.t list
