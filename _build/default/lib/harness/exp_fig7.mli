(** Figure 7: hyper-threading throughput.

    7a: throughput improvement of baseline co-run over running the two
    programs back-to-back on one thread (paper: 15% to over 30%).

    7b: the magnifying effect of function-affinity optimization — the 7a
    improvement with the first program optimized, divided by the baseline
    improvement (paper: >5.6% for 16 of 28 pairs, >=10% for 9, max 26%,
    mean 7.9%, one -8% degradation).

    As in the paper's figure, 28 pairs over 7 programs (gobmk excluded). *)

val pair_programs : string list

val run : Ctx.t -> Colayout_util.Table.t list
