open Colayout
open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

let threshold = 0.01

let run ctx =
  let params = Ctx.params ctx in
  let line = params.Colayout_cache.Params.line_bytes in
  let l1_lines = Colayout_cache.Params.lines_total params in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Working-set knees (extension): smallest capacity with < %.0f%% miss, per \
            layout (L1I holds %d lines)"
           (100.0 *. threshold) l1_lines)
      ~columns:
        [
          ("program", Table.Left);
          ("knee original", Table.Right);
          ("knee bb-affinity", Table.Right);
          ("reduction", Table.Right);
          ("fits 32KB after?", Table.Left);
        ]
  in
  List.iter
    (fun name ->
      Ctx.progress ctx ("mrc: " ^ name);
      let trace = Ctx.ref_trace ctx name in
      let knee kind =
        Mrc.working_set_knee
          (Mrc.of_layout ~params ~layout:(Ctx.layout ctx name kind) trace)
          ~threshold
      in
      let korig = knee O.Original in
      let kopt = knee O.Bb_affinity in
      let reduction =
        if korig = 0 then 0.0 else float_of_int (korig - kopt) /. float_of_int korig *. 100.0
      in
      Table.add_row t
        [
          name;
          Printf.sprintf "%d lines (%dKB)" korig (korig * line / 1024);
          Printf.sprintf "%d lines (%dKB)" kopt (kopt * line / 1024);
          Printf.sprintf "%.0f%%" reduction;
          (if kopt <= l1_lines && korig > l1_lines then "newly fits"
           else if kopt <= l1_lines then "fits"
           else "exceeds");
        ])
    W.Spec.deep_eight;
  [ t ]
