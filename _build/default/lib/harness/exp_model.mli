(** Model-validation study (extension): does the footprint theory behind
    Eqs 1–2 predict what the trace-driven simulator measures?

    For every study program and probe, the predicted co-run miss ratio
    (footprint curves + capacity sharing) is compared against the shared
    cache simulation, and for every program the predicted vs simulated
    benefit of basic-block affinity. Agreement is summarized by Spearman
    rank correlation — the paper's techniques only need the model to rank
    layouts and co-run pressures correctly, not to match absolute values. *)

val run : Ctx.t -> Colayout_util.Table.t list
