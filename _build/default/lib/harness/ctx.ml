open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

type scale = Fast | Full

type t = {
  scale : scale;
  params : C.Params.t;
  opt_config : Optimizer.config;
  smt_cfg : E.Smt.config;
  hw_prefetch : C.Prefetch.t;
  programs : (string, Colayout_ir.Program.t) Hashtbl.t;
  ref_results : (string, E.Interp.result) Hashtbl.t;
  analyses : (string, Optimizer.analysis) Hashtbl.t;
  layouts : (string, Layout.t) Hashtbl.t;
  solo_cache : (string, C.Cache_stats.t) Hashtbl.t;
  corun_cache : (string, C.Cache_stats.t) Hashtbl.t;
  smt_solo_cache : (string, E.Smt.thread_stats) Hashtbl.t;
  smt_corun_cache : (string, E.Smt.corun_result) Hashtbl.t;
}

let create ?(scale = Full) () =
  let params = C.Params.default_l1i in
  {
    scale;
    params;
    opt_config = { Optimizer.default_config with params };
    smt_cfg = E.Smt.default_config ~prefetch:(C.Prefetch.create ~degree:1 ()) ();
    hw_prefetch = C.Prefetch.create ~degree:2 ();
    programs = Hashtbl.create 32;
    ref_results = Hashtbl.create 32;
    analyses = Hashtbl.create 32;
    layouts = Hashtbl.create 64;
    solo_cache = Hashtbl.create 64;
    corun_cache = Hashtbl.create 256;
    smt_solo_cache = Hashtbl.create 64;
    smt_corun_cache = Hashtbl.create 256;
  }

let scale t = t.scale

let params t = t.params

let opt_config t = t.opt_config

let ref_fuel t = match t.scale with Fast -> 200_000 | Full -> 600_000

let test_fuel t = match t.scale with Fast -> 80_000 | Full -> 200_000

let memo tbl key f =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
    let v = f () in
    Hashtbl.replace tbl key v;
    v

let progress _t msg = Printf.eprintf "  [harness] %s\n%!" msg

let program t name = memo t.programs name (fun () -> W.Gen.build (W.Spec.profile name))

let fetch_rate _t name = (W.Spec.profile name).W.Gen.fetch_rate

let ref_result t name =
  memo t.ref_results name (fun () ->
      E.Interp.run (program t name) (E.Interp.ref_input ~max_blocks:(ref_fuel t) ()))

let ref_trace t name = (ref_result t name).E.Interp.bb_trace

let analysis t name =
  memo t.analyses name (fun () ->
      progress t (Printf.sprintf "analyzing %s (test input)" name);
      Optimizer.analyze ~config:t.opt_config (program t name)
        (E.Interp.test_input ~max_blocks:(test_fuel t) ()))

let kname = Optimizer.kind_name

let layout t name kind =
  memo t.layouts
    (name ^ "/" ^ kname kind)
    (fun () ->
      match kind with
      | Optimizer.Original -> Layout.original (program t name)
      | _ ->
        progress t (Printf.sprintf "laying out %s with %s" name (kname kind));
        Optimizer.layout_for ~config:t.opt_config kind (program t name) (analysis t name))

let smt_code t name kind = Layout.to_smt_code (layout t name kind)

let hw_tag hw = if hw then "hw" else "sim"

let solo_stats t ~hw name kind =
  memo t.solo_cache
    (Printf.sprintf "%s/%s/%s" name (kname kind) (hw_tag hw))
    (fun () ->
      let prefetch = if hw then Some t.hw_prefetch else None in
      Pipeline.miss_ratio_solo ?prefetch ~params:t.params ~layout:(layout t name kind)
        (ref_trace t name))

let corun_stats t ~hw ~self ~peer =
  let sn, sk = self and pn, pk = peer in
  memo t.corun_cache
    (Printf.sprintf "%s/%s|%s/%s|%s" sn (kname sk) pn (kname pk) (hw_tag hw))
    (fun () ->
      let prefetch = if hw then Some t.hw_prefetch else None in
      Pipeline.miss_ratio_corun ?prefetch
        ~rates:(fetch_rate t sn, fetch_rate t pn)
        ~params:t.params
        ~self:(layout t sn sk, ref_trace t sn)
        ~peer:(layout t pn pk, ref_trace t pn)
        ())

let smt_solo t name kind =
  memo t.smt_solo_cache
    (name ^ "/" ^ kname kind)
    (fun () ->
      let work_scale = 1.0 /. fetch_rate t name in
      E.Smt.solo ~work_scale t.smt_cfg (smt_code t name kind)
        (Colayout_trace.Trace.events (ref_trace t name)))

let mode_tag = function E.Smt.Finish_both -> "fb" | E.Smt.Measure_first -> "mf"

let smt_config t = t.smt_cfg

let rotate_half v =
  let open Colayout_util in
  let n = Int_vec.length v in
  let out = Int_vec.create ~capacity:(max 1 n) () in
  for i = 0 to n - 1 do
    Int_vec.push out (Int_vec.get v ((i + (n / 2)) mod n))
  done;
  out

let smt_corun ?(rotate_peer = false) t ~mode ~self ~peer =
  let sn, sk = self and pn, pk = peer in
  memo t.smt_corun_cache
    (Printf.sprintf "%s/%s|%s/%s|%s%s" sn (kname sk) pn (kname pk) (mode_tag mode)
       (if rotate_peer then "|rot" else ""))
    (fun () ->
      let ws = (1.0 /. fetch_rate t sn, 1.0 /. fetch_rate t pn) in
      let peer_events = Colayout_trace.Trace.events (ref_trace t pn) in
      let peer_events = if rotate_peer then rotate_half peer_events else peer_events in
      E.Smt.corun ~work_scales:ws t.smt_cfg ~mode
        (smt_code t sn sk, Colayout_trace.Trace.events (ref_trace t sn))
        (smt_code t pn pk, peer_events))

let solo_miss_ratio t ~hw name kind = C.Cache_stats.miss_ratio (solo_stats t ~hw name kind)

let corun_miss_ratio t ~hw ~self ~peer =
  C.Cache_stats.thread_miss_ratio (corun_stats t ~hw ~self ~peer) 0
