(** Figure 5: the solo-run effect of the two affinity optimizers —
    performance speedup (5a) and I-cache miss-ratio reduction (5b, hardware
    counters) for function and basic-block reordering. *)

val run : Ctx.t -> Colayout_util.Table.t list
