open Colayout
open Colayout_util
module W = Colayout_workloads
module E = Colayout_exec
module O = Colayout.Optimizer

(* A database-server shape: large per-phase working sets (think: the
   handlers of the currently hot query mix) that exceed the L1I as laid out
   by the compiler and barely exceed it even when packed. With two such
   instances sharing the cache, optimizing one still leaves the cache
   oversubscribed — only optimizing both relieves it. *)
let db_profile seed =
  {
    W.Gen.default_profile with
    pname = "dbshape";
    seed;
    phases = 3;
    funcs_per_phase = 24;
    shared_funcs = 2;
    arms = 6;
    arm_blocks = 2;
    arm_work = 26;
    cold_arms = 3;
    cold_funcs = 16;
    iters_per_phase = 120;
  }

let run ctx =
  let params = Ctx.params ctx in
  let fuel = match Ctx.scale ctx with Ctx.Fast -> 150_000 | Ctx.Full -> 400_000 in
  let smt_cfg = E.Smt.default_config ~prefetch:(Colayout_cache.Prefetch.create ()) () in
  let build seed =
    let p = W.Gen.build (db_profile seed) in
    let analysis = Optimizer.analyze p (E.Interp.test_input ~max_blocks:200_000 ()) in
    let trace =
      (E.Interp.run p (E.Interp.ref_input ~max_blocks:fuel ())).E.Interp.bb_trace
    in
    let layout kind = Optimizer.layout_for kind p analysis in
    (p, trace, layout)
  in
  Ctx.progress ctx "synergy: building two db-shaped instances";
  let _pa, trace_a, layout_a = build 9001 in
  let _pb, trace_b, layout_b = build 9002 in
  let cycles kind_a kind_b =
    let r =
      E.Smt.corun smt_cfg ~mode:E.Smt.Measure_first
        (Layout.to_smt_code (layout_a kind_a), Colayout_trace.Trace.events trace_a)
        (Layout.to_smt_code (layout_b kind_b), Colayout_trace.Trace.events trace_b)
    in
    float_of_int r.E.Smt.t0.E.Smt.cycles
  in
  (* Pair throughput: both instances run one pass; instructions retired per
     cycle across the pair. *)
  let pair_throughput kind_a kind_b =
    let r =
      E.Smt.corun smt_cfg ~mode:E.Smt.Finish_both
        (Layout.to_smt_code (layout_a kind_a), Colayout_trace.Trace.events trace_a)
        (Layout.to_smt_code (layout_b kind_b), Colayout_trace.Trace.events trace_b)
    in
    float_of_int (r.E.Smt.t0.E.Smt.instrs + r.E.Smt.t1.E.Smt.instrs)
    /. float_of_int r.E.Smt.total_cycles
  in
  let miss kind_a kind_b =
    let s =
      Pipeline.miss_ratio_corun ~params
        ~self:(layout_a kind_a, trace_a)
        ~peer:(layout_b kind_b, trace_b)
        ()
    in
    Colayout_cache.Cache_stats.thread_miss_ratio s 0
  in
  let base = cycles O.Original O.Original in
  let base_tp = pair_throughput O.Original O.Original in
  let t =
    Table.create
      ~title:
        "§III-F conjecture on big-code (database-like) programs (vs original+original): \
         politeness now pays — optimizing both sides is best for the pair"
      ~columns:
        [
          ("pairing (A + B)", Table.Left);
          ("A miss ratio", Table.Right);
          ("A speedup", Table.Right);
          ("pair throughput gain", Table.Right);
        ]
  in
  let kinds_label ka kb = O.kind_name ka ^ " + " ^ O.kind_name kb in
  List.iter
    (fun (ka, kb) ->
      Ctx.progress ctx ("synergy: " ^ kinds_label ka kb);
      let sp = (base /. cycles ka kb -. 1.0) *. 100.0 in
      let tp = (pair_throughput ka kb /. base_tp -. 1.0) *. 100.0 in
      Table.add_row t
        [
          kinds_label ka kb;
          Table.fmt_pct (100.0 *. miss ka kb);
          Printf.sprintf "%+.2f%%" sp;
          Printf.sprintf "%+.2f%%" tp;
        ])
    [
      (O.Original, O.Original);
      (O.Bb_affinity, O.Original);
      (O.Original, O.Bb_affinity);
      (O.Bb_affinity, O.Bb_affinity);
    ];
  [ t ]
