open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

let run ctx =
  let t =
    Table.create ~title:"Figure 4: L1I miss ratios under solo- and co-run (29 programs)"
      ~columns:
        [
          ("program", Table.Left);
          ("solo", Table.Right);
          ("403.gcc as probe", Table.Right);
          ("416.gamess as probe", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let solo = Ctx.solo_miss_ratio ctx ~hw:false name O.Original in
      let co probe =
        Ctx.corun_miss_ratio ctx ~hw:false ~self:(name, O.Original) ~peer:(probe, O.Original)
      in
      Table.add_row t
        [
          name;
          Table.fmt_pct (100.0 *. solo);
          Table.fmt_pct (100.0 *. co "403.gcc");
          Table.fmt_pct (100.0 *. co "416.gamess");
        ])
    W.Spec.names;
  [ t ]
