open Colayout
open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

let run ctx =
  let params = Ctx.params ctx in
  let capacity = Colayout_cache.Params.lines_total params in
  let curve name kind =
    Pipeline.footprint_curve ~params ~layout:(Ctx.layout ctx name kind) (Ctx.ref_trace ctx name)
  in
  (* --- Co-run prediction vs simulation, original layouts. --- *)
  let t1 =
    Table.create
      ~title:
        "Model validation (Eq 1): predicted vs simulated co-run miss ratio (original \
         layouts)"
      ~columns:
        [
          ("program", Table.Left);
          ("probe", Table.Left);
          ("predicted", Table.Right);
          ("simulated", Table.Right);
        ]
  in
  let predicted = ref [] and simulated = ref [] in
  List.iter
    (fun name ->
      Ctx.progress ctx ("model: " ^ name);
      let self_curve = curve name O.Original in
      List.iter
        (fun probe ->
          let peer_curve = curve probe O.Original in
          let pred, _ = Miss_prob.corun_miss_ratios self_curve peer_curve ~capacity in
          let sim =
            Ctx.corun_miss_ratio ctx ~hw:false ~self:(name, O.Original)
              ~peer:(probe, O.Original)
          in
          predicted := pred :: !predicted;
          simulated := sim :: !simulated;
          Table.add_row t1
            [ name; probe; Table.fmt_pct (100.0 *. pred); Table.fmt_pct (100.0 *. sim) ])
        W.Spec.probes)
    W.Spec.deep_eight;
  (* --- Optimization benefit: predicted vs simulated, solo. --- *)
  let t2 =
    Table.create
      ~title:
        "Model validation: predicted vs simulated solo miss ratio under bb-affinity \
         reordering"
      ~columns:
        [
          ("program", Table.Left);
          ("pred original", Table.Right);
          ("pred bb-affinity", Table.Right);
          ("sim original", Table.Right);
          ("sim bb-affinity", Table.Right);
          ("direction agrees", Table.Left);
        ]
  in
  let agreements = ref 0 and total = ref 0 in
  List.iter
    (fun name ->
      let pred kind = Miss_prob.solo_miss_ratio (curve name kind) ~capacity in
      let sim kind = Ctx.solo_miss_ratio ctx ~hw:false name kind in
      let po = pred O.Original and pb = pred O.Bb_affinity in
      let so = sim O.Original and sb = sim O.Bb_affinity in
      let agree = (pb <= po && sb <= so) || (pb > po && sb > so) in
      incr total;
      if agree then incr agreements;
      Table.add_row t2
        [
          name;
          Table.fmt_pct (100.0 *. po);
          Table.fmt_pct (100.0 *. pb);
          Table.fmt_pct (100.0 *. so);
          Table.fmt_pct (100.0 *. sb);
          (if agree then "yes" else "NO");
        ])
    W.Spec.deep_eight;
  let summary =
    Table.create ~title:"Model validation summary"
      ~columns:[ ("statistic", Table.Left); ("value", Table.Right) ]
  in
  let mae =
    Stats.mean (List.map2 (fun p s -> abs_float (p -. s)) !predicted !simulated) *. 100.0
  in
  Table.add_rows summary
    [
      [ "co-run points"; string_of_int (List.length !predicted) ];
      [ "Spearman rank correlation (prediction vs simulation)";
        Printf.sprintf "%.3f" (Stats.spearman !predicted !simulated) ];
      [ "mean absolute error"; Printf.sprintf "%.2fpp" mae ];
      [ "optimization-direction agreement";
        Printf.sprintf "%d/%d" !agreements !total ];
    ];
  [ t1; t2; summary ]
