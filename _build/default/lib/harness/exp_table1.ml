open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

let run ctx =
  let t =
    Table.create
      ~title:
        "Table I: characteristics of the 8 deep-study programs (dynamic count is millions \
         here vs the paper's billions: simulated fuel replaces full reference runs)"
      ~columns:
        [
          ("program", Table.Left);
          ("dyn instrs (M)", Table.Right);
          ("static (bytes)", Table.Right);
          ("solo", Table.Right);
          ("co-run gcc", Table.Right);
          ("co-run gamess", Table.Right);
        ]
  in
  List.iter
    (fun name ->
      let prog = Ctx.program ctx name in
      let res = Ctx.ref_result ctx name in
      let solo = Ctx.solo_miss_ratio ctx ~hw:false name O.Original in
      let co probe =
        Ctx.corun_miss_ratio ctx ~hw:false ~self:(name, O.Original) ~peer:(probe, O.Original)
      in
      Table.add_row t
        [
          name;
          Table.fmt_float ~decimals:1 (float_of_int res.E.Interp.instr_count /. 1e6);
          Table.fmt_int (Colayout_ir.Program.total_code_bytes prog);
          Table.fmt_pct (100.0 *. solo);
          Table.fmt_pct (100.0 *. co "403.gcc");
          Table.fmt_pct (100.0 *. co "416.gamess");
        ])
    W.Spec.deep_eight;
  [ t ]
