(** Figure 6: co-run speedups of the three effective optimizers (function
    affinity, BB affinity, function TRG). Each cell times the optimized
    program co-running with a continuously-executing original probe,
    normalized to the original+original pairing. *)

val optimizers : Colayout.Optimizer.kind list

val speedup :
  Ctx.t -> Colayout.Optimizer.kind -> self:string -> probe:string -> float
(** Shared with Table II via the context memo. *)

val run : Ctx.t -> Colayout_util.Table.t list
