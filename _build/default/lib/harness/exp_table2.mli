(** Table II: per program and optimizer, the average co-run speedup and the
    average miss-ratio reduction — as "hardware counters" (prefetching
    simulator) and as pure simulation. The best speedup per program is
    starred. *)

val run : Ctx.t -> Colayout_util.Table.t list
