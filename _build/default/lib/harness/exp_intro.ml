open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer

(* The paper counts 9 of 29 programs as having non-trivial miss ratios;
   1% reproduces that band on the analog suite. *)
let nontrivial_threshold = 0.01

let run ctx =
  let solo name = Ctx.solo_miss_ratio ctx ~hw:false name O.Original in
  let selected =
    List.filter (fun n -> solo n >= nontrivial_threshold) W.Spec.names
  in
  Ctx.progress ctx
    (Printf.sprintf "%d of %d programs have non-trivial (>= %.0f%%) solo miss ratios"
       (List.length selected) (List.length W.Spec.names) (100.0 *. nontrivial_threshold));
  let co probe name =
    Ctx.corun_miss_ratio ctx ~hw:false ~self:(name, O.Original) ~peer:(probe, O.Original)
  in
  let solos = List.map solo selected in
  let co1 = List.map (co "403.gcc") selected in
  let co2 = List.map (co "416.gamess") selected in
  let avg xs = Stats.mean xs *. 100.0 in
  let t =
    Table.create
      ~title:
        (Printf.sprintf
           "Intro table: avg L1I miss ratio of the %d non-trivial programs (paper: 1.5%% / \
            2.5%% +67%% / 3.8%% +153%%)"
           (List.length selected))
      ~columns:
        [ ("run", Table.Left); ("avg. miss ratio", Table.Right); ("increase over solo", Table.Right) ]
  in
  let base = avg solos in
  Table.add_row t [ "solo"; Table.fmt_pct base; "--" ];
  Table.add_row t
    [ "co-run 1 (gcc)"; Table.fmt_pct (avg co1);
      Printf.sprintf "%.0f%%" (Stats.percent_change ~base ~v:(avg co1)) ];
  Table.add_row t
    [ "co-run 2 (gamess)"; Table.fmt_pct (avg co2);
      Printf.sprintf "%.0f%%" (Stats.percent_change ~base ~v:(avg co2)) ];
  let detail =
    Table.create ~title:"Intro detail: the non-trivial-miss programs"
      ~columns:[ ("program", Table.Left); ("solo", Table.Right) ]
  in
  List.iter2
    (fun n s -> Table.add_row detail [ n; Table.fmt_pct (100.0 *. s) ])
    selected solos;
  [ t; detail ]
