(** Figure 4: L1 instruction cache miss ratios of all 29 programs, solo and
    with gcc / gamess as co-run probes. *)

val run : Ctx.t -> Colayout_util.Table.t list
