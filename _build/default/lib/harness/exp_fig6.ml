open Colayout_util
module W = Colayout_workloads
module O = Colayout.Optimizer
module E = Colayout_exec

let optimizers = [ O.Func_affinity; O.Bb_affinity; O.Func_trg ]

let corun_cycles ctx ~self ~probe =
  let r =
    Ctx.smt_corun ctx ~mode:E.Smt.Measure_first ~self ~peer:(probe, O.Original)
  in
  float_of_int r.E.Smt.t0.E.Smt.cycles

let speedup ctx kind ~self ~probe =
  let base = corun_cycles ctx ~self:(self, O.Original) ~probe in
  let opt = corun_cycles ctx ~self:(self, kind) ~probe in
  Stats.speedup ~base ~opt

let run ctx =
  List.map
    (fun kind ->
      let t =
        Table.create
          ~title:
            (Printf.sprintf
               "Figure 6 (%s): co-run speedup of optimized vs original, per probe"
               (O.kind_name kind))
          ~columns:
            (("program", Table.Left)
            :: (List.map (fun p -> (W.Spec.short_name p, Table.Right)) W.Spec.deep_eight
               @ [ ("avg", Table.Right) ]))
      in
      List.iter
        (fun self ->
          Ctx.progress ctx (Printf.sprintf "fig6 %s: %s" (O.kind_name kind) self);
          let cells =
            List.map (fun probe -> speedup ctx kind ~self ~probe) W.Spec.deep_eight
          in
          Table.add_row t
            (self
            :: (List.map Table.fmt_ratio cells @ [ Table.fmt_ratio (Stats.mean cells) ])))
        W.Spec.deep_eight;
      t)
    optimizers
