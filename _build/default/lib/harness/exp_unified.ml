open Colayout
open Colayout_util
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module O = Colayout.Optimizer
module T = Colayout_trace.Trace

(* A numeric-kernel shape: phased control flow plus per-function data
   regions; both the code and the data working sets press on their L1s. *)
let profile =
  {
    W.Gen.default_profile with
    pname = "unified";
    seed = 7001;
    phases = 4;
    funcs_per_phase = 9;
    shared_funcs = 2;
    arms = 6;
    arm_blocks = 2;
    arm_work = 26;
    cold_arms = 3;
    cold_funcs = 10;
    iters_per_phase = 90;
    data_region_bytes = 4096;
    loads_per_block = 2;
  }

let data_ops_per_block program =
  Array.map
    (fun (b : Colayout_ir.Program.block) ->
      List.fold_left
        (fun acc i ->
          match i with Colayout_ir.Types.Load _ | Colayout_ir.Types.Store _ -> acc + 1 | _ -> acc)
        0 b.instrs)
    (Colayout_ir.Program.blocks program)

(* One thread's position in its block + data streams. *)
type stream = {
  trace : T.t;
  data : Int_vec.t;
  layout : Layout.t;
  data_ops : int array;
  line_offset : int;
  addr_offset : int;
  mutable pos : int;
  mutable data_pos : int;
}

let mk_stream ~trace ~data ~layout ~data_ops ~line_offset ~addr_offset =
  { trace; data; layout; data_ops; line_offset; addr_offset; pos = 0; data_pos = 0 }

let finished s = s.pos >= T.length s.trace

(* Execute one block: fetch its lines, then issue its data references. *)
let step params h ~thread s =
  if not (finished s) then begin
    let bid = T.get s.trace s.pos in
    s.pos <- s.pos + 1;
    let first, last =
      C.Params.lines_spanned params ~addr:s.layout.Layout.addr.(bid)
        ~bytes:s.layout.Layout.bytes.(bid)
    in
    for line = first to last do
      C.Hierarchy.access_instr h ~thread ~line:(line + s.line_offset)
    done;
    for _ = 1 to s.data_ops.(bid) do
      if s.data_pos < Int_vec.length s.data then begin
        C.Hierarchy.access_data h ~thread ~addr:(Int_vec.get s.data s.data_pos + s.addr_offset);
        s.data_pos <- s.data_pos + 1
      end
    done
  end

let run ctx =
  let params = Ctx.params ctx in
  let fuel = match Ctx.scale ctx with Ctx.Fast -> 120_000 | Ctx.Full -> 300_000 in
  let program = W.Gen.build profile in
  let analysis = Optimizer.analyze program (E.Interp.test_input ~max_blocks:150_000 ()) in
  let res = E.Interp.run program (E.Interp.ref_input ~max_blocks:fuel ()) in
  let data_ops = data_ops_per_block program in
  let layout kind = Optimizer.layout_for kind program analysis in
  let mr s = 100.0 *. C.Cache_stats.miss_ratio s in
  let solo_row kind =
    let h = C.Hierarchy.create () in
    let s =
      mk_stream ~trace:res.E.Interp.bb_trace ~data:res.E.Interp.data_trace
        ~layout:(layout kind) ~data_ops ~line_offset:0 ~addr_offset:0
    in
    while not (finished s) do
      step params h ~thread:0 s
    done;
    h
  in
  let t =
    Table.create
      ~title:
        "Eq 1 beyond L1I (extension): split-L1 + unified-L2 hierarchy, solo run of a \
         numeric workload with per-function data regions"
      ~columns:
        [
          ("layout", Table.Left);
          ("L1I miss", Table.Right);
          ("L1D miss", Table.Right);
          ("L2 miss", Table.Right);
          ("L2 instr misses", Table.Right);
          ("L2 data misses", Table.Right);
        ]
  in
  List.iter
    (fun kind ->
      Ctx.progress ctx ("unified solo: " ^ O.kind_name kind);
      let h = solo_row kind in
      Table.add_row t
        [
          O.kind_name kind;
          Table.fmt_pct (mr (C.Hierarchy.l1i_stats h));
          Table.fmt_pct (mr (C.Hierarchy.l1d_stats h));
          Table.fmt_pct (mr (C.Hierarchy.l2_stats h));
          Table.fmt_int (C.Hierarchy.l2_instr_misses h);
          Table.fmt_int (C.Hierarchy.l2_data_misses h);
        ])
    [ O.Original; O.Func_affinity; O.Bb_affinity ];
  (* Co-run: two instances of the workload on the two hyper-threads, all
     levels shared. Thread 1 uses a second instance (different seed). *)
  let program_b = W.Gen.build { profile with pname = "unified-b"; seed = 7002 } in
  let analysis_b = Optimizer.analyze program_b (E.Interp.test_input ~max_blocks:150_000 ()) in
  let res_b = E.Interp.run program_b (E.Interp.ref_input ~max_blocks:fuel ()) in
  let data_ops_b = data_ops_per_block program_b in
  let corun_row kind_a kind_b =
    let h = C.Hierarchy.create ~threads:2 () in
    let a =
      mk_stream ~trace:res.E.Interp.bb_trace ~data:res.E.Interp.data_trace
        ~layout:(layout kind_a) ~data_ops ~line_offset:0 ~addr_offset:0
    in
    let layout_b =
      match kind_b with
      | O.Original -> Layout.original program_b
      | k -> Optimizer.layout_for k program_b analysis_b
    in
    let b =
      mk_stream ~trace:res_b.E.Interp.bb_trace ~data:res_b.E.Interp.data_trace
        ~layout:layout_b ~data_ops:data_ops_b ~line_offset:(1 lsl 40)
        ~addr_offset:(1 lsl 38)
    in
    while not (finished a && finished b) do
      step params h ~thread:0 a;
      step params h ~thread:1 b
    done;
    h
  in
  let t2 =
    Table.create
      ~title:
        "Eq 1 co-run: unified L2 shared by two hyper-threads (thread-0 metrics; peer runs \
         its original layout)"
      ~columns:
        [
          ("self layout", Table.Left);
          ("L1I miss", Table.Right);
          ("L1D miss", Table.Right);
          ("L2 miss", Table.Right);
        ]
  in
  List.iter
    (fun kind ->
      Ctx.progress ctx ("unified corun: " ^ O.kind_name kind);
      let h = corun_row kind O.Original in
      let tmr stats = 100.0 *. C.Cache_stats.thread_miss_ratio stats 0 in
      Table.add_row t2
        [
          O.kind_name kind;
          Table.fmt_pct (tmr (C.Hierarchy.l1i_stats h));
          Table.fmt_pct (tmr (C.Hierarchy.l1d_stats h));
          Table.fmt_pct (tmr (C.Hierarchy.l2_stats h));
        ])
    [ O.Original; O.Func_affinity; O.Bb_affinity ];
  [ t; t2 ]
