(** §I introduction table: average L1I miss ratio of the programs with
    non-trivial miss ratios, solo and under the two co-run probes (paper:
    1.5% / 2.5% (+67%) / 3.8% (+153%)). *)

val run : Ctx.t -> Colayout_util.Table.t list
