(** Working-set knees (extension): one-pass LRU miss-ratio curves per
    program and layout.

    The measurement-side counterpart of the footprint model: for each of the
    8 study programs, the smallest fully-associative capacity at which the
    miss ratio drops below 1%, before and after basic-block affinity
    reordering — how far left the optimizer moves the working-set knee
    relative to the 32 KB L1I. *)

val run : Ctx.t -> Colayout_util.Table.t list
