(** §III-F "Combining Defensiveness and Politeness": the three programs that
    gain most from function affinity, co-run optimized+optimized vs
    optimized+baseline. The paper's finding is negative: deltas are
    negligible (and never slowdowns), because optimizing one program already
    removes the instruction-cache contention. *)

val run : Ctx.t -> Colayout_util.Table.t list
