(** Code layout: a permutation of the program's basic blocks together with
    the address assignment it induces.

    Address assignment charges the costs the paper's transformation pays:

    - {b broken fall-throughs}: when a block's natural fall-through successor
      ([Branch]'s false edge, [Jump]'s target, or a [Call]'s return block) is
      not the next block in layout order, an explicit unconditional jump is
      appended (§II-E pre-processing: "we need an explicit jump to find the
      right fall-through block"). The original layout pays this too — its
      fall-throughs are simply usually intact.
    - {b function entry stubs}: under whole-program basic-block reordering,
      each function gets a jump at its start to reach its (possibly distant)
      first block; enabled by [function_stubs].

    The result feeds both the cache simulators (addresses/bytes) and the SMT
    timing model (per-block instruction counts including added jumps). *)

type t = {
  order : int array;  (** Block ids in layout order (a permutation). *)
  addr : int array;  (** Start address, indexed by block id. *)
  bytes : int array;  (** Laid-out size, indexed by block id. *)
  instr_counts : int array;
      (** Executed instructions per block id. Added unconditional jumps are
          charged as bytes (fetch footprint) but not as instructions: the
          front-end folds direct jumps. *)
  total_bytes : int;
  added_jumps : int;  (** Number of fall-through fixups inserted. *)
}

val of_block_order : ?function_stubs:bool -> Colayout_ir.Program.t -> int array -> t
(** @raise Invalid_argument if [order] is not a permutation of all block
    ids. [function_stubs] defaults to false. *)

val of_function_order : Colayout_ir.Program.t -> int array -> t
(** Functions laid out in the given order; blocks keep their original
    intra-procedural order. @raise Invalid_argument if not a permutation of
    all function ids. *)

val original : Colayout_ir.Program.t -> t
(** Declaration order — the baseline layout. *)

val to_icache : t -> Colayout_cache.Icache.layout

val to_smt_code : t -> Colayout_exec.Smt.code

val line_trace :
  params:Colayout_cache.Params.t ->
  layout:t ->
  Colayout_trace.Trace.t ->
  Colayout_trace.Trace.t
(** Expand a block trace into the cache-line reference trace the layout
    induces (symbols = line numbers). This is what the footprint /
    miss-probability model consumes to speak in cache-capacity units. *)

val block_order_of_hot_list :
  Colayout_ir.Program.t -> hot:int list -> int array
(** Complete a hot-block prefix into a full block permutation: hot blocks
    first (in the given order), then every remaining block in original
    program order — the paper's residual cold code. Duplicates in [hot] are
    an error. *)

val function_order_of_hot_list :
  Colayout_ir.Program.t -> hot:int list -> int array
(** Same completion for function ids. *)
