(** Intra-procedural basic-block reordering — the compiler-default baseline.

    "Much of the literature in code layout optimization is intra-procedural.
    Compilers such as LLVM and GCC provide profiling-based basic block
    reordering, also within a procedure." (§II-E). This module implements
    that baseline: within each function, hot blocks (by profiled execution
    frequency) move to the front, the entry staying first; the function
    order itself is untouched. Comparing it against the paper's
    inter-procedural reordering quantifies what crossing function boundaries
    buys. *)

val block_order : Colayout_ir.Program.t -> Colayout_trace.Trace.t -> int array
(** Per function: entry first, then blocks by descending execution count in
    the (trimmed/pruned) profile trace, ties in original order. *)

val layout_for :
  Colayout_ir.Program.t -> Optimizer.analysis -> Layout.t
(** The full intra-procedural optimizer (no function stubs are needed:
    blocks never leave their function). *)
