open Colayout_ir

let block_order program trace =
  let counts = Colayout_trace.Trace.occurrences trace in
  let nb = Program.num_blocks program in
  let order = Array.make nb 0 in
  let pos = ref 0 in
  Array.iter
    (fun (f : Program.func) ->
      let body =
        Array.to_list f.blocks
        |> List.filter (fun bid -> bid <> f.entry)
        |> List.stable_sort (fun a b -> compare counts.(b) counts.(a))
      in
      List.iter
        (fun bid ->
          order.(!pos) <- bid;
          incr pos)
        (f.entry :: body))
    (Program.funcs program);
  order

let layout_for program (analysis : Optimizer.analysis) =
  Layout.of_block_order program (block_order program analysis.Optimizer.bb)
