(** Profile-free static layout — what a compiler can do without any
    instrumentation run.

    Composes the static machinery: {!Colayout_ir.Cfg}'s loop-depth-scaled
    block frequency estimates order blocks within each function (hot first,
    entry pinned), and a static call graph — call sites weighted by their
    block's estimated frequency — feeds {!Pettis_hansen} chain merging for
    the function order. The gap between this and the paper's profile-driven
    optimizers measures what the instrumentation run buys. *)

val static_call_graph : Colayout_ir.Program.t -> (int * int * int) list
(** [(caller, callee, weight)] edges; weight is the rounded-up sum of the
    static frequencies of the calling blocks. *)

val block_order : Colayout_ir.Program.t -> int array
(** Functions ordered by the static Pettis-Hansen chains (never-called
    functions last, in original order); within each function, entry first,
    then blocks by descending static frequency. *)

val layout_for : Colayout_ir.Program.t -> Layout.t
