open Colayout_util

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;
  improved_from : float;
}

let search ?(seed = 1) ?(steps = 300) ?initial ~params program trace =
  if steps <= 0 then invalid_arg "Anneal.search: steps must be positive";
  let nf = Colayout_ir.Program.num_funcs program in
  let current =
    match initial with
    | None -> Array.init nf Fun.id
    | Some o ->
      if Array.length o <> nf then invalid_arg "Anneal.search: initial order length mismatch";
      Array.copy o
  in
  let rng = Prng.create ~seed in
  let eval order = Optimal.miss_ratio_of_function_order ~params program trace order in
  let initial_mr = eval current in
  let cur_mr = ref initial_mr in
  let best = ref (Array.copy current) in
  let best_mr = ref initial_mr in
  (* Temperature scaled to the objective (miss ratios live in [0,1]);
     geometric decay reaches ~1e-3 of the start by the last step. *)
  let t0 = 0.02 in
  let decay = exp (log 1e-3 /. float_of_int steps) in
  let temp = ref t0 in
  for _ = 1 to steps do
    let a = Prng.int rng nf and b = Prng.int rng nf in
    if a <> b then begin
      let proposal = Array.copy current in
      if Prng.bool rng ~p:0.5 then begin
        (* Swap. *)
        proposal.(a) <- current.(b);
        proposal.(b) <- current.(a)
      end
      else begin
        (* Relocate a to position b, shifting the gap. *)
        let v = current.(a) in
        if a < b then Array.blit current (a + 1) proposal a (b - a)
        else Array.blit current b proposal (b + 1) (a - b);
        proposal.(b) <- v
      end;
      let mr = eval proposal in
      let accept =
        mr <= !cur_mr
        || Prng.float rng < exp ((!cur_mr -. mr) /. Float.max 1e-9 !temp)
      in
      if accept then begin
        Array.blit proposal 0 current 0 nf;
        cur_mr := mr;
        if mr < !best_mr then begin
          best_mr := mr;
          best := Array.copy proposal
        end
      end
    end;
    temp := !temp *. decay
  done;
  { order = !best; miss_ratio = !best_mr; steps; improved_from = initial_mr }
