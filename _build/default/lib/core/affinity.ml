open Colayout_trace

type pair_set = {
  pairs : (int * int, unit) Hashtbl.t;
}

let canon x y = if x < y then (x, y) else (y, x)

let is_affine ps x y = x = y || Hashtbl.mem ps.pairs (canon x y)

let pair_list ps =
  Hashtbl.fold (fun k () acc -> k :: acc) ps.pairs [] |> List.sort compare

let require_trimmed t =
  if not (Trim.is_trimmed t) then
    invalid_arg "Affinity: trace must be trimmed (no two consecutive equal blocks)"

(* Witness bookkeeping for the efficient algorithm: for the ordered pair
   (a, b), [sat] counts occurrences of [a] that have some occurrence of [b]
   within the w-window, and [last_occ] is the occurrence index of [a] most
   recently counted (so one occurrence is never counted twice). *)
type wit = {
  mutable sat : int;
  mutable last_occ : int;
}

let affine_pairs trace ~w =
  if w < 1 then invalid_arg "Affinity.affine_pairs: w must be >= 1";
  require_trimmed trace;
  let occ = Trace.occurrences trace in
  let occ_idx = Array.make (Trace.num_symbols trace) 0 in
  let wits : (int * int, wit) Hashtbl.t = Hashtbl.create 4096 in
  let witness a b a_occ =
    let key = (a, b) in
    let rec_ =
      match Hashtbl.find_opt wits key with
      | Some r -> r
      | None ->
        let r = { sat = 0; last_occ = 0 } in
        Hashtbl.replace wits key r;
        r
    in
    if rec_.last_occ < a_occ then begin
      rec_.last_occ <- a_occ;
      rec_.sat <- rec_.sat + 1
    end
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun y ->
      occ_idx.(y) <- occ_idx.(y) + 1;
      let ky = occ_idx.(y) in
      (* Walk the stack top-down. A block [x] at 1-based depth [d] has
         fp<last(x), here> = d + 1, or d if [y]'s previous occurrence lies
         above [x] (then y is already among the d-1 more-recent blocks). *)
      let d = ref 0 in
      let y_seen = ref false in
      Lru_stack.iter_until stack (fun x ->
          incr d;
          if x = y then begin
            y_seen := true;
            true
          end
          else begin
            let fp = !d + if !y_seen then 0 else 1 in
            if fp <= w then begin
              (* This y-occurrence sees x (backward); x's latest occurrence
                 sees y (forward). *)
              witness y x ky;
              witness x y occ_idx.(x)
            end;
            !d < w
          end);
      ignore (Lru_stack.access stack y))
    trace;
  let pairs = Hashtbl.create 1024 in
  Hashtbl.iter
    (fun (a, b) r ->
      if a < b then begin
        let back =
          match Hashtbl.find_opt wits (b, a) with Some r' -> r'.sat | None -> 0
        in
        if r.sat = occ.(a) && back = occ.(b) && occ.(a) > 0 && occ.(b) > 0 then
          Hashtbl.replace pairs (a, b) ()
      end)
    wits;
  { pairs }

let window_footprint trace a b =
  let lo = min a b and hi = max a b in
  if lo < 0 || hi >= Trace.length trace then invalid_arg "Affinity.window_footprint";
  let seen = Hashtbl.create 16 in
  for i = lo to hi do
    Hashtbl.replace seen (Trace.get trace i) ()
  done;
  Hashtbl.length seen

let positions_by_symbol trace =
  let pos = Array.make (Trace.num_symbols trace) [] in
  Trace.iteri (fun i s -> pos.(s) <- i :: pos.(s)) trace;
  Array.map List.rev pos

let affine_pairs_naive trace ~w =
  if w < 1 then invalid_arg "Affinity.affine_pairs_naive: w must be >= 1";
  require_trimmed trace;
  let pos = positions_by_symbol trace in
  let present =
    List.filter (fun s -> pos.(s) <> []) (List.init (Trace.num_symbols trace) Fun.id)
  in
  (* Definition 3, directly: x is satisfied w.r.t. y iff every occurrence of
     x has some occurrence of y with window footprint <= w. The minimum
     footprint is reached at the nearest y occurrence on either side, but we
     simply scan them all — this is the oracle, not the fast path. *)
  let satisfied x y =
    List.for_all
      (fun p -> List.exists (fun q -> window_footprint trace p q <= w) pos.(y))
      pos.(x)
  in
  let pairs = Hashtbl.create 64 in
  List.iter
    (fun x ->
      List.iter
        (fun y -> if x < y && satisfied x y && satisfied y x then Hashtbl.replace pairs (x, y) ())
        present)
    present;
  { pairs }

let partition trace ~w =
  require_trimmed trace;
  let ps = affine_pairs trace ~w in
  let first = Trace.first_occurrence trace in
  let present =
    List.init (Trace.num_symbols trace) Fun.id
    |> List.filter (fun s -> first.(s) >= 0)
    |> List.sort (fun a b -> compare first.(a) first.(b))
  in
  (* Algorithm 1's greedy grouping: each block joins the first existing group
     in which it is affine with every member. *)
  let groups : int list list ref = ref [] in
  List.iter
    (fun blk ->
      let rec place = function
        | [] -> [ [ blk ] ]
        | g :: rest ->
          if List.for_all (fun m -> is_affine ps blk m) g then (blk :: g) :: rest
          else g :: place rest
      in
      groups := place !groups)
    present;
  List.map List.rev !groups
