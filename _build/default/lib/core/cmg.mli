(** Conflict Miss Graph (Kalamatianos & Kaeli, HPCA 1998) — the paper's
    Related Work names it as TRG's sibling: "A similar model is the Conflict
    Miss Graph (CMG), used for function reordering ... TRG and CMG are to
    reduce cache conflicts".

    CMG refines TRG's conflict counting with code size: when two code
    blocks' occurrences interleave, the damage they can do to each other is
    bounded by the cache lines of the {e smaller} one (each of its lines can
    be evicted and refetched once per interleaving, in both directions). So
    where TRG adds 1 per interleaved reuse, CMG adds
    [2 * min(lines x, lines y)].

    The result is an ordinary weighted graph, reusable with the paper's
    {!Trg_reduce} slot assignment — making CMG-reduction a drop-in fifth
    temporal optimizer. *)

val build :
  ?window:int ->
  sizes:int array ->
  line_bytes:int ->
  Colayout_trace.Trace.t ->
  Trg.t
(** [sizes] in bytes per symbol; [window] as for {!Trg.build}. The trace
    must be trimmed. @raise Invalid_argument on size/universe mismatch. *)

val layout_for :
  ?config:Optimizer.config ->
  granularity:[ `Function | `Block ] ->
  Colayout_ir.Program.t ->
  Optimizer.analysis ->
  Layout.t
(** CMG analysis + TRG-style reduction at either granularity, using actual
    code sizes (unlike the paper's TRG, CMG was defined with sizes and we
    have them). *)
