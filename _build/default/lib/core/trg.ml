open Colayout_trace

type t = {
  num_nodes : int;
  (* Adjacency: adj.(x) maps neighbour y to the edge weight. Kept symmetric. *)
  adj : (int, int) Hashtbl.t array;
}

let num_nodes t = t.num_nodes

let weight t x y =
  if x = y then 0
  else
    match Hashtbl.find_opt t.adj.(x) y with
    | Some w -> w
    | None -> 0

let bump t x y dw =
  let upd a b =
    let cur = Option.value ~default:0 (Hashtbl.find_opt t.adj.(a) b) in
    Hashtbl.replace t.adj.(a) b (cur + dw)
  in
  upd x y;
  upd y x

let build ?(window = max_int) trace =
  if window < 1 then invalid_arg "Trg.build: window must be >= 1";
  if not (Trim.is_trimmed trace) then invalid_arg "Trg.build: trace must be trimmed";
  let t =
    { num_nodes = Trace.num_symbols trace; adj = Array.init (Trace.num_symbols trace) (fun _ -> Hashtbl.create 8) }
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun x ->
      (* If x recurs within the window, every block above it on the stack
         occurred between its two successive occurrences: one potential
         conflict each. *)
      let d = ref 0 in
      let betweens = ref [] in
      let found = ref false in
      Lru_stack.iter_until stack (fun y ->
          incr d;
          if y = x then begin
            found := true;
            false
          end
          else if !d >= window then false
          else begin
            betweens := y :: !betweens;
            true
          end);
      (* Only count when x was actually found within the window: the walk
         must have stopped on x, not on depth exhaustion. *)
      if !found then List.iter (fun y -> bump t x y 1) !betweens;
      ignore (Lru_stack.access stack x))
    trace;
  t

let edges t =
  let acc = ref [] in
  Array.iteri
    (fun x h -> Hashtbl.iter (fun y w -> if x < y then acc := (x, y, w) :: !acc) h)
    t.adj;
  List.sort
    (fun (x1, y1, w1) (x2, y2, w2) ->
      if w1 <> w2 then compare w2 w1 else compare (x1, y1) (x2, y2))
    !acc

let degree t x = Hashtbl.length t.adj.(x)

let of_edges ~num_nodes edge_list =
  let t = { num_nodes; adj = Array.init num_nodes (fun _ -> Hashtbl.create 8) } in
  List.iter
    (fun (x, y, w) ->
      if x = y then invalid_arg "Trg.of_edges: self loop";
      if w <= 0 then invalid_arg "Trg.of_edges: non-positive weight";
      if x < 0 || y < 0 || x >= num_nodes || y >= num_nodes then
        invalid_arg "Trg.of_edges: node out of range";
      bump t x y w)
    edge_list;
  t

let recommended_window ~params ~block_bytes ~cache_multiplier =
  if block_bytes <= 0 then invalid_arg "Trg.recommended_window";
  let c = float_of_int params.Colayout_cache.Params.size_bytes *. cache_multiplier in
  max 1 (int_of_float (c /. float_of_int block_bytes))
