(** Miss-ratio curves from one stack-distance pass (Mattson et al. 1970).

    The inclusion property of LRU means a single stack simulation yields the
    miss ratio of {e every} fully-associative cache size at once. Applied to
    the cache-line trace a layout induces, the curve shows where a program
    sits relative to any capacity — which working-set knee the 32 KB L1I
    cuts through, and how a layout optimization moves the knee left. This is
    the measurement-side complement of the {!Footprint} theory curve. *)

type t

val of_line_trace : Colayout_trace.Trace.t -> t
(** One stack-distance pass over a line trace (see {!Layout.line_trace}). *)

val of_layout :
  params:Colayout_cache.Params.t ->
  layout:Layout.t ->
  Colayout_trace.Trace.t ->
  t
(** Convenience: expand a block trace under a layout first. *)

val miss_ratio : t -> capacity_lines:int -> float
(** Fully-associative LRU miss ratio at a capacity (cold misses count). *)

val curve : t -> capacities:int list -> (int * float) list

val working_set_knee : t -> threshold:float -> int
(** Smallest capacity whose miss ratio is [<= threshold]; the trace's
    distinct-line count if none is. *)

val accesses : t -> int

val distinct_lines : t -> int
