lib/core/intra_reorder.mli: Colayout_ir Colayout_trace Layout Optimizer
