lib/core/mrc.mli: Colayout_cache Colayout_trace Layout
