lib/core/anneal.mli: Colayout_cache Colayout_ir Colayout_trace
