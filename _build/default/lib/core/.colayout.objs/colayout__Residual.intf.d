lib/core/residual.mli: Colayout_ir Colayout_trace
