lib/core/cmg.mli: Colayout_ir Colayout_trace Layout Optimizer Trg
