lib/core/trg.mli: Colayout_cache Colayout_trace
