lib/core/optimal.mli: Colayout_cache Colayout_ir Colayout_trace
