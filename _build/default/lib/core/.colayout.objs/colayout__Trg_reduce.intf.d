lib/core/trg_reduce.mli: Colayout_cache Trg
