lib/core/footprint.mli: Colayout_trace
