lib/core/pipeline.ml: Colayout_cache Colayout_exec Colayout_trace Footprint Layout List Optimizer Trace
