lib/core/affinity_hierarchy.ml: Affinity Array Colayout_trace Format Fun List Trace Trim
