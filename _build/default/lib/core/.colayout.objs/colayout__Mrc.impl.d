lib/core/mrc.ml: Colayout_trace Layout List Stack_dist
