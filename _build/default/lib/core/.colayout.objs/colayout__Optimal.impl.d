lib/core/optimal.ml: Array Colayout_cache Colayout_ir Colayout_trace Fun Layout Option Printf Program
