lib/core/static_layout.mli: Colayout_ir Layout
