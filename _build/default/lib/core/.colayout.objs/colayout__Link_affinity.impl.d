lib/core/link_affinity.ml: Affinity Affinity_hierarchy Array Colayout_trace Fun Hashtbl List Trace Trim
