lib/core/miss_prob.ml: Footprint
