lib/core/cmg.ml: Array Colayout_cache Colayout_ir Colayout_trace Hashtbl Layout List Lru_stack Optimizer Option Program Trace Trg Trg_reduce Trim
