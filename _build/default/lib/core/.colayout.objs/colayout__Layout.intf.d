lib/core/layout.mli: Colayout_cache Colayout_exec Colayout_ir Colayout_trace
