lib/core/trg_place.ml: Array Colayout_cache Colayout_ir Fun Layout List Optimizer Program Size_model Trg
