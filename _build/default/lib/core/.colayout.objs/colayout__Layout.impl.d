lib/core/layout.ml: Array Colayout_cache Colayout_exec Colayout_ir Colayout_trace Fun List Printf Program Size_model Trace
