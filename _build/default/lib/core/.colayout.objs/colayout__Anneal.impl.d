lib/core/anneal.ml: Array Colayout_ir Colayout_util Float Fun Optimal Prng
