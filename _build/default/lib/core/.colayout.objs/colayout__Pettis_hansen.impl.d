lib/core/pettis_hansen.ml: Colayout_ir Colayout_util Hashtbl Int_vec Layout List Option
