lib/core/affinity.ml: Array Colayout_trace Fun Hashtbl List Lru_stack Trace Trim
