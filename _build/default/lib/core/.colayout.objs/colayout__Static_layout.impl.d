lib/core/static_layout.ml: Array Cfg Colayout_ir Hashtbl Layout List Option Pettis_hansen Program Types
