lib/core/residual.ml: Array Builder Colayout_ir Colayout_trace Program Trace Types Validate
