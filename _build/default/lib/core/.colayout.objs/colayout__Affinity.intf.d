lib/core/affinity.mli: Colayout_trace
