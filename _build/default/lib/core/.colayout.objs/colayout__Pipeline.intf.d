lib/core/pipeline.mli: Colayout_cache Colayout_exec Colayout_ir Colayout_trace Footprint Layout Optimizer
