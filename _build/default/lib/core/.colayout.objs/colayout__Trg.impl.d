lib/core/trg.ml: Array Colayout_cache Colayout_trace Hashtbl List Lru_stack Option Trace Trim
