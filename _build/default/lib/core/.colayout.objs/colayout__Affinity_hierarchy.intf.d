lib/core/affinity_hierarchy.mli: Colayout_trace Format
