lib/core/trg_reduce.ml: Array Colayout_cache Colayout_util Hashtbl Heap List Option Params Trg Vec
