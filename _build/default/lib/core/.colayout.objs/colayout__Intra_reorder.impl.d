lib/core/intra_reorder.ml: Array Colayout_ir Colayout_trace Layout List Optimizer Program
