lib/core/optimizer.ml: Affinity_hierarchy Colayout_cache Colayout_exec Colayout_trace Layout List Prune Trace Trg Trg_reduce Trim
