lib/core/link_affinity.mli: Affinity_hierarchy Colayout_trace
