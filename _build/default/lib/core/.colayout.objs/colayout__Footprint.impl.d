lib/core/footprint.ml: Array Colayout_trace Float Hashtbl List Option Trace
