lib/core/optimizer.mli: Colayout_cache Colayout_exec Colayout_ir Colayout_trace Layout
