lib/core/miss_prob.mli: Footprint
