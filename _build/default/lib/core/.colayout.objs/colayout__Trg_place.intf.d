lib/core/trg_place.mli: Colayout_cache Colayout_ir Layout Optimizer Trg
