lib/core/pettis_hansen.mli: Colayout_ir Colayout_util Layout
