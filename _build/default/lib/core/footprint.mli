(** All-window average footprint (§II-A).

    The footprint [fp(w)] is the average number of distinct blocks touched
    over all length-[w] windows of the trace. The paper's defensiveness /
    politeness formulation (Eqs 1–2) is stated in terms of footprints, using
    the higher-order theory of locality (Xiang et al.) in which reuse
    distance can be recovered from the footprint curve.

    {!curve} computes the whole curve in one linear pass from the reuse-time
    histogram plus first/last access times:

    [fp(w) = m - (Σ_{t>w} (t-w)·rt(t) + Σ_i max(f_i-w,0) + Σ_i max(l_i-w,0))
             / (n-w+1)]

    where [m] = distinct blocks, [n] = trace length, [rt] = reuse-time
    histogram, [f_i] = first access time of block [i] (1-based) and [l_i] =
    reverse last-access time. {!average_naive} is the O(N·w) oracle. *)

type t

val curve : Colayout_trace.Trace.t -> t

val fp : t -> int -> float
(** [fp c w] for [w in [0, n]]; [fp 0 = 0]; values outside clamp.
    Monotone non-decreasing and concave. *)

val distinct : t -> int

val trace_length : t -> int

val average_naive : Colayout_trace.Trace.t -> w:int -> float
(** Direct enumeration of all [n-w+1] windows (test oracle).
    @raise Invalid_argument unless [1 <= w <= n]. *)

val inverse : t -> float -> int
(** [inverse c target] is the smallest window [w] with [fp c w >= target],
    or the trace length if the footprint never reaches it. *)

val deriv : t -> int -> float
(** Forward difference [fp (w+1) - fp w]: the miss-ratio read-out of the
    higher-order theory (misses per window-time at window [w]). *)
