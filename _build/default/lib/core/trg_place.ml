open Colayout_ir
module P = Colayout_cache.Params

type placement = {
  base_addr : int array;
  total_bytes : int;
  padding_bytes : int;
}

(* Circular overlap of two set intervals [a, a+la) and [b, b+lb) on a ring
   of [s] sets. *)
let ring_overlap ~s a la b lb =
  let la = min la s and lb = min lb s in
  (* Linear intersection helper on the unrolled ring. *)
  let inter x1 l1 x2 l2 = max 0 (min (x1 + l1) (x2 + l2) - max x1 x2) in
  inter a la b lb + inter a la (b + s) lb + inter (a + s) la b lb

let place trg ~sizes ~params =
  let n = Trg.num_nodes trg in
  if Array.length sizes <> n then invalid_arg "Trg_place.place: sizes length mismatch";
  let s = params.P.num_sets in
  let line = params.P.line_bytes in
  let base_addr = Array.make n (-1) in
  let set_span = Array.map (fun sz -> max 1 ((max 1 sz + line - 1) / line)) sizes in
  let cursor = ref 0 in
  let padding = ref 0 in
  let place_node v =
    if base_addr.(v) < 0 then begin
      let nv = set_span.(v) in
      (* Cost of starting v at set offset [o]: edge-weighted overlap with
         every placed neighbour. *)
      let cost o =
        let total = ref 0 in
        for u = 0 to n - 1 do
          let w = Trg.weight trg v u in
          if w > 0 && base_addr.(u) >= 0 then begin
            let bu = base_addr.(u) / line mod s in
            total := !total + (w * ring_overlap ~s o nv bu set_span.(u))
          end
        done;
        !total
      in
      (* Scan candidate offsets starting from the natural (no-padding)
         position so that zero-cost ties cost no padding. *)
      let natural = (!cursor + line - 1) / line mod s in
      let best = ref natural and best_cost = ref max_int in
      for k = 0 to s - 1 do
        let o = (natural + k) mod s in
        let c = cost o in
        if c < !best_cost then begin
          best := o;
          best_cost := c
        end
      done;
      let o = !best in
      let cur_line = (!cursor + line - 1) / line in
      let line_at = cur_line + ((o - (cur_line mod s)) mod s + s) mod s in
      let addr = line_at * line in
      padding := !padding + (addr - !cursor);
      base_addr.(v) <- addr;
      cursor := addr + max 1 sizes.(v)
    end
  in
  List.iter
    (fun (x, y, _) ->
      place_node x;
      place_node y)
    (Trg.edges trg);
  (* Isolated nodes follow unpadded, in id order. *)
  for v = 0 to n - 1 do
    if base_addr.(v) < 0 then begin
      base_addr.(v) <- !cursor;
      cursor := !cursor + max 1 sizes.(v)
    end
  done;
  { base_addr; total_bytes = !cursor; padding_bytes = !padding }

let layout_of_function_placement program placement =
  let nf = Program.num_funcs program in
  if Array.length placement.base_addr <> nf then
    invalid_arg "Trg_place.layout_of_function_placement: placement is not per-function";
  let nb = Program.num_blocks program in
  let addr = Array.make nb 0 in
  let bytes = Array.make nb 0 in
  let instr_counts = Array.make nb 0 in
  let added_jumps = ref 0 in
  (* Functions in address order; blocks keep intra-procedural order. *)
  let fids = List.init nf Fun.id in
  let by_addr =
    List.sort (fun a b -> compare placement.base_addr.(a) placement.base_addr.(b)) fids
  in
  let order = Array.make nb 0 in
  let pos = ref 0 in
  List.iter
    (fun fid ->
      let f = Program.func program fid in
      let cursor = ref placement.base_addr.(fid) in
      Array.iteri
        (fun i bid ->
          let b = Program.block program bid in
          let next = if i + 1 < Array.length f.blocks then Some f.blocks.(i + 1) else None in
          let needs_jump =
            match Program.fallthrough_target program bid with
            | None -> false
            | Some target -> next <> Some target
          in
          if needs_jump then incr added_jumps;
          let extra = if needs_jump then Size_model.jump_bytes else 0 in
          addr.(bid) <- !cursor;
          bytes.(bid) <- b.size_bytes + extra;
          instr_counts.(bid) <- b.instr_count;
          cursor := !cursor + bytes.(bid);
          order.(!pos) <- bid;
          incr pos)
        f.blocks)
    by_addr;
  {
    Layout.order;
    addr;
    bytes;
    instr_counts;
    (* Padded segments overrun the nominal function size by the fall-through
       fixup bytes; account for the true end. *)
    total_bytes =
      Array.fold_left max placement.total_bytes
        (Array.mapi (fun bid a -> a + bytes.(bid)) addr);
    added_jumps = !added_jumps;
  }

(* The realized size of a function under intra-procedural original order:
   nominal block bytes plus the jump fixups for fall-throughs its own block
   order breaks. Placement must use this, or padded bases could overlap. *)
let realized_func_size program fid =
  let f = Program.func program fid in
  let n = Array.length f.blocks in
  let total = ref 0 in
  Array.iteri
    (fun i bid ->
      let b = Program.block program bid in
      let next = if i + 1 < n then Some f.blocks.(i + 1) else None in
      let needs_jump =
        match Program.fallthrough_target program bid with
        | None -> false
        | Some target -> next <> Some target
      in
      total := !total + b.size_bytes + if needs_jump then Size_model.jump_bytes else 0)
    f.blocks;
  !total

let layout_for ?(config = Optimizer.default_config) program analysis =
  let sizes =
    Array.init (Program.num_funcs program) (fun fid -> realized_func_size program fid)
  in
  let window =
    Trg.recommended_window ~params:config.Optimizer.params
      ~block_bytes:config.Optimizer.func_block_bytes
      ~cache_multiplier:config.Optimizer.cache_multiplier
  in
  let trg = Trg.build ~window analysis.Optimizer.fn in
  let placement = place trg ~sizes ~params:config.Optimizer.params in
  layout_of_function_placement program placement
