(** Residual code elimination — the cleanup half of the paper's
    basic-block-reordering post-processing (§II-E: "the post-processing step
    is responsible for sanity check, residual code elimination and other
    cleanup work").

    Removes code that no control path can reach: blocks no reachable
    terminator targets, and functions that are never called. Statically
    unreachable code can never execute under any input, so elimination
    preserves semantics exactly; it shrinks the address space the layout
    must cover, which is itself a (small) locality win. *)

type report = {
  removed_blocks : int;
  removed_bytes : int;
  removed_funcs : int;
  kept_blocks : int;
}

val eliminate : Colayout_ir.Program.t -> Colayout_ir.Program.t * int array * report
(** [eliminate p] returns [(p', block_map, report)] where [block_map.(old)]
    is the new block id or [-1] if removed. The main function is always
    kept. The result is validated. *)

val map_trace :
  block_map:int array -> Colayout_trace.Trace.t -> num_symbols:int -> Colayout_trace.Trace.t
(** Translate a trace of old block ids into new ids (for comparing runs
    across elimination). @raise Invalid_argument if the trace mentions a
    removed block. *)
