(** Gloy & Smith's original TRG placement, with padding.

    The paper's TRG *reduction* (§II-C) finds a new code order; the original
    TPCM procedure instead leaves the order free and chooses a cache-relative
    *alignment* for each function, inserting gaps so that functions with
    heavy temporal conflicts occupy disjoint cache sets. This module
    implements that original scheme so the two can be compared (the
    order-vs-padding ablation in the benchmark harness): padding removes
    conflicts without moving code but inflates the code segment, costing
    capacity and fetch footprint.

    Greedy algorithm: process edges heaviest-first; each unplaced endpoint
    picks the starting cache set that minimizes the edge-weighted set overlap
    with its already-placed neighbours, and is laid at the next address with
    that set alignment (the gap is the padding). *)

type placement = {
  base_addr : int array;  (** Per node; -1 for nodes never placed. *)
  total_bytes : int;  (** End of the padded segment. *)
  padding_bytes : int;  (** Total padding inserted. *)
}

val place :
  Trg.t ->
  sizes:int array ->
  params:Colayout_cache.Params.t ->
  placement
(** [sizes] is indexed by node id (bytes). Nodes without TRG edges are
    appended unpadded after the placed ones, in id order. *)

val layout_of_function_placement :
  Colayout_ir.Program.t -> placement -> Layout.t
(** Realize a function-level placement as a block-level layout: each
    function's blocks are laid contiguously from its placed base; functions
    keep their intra-procedural order. Fall-through fixups are charged as in
    {!Layout.of_block_order}. *)

val layout_for :
  ?config:Optimizer.config ->
  Colayout_ir.Program.t ->
  Optimizer.analysis ->
  Layout.t
(** The full padded-TPCM function optimizer: TRG on the function trace, then
    padded placement. *)
