open Colayout_ir

type report = {
  removed_blocks : int;
  removed_bytes : int;
  removed_funcs : int;
  kept_blocks : int;
}

let eliminate program =
  let reachable = Validate.reachable_blocks program in
  let nf = Program.num_funcs program in
  let nb = Program.num_blocks program in
  (* A function survives if its entry is reachable; main always does. *)
  let keep_func =
    Array.init nf (fun fid ->
        fid = (Program.main program).fid || reachable.((Program.func program fid).entry))
  in
  let b = Builder.create ~name:(Program.name program ^ ".stripped") () in
  let func_map = Array.make nf (-1) in
  let block_map = Array.make nb (-1) in
  (* Declare surviving functions and blocks first (ids are needed to remap
     forward references), then fill bodies. *)
  Array.iter
    (fun (f : Program.func) ->
      if keep_func.(f.fid) then begin
        let fid' = Builder.func b f.fname in
        func_map.(f.fid) <- fid';
        Array.iter
          (fun bid ->
            if reachable.(bid) then
              block_map.(bid) <- Builder.block b fid' (Program.block program bid).name)
          f.blocks
      end)
    (Program.funcs program);
  let remap_block bid =
    let b' = block_map.(bid) in
    if b' < 0 then invalid_arg "Residual: reachable block targets a removed block";
    b'
  in
  Array.iteri
    (fun bid new_id ->
      if new_id >= 0 then begin
        let blk = Program.block program bid in
        let term =
          match blk.term with
          | Types.Jump x -> Types.Jump (remap_block x)
          | Types.Branch { cond; if_true; if_false } ->
            Types.Branch
              { cond; if_true = remap_block if_true; if_false = remap_block if_false }
          | Types.Switch { sel; targets; default } ->
            Types.Switch
              { sel; targets = Array.map remap_block targets; default = remap_block default }
          | Types.Call { callee; return_to } ->
            let callee' = func_map.(callee) in
            if callee' < 0 then invalid_arg "Residual: reachable call to a removed function";
            Types.Call { callee = callee'; return_to = remap_block return_to }
          | (Types.Return | Types.Halt) as t -> t
        in
        Builder.set_body b new_id blk.instrs term
      end)
    block_map;
  Builder.set_main b func_map.((Program.main program).fid);
  let stripped = Builder.finish b in
  let removed_bytes =
    Array.fold_left
      (fun acc (blk : Program.block) ->
        if block_map.(blk.id) < 0 then acc + blk.size_bytes else acc)
      0 (Program.blocks program)
  in
  let kept_blocks = Program.num_blocks stripped in
  ( stripped,
    block_map,
    {
      removed_blocks = nb - kept_blocks;
      removed_bytes;
      removed_funcs = nf - Program.num_funcs stripped;
      kept_blocks;
    } )

let map_trace ~block_map trace ~num_symbols =
  let open Colayout_trace in
  let out = Trace.create ~name:(Trace.name trace ^ ".mapped") ~num_symbols () in
  Trace.iter
    (fun s ->
      let s' = block_map.(s) in
      if s' < 0 then invalid_arg "Residual.map_trace: trace mentions a removed block";
      Trace.push out s')
    trace;
  out
