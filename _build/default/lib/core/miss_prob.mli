(** The paper's formal model of defensiveness and politeness (§II-A).

    Capacity interference in shared cache obeys

    {v P(self.miss) = P(self.FP + peer.FP >= C)        (Eq 1) v}

    and, specialized to the instruction cache of size [C'],

    {v P(self.icache.miss) = P(self.FP.inst + peer.FP.inst >= C')   (Eq 2) v}

    Operationally (higher-order theory of locality): a program's miss ratio
    at capacity [C] is the derivative of its footprint curve at the window
    where the footprint fills [C]; under co-run the two programs' footprints
    over a common window share the capacity. All capacities below are in the
    same unit as the traces' symbols — feed cache-line traces to model a real
    cache (see {!Layout.line_trace}).

    From these the paper's three benefit classes are quantified: locality
    (solo miss reduction), defensiveness (self miss reduction under a peer),
    and politeness (peer miss reduction caused by self). *)

type t = Footprint.t

val solo_miss_ratio : t -> capacity:int -> float
(** [fp'(w)] at the window where the footprint reaches [capacity]; 0 when
    the whole footprint fits. *)

val solo_window : t -> capacity:int -> int
(** The smallest window at which the footprint reaches [capacity] (trace
    length when it never does). *)

val split_window : t -> t -> capacity:int -> int
(** The shared window [w*] solving [fp_self(w) + fp_peer(w) = capacity];
    always [<= solo_window] of either program. *)

val corun_miss_ratios : t -> t -> capacity:int -> float * float
(** [(self, peer)] predicted miss ratios when the two programs share
    [capacity], running interleaved with equal window progress: the split
    window [w*] solves [fp_self(w) + fp_peer(w) = capacity]. *)

type exposure = {
  solo : float;  (** Predicted solo miss ratio (locality). *)
  corun : float;  (** Predicted miss ratio against the peer. *)
  defensiveness : float;
      (** [corun - solo]: the additional misses the peer inflicts; smaller
          means more defensive. *)
  politeness : float;
      (** Additional misses the peer suffers because of us: peer's corun
          ratio minus peer's solo ratio; smaller means more polite. *)
}

val exposure : self:t -> peer:t -> capacity:int -> exposure

val footprint_fraction : t -> q:float -> float
(** The footprint over a window of [q · n] trace positions ([q] in (0,1]) —
    a compact "FP" summary statistic used in reports. *)
