(** Temporal-relationship graph (Definition 6, after Gloy & Smith).

    Nodes are code blocks; an undirected edge's weight counts potential cache
    conflicts: the number of times two successive occurrences of one endpoint
    are interleaved with at least one occurrence of the other (and vice
    versa). Construction follows the original algorithm with the paper's
    hash-table-plus-linked-list speedup: one LRU-stack pass; when a block
    recurs within the analysis window, every distinct block accessed in
    between gets its edge incremented.

    The window [q] bounds how far apart (in distinct blocks) two successive
    occurrences may be and still count — Gloy & Smith recommend a window of
    twice the cache size, which {!recommended_window} computes. *)

type t

val build : ?window:int -> Colayout_trace.Trace.t -> t
(** [window] in blocks; default unbounded. The trace must be trimmed. *)

val num_nodes : t -> int
(** Size of the symbol universe (not all need occur). *)

val weight : t -> int -> int -> int
(** Symmetric; 0 when no edge. *)

val edges : t -> (int * int * int) list
(** [(x, y, w)] with [x < y], sorted by decreasing weight then ids. *)

val degree : t -> int -> int

val of_edges : num_nodes:int -> (int * int * int) list -> t
(** Build directly from weighted edges (for tests and the Figure 2 worked
    example). @raise Invalid_argument on self loops, non-positive weights or
    out-of-range nodes. *)

val recommended_window :
  params:Colayout_cache.Params.t -> block_bytes:int -> cache_multiplier:float -> int
(** Number of same-size blocks spanned by [cache_multiplier] × cache size:
    the 2C window of §II-C when [cache_multiplier = 2.0]. *)
