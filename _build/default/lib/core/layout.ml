open Colayout_ir

type t = {
  order : int array;
  addr : int array;
  bytes : int array;
  instr_counts : int array;
  total_bytes : int;
  added_jumps : int;
}

let check_permutation what n order =
  if Array.length order <> n then
    invalid_arg (Printf.sprintf "Layout: %s order has %d entries, expected %d" what
                   (Array.length order) n);
  let seen = Array.make n false in
  Array.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg (Printf.sprintf "Layout: bad %s id %d" what i);
      if seen.(i) then invalid_arg (Printf.sprintf "Layout: duplicate %s id %d" what i);
      seen.(i) <- true)
    order

let of_block_order ?(function_stubs = false) program order =
  let nb = Program.num_blocks program in
  check_permutation "block" nb order;
  let addr = Array.make nb 0 in
  let bytes = Array.make nb 0 in
  let instr_counts = Array.make nb 0 in
  let added_jumps = ref 0 in
  let cursor = ref 0 in
  Array.iteri
    (fun pos bid ->
      let b = Program.block program bid in
      let next = if pos + 1 < nb then Some order.(pos + 1) else None in
      let needs_jump =
        match Program.fallthrough_target program bid with
        | None -> false
        | Some target -> next <> Some target
      in
      let stub =
        function_stubs && bid = (Program.func program b.fn).entry
      in
      let extra_bytes =
        (if needs_jump then Size_model.jump_bytes else 0)
        + if stub then Size_model.jump_bytes else 0
      in
      if needs_jump then incr added_jumps;
      if stub then incr added_jumps;
      addr.(bid) <- !cursor;
      bytes.(bid) <- b.size_bytes + extra_bytes;
      (* Added unconditional direct jumps cost fetch bytes but no issue
         slots: a modern front-end folds them via the BTB. The paper's
         basic-block reordering likewise shows no jump-overhead slowdowns. *)
      instr_counts.(bid) <- b.instr_count;
      cursor := !cursor + bytes.(bid))
    order;
  {
    order = Array.copy order;
    addr;
    bytes;
    instr_counts;
    total_bytes = !cursor;
    added_jumps = !added_jumps;
  }

let block_order_of_function_order program forder =
  let order = Array.make (Program.num_blocks program) 0 in
  let pos = ref 0 in
  Array.iter
    (fun fid ->
      Array.iter
        (fun bid ->
          order.(!pos) <- bid;
          incr pos)
        (Program.func program fid).blocks)
    forder;
  order

let of_function_order program forder =
  check_permutation "function" (Program.num_funcs program) forder;
  of_block_order program (block_order_of_function_order program forder)

let original program =
  of_function_order program (Array.init (Program.num_funcs program) Fun.id)

let to_icache t : Colayout_cache.Icache.layout = { addr = t.addr; bytes = t.bytes }

let to_smt_code t : Colayout_exec.Smt.code =
  { layout = to_icache t; instr_counts = t.instr_counts }

let line_trace ~params ~layout trace =
  let open Colayout_trace in
  let max_line =
    Colayout_cache.Params.line_of_addr params (max 1 layout.total_bytes - 1) + 1
  in
  let out = Trace.create ~name:(Trace.name trace ^ ".lines") ~num_symbols:(max 1 max_line) () in
  Trace.iter
    (fun bid ->
      let first, last =
        Colayout_cache.Params.lines_spanned params ~addr:layout.addr.(bid)
          ~bytes:layout.bytes.(bid)
      in
      for line = first to last do
        Trace.push out line
      done)
    trace;
  out

let complete_order n ~hot ~universe_in_order what =
  let seen = Array.make n false in
  List.iter
    (fun i ->
      if i < 0 || i >= n then invalid_arg (Printf.sprintf "Layout: bad hot %s id %d" what i);
      if seen.(i) then invalid_arg (Printf.sprintf "Layout: duplicate hot %s id %d" what i);
      seen.(i) <- true)
    hot;
  let out = Array.make n 0 in
  let pos = ref 0 in
  List.iter
    (fun i ->
      out.(!pos) <- i;
      incr pos)
    hot;
  Array.iter
    (fun i ->
      if not seen.(i) then begin
        out.(!pos) <- i;
        incr pos
      end)
    universe_in_order;
  out

let block_order_of_hot_list program ~hot =
  let nb = Program.num_blocks program in
  (* Original order = blocks grouped by function in declaration order. *)
  let original_order = block_order_of_function_order program (Array.init (Program.num_funcs program) Fun.id) in
  complete_order nb ~hot ~universe_in_order:original_order "block"

let function_order_of_hot_list program ~hot =
  let nf = Program.num_funcs program in
  complete_order nf ~hot ~universe_in_order:(Array.init nf Fun.id) "function"
