open Colayout_trace

type t = {
  result : Stack_dist.result;
}

let of_line_trace trace = { result = Stack_dist.run trace }

let of_layout ~params ~layout trace =
  of_line_trace (Layout.line_trace ~params ~layout trace)

let miss_ratio t ~capacity_lines =
  Stack_dist.miss_ratio_at t.result ~capacity:capacity_lines

let curve t ~capacities =
  List.map (fun c -> (c, miss_ratio t ~capacity_lines:c)) capacities

let distinct_lines t = t.result.Stack_dist.distinct

let accesses t = t.result.Stack_dist.accesses

let working_set_knee t ~threshold =
  if threshold < 0.0 || threshold > 1.0 then invalid_arg "Mrc.working_set_knee";
  (* Miss ratio is non-increasing in capacity (LRU inclusion), so binary
     search the knee. *)
  let hi = max 1 (distinct_lines t) in
  if miss_ratio t ~capacity_lines:hi > threshold then hi
  else begin
    let lo = ref 1 and hi = ref hi in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if miss_ratio t ~capacity_lines:mid <= threshold then hi := mid else lo := mid + 1
    done;
    !lo
  end
