open Colayout_trace

let build ?(window = max_int) ~sizes ~line_bytes trace =
  if line_bytes <= 0 then invalid_arg "Cmg.build: line_bytes must be positive";
  if Array.length sizes <> Trace.num_symbols trace then
    invalid_arg "Cmg.build: sizes length must match the trace universe";
  if not (Trim.is_trimmed trace) then invalid_arg "Cmg.build: trace must be trimmed";
  let lines_of s = max 1 ((max 1 sizes.(s) + line_bytes - 1) / line_bytes) in
  (* Same stack walk as TRG construction, but accumulate size-aware
     weights into an edge list and materialize once at the end. *)
  let weights : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let bump x y w =
    let key = if x < y then (x, y) else (y, x) in
    Hashtbl.replace weights key (w + Option.value ~default:0 (Hashtbl.find_opt weights key))
  in
  let stack = Lru_stack.create () in
  Trace.iter
    (fun x ->
      let d = ref 0 in
      let betweens = ref [] in
      let found = ref false in
      Lru_stack.iter_until stack (fun y ->
          incr d;
          if y = x then begin
            found := true;
            false
          end
          else if !d >= window then false
          else begin
            betweens := y :: !betweens;
            true
          end);
      if !found then
        List.iter (fun y -> bump x y (2 * min (lines_of x) (lines_of y))) !betweens;
      ignore (Lru_stack.access stack x))
    trace;
  Trg.of_edges ~num_nodes:(Trace.num_symbols trace)
    (Hashtbl.fold (fun (x, y) w acc -> (x, y, w) :: acc) weights [])

let layout_for ?(config = Optimizer.default_config) ~granularity program analysis =
  let open Colayout_ir in
  let params = config.Optimizer.params in
  let line_bytes = params.Colayout_cache.Params.line_bytes in
  match granularity with
  | `Function ->
    let sizes =
      Array.init (Program.num_funcs program) (fun fid -> Program.func_size_bytes program fid)
    in
    let window =
      Trg.recommended_window ~params ~block_bytes:config.Optimizer.func_block_bytes
        ~cache_multiplier:config.Optimizer.cache_multiplier
    in
    let g = build ~window ~sizes ~line_bytes analysis.Optimizer.fn in
    let slots =
      Trg_reduce.slots_for ~params ~block_bytes:config.Optimizer.func_block_bytes
        ~cache_multiplier:config.Optimizer.cache_multiplier
    in
    let hot = (Trg_reduce.reduce g ~slots).Trg_reduce.order in
    Layout.of_function_order program (Layout.function_order_of_hot_list program ~hot)
  | `Block ->
    let sizes =
      Array.map (fun (b : Program.block) -> b.size_bytes) (Program.blocks program)
    in
    let window =
      Trg.recommended_window ~params ~block_bytes:config.Optimizer.bb_block_bytes
        ~cache_multiplier:config.Optimizer.cache_multiplier
    in
    let g = build ~window ~sizes ~line_bytes analysis.Optimizer.bb in
    let slots =
      Trg_reduce.slots_for ~params ~block_bytes:config.Optimizer.bb_block_bytes
        ~cache_multiplier:config.Optimizer.cache_multiplier
    in
    let hot = (Trg_reduce.reduce g ~slots).Trg_reduce.order in
    Layout.of_block_order ~function_stubs:true program
      (Layout.block_order_of_hot_list program ~hot)
