open Colayout_trace

(* Suffix-sum table over a sparse non-negative integer distribution: answers
   [sum_{v > w} (v - w) * count(v)] in O(log bins). *)
type tail = {
  vals : int array; (* ascending distinct values *)
  cnt_suffix : int array; (* cnt_suffix.(i) = sum of counts for vals.(i..) *)
  weighted_suffix : float array; (* sum of v * count(v) for vals.(i..) *)
}

let tail_of_assoc assoc =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) assoc in
  let vals = Array.of_list (List.map fst sorted) in
  let cnts = Array.of_list (List.map snd sorted) in
  let k = Array.length vals in
  let cnt_suffix = Array.make (k + 1) 0 in
  let weighted_suffix = Array.make (k + 1) 0.0 in
  for i = k - 1 downto 0 do
    cnt_suffix.(i) <- cnt_suffix.(i + 1) + cnts.(i);
    weighted_suffix.(i) <-
      weighted_suffix.(i + 1) +. (float_of_int vals.(i) *. float_of_int cnts.(i))
  done;
  { vals; cnt_suffix; weighted_suffix }

(* sum over values v > w of (v - w) * count(v) *)
let tail_excess t w =
  (* first index with vals.(i) > w *)
  let lo = ref 0 and hi = ref (Array.length t.vals) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.vals.(mid) > w then hi := mid else lo := mid + 1
  done;
  let i = !lo in
  t.weighted_suffix.(i) -. (float_of_int w *. float_of_int t.cnt_suffix.(i))

type t = {
  n : int;
  m : int;
  rt_tail : tail;
  first_tail : tail;
  last_tail : tail;
}

let curve trace =
  let n = Trace.length trace in
  let rt = Hashtbl.create 1024 in
  let last_pos = Hashtbl.create 4096 in
  let first_pos = Hashtbl.create 4096 in
  Trace.iteri
    (fun i s ->
      let pos = i + 1 in
      (match Hashtbl.find_opt last_pos s with
      | Some prev ->
        let t = pos - prev in
        Hashtbl.replace rt t (1 + Option.value ~default:0 (Hashtbl.find_opt rt t))
      | None -> Hashtbl.replace first_pos s pos);
      Hashtbl.replace last_pos s pos)
    trace;
  let m = Hashtbl.length first_pos in
  let rt_assoc = Hashtbl.fold (fun k v acc -> (k, v) :: acc) rt [] in
  let firsts = Hashtbl.fold (fun _ p acc -> (p, 1) :: acc) first_pos [] in
  let lasts = Hashtbl.fold (fun _ p acc -> (n - p + 1, 1) :: acc) last_pos [] in
  {
    n;
    m;
    rt_tail = tail_of_assoc rt_assoc;
    first_tail = tail_of_assoc firsts;
    last_tail = tail_of_assoc lasts;
  }

let distinct c = c.m

let trace_length c = c.n

let fp c w =
  if w <= 0 then 0.0
  else if c.n = 0 then 0.0
  else begin
    let w = min w c.n in
    let windows = float_of_int (c.n - w + 1) in
    let deficit = tail_excess c.rt_tail w +. tail_excess c.first_tail w +. tail_excess c.last_tail w in
    float_of_int c.m -. (deficit /. windows)
  end

let average_naive trace ~w =
  let n = Trace.length trace in
  if w < 1 || w > n then invalid_arg "Footprint.average_naive";
  let counts = Hashtbl.create 256 in
  let distinct = ref 0 in
  let add s =
    let cur = Option.value ~default:0 (Hashtbl.find_opt counts s) in
    if cur = 0 then incr distinct;
    Hashtbl.replace counts s (cur + 1)
  in
  let remove s =
    let cur = Hashtbl.find counts s in
    if cur = 1 then begin
      Hashtbl.remove counts s;
      decr distinct
    end
    else Hashtbl.replace counts s (cur - 1)
  in
  let total = ref 0.0 in
  for i = 0 to n - 1 do
    add (Trace.get trace i);
    if i >= w then remove (Trace.get trace (i - w));
    if i >= w - 1 then total := !total +. float_of_int !distinct
  done;
  !total /. float_of_int (n - w + 1)

let inverse c target =
  if c.n = 0 then 0
  else if fp c c.n < target then c.n
  else begin
    let lo = ref 1 and hi = ref c.n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fp c mid >= target then hi := mid else lo := mid + 1
    done;
    !lo
  end

let deriv c w =
  if w >= c.n then 0.0 else Float.max 0.0 (fp c (w + 1) -. fp c w)
