type t = Footprint.t

let solo_miss_ratio c ~capacity =
  if capacity <= 0 then invalid_arg "Miss_prob.solo_miss_ratio";
  let cap = float_of_int capacity in
  if Footprint.fp c (Footprint.trace_length c) < cap then 0.0
  else begin
    let w = Footprint.inverse c cap in
    Footprint.deriv c w
  end

let solo_window c ~capacity =
  if capacity <= 0 then invalid_arg "Miss_prob.solo_window";
  Footprint.inverse c (float_of_int capacity)

let split_window self peer ~capacity =
  if capacity <= 0 then invalid_arg "Miss_prob.split_window";
  let cap = float_of_int capacity in
  let combined w = Footprint.fp self w +. Footprint.fp peer w in
  let n = max (Footprint.trace_length self) (Footprint.trace_length peer) in
  if n = 0 then 0
  else if combined n < cap then n
  else begin
    (* Binary search for the shared window w* where the two footprints
       together fill the capacity (both curves are monotone). *)
    let lo = ref 1 and hi = ref n in
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if combined mid >= cap then hi := mid else lo := mid + 1
    done;
    !lo
  end

let corun_miss_ratios self peer ~capacity =
  if capacity <= 0 then invalid_arg "Miss_prob.corun_miss_ratios";
  let cap = float_of_int capacity in
  let combined w = Footprint.fp self w +. Footprint.fp peer w in
  let n = max (Footprint.trace_length self) (Footprint.trace_length peer) in
  if n = 0 then (0.0, 0.0)
  else if combined n < cap then (0.0, 0.0)
  else begin
    let w = split_window self peer ~capacity in
    (Footprint.deriv self w, Footprint.deriv peer w)
  end

type exposure = {
  solo : float;
  corun : float;
  defensiveness : float;
  politeness : float;
}

let exposure ~self ~peer ~capacity =
  let solo_self = solo_miss_ratio self ~capacity in
  let solo_peer = solo_miss_ratio peer ~capacity in
  let corun_self, corun_peer = corun_miss_ratios self peer ~capacity in
  {
    solo = solo_self;
    corun = corun_self;
    defensiveness = corun_self -. solo_self;
    politeness = corun_peer -. solo_peer;
  }

let footprint_fraction c ~q =
  if q <= 0.0 || q > 1.0 then invalid_arg "Miss_prob.footprint_fraction";
  let n = Footprint.trace_length c in
  Footprint.fp c (max 1 (int_of_float (q *. float_of_int n)))
