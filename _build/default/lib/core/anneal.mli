(** Simulated-annealing layout search.

    Between the paper's O(N)–O(N³) heuristics and the impossible exhaustive
    search (§III-D) sits local search: start from a heuristic's function
    order and hill-climb with occasional uphill moves over the simulated
    miss ratio. Too slow to be a compiler pass (each step is a full cache
    simulation) but useful to estimate how much headroom the heuristics
    leave — the experiment harness uses it in the Petrank-Rawitz wall
    study. Deterministic for a fixed seed. *)

type result = {
  order : int array;
  miss_ratio : float;
  steps : int;  (** Simulations performed. *)
  improved_from : float;  (** Miss ratio of the initial order. *)
}

val search :
  ?seed:int ->
  ?steps:int ->
  ?initial:int array ->
  params:Colayout_cache.Params.t ->
  Colayout_ir.Program.t ->
  Colayout_trace.Trace.t ->
  result
(** [steps] defaults to 300; [initial] to the identity (original) order;
    temperature decays geometrically to ~0 over the budget. Neighbourhood:
    swap two random functions, or relocate one (50/50). *)
