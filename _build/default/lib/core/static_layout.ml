open Colayout_ir

let cfgs program =
  Array.init (Program.num_funcs program) (fun fid -> Cfg.analyze program fid)

let static_call_graph_with cfg_arr program =
  let acc : (int * int, float) Hashtbl.t = Hashtbl.create 64 in
  Array.iter
    (fun (b : Program.block) ->
      match b.term with
      | Types.Call { callee; _ } ->
        let freq = Cfg.static_frequency cfg_arr.(b.fn) b.id in
        let key = (b.fn, callee) in
        Hashtbl.replace acc key (freq +. Option.value ~default:0.0 (Hashtbl.find_opt acc key))
      | _ -> ())
    (Program.blocks program);
  Hashtbl.fold
    (fun (caller, callee) w l -> (caller, callee, int_of_float (ceil w)) :: l)
    acc []
  |> List.sort compare

let static_call_graph program = static_call_graph_with (cfgs program) program

let block_order program =
  let cfg_arr = cfgs program in
  let edges = static_call_graph_with cfg_arr program in
  let graph = Pettis_hansen.graph_of_edges ~num_funcs:(Program.num_funcs program) edges in
  let forder =
    Layout.function_order_of_hot_list program ~hot:(Pettis_hansen.order graph)
  in
  let nb = Program.num_blocks program in
  let order = Array.make nb 0 in
  let pos = ref 0 in
  Array.iter
    (fun fid ->
      let f = Program.func program fid in
      let body =
        Array.to_list f.blocks
        |> List.filter (fun bid -> bid <> f.entry)
        |> List.stable_sort (fun a b ->
               compare
                 (Cfg.static_frequency cfg_arr.(fid) b)
                 (Cfg.static_frequency cfg_arr.(fid) a))
      in
      List.iter
        (fun bid ->
          order.(!pos) <- bid;
          incr pos)
        (f.entry :: body))
    forder;
  order

let layout_for program = Layout.of_block_order program (block_order program)
