(** [w]-window reference affinity over code-block traces (§II-B).

    Definitions from the paper, over a trimmed trace:
    - the footprint [fp<a,b>] of two positions is the number of distinct
      blocks in the inclusive window between them (Definition 2);
    - blocks [x] and [y] have [w]-window affinity iff {e every} occurrence of
      [x] has some occurrence of [y] with [fp <= w], and vice versa
      (Definition 3).

    Two implementations:
    - {!affine_pairs} — the efficient single-pass stack algorithm the paper
      contributes: one LRU-stack simulation per [w]; at each access the
      blocks within the top of the stack witness co-occurrence, and a pair is
      affine iff every occurrence of both sides was witnessed. O(N·w) time.
    - {!affine_pairs_naive} — direct evaluation of Definition 3 by scanning,
      used as the test oracle.

    {!partition} is Algorithm 1's greedy grouping for a single [w]. *)

type pair_set

val is_affine : pair_set -> int -> int -> bool
(** Symmetric; a block is trivially affine with itself. *)

val pair_list : pair_set -> (int * int) list
(** Affine pairs with [x < y], sorted. *)

val affine_pairs : Colayout_trace.Trace.t -> w:int -> pair_set
(** @raise Invalid_argument if [w < 1] or the trace is not trimmed. *)

val affine_pairs_naive : Colayout_trace.Trace.t -> w:int -> pair_set
(** Quadratic-and-worse oracle; small traces only. *)

val partition : Colayout_trace.Trace.t -> w:int -> int list list
(** Algorithm 1 for one [w]: greedy grouping where a block joins the first
    existing group all of whose members it is affine with. Blocks are
    processed in order of first occurrence (deterministic). Only blocks
    occurring in the trace appear. *)

val window_footprint : Colayout_trace.Trace.t -> int -> int -> int
(** [window_footprint t a b] is [fp<a,b>]: distinct symbols in positions
    [min a b .. max a b] inclusive (Definition 2). *)
