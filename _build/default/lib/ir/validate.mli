(** Whole-program well-formedness checking (the "sanity check" half of the
    paper's post-processing step, §II-E). *)

exception Invalid of string

val check : Program.t -> unit
(** Verifies:
    - every function has at least one block, and its entry is its own;
    - every intra-procedural terminator target is a block of the same
      function;
    - every [Call] names an existing function and returns to a block in the
      calling function;
    - block ids are consistent with their array slots and function
      memberships match;
    - the main function exists;
    - sizes and instruction counts are positive.
    @raise Invalid with a message naming the offending entity. *)

val reachable_blocks : Program.t -> bool array
(** Blocks reachable from main's entry, following calls and returns
    context-insensitively (a [Return] is treated as reaching every
    [return_to] of the function's callers). Indexed by block id. *)
