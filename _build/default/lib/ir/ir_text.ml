exception Parse_error of int * string

let fail line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

(* ------------------------------------------------------------- printing *)

let print program =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" (Program.name program));
  let main_fid = (Program.main program).Program.fid in
  Array.iter
    (fun (f : Program.func) ->
      Buffer.add_string buf
        (Printf.sprintf "func %s%s\n" f.fname (if f.fid = main_fid then " *" else ""));
      Array.iter
        (fun bid ->
          let b = Program.block program bid in
          Buffer.add_string buf (Printf.sprintf "  block %s:\n" b.name);
          List.iter
            (fun i -> Buffer.add_string buf ("    " ^ Types.instr_to_string i ^ "\n"))
            b.instrs;
          let bname x = (Program.block program x).Program.name in
          let term =
            match b.term with
            | Types.Jump x -> Printf.sprintf "jump %s" (bname x)
            | Types.Branch { cond; if_true; if_false } ->
              Printf.sprintf "branch %s ? %s : %s" (Types.expr_to_string cond) (bname if_true)
                (bname if_false)
            | Types.Switch { sel; targets; default } ->
              Printf.sprintf "switch %s [%s] default %s" (Types.expr_to_string sel)
                (String.concat " " (Array.to_list (Array.map bname targets)))
                (bname default)
            | Types.Call { callee; return_to } ->
              Printf.sprintf "call %s -> %s" (Program.func program callee).Program.fname
                (bname return_to)
            | Types.Return -> "return"
            | Types.Halt -> "halt"
          in
          Buffer.add_string buf ("    " ^ term ^ "\n"))
        f.blocks)
    (Program.funcs program);
  Buffer.contents buf

(* ------------------------------------------------------ expression parse *)

(* Tiny recursive-descent parser over a string with a cursor. Grammar:
     expr   ::= int | vN | rand '(' int ')' | '(' expr OP expr ')'
   OP is one of the binop symbols. *)
type cursor = {
  s : string;
  mutable pos : int;
  line : int;
}

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  while peek c = Some ' ' || peek c = Some '\t' do
    advance c
  done

let expect c ch =
  skip_ws c;
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c.line "expected '%c' at column %d" ch (c.pos + 1)

let is_digit ch = ch >= '0' && ch <= '9'

let parse_int c =
  skip_ws c;
  let start = c.pos in
  if peek c = Some '-' then advance c;
  while (match peek c with Some ch -> is_digit ch | None -> false) do
    advance c
  done;
  if c.pos = start || (c.pos = start + 1 && c.s.[start] = '-') then
    fail c.line "expected integer at column %d" (start + 1);
  int_of_string (String.sub c.s start (c.pos - start))

let binop_symbols =
  (* Longest-match order. *)
  [
    ("<=", Types.Le); (">=", Types.Ge); ("==", Types.Eq); ("!=", Types.Ne); ("<", Types.Lt);
    (">", Types.Gt); ("+", Types.Add); ("-", Types.Sub); ("*", Types.Mul); ("/", Types.Div);
    ("%", Types.Mod); ("^", Types.Xor); ("&", Types.And); ("|", Types.Or);
  ]

let parse_binop c =
  skip_ws c;
  let rest = String.sub c.s c.pos (String.length c.s - c.pos) in
  match
    List.find_opt (fun (sym, _) -> String.length rest >= String.length sym
                                   && String.sub rest 0 (String.length sym) = sym)
      binop_symbols
  with
  | Some (sym, op) ->
    c.pos <- c.pos + String.length sym;
    op
  | None -> fail c.line "expected operator at column %d" (c.pos + 1)

let rec parse_expr c =
  skip_ws c;
  match peek c with
  | Some '(' ->
    advance c;
    let a = parse_expr c in
    let op = parse_binop c in
    let b = parse_expr c in
    expect c ')';
    Types.Bin (op, a, b)
  | Some 'v' ->
    advance c;
    Types.Var (parse_int c)
  | Some 'r' ->
    (* rand(N) *)
    let kw = "rand" in
    if
      c.pos + String.length kw <= String.length c.s
      && String.sub c.s c.pos (String.length kw) = kw
    then begin
      c.pos <- c.pos + String.length kw;
      expect c '(';
      let n = parse_int c in
      expect c ')';
      Types.Rand n
    end
    else fail c.line "expected 'rand' at column %d" (c.pos + 1)
  | Some ch when is_digit ch || ch = '-' -> Types.Const (parse_int c)
  | _ -> fail c.line "expected expression at column %d" (c.pos + 1)

let expr_of_string ~line s =
  let c = { s; pos = 0; line } in
  let e = parse_expr c in
  skip_ws c;
  if c.pos <> String.length s then fail line "trailing characters in expression: %S" s;
  e

(* ------------------------------------------------------------- program *)

type raw_term =
  | RJump of string
  | RBranch of Types.expr * string * string
  | RSwitch of Types.expr * string list * string
  | RCall of string * string
  | RReturn
  | RHalt

type raw_block = {
  rb_name : string;
  rb_line : int;
  mutable rb_instrs : Types.instr list; (* reversed *)
  mutable rb_term : raw_term option;
}

type raw_func = {
  rf_name : string;
  rf_line : int;
  rf_main : bool;
  mutable rf_blocks : raw_block list; (* reversed *)
}

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of line = String.split_on_char ' ' line |> List.filter (fun t -> t <> "")

let parse ?name text =
  let lines = String.split_on_char '\n' text in
  let prog_name = ref "parsed" in
  let funcs : raw_func list ref = ref [] in
  let current_func () =
    match !funcs with [] -> None | f :: _ -> Some f
  in
  let current_block () =
    match current_func () with
    | Some f -> (match f.rf_blocks with [] -> None | b :: _ -> Some b)
    | None -> None
  in
  List.iteri
    (fun i raw_line ->
      let lnum = i + 1 in
      let line = String.trim (strip_comment raw_line) in
      if line <> "" then begin
        let toks = tokens_of line in
        match toks with
        | [ "program"; n ] -> prog_name := n
        | "func" :: n :: rest ->
          let is_main = rest = [ "*" ] in
          if rest <> [] && not is_main then fail lnum "junk after func declaration";
          funcs := { rf_name = n; rf_line = lnum; rf_main = is_main; rf_blocks = [] } :: !funcs
        | [ "block"; n ] when String.length n > 0 && n.[String.length n - 1] = ':' -> (
          let bname = String.sub n 0 (String.length n - 1) in
          match current_func () with
          | None -> fail lnum "block outside any function"
          | Some f ->
            f.rf_blocks <-
              { rb_name = bname; rb_line = lnum; rb_instrs = []; rb_term = None }
              :: f.rf_blocks)
        | _ -> (
          match current_block () with
          | None -> fail lnum "statement outside any block"
          | Some b ->
            if b.rb_term <> None then fail lnum "statement after the block's terminator";
            let set_term t = b.rb_term <- Some t in
            let add_instr instr = b.rb_instrs <- instr :: b.rb_instrs in
            (match toks with
            | [ "work"; n ] -> (
              match int_of_string_opt n with
              | Some v -> add_instr (Types.Work v)
              | None -> fail lnum "bad work count %S" n)
            | [ "jump"; target ] -> set_term (RJump target)
            | [ "return" ] -> set_term RReturn
            | [ "halt" ] -> set_term RHalt
            | [ "call"; callee; "->"; ret ] -> set_term (RCall (callee, ret))
            | "branch" :: _ -> (
              (* branch <expr> ? <t> : <f> — the expression may contain
                 spaces; split on the '?' instead. *)
              let body = String.sub line 6 (String.length line - 6) in
              match String.index_opt body '?' with
              | None -> fail lnum "branch needs '?'"
              | Some q ->
                let cond = expr_of_string ~line:lnum (String.trim (String.sub body 0 q)) in
                let rest = String.sub body (q + 1) (String.length body - q - 1) in
                (match tokens_of (String.map (fun c -> if c = ':' then ' ' else c) rest) with
                | [ t; f ] -> set_term (RBranch (cond, t, f))
                | _ -> fail lnum "branch needs 'COND ? TRUE : FALSE'"))
            | "switch" :: _ -> (
              (* switch <expr> [a b c] default <d> *)
              let body = String.sub line 6 (String.length line - 6) in
              match (String.index_opt body '[', String.index_opt body ']') with
              | Some l, Some r when l < r ->
                let sel = expr_of_string ~line:lnum (String.trim (String.sub body 0 l)) in
                let targets = tokens_of (String.sub body (l + 1) (r - l - 1)) in
                let tail = tokens_of (String.sub body (r + 1) (String.length body - r - 1)) in
                (match tail with
                | [ "default"; d ] -> set_term (RSwitch (sel, targets, d))
                | _ -> fail lnum "switch needs 'default TARGET' after the table")
              | _ -> fail lnum "switch needs a [target] table")
            | "load" :: _ ->
              let body = String.trim (String.sub line 4 (String.length line - 4)) in
              (* strip the surrounding [ ] the printer emits *)
              let body =
                if String.length body >= 2 && body.[0] = '[' && body.[String.length body - 1] = ']'
                then String.sub body 1 (String.length body - 2)
                else body
              in
              add_instr (Types.Load (expr_of_string ~line:lnum (String.trim body)))
            | "store" :: _ ->
              let body = String.trim (String.sub line 5 (String.length line - 5)) in
              let body =
                if String.length body >= 2 && body.[0] = '[' && body.[String.length body - 1] = ']'
                then String.sub body 1 (String.length body - 2)
                else body
              in
              add_instr (Types.Store (expr_of_string ~line:lnum (String.trim body)))
            | v :: ":=" :: _ when String.length v > 1 && v.[0] = 'v' -> (
              match int_of_string_opt (String.sub v 1 (String.length v - 1)) with
              | None -> fail lnum "bad variable %S" v
              | Some var ->
                let idx =
                  match String.index_opt line '=' with Some i -> i | None -> assert false
                in
                let rhs = String.sub line (idx + 1) (String.length line - idx - 1) in
                add_instr (Types.Assign (var, expr_of_string ~line:lnum (String.trim rhs))))
            | t :: _ -> fail lnum "unknown statement %S" t
            | [] -> assert false))
      end)
    lines;
  let funcs = List.rev !funcs in
  if funcs = [] then fail 0 "no functions";
  (* Resolve names. *)
  let b = Builder.create ~name:(Option.value ~default:!prog_name name) () in
  let fids = Hashtbl.create 16 in
  List.iter
    (fun f ->
      if Hashtbl.mem fids f.rf_name then fail f.rf_line "duplicate function %S" f.rf_name;
      Hashtbl.replace fids f.rf_name (Builder.func b f.rf_name))
    funcs;
  (* Declare blocks. *)
  let bids = Hashtbl.create 64 in
  List.iter
    (fun f ->
      let fid = Hashtbl.find fids f.rf_name in
      List.iter
        (fun blk ->
          let key = (f.rf_name, blk.rb_name) in
          if Hashtbl.mem bids key then
            fail blk.rb_line "duplicate block %S in %S" blk.rb_name f.rf_name;
          Hashtbl.replace bids key (Builder.block b fid blk.rb_name))
        (List.rev f.rf_blocks))
    funcs;
  (* Bodies. *)
  List.iter
    (fun f ->
      List.iter
        (fun blk ->
          let local target =
            match Hashtbl.find_opt bids (f.rf_name, target) with
            | Some id -> id
            | None -> fail blk.rb_line "unknown block %S in %S" target f.rf_name
          in
          let term =
            match blk.rb_term with
            | None -> fail blk.rb_line "block %S has no terminator" blk.rb_name
            | Some (RJump t) -> Types.Jump (local t)
            | Some (RBranch (cond, t, fl)) ->
              Types.Branch { cond; if_true = local t; if_false = local fl }
            | Some (RSwitch (sel, targets, d)) ->
              Types.Switch
                { sel; targets = Array.of_list (List.map local targets); default = local d }
            | Some (RCall (callee, ret)) -> (
              match Hashtbl.find_opt fids callee with
              | None -> fail blk.rb_line "unknown function %S" callee
              | Some c -> Types.Call { callee = c; return_to = local ret })
            | Some RReturn -> Types.Return
            | Some RHalt -> Types.Halt
          in
          Builder.set_body b
            (Hashtbl.find bids (f.rf_name, blk.rb_name))
            (List.rev blk.rb_instrs) term)
        (List.rev f.rf_blocks))
    funcs;
  (match List.filter (fun f -> f.rf_main) funcs with
  | [] -> () (* first function is main by default *)
  | [ f ] -> Builder.set_main b (Hashtbl.find fids f.rf_name)
  | f :: _ -> fail f.rf_line "multiple functions marked '*'");
  try Builder.finish b with
  | Validate.Invalid msg -> fail 0 "invalid program: %s" msg
  | Invalid_argument msg -> fail 0 "invalid program: %s" msg

let equal_structure p1 p2 =
  let sig_of p =
    let bname bid = (Program.block p bid).Program.name in
    ( Program.name p,
      (Program.main p).Program.fname,
      Array.to_list
        (Array.map
           (fun (f : Program.func) ->
             ( f.fname,
               Array.to_list
                 (Array.map
                    (fun bid ->
                      let blk = Program.block p bid in
                      let term =
                        match blk.term with
                        | Types.Jump x -> "j:" ^ bname x
                        | Types.Branch { cond; if_true; if_false } ->
                          Printf.sprintf "b:%s?%s:%s" (Types.expr_to_string cond)
                            (bname if_true) (bname if_false)
                        | Types.Switch { sel; targets; default } ->
                          Printf.sprintf "s:%s[%s]%s" (Types.expr_to_string sel)
                            (String.concat ","
                               (Array.to_list (Array.map bname targets)))
                            (bname default)
                        | Types.Call { callee; return_to } ->
                          Printf.sprintf "c:%s->%s" (Program.func p callee).Program.fname
                            (bname return_to)
                        | Types.Return -> "r"
                        | Types.Halt -> "h"
                      in
                      (blk.name, List.map Types.instr_to_string blk.instrs, term))
                    f.blocks) ))
           (Program.funcs p)) )
  in
  sig_of p1 = sig_of p2
