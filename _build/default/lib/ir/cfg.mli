(** Intra-procedural control-flow analysis: dominators, natural loops, and
    static execution-frequency estimates.

    This is the machinery a compiler uses when no profile is available —
    the substrate for the profile-free static layout baseline, and generally
    useful for inspecting generated programs. All queries are per function;
    blocks unreachable from the function entry get depth 0, frequency 0 and
    are dominated by nothing. *)

type t

val analyze : Program.t -> Types.func_id -> t
(** Analyze one function (intra-procedural edges only; a [Call]'s successor
    is its return block). *)

val entry : t -> Types.block_id

val reachable : t -> Types.block_id -> bool

val idom : t -> Types.block_id -> Types.block_id option
(** Immediate dominator; [None] for the entry and unreachable blocks. *)

val dominates : t -> Types.block_id -> Types.block_id -> bool
(** [dominates t a b]: every path from the entry to [b] passes through [a].
    Reflexive. False if either block is unreachable. *)

val back_edges : t -> (Types.block_id * Types.block_id) list
(** Edges [(tail, head)] where [head] dominates [tail] — one per natural
    loop (sorted). *)

val loop_depth : t -> Types.block_id -> int
(** Number of natural loops containing the block (0 = not in a loop). *)

val static_frequency : t -> Types.block_id -> float
(** Profile-free execution-frequency estimate, the standard compiler
    heuristic: flow starts at 1 at the entry, splits evenly across
    successors (back edges ignored), and is scaled by 10^loop-depth.
    0 for unreachable blocks. *)

val rpo : t -> Types.block_id list
(** Reachable blocks in reverse post-order (the entry first). *)
