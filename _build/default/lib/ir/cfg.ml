open Types

type t = {
  entry : block_id;
  blocks : block_id array; (* the function's blocks *)
  index : (block_id, int) Hashtbl.t; (* block id -> local index *)
  succs : int list array;
  preds : int list array;
  reachable : bool array;
  rpo : int array; (* local indices in reverse post-order *)
  rpo_pos : int array; (* local index -> position in rpo, -1 unreachable *)
  idom : int array; (* local index of immediate dominator, -1 = none *)
  depth : int array; (* loop nesting depth *)
  freq : float array;
}

let analyze program fid =
  let f = Program.func program fid in
  let blocks = f.Program.blocks in
  let n = Array.length blocks in
  let index = Hashtbl.create (2 * n) in
  Array.iteri (fun i bid -> Hashtbl.replace index bid i) blocks;
  let local bid =
    match Hashtbl.find_opt index bid with
    | Some i -> i
    | None -> invalid_arg "Cfg: terminator target outside the function"
  in
  let succs =
    Array.map (fun bid -> List.map local (Program.block_successors program bid)) blocks
  in
  let preds = Array.make n [] in
  Array.iteri (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss) succs;
  (* DFS for reachability and post-order. *)
  let reachable = Array.make n false in
  let post = ref [] in
  let rec dfs i =
    if not reachable.(i) then begin
      reachable.(i) <- true;
      List.iter dfs succs.(i);
      post := i :: !post
    end
  in
  let entry_local = local f.Program.entry in
  dfs entry_local;
  let rpo = Array.of_list !post in
  let rpo_pos = Array.make n (-1) in
  Array.iteri (fun pos i -> rpo_pos.(i) <- pos) rpo;
  (* Cooper-Harvey-Kennedy iterative dominators. *)
  let idom = Array.make n (-1) in
  idom.(entry_local) <- entry_local;
  let intersect a b =
    let a = ref a and b = ref b in
    while !a <> !b do
      while rpo_pos.(!a) > rpo_pos.(!b) do
        a := idom.(!a)
      done;
      while rpo_pos.(!b) > rpo_pos.(!a) do
        b := idom.(!b)
      done
    done;
    !a
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun i ->
        if i <> entry_local then begin
          let processed_preds =
            List.filter (fun p -> reachable.(p) && idom.(p) >= 0) preds.(i)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
            let new_idom = List.fold_left intersect first rest in
            if idom.(i) <> new_idom then begin
              idom.(i) <- new_idom;
              changed := true
            end
        end)
      rpo
  done;
  let dominates_local a b =
    (* Walk b's dominator chain up to the entry. *)
    if not (reachable.(a) && reachable.(b)) then false
    else begin
      let rec walk x = if x = a then true else if x = entry_local then false else walk idom.(x) in
      walk b
    end
  in
  (* Natural loops from back edges. *)
  let depth = Array.make n 0 in
  let back_edges = ref [] in
  Array.iteri
    (fun u ss ->
      if reachable.(u) then
        List.iter (fun v -> if dominates_local v u then back_edges := (u, v) :: !back_edges) ss)
    succs;
  List.iter
    (fun (tail, head) ->
      (* Loop body: head plus everything that reaches tail without head. *)
      let in_loop = Array.make n false in
      in_loop.(head) <- true;
      let rec up i =
        if not in_loop.(i) then begin
          in_loop.(i) <- true;
          List.iter up preds.(i)
        end
      in
      up tail;
      Array.iteri (fun i inl -> if inl then depth.(i) <- depth.(i) + 1) in_loop)
    !back_edges;
  (* Static frequency: split flow across successors, ignore back edges,
     then scale by 10^loop-depth. *)
  let freq = Array.make n 0.0 in
  let base = Array.make n 0.0 in
  base.(entry_local) <- 1.0;
  Array.iter
    (fun i ->
      let out = List.length succs.(i) in
      if out > 0 && base.(i) > 0.0 then begin
        let share = base.(i) /. float_of_int out in
        List.iter
          (fun s ->
            (* Forward edges only: skip if s precedes i in RPO (back edge). *)
            if rpo_pos.(s) > rpo_pos.(i) then base.(s) <- base.(s) +. share)
          succs.(i)
      end)
    rpo;
  Array.iteri
    (fun i _ ->
      if reachable.(i) then
        freq.(i) <- Float.max base.(i) 1e-6 *. (10.0 ** float_of_int depth.(i)))
    freq;
  {
    entry = f.Program.entry;
    blocks;
    index;
    succs;
    preds;
    reachable;
    rpo;
    rpo_pos;
    idom;
    depth;
    freq;
  }

let local_of t bid =
  match Hashtbl.find_opt t.index bid with
  | Some i -> i
  | None -> invalid_arg "Cfg: block not in this function"

let entry t = t.entry

let reachable t bid = t.reachable.(local_of t bid)

let idom t bid =
  let i = local_of t bid in
  if (not t.reachable.(i)) || t.blocks.(i) = t.entry then None
  else if t.idom.(i) < 0 then None
  else Some t.blocks.(t.idom.(i))

let dominates t a b =
  let ia = local_of t a and ib = local_of t b in
  if not (t.reachable.(ia) && t.reachable.(ib)) then false
  else begin
    let entry_local = local_of t t.entry in
    let rec walk x = if x = ia then true else if x = entry_local then false else walk t.idom.(x) in
    walk ib
  end

let back_edges t =
  let acc = ref [] in
  Array.iteri
    (fun u ss ->
      if t.reachable.(u) then
        List.iter
          (fun v ->
            if dominates t t.blocks.(v) t.blocks.(u) then
              acc := (t.blocks.(u), t.blocks.(v)) :: !acc)
          ss)
    t.succs;
  List.sort compare !acc

let loop_depth t bid = t.depth.(local_of t bid)

let static_frequency t bid = t.freq.(local_of t bid)

let rpo t = Array.to_list (Array.map (fun i -> t.blocks.(i)) t.rpo)
