(** Immutable whole-program representation.

    Build one with {!Builder}; consumers (interpreter, analyses, layout
    transformations) only read. Blocks are stored in one program-wide array
    indexed by [block_id], so analyses can use dense arrays keyed by block
    id — the same trick the paper's mapping file plays (§II-F
    "Instrumentation"). *)

type block = {
  id : Types.block_id;
  fn : Types.func_id;
  name : string;
  instrs : Types.instr list;
  term : Types.terminator;
  size_bytes : int;  (** Body + terminator, from {!Size_model}. *)
  instr_count : int;
}

type func = {
  fid : Types.func_id;
  fname : string;
  entry : Types.block_id;
  blocks : Types.block_id array;  (** In declaration (source) order. *)
}

type t

val name : t -> string

val num_funcs : t -> int

val num_blocks : t -> int

val func : t -> Types.func_id -> func

val block : t -> Types.block_id -> block

val funcs : t -> func array

val blocks : t -> block array

val main : t -> func
(** The designated entry function. *)

val func_size_bytes : t -> Types.func_id -> int
(** Sum of the function's block sizes. *)

val total_code_bytes : t -> int

val find_func : t -> string -> func option

val block_successors : t -> Types.block_id -> Types.block_id list
(** Intra-procedural CFG successors ([Call] contributes its [return_to], not
    the callee entry). *)

val fallthrough_target : t -> Types.block_id -> Types.block_id option
(** The block that must be adjacent for the terminator to need no extra
    unconditional jump: [Branch]'s false edge, [Jump]'s target, [Call]'s
    return-to block. [Switch]/[Return]/[Halt] have none. *)

val pp : Format.formatter -> t -> unit

(**/**)

val unsafe_make :
  name:string -> funcs:func array -> blocks:block array -> main:Types.func_id -> t
(** For {!Builder} only; invariants are checked by {!Validate.check}. *)
