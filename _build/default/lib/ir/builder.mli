(** Imperative program construction.

    Usage: declare functions, declare blocks (block ids are handed out before
    bodies exist so terminators can point forward), then fill bodies, then
    [finish] — which validates the program. The first block declared in a
    function is its entry.

    {[
      let b = Builder.create ~name:"demo" () in
      let f = Builder.func b "main" in
      let entry = Builder.block b f "entry" in
      let loop = Builder.block b f "loop" in
      Builder.set_body b entry [] (Jump loop);
      Builder.set_body b loop [ Work 10 ] Halt;
      let prog = Builder.finish b
    ]} *)

type t

val create : name:string -> unit -> t

val func : t -> string -> Types.func_id
(** Declare a function. The first function declared is [main] unless
    {!set_main} overrides it. *)

val block : t -> Types.func_id -> string -> Types.block_id
(** Declare a block in a function; body defaults to empty with [Halt]. *)

val set_body : t -> Types.block_id -> Types.instr list -> Types.terminator -> unit

val set_main : t -> Types.func_id -> unit

val num_funcs : t -> int

val num_blocks : t -> int

val finish : t -> Program.t
(** @raise Validate.Invalid if the program is malformed. *)

val finish_unchecked : t -> Program.t
(** For tests that need to build malformed programs. *)
