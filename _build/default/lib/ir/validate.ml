exception Invalid of string

let fail fmt = Printf.ksprintf (fun s -> raise (Invalid s)) fmt

let check p =
  let nb = Program.num_blocks p in
  let nf = Program.num_funcs p in
  if nf = 0 then fail "program has no functions";
  (* Main exists (accessor raises on bad index). *)
  let _ = Program.main p in
  Array.iteri
    (fun i (f : Program.func) ->
      if f.fid <> i then fail "function %s: id %d stored at slot %d" f.fname f.fid i;
      if Array.length f.blocks = 0 then fail "function %s has no blocks" f.fname;
      if f.entry <> f.blocks.(0) then
        fail "function %s: entry b%d is not its first block" f.fname f.entry;
      Array.iter
        (fun bid ->
          if bid < 0 || bid >= nb then fail "function %s references bad block %d" f.fname bid;
          let b = Program.block p bid in
          if b.fn <> f.fid then
            fail "block b%d listed in %s but belongs to f%d" bid f.fname b.fn)
        f.blocks)
    (Program.funcs p);
  Array.iteri
    (fun i (b : Program.block) ->
      if b.id <> i then fail "block %s: id %d stored at slot %d" b.name b.id i;
      if b.fn < 0 || b.fn >= nf then fail "block b%d has bad function f%d" b.id b.fn;
      if b.size_bytes <= 0 then fail "block b%d has non-positive size" b.id;
      if b.instr_count <= 0 then fail "block b%d has non-positive instruction count" b.id;
      let check_local target what =
        if target < 0 || target >= nb then fail "block b%d: %s targets bad block %d" b.id what target;
        let tb = Program.block p target in
        if tb.fn <> b.fn then
          fail "block b%d (f%d): %s crosses into f%d (b%d) — inter-procedural control flow \
               must use Call" b.id b.fn what tb.fn target
      in
      match b.term with
      | Types.Jump x -> check_local x "jump"
      | Types.Branch { if_true; if_false; _ } ->
        check_local if_true "branch-true";
        check_local if_false "branch-false"
      | Types.Switch { targets; default; _ } ->
        Array.iter (fun x -> check_local x "switch-case") targets;
        check_local default "switch-default"
      | Types.Call { callee; return_to } ->
        if callee < 0 || callee >= nf then fail "block b%d calls bad function f%d" b.id callee;
        check_local return_to "call-return"
      | Types.Return | Types.Halt -> ())
    (Program.blocks p)

let reachable_blocks p =
  let nb = Program.num_blocks p in
  let seen = Array.make nb false in
  (* Which functions have been entered; used to propagate Return edges. *)
  let entered = Array.make (Program.num_funcs p) false in
  (* return_to blocks per callee function, discovered as calls are seen. *)
  let return_sites = Array.make (Program.num_funcs p) [] in
  let work = Queue.create () in
  let push bid =
    if not seen.(bid) then begin
      seen.(bid) <- true;
      Queue.push bid work
    end
  in
  let enter_function fid =
    if not entered.(fid) then begin
      entered.(fid) <- true;
      push (Program.func p fid).entry
    end
  in
  enter_function (Program.main p).fid;
  while not (Queue.is_empty work) do
    let bid = Queue.pop work in
    let b = Program.block p bid in
    match b.term with
    | Types.Call { callee; return_to } ->
      return_sites.(callee) <- return_to :: return_sites.(callee);
      enter_function callee;
      (* Context-insensitive: if the callee can return at all, the return
         site is reachable. We over-approximate by always marking it. *)
      push return_to
    | Types.Return -> List.iter push return_sites.(b.fn)
    | _ -> List.iter push (Program.block_successors p bid)
  done;
  seen
