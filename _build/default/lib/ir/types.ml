(** Core IR types.

    The IR is deliberately close to what the paper's LLVM passes consume:
    programs are functions, functions are basic blocks, blocks have a byte
    size and an instruction count, and control flow is explicit (no implicit
    fall-through — the layout engine decides adjacency, and pays for broken
    fall-throughs with extra jump bytes, mirroring the paper's
    basic-block-reordering pre-processing step). *)

type func_id = int

type block_id = int
(** Globally unique within a program (not per function). *)

type var = int
(** Index into the interpreter's global variable file. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div  (** Division by zero evaluates to 0, like saturating hardware. *)
  | Mod  (** Modulo by zero evaluates to 0. *)
  | Xor
  | And
  | Or
  | Lt
  | Le
  | Eq
  | Ne
  | Gt
  | Ge

type expr =
  | Const of int
  | Var of var
  | Bin of binop * expr * expr
  | Rand of int
      (** [Rand n] draws uniformly from [[0, n)] using the run's seeded PRNG;
          this is how data-dependent branch behaviour enters the model. *)

type instr =
  | Assign of var * expr
  | Work of int
      (** [Work n] stands for [n] straight-line ALU instructions. It is the
          knob that gives blocks realistic byte sizes. *)
  | Load of expr
      (** Read memory at the evaluated address: drives the data side of the
          unified-cache model (Eq 1). The loaded value is not materialized —
          synthetic programs' control flow never depends on memory
          contents. *)
  | Store of expr  (** Write memory at the evaluated address. *)

type terminator =
  | Jump of block_id
  | Branch of { cond : expr; if_true : block_id; if_false : block_id }
      (** Non-zero condition takes [if_true]. *)
  | Switch of { sel : expr; targets : block_id array; default : block_id }
      (** Indexed jump: in-range selector picks [targets.(sel)]; used for the
          interpreter-style dispatch loops of the perlbench/gcc analogs. *)
  | Call of { callee : func_id; return_to : block_id }
      (** Calls transfer to [callee]'s entry; its [Return] resumes at
          [return_to] in the calling function. *)
  | Return
  | Halt

let binop_to_string = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Mod -> "%"
  | Xor -> "^"
  | And -> "&"
  | Or -> "|"
  | Lt -> "<"
  | Le -> "<="
  | Eq -> "=="
  | Ne -> "!="
  | Gt -> ">"
  | Ge -> ">="

let rec expr_to_string = function
  | Const n -> string_of_int n
  | Var v -> Printf.sprintf "v%d" v
  | Bin (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_to_string op) (expr_to_string b)
  | Rand n -> Printf.sprintf "rand(%d)" n

let instr_to_string = function
  | Assign (v, e) -> Printf.sprintf "v%d := %s" v (expr_to_string e)
  | Work n -> Printf.sprintf "work %d" n
  | Load e -> Printf.sprintf "load [%s]" (expr_to_string e)
  | Store e -> Printf.sprintf "store [%s]" (expr_to_string e)
