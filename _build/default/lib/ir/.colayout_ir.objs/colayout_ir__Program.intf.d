lib/ir/program.mli: Format Types
