lib/ir/types.ml: Printf
