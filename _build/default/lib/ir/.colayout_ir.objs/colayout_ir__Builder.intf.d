lib/ir/builder.mli: Program Types
