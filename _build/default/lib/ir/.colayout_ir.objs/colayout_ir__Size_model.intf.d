lib/ir/size_model.mli: Types
