lib/ir/cfg.mli: Program Types
