lib/ir/cfg.ml: Array Float Hashtbl List Program Types
