lib/ir/program.ml: Array Format List Printf String Types
