lib/ir/ir_text.ml: Array Buffer Builder Hashtbl List Option Printf Program String Types Validate
