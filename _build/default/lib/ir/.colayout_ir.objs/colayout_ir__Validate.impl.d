lib/ir/validate.ml: Array List Printf Program Queue Types
