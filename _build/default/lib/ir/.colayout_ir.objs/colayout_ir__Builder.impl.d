lib/ir/builder.ml: Array Colayout_util List Printf Program Size_model Types Validate Vec
