lib/ir/size_model.ml: Array Types
