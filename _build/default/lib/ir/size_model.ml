open Types

let bytes_per_work_unit = 4

let rec expr_ops = function
  | Const _ | Var _ -> 0
  | Rand _ -> 1
  | Bin (_, a, b) -> 1 + expr_ops a + expr_ops b

let instr_bytes = function
  | Assign (_, e) -> 4 * (1 + expr_ops e)
  | Work n -> bytes_per_work_unit * n
  | Load e | Store e -> 4 * (1 + expr_ops e)

let instr_count = function
  | Assign (_, e) -> 1 + expr_ops e
  | Work n -> n
  | Load e | Store e -> 1 + expr_ops e

let terminator_bytes = function
  | Jump _ -> 5
  | Branch _ -> 8 (* compare + conditional jump *)
  | Switch { targets; _ } -> 12 + (4 * Array.length targets) (* bounds check + indirect jump + table *)
  | Call _ -> 5
  | Return -> 1
  | Halt -> 4

let terminator_instr_count = function
  | Jump _ -> 1
  | Branch _ -> 2
  | Switch _ -> 3
  | Call _ -> 1
  | Return -> 1
  | Halt -> 1

let jump_bytes = 5
