(** Textual IR: a stable, human-writable serialization of programs.

    The format is line-oriented; [print] emits it and [parse] reads it back
    ([parse (print p)] is structurally identical to [p]). Block and function
    references are by name — block names must be unique within their
    function and function names within the program.

    {v
    program demo
    func main *        # '*' marks the entry function
      block entry:
        v0 := 0
        jump loop
      block loop:
        work 10
        v0 := (v0 + 1)
        load (v0 * 64)
        branch (v0 < 100) ? loop : done
      block done:
        halt
    func helper
      block top:
        switch v1 [a b] default a
      block a:
        return
      block b:
        call main -> a       # callee -> return block (same function)
    v}

    Expressions use the same syntax {!Types.expr_to_string} produces:
    integer literals, [vN] variables, [rand(N)], and parenthesized binary
    operations [(e OP e)]. [#] starts a comment. *)

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val print : Program.t -> string

val parse : ?name:string -> string -> Program.t
(** @raise Parse_error on malformed input. [name] overrides the [program]
    header if given. The result is validated. *)

val equal_structure : Program.t -> Program.t -> bool
(** Structural equality: same functions (names, entries), blocks (names,
    instructions, terminators) and main — ignores nothing else, so it is
    exactly what the print/parse roundtrip must preserve. *)
