type block = {
  id : Types.block_id;
  fn : Types.func_id;
  name : string;
  instrs : Types.instr list;
  term : Types.terminator;
  size_bytes : int;
  instr_count : int;
}

type func = {
  fid : Types.func_id;
  fname : string;
  entry : Types.block_id;
  blocks : Types.block_id array;
}

type t = {
  name : string;
  funcs : func array;
  blocks : block array;
  main : Types.func_id;
}

let unsafe_make ~name ~funcs ~blocks ~main = { name; funcs; blocks; main }

let name t = t.name

let num_funcs t = Array.length t.funcs

let num_blocks t = Array.length t.blocks

let func t fid =
  if fid < 0 || fid >= Array.length t.funcs then
    invalid_arg (Printf.sprintf "Program.func: bad id %d" fid);
  t.funcs.(fid)

let block t bid =
  if bid < 0 || bid >= Array.length t.blocks then
    invalid_arg (Printf.sprintf "Program.block: bad id %d" bid);
  t.blocks.(bid)

let funcs t = t.funcs

let blocks t = t.blocks

let main t = t.funcs.(t.main)

let func_size_bytes t fid =
  Array.fold_left (fun acc bid -> acc + t.blocks.(bid).size_bytes) 0 (func t fid).blocks

let total_code_bytes t =
  Array.fold_left (fun acc b -> acc + b.size_bytes) 0 t.blocks

let find_func t fname = Array.find_opt (fun f -> f.fname = fname) t.funcs

let block_successors t bid =
  match (block t bid).term with
  | Types.Jump target -> [ target ]
  | Types.Branch { if_true; if_false; _ } ->
    if if_true = if_false then [ if_true ] else [ if_true; if_false ]
  | Types.Switch { targets; default; _ } ->
    let all = default :: Array.to_list targets in
    List.sort_uniq compare all
  | Types.Call { return_to; _ } -> [ return_to ]
  | Types.Return | Types.Halt -> []

let fallthrough_target t bid =
  match (block t bid).term with
  | Types.Jump target -> Some target
  | Types.Branch { if_false; _ } -> Some if_false
  | Types.Call { return_to; _ } -> Some return_to
  | Types.Switch _ | Types.Return | Types.Halt -> None

let pp ppf t =
  Format.fprintf ppf "program %s (%d funcs, %d blocks, %d bytes)@." t.name
    (Array.length t.funcs) (Array.length t.blocks) (total_code_bytes t);
  Array.iter
    (fun f ->
      Format.fprintf ppf "@.func %s (f%d), entry=b%d@." f.fname f.fid f.entry;
      Array.iter
        (fun bid ->
          let b = t.blocks.(bid) in
          Format.fprintf ppf "  b%d %s [%dB, %d instrs]@." b.id b.name b.size_bytes
            b.instr_count;
          List.iter (fun i -> Format.fprintf ppf "    %s@." (Types.instr_to_string i)) b.instrs;
          let term_str =
            match b.term with
            | Types.Jump x -> Printf.sprintf "jump b%d" x
            | Types.Branch { cond; if_true; if_false } ->
              Printf.sprintf "br %s ? b%d : b%d" (Types.expr_to_string cond) if_true if_false
            | Types.Switch { sel; targets; default } ->
              Printf.sprintf "switch %s [%s] default b%d" (Types.expr_to_string sel)
                (String.concat ";"
                   (Array.to_list (Array.map (fun x -> "b" ^ string_of_int x) targets)))
                default
            | Types.Call { callee; return_to } ->
              Printf.sprintf "call f%d -> b%d" callee return_to
            | Types.Return -> "return"
            | Types.Halt -> "halt"
          in
          Format.fprintf ppf "    %s@." term_str)
        f.blocks)
    t.funcs
