open Colayout_util

type pending_block = {
  bid : Types.block_id;
  pfn : Types.func_id;
  bname : string;
  mutable instrs : Types.instr list;
  mutable term : Types.terminator;
}

type pending_func = {
  pfid : Types.func_id;
  pfname : string;
  mutable pblocks : Types.block_id list; (* reversed declaration order *)
}

type t = {
  name : string;
  funcs : pending_func Vec.t;
  blocks : pending_block Vec.t;
  mutable main : Types.func_id;
}

let create ~name () = { name; funcs = Vec.create (); blocks = Vec.create (); main = 0 }

let func t fname =
  let pfid = Vec.length t.funcs in
  Vec.push t.funcs { pfid; pfname = fname; pblocks = [] };
  pfid

let block t pfn bname =
  if pfn < 0 || pfn >= Vec.length t.funcs then invalid_arg "Builder.block: bad func id";
  let bid = Vec.length t.blocks in
  Vec.push t.blocks { bid; pfn; bname; instrs = []; term = Types.Halt };
  let f = Vec.get t.funcs pfn in
  f.pblocks <- bid :: f.pblocks;
  bid

let set_body t bid instrs term =
  if bid < 0 || bid >= Vec.length t.blocks then invalid_arg "Builder.set_body: bad block id";
  let b = Vec.get t.blocks bid in
  b.instrs <- instrs;
  b.term <- term

let set_main t fid =
  if fid < 0 || fid >= Vec.length t.funcs then invalid_arg "Builder.set_main: bad func id";
  t.main <- fid

let num_funcs t = Vec.length t.funcs

let num_blocks t = Vec.length t.blocks

let block_of_pending (pb : pending_block) : Program.block =
  let body_bytes = List.fold_left (fun acc i -> acc + Size_model.instr_bytes i) 0 pb.instrs in
  let body_count = List.fold_left (fun acc i -> acc + Size_model.instr_count i) 0 pb.instrs in
  {
    id = pb.bid;
    fn = pb.pfn;
    name = pb.bname;
    instrs = pb.instrs;
    term = pb.term;
    size_bytes = body_bytes + Size_model.terminator_bytes pb.term;
    instr_count = body_count + Size_model.terminator_instr_count pb.term;
  }

let func_of_pending (pf : pending_func) : Program.func =
  let blocks = Array.of_list (List.rev pf.pblocks) in
  let entry =
    match Array.length blocks with
    | 0 -> invalid_arg (Printf.sprintf "Builder: function %s has no blocks" pf.pfname)
    | _ -> blocks.(0)
  in
  { fid = pf.pfid; fname = pf.pfname; entry; blocks }

let finish_unchecked t =
  let funcs = Array.map func_of_pending (Vec.to_array t.funcs) in
  let blocks = Array.map block_of_pending (Vec.to_array t.blocks) in
  Program.unsafe_make ~name:t.name ~funcs ~blocks ~main:t.main

let finish t =
  let p = finish_unchecked t in
  Validate.check p;
  p
