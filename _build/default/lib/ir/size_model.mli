(** Static code-size model.

    The compiler in the paper works on LLVM IR and does not know final binary
    sizes (§II-C); we nevertheless need byte sizes to lay blocks out in the
    simulated address space. This module fixes a deterministic bytes-per-
    instruction encoding so that block sizes are stable across analyses and
    transformations. *)

val bytes_per_work_unit : int
(** Size of one [Work] instruction. *)

val expr_ops : Types.expr -> int
(** Number of ALU operations an expression compiles to. *)

val instr_bytes : Types.instr -> int

val instr_count : Types.instr -> int

val terminator_bytes : Types.terminator -> int

val terminator_instr_count : Types.terminator -> int

val jump_bytes : int
(** Size of the unconditional jump inserted when a layout breaks a
    fall-through edge (BB reordering pre-processing, §II-E). *)
