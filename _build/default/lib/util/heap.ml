type 'a t = {
  cmp : 'a -> 'a -> int;
  data : 'a Vec.t;
}

let create ~cmp () = { cmp; data = Vec.create () }

let length t = Vec.length t.data

let is_empty t = Vec.length t.data = 0

let swap t i j =
  let tmp = Vec.get t.data i in
  Vec.set t.data i (Vec.get t.data j);
  Vec.set t.data j tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if t.cmp (Vec.get t.data i) (Vec.get t.data parent) > 0 then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let n = Vec.length t.data in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let largest = ref i in
  if l < n && t.cmp (Vec.get t.data l) (Vec.get t.data !largest) > 0 then largest := l;
  if r < n && t.cmp (Vec.get t.data r) (Vec.get t.data !largest) > 0 then largest := r;
  if !largest <> i then begin
    swap t i !largest;
    sift_down t !largest
  end

let push t x =
  Vec.push t.data x;
  sift_up t (Vec.length t.data - 1)

let peek t = if is_empty t then None else Some (Vec.get t.data 0)

let pop t =
  if is_empty t then None
  else begin
    let top = Vec.get t.data 0 in
    let n = Vec.length t.data in
    Vec.set t.data 0 (Vec.get t.data (n - 1));
    ignore (Vec.pop t.data);
    if not (is_empty t) then sift_down t 0;
    Some top
  end

let of_list ~cmp l =
  let t = create ~cmp () in
  List.iter (push t) l;
  t

let to_sorted_list t =
  let rec loop acc = match pop t with None -> List.rev acc | Some x -> loop (x :: acc) in
  loop []
