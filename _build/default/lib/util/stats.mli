(** Small statistics helpers used by the experiment harness. *)

val mean : float list -> float
(** Arithmetic mean; 0 for the empty list. *)

val geomean : float list -> float
(** Geometric mean of positive values; 0 for the empty list.
    @raise Invalid_argument on non-positive input. *)

val stddev : float list -> float
(** Population standard deviation. *)

val minimum : float list -> float

val maximum : float list -> float

val median : float list -> float

val percentile : float list -> p:float -> float
(** Nearest-rank percentile, [p] in [[0, 100]]. *)

val ratio : float -> float -> float
(** [ratio a b] is [a /. b], or 0 if [b = 0]. *)

val percent_change : base:float -> v:float -> float
(** [(v - base) / base * 100]; 0 when [base = 0]. *)

val speedup : base:float -> opt:float -> float
(** [base /. opt] for time-like quantities: >1 means the optimized run is
    faster. 1 when [opt = 0]. *)

val pearson : float list -> float list -> float
(** Pearson correlation coefficient; 0 when degenerate (constant input or
    mismatched/short lists). *)

val spearman : float list -> float list -> float
(** Spearman rank correlation (Pearson on average-tied ranks); 0 when
    degenerate. Used to compare model predictions against simulation. *)
