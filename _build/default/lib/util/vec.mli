(** Growable polymorphic vector.

    OCaml 5.1 has no [Dynarray] in the standard library; this is the subset
    the rest of the code base needs. Amortized O(1) [push], O(1) random
    access. Not thread-safe. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

val length : 'a t -> int

val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** [get v i] is the [i]-th element. @raise Invalid_argument if out of
    bounds. *)

val set : 'a t -> int -> 'a -> unit

val push : 'a t -> 'a -> unit

val pop : 'a t -> 'a option
(** Remove and return the last element. *)

val last : 'a t -> 'a option

val clear : 'a t -> unit
(** Logical clear; keeps the underlying storage. *)

val iter : ('a -> unit) -> 'a t -> unit

val iteri : (int -> 'a -> unit) -> 'a t -> unit

val fold_left : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc

val map : ('a -> 'b) -> 'a t -> 'b t

val exists : ('a -> bool) -> 'a t -> bool

val to_list : 'a t -> 'a list

val of_list : 'a list -> 'a t

val to_array : 'a t -> 'a array

val of_array : 'a array -> 'a t

val append : 'a t -> 'a t -> unit
(** [append dst src] pushes all of [src] onto [dst]. *)

val sub : 'a t -> pos:int -> len:int -> 'a t
