type color = Red | Black

type node = {
  mutable key : int;
  mutable color : color;
  mutable left : node;
  mutable right : node;
  mutable parent : node;
  mutable size : int; (* subtree size, nil = 0 *)
}

type t = {
  mutable root : node;
  nil : node;
}

let make_nil () =
  let rec nil =
    { key = min_int; color = Black; left = nil; right = nil; parent = nil; size = 0 }
  in
  nil

let create () =
  let nil = make_nil () in
  { root = nil; nil }

let size t = t.root.size

let update_size t n = if n != t.nil then n.size <- n.left.size + n.right.size + 1

let left_rotate t x =
  let y = x.right in
  x.right <- y.left;
  if y.left != t.nil then y.left.parent <- x;
  y.parent <- x.parent;
  if x.parent == t.nil then t.root <- y
  else if x == x.parent.left then x.parent.left <- y
  else x.parent.right <- y;
  y.left <- x;
  x.parent <- y;
  y.size <- x.size;
  update_size t x

let right_rotate t y =
  let x = y.left in
  y.left <- x.right;
  if x.right != t.nil then x.right.parent <- y;
  x.parent <- y.parent;
  if y.parent == t.nil then t.root <- x
  else if y == y.parent.left then y.parent.left <- x
  else y.parent.right <- x;
  x.right <- y;
  y.parent <- x;
  x.size <- y.size;
  update_size t y

let rec insert_fixup t z =
  if z.parent.color = Red then begin
    if z.parent == z.parent.parent.left then begin
      let y = z.parent.parent.right in
      if y.color = Red then begin
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        (* After a possible rotation [z] is a left child. *)
        let z = if z == z.parent.right then (left_rotate t z.parent; z.left) else z in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        right_rotate t z.parent.parent
      end
    end
    else begin
      let y = z.parent.parent.left in
      if y.color = Red then begin
        z.parent.color <- Black;
        y.color <- Black;
        z.parent.parent.color <- Red;
        insert_fixup t z.parent.parent
      end
      else begin
        let z = if z == z.parent.left then (right_rotate t z.parent; z.right) else z in
        z.parent.color <- Black;
        z.parent.parent.color <- Red;
        left_rotate t z.parent.parent
      end
    end
  end

let insert t k =
  let z =
    { key = k; color = Red; left = t.nil; right = t.nil; parent = t.nil; size = 1 }
  in
  let y = ref t.nil and x = ref t.root in
  while !x != t.nil do
    y := !x;
    if k = !x.key then invalid_arg "Ostree.insert: duplicate key";
    (!x).size <- (!x).size + 1;
    if k < !x.key then x := !x.left else x := !x.right
  done;
  z.parent <- !y;
  if !y == t.nil then t.root <- z
  else if k < !y.key then !y.left <- z
  else !y.right <- z;
  insert_fixup t z;
  t.root.color <- Black

let rec find_node t n k =
  if n == t.nil then t.nil
  else if k = n.key then n
  else if k < n.key then find_node t n.left k
  else find_node t n.right k

let mem t k = find_node t t.root k != t.nil

let rec tree_minimum t n = if n.left == t.nil then n else tree_minimum t n.left

let min_key t = if t.root == t.nil then None else Some (tree_minimum t t.root).key

let max_key t =
  if t.root == t.nil then None
  else begin
    let rec loop n = if n.right == t.nil then n else loop n.right in
    Some (loop t.root).key
  end

let transplant t u v =
  if u.parent == t.nil then t.root <- v
  else if u == u.parent.left then u.parent.left <- v
  else u.parent.right <- v;
  v.parent <- u.parent

let rec delete_fixup t x =
  if x != t.root && x.color = Black then begin
    if x == x.parent.left then begin
      let w = ref x.parent.right in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        left_rotate t x.parent;
        w := x.parent.right
      end;
      if !w.left.color = Black && !w.right.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.right.color = Black then begin
          !w.left.color <- Black;
          !w.color <- Red;
          right_rotate t !w;
          w := x.parent.right
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.right.color <- Black;
        left_rotate t x.parent
      end
    end
    else begin
      let w = ref x.parent.left in
      if !w.color = Red then begin
        !w.color <- Black;
        x.parent.color <- Red;
        right_rotate t x.parent;
        w := x.parent.left
      end;
      if !w.right.color = Black && !w.left.color = Black then begin
        !w.color <- Red;
        delete_fixup t x.parent
      end
      else begin
        if !w.left.color = Black then begin
          !w.right.color <- Black;
          !w.color <- Red;
          left_rotate t !w;
          w := x.parent.left
        end;
        !w.color <- x.parent.color;
        x.parent.color <- Black;
        !w.left.color <- Black;
        right_rotate t x.parent
      end
    end
  end
  else x.color <- Black

let decrement_sizes_on_path t from =
  (* Walk parents from [from] to the root decrementing sizes: the node being
     physically unlinked leaves every subtree on that path. *)
  let n = ref from in
  while !n != t.nil do
    (!n).size <- (!n).size - 1;
    n := !n.parent
  done

let delete t k =
  let z = find_node t t.root k in
  if z == t.nil then raise Not_found;
  (* Standard CLRS delete with size maintenance: first decrement sizes on
     the path from z's parent up (z itself leaves the tree). *)
  let y = ref z in
  let y_original_color = ref !y.color in
  let x = ref t.nil in
  if z.left == t.nil then begin
    decrement_sizes_on_path t z.parent;
    x := z.right;
    transplant t z z.right
  end
  else if z.right == t.nil then begin
    decrement_sizes_on_path t z.parent;
    x := z.left;
    transplant t z z.left
  end
  else begin
    let succ = tree_minimum t z.right in
    y := succ;
    y_original_color := succ.color;
    (* Sizes: every node on the path from succ's parent up loses the
       successor; then succ takes over z's slot and size is recomputed. *)
    decrement_sizes_on_path t succ.parent;
    x := succ.right;
    if succ.parent == z then !x.parent <- succ
    else begin
      transplant t succ succ.right;
      succ.right <- z.right;
      succ.right.parent <- succ
    end;
    transplant t z succ;
    succ.left <- z.left;
    succ.left.parent <- succ;
    succ.color <- z.color;
    update_size t succ;
    (* The path above succ already counted z's removal via the decrement
       walk, except that succ replaced z: the decrement walk subtracted one
       for succ's departure from the right spine, which is exactly z's net
       removal from the tree. Nothing further to fix. *)
    ()
  end;
  if !y_original_color = Black then delete_fixup t !x;
  t.nil.parent <- t.nil;
  t.nil.color <- Black

let rank_above t k =
  (* Count keys strictly greater than k. *)
  let rec loop n acc =
    if n == t.nil then acc
    else if k < n.key then loop n.left (acc + n.right.size + 1)
    else if k = n.key then acc + n.right.size
    else loop n.right acc
  in
  loop t.root 0

let check_invariants t =
  let fail fmt = Printf.ksprintf failwith fmt in
  if t.root.color <> Black then fail "root is not black";
  let rec go n lo hi =
    if n == t.nil then 1 (* black height counting nil *)
    else begin
      (match lo with Some l when n.key <= l -> fail "BST order violated (low)" | _ -> ());
      (match hi with Some h when n.key >= h -> fail "BST order violated (high)" | _ -> ());
      if n.color = Red && (n.left.color = Red || n.right.color = Red) then
        fail "red node with red child";
      if n.size <> n.left.size + n.right.size + 1 then
        fail "size bookkeeping broken at key %d (size=%d l=%d r=%d)" n.key n.size
          n.left.size n.right.size;
      let bl = go n.left lo (Some n.key) in
      let br = go n.right (Some n.key) hi in
      if bl <> br then fail "black heights differ at key %d" n.key;
      bl + (if n.color = Black then 1 else 0)
    end
  in
  ignore (go t.root None None)
