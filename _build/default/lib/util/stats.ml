let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> 0.0
  | xs ->
    let logsum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive value";
          acc +. log x)
        0.0 xs
    in
    exp (logsum /. float_of_int (List.length xs))

let stddev = function
  | [] -> 0.0
  | xs ->
    let m = mean xs in
    let var = mean (List.map (fun x -> (x -. m) *. (x -. m)) xs) in
    sqrt var

let minimum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> 0.0
  | x :: xs -> List.fold_left max x xs

let percentile xs ~p =
  match List.sort compare xs with
  | [] -> 0.0
  | sorted ->
    let n = List.length sorted in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let rank = max 1 (min n rank) in
    List.nth sorted (rank - 1)

let median xs = percentile xs ~p:50.0

let ratio a b = if b = 0.0 then 0.0 else a /. b

let percent_change ~base ~v = if base = 0.0 then 0.0 else (v -. base) /. base *. 100.0

let speedup ~base ~opt = if opt = 0.0 then 1.0 else base /. opt

let pearson xs ys =
  let n = List.length xs in
  if n < 2 || n <> List.length ys then 0.0
  else begin
    let mx = mean xs and my = mean ys in
    let num =
      List.fold_left2 (fun acc x y -> acc +. ((x -. mx) *. (y -. my))) 0.0 xs ys
    in
    let sx = sqrt (List.fold_left (fun a x -> a +. ((x -. mx) ** 2.0)) 0.0 xs) in
    let sy = sqrt (List.fold_left (fun a y -> a +. ((y -. my) ** 2.0)) 0.0 ys) in
    if sx = 0.0 || sy = 0.0 then 0.0 else num /. (sx *. sy)
  end

(* Average ranks with ties: sort indices by value; runs of equal values all
   receive the mean of their positions. *)
let ranks xs =
  let arr = Array.of_list xs in
  let n = Array.length arr in
  let idx = Array.init n Fun.id in
  Array.sort (fun a b -> compare arr.(a) arr.(b)) idx;
  let out = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && arr.(idx.(!j + 1)) = arr.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2.0 +. 1.0 in
    for k = !i to !j do
      out.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list out

let spearman xs ys =
  if List.length xs <> List.length ys then 0.0
  else pearson (ranks xs) (ranks ys)
