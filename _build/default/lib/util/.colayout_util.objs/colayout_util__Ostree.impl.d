lib/util/ostree.ml: Printf
