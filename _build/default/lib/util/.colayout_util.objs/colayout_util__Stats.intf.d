lib/util/stats.mli:
