lib/util/stats.ml: Array Fun List
