lib/util/prng.mli:
