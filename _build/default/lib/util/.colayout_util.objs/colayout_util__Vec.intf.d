lib/util/vec.mli:
