lib/util/dlist.mli:
