lib/util/table.mli:
