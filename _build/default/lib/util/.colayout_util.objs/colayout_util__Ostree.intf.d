lib/util/ostree.mli:
