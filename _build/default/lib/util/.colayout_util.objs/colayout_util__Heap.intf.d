lib/util/heap.mli:
