(** Growable vector of unboxed [int]s.

    Traces are tens of millions of events; this avoids the boxing and write
    barriers a polymorphic ['a Vec.t] would incur. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val is_empty : t -> bool

val get : t -> int -> int

val unsafe_get : t -> int -> int

val set : t -> int -> int -> unit

val push : t -> int -> unit

val pop : t -> int option

val last : t -> int option

val clear : t -> unit

val iter : (int -> unit) -> t -> unit

val iteri : (int -> int -> unit) -> t -> unit

val fold_left : ('acc -> int -> 'acc) -> 'acc -> t -> 'acc

val to_list : t -> int list

val of_list : int list -> t

val to_array : t -> int array

val of_array : int array -> t

val append : t -> t -> unit

val sub : t -> pos:int -> len:int -> t

val max_element : t -> int option

val equal : t -> t -> bool
