(** Array-backed binary max-heap with a caller-supplied ordering.

    Used with lazy deletion by TRG reduction: stale entries are popped and
    discarded by the caller, which keeps edge-weight updates O(log n). *)

type 'a t

val create : cmp:('a -> 'a -> int) -> unit -> 'a t
(** [cmp] as for [compare]; the maximum element (per [cmp]) is popped
    first. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option

val pop : 'a t -> 'a option

val of_list : cmp:('a -> 'a -> int) -> 'a list -> 'a t

val to_sorted_list : 'a t -> 'a list
(** Destructive: pops everything, max first. *)
