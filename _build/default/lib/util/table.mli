(** Plain-text table rendering for experiment reports.

    The harness prints every reproduced paper table/figure as one of these;
    [to_csv] gives a machine-readable copy. *)

type align = Left | Right

type t

val create : title:string -> columns:(string * align) list -> t

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the row width differs from the header. *)

val add_rows : t -> string list list -> unit

val row_count : t -> int

val title : t -> string

val render : t -> string
(** Boxed, column-aligned text. *)

val to_csv : t -> string

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val fmt_pct : float -> string
(** [3.14159 -> "3.14%"]. *)

val fmt_ratio : float -> string
(** Fixed 3 decimals, e.g. speedups. *)

val fmt_float : ?decimals:int -> float -> string

val fmt_int : int -> string
(** Thousands-separated. *)
