type t = {
  mutable data : int array;
  mutable len : int;
}

let create ?(capacity = 16) () =
  if capacity < 0 then invalid_arg "Int_vec.create";
  { data = Array.make (max capacity 1) 0; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Int_vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let unsafe_get v i = Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v =
  let data' = Array.make (2 * Array.length v.data) 0 in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let to_list v = List.rev (fold_left (fun acc x -> x :: acc) [] v)

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.sub v.data 0 v.len

let of_array a =
  let v = create ~capacity:(max 1 (Array.length a)) () in
  Array.iter (push v) a;
  v

let append dst src = iter (push dst) src

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Int_vec.sub";
  let out = create ~capacity:(max len 1) () in
  for i = pos to pos + len - 1 do
    push out v.data.(i)
  done;
  out

let max_element v =
  if v.len = 0 then None
  else Some (fold_left (fun m x -> if x > m then x else m) min_int v)

let equal a b =
  a.len = b.len
  &&
  let rec loop i = i >= a.len || (a.data.(i) = b.data.(i) && loop (i + 1)) in
  loop 0
