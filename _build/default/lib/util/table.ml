type align = Left | Right

type t = {
  title : string;
  headers : string list;
  aligns : align list;
  mutable rows : string list list; (* reversed *)
  width : int;
}

let create ~title ~columns =
  {
    title;
    headers = List.map fst columns;
    aligns = List.map snd columns;
    rows = [];
    width = List.length columns;
  }

let add_row t row =
  if List.length row <> t.width then
    invalid_arg
      (Printf.sprintf "Table.add_row: expected %d cells, got %d" t.width
         (List.length row));
  t.rows <- row :: t.rows

let add_rows t rows = List.iter (add_row t) rows

let row_count t = List.length t.rows

let title t = t.title

let rows_in_order t = List.rev t.rows

let column_widths t =
  let widths = Array.of_list (List.map String.length t.headers) in
  List.iter
    (fun row -> List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row)
    (rows_in_order t);
  widths

let pad align width s =
  let n = width - String.length s in
  if n <= 0 then s
  else
    match align with
    | Left -> s ^ String.make n ' '
    | Right -> String.make n ' ' ^ s

let render t =
  let widths = column_widths t in
  let buf = Buffer.create 1024 in
  let sep =
    "+"
    ^ String.concat "+" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') widths))
    ^ "+"
  in
  let render_row cells =
    let padded =
      List.mapi
        (fun i c ->
          let a = List.nth t.aligns i in
          " " ^ pad a widths.(i) c ^ " ")
        cells
    in
    "|" ^ String.concat "|" padded ^ "|"
  in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (sep ^ "\n");
  Buffer.add_string buf (render_row t.headers ^ "\n");
  Buffer.add_string buf (sep ^ "\n");
  List.iter (fun r -> Buffer.add_string buf (render_row r ^ "\n")) (rows_in_order t);
  Buffer.add_string buf sep;
  Buffer.contents buf

let csv_escape s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') s then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' s) ^ "\""
  else s

let to_csv t =
  let line cells = String.concat "," (List.map csv_escape cells) in
  String.concat "\n" (line t.headers :: List.map line (rows_in_order t))

let print t =
  print_string (render t);
  print_newline ();
  print_newline ()

let fmt_pct v = Printf.sprintf "%.2f%%" v

let fmt_ratio v = Printf.sprintf "%.3f" v

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + len / 3 + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf
