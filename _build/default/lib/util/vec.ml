type 'a t = {
  mutable data : 'a array;
  mutable len : int;
}

(* [capacity] is accepted for API symmetry with [Int_vec]; a polymorphic
   array cannot be pre-allocated without a dummy element, so growth starts
   at the first [push]. *)
let create ?(capacity = 8) () =
  if capacity < 0 then invalid_arg "Vec.create";
  { data = [||]; len = 0 }

let length v = v.len

let is_empty v = v.len = 0

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Vec: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  v.data.(i)

let set v i x =
  check v i;
  v.data.(i) <- x

let grow v x =
  let cap = Array.length v.data in
  let cap' = if cap = 0 then 8 else cap * 2 in
  let data' = Array.make cap' x in
  Array.blit v.data 0 data' 0 v.len;
  v.data <- data'

let push v x =
  if v.len = Array.length v.data then grow v x;
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then None
  else begin
    v.len <- v.len - 1;
    Some v.data.(v.len)
  end

let last v = if v.len = 0 then None else Some v.data.(v.len - 1)

let clear v = v.len <- 0

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let map f v =
  let out = create () in
  iter (fun x -> push out (f x)) v;
  out

let exists p v =
  let rec loop i = i < v.len && (p v.data.(i) || loop (i + 1)) in
  loop 0

let to_list v = List.rev (fold_left (fun acc x -> x :: acc) [] v)

let of_list l =
  let v = create () in
  List.iter (push v) l;
  v

let to_array v = Array.init v.len (fun i -> v.data.(i))

let of_array a =
  let v = create () in
  Array.iter (push v) a;
  v

let append dst src = iter (push dst) src

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Vec.sub";
  let out = create () in
  for i = pos to pos + len - 1 do
    push out v.data.(i)
  done;
  out
