(** Order-statistic red-black tree over integer keys.

    The paper's §II-F stack processing cites the Linux-kernel combination of
    a linked list with a red-black tree for fast search. We use this tree to
    compute LRU stack distances in O(log n): keys are last-access timestamps,
    and [rank_above] counts how many currently resident blocks were touched
    more recently than a given time — exactly the stack depth. *)

type t

val create : unit -> t

val size : t -> int

val insert : t -> int -> unit
(** Insert a key. @raise Invalid_argument on duplicate keys; timestamps are
    unique by construction. *)

val delete : t -> int -> unit
(** @raise Not_found if the key is absent. *)

val mem : t -> int -> bool

val rank_above : t -> int -> int
(** [rank_above t k] is the number of keys strictly greater than [k]. *)

val min_key : t -> int option

val max_key : t -> int option

val check_invariants : t -> unit
(** Verify binary-search order, red-black coloring rules, black-height
    balance and subtree-size bookkeeping. For tests. @raise Failure when an
    invariant is broken. *)
