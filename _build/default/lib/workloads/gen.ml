open Colayout_util
open Colayout_ir

type style =
  | Phased
  | Dispatch of { table : int; zipf_s : float }

type profile = {
  pname : string;
  seed : int;
  style : style;
  phases : int;
  funcs_per_phase : int;
  shared_funcs : int;
  arms : int;
  arm_blocks : int;
  arm_work : int;
  cold_arms : int;
  cold_work : int;
  entry_work : int;
  exit_work : int;
  cold_funcs : int;
  cold_func_blocks : int;
  iters_per_phase : int;
  phase_repeats : int;
  fetch_rate : float;
  uncorrelated_frac : float;
  data_region_bytes : int;
  loads_per_block : int;
}

let default_profile =
  {
    pname = "default";
    seed = 1;
    style = Phased;
    phases = 4;
    funcs_per_phase = 10;
    shared_funcs = 2;
    arms = 6;
    arm_blocks = 2;
    arm_work = 24;
    cold_arms = 2;
    cold_work = 32;
    entry_work = 4;
    exit_work = 3;
    cold_funcs = 10;
    cold_func_blocks = 4;
    iters_per_phase = 40;
    phase_repeats = 1000;
    fetch_rate = 1.0;
    uncorrelated_frac = 0.35;
    data_region_bytes = 0;
    loads_per_block = 2;
  }

(* Global variable roles used by generated code. *)
let v_mode = 0

let v_iter = 1

let v_rep = 2

let v_idx = 3

let check p =
  let pos what v = if v <= 0 then invalid_arg (Printf.sprintf "Gen: %s must be positive" what) in
  pos "phases" p.phases;
  pos "funcs_per_phase" p.funcs_per_phase;
  pos "arms" p.arms;
  pos "arm_blocks" p.arm_blocks;
  pos "arm_work" p.arm_work;
  pos "entry_work" p.entry_work;
  pos "exit_work" p.exit_work;
  pos "iters_per_phase" p.iters_per_phase;
  pos "phase_repeats" p.phase_repeats;
  if p.shared_funcs < 0 || p.cold_arms < 0 || p.cold_funcs < 0 then
    invalid_arg "Gen: negative counts";
  if p.uncorrelated_frac < 0.0 || p.uncorrelated_frac > 1.0 then
    invalid_arg "Gen: uncorrelated_frac must be in [0,1]";
  if p.data_region_bytes < 0 then invalid_arg "Gen: negative data region";
  if p.data_region_bytes > 0 && p.loads_per_block <= 0 then
    invalid_arg "Gen: loads_per_block must be positive when data is enabled";
  (match p.style with
  | Dispatch { table; zipf_s } ->
    pos "dispatch table" table;
    if zipf_s < 0.0 then invalid_arg "Gen: negative zipf exponent"
  | Phased -> ())

(* A callable "worker" function: entry switches on the shared mode variable
   to one of [arms] hot arm chains; [cold_arms] never-reached arms are
   interleaved between hot arms in declaration order. *)
let declare_worker b p ~rng ~data_base ~name =
  let fid = Builder.func b name in
  let correlated = not (Prng.bool rng ~p:p.uncorrelated_frac) in
  (* Data side: each hot arm block reads random indices of this function's
     region, as array-walking numeric code would. *)
  let arm_instrs =
    if p.data_region_bytes = 0 then [ Types.Work p.arm_work ]
    else
      Types.Work p.arm_work
      :: List.init p.loads_per_block (fun _ ->
             Types.Load
               (Types.Bin (Types.Add, Types.Const data_base, Types.Rand p.data_region_bytes)))
  in
  let entry = Builder.block b fid (name ^ ".entry") in
  let arm_heads = Array.make p.arms 0 in
  let cold_after = Array.make p.arms false in
  (* Spread the cold arms evenly after the first [cold_arms] hot arms. *)
  for i = 0 to min p.cold_arms p.arms - 1 do
    let slot = i * p.arms / max 1 p.cold_arms in
    cold_after.(min slot (p.arms - 1)) <- true
  done;
  let cold_heads = ref [] in
  let arm_chains = Array.make p.arms [||] in
  for a = 0 to p.arms - 1 do
    let chain =
      Array.init p.arm_blocks (fun j ->
          Builder.block b fid (Printf.sprintf "%s.arm%d.%d" name a j))
    in
    arm_chains.(a) <- chain;
    arm_heads.(a) <- chain.(0);
    if cold_after.(a) then begin
      let cb = Builder.block b fid (Printf.sprintf "%s.cold%d" name a) in
      cold_heads := cb :: !cold_heads
    end
  done;
  let exit = Builder.block b fid (name ^ ".exit") in
  let sel = if correlated then Types.Var v_mode else Types.Rand p.arms in
  Builder.set_body b entry
    [ Types.Work p.entry_work ]
    (Types.Switch { sel; targets = arm_heads; default = arm_heads.(0) });
  for a = 0 to p.arms - 1 do
    let chain = arm_chains.(a) in
    Array.iteri
      (fun j blk ->
        let term =
          if j + 1 < Array.length chain then Types.Jump chain.(j + 1) else Types.Jump exit
        in
        Builder.set_body b blk arm_instrs term)
      chain
  done;
  List.iter
    (fun cb -> Builder.set_body b cb [ Types.Work p.cold_work ] (Types.Jump exit))
    !cold_heads;
  Builder.set_body b exit [ Types.Work p.exit_work ] Types.Return;
  fid

let declare_cold_func b p ~name =
  let fid = Builder.func b name in
  let chain =
    Array.init (max 1 p.cold_func_blocks) (fun j ->
        Builder.block b fid (Printf.sprintf "%s.c%d" name j))
  in
  Array.iteri
    (fun j blk ->
      let term =
        if j + 1 < Array.length chain then Types.Jump chain.(j + 1) else Types.Return
      in
      Builder.set_body b blk [ Types.Work (max 1 p.cold_work) ] term)
    chain;
  fid

type decl =
  | Worker of int * int (* phase, index *)
  | Shared of int
  | Cold of int

let build p =
  check p;
  let rng = Prng.create ~seed:p.seed in
  let b = Builder.create ~name:p.pname () in
  (* Declaration (= original layout) order: all functions shuffled, so that
     each phase's members are scattered among other phases' members and the
     cold functions — the bad layout the optimizers start from. *)
  let decls =
    Array.of_list
      (List.concat
         [
           List.concat_map
             (fun i -> List.init p.phases (fun ph -> Worker (ph, i)))
             (List.init p.funcs_per_phase Fun.id);
           List.init p.shared_funcs (fun i -> Shared i);
           List.init p.cold_funcs (fun i -> Cold i);
         ])
  in
  Prng.shuffle rng decls;
  let data_cursor = ref 0 in
  let next_data_base () =
    let base = !data_cursor in
    data_cursor := base + max 64 p.data_region_bytes;
    base
  in
  let phase_fn = Array.make_matrix p.phases p.funcs_per_phase (-1) in
  let shared_fn = Array.make (max 1 p.shared_funcs) (-1) in
  Array.iter
    (fun d ->
      match d with
      | Worker (ph, i) ->
        phase_fn.(ph).(i) <-
          declare_worker b p ~rng ~data_base:(next_data_base ())
            ~name:(Printf.sprintf "f_p%d_%d" ph i)
      | Shared i ->
        shared_fn.(i) <-
          declare_worker b p ~rng ~data_base:(next_data_base ())
            ~name:(Printf.sprintf "shared_%d" i)
      | Cold i -> ignore (declare_cold_func b p ~name:(Printf.sprintf "cold_%d" i)))
    decls;
  let shared_list = List.filter (fun f -> f >= 0) (Array.to_list shared_fn) in
  let main = Builder.func b "main" in
  Builder.set_main b main;
  let blk name = Builder.block b main name in
  let bf = Printf.sprintf in
  let incr_of v = Types.Assign (v, Types.Bin (Types.Add, Types.Var v, Types.Const 1)) in
  let lt v bound = Types.Bin (Types.Lt, Types.Var v, Types.Const bound) in
  (match p.style with
  | Phased ->
    (* main.entry must be declared first: Builder takes the first declared
       block of a function as its entry. *)
    let entry = blk "main.entry" in
    let phase_head = Array.init p.phases (fun ph -> blk (bf "main.p%d.head" ph)) in
    let phase_calls =
      Array.init p.phases (fun ph ->
          let members = Array.to_list phase_fn.(ph) @ shared_list in
          let cbs = Array.of_list (List.mapi (fun j _ -> blk (bf "main.p%d.call%d" ph j)) members) in
          (cbs, members))
    in
    let phase_tail = Array.init p.phases (fun ph -> blk (bf "main.p%d.tail" ph)) in
    let rep_tail = blk "main.rep" in
    let exit_blk = blk "main.exit" in
    Builder.set_body b entry
      [ Types.Assign (v_rep, Types.Const 0) ]
      (Types.Jump phase_head.(0));
    for ph = 0 to p.phases - 1 do
      let cbs, members = phase_calls.(ph) in
      Builder.set_body b phase_head.(ph)
        [ Types.Assign (v_iter, Types.Const 0) ]
        (Types.Jump cbs.(0));
      List.iteri
        (fun j f ->
          let return_to = if j + 1 < Array.length cbs then cbs.(j + 1) else phase_tail.(ph) in
          let instrs = if j = 0 then [ Types.Assign (v_mode, Types.Rand p.arms) ] else [] in
          Builder.set_body b cbs.(j) instrs (Types.Call { callee = f; return_to }))
        members;
      let next = if ph + 1 < p.phases then phase_head.(ph + 1) else rep_tail in
      Builder.set_body b phase_tail.(ph)
        [ incr_of v_iter ]
        (Types.Branch { cond = lt v_iter p.iters_per_phase; if_true = cbs.(0); if_false = next })
    done;
    Builder.set_body b rep_tail
      [ incr_of v_rep ]
      (Types.Branch
         { cond = lt v_rep p.phase_repeats; if_true = phase_head.(0); if_false = exit_blk });
    Builder.set_body b exit_blk [] Types.Halt
  | Dispatch { table; zipf_s } ->
    let hot =
      Array.of_list (List.concat_map Array.to_list (Array.to_list phase_fn))
    in
    let entry = blk "main.entry" in
    let loop_head = blk "main.loop" in
    let table_funcs =
      Array.init table (fun _ -> hot.(Prng.zipf rng ~n:(Array.length hot) ~s:zipf_s))
    in
    let call_blks = Array.init table (fun e -> blk (bf "main.d%d" e)) in
    let shared_blks = Array.of_list (List.mapi (fun j _ -> blk (bf "main.s%d" j)) shared_list) in
    let tail = blk "main.tail" in
    let exit_blk = blk "main.exit" in
    let after_dispatch = if Array.length shared_blks > 0 then shared_blks.(0) else tail in
    Builder.set_body b entry
      [ Types.Assign (v_rep, Types.Const 0) ]
      (Types.Jump loop_head);
    Builder.set_body b loop_head
      [ Types.Assign (v_mode, Types.Rand p.arms); Types.Assign (v_idx, Types.Rand table) ]
      (Types.Switch { sel = Types.Var v_idx; targets = call_blks; default = tail });
    Array.iteri
      (fun e cb ->
        Builder.set_body b cb []
          (Types.Call { callee = table_funcs.(e); return_to = after_dispatch }))
      call_blks;
    List.iteri
      (fun j f ->
        let return_to = if j + 1 < Array.length shared_blks then shared_blks.(j + 1) else tail in
        Builder.set_body b shared_blks.(j) [] (Types.Call { callee = f; return_to }))
      shared_list;
    let total_iters = p.iters_per_phase * p.phases * p.phase_repeats in
    Builder.set_body b tail
      [ incr_of v_rep ]
      (Types.Branch { cond = lt v_rep total_iters; if_true = loop_head; if_false = exit_blk });
    Builder.set_body b exit_blk [] Types.Halt);
  Builder.finish b

let hot_code_bytes p =
  let callable = (p.phases * p.funcs_per_phase) + p.shared_funcs in
  let entry = (4 * p.entry_work) + 12 + (4 * p.arms) in
  let arms = p.arms * p.arm_blocks * ((4 * p.arm_work) + 5) in
  let exit = (4 * p.exit_work) + 1 in
  callable * (entry + arms + exit)
