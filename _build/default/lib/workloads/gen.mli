(** Synthetic workload generator.

    SPEC CPU2006 binaries are not available in this environment; these
    generators produce programs with the code-reuse structure that drives
    the paper's evaluation (see DESIGN.md, substitution table):

    - {b phased execution}: main cycles through phases; each phase's
      iterations call that phase's member functions plus a few functions
      shared by all phases. Phase members co-occur tightly — the reference
      affinity the optimizers exploit. Function declaration order interleaves
      the phases (and sprinkles never-called cold functions between them), so
      the {e original} layout scatters each phase's working set — the
      situation Figure 3 motivates.
    - {b correlated branching}: each iteration draws a [mode]; every function
      switches on the shared [mode] variable, executing one arm out of many.
      Arms of the same mode across different functions always execute
      together — inter-procedural basic-block affinity that function
      reordering cannot capture (the paper's X2/Y2, X3/Y3 example).
    - {b cold code}: never-executed arms sit between hot arms inside each
      function, and never-called functions sit between hot functions.
    - {b dispatch style}: alternatively main is one interpreter-style
      dispatch loop over a Zipf-weighted function table (the
      perlbench/gcc-like shape), with weaker phase structure.

    All randomness is drawn from the profile's seed; builds are
    deterministic. *)

type style =
  | Phased
  | Dispatch of { table : int; zipf_s : float }

type profile = {
  pname : string;
  seed : int;
  style : style;
  phases : int;
  funcs_per_phase : int;
  shared_funcs : int;  (** Called every iteration, independent of phase. *)
  arms : int;  (** Hot arms per function; [mode] ranges over these. *)
  arm_blocks : int;  (** Blocks per arm. *)
  arm_work : int;  (** [Work] units per arm block (4 bytes each). *)
  cold_arms : int;  (** Never-executed arms per function. *)
  cold_work : int;
  entry_work : int;
  exit_work : int;
  cold_funcs : int;  (** Never-called functions. *)
  cold_func_blocks : int;
  iters_per_phase : int;
  phase_repeats : int;  (** Outer sweeps over all phases. *)
  fetch_rate : float;
      (** Relative instruction-fetch speed in shared-cache co-run (1.0 =
          compute-bound; lower = data-bound, fetching instructions more
          slowly). Consumed by the experiment harness, not by [build]. *)
  uncorrelated_frac : float;
      (** Fraction of worker functions whose arm choice ignores the shared
          [mode] variable and draws independently. Real programs' branch
          correlations are imperfect; this is the dial. *)
  data_region_bytes : int;
      (** When positive, every hot arm block issues [loads_per_block]
          random-index loads into a per-function data region of this many
          bytes — the data stream of the unified-cache model (Eq 1). 0
          disables data accesses (the default; the L1I calibration assumes
          it). *)
  loads_per_block : int;
}

val default_profile : profile
(** A medium-size phased program; fields are meant to be overridden with
    [{ default_profile with ... }]. *)

val build : profile -> Colayout_ir.Program.t
(** @raise Invalid_argument on non-positive structural fields. The result is
    validated. *)

val hot_code_bytes : profile -> int
(** Rough size of the per-sweep hot working set (entry/exit plus all hot
    arms of all callable functions) — the knob that positions a program's
    solo miss ratio relative to the 32 KB L1I. *)
