lib/workloads/gen.ml: Array Builder Colayout_ir Colayout_util Fun List Printf Prng Types
