lib/workloads/spec.ml: Colayout_ir Gen Hashtbl List String
