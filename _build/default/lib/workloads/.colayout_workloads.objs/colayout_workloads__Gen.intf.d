lib/workloads/gen.mli: Colayout_ir
