lib/workloads/spec.mli: Colayout_ir Gen
