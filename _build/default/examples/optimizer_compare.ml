(* Compare the four optimizers of the paper on one of the SPEC CPU2006
   analog workloads, solo-run: the flow of §II-F end to end.

   Run with: dune exec examples/optimizer_compare.exe [-- program-name]
   e.g.      dune exec examples/optimizer_compare.exe -- 453.povray *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "445.gobmk" in
  let program =
    try W.Spec.build name
    with Not_found ->
      Format.eprintf "unknown program %s; choose one of:@.  %s@." name
        (String.concat " " W.Spec.names);
      exit 1
  in
  Format.printf "%s analog: %d functions, %d blocks, %s bytes static code@." name
    (Colayout_ir.Program.num_funcs program)
    (Colayout_ir.Program.num_blocks program)
    (U.Table.fmt_int (Colayout_ir.Program.total_code_bytes program));

  let params = C.Params.default_l1i in
  Format.printf "L1 instruction cache: %s@.@." (C.Params.to_string params);

  (* One instrumentation run, one reference trace, five layouts. *)
  let results =
    Pipeline.evaluate_kinds program
      ~test_input:(E.Interp.test_input ())
      ~ref_input:(E.Interp.ref_input ())
  in
  let baseline =
    List.find (fun r -> r.Pipeline.kind = Optimizer.Original) results
  in
  let table =
    U.Table.create ~title:(Printf.sprintf "Solo-run I-cache performance of %s" name)
      ~columns:
        [
          ("optimizer", U.Table.Left);
          ("code bytes", U.Table.Right);
          ("added jumps", U.Table.Right);
          ("miss ratio", U.Table.Right);
          ("reduction vs original", U.Table.Right);
        ]
  in
  List.iter
    (fun r ->
      let reduction =
        if baseline.Pipeline.miss_ratio = 0.0 then 0.0
        else
          (baseline.Pipeline.miss_ratio -. r.Pipeline.miss_ratio)
          /. baseline.Pipeline.miss_ratio *. 100.0
      in
      U.Table.add_row table
        [
          Optimizer.kind_name r.Pipeline.kind;
          U.Table.fmt_int r.Pipeline.layout.Layout.total_bytes;
          string_of_int r.Pipeline.layout.Layout.added_jumps;
          U.Table.fmt_pct (100.0 *. r.Pipeline.miss_ratio);
          (if r.Pipeline.kind = Optimizer.Original then "--"
           else Printf.sprintf "%.1f%%" reduction);
        ])
    results;
  U.Table.print table
