(* Quickstart: build a program with the IR builder, instrument it, run the
   affinity analysis, and compare instruction-cache miss ratios of the
   original and optimized layouts.

   The program scales up the paper's Figure 3 motif: main repeatedly calls
   pairs of functions X_i / Y_i; each invocation executes only one of four
   arms of each function, and the arm choice is shared across all functions
   within a phase (the paper's X2/Y2, X3/Y3 correlation). Three quarters of
   every function is inactive in any given phase — exactly the interleaved
   not-currently-hot code that makes the original layout waste the cache.
   Inter-procedural basic-block reordering extracts each phase's correlated
   arms and packs them together.

   Run with: dune exec examples/quickstart.exe *)

open Colayout
open Colayout_ir
module E = Colayout_exec
module C = Colayout_cache

let num_pairs = 5

let num_arms = 4

let v_mode = 0

let v_inner = 1

let v_phase = 2

(* One worker: entry switches on the shared mode to one of four 200-byte
   arms, all converging on a return block. *)
let declare_worker b ~name =
  let f = Builder.func b name in
  let entry = Builder.block b f (name ^ ".entry") in
  let arms = Array.init num_arms (fun a -> Builder.block b f (Printf.sprintf "%s.arm%d" name a)) in
  let ret = Builder.block b f (name ^ ".ret") in
  Builder.set_body b entry
    [ Types.Work 8 ]
    (Types.Switch { sel = Types.Var v_mode; targets = arms; default = arms.(0) });
  Array.iter (fun arm -> Builder.set_body b arm [ Types.Work 50 ] (Types.Jump ret)) arms;
  Builder.set_body b ret [] Types.Return;
  f

let build_program () =
  let b = Builder.create ~name:"quickstart" () in
  let workers =
    List.concat_map
      (fun i -> [ declare_worker b ~name:(Printf.sprintf "X%d" i);
                  declare_worker b ~name:(Printf.sprintf "Y%d" i) ])
      (List.init num_pairs Fun.id)
  in
  let main = Builder.func b "main" in
  Builder.set_main b main;
  let entry = Builder.block b main "entry" in
  let phase = Builder.block b main "phase" in
  let calls = List.map (fun f -> (f, Builder.block b main (Printf.sprintf "call%d" f))) workers in
  let tail = Builder.block b main "tail" in
  let next_phase = Builder.block b main "next_phase" in
  let stop = Builder.block b main "stop" in
  let first_call = snd (List.hd calls) in
  Builder.set_body b entry [ Types.Assign (v_phase, Types.Const 0) ] (Types.Jump phase);
  (* A phase draws the shared arm index once, then runs 50 iterations. *)
  Builder.set_body b phase
    [ Types.Assign (v_mode, Types.Rand num_arms); Types.Assign (v_inner, Types.Const 0) ]
    (Types.Jump first_call);
  let rec wire = function
    | [] -> ()
    | [ (f, blk) ] -> Builder.set_body b blk [] (Types.Call { callee = f; return_to = tail })
    | (f, blk) :: ((_, nxt) :: _ as rest) ->
      Builder.set_body b blk [] (Types.Call { callee = f; return_to = nxt });
      wire rest
  in
  wire calls;
  Builder.set_body b tail
    [ Types.Assign (v_inner, Types.Bin (Types.Add, Types.Var v_inner, Types.Const 1)) ]
    (Types.Branch
       { cond = Types.Bin (Types.Lt, Types.Var v_inner, Types.Const 50);
         if_true = first_call; if_false = next_phase });
  Builder.set_body b next_phase
    [ Types.Assign (v_phase, Types.Bin (Types.Add, Types.Var v_phase, Types.Const 1)) ]
    (Types.Branch
       { cond = Types.Bin (Types.Lt, Types.Var v_phase, Types.Const 200);
         if_true = phase; if_false = stop });
  Builder.set_body b stop [] Types.Halt;
  Builder.finish b

let () =
  let program = build_program () in
  Format.printf "Program: %d functions, %d basic blocks, %d bytes of code@."
    (Program.num_funcs program) (Program.num_blocks program)
    (Program.total_code_bytes program);

  (* 1. Instrument with the test input (the paper's profiling run). *)
  let analysis = Optimizer.analyze program (E.Interp.test_input ()) in
  Format.printf "Test-input trace: %d basic-block events after trimming/pruning@."
    (Colayout_trace.Trace.length analysis.Optimizer.bb);

  (* 2. Build layouts. *)
  let original = Optimizer.layout_for Optimizer.Original program analysis in
  let optimized = Optimizer.layout_for Optimizer.Bb_affinity program analysis in
  let name_of bid = (Program.block program bid).Program.name in
  let arm_positions l =
    (* Where did the arm blocks of arm 0 end up? Adjacent ids mean packed. *)
    let xs = ref [] in
    Array.iteri
      (fun pos bid ->
        let n = name_of bid in
        let len = String.length n in
        if len > 5 && String.sub n (len - 5) 5 = ".arm0" then xs := (n, pos) :: !xs)
      l.Layout.order;
    List.rev !xs
  in
  let show_positions l =
    String.concat " "
      (List.map (fun (n, p) -> Printf.sprintf "%s@%d" n p) (arm_positions l))
  in
  Format.printf "@.Positions of the arm-0 blocks (block@slot):@.";
  Format.printf "  original   : %s@." (show_positions original);
  Format.printf "  bb-affinity: %s@." (show_positions optimized);
  Format.printf "(under bb-affinity each phase's correlated arms are contiguous)@.";

  (* 3. Evaluate both layouts on the reference input. The cache is scaled to
     the toy program the same way the 32 KB L1I relates to a SPEC hot set:
     one phase's working set fits only if packed. *)
  let params = C.Params.make ~size_bytes:4096 ~assoc:2 ~line_bytes:64 in
  let ref_trace = Pipeline.reference_trace program (E.Interp.ref_input ()) in
  let ratio layout =
    100.0 *. C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace)
  in
  Format.printf "@.I-cache (%s) miss ratio:@." (C.Params.to_string params);
  Format.printf "  original    : %.2f%%@." (ratio original);
  Format.printf "  bb-affinity : %.2f%%@." (ratio optimized)
