(* Defensiveness and politeness in a shared instruction cache (§II-A).

   Two programs co-run on the hyper-threads of one core. We quantify, for
   the original and the function-affinity layout of the first program:

   - the Eq-1/Eq-2 footprint-theory *prediction* of its solo and co-run
     miss ratios (Miss_prob), and
   - the *measured* ratios from the shared-cache simulator,

   showing that layout optimization improves locality (solo), defensiveness
   (its own co-run misses) and politeness (the peer's misses).

   Run with: dune exec examples/corun_defense.exe *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let () =
  let self_name = "453.povray" and peer_name = "403.gcc" in
  let self = W.Spec.build self_name in
  let peer = W.Spec.build peer_name in
  let params = C.Params.default_l1i in
  let capacity = C.Params.lines_total params in
  Format.printf "self = %s, peer = %s, shared %s@.@." self_name peer_name
    (C.Params.to_string params);

  (* Traces (layout-independent). *)
  let self_trace = Pipeline.reference_trace self (E.Interp.ref_input ()) in
  let peer_trace = Pipeline.reference_trace peer (E.Interp.ref_input ()) in

  (* Layouts for the self program; the peer always runs its original code. *)
  let analysis = Optimizer.analyze self (E.Interp.test_input ()) in
  let layout kind = Optimizer.layout_for kind self analysis in
  let peer_layout = Layout.original peer in
  let peer_curve = Pipeline.footprint_curve ~params ~layout:peer_layout peer_trace in

  let rates =
    ( (W.Spec.profile self_name).W.Gen.fetch_rate,
      (W.Spec.profile peer_name).W.Gen.fetch_rate )
  in

  let table =
    U.Table.create
      ~title:"Predicted (footprint theory, Eqs 1-2) vs simulated miss ratios"
      ~columns:
        [
          ("self layout", U.Table.Left);
          ("pred solo", U.Table.Right);
          ("pred co-run", U.Table.Right);
          ("defensiveness", U.Table.Right);
          ("politeness", U.Table.Right);
          ("sim solo", U.Table.Right);
          ("sim co-run", U.Table.Right);
          ("sim peer", U.Table.Right);
        ]
  in
  List.iter
    (fun kind ->
      let l = layout kind in
      let curve = Pipeline.footprint_curve ~params ~layout:l self_trace in
      let e = Miss_prob.exposure ~self:curve ~peer:peer_curve ~capacity in
      let sim_solo =
        C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout:l self_trace)
      in
      let co =
        Pipeline.miss_ratio_corun ~rates ~params ~self:(l, self_trace)
          ~peer:(peer_layout, peer_trace) ()
      in
      U.Table.add_row table
        [
          Optimizer.kind_name kind;
          U.Table.fmt_pct (100.0 *. e.Miss_prob.solo);
          U.Table.fmt_pct (100.0 *. e.Miss_prob.corun);
          U.Table.fmt_pct (100.0 *. e.Miss_prob.defensiveness);
          U.Table.fmt_pct (100.0 *. e.Miss_prob.politeness);
          U.Table.fmt_pct (100.0 *. sim_solo);
          U.Table.fmt_pct (100.0 *. C.Cache_stats.thread_miss_ratio co 0);
          U.Table.fmt_pct (100.0 *. C.Cache_stats.thread_miss_ratio co 1);
        ])
    [ Optimizer.Original; Optimizer.Func_affinity; Optimizer.Bb_affinity ];
  U.Table.print table;
  Format.printf
    "Defensiveness = extra self misses the peer inflicts; politeness = extra misses@.\
     we inflict on the peer. Both shrink as the layout packs the instruction footprint.@."
