examples/working_sets.mli:
