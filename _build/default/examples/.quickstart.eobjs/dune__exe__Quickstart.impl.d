examples/quickstart.ml: Array Builder Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Format Fun Layout List Optimizer Pipeline Printf Program String Types
