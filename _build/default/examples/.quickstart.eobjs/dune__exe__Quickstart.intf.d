examples/quickstart.mli:
