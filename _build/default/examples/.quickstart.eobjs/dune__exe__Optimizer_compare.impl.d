examples/optimizer_compare.ml: Array Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_util Colayout_workloads Format Layout List Optimizer Pipeline Printf String Sys
