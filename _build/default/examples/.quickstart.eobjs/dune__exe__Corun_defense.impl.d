examples/corun_defense.ml: Colayout Colayout_cache Colayout_exec Colayout_util Colayout_workloads Format Layout List Miss_prob Optimizer Pipeline
