examples/working_sets.ml: Array Colayout Colayout_cache Colayout_exec Colayout_util Colayout_workloads Format Layout List Mrc Optimizer Pettis_hansen Printf Sys
