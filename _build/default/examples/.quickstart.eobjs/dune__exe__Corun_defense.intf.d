examples/corun_defense.mli:
