examples/affinity_hierarchy.ml: Affinity Affinity_hierarchy Array Colayout Colayout_trace Format List String Trg Trg_reduce
