examples/optimizer_compare.mli:
