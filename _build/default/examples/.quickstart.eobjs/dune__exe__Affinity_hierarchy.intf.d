examples/affinity_hierarchy.mli:
