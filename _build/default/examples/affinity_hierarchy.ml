(* The paper's two worked examples, reproduced exactly:

   - Figure 1: the hierarchical w-window affinity of the trace
     B1 B4 B2 B4 B2 B3 B5 B1 B4, and the layout order its bottom-up
     traversal produces (B1 B4 B2 B3 B5);
   - Figure 2: TRG reduction with three code slots producing the sequence
     A B E F C.

   Run with: dune exec examples/affinity_hierarchy.exe *)

open Colayout
module T = Colayout_trace

let block_name i = "B" ^ string_of_int (i + 1)

let () =
  (* ----------------------------------------------------------- Figure 1 *)
  let trace = T.Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ] in
  Format.printf "Figure 1 trace: %s@."
    (String.concat " " (List.map block_name (T.Trace.to_list trace)));
  let h = Affinity_hierarchy.build ~algo:Affinity_hierarchy.Exact ~ws:[ 1; 2; 3; 4; 5 ] trace in
  Format.printf "@.w-window affinity partitions:@.";
  List.iter
    (fun w ->
      let groups = Affinity_hierarchy.partition_at h ~w in
      let show g = "(" ^ String.concat "," (List.map block_name (List.sort compare g)) ^ ")" in
      Format.printf "  w=%d: %s@." w (String.concat " " (List.map show groups)))
    [ 1; 2; 3; 4; 5 ];
  Format.printf "@.Hierarchy: %a@." Affinity_hierarchy.pp h;
  Format.printf "Output sequence (bottom-up traversal): %s@."
    (String.concat " " (List.map block_name (Affinity_hierarchy.order h)));
  Format.printf "(paper: B1 B4 B2 B3 B5)@.";

  (* Show the footprint of Definition 2 on the paper's other mini example:
     trace B1 B3 B2 B3 B4 has fp<B1,B2> = 3. *)
  let t2 = T.Trace.of_list ~num_symbols:4 [ 0; 2; 1; 2; 3 ] in
  Format.printf "@.Definition 2 example: fp<B1,B2> in B1 B3 B2 B3 B4 = %d (paper: 3)@."
    (Affinity.window_footprint t2 0 2);

  (* ----------------------------------------------------------- Figure 2 *)
  let node_name = function 0 -> "A" | 1 -> "B" | 2 -> "E" | 3 -> "F" | _ -> "C" in
  let trg =
    Trg.of_edges ~num_nodes:5
      [ (0, 1, 40); (2, 3, 30); (3, 0, 10); (3, 1, 15); (4, 0, 25); (4, 1, 22); (4, 2, 20) ]
  in
  Format.printf "@.Figure 2 TRG edges (node, node, conflict weight):@.";
  List.iter
    (fun (x, y, w) -> Format.printf "  %s - %s : %d@." (node_name x) (node_name y) w)
    (Trg.edges trg);
  let r = Trg_reduce.reduce trg ~slots:3 in
  Format.printf "@.After reduction into 3 code slots:@.";
  Array.iteri
    (fun k l ->
      Format.printf "  code slot %d: %s@." (k + 1) (String.concat " " (List.map node_name l)))
    r.Trg_reduce.slot_lists;
  Format.printf "Output sequence: %s  (paper: A B E F C)@."
    (String.concat " " (List.map node_name r.Trg_reduce.order))
