(* Working-set analysis of a program under different layouts.

   One LRU stack-distance pass yields the miss ratio of every cache capacity
   at once (Mattson et al. 1970). This example prints that curve for the
   gobmk analog under four layouts — the original, the paper's two affinity
   optimizers, and the classic Pettis-Hansen call-graph placement — showing
   how reordering moves the working-set knee relative to the 32 KB L1I.

   Run with: dune exec examples/working_sets.exe [-- program-name] *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let () =
  let name = if Array.length Sys.argv > 1 then Sys.argv.(1) else "445.gobmk" in
  let program =
    try W.Spec.build name
    with Not_found ->
      Format.eprintf "unknown program %s@." name;
      exit 1
  in
  let params = C.Params.default_l1i in
  let analysis = Optimizer.analyze program (E.Interp.test_input ()) in
  let run = E.Interp.run program (E.Interp.ref_input ~max_blocks:400_000 ()) in
  let trace = run.E.Interp.bb_trace in
  let layouts =
    [
      ("original", Layout.original program);
      ("func-affinity", Optimizer.layout_for Optimizer.Func_affinity program analysis);
      ("bb-affinity", Optimizer.layout_for Optimizer.Bb_affinity program analysis);
      ("pettis-hansen", Pettis_hansen.layout_for program run.E.Interp.call_trace);
    ]
  in
  let mrcs = List.map (fun (n, l) -> (n, Mrc.of_layout ~params ~layout:l trace)) layouts in
  (* Capacities from 2 KB to 128 KB, in lines. *)
  let capacities = List.map (fun kb -> kb * 1024 / 64) [ 2; 4; 8; 16; 32; 64; 128 ] in
  let t =
    U.Table.create
      ~title:
        (Printf.sprintf "Miss-ratio curves of %s (fully-associative LRU; L1I capacity is 32KB)"
           name)
      ~columns:
        (("capacity", U.Table.Right)
        :: List.map (fun (n, _) -> (n, U.Table.Right)) mrcs)
  in
  List.iter
    (fun cap ->
      U.Table.add_row t
        (Printf.sprintf "%dKB" (cap * 64 / 1024)
        :: List.map
             (fun (_, mrc) -> U.Table.fmt_pct (100.0 *. Mrc.miss_ratio mrc ~capacity_lines:cap))
             mrcs))
    capacities;
  U.Table.print t;
  Format.printf "Working-set knee (capacity for < 1%% misses):@.";
  List.iter
    (fun (n, mrc) ->
      let knee = Mrc.working_set_knee mrc ~threshold:0.01 in
      Format.printf "  %-14s %5d lines = %dKB@." n knee (knee * 64 / 1024))
    mrcs
