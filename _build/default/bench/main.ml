(* Benchmark harness.

   Part 1 — Bechamel micro-benchmarks: one group per paper artifact, timing
   the analysis/simulation kernel that regenerates it, plus the §II-F data
   structures. Part 2 — printed ablation studies for the design choices
   DESIGN.md calls out (affinity w-range, trace pruning, TRG window scale).
   Part 3 — the full experiment suite: every table and figure of the paper,
   regenerated at full scale (this is the output EXPERIMENTS.md quotes).

   Run with: dune exec bench/main.exe *)

open Bechamel
open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util
module H = Colayout_harness

let params = C.Params.default_l1i

(* Shared inputs, prepared once: a mid-size workload and its traces. *)
let program = W.Spec.build "445.gobmk"

let test_run = E.Interp.run program (E.Interp.test_input ~max_blocks:30_000 ())

let test_trace_full = test_run.E.Interp.bb_trace

let fn_trace = test_run.E.Interp.fn_trace

let analysis = Optimizer.analysis_of_traces ~bb:test_trace_full ~fn:fn_trace ()

let bb_trace = analysis.Optimizer.bb

let fn_trimmed = analysis.Optimizer.fn

let ref_trace = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:60_000 ())

let original = Layout.original program

let optimized = Optimizer.layout_for Optimizer.Bb_affinity program analysis

let smt_cfg = E.Smt.default_config ()

let tiny_trace = Colayout_trace.Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ]

(* ------------------------------------------------------------- Part 1 *)

let tests =
  [
    (* Figure 1 / Figures 5-6 core: the w-window affinity analyses. *)
    Test.make ~name:"fig1/affinity-hierarchy (paper w-range)"
      (Staged.stage (fun () ->
           ignore
             (Affinity_hierarchy.build ~ws:Optimizer.default_config.Optimizer.ws bb_trace)));
    Test.make ~name:"fig1/affinity-single-window w=8"
      (Staged.stage (fun () -> ignore (Affinity.affine_pairs bb_trace ~w:8)));
    Test.make ~name:"fig1/affinity-exact-oracle (9-event trace)"
      (Staged.stage (fun () -> ignore (Affinity.affine_pairs_naive tiny_trace ~w:3)));
    (* Figure 2 / Table II TRG path. *)
    Test.make ~name:"fig2/trg-build (fn trace)"
      (Staged.stage (fun () -> ignore (Trg.build ~window:256 fn_trimmed)));
    Test.make ~name:"fig2/trg-reduce (fn trace, 256 slots)"
      (let trg = Trg.build ~window:256 fn_trimmed in
       Staged.stage (fun () -> ignore (Trg_reduce.reduce trg ~slots:256)));
    (* Table I / Figure 4: trace-driven cache simulation. *)
    Test.make ~name:"fig4/icache-solo-replay"
      (Staged.stage (fun () ->
           ignore (Pipeline.miss_ratio_solo ~params ~layout:original ref_trace)));
    Test.make ~name:"fig4/icache-shared-replay"
      (Staged.stage (fun () ->
           ignore
             (Pipeline.miss_ratio_corun ~params ~self:(original, ref_trace)
                ~peer:(optimized, ref_trace) ())));
    (* Figures 5-7: the SMT timing model. *)
    Test.make ~name:"fig5/smt-solo"
      (Staged.stage (fun () ->
           ignore
             (E.Smt.solo smt_cfg (Layout.to_smt_code original)
                (Colayout_trace.Trace.events ref_trace))));
    Test.make ~name:"fig6-7/smt-corun"
      (Staged.stage (fun () ->
           ignore
             (E.Smt.corun smt_cfg ~mode:E.Smt.Finish_both
                (Layout.to_smt_code original, Colayout_trace.Trace.events ref_trace)
                (Layout.to_smt_code optimized, Colayout_trace.Trace.events ref_trace))));
    (* Eq 1/2: the footprint-theory model. *)
    Test.make ~name:"eq1/footprint-curve (line trace)"
      (Staged.stage (fun () ->
           ignore (Pipeline.footprint_curve ~params ~layout:original ref_trace)));
    (* §II-F stack structures: hash+linked-list stack vs order-statistic
       red-black tree. *)
    Test.make ~name:"stack/lru-list walk"
      (Staged.stage (fun () ->
           let s = Colayout_trace.Lru_stack.create () in
           Colayout_trace.Trace.iter
             (fun x -> ignore (Colayout_trace.Lru_stack.access s x))
             bb_trace));
    Test.make ~name:"stack/rb-tree distances"
      (Staged.stage (fun () -> ignore (Colayout_trace.Stack_dist.run bb_trace)));
    (* The transformation itself. *)
    Test.make ~name:"transform/bb-layout assignment"
      (let order = Optimizer.block_order_for Optimizer.Bb_affinity program analysis in
       Staged.stage (fun () ->
           ignore (Layout.of_block_order ~function_stubs:true program order)));
  ]

let run_benchmarks () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) ~stabilize:false () in
  Printf.printf "== Bechamel micro-benchmarks (one per paper artifact) ==\n%!";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] ->
            if ns > 1e6 then Printf.printf "  %-48s %10.2f ms/run\n%!" name (ns /. 1e6)
            else if ns > 1e3 then Printf.printf "  %-48s %10.2f us/run\n%!" name (ns /. 1e3)
            else Printf.printf "  %-48s %10.2f ns/run\n%!" name ns
          | _ -> Printf.printf "  %-48s (no estimate)\n%!" name)
        analyzed)
    tests;
  print_newline ()

(* ------------------------------------------------------------- Part 2 *)

let miss_with_config config kind =
  let a = Optimizer.analysis_of_traces ~config ~bb:test_trace_full ~fn:fn_trace () in
  let layout = Optimizer.layout_for ~config kind program a in
  C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace)

let ablations () =
  let base_config = Optimizer.default_config in
  let t =
    U.Table.create ~title:"Ablation: affinity window range (bb-affinity on 445.gobmk)"
      ~columns:[ ("w range", U.Table.Left); ("solo miss ratio", U.Table.Right) ]
  in
  List.iter
    (fun (label, ws) ->
      let mr = miss_with_config { base_config with Optimizer.ws } Optimizer.Bb_affinity in
      U.Table.add_row t [ label; U.Table.fmt_pct (100.0 *. mr) ])
    [
      ("2..20 (paper)", base_config.Optimizer.ws);
      ("small only [2;3;4]", [ 2; 3; 4 ]);
      ("single [8] (TRG-like)", [ 8 ]);
      ("large only [16;20]", [ 16; 20 ]);
    ];
  U.Table.print t;
  let t2 =
    U.Table.create ~title:"Ablation: trace pruning threshold (§II-F, top-N hottest blocks)"
      ~columns:
        [
          ("top N", U.Table.Right);
          ("coverage", U.Table.Right);
          ("bb-affinity miss", U.Table.Right);
        ]
  in
  List.iter
    (fun top ->
      let config = { base_config with Optimizer.prune_top = top } in
      let a = Optimizer.analysis_of_traces ~config ~bb:test_trace_full ~fn:fn_trace () in
      let layout = Optimizer.layout_for ~config Optimizer.Bb_affinity program a in
      let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
      U.Table.add_row t2
        [
          string_of_int top;
          U.Table.fmt_pct (100.0 *. a.Optimizer.prune.Colayout_trace.Prune.coverage);
          U.Table.fmt_pct (100.0 *. mr);
        ])
    [ 10_000; 1_000; 300; 100 ];
  U.Table.print t2;
  let t3 =
    U.Table.create
      ~title:"Ablation: TRG analysis-cache scale (Gloy & Smith recommend 2x; bb-trg)"
      ~columns:[ ("cache multiplier", U.Table.Right); ("solo miss ratio", U.Table.Right) ]
  in
  List.iter
    (fun m ->
      let mr =
        miss_with_config
          { base_config with Optimizer.cache_multiplier = m }
          Optimizer.Bb_trg
      in
      U.Table.add_row t3 [ U.Table.fmt_float ~decimals:1 m; U.Table.fmt_pct (100.0 *. mr) ])
    [ 0.5; 1.0; 2.0; 4.0 ];
  U.Table.print t3;
  (* The paper's §II-C modification vs the original Gloy-Smith scheme. *)
  let t4 =
    U.Table.create
      ~title:
        "Ablation: TRG as reordering (the paper) vs original padded TPCM placement \
         (Gloy & Smith) on 445.gobmk"
      ~columns:
        [
          ("scheme", U.Table.Left);
          ("code bytes", U.Table.Right);
          ("solo miss ratio", U.Table.Right);
        ]
  in
  let add_scheme name layout =
    let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
    U.Table.add_row t4
      [ name; U.Table.fmt_int layout.Layout.total_bytes; U.Table.fmt_pct (100.0 *. mr) ]
  in
  add_scheme "original layout" original;
  add_scheme "func-trg (reorder, no gaps)" (Optimizer.layout_for Optimizer.Func_trg program analysis);
  add_scheme "padded TPCM (gaps)" (Trg_place.layout_for program analysis);
  U.Table.print t4;
  (* All comparators side by side: the paper's optimizers, the compiler
     default (intra-procedural), and the classic call-graph baseline. *)
  let t5 =
    U.Table.create
      ~title:"Comparators on 445.gobmk: the paper's optimizers vs classic baselines (solo)"
      ~columns:[ ("layout", U.Table.Left); ("solo miss ratio", U.Table.Right) ]
  in
  let call_trace =
    (E.Interp.run program (E.Interp.test_input ~max_blocks:30_000 ())).E.Interp.call_trace
  in
  let add_cmp name layout =
    let mr = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout ref_trace) in
    U.Table.add_row t5 [ name; U.Table.fmt_pct (100.0 *. mr) ]
  in
  add_cmp "original" original;
  add_cmp "intra-procedural BB (compiler default)" (Intra_reorder.layout_for program analysis);
  add_cmp "Pettis-Hansen call graph" (Pettis_hansen.layout_for program call_trace);
  add_cmp "CMG reduction (function)" (Cmg.layout_for ~granularity:`Function program analysis);
  add_cmp "CMG reduction (block)" (Cmg.layout_for ~granularity:`Block program analysis);
  add_cmp "static (profile-free)" (Static_layout.layout_for program);
  List.iter
    (fun kind -> add_cmp (Optimizer.kind_name kind) (Optimizer.layout_for kind program analysis))
    [ Optimizer.Func_affinity; Optimizer.Bb_affinity ];
  U.Table.print t5

(* ------------------------------------------------------------- Part 3 *)

let () =
  run_benchmarks ();
  Printf.printf "== Ablation studies (DESIGN.md section 5) ==\n\n%!";
  ablations ();
  Printf.printf "== Full experiment suite: every table and figure of the paper ==\n\n%!";
  let ctx = H.Ctx.create ~scale:H.Ctx.Full () in
  let results = H.Registry.run_by_ids ctx H.Registry.ids in
  List.iter (fun (_, tables) -> List.iter U.Table.print tables) results
