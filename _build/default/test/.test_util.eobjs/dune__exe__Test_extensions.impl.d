test/test_extensions.ml: Alcotest Array Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_workloads Fun Layout List Optimal Optimizer Pipeline Printf Program Trg Trg_place
