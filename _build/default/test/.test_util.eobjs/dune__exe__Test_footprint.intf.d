test/test_footprint.mli:
