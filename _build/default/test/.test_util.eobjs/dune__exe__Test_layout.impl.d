test/test_layout.ml: Alcotest Array Builder Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_util Fun Layout Program QCheck QCheck_alcotest Types
