test/test_affinity.mli:
