test/test_ir.ml: Alcotest Array Builder Colayout_ir Format Program Size_model String Types Validate
