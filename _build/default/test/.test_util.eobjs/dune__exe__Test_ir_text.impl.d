test/test_ir_text.ml: Alcotest Colayout_exec Colayout_ir Colayout_trace Colayout_util Colayout_workloads Ir_text List Printf Program
