test/test_workloads.ml: Alcotest Array Colayout_exec Colayout_ir Colayout_trace Colayout_workloads List Program String Validate
