test/test_trace.ml: Alcotest Array Colayout_cache Colayout_trace Colayout_util Fun Gen Histogram List Lru_stack Prune QCheck QCheck_alcotest Sample Stack_dist Trace Trim
