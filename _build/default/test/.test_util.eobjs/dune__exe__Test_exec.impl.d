test/test_exec.ml: Alcotest Array Builder Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_util Colayout_workloads List Types
