test/test_io_residual.mli:
