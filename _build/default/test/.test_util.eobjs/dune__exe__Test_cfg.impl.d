test/test_cfg.ml: Alcotest Array Builder Cfg Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_workloads Fun List Program Types
