test/test_calibration.ml: Alcotest Colayout Colayout_cache Colayout_exec Colayout_workloads Layout List Pipeline
