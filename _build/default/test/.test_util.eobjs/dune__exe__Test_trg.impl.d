test/test_trg.ml: Alcotest Array Colayout Colayout_cache Colayout_trace List QCheck QCheck_alcotest Trace Trg Trg_reduce
