test/test_unified.mli:
