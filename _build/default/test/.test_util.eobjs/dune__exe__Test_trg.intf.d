test/test_trg.mli:
