test/test_cache.ml: Alcotest Array Cache_stats Colayout_cache Colayout_util Fully_assoc Icache List Params Prefetch QCheck QCheck_alcotest Set_assoc
