test/test_ir_text.mli:
