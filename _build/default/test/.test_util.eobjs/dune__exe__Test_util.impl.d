test/test_util.ml: Alcotest Array Colayout_util Dlist Fun Hashtbl Heap Int_vec List Ostree Prng QCheck QCheck_alcotest Stats String Table Vec
