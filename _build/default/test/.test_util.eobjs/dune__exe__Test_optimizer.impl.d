test/test_optimizer.ml: Alcotest Array Colayout Colayout_cache Colayout_exec Colayout_ir Colayout_trace Colayout_workloads Fun Hashtbl Layout List Optimizer Pipeline
