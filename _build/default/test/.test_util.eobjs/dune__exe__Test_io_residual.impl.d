test/test_io_residual.ml: Alcotest Array Buffer Colayout Colayout_exec Colayout_ir Colayout_trace Colayout_workloads Filename Fun List Printf QCheck QCheck_alcotest Residual Sys Trace Trace_io Unix
