test/test_affinity.ml: Affinity Affinity_hierarchy Alcotest Array Colayout Colayout_trace Format Gen List QCheck QCheck_alcotest String Trace Trim
