test/test_footprint.ml: Alcotest Colayout Colayout_trace Footprint Fun Gen List Miss_prob QCheck QCheck_alcotest Trace
