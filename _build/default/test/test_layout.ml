open Colayout
open Colayout_ir

let check = Alcotest.check

(* Three functions, several blocks, with branches and calls, so that every
   fall-through rule is exercised. *)
let program () =
  let b = Builder.create ~name:"layout-test" () in
  let f = Builder.func b "main" in
  let g = Builder.func b "g" in
  let h = Builder.func b "h" in
  let fe = Builder.block b f "f.entry" in
  let fb = Builder.block b f "f.body" in
  let fx = Builder.block b f "f.exit" in
  let ge = Builder.block b g "g.entry" in
  let gt = Builder.block b g "g.then" in
  let gx = Builder.block b g "g.exit" in
  let he = Builder.block b h "h.entry" in
  Builder.set_body b fe [ Types.Work 4 ] (Types.Call { callee = g; return_to = fb });
  Builder.set_body b fb [ Types.Work 4 ] (Types.Call { callee = h; return_to = fx });
  Builder.set_body b fx [] Types.Halt;
  (* The false edge is the fall-through: keep it adjacent (g.then) so the
     declaration order needs no fixup jumps. *)
  Builder.set_body b ge [ Types.Work 4 ]
    (Types.Branch { cond = Types.Rand 2; if_true = gx; if_false = gt });
  Builder.set_body b gt [ Types.Work 8 ] (Types.Jump gx);
  Builder.set_body b gx [] Types.Return;
  Builder.set_body b he [ Types.Work 2 ] Types.Return;
  Builder.finish b

let test_original_layout () =
  let p = program () in
  let l = Layout.original p in
  check Alcotest.int "order covers all blocks" (Program.num_blocks p) (Array.length l.Layout.order);
  (* Addresses in layout order are contiguous and non-overlapping. *)
  let cursor = ref 0 in
  Array.iter
    (fun bid ->
      check Alcotest.int "contiguous" !cursor l.Layout.addr.(bid);
      cursor := !cursor + l.Layout.bytes.(bid))
    l.Layout.order;
  check Alcotest.int "total bytes" !cursor l.Layout.total_bytes;
  (* Declaration order keeps every natural fall-through except the last
     block's (no successor) and g.then's Jump target which IS adjacent. *)
  check Alcotest.int "original needs no extra jumps" 0 l.Layout.added_jumps

let test_block_reorder_adds_jumps () =
  let p = program () in
  let n = Program.num_blocks p in
  (* Reverse order: breaks every fall-through. *)
  let order = Array.init n (fun i -> n - 1 - i) in
  let l = Layout.of_block_order p order in
  check Alcotest.bool "jumps added" true (l.Layout.added_jumps > 0);
  let original = Layout.original p in
  check Alcotest.bool "reversed layout is bigger" true
    (l.Layout.total_bytes > original.Layout.total_bytes);
  (* Jump bytes are charged to blocks, not instructions. *)
  Array.iteri
    (fun bid c ->
      check Alcotest.int "instr count unchanged" (Program.block p bid).instr_count c)
    l.Layout.instr_counts

let test_function_stubs () =
  let p = program () in
  let n = Program.num_blocks p in
  let order = Array.init n Fun.id in
  let without = Layout.of_block_order ~function_stubs:false p order in
  let with_stubs = Layout.of_block_order ~function_stubs:true p order in
  check Alcotest.int "one stub per function"
    (without.Layout.added_jumps + Program.num_funcs p)
    with_stubs.Layout.added_jumps

let test_permutation_validation () =
  let p = program () in
  Alcotest.check_raises "short order" (Invalid_argument "Layout: block order has 2 entries, expected 7")
    (fun () -> ignore (Layout.of_block_order p [| 0; 1 |]));
  let dup = Array.make (Program.num_blocks p) 0 in
  Alcotest.check_raises "duplicate" (Invalid_argument "Layout: duplicate block id 0") (fun () ->
      ignore (Layout.of_block_order p dup));
  Alcotest.check_raises "bad func order" (Invalid_argument "Layout: function order has 1 entries, expected 3")
    (fun () -> ignore (Layout.of_function_order p [| 0 |]))

let test_function_order () =
  let p = program () in
  let l = Layout.of_function_order p [| 2; 0; 1 |] in
  (* h's entry (block 6) must be first. *)
  check Alcotest.int "h first" 6 l.Layout.order.(0);
  check Alcotest.int "main next" 0 l.Layout.order.(1)

let test_hot_list_completion () =
  let p = program () in
  let order = Layout.block_order_of_hot_list p ~hot:[ 5; 3 ] in
  check Alcotest.int "hot first" 5 order.(0);
  check Alcotest.int "hot second" 3 order.(1);
  let sorted = Array.copy order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 7 Fun.id) sorted;
  Alcotest.check_raises "duplicate hot" (Invalid_argument "Layout: duplicate hot block id 3")
    (fun () -> ignore (Layout.block_order_of_hot_list p ~hot:[ 3; 3 ]));
  let forder = Layout.function_order_of_hot_list p ~hot:[ 1 ] in
  check (Alcotest.array Alcotest.int) "func completion" [| 1; 0; 2 |] forder

let test_line_trace () =
  let p = program () in
  let l = Layout.original p in
  let params = Colayout_cache.Params.default_l1i in
  let bb = Colayout_trace.Trace.of_list ~num_symbols:(Program.num_blocks p) [ 0; 1; 2 ] in
  let lines = Layout.line_trace ~params ~layout:l bb in
  check Alcotest.bool "nonempty" true (Colayout_trace.Trace.length lines >= 3);
  (* Every line must be within the laid-out region. *)
  let max_line = Colayout_cache.Params.line_of_addr params (l.Layout.total_bytes - 1) in
  Colayout_trace.Trace.iter
    (fun line -> if line < 0 || line > max_line then Alcotest.failf "line %d out of range" line)
    lines

let test_to_icache_to_smt () =
  let p = program () in
  let l = Layout.original p in
  let ic = Layout.to_icache l in
  check (Alcotest.array Alcotest.int) "addr shared" l.Layout.addr ic.Colayout_cache.Icache.addr;
  let code = Layout.to_smt_code l in
  check (Alcotest.array Alcotest.int) "instr counts shared" l.Layout.instr_counts
    code.Colayout_exec.Smt.instr_counts

let layouts_preserve_trace_semantics =
  (* Reordering blocks must not change program semantics: the interpreter
     never consults the layout, and the layout must accept any permutation,
     assigning every block a unique, in-bounds address range. *)
  QCheck.Test.make ~name:"any permutation yields a valid non-overlapping layout" ~count:100
    QCheck.(int_bound 1000)
    (fun seed ->
      let p = program () in
      let n = Program.num_blocks p in
      let order = Array.init n Fun.id in
      let rng = Colayout_util.Prng.create ~seed in
      Colayout_util.Prng.shuffle rng order;
      let l = Layout.of_block_order p order in
      (* Ranges must tile [0, total). *)
      let covered = Array.make l.Layout.total_bytes false in
      Array.iter
        (fun bid ->
          for a = l.Layout.addr.(bid) to l.Layout.addr.(bid) + l.Layout.bytes.(bid) - 1 do
            if covered.(a) then failwith "overlap";
            covered.(a) <- true
          done)
        order;
      Array.for_all Fun.id covered)

let () =
  Alcotest.run "layout"
    [
      ( "address assignment",
        [
          Alcotest.test_case "original" `Quick test_original_layout;
          Alcotest.test_case "reorder adds jumps" `Quick test_block_reorder_adds_jumps;
          Alcotest.test_case "function stubs" `Quick test_function_stubs;
          QCheck_alcotest.to_alcotest layouts_preserve_trace_semantics;
        ] );
      ( "validation",
        [
          Alcotest.test_case "permutations" `Quick test_permutation_validation;
        ] );
      ( "orders",
        [
          Alcotest.test_case "function order" `Quick test_function_order;
          Alcotest.test_case "hot list completion" `Quick test_hot_list_completion;
        ] );
      ( "bridges",
        [
          Alcotest.test_case "line trace" `Quick test_line_trace;
          Alcotest.test_case "icache/smt" `Quick test_to_icache_to_smt;
        ] );
    ]
