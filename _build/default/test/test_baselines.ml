(* Tests for the comparator modules: Pettis-Hansen placement, miss-ratio
   curves (Mrc), and simulated-annealing search. *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let check = Alcotest.check

(* -------------------------------------------------------- Pettis-Hansen *)

let test_ph_graph_from_edges () =
  let g = Pettis_hansen.graph_of_edges ~num_funcs:4 [ (0, 1, 10); (1, 0, 5); (2, 3, 1) ] in
  (* Undirected accumulation. *)
  check Alcotest.int "accumulated" 15 (Pettis_hansen.edge_weight g 0 1);
  check Alcotest.int "symmetric" 15 (Pettis_hansen.edge_weight g 1 0);
  check Alcotest.int "absent" 0 (Pettis_hansen.edge_weight g 0 3);
  check Alcotest.int "self loop dropped" 0
    (Pettis_hansen.edge_weight (Pettis_hansen.graph_of_edges ~num_funcs:2 [ (1, 1, 9) ]) 1 1)

let test_ph_order_heaviest_adjacent () =
  (* Chain A-B heavy, B-C light: expect A and B adjacent in the order. *)
  let g = Pettis_hansen.graph_of_edges ~num_funcs:3 [ (0, 1, 100); (1, 2, 1) ] in
  let order = Pettis_hansen.order g in
  check Alcotest.int "all placed" 3 (List.length order);
  let pos v =
    let rec go i = function [] -> -1 | x :: r -> if x = v then i else go (i + 1) r in
    go 0 order
  in
  check Alcotest.int "A next to B" 1 (abs (pos 0 - pos 1))

let test_ph_orientation () =
  (* Build chains [0;1] and [2;3] via heavy internal edges, then join on
     edge (0,3): the orientation must flip so 0 and 3 touch. *)
  let g =
    Pettis_hansen.graph_of_edges ~num_funcs:4
      [ (0, 1, 100); (2, 3, 90); (0, 3, 50) ]
  in
  let order = Pettis_hansen.order g in
  let pos v =
    let rec go i = function [] -> -1 | x :: r -> if x = v then i else go (i + 1) r in
    go 0 order
  in
  check Alcotest.int "joined endpoints adjacent" 1 (abs (pos 0 - pos 3))

let test_ph_isolated_omitted () =
  let g = Pettis_hansen.graph_of_edges ~num_funcs:5 [ (0, 1, 3) ] in
  check (Alcotest.list Alcotest.int) "only connected nodes" [ 0; 1 ]
    (List.sort compare (Pettis_hansen.order g))

let test_ph_from_call_trace () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "ph"; seed = 17 } in
  let r = E.Interp.run p { seed = 2; params = [||]; max_blocks = 30_000 } in
  check Alcotest.bool "calls recorded" true (U.Int_vec.length r.E.Interp.call_trace > 0);
  let layout = Pettis_hansen.layout_for p r.E.Interp.call_trace in
  let sorted = Array.copy layout.Layout.order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "full permutation"
    (Array.init (Colayout_ir.Program.num_blocks p) Fun.id)
    sorted;
  (* main calls everything: all call pairs must have main as caller or be
     within range. *)
  let nf = Colayout_ir.Program.num_funcs p in
  U.Int_vec.iter
    (fun code ->
      let caller = code / nf and callee = code mod nf in
      if caller < 0 || caller >= nf || callee < 0 || callee >= nf then
        Alcotest.fail "malformed call pair")
    r.E.Interp.call_trace

(* -------------------------------------------------------- Intra_reorder *)

let test_intra_keeps_functions_and_entries () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "intra"; seed = 41 } in
  let analysis = Optimizer.analyze p (E.Interp.test_input ~max_blocks:30_000 ()) in
  let l = Intra_reorder.layout_for p analysis in
  (* Permutation. *)
  let sorted = Array.copy l.Layout.order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init (Colayout_ir.Program.num_blocks p) Fun.id) sorted;
  (* Functions contiguous, entry first within each. *)
  let current = ref (-1) in
  Array.iter
    (fun bid ->
      let b = Colayout_ir.Program.block p bid in
      if b.Colayout_ir.Program.fn <> !current then begin
        current := b.Colayout_ir.Program.fn;
        check Alcotest.int
          (Printf.sprintf "entry first for f%d" b.Colayout_ir.Program.fn)
          (Colayout_ir.Program.func p b.Colayout_ir.Program.fn).Colayout_ir.Program.entry bid
      end)
    l.Layout.order

let test_intra_sorts_hot_first () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "intra2"; seed = 42 } in
  let analysis = Optimizer.analyze p (E.Interp.test_input ~max_blocks:30_000 ()) in
  let order = Intra_reorder.block_order p analysis.Optimizer.bb in
  let counts = Colayout_trace.Trace.occurrences analysis.Optimizer.bb in
  (* Within each function, after the entry, counts must be non-increasing. *)
  let by_func = Hashtbl.create 32 in
  Array.iter
    (fun bid ->
      let fn = (Colayout_ir.Program.block p bid).Colayout_ir.Program.fn in
      Hashtbl.replace by_func fn
        (bid :: Option.value ~default:[] (Hashtbl.find_opt by_func fn)))
    order;
  Hashtbl.iter
    (fun fn blocks_rev ->
      match List.rev blocks_rev with
      | _entry :: rest ->
        let rec non_increasing = function
          | a :: (b :: _ as r) ->
            if counts.(a) < counts.(b) then
              Alcotest.failf "f%d: block %d (%d) before hotter %d (%d)" fn a counts.(a) b
                counts.(b);
            non_increasing r
          | _ -> ()
        in
        non_increasing rest
      | [] -> ())
    by_func

(* ------------------------------------------------------------------ CMG *)

let test_cmg_weights_scale_with_size () =
  (* Trace a b a: TRG weight would be 1; CMG adds 2*min(lines). *)
  let tr = Colayout_trace.Trace.of_list ~num_symbols:2 [ 0; 1; 0 ] in
  let g = Cmg.build ~sizes:[| 256; 640 |] ~line_bytes:64 tr in
  (* min(4 lines, 10 lines) * 2 = 8. *)
  check Alcotest.int "size-aware weight" 8 (Trg.weight g 0 1);
  let g2 = Cmg.build ~sizes:[| 64; 64 |] ~line_bytes:64 tr in
  check Alcotest.int "one-line blocks give 2" 2 (Trg.weight g2 0 1)

let test_cmg_respects_window () =
  let tr = Colayout_trace.Trace.of_list ~num_symbols:5 [ 0; 1; 2; 3; 0 ] in
  let sizes = Array.make 5 64 in
  let unbounded = Cmg.build ~sizes ~line_bytes:64 tr in
  check Alcotest.bool "edge exists unbounded" true (Trg.weight unbounded 0 1 > 0);
  let windowed = Cmg.build ~window:3 ~sizes ~line_bytes:64 tr in
  check Alcotest.int "windowed drops far reuse" 0 (Trg.weight windowed 0 1)

let test_cmg_validation () =
  let tr = Colayout_trace.Trace.of_list ~num_symbols:2 [ 0; 1 ] in
  Alcotest.check_raises "sizes mismatch"
    (Invalid_argument "Cmg.build: sizes length must match the trace universe")
    (fun () -> ignore (Cmg.build ~sizes:[| 1 |] ~line_bytes:64 tr))

let test_cmg_layouts () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "cmg"; seed = 71 } in
  let analysis = Optimizer.analyze p (E.Interp.test_input ~max_blocks:30_000 ()) in
  List.iter
    (fun granularity ->
      let l = Cmg.layout_for ~granularity p analysis in
      let sorted = Array.copy l.Layout.order in
      Array.sort compare sorted;
      check (Alcotest.array Alcotest.int) "permutation"
        (Array.init (Colayout_ir.Program.num_blocks p) Fun.id)
        sorted)
    [ `Function; `Block ]

(* ----------------------------------------------------------- Stats corr *)

let test_correlations () =
  let module S = Colayout_util.Stats in
  check (Alcotest.float 1e-9) "perfect" 1.0 (S.pearson [ 1.; 2.; 3. ] [ 2.; 4.; 6. ]);
  check (Alcotest.float 1e-9) "anti" (-1.0) (S.pearson [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]);
  check (Alcotest.float 1e-9) "degenerate" 0.0 (S.pearson [ 1.; 1. ] [ 2.; 3. ]);
  check (Alcotest.float 1e-9) "spearman monotone" 1.0
    (S.spearman [ 1.; 10.; 100. ] [ 2.; 3.; 50. ]);
  check (Alcotest.float 1e-9) "spearman anti" (-1.0)
    (S.spearman [ 1.; 2.; 3. ] [ 9.; 5.; 1. ]);
  (* Ties get average ranks; a tie against a strict order is imperfect. *)
  check Alcotest.bool "ties reduce correlation" true
    (S.spearman [ 1.; 1.; 2. ] [ 1.; 2.; 3. ] < 1.0);
  check (Alcotest.float 1e-9) "mismatched lengths" 0.0 (S.spearman [ 1. ] [ 1.; 2. ])

(* ------------------------------------------------------------------ Mrc *)

let test_mrc_matches_direct_sim () =
  let t = Colayout_trace.Trace.of_list ~num_symbols:8 [ 0; 1; 2; 0; 1; 2; 3; 0; 7; 3 ] in
  let mrc = Mrc.of_line_trace t in
  List.iter
    (fun cap ->
      let fa = C.Fully_assoc.create ~capacity:cap in
      let misses = ref 0 in
      Colayout_trace.Trace.iter
        (fun l -> if not (C.Fully_assoc.access_line fa l) then incr misses)
        t;
      let expected = float_of_int !misses /. 10.0 in
      check (Alcotest.float 1e-9)
        (Printf.sprintf "capacity %d" cap)
        expected
        (Mrc.miss_ratio mrc ~capacity_lines:cap))
    [ 1; 2; 3; 4; 8 ]

let test_mrc_monotone_and_knee () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "mrc"; seed = 23 } in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:40_000 ()) in
  let mrc = Mrc.of_layout ~params:C.Params.default_l1i ~layout:(Layout.original p) trace in
  let caps = [ 8; 32; 128; 512; 2048 ] in
  let curve = Mrc.curve mrc ~capacities:caps in
  let rec monotone = function
    | (_, m1) :: ((_, m2) :: _ as rest) -> m1 >= m2 -. 1e-12 && monotone rest
    | _ -> true
  in
  check Alcotest.bool "non-increasing" true (monotone curve);
  let knee = Mrc.working_set_knee mrc ~threshold:0.02 in
  check Alcotest.bool "knee within distinct lines" true (knee <= Mrc.distinct_lines mrc);
  check Alcotest.bool "knee satisfies threshold" true
    (Mrc.miss_ratio mrc ~capacity_lines:knee <= 0.02
    || knee = Mrc.distinct_lines mrc);
  check Alcotest.bool "accesses counted" true (Mrc.accesses mrc > 0)

let test_mrc_optimization_moves_knee_left () =
  let p =
    W.Gen.build
      { W.Gen.default_profile with pname = "mrc2"; seed = 79; phases = 5;
        funcs_per_phase = 8; iters_per_phase = 150 }
  in
  let analysis = Optimizer.analyze p (E.Interp.test_input ~max_blocks:60_000 ()) in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let knee kind =
    let layout = Optimizer.layout_for kind p analysis in
    Mrc.working_set_knee (Mrc.of_layout ~params:C.Params.default_l1i ~layout trace) ~threshold:0.01
  in
  check Alcotest.bool "bb-affinity knee <= original knee" true
    (knee Optimizer.Bb_affinity <= knee Optimizer.Original)

(* --------------------------------------------------------------- Anneal *)

let tiny_program () =
  W.Gen.build
    {
      W.Gen.default_profile with
      pname = "anneal";
      seed = 5;
      phases = 2;
      funcs_per_phase = 2;
      shared_funcs = 0;
      cold_funcs = 1;
      iters_per_phase = 40;
    }

let test_anneal_improves_or_matches () =
  let p = tiny_program () in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:15_000 ()) in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let r = Anneal.search ~seed:3 ~steps:120 ~params p trace in
  check Alcotest.bool "never worse than start" true (r.Anneal.miss_ratio <= r.Anneal.improved_from);
  check Alcotest.int "steps recorded" 120 r.Anneal.steps;
  (* Result order must be a permutation. *)
  let sorted = Array.copy r.Anneal.order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init (Colayout_ir.Program.num_funcs p) Fun.id)
    sorted;
  (* The reported ratio must replay. *)
  check (Alcotest.float 1e-12) "replays" r.Anneal.miss_ratio
    (Optimal.miss_ratio_of_function_order ~params p trace r.Anneal.order)

let test_anneal_deterministic () =
  let p = tiny_program () in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:10_000 ()) in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let r1 = Anneal.search ~seed:7 ~steps:60 ~params p trace in
  let r2 = Anneal.search ~seed:7 ~steps:60 ~params p trace in
  check (Alcotest.array Alcotest.int) "same seed same order" r1.Anneal.order r2.Anneal.order

let test_anneal_bad_args () =
  let p = tiny_program () in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:5_000 ()) in
  let params = C.Params.default_l1i in
  Alcotest.check_raises "bad steps" (Invalid_argument "Anneal.search: steps must be positive")
    (fun () -> ignore (Anneal.search ~steps:0 ~params p trace));
  Alcotest.check_raises "bad initial"
    (Invalid_argument "Anneal.search: initial order length mismatch")
    (fun () -> ignore (Anneal.search ~initial:[| 0 |] ~params p trace))

let () =
  Alcotest.run "baselines"
    [
      ( "pettis_hansen",
        [
          Alcotest.test_case "graph" `Quick test_ph_graph_from_edges;
          Alcotest.test_case "heaviest adjacent" `Quick test_ph_order_heaviest_adjacent;
          Alcotest.test_case "orientation" `Quick test_ph_orientation;
          Alcotest.test_case "isolated omitted" `Quick test_ph_isolated_omitted;
          Alcotest.test_case "from call trace" `Quick test_ph_from_call_trace;
        ] );
      ( "intra_reorder",
        [
          Alcotest.test_case "structure" `Quick test_intra_keeps_functions_and_entries;
          Alcotest.test_case "hot first" `Quick test_intra_sorts_hot_first;
        ] );
      ( "cmg",
        [
          Alcotest.test_case "size-aware weights" `Quick test_cmg_weights_scale_with_size;
          Alcotest.test_case "window" `Quick test_cmg_respects_window;
          Alcotest.test_case "validation" `Quick test_cmg_validation;
          Alcotest.test_case "layouts" `Quick test_cmg_layouts;
        ] );
      ( "stats",
        [ Alcotest.test_case "correlations" `Quick test_correlations ] );
      ( "mrc",
        [
          Alcotest.test_case "matches direct sim" `Quick test_mrc_matches_direct_sim;
          Alcotest.test_case "monotone + knee" `Quick test_mrc_monotone_and_knee;
          Alcotest.test_case "optimization moves knee" `Slow test_mrc_optimization_moves_knee_left;
        ] );
      ( "anneal",
        [
          Alcotest.test_case "improves" `Quick test_anneal_improves_or_matches;
          Alcotest.test_case "deterministic" `Quick test_anneal_deterministic;
          Alcotest.test_case "bad args" `Quick test_anneal_bad_args;
        ] );
    ]
