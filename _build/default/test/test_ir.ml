open Colayout_ir

let check = Alcotest.check

(* A small two-function program used across the cases. *)
let small_program () =
  let b = Builder.create ~name:"small" () in
  let f = Builder.func b "main" in
  let g = Builder.func b "callee" in
  let entry = Builder.block b f "entry" in
  let loop = Builder.block b f "loop" in
  let after = Builder.block b f "after" in
  let done_ = Builder.block b f "done" in
  let g_entry = Builder.block b g "g.entry" in
  Builder.set_body b entry [ Types.Assign (0, Types.Const 0) ] (Types.Jump loop);
  Builder.set_body b loop
    [ Types.Assign (0, Types.Bin (Types.Add, Types.Var 0, Types.Const 1)) ]
    (Types.Call { callee = g; return_to = after });
  Builder.set_body b after []
    (Types.Branch
       { cond = Types.Bin (Types.Lt, Types.Var 0, Types.Const 5); if_true = loop; if_false = done_ });
  Builder.set_body b done_ [] Types.Halt;
  Builder.set_body b g_entry [ Types.Work 10 ] Types.Return;
  Builder.finish b

let test_size_model () =
  check Alcotest.int "work bytes" 40 (Size_model.instr_bytes (Types.Work 10));
  check Alcotest.int "work count" 10 (Size_model.instr_count (Types.Work 10));
  check Alcotest.int "assign const" 4 (Size_model.instr_bytes (Types.Assign (0, Types.Const 1)));
  let e = Types.Bin (Types.Add, Types.Var 0, Types.Const 1) in
  check Alcotest.int "assign binop" 8 (Size_model.instr_bytes (Types.Assign (0, e)));
  check Alcotest.int "expr ops" 1 (Size_model.expr_ops e);
  check Alcotest.int "nested ops" 2 (Size_model.expr_ops (Types.Bin (Types.Mul, e, Types.Const 2)));
  check Alcotest.int "jump" 5 (Size_model.terminator_bytes (Types.Jump 0));
  check Alcotest.int "return" 1 (Size_model.terminator_bytes Types.Return);
  check Alcotest.int "switch grows with table" 20
    (Size_model.terminator_bytes (Types.Switch { sel = Types.Const 0; targets = [| 0; 1 |]; default = 0 }))

let test_builder_program () =
  let p = small_program () in
  check Alcotest.int "funcs" 2 (Program.num_funcs p);
  check Alcotest.int "blocks" 5 (Program.num_blocks p);
  check Alcotest.string "main name" "main" (Program.main p).fname;
  check Alcotest.string "find_func" "callee"
    (match Program.find_func p "callee" with Some f -> f.fname | None -> "?");
  check Alcotest.bool "find missing" true (Program.find_func p "nope" = None);
  check Alcotest.int "entry is first block" (Program.main p).blocks.(0) (Program.main p).entry;
  check Alcotest.bool "total bytes positive" true (Program.total_code_bytes p > 0);
  check Alcotest.int "func size = sum of blocks"
    (Array.fold_left (fun acc bid -> acc + (Program.block p bid).size_bytes) 0 (Program.main p).blocks)
    (Program.func_size_bytes p (Program.main p).fid)

let test_successors_fallthrough () =
  let p = small_program () in
  let entry = (Program.main p).entry in
  check (Alcotest.list Alcotest.int) "jump succ" [ entry + 1 ] (Program.block_successors p entry);
  let loop = entry + 1 in
  (* Call successor is the return block, not the callee. *)
  check (Alcotest.list Alcotest.int) "call succ" [ entry + 2 ] (Program.block_successors p loop);
  check (Alcotest.option Alcotest.int) "call fallthrough" (Some (entry + 2))
    (Program.fallthrough_target p loop);
  let after = entry + 2 in
  check (Alcotest.option Alcotest.int) "branch fallthrough is false edge" (Some (entry + 3))
    (Program.fallthrough_target p after);
  let done_ = entry + 3 in
  check (Alcotest.option Alcotest.int) "halt no fallthrough" None (Program.fallthrough_target p done_);
  check (Alcotest.list Alcotest.int) "halt no succ" [] (Program.block_successors p done_)

let test_validate_rejects_cross_function_jump () =
  let b = Builder.create ~name:"bad" () in
  let f = Builder.func b "main" in
  let g = Builder.func b "other" in
  let fb = Builder.block b f "f.entry" in
  let gb = Builder.block b g "g.entry" in
  Builder.set_body b fb [] (Types.Jump gb);
  Builder.set_body b gb [] Types.Halt;
  (match Builder.finish b with
  | exception Validate.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid")

let test_validate_rejects_bad_callee () =
  let b = Builder.create ~name:"bad2" () in
  let f = Builder.func b "main" in
  let fb = Builder.block b f "f.entry" in
  Builder.set_body b fb [] (Types.Call { callee = 99; return_to = fb });
  (match Builder.finish b with
  | exception Validate.Invalid _ -> ()
  | _ -> Alcotest.fail "expected Invalid")

let test_validate_rejects_empty_function () =
  let b = Builder.create ~name:"bad3" () in
  let f = Builder.func b "main" in
  let fb = Builder.block b f "f.entry" in
  Builder.set_body b fb [] Types.Halt;
  let _g = Builder.func b "empty" in
  (match Builder.finish b with
  | exception Invalid_argument _ -> ()
  | exception Validate.Invalid _ -> ()
  | _ -> Alcotest.fail "expected failure")

let test_reachable_blocks () =
  let b = Builder.create ~name:"reach" () in
  let f = Builder.func b "main" in
  let g = Builder.func b "called" in
  let h = Builder.func b "never" in
  let fe = Builder.block b f "f.entry" in
  let fr = Builder.block b f "f.ret" in
  let fdead = Builder.block b f "f.dead" in
  let ge = Builder.block b g "g.entry" in
  let he = Builder.block b h "h.entry" in
  Builder.set_body b fe [] (Types.Call { callee = g; return_to = fr });
  Builder.set_body b fr [] Types.Halt;
  Builder.set_body b fdead [ Types.Work 1 ] Types.Halt;
  Builder.set_body b ge [] Types.Return;
  Builder.set_body b he [] Types.Return;
  let p = Builder.finish b in
  let r = Validate.reachable_blocks p in
  check Alcotest.bool "entry reachable" true r.(fe);
  check Alcotest.bool "return site reachable" true r.(fr);
  check Alcotest.bool "callee reachable" true r.(ge);
  check Alcotest.bool "dead block unreachable" false r.(fdead);
  check Alcotest.bool "uncalled function unreachable" false r.(he)

let test_pp_smoke () =
  let p = small_program () in
  let s = Format.asprintf "%a" Program.pp p in
  check Alcotest.bool "pp mentions program name" true
    (String.length s > 0 && String.exists (fun _ -> true) s)

let test_builder_bad_args () =
  let b = Builder.create ~name:"x" () in
  Alcotest.check_raises "block of bad func" (Invalid_argument "Builder.block: bad func id")
    (fun () -> ignore (Builder.block b 3 "nope"));
  Alcotest.check_raises "set_body bad block" (Invalid_argument "Builder.set_body: bad block id")
    (fun () -> Builder.set_body b 0 [] Types.Halt);
  Alcotest.check_raises "set_main bad" (Invalid_argument "Builder.set_main: bad func id")
    (fun () -> Builder.set_main b 1)

let () =
  Alcotest.run "ir"
    [
      ( "size_model",
        [ Alcotest.test_case "sizes" `Quick test_size_model ] );
      ( "builder",
        [
          Alcotest.test_case "build program" `Quick test_builder_program;
          Alcotest.test_case "bad args" `Quick test_builder_bad_args;
        ] );
      ( "cfg",
        [
          Alcotest.test_case "successors/fallthrough" `Quick test_successors_fallthrough;
          Alcotest.test_case "reachability" `Quick test_reachable_blocks;
        ] );
      ( "validate",
        [
          Alcotest.test_case "cross-function jump" `Quick test_validate_rejects_cross_function_jump;
          Alcotest.test_case "bad callee" `Quick test_validate_rejects_bad_callee;
          Alcotest.test_case "empty function" `Quick test_validate_rejects_empty_function;
        ] );
      ("pp", [ Alcotest.test_case "smoke" `Quick test_pp_smoke ]);
    ]
