open Colayout
open Colayout_trace

let check = Alcotest.check

let curve_of xs ~num_symbols = Footprint.curve (Trace.of_list ~num_symbols xs)

let test_tiny_curves () =
  let c = curve_of [ 0; 1 ] ~num_symbols:2 in
  check (Alcotest.float 1e-9) "fp(1) of ab" 1.0 (Footprint.fp c 1);
  check (Alcotest.float 1e-9) "fp(2) of ab" 2.0 (Footprint.fp c 2);
  let c2 = curve_of [ 0; 0 ] ~num_symbols:1 in
  check (Alcotest.float 1e-9) "fp(1) of aa" 1.0 (Footprint.fp c2 1);
  check (Alcotest.float 1e-9) "fp(2) of aa" 1.0 (Footprint.fp c2 2);
  let c3 = curve_of [ 0; 1; 0 ] ~num_symbols:2 in
  check (Alcotest.float 1e-9) "fp(2) of aba" 2.0 (Footprint.fp c3 2);
  check (Alcotest.float 1e-9) "fp(1) of aba" 1.0 (Footprint.fp c3 1);
  check Alcotest.int "distinct" 2 (Footprint.distinct c3);
  check Alcotest.int "length" 3 (Footprint.trace_length c3)

let test_fp_edges () =
  let c = curve_of [ 0; 1; 2 ] ~num_symbols:3 in
  check (Alcotest.float 1e-9) "fp(0)" 0.0 (Footprint.fp c 0);
  check (Alcotest.float 1e-9) "fp beyond n clamps" 3.0 (Footprint.fp c 99)

let formula_matches_naive =
  QCheck.Test.make ~name:"closed-form footprint equals all-window enumeration" ~count:120
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 8))
    (fun xs ->
      let t = Trace.of_list ~num_symbols:9 xs in
      let c = Footprint.curve t in
      let n = Trace.length t in
      List.for_all
        (fun w ->
          w > n
          || abs_float (Footprint.fp c w -. Footprint.average_naive t ~w) < 1e-9)
        [ 1; 2; 3; 5; 8; 13; n ])

(* NB: the footprint is monotone on every trace, but concave only under the
   reuse-window hypothesis of the HOTL theory — [0;0;0;1] is a concrete
   counterexample — so only monotonicity is universal. *)
let fp_monotone =
  QCheck.Test.make ~name:"footprint is monotone in the window length" ~count:100
    QCheck.(list_of_size Gen.(int_range 3 60) (int_bound 8))
    (fun xs ->
      let t = Trace.of_list ~num_symbols:9 xs in
      let c = Footprint.curve t in
      let n = Trace.length t in
      let ok = ref true in
      for w = 1 to n - 1 do
        if Footprint.fp c (w + 1) < Footprint.fp c w -. 1e-9 then ok := false
      done;
      !ok)

let test_inverse_deriv () =
  let c = curve_of [ 0; 1; 2; 3; 0; 1; 2; 3 ] ~num_symbols:4 in
  let w = Footprint.inverse c 2.5 in
  check Alcotest.bool "inverse reaches target" true (Footprint.fp c w >= 2.5);
  check Alcotest.bool "inverse minimal" true (w = 1 || Footprint.fp c (w - 1) < 2.5);
  check Alcotest.int "unreachable target" 8 (Footprint.inverse c 100.0);
  check Alcotest.bool "deriv nonneg" true (Footprint.deriv c 3 >= 0.0);
  check (Alcotest.float 1e-9) "deriv at end" 0.0 (Footprint.deriv c 8)

(* ------------------------------------------------------------ Miss_prob *)

let test_solo_miss_ratio_zero_when_fits () =
  let c = curve_of [ 0; 1; 0; 1; 0; 1 ] ~num_symbols:2 in
  check (Alcotest.float 1e-9) "fits entirely" 0.0 (Miss_prob.solo_miss_ratio c ~capacity:10)

let test_solo_miss_ratio_positive_when_thrashing () =
  (* Cyclic sweep over 6 blocks, capacity 3: must predict misses. *)
  let xs = List.concat (List.init 20 (fun _ -> [ 0; 1; 2; 3; 4; 5 ])) in
  let c = curve_of xs ~num_symbols:6 in
  check Alcotest.bool "positive" true (Miss_prob.solo_miss_ratio c ~capacity:3 > 0.0);
  check Alcotest.bool "bounded" true (Miss_prob.solo_miss_ratio c ~capacity:3 <= 1.0)

let corun_window_shrinks =
  QCheck.Test.make
    ~name:"Eq 1: the shared-cache window never exceeds the solo window" ~count:80
    QCheck.(pair
              (list_of_size Gen.(int_range 5 50) (int_bound 6))
              (list_of_size Gen.(int_range 5 50) (int_bound 6)))
    (fun (xs, ys) ->
      let self = curve_of xs ~num_symbols:7 in
      let peer = curve_of ys ~num_symbols:7 in
      let capacity = 4 in
      Miss_prob.split_window self peer ~capacity <= Miss_prob.solo_window self ~capacity
      && Miss_prob.split_window self peer ~capacity <= Miss_prob.solo_window peer ~capacity)

let test_exposure () =
  let self = curve_of (List.concat (List.init 10 (fun _ -> [ 0; 1; 2; 3 ]))) ~num_symbols:4 in
  let peer = curve_of (List.concat (List.init 10 (fun _ -> [ 0; 1; 2 ]))) ~num_symbols:4 in
  let e = Miss_prob.exposure ~self ~peer ~capacity:5 in
  check Alcotest.bool "defensiveness nonneg" true (e.Miss_prob.defensiveness >= -1e-9);
  check Alcotest.bool "politeness nonneg" true (e.Miss_prob.politeness >= -1e-9);
  check Alcotest.bool "corun = solo + defensiveness" true
    (abs_float (e.Miss_prob.corun -. (e.Miss_prob.solo +. e.Miss_prob.defensiveness)) < 1e-12)

let test_footprint_fraction () =
  let c = curve_of [ 0; 1; 2; 0; 1; 2 ] ~num_symbols:3 in
  check Alcotest.bool "fraction in range" true
    (Miss_prob.footprint_fraction c ~q:0.5 <= 3.0 && Miss_prob.footprint_fraction c ~q:0.5 >= 1.0);
  Alcotest.check_raises "bad q" (Invalid_argument "Miss_prob.footprint_fraction") (fun () ->
      ignore (Miss_prob.footprint_fraction c ~q:0.0))

let hotl_predicts_lru_order_of_magnitude =
  (* The higher-order theory should broadly agree with a fully-associative
     LRU simulation on cyclic workloads: both must flag thrashing. *)
  QCheck.Test.make ~name:"HOTL prediction agrees with LRU on thrash-vs-fit" ~count:40
    QCheck.(int_range 2 8)
    (fun m ->
      let xs = List.concat (List.init 30 (fun _ -> List.init m Fun.id)) in
      let c = curve_of xs ~num_symbols:m in
      let fits = Miss_prob.solo_miss_ratio c ~capacity:(m + 1) in
      let thrash = Miss_prob.solo_miss_ratio c ~capacity:(max 1 (m - 1)) in
      fits < 0.01 && (m < 3 || thrash > 0.1))

let () =
  Alcotest.run "footprint"
    [
      ( "curve",
        [
          Alcotest.test_case "tiny" `Quick test_tiny_curves;
          Alcotest.test_case "edges" `Quick test_fp_edges;
          QCheck_alcotest.to_alcotest formula_matches_naive;
          QCheck_alcotest.to_alcotest fp_monotone;
          Alcotest.test_case "inverse/deriv" `Quick test_inverse_deriv;
        ] );
      ( "miss_prob",
        [
          Alcotest.test_case "fits" `Quick test_solo_miss_ratio_zero_when_fits;
          Alcotest.test_case "thrash" `Quick test_solo_miss_ratio_positive_when_thrashing;
          QCheck_alcotest.to_alcotest corun_window_shrinks;
          Alcotest.test_case "exposure" `Quick test_exposure;
          Alcotest.test_case "footprint fraction" `Quick test_footprint_fraction;
          QCheck_alcotest.to_alcotest hotl_predicts_lru_order_of_magnitude;
        ] );
    ]
