(* Tests for the textual IR printer/parser. *)

open Colayout_ir
module W = Colayout_workloads
module E = Colayout_exec

let check = Alcotest.check

let sample_text =
  {|program demo
# a comment
func main *
  block entry:
    v0 := 0
    jump loop
  block loop:
    work 10
    v0 := (v0 + 1)
    load (v0 * 64)
    store [4096]
    branch (v0 < 100) ? loop : done    # loop back
  block done:
    call helper -> finish
  block finish:
    halt
func helper
  block top:
    switch rand(2) [a b] default a
  block a:
    return
  block b:
    v1 := (v0 % 7)
    return
|}

let test_parse_sample () =
  let p = Ir_text.parse sample_text in
  check Alcotest.string "name" "demo" (Program.name p);
  check Alcotest.int "funcs" 2 (Program.num_funcs p);
  check Alcotest.int "blocks" 7 (Program.num_blocks p);
  check Alcotest.string "main" "main" (Program.main p).fname;
  (* The program must actually run. *)
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check Alcotest.bool "completed" true r.E.Interp.completed;
  (* 100 loop iterations with a load and a store each. *)
  check Alcotest.int "data accesses" 200 (Colayout_util.Int_vec.length r.E.Interp.data_trace)

let test_roundtrip_sample () =
  let p = Ir_text.parse sample_text in
  let p' = Ir_text.parse (Ir_text.print p) in
  check Alcotest.bool "structurally equal" true (Ir_text.equal_structure p p')

let test_roundtrip_generated () =
  List.iter
    (fun seed ->
      let p =
        W.Gen.build
          { W.Gen.default_profile with pname = "rt"; seed; data_region_bytes = 512 }
      in
      let p' = Ir_text.parse (Ir_text.print p) in
      check Alcotest.bool
        (Printf.sprintf "roundtrip seed %d" seed)
        true
        (Ir_text.equal_structure p p');
      (* Semantics preserved: identical traces. *)
      let input = { E.Interp.seed = 77; params = [||]; max_blocks = 10_000 } in
      let r = E.Interp.run p input and r' = E.Interp.run p' input in
      check Alcotest.bool "same execution" true
        (Colayout_trace.Trace.equal r.E.Interp.bb_trace r'.E.Interp.bb_trace))
    [ 1; 2; 3 ]

let test_roundtrip_spec_analog () =
  let p = W.Spec.build "429.mcf" in
  let p' = Ir_text.parse (Ir_text.print p) in
  check Alcotest.bool "mcf roundtrip" true (Ir_text.equal_structure p p')

let expect_error ?(line = 0) text =
  match Ir_text.parse text with
  | exception Ir_text.Parse_error (l, _) ->
    if line > 0 then check Alcotest.int "error line" line l
  | _ -> Alcotest.fail "expected Parse_error"

let test_parse_errors () =
  expect_error "";
  expect_error ~line:1 "block orphan:\n";
  expect_error ~line:2 "func f\n  work 3\n";
  expect_error ~line:3 "func f\n  block a:\n    bogus stuff\n";
  (* Unknown jump target. *)
  expect_error "func f\n  block a:\n    jump nowhere\n";
  (* Unknown callee. *)
  expect_error "func f\n  block a:\n    call ghost -> a\n";
  (* Missing terminator. *)
  expect_error "func f\n  block a:\n    work 1\n";
  (* Statement after terminator. *)
  expect_error ~line:4 "func f\n  block a:\n    halt\n    work 1\n";
  (* Duplicate function. *)
  expect_error "func f\n  block a:\n    halt\nfunc f\n  block b:\n    halt\n";
  (* Duplicate block. *)
  expect_error "func f\n  block a:\n    halt\n  block a:\n    halt\n";
  (* Two mains. *)
  expect_error "func f *\n  block a:\n    halt\nfunc g *\n  block b:\n    halt\n";
  (* Malformed expression. *)
  expect_error "func f\n  block a:\n    v0 := (1 +\n    halt\n"

let test_expr_corner_cases () =
  let roundtrip s =
    let text = Printf.sprintf "func f\n  block a:\n    v0 := %s\n    halt\n" s in
    let p = Ir_text.parse text in
    let p' = Ir_text.parse (Ir_text.print p) in
    check Alcotest.bool ("expr " ^ s) true (Ir_text.equal_structure p p')
  in
  List.iter roundtrip
    [ "-42"; "((1 <= 2) ^ (3 != 4))"; "(v63 % rand(9))"; "((v1 & v2) | (v3 >= -1))" ]

let test_default_main_is_first () =
  let p = Ir_text.parse "func first\n  block a:\n    halt\nfunc second\n  block b:\n    halt\n" in
  check Alcotest.string "first is main" "first" (Program.main p).fname

let () =
  Alcotest.run "ir_text"
    [
      ( "parse",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "default main" `Quick test_default_main_is_first;
        ] );
      ( "roundtrip",
        [
          Alcotest.test_case "sample" `Quick test_roundtrip_sample;
          Alcotest.test_case "generated" `Quick test_roundtrip_generated;
          Alcotest.test_case "spec analog" `Quick test_roundtrip_spec_analog;
          Alcotest.test_case "expressions" `Quick test_expr_corner_cases;
        ] );
    ]
