open Colayout_ir
module E = Colayout_exec
module T = Colayout_trace

let check = Alcotest.check

(* main: v0 = 0; loop 3 times calling callee; callee returns. *)
let call_loop_program () =
  let b = Builder.create ~name:"callloop" () in
  let f = Builder.func b "main" in
  let g = Builder.func b "callee" in
  let entry = Builder.block b f "entry" in
  let loop = Builder.block b f "loop" in
  let tail = Builder.block b f "tail" in
  let stop = Builder.block b f "stop" in
  let g_entry = Builder.block b g "g.entry" in
  Builder.set_body b entry [ Types.Assign (0, Types.Const 0) ] (Types.Jump loop);
  Builder.set_body b loop [] (Types.Call { callee = g; return_to = tail });
  Builder.set_body b tail
    [ Types.Assign (0, Types.Bin (Types.Add, Types.Var 0, Types.Const 1)) ]
    (Types.Branch
       { cond = Types.Bin (Types.Lt, Types.Var 0, Types.Const 3); if_true = loop; if_false = stop });
  Builder.set_body b stop [] Types.Halt;
  Builder.set_body b g_entry [ Types.Work 5 ] Types.Return;
  Builder.finish b

let test_call_loop_trace () =
  let p = call_loop_program () in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check Alcotest.bool "completed" true r.E.Interp.completed;
  (* entry loop g tail | loop g tail | loop g tail | stop = 11 blocks. *)
  check Alcotest.int "block execs" 11 r.E.Interp.block_execs;
  check Alcotest.int "bb trace length" 11 (T.Trace.length r.E.Interp.bb_trace);
  (* fn trace: main entry + 3 calls to callee. *)
  check Alcotest.int "fn trace length" 4 (T.Trace.length r.E.Interp.fn_trace);
  check (Alcotest.list Alcotest.int) "fn trace" [ 0; 1; 1; 1 ] (T.Trace.to_list r.E.Interp.fn_trace)

let test_instr_count_matches_static () =
  let p = call_loop_program () in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  let counts = E.Interp.block_instr_counts p in
  let expected =
    T.Trace.to_list r.E.Interp.bb_trace |> List.fold_left (fun acc bid -> acc + counts.(bid)) 0
  in
  check Alcotest.int "instr count from trace" expected r.E.Interp.instr_count

let test_fuel_cutoff () =
  let b = Builder.create ~name:"inf" () in
  let f = Builder.func b "main" in
  let blk = Builder.block b f "spin" in
  Builder.set_body b blk [ Types.Work 1 ] (Types.Jump blk);
  let p = Builder.finish b in
  let r = E.Interp.run p { seed = 1; params = [||]; max_blocks = 100 } in
  check Alcotest.bool "not completed" false r.E.Interp.completed;
  check Alcotest.int "fuel bound" 100 r.E.Interp.block_execs

let test_switch_semantics () =
  let b = Builder.create ~name:"sw" () in
  let f = Builder.func b "main" in
  let entry = Builder.block b f "entry" in
  let c0 = Builder.block b f "c0" in
  let c1 = Builder.block b f "c1" in
  let dflt = Builder.block b f "default" in
  let stop = Builder.block b f "stop" in
  Builder.set_body b entry
    [ Types.Assign (0, Types.Const 1) ]
    (Types.Switch { sel = Types.Var 0; targets = [| c0; c1 |]; default = dflt });
  Builder.set_body b c0 [] (Types.Jump stop);
  Builder.set_body b c1 [] (Types.Jump stop);
  Builder.set_body b dflt [] (Types.Jump stop);
  Builder.set_body b stop [] Types.Halt;
  let p = Builder.finish b in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check (Alcotest.list Alcotest.int) "takes case 1" [ entry; c1; stop ]
    (T.Trace.to_list r.E.Interp.bb_trace)

let test_switch_default_out_of_range () =
  let b = Builder.create ~name:"sw2" () in
  let f = Builder.func b "main" in
  let entry = Builder.block b f "entry" in
  let c0 = Builder.block b f "c0" in
  let dflt = Builder.block b f "default" in
  Builder.set_body b entry
    [ Types.Assign (0, Types.Const 7) ]
    (Types.Switch { sel = Types.Var 0; targets = [| c0 |]; default = dflt });
  Builder.set_body b c0 [] Types.Halt;
  Builder.set_body b dflt [] Types.Halt;
  let p = Builder.finish b in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check (Alcotest.list Alcotest.int) "takes default" [ entry; dflt ]
    (T.Trace.to_list r.E.Interp.bb_trace)

let test_return_from_main_completes () =
  let b = Builder.create ~name:"retmain" () in
  let f = Builder.func b "main" in
  let blk = Builder.block b f "entry" in
  Builder.set_body b blk [] Types.Return;
  let p = Builder.finish b in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check Alcotest.bool "completed" true r.E.Interp.completed

let test_determinism_and_seed_sensitivity () =
  let prof = { Colayout_workloads.Gen.default_profile with pname = "t"; seed = 99 } in
  let p = Colayout_workloads.Gen.build prof in
  let r1 = E.Interp.run p { seed = 5; params = [||]; max_blocks = 5000 } in
  let r2 = E.Interp.run p { seed = 5; params = [||]; max_blocks = 5000 } in
  check Alcotest.bool "same seed same trace" true
    (T.Trace.equal r1.E.Interp.bb_trace r2.E.Interp.bb_trace);
  let r3 = E.Interp.run p { seed = 6; params = [||]; max_blocks = 5000 } in
  check Alcotest.bool "different seed different trace" false
    (T.Trace.equal r1.E.Interp.bb_trace r3.E.Interp.bb_trace)

let test_div_mod_by_zero () =
  let b = Builder.create ~name:"div0" () in
  let f = Builder.func b "main" in
  let blk = Builder.block b f "entry" in
  Builder.set_body b blk
    [
      Types.Assign (0, Types.Bin (Types.Div, Types.Const 7, Types.Const 0));
      Types.Assign (1, Types.Bin (Types.Mod, Types.Const 7, Types.Const 0));
    ]
    Types.Halt;
  let p = Builder.finish b in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  check Alcotest.bool "no crash" true r.E.Interp.completed

(* ----------------------------------------------------------------- Smt *)

let straightline_code n =
  (* n blocks of 64 bytes each, 16 instructions. *)
  let layout : Colayout_cache.Icache.layout =
    { addr = Array.init n (fun i -> i * 64); bytes = Array.make n 64 }
  in
  { E.Smt.layout; instr_counts = Array.make n 16 }

let test_smt_solo_basics () =
  let cfg = E.Smt.default_config () in
  let code = straightline_code 4 in
  let trace = Colayout_util.Int_vec.of_list [ 0; 1; 2; 3; 0; 1; 2; 3 ] in
  let s = E.Smt.solo cfg code trace in
  check Alcotest.int "instrs" (8 * 16) s.E.Smt.instrs;
  check Alcotest.int "accesses" 8 s.E.Smt.fetch_accesses;
  (* First pass misses all 4 lines; second pass hits. *)
  check Alcotest.int "misses" 4 s.E.Smt.fetch_misses;
  check Alcotest.bool "cycles sane" true (s.E.Smt.cycles > 0);
  check Alcotest.bool "ipc bounded by ilp" true (E.Smt.ipc s <= cfg.E.Smt.ilp +. 1e-6)

let test_smt_work_scale_slows () =
  let cfg = E.Smt.default_config () in
  let code = straightline_code 4 in
  let trace = Colayout_util.Int_vec.of_list (List.init 100 (fun i -> i mod 4)) in
  let fastt = E.Smt.solo cfg code trace in
  let slow = E.Smt.solo ~work_scale:2.0 cfg code trace in
  check Alcotest.bool "work scale slows thread" true (slow.E.Smt.cycles > fastt.E.Smt.cycles)

let test_smt_corun_contention () =
  let cfg = E.Smt.default_config () in
  let code = straightline_code 16 in
  let trace () = Colayout_util.Int_vec.of_list (List.init 2000 (fun i -> i mod 16)) in
  let solo = E.Smt.solo cfg code (trace ()) in
  let co = E.Smt.corun cfg ~mode:E.Smt.Finish_both (code, trace ()) (code, trace ()) in
  (* Each thread must be slower than solo but the pair faster than 2x solo. *)
  check Alcotest.bool "t0 slower than solo" true (co.E.Smt.t0.E.Smt.cycles >= solo.E.Smt.cycles);
  check Alcotest.bool "SMT beats sequential" true
    (co.E.Smt.total_cycles < 2 * solo.E.Smt.cycles);
  check Alcotest.int "t0 instrs" solo.E.Smt.instrs co.E.Smt.t0.E.Smt.instrs

let test_smt_measure_first_probe_restarts () =
  let cfg = E.Smt.default_config () in
  let code = straightline_code 4 in
  let long = Colayout_util.Int_vec.of_list (List.init 4000 (fun i -> i mod 4)) in
  let short = Colayout_util.Int_vec.of_list [ 0; 1 ] in
  let co = E.Smt.corun cfg ~mode:E.Smt.Measure_first (code, long) (code, short) in
  (* The probe loops: it must have executed far more blocks than its trace. *)
  check Alcotest.bool "probe restarted" true (co.E.Smt.t1.E.Smt.blocks > 2);
  check Alcotest.int "measured thread ran its pass" 4000 co.E.Smt.t0.E.Smt.blocks

let () =
  Alcotest.run "exec"
    [
      ( "interp",
        [
          Alcotest.test_case "call loop trace" `Quick test_call_loop_trace;
          Alcotest.test_case "instr counts" `Quick test_instr_count_matches_static;
          Alcotest.test_case "fuel" `Quick test_fuel_cutoff;
          Alcotest.test_case "switch" `Quick test_switch_semantics;
          Alcotest.test_case "switch default" `Quick test_switch_default_out_of_range;
          Alcotest.test_case "return from main" `Quick test_return_from_main_completes;
          Alcotest.test_case "determinism" `Quick test_determinism_and_seed_sensitivity;
          Alcotest.test_case "div/mod by zero" `Quick test_div_mod_by_zero;
        ] );
      ( "smt",
        [
          Alcotest.test_case "solo basics" `Quick test_smt_solo_basics;
          Alcotest.test_case "work scale" `Quick test_smt_work_scale_slows;
          Alcotest.test_case "corun contention" `Quick test_smt_corun_contention;
          Alcotest.test_case "probe restarts" `Quick test_smt_measure_first_probe_restarts;
        ] );
    ]
