(* Tests for the unified-cache extension: Load/Store instructions, the data
   trace, the two-level hierarchy, and link-based affinity. *)

open Colayout
open Colayout_ir
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let check = Alcotest.check

(* --------------------------------------------------------- Load / Store *)

let test_load_store_sizes () =
  let e = Types.Bin (Types.Add, Types.Const 0, Types.Rand 64) in
  check Alcotest.int "load bytes" 12 (Size_model.instr_bytes (Types.Load e));
  check Alcotest.int "store count" 3 (Size_model.instr_count (Types.Store e));
  check Alcotest.string "load pp" "load [(0 + rand(64))]" (Types.instr_to_string (Types.Load e))

let data_program () =
  let b = Builder.create ~name:"data" () in
  let f = Builder.func b "main" in
  let entry = Builder.block b f "entry" in
  let loop = Builder.block b f "loop" in
  let stop = Builder.block b f "stop" in
  Builder.set_body b entry [ Types.Assign (0, Types.Const 0) ] (Types.Jump loop);
  Builder.set_body b loop
    [
      Types.Load (Types.Bin (Types.Mul, Types.Var 0, Types.Const 64));
      Types.Store (Types.Const 4096);
      Types.Assign (0, Types.Bin (Types.Add, Types.Var 0, Types.Const 1));
    ]
    (Types.Branch
       { cond = Types.Bin (Types.Lt, Types.Var 0, Types.Const 10); if_true = loop; if_false = stop });
  Builder.set_body b stop [] Types.Halt;
  Builder.finish b

let test_data_trace () =
  let p = data_program () in
  let r = E.Interp.run p (E.Interp.test_input ()) in
  (* 10 loop iterations, 2 accesses each. *)
  check Alcotest.int "20 data accesses" 20 (U.Int_vec.length r.E.Interp.data_trace);
  check Alcotest.int "first load addr" 0 (U.Int_vec.get r.E.Interp.data_trace 0);
  check Alcotest.int "first store addr" 4096 (U.Int_vec.get r.E.Interp.data_trace 1);
  check Alcotest.int "second load addr" 64 (U.Int_vec.get r.E.Interp.data_trace 2);
  (* Data addresses are never negative even for wild expressions. *)
  U.Int_vec.iter
    (fun a -> if a < 0 then Alcotest.failf "negative address %d" a)
    r.E.Interp.data_trace

let test_data_trace_deterministic () =
  let prof =
    { Colayout_workloads.Gen.default_profile with
      pname = "dt"; seed = 12; data_region_bytes = 2048; loads_per_block = 2 }
  in
  let p = Colayout_workloads.Gen.build prof in
  let r1 = E.Interp.run p { seed = 4; params = [||]; max_blocks = 20_000 } in
  let r2 = E.Interp.run p { seed = 4; params = [||]; max_blocks = 20_000 } in
  check Alcotest.bool "deterministic data stream" true
    (U.Int_vec.equal r1.E.Interp.data_trace r2.E.Interp.data_trace);
  check Alcotest.bool "data stream nonempty" true (U.Int_vec.length r1.E.Interp.data_trace > 0)

let test_workload_without_data_has_empty_stream () =
  let p = Colayout_workloads.Gen.build Colayout_workloads.Gen.default_profile in
  let r = E.Interp.run p { seed = 4; params = [||]; max_blocks = 10_000 } in
  check Alcotest.int "no data accesses" 0 (U.Int_vec.length r.E.Interp.data_trace)

(* ------------------------------------------------------------ Hierarchy *)

let test_hierarchy_inclusion () =
  let h = C.Hierarchy.create () in
  (* First touch: miss in both levels. *)
  C.Hierarchy.access_instr h ~thread:0 ~line:7;
  check Alcotest.int "L1I miss" 1 (C.Cache_stats.misses (C.Hierarchy.l1i_stats h));
  check Alcotest.int "L2 access on L1 miss" 1 (C.Cache_stats.accesses (C.Hierarchy.l2_stats h));
  check Alcotest.int "L2 instr miss" 1 (C.Hierarchy.l2_instr_misses h);
  (* L1 hit: L2 untouched. *)
  C.Hierarchy.access_instr h ~thread:0 ~line:7;
  check Alcotest.int "L2 still 1 access" 1 (C.Cache_stats.accesses (C.Hierarchy.l2_stats h))

let test_hierarchy_instr_data_disjoint_in_l2 () =
  let h = C.Hierarchy.create () in
  (* Same line number in both spaces must not alias in L2. *)
  C.Hierarchy.access_instr h ~thread:0 ~line:3;
  C.Hierarchy.access_data h ~thread:0 ~addr:(3 * 64);
  check Alcotest.int "two L2 misses" 2 (C.Cache_stats.misses (C.Hierarchy.l2_stats h));
  check Alcotest.int "one instr" 1 (C.Hierarchy.l2_instr_misses h);
  check Alcotest.int "one data" 1 (C.Hierarchy.l2_data_misses h)

let test_hierarchy_l2_catches_l1_evictions () =
  (* Tiny L1I, big L2: lines evicted from L1 still hit L2. *)
  let l1i = C.Params.make ~size_bytes:128 ~assoc:2 ~line_bytes:64 in
  let h = C.Hierarchy.create ~l1i () in
  (* 3 lines fight over 2 ways of one set... all map to set 0 here. *)
  C.Hierarchy.access_instr h ~thread:0 ~line:0;
  C.Hierarchy.access_instr h ~thread:0 ~line:1;
  C.Hierarchy.access_instr h ~thread:0 ~line:2;
  (* line 0 evicted from L1I; refetch misses L1 but hits L2. *)
  C.Hierarchy.access_instr h ~thread:0 ~line:0;
  check Alcotest.int "L1I misses" 4 (C.Cache_stats.misses (C.Hierarchy.l1i_stats h));
  check Alcotest.int "L2 misses only cold" 3 (C.Cache_stats.misses (C.Hierarchy.l2_stats h));
  check Alcotest.int "L2 hit on refetch" 1 (C.Cache_stats.hits (C.Hierarchy.l2_stats h))

let test_hierarchy_negative_data_addr () =
  let h = C.Hierarchy.create () in
  Alcotest.check_raises "negative addr" (Invalid_argument "Hierarchy.access_data: negative address")
    (fun () -> C.Hierarchy.access_data h ~thread:0 ~addr:(-1))

let test_hierarchy_thread_stats () =
  let h = C.Hierarchy.create ~threads:2 () in
  C.Hierarchy.access_instr h ~thread:0 ~line:1;
  C.Hierarchy.access_instr h ~thread:1 ~line:(1 lsl 30);
  check Alcotest.int "thread 0" 1 (C.Cache_stats.thread_accesses (C.Hierarchy.l1i_stats h) 0);
  check Alcotest.int "thread 1" 1 (C.Cache_stats.thread_accesses (C.Hierarchy.l1i_stats h) 1)

(* -------------------------------------------------------- Link affinity *)

let fig1_trace () = Colayout_trace.Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ]

let test_link_affinity_order_is_permutation () =
  let t = fig1_trace () in
  let h = Link_affinity.build ~algo:Affinity_hierarchy.Exact t in
  check (Alcotest.list Alcotest.int) "permutation" [ 0; 1; 2; 3; 4 ]
    (List.sort compare (Link_affinity.order h))

let test_link_affinity_proportional_window () =
  (* At k=1 the window for merging two singletons is 2: only adjacent-pair
     affinity merges. B3,B5 are adjacent once each: they merge at k=1. *)
  let t = fig1_trace () in
  let h = Link_affinity.build ~algo:Affinity_hierarchy.Exact ~ks:[ 1 ] t in
  let partition = List.map (List.sort compare) (Link_affinity.partition_at h ~k:1) in
  check Alcotest.bool "B3,B5 merged at k=1" true (List.mem [ 2; 4 ] partition)

let test_link_vs_window_differ () =
  (* The defining contrast: with a fixed w the pair (B1,B4) needs w=3, but
     with proportional windows it already merges at k=2 (window 2x2=4 ...
     actually at k=2 window for two singletons is 4). The models produce
    different hierarchies on the same trace. *)
  let t = fig1_trace () in
  let link = Link_affinity.build ~algo:Affinity_hierarchy.Exact ~ks:[ 1; 2 ] t in
  let windowed = Affinity_hierarchy.build ~algo:Affinity_hierarchy.Exact ~ws:[ 1; 2 ] t in
  let plink = List.map (List.sort compare) (Link_affinity.partition_at link ~k:2) in
  let pwin = List.map (List.sort compare) (Affinity_hierarchy.partition_at windowed ~w:2) in
  check Alcotest.bool "partitions differ" true (List.sort compare plink <> List.sort compare pwin)

let link_partitions_nest =
  QCheck.Test.make ~name:"link-affinity partitions nest as k grows" ~count:60
    QCheck.(list_of_size Gen.(int_range 2 30) (int_bound 5))
    (fun xs ->
      let t = Colayout_trace.Trim.trim (Colayout_trace.Trace.of_list ~num_symbols:6 xs) in
      QCheck.assume (Colayout_trace.Trace.length t >= 2);
      let h = Link_affinity.build ~ks:[ 1; 2; 3 ] t in
      List.for_all
        (fun (k1, k2) ->
          let p1 = Link_affinity.partition_at h ~k:k1 in
          let p2 = Link_affinity.partition_at h ~k:k2 in
          List.for_all
            (fun g1 -> List.exists (fun g2 -> List.for_all (fun x -> List.mem x g2) g1) p2)
            p1)
        [ (1, 2); (2, 3) ])

let test_link_bad_args () =
  let t = fig1_trace () in
  Alcotest.check_raises "bad ks"
    (Invalid_argument "Link_affinity: ks must be positive and strictly ascending")
    (fun () -> ignore (Link_affinity.build ~ks:[ 2; 1 ] t));
  Alcotest.check_raises "bad window"
    (Invalid_argument "Link_affinity: max_window must be >= 2")
    (fun () -> ignore (Link_affinity.build ~max_window:1 t))

let () =
  Alcotest.run "unified"
    [
      ( "load_store",
        [
          Alcotest.test_case "sizes" `Quick test_load_store_sizes;
          Alcotest.test_case "data trace" `Quick test_data_trace;
          Alcotest.test_case "deterministic" `Quick test_data_trace_deterministic;
          Alcotest.test_case "no data by default" `Quick test_workload_without_data_has_empty_stream;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "inclusion" `Quick test_hierarchy_inclusion;
          Alcotest.test_case "instr/data disjoint" `Quick test_hierarchy_instr_data_disjoint_in_l2;
          Alcotest.test_case "L2 catches evictions" `Quick test_hierarchy_l2_catches_l1_evictions;
          Alcotest.test_case "negative addr" `Quick test_hierarchy_negative_data_addr;
          Alcotest.test_case "thread stats" `Quick test_hierarchy_thread_stats;
        ] );
      ( "link_affinity",
        [
          Alcotest.test_case "permutation" `Quick test_link_affinity_order_is_permutation;
          Alcotest.test_case "proportional window" `Quick test_link_affinity_proportional_window;
          Alcotest.test_case "differs from w-window" `Quick test_link_vs_window_differ;
          QCheck_alcotest.to_alcotest link_partitions_nest;
          Alcotest.test_case "bad args" `Quick test_link_bad_args;
        ] );
    ]
