open Colayout_util

let check = Alcotest.check

(* ------------------------------------------------------------------ Vec *)

let test_vec_basics () =
  let v = Vec.create () in
  check Alcotest.bool "empty" true (Vec.is_empty v);
  Vec.push v 1;
  Vec.push v 2;
  Vec.push v 3;
  check Alcotest.int "length" 3 (Vec.length v);
  check Alcotest.int "get" 2 (Vec.get v 1);
  Vec.set v 1 9;
  check Alcotest.int "set" 9 (Vec.get v 1);
  check (Alcotest.option Alcotest.int) "last" (Some 3) (Vec.last v);
  check (Alcotest.option Alcotest.int) "pop" (Some 3) (Vec.pop v);
  check Alcotest.int "length after pop" 2 (Vec.length v);
  check (Alcotest.list Alcotest.int) "to_list" [ 1; 9 ] (Vec.to_list v)

let test_vec_bounds () =
  let v = Vec.of_list [ 1; 2 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec: index 2 out of bounds [0,2)")
    (fun () -> ignore (Vec.get v 2));
  Alcotest.check_raises "neg" (Invalid_argument "Vec: index -1 out of bounds [0,2)")
    (fun () -> ignore (Vec.get v (-1)))

let test_vec_growth () =
  let v = Vec.create () in
  for i = 0 to 9999 do
    Vec.push v i
  done;
  check Alcotest.int "length" 10000 (Vec.length v);
  check Alcotest.int "first" 0 (Vec.get v 0);
  check Alcotest.int "last" 9999 (Vec.get v 9999);
  let sum = Vec.fold_left ( + ) 0 v in
  check Alcotest.int "fold sum" (9999 * 10000 / 2) sum

let test_vec_ops () =
  let v = Vec.of_list [ 3; 1; 2 ] in
  let doubled = Vec.map (fun x -> 2 * x) v in
  check (Alcotest.list Alcotest.int) "map" [ 6; 2; 4 ] (Vec.to_list doubled);
  check Alcotest.bool "exists" true (Vec.exists (fun x -> x = 1) v);
  check Alcotest.bool "not exists" false (Vec.exists (fun x -> x = 7) v);
  let dst = Vec.of_list [ 0 ] in
  Vec.append dst v;
  check (Alcotest.list Alcotest.int) "append" [ 0; 3; 1; 2 ] (Vec.to_list dst);
  let s = Vec.sub dst ~pos:1 ~len:2 in
  check (Alcotest.list Alcotest.int) "sub" [ 3; 1 ] (Vec.to_list s)

(* -------------------------------------------------------------- Int_vec *)

let test_int_vec () =
  let v = Int_vec.create () in
  for i = 0 to 999 do
    Int_vec.push v (i * i)
  done;
  check Alcotest.int "length" 1000 (Int_vec.length v);
  check Alcotest.int "get" (25 * 25) (Int_vec.get v 25);
  check (Alcotest.option Alcotest.int) "max" (Some (999 * 999)) (Int_vec.max_element v);
  let v2 = Int_vec.of_array (Int_vec.to_array v) in
  check Alcotest.bool "roundtrip equal" true (Int_vec.equal v v2);
  Int_vec.set v2 0 (-5);
  check Alcotest.bool "not equal after set" false (Int_vec.equal v v2)

let test_int_vec_sub_append () =
  let v = Int_vec.of_list [ 1; 2; 3; 4 ] in
  let s = Int_vec.sub v ~pos:1 ~len:2 in
  check (Alcotest.list Alcotest.int) "sub" [ 2; 3 ] (Int_vec.to_list s);
  Int_vec.append s v;
  check Alcotest.int "append length" 6 (Int_vec.length s);
  Alcotest.check_raises "sub oob" (Invalid_argument "Int_vec.sub") (fun () ->
      ignore (Int_vec.sub v ~pos:3 ~len:2))

(* ----------------------------------------------------------------- Prng *)

let test_prng_determinism () =
  let a = Prng.create ~seed:42 in
  let b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    check Alcotest.int "same stream" (Prng.int a 1000) (Prng.int b 1000)
  done;
  let c = Prng.create ~seed:43 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Prng.int a 1_000_000 <> Prng.int c 1_000_000 then diff := true
  done;
  check Alcotest.bool "different seeds differ" true !diff

let test_prng_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 10_000 do
    let v = Prng.int t 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done;
  for _ = 1 to 1000 do
    let v = Prng.int_in t ~lo:(-5) ~hi:5 in
    if v < -5 || v > 5 then Alcotest.failf "int_in out of range: %d" v;
    let f = Prng.float t in
    if f < 0.0 || f >= 1.0 then Alcotest.failf "float out of range: %f" f
  done

let test_prng_shuffle_permutation () =
  let t = Prng.create ~seed:11 in
  let a = Array.init 100 Fun.id in
  Prng.shuffle t a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation" (Array.init 100 Fun.id) sorted

let test_prng_zipf () =
  let t = Prng.create ~seed:3 in
  let counts = Array.make 10 0 in
  for _ = 1 to 20_000 do
    let v = Prng.zipf t ~n:10 ~s:1.0 in
    counts.(v) <- counts.(v) + 1
  done;
  (* Rank 0 must dominate rank 9 by roughly n under s = 1. *)
  check Alcotest.bool "zipf skew" true (counts.(0) > 4 * counts.(9));
  check Alcotest.bool "all ranks hit" true (Array.for_all (fun c -> c > 0) counts)

let test_prng_geometric () =
  let t = Prng.create ~seed:5 in
  let total = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let v = Prng.geometric t ~p:0.5 in
    if v < 0 then Alcotest.fail "negative geometric";
    total := !total + v
  done;
  let mean = float_of_int !total /. float_of_int n in
  (* E[failures] = (1-p)/p = 1. *)
  check Alcotest.bool "geometric mean near 1" true (mean > 0.9 && mean < 1.1)

(* ---------------------------------------------------------------- Dlist *)

let test_dlist_order () =
  let l = Dlist.create () in
  let _ = Dlist.push_back l 1 in
  let _ = Dlist.push_back l 2 in
  let _ = Dlist.push_front l 0 in
  check (Alcotest.list Alcotest.int) "order" [ 0; 1; 2 ] (Dlist.to_list l);
  check Alcotest.int "length" 3 (Dlist.length l)

let test_dlist_remove_move () =
  let l = Dlist.create () in
  let n1 = Dlist.push_back l 1 in
  let n2 = Dlist.push_back l 2 in
  let n3 = Dlist.push_back l 3 in
  Dlist.remove l n2;
  check (Alcotest.list Alcotest.int) "after remove" [ 1; 3 ] (Dlist.to_list l);
  Dlist.move_to_front l n3;
  check (Alcotest.list Alcotest.int) "after move" [ 3; 1 ] (Dlist.to_list l);
  (* Handles stay valid across move_to_front. *)
  Dlist.move_to_front l n1;
  Dlist.move_to_front l n3;
  check (Alcotest.list Alcotest.int) "handles valid" [ 3; 1 ] (Dlist.to_list l);
  Alcotest.check_raises "double remove" (Invalid_argument "Dlist: node does not belong to this list")
    (fun () -> Dlist.remove l n2)

let test_dlist_front_back () =
  let l = Dlist.create () in
  check Alcotest.bool "no front" true (Dlist.front l = None);
  let _ = Dlist.push_back l 5 in
  (match (Dlist.front l, Dlist.back l) with
  | Some f, Some b ->
    check Alcotest.int "front" 5 (Dlist.value f);
    check Alcotest.int "back" 5 (Dlist.value b)
  | _ -> Alcotest.fail "expected nodes");
  check Alcotest.int "fold" 5 (Dlist.fold ( + ) 0 l)

(* --------------------------------------------------------------- Ostree *)

let test_ostree_basic () =
  let t = Ostree.create () in
  List.iter (Ostree.insert t) [ 5; 1; 9; 3; 7 ];
  Ostree.check_invariants t;
  check Alcotest.int "size" 5 (Ostree.size t);
  check Alcotest.bool "mem" true (Ostree.mem t 3);
  check Alcotest.bool "not mem" false (Ostree.mem t 4);
  check Alcotest.int "rank_above 4" 3 (Ostree.rank_above t 4);
  check Alcotest.int "rank_above 9" 0 (Ostree.rank_above t 9);
  check Alcotest.int "rank_above 0" 5 (Ostree.rank_above t 0);
  check (Alcotest.option Alcotest.int) "min" (Some 1) (Ostree.min_key t);
  check (Alcotest.option Alcotest.int) "max" (Some 9) (Ostree.max_key t);
  Ostree.delete t 5;
  Ostree.check_invariants t;
  check Alcotest.int "size after delete" 4 (Ostree.size t);
  Alcotest.check_raises "delete missing" Not_found (fun () -> Ostree.delete t 5);
  Alcotest.check_raises "duplicate insert" (Invalid_argument "Ostree.insert: duplicate key")
    (fun () -> Ostree.insert t 1)

let ostree_random_prop =
  QCheck.Test.make ~name:"ostree matches sorted-list reference under random ops"
    ~count:200
    QCheck.(pair small_int (list (pair bool (int_bound 200))))
    (fun (probe, ops) ->
      let t = Ostree.create () in
      let reference = Hashtbl.create 64 in
      List.iter
        (fun (ins, k) ->
          if ins then begin
            if not (Hashtbl.mem reference k) then begin
              Ostree.insert t k;
              Hashtbl.replace reference k ()
            end
          end
          else if Hashtbl.mem reference k then begin
            Ostree.delete t k;
            Hashtbl.remove reference k
          end)
        ops;
      Ostree.check_invariants t;
      let expected = Hashtbl.fold (fun k () acc -> if k > probe then acc + 1 else acc) reference 0 in
      Ostree.size t = Hashtbl.length reference && Ostree.rank_above t probe = expected)

(* ----------------------------------------------------------------- Heap *)

let heap_sort_prop =
  QCheck.Test.make ~name:"heap pops in descending order" ~count:200
    QCheck.(list int)
    (fun xs ->
      let h = Heap.of_list ~cmp:compare xs in
      Heap.to_sorted_list h = List.sort (fun a b -> compare b a) xs)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare () in
  check Alcotest.bool "empty" true (Heap.is_empty h);
  Heap.push h 3;
  Heap.push h 10;
  Heap.push h 7;
  check (Alcotest.option Alcotest.int) "peek" (Some 10) (Heap.peek h);
  check (Alcotest.option Alcotest.int) "pop" (Some 10) (Heap.pop h);
  check Alcotest.int "length" 2 (Heap.length h)

(* ---------------------------------------------------------------- Stats *)

let test_stats () =
  check (Alcotest.float 1e-9) "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check (Alcotest.float 1e-9) "mean empty" 0.0 (Stats.mean []);
  check (Alcotest.float 1e-9) "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  check (Alcotest.float 1e-9) "min" 1.0 (Stats.minimum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "max" 3.0 (Stats.maximum [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "median" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  check (Alcotest.float 1e-9) "speedup" 2.0 (Stats.speedup ~base:10.0 ~opt:5.0);
  check (Alcotest.float 1e-9) "pct change" 50.0 (Stats.percent_change ~base:2.0 ~v:3.0);
  Alcotest.check_raises "geomean non-positive" (Invalid_argument "Stats.geomean: non-positive value")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_stats_stddev () =
  check (Alcotest.float 1e-9) "stddev constant" 0.0 (Stats.stddev [ 4.0; 4.0; 4.0 ]);
  check (Alcotest.float 1e-9) "stddev" 2.0 (Stats.stddev [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ])

(* ---------------------------------------------------------------- Table *)

let test_table () =
  let t = Table.create ~title:"demo" ~columns:[ ("a", Table.Left); ("b", Table.Right) ] in
  Table.add_row t [ "x"; "1" ];
  Table.add_rows t [ [ "yy"; "22" ] ];
  check Alcotest.int "rows" 2 (Table.row_count t);
  let rendered = Table.render t in
  check Alcotest.bool "has title" true
    (String.length rendered > 0 && String.sub rendered 0 7 = "== demo");
  let csv = Table.to_csv t in
  check Alcotest.string "csv" "a,b\nx,1\nyy,22" csv;
  Alcotest.check_raises "bad width" (Invalid_argument "Table.add_row: expected 2 cells, got 1")
    (fun () -> Table.add_row t [ "only" ])

let test_table_csv_escaping () =
  let t = Table.create ~title:"q" ~columns:[ ("c", Table.Left) ] in
  Table.add_row t [ "has,comma" ];
  Table.add_row t [ "has\"quote" ];
  check Alcotest.string "escaped" "c\n\"has,comma\"\n\"has\"\"quote\"" (Table.to_csv t)

let test_table_formats () =
  check Alcotest.string "pct" "3.14%" (Table.fmt_pct 3.14159);
  check Alcotest.string "ratio" "1.046" (Table.fmt_ratio 1.0456);
  check Alcotest.string "int" "1,234,567" (Table.fmt_int 1234567);
  check Alcotest.string "negative int" "-1,234" (Table.fmt_int (-1234));
  check Alcotest.string "small int" "42" (Table.fmt_int 42)

let () =
  Alcotest.run "util"
    [
      ( "vec",
        [
          Alcotest.test_case "basics" `Quick test_vec_basics;
          Alcotest.test_case "bounds" `Quick test_vec_bounds;
          Alcotest.test_case "growth" `Quick test_vec_growth;
          Alcotest.test_case "ops" `Quick test_vec_ops;
        ] );
      ( "int_vec",
        [
          Alcotest.test_case "basics" `Quick test_int_vec;
          Alcotest.test_case "sub/append" `Quick test_int_vec_sub_append;
        ] );
      ( "prng",
        [
          Alcotest.test_case "determinism" `Quick test_prng_determinism;
          Alcotest.test_case "bounds" `Quick test_prng_bounds;
          Alcotest.test_case "shuffle" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "zipf" `Quick test_prng_zipf;
          Alcotest.test_case "geometric" `Quick test_prng_geometric;
        ] );
      ( "dlist",
        [
          Alcotest.test_case "order" `Quick test_dlist_order;
          Alcotest.test_case "remove/move" `Quick test_dlist_remove_move;
          Alcotest.test_case "front/back" `Quick test_dlist_front_back;
        ] );
      ( "ostree",
        [
          Alcotest.test_case "basic" `Quick test_ostree_basic;
          QCheck_alcotest.to_alcotest ostree_random_prop;
        ] );
      ( "heap",
        [
          Alcotest.test_case "basic" `Quick test_heap_basic;
          QCheck_alcotest.to_alcotest heap_sort_prop;
        ] );
      ( "stats",
        [
          Alcotest.test_case "aggregates" `Quick test_stats;
          Alcotest.test_case "stddev" `Quick test_stats_stddev;
        ] );
      ( "table",
        [
          Alcotest.test_case "render/csv" `Quick test_table;
          Alcotest.test_case "csv escaping" `Quick test_table_csv_escaping;
          Alcotest.test_case "formats" `Quick test_table_formats;
        ] );
    ]
