open Colayout
module W = Colayout_workloads
module E = Colayout_exec

let check = Alcotest.check

let test_kind_names () =
  List.iter
    (fun k ->
      match Optimizer.kind_of_name (Optimizer.kind_name k) with
      | Some k' when k' = k -> ()
      | _ -> Alcotest.failf "roundtrip failed for %s" (Optimizer.kind_name k))
    Optimizer.all_kinds;
  check Alcotest.bool "unknown" true (Optimizer.kind_of_name "nope" = None);
  check Alcotest.int "five kinds" 5 (List.length Optimizer.all_kinds)

let small_profile =
  {
    W.Gen.default_profile with
    pname = "opt-test";
    seed = 77;
    phases = 3;
    funcs_per_phase = 4;
    shared_funcs = 1;
    cold_funcs = 4;
    iters_per_phase = 20;
  }

let analysis_of p =
  Optimizer.analyze p (E.Interp.test_input ~max_blocks:40_000 ())

let test_analysis_contents () =
  let p = W.Gen.build small_profile in
  let a = analysis_of p in
  check Alcotest.bool "bb trimmed" true (Colayout_trace.Trim.is_trimmed a.Optimizer.bb);
  check Alcotest.bool "fn trimmed" true (Colayout_trace.Trim.is_trimmed a.Optimizer.fn);
  check Alcotest.bool "bb nonempty" true (Colayout_trace.Trace.length a.Optimizer.bb > 0);
  check Alcotest.bool "coverage high" true (a.Optimizer.prune.Colayout_trace.Prune.coverage > 0.9)

let test_all_layouts_are_permutations () =
  let p = W.Gen.build small_profile in
  let a = analysis_of p in
  let n = Colayout_ir.Program.num_blocks p in
  List.iter
    (fun kind ->
      let l = Optimizer.layout_for kind p a in
      let sorted = Array.copy l.Layout.order in
      Array.sort compare sorted;
      check (Alcotest.array Alcotest.int)
        (Optimizer.kind_name kind ^ " permutation")
        (Array.init n Fun.id) sorted)
    Optimizer.all_kinds

let test_function_granularity_keeps_functions_contiguous () =
  let p = W.Gen.build small_profile in
  let a = analysis_of p in
  List.iter
    (fun kind ->
      let l = Optimizer.layout_for kind p a in
      (* Walk the order; blocks of one function must be consecutive. *)
      let seen_done = Hashtbl.create 16 in
      let current = ref (-1) in
      Array.iter
        (fun bid ->
          let fn = (Colayout_ir.Program.block p bid).Colayout_ir.Program.fn in
          if fn <> !current then begin
            if Hashtbl.mem seen_done fn then
              Alcotest.failf "%s: function f%d split" (Optimizer.kind_name kind) fn;
            Hashtbl.replace seen_done fn ();
            current := fn
          end)
        l.Layout.order)
    [ Optimizer.Original; Optimizer.Func_affinity; Optimizer.Func_trg ]

let test_bb_granularity_moves_blocks_across_functions () =
  let p = W.Gen.build small_profile in
  let a = analysis_of p in
  let l = Optimizer.layout_for Optimizer.Bb_affinity p a in
  (* At least one function's blocks must be split apart (that is the point
     of inter-procedural reordering). *)
  let split = ref false in
  let last_pos = Hashtbl.create 16 in
  Array.iteri
    (fun pos bid ->
      let fn = (Colayout_ir.Program.block p bid).Colayout_ir.Program.fn in
      (match Hashtbl.find_opt last_pos fn with
      | Some prev when pos > prev + 1 -> split := true
      | _ -> ());
      Hashtbl.replace last_pos fn pos)
    l.Layout.order;
  check Alcotest.bool "some function split" true !split

let test_deterministic_layouts () =
  let p = W.Gen.build small_profile in
  let a = analysis_of p in
  List.iter
    (fun kind ->
      let l1 = Optimizer.layout_for kind p a in
      let l2 = Optimizer.layout_for kind p a in
      check (Alcotest.array Alcotest.int)
        (Optimizer.kind_name kind ^ " deterministic")
        l1.Layout.order l2.Layout.order)
    Optimizer.all_kinds

let test_optimizers_reduce_misses () =
  (* End-to-end: on an affinity-structured workload, both affinity
     optimizers must beat the shuffled original layout. *)
  (* Long phases so within-phase conflict misses (which layout fixes)
     dominate over phase-transition capacity misses (which it cannot). *)
  let p =
    W.Gen.build
      { small_profile with funcs_per_phase = 8; phases = 5; iters_per_phase = 150; seed = 79 }
  in
  let a = Optimizer.analyze p (E.Interp.test_input ~max_blocks:100_000 ()) in
  let tr = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:200_000 ()) in
  let params = Colayout_cache.Params.default_l1i in
  let miss kind =
    let layout = Optimizer.layout_for kind p a in
    Colayout_cache.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout tr)
  in
  let original = miss Optimizer.Original in
  check Alcotest.bool "baseline misses exist" true (original > 0.001);
  check Alcotest.bool "func affinity improves" true (miss Optimizer.Func_affinity < original);
  check Alcotest.bool "bb affinity improves" true (miss Optimizer.Bb_affinity < original)

let test_config_ws_respected () =
  let p = W.Gen.build small_profile in
  let config = { Optimizer.default_config with ws = [ 2; 4 ] } in
  let a = Optimizer.analyze ~config p (E.Interp.test_input ~max_blocks:40_000 ()) in
  let l = Optimizer.layout_for ~config Optimizer.Bb_affinity p a in
  check Alcotest.int "still a full layout" (Colayout_ir.Program.num_blocks p)
    (Array.length l.Layout.order)

let test_analysis_of_traces () =
  let bb = Colayout_trace.Trace.of_list ~num_symbols:4 [ 0; 0; 1; 2; 1; 1; 3 ] in
  let fn = Colayout_trace.Trace.of_list ~num_symbols:2 [ 0; 0; 1 ] in
  let a = Optimizer.analysis_of_traces ~bb ~fn () in
  check (Alcotest.list Alcotest.int) "bb trimmed+pruned" [ 0; 1; 2; 1; 3 ]
    (Colayout_trace.Trace.to_list a.Optimizer.bb);
  check (Alcotest.list Alcotest.int) "fn trimmed" [ 0; 1 ]
    (Colayout_trace.Trace.to_list a.Optimizer.fn)

let () =
  Alcotest.run "optimizer"
    [
      ("kinds", [ Alcotest.test_case "names" `Quick test_kind_names ]);
      ( "analysis",
        [
          Alcotest.test_case "contents" `Quick test_analysis_contents;
          Alcotest.test_case "of traces" `Quick test_analysis_of_traces;
        ] );
      ( "layouts",
        [
          Alcotest.test_case "permutations" `Quick test_all_layouts_are_permutations;
          Alcotest.test_case "function contiguity" `Quick test_function_granularity_keeps_functions_contiguous;
          Alcotest.test_case "bb splits functions" `Quick test_bb_granularity_moves_blocks_across_functions;
          Alcotest.test_case "deterministic" `Quick test_deterministic_layouts;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "misses reduced" `Slow test_optimizers_reduce_misses;
          Alcotest.test_case "config ws" `Quick test_config_ws_respected;
        ] );
    ]
