open Colayout
open Colayout_trace

let check = Alcotest.check

(* The paper's Figure 1 trace: B1 B4 B2 B4 B2 B3 B5 B1 B4 with B1..B5 as
   symbols 0..4. *)
let fig1_trace () = Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ]

let test_window_footprint () =
  let t = Trace.of_list ~num_symbols:5 [ 0; 2; 1; 2; 3 ] in
  (* Paper's example: fp<B1,B2> = 3 in trace B1 B3 B2 B3 B4. *)
  check Alcotest.int "paper fp example" 3 (Affinity.window_footprint t 0 2);
  check Alcotest.int "single" 1 (Affinity.window_footprint t 1 1);
  check Alcotest.int "order irrelevant" (Affinity.window_footprint t 0 4)
    (Affinity.window_footprint t 4 0);
  Alcotest.check_raises "oob" (Invalid_argument "Affinity.window_footprint") (fun () ->
      ignore (Affinity.window_footprint t 0 5))

let test_fig1_pairs_naive () =
  let t = fig1_trace () in
  (* w=2: only (B3,B5) = (2,4). *)
  let p2 = Affinity.affine_pairs_naive t ~w:2 in
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "w=2 pairs" [ (2, 4) ]
    (Affinity.pair_list p2);
  (* w=3 adds (B1,B4)=(0,3) and (B2,B3)=(1,2). *)
  let p3 = Affinity.affine_pairs_naive t ~w:3 in
  check Alcotest.bool "w=3 B1B4" true (Affinity.is_affine p3 0 3);
  check Alcotest.bool "w=3 B2B3" true (Affinity.is_affine p3 1 2);
  check Alcotest.bool "w=3 not B2B5" false (Affinity.is_affine p3 1 4);
  check Alcotest.bool "self affine" true (Affinity.is_affine p3 2 2)

let test_requires_trimmed () =
  let t = Trace.of_list ~num_symbols:2 [ 0; 0; 1 ] in
  Alcotest.check_raises "efficient"
    (Invalid_argument "Affinity: trace must be trimmed (no two consecutive equal blocks)")
    (fun () -> ignore (Affinity.affine_pairs t ~w:2));
  Alcotest.check_raises "naive"
    (Invalid_argument "Affinity: trace must be trimmed (no two consecutive equal blocks)")
    (fun () -> ignore (Affinity.affine_pairs_naive t ~w:2))

let efficient_is_sound =
  (* The stack algorithm may miss affinities (documented approximation) but
     must never report a pair the definition rejects. *)
  QCheck.Test.make ~name:"efficient affinity is a subset of Definition 3" ~count:150
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 2 40) (int_bound 6)))
    (fun (w, xs) ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let eff = Affinity.affine_pairs t ~w in
      let exact = Affinity.affine_pairs_naive t ~w in
      List.for_all (fun (x, y) -> Affinity.is_affine exact x y) (Affinity.pair_list eff))

let partition_groups_are_affine =
  QCheck.Test.make ~name:"Algorithm 1 groups are pairwise affine" ~count:100
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 2 40) (int_bound 6)))
    (fun (w, xs) ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let ps = Affinity.affine_pairs t ~w in
      let groups = Affinity.partition t ~w in
      List.for_all
        (fun g ->
          List.for_all (fun a -> List.for_all (fun b -> Affinity.is_affine ps a b) g) g)
        groups)

let partition_covers_all_symbols =
  QCheck.Test.make ~name:"Algorithm 1 partitions exactly the occurring symbols" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 40) (int_bound 6))
    (fun xs ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let groups = Affinity.partition t ~w:3 in
      let members = List.sort compare (List.concat groups) in
      let occurring =
        Trace.occurrences t |> Array.to_list
        |> List.mapi (fun i c -> (i, c))
        |> List.filter_map (fun (i, c) -> if c > 0 then Some i else None)
      in
      members = occurring)

(* --------------------------------------------------- Hierarchy (Fig 1b) *)

let test_fig1_hierarchy_exact () =
  let t = fig1_trace () in
  let h = Affinity_hierarchy.build ~algo:Affinity_hierarchy.Exact ~ws:[ 1; 2; 3; 4; 5 ] t in
  let partition w = List.map (List.sort compare) (Affinity_hierarchy.partition_at h ~w) in
  let sorted p = List.sort compare p in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "w=1 singletons"
    [ [ 0 ]; [ 1 ]; [ 2 ]; [ 3 ]; [ 4 ] ]
    (sorted (partition 1));
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "w=2" [ [ 0 ]; [ 1 ]; [ 2; 4 ]; [ 3 ] ] (sorted (partition 2));
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "w=3" [ [ 0; 3 ]; [ 1 ]; [ 2; 4 ] ] (sorted (partition 3));
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "w=4" [ [ 0; 3 ]; [ 1; 2; 4 ] ] (sorted (partition 4));
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "w=5 one group" [ [ 0; 1; 2; 3; 4 ] ] (sorted (partition 5));
  (* The paper's output sequence: B1 B4 B2 B3 B5. *)
  check (Alcotest.list Alcotest.int) "bottom-up order" [ 0; 3; 1; 2; 4 ]
    (Affinity_hierarchy.order h)

let test_fig1_efficient_order_matches () =
  let t = fig1_trace () in
  let h = Affinity_hierarchy.build ~algo:Affinity_hierarchy.Efficient ~ws:[ 1; 2; 3; 4; 5 ] t in
  check (Alcotest.list Alcotest.int) "efficient order" [ 0; 3; 1; 2; 4 ]
    (Affinity_hierarchy.order h)

let hierarchy_partitions_nest =
  QCheck.Test.make ~name:"hierarchy partitions nest as w grows" ~count:80
    QCheck.(list_of_size Gen.(int_range 2 40) (int_bound 6))
    (fun xs ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let ws = [ 2; 3; 4; 6 ] in
      let h = Affinity_hierarchy.build ~ws t in
      let rec pairs_of = function
        | [] -> []
        | w1 :: (w2 :: _ as rest) -> (w1, w2) :: pairs_of rest
        | [ _ ] -> []
      in
      List.for_all
        (fun (w1, w2) ->
          let p1 = Affinity_hierarchy.partition_at h ~w:w1 in
          let p2 = Affinity_hierarchy.partition_at h ~w:w2 in
          (* Every w1 group is contained in some w2 group. *)
          List.for_all
            (fun g1 ->
              List.exists (fun g2 -> List.for_all (fun x -> List.mem x g2) g1) p2)
            p1)
        (pairs_of ws))

let order_is_permutation_of_occurring =
  QCheck.Test.make ~name:"hierarchy order covers occurring symbols once" ~count:80
    QCheck.(list_of_size Gen.(int_range 2 40) (int_bound 6))
    (fun xs ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let h = Affinity_hierarchy.build ~ws:[ 2; 4 ] t in
      let order = List.sort compare (Affinity_hierarchy.order h) in
      let occurring =
        Trace.occurrences t |> Array.to_list
        |> List.mapi (fun i c -> (i, c))
        |> List.filter_map (fun (i, c) -> if c > 0 then Some i else None)
      in
      order = occurring)

let test_bad_ws () =
  let t = fig1_trace () in
  Alcotest.check_raises "descending ws"
    (Invalid_argument "Affinity_hierarchy: ws must be positive and strictly ascending")
    (fun () -> ignore (Affinity_hierarchy.build ~ws:[ 3; 2 ] t));
  Alcotest.check_raises "empty ws"
    (Invalid_argument "Affinity_hierarchy: ws must be positive and strictly ascending")
    (fun () -> ignore (Affinity_hierarchy.build ~ws:[] t))

let test_members_and_pp () =
  let t = fig1_trace () in
  let h = Affinity_hierarchy.build ~algo:Affinity_hierarchy.Exact ~ws:[ 2; 3; 4; 5 ] t in
  let all = List.concat_map Affinity_hierarchy.members h.Affinity_hierarchy.roots in
  check Alcotest.int "members count" 5 (List.length all);
  let s = Format.asprintf "%a" Affinity_hierarchy.pp h in
  check Alcotest.bool "pp nonempty" true (String.length s > 0)

let () =
  Alcotest.run "affinity"
    [
      ( "definitions",
        [
          Alcotest.test_case "window footprint" `Quick test_window_footprint;
          Alcotest.test_case "fig1 pairs (naive)" `Quick test_fig1_pairs_naive;
          Alcotest.test_case "requires trimmed" `Quick test_requires_trimmed;
        ] );
      ( "efficient-vs-exact",
        [
          QCheck_alcotest.to_alcotest efficient_is_sound;
          QCheck_alcotest.to_alcotest partition_groups_are_affine;
          QCheck_alcotest.to_alcotest partition_covers_all_symbols;
        ] );
      ( "hierarchy",
        [
          Alcotest.test_case "figure 1 exact" `Quick test_fig1_hierarchy_exact;
          Alcotest.test_case "figure 1 efficient order" `Quick test_fig1_efficient_order_matches;
          QCheck_alcotest.to_alcotest hierarchy_partitions_nest;
          QCheck_alcotest.to_alcotest order_is_permutation_of_occurring;
          Alcotest.test_case "bad ws" `Quick test_bad_ws;
          Alcotest.test_case "members/pp" `Quick test_members_and_pp;
        ] );
    ]
