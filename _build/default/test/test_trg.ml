open Colayout
open Colayout_trace

let check = Alcotest.check

let test_build_simple () =
  (* a b a : the two a's are interleaved by one b -> edge (a,b) = 1. *)
  let t = Trace.of_list ~num_symbols:3 [ 0; 1; 0 ] in
  let g = Trg.build t in
  check Alcotest.int "edge weight" 1 (Trg.weight g 0 1);
  check Alcotest.int "symmetric" 1 (Trg.weight g 1 0);
  check Alcotest.int "no self edge" 0 (Trg.weight g 0 0);
  check Alcotest.int "absent edge" 0 (Trg.weight g 0 2)

let test_build_counts_each_reuse () =
  (* a b a b a: a reused twice across b (2), b reused once across a (1):
     total edge weight 3. *)
  let t = Trace.of_list ~num_symbols:2 [ 0; 1; 0; 1; 0 ] in
  let g = Trg.build t in
  check Alcotest.int "accumulated weight" 3 (Trg.weight g 0 1)

let test_build_window_limits () =
  (* a b c d a: with an unbounded window, a's reuse crosses b, c, d. With
     window 3 the reuse distance (4 distinct incl. a) exceeds it: no edges
     from a. *)
  let t = Trace.of_list ~num_symbols:5 [ 0; 1; 2; 3; 0 ] in
  let unbounded = Trg.build t in
  check Alcotest.int "unbounded a-b" 1 (Trg.weight unbounded 0 1);
  check Alcotest.int "unbounded a-d" 1 (Trg.weight unbounded 0 3);
  let windowed = Trg.build ~window:3 t in
  check Alcotest.int "windowed drops far reuse" 0 (Trg.weight windowed 0 1);
  check Alcotest.int "windowed drops a-d" 0 (Trg.weight windowed 0 3)

let test_build_requires_trimmed () =
  let t = Trace.of_list ~num_symbols:2 [ 0; 0 ] in
  Alcotest.check_raises "trimmed" (Invalid_argument "Trg.build: trace must be trimmed")
    (fun () -> ignore (Trg.build t))

let test_edges_sorted () =
  let g = Trg.of_edges ~num_nodes:4 [ (0, 1, 5); (2, 3, 9); (0, 2, 5) ] in
  check
    (Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int))
    "sorted by weight desc then ids"
    [ (2, 3, 9); (0, 1, 5); (0, 2, 5) ]
    (Trg.edges g);
  check Alcotest.int "degree" 2 (Trg.degree g 0)

let test_of_edges_validation () =
  Alcotest.check_raises "self loop" (Invalid_argument "Trg.of_edges: self loop") (fun () ->
      ignore (Trg.of_edges ~num_nodes:2 [ (0, 0, 1) ]));
  Alcotest.check_raises "non-positive" (Invalid_argument "Trg.of_edges: non-positive weight")
    (fun () -> ignore (Trg.of_edges ~num_nodes:2 [ (0, 1, 0) ]));
  Alcotest.check_raises "out of range" (Invalid_argument "Trg.of_edges: node out of range")
    (fun () -> ignore (Trg.of_edges ~num_nodes:2 [ (0, 5, 1) ]))

let test_recommended_window () =
  let params = Colayout_cache.Params.default_l1i in
  (* 2 x 32KB / 64B blocks = 1024. *)
  check Alcotest.int "2C window in 64B blocks" 1024
    (Trg.recommended_window ~params ~block_bytes:64 ~cache_multiplier:2.0);
  check Alcotest.int "256B blocks" 256
    (Trg.recommended_window ~params ~block_bytes:256 ~cache_multiplier:2.0)

(* ---------------------------------------------------- Reduction (Fig 2) *)

(* Weights engineered to walk exactly the paper's narrated reduction:
   A-B first (A->slot1, B->slot2), then E-F (E->slot3 empty, F joins A's
   slot because 10 < 15, and the cross-slot F-B edge is dropped), then C
   joins E's slot as its least conflict. Output: A B E F C. *)
let fig2_trg () =
  (* A=0 B=1 E=2 F=3 C=4 *)
  Trg.of_edges ~num_nodes:5
    [ (0, 1, 40); (2, 3, 30); (3, 0, 10); (3, 1, 15); (4, 0, 25); (4, 1, 22); (4, 2, 20) ]

let test_fig2_reduction () =
  let r = Trg_reduce.reduce (fig2_trg ()) ~slots:3 in
  check (Alcotest.list Alcotest.int) "paper sequence A B E F C" [ 0; 1; 2; 3; 4 ] r.Trg_reduce.order;
  check (Alcotest.list Alcotest.int) "slot1 = A F" [ 0; 3 ] r.Trg_reduce.slot_lists.(0);
  check (Alcotest.list Alcotest.int) "slot2 = B" [ 1 ] r.Trg_reduce.slot_lists.(1);
  check (Alcotest.list Alcotest.int) "slot3 = E C" [ 2; 4 ] r.Trg_reduce.slot_lists.(2)

let test_reduce_isolated_nodes_not_placed () =
  let g = Trg.of_edges ~num_nodes:4 [ (0, 1, 3) ] in
  let r = Trg_reduce.reduce g ~slots:2 in
  check (Alcotest.list Alcotest.int) "only connected nodes placed" [ 0; 1 ] (List.sort compare r.Trg_reduce.order)

let test_reduce_single_slot () =
  let g = Trg.of_edges ~num_nodes:3 [ (0, 1, 5); (1, 2, 3) ] in
  let r = Trg_reduce.reduce g ~slots:1 in
  check Alcotest.int "all in one list" 3 (List.length r.Trg_reduce.slot_lists.(0));
  check Alcotest.int "order covers all" 3 (List.length r.Trg_reduce.order)

let reduce_output_is_duplicate_free =
  QCheck.Test.make ~name:"reduction places each node at most once" ~count:100
    QCheck.(pair (int_range 1 6) (list (triple (int_bound 7) (int_bound 7) (int_range 1 50))))
    (fun (slots, raw) ->
      let edges =
        List.filter_map
          (fun (x, y, w) -> if x = y then None else Some (min x y, max x y, w))
          raw
        (* keep one weight per pair *)
        |> List.sort_uniq (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d))
      in
      let g = Trg.of_edges ~num_nodes:8 edges in
      let r = Trg_reduce.reduce g ~slots in
      let sorted = List.sort compare r.Trg_reduce.order in
      List.length (List.sort_uniq compare sorted) = List.length sorted)

let reduce_deterministic =
  QCheck.Test.make ~name:"reduction is deterministic" ~count:50
    QCheck.(list (triple (int_bound 6) (int_bound 6) (int_range 1 20)))
    (fun raw ->
      let edges =
        List.filter_map (fun (x, y, w) -> if x = y then None else Some (min x y, max x y, w)) raw
        |> List.sort_uniq (fun (a, b, _) (c, d, _) -> compare (a, b) (c, d))
      in
      let g = Trg.of_edges ~num_nodes:7 edges in
      let r1 = Trg_reduce.reduce g ~slots:3 in
      let r2 = Trg_reduce.reduce g ~slots:3 in
      r1.Trg_reduce.order = r2.Trg_reduce.order)

let test_slots_for () =
  let params = Colayout_cache.Params.default_l1i in
  (* C=2x32KB, A*B=256: 256 set groups; 256B blocks occupy 1 -> 256 slots. *)
  check Alcotest.int "function slots" 256
    (Trg_reduce.slots_for ~params ~block_bytes:256 ~cache_multiplier:2.0);
  (* 64B blocks round up to one 256B group as well. *)
  check Alcotest.int "bb slots" 256
    (Trg_reduce.slots_for ~params ~block_bytes:64 ~cache_multiplier:2.0);
  check Alcotest.int "big blocks" 128
    (Trg_reduce.slots_for ~params ~block_bytes:512 ~cache_multiplier:2.0);
  Alcotest.check_raises "bad slots" (Invalid_argument "Trg_reduce.reduce: slots must be >= 1")
    (fun () -> ignore (Trg_reduce.reduce (fig2_trg ()) ~slots:0))

let () =
  Alcotest.run "trg"
    [
      ( "construction",
        [
          Alcotest.test_case "simple" `Quick test_build_simple;
          Alcotest.test_case "accumulates" `Quick test_build_counts_each_reuse;
          Alcotest.test_case "window" `Quick test_build_window_limits;
          Alcotest.test_case "trimmed required" `Quick test_build_requires_trimmed;
          Alcotest.test_case "edges sorted" `Quick test_edges_sorted;
          Alcotest.test_case "of_edges validation" `Quick test_of_edges_validation;
          Alcotest.test_case "recommended window" `Quick test_recommended_window;
        ] );
      ( "reduction",
        [
          Alcotest.test_case "figure 2" `Quick test_fig2_reduction;
          Alcotest.test_case "isolated nodes" `Quick test_reduce_isolated_nodes_not_placed;
          Alcotest.test_case "single slot" `Quick test_reduce_single_slot;
          QCheck_alcotest.to_alcotest reduce_output_is_duplicate_free;
          QCheck_alcotest.to_alcotest reduce_deterministic;
          Alcotest.test_case "slots_for" `Quick test_slots_for;
        ] );
    ]
