(* Tests for the extension modules: padded TPCM placement (Trg_place) and
   exhaustive layout search (Optimal). *)

open Colayout
open Colayout_ir
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

let check = Alcotest.check

let params = C.Params.default_l1i

(* ------------------------------------------------------------ Trg_place *)

let test_place_separates_conflicting_nodes () =
  (* 8-set direct-mapped cache, three 4-line nodes. A and C are placed first
     (heaviest edge) and naturally occupy disjoint sets; B conflicts with A
     (weight 50), so its natural position (overlapping A) must be skipped in
     favour of C's sets (no B-C edge) — which costs padding. *)
  let trg = Trg.of_edges ~num_nodes:3 [ (0, 2, 100); (0, 1, 50) ] in
  let p = C.Params.make ~size_bytes:512 ~assoc:1 ~line_bytes:64 in
  let placement = Trg_place.place trg ~sizes:[| 256; 256; 256 |] ~params:p in
  let set_of v = placement.Trg_place.base_addr.(v) / 64 mod 8 in
  let overlap a b =
    let a = set_of a and b = set_of b in
    let inter x1 x2 = max 0 (min (x1 + 4) (x2 + 4) - max x1 x2) in
    inter a b + inter a (b + 8) + inter (a + 8) b
  in
  check Alcotest.int "A and C disjoint" 0 (overlap 0 2);
  check Alcotest.int "A and B disjoint" 0 (overlap 0 1);
  check Alcotest.bool "padding inserted" true (placement.Trg_place.padding_bytes > 0)

let test_place_no_padding_without_conflicts () =
  let trg = Trg.of_edges ~num_nodes:3 [] in
  let p = C.Params.make ~size_bytes:1024 ~assoc:1 ~line_bytes:64 in
  let placement = Trg_place.place trg ~sizes:[| 100; 100; 100 |] ~params:p in
  check Alcotest.int "no padding" 0 placement.Trg_place.padding_bytes;
  check Alcotest.int "packed end" 300 placement.Trg_place.total_bytes;
  (* Isolated nodes keep id order. *)
  check Alcotest.bool "ordered" true
    (placement.Trg_place.base_addr.(0) < placement.Trg_place.base_addr.(1)
    && placement.Trg_place.base_addr.(1) < placement.Trg_place.base_addr.(2))

let test_place_size_mismatch () =
  let trg = Trg.of_edges ~num_nodes:2 [ (0, 1, 5) ] in
  Alcotest.check_raises "sizes mismatch" (Invalid_argument "Trg_place.place: sizes length mismatch")
    (fun () -> ignore (Trg_place.place trg ~sizes:[| 10 |] ~params))

let small_workload =
  {
    W.Gen.default_profile with
    pname = "ext-test";
    seed = 55;
    phases = 3;
    funcs_per_phase = 5;
    shared_funcs = 1;
    cold_funcs = 3;
    iters_per_phase = 40;
  }

let test_layout_for_is_well_formed () =
  let program = W.Gen.build small_workload in
  let analysis = Optimizer.analyze program (E.Interp.test_input ~max_blocks:40_000 ()) in
  let l = Trg_place.layout_for program analysis in
  check Alcotest.int "covers all blocks" (Program.num_blocks program)
    (Array.length l.Layout.order);
  (* Block address ranges must not overlap. *)
  let ranges =
    Array.to_list (Array.mapi (fun bid a -> (a, a + l.Layout.bytes.(bid))) l.Layout.addr)
    |> List.sort compare
  in
  let rec disjoint = function
    | (_, e1) :: ((s2, _) :: _ as rest) ->
      if e1 > s2 then Alcotest.failf "overlap at %d > %d" e1 s2;
      disjoint rest
    | _ -> ()
  in
  disjoint ranges;
  (* Functions stay internally contiguous. *)
  Array.iter
    (fun (f : Program.func) ->
      Array.iteri
        (fun i bid ->
          if i > 0 then begin
            let prev = f.blocks.(i - 1) in
            check Alcotest.int
              (Printf.sprintf "f%d block %d adjacent" f.fid i)
              (l.Layout.addr.(prev) + l.Layout.bytes.(prev))
              l.Layout.addr.(bid)
          end)
        f.blocks)
    (Program.funcs program);
  (* The layout must actually run through the cache simulator. *)
  let tr = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:50_000 ()) in
  let stats = Pipeline.miss_ratio_solo ~params ~layout:l tr in
  check Alcotest.bool "simulates" true (C.Cache_stats.accesses stats > 0)

(* -------------------------------------------------------------- Optimal *)

let tiny_program () =
  (* 4 functions (incl. main): 24 permutations. *)
  W.Gen.build
    {
      W.Gen.default_profile with
      pname = "tiny-optimal";
      seed = 8;
      phases = 1;
      funcs_per_phase = 2;
      shared_funcs = 0;
      cold_funcs = 1;
      arms = 3;
      arm_blocks = 2;
      arm_work = 30;
      iters_per_phase = 50;
    }

let test_optimal_search () =
  let program = tiny_program () in
  let nf = Program.num_funcs program in
  check Alcotest.int "four functions" 4 nf;
  let trace =
    (E.Interp.run program (E.Interp.ref_input ~max_blocks:20_000 ())).E.Interp.bb_trace
  in
  let p = C.Params.make ~size_bytes:512 ~assoc:2 ~line_bytes:64 in
  let r = Optimal.search ~params:p program trace in
  check Alcotest.int "evaluated 4!" 24 r.Optimal.evaluated;
  check Alcotest.bool "best <= worst" true (r.Optimal.best_miss_ratio <= r.Optimal.worst_miss_ratio);
  (* The reported best order must reproduce the reported best ratio, and no
     heuristic may beat the exhaustive optimum. *)
  let replay = Optimal.miss_ratio_of_function_order ~params:p program trace r.Optimal.best_order in
  check (Alcotest.float 1e-12) "best order replays" r.Optimal.best_miss_ratio replay;
  let heuristic =
    Optimal.miss_ratio_of_function_order ~params:p program trace
      (Array.init nf Fun.id)
  in
  check Alcotest.bool "original not better than optimal" true
    (heuristic >= r.Optimal.best_miss_ratio -. 1e-12)

let test_optimal_cap () =
  let program = tiny_program () in
  let trace =
    (E.Interp.run program (E.Interp.ref_input ~max_blocks:10_000 ())).E.Interp.bb_trace
  in
  let p = C.Params.make ~size_bytes:512 ~assoc:2 ~line_bytes:64 in
  let r = Optimal.search ~max_layouts:5 ~params:p program trace in
  check Alcotest.int "capped" 5 r.Optimal.evaluated;
  Alcotest.check_raises "bad cap" (Invalid_argument "Optimal.search: max_layouts must be positive")
    (fun () -> ignore (Optimal.search ~max_layouts:0 ~params:p program trace))

let test_optimal_refuses_large_uncapped () =
  let program = W.Gen.build small_workload in
  let trace = Colayout_trace.Trace.create ~num_symbols:(Program.num_blocks program) () in
  (match Optimal.search ~params program trace with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected refusal on large factorial")

let () =
  Alcotest.run "extensions"
    [
      ( "trg_place",
        [
          Alcotest.test_case "separates conflicts" `Quick test_place_separates_conflicting_nodes;
          Alcotest.test_case "no gratuitous padding" `Quick test_place_no_padding_without_conflicts;
          Alcotest.test_case "size mismatch" `Quick test_place_size_mismatch;
          Alcotest.test_case "well-formed layout" `Slow test_layout_for_is_well_formed;
        ] );
      ( "optimal",
        [
          Alcotest.test_case "search" `Slow test_optimal_search;
          Alcotest.test_case "cap" `Quick test_optimal_cap;
          Alcotest.test_case "refuses huge" `Quick test_optimal_refuses_large_uncapped;
        ] );
    ]
