(* End-to-end flows across libraries: instrument -> analyze -> transform ->
   simulate, plus the experiment registry. Uses small fuels so the whole
   file stays fast. *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module H = Colayout_harness

let check = Alcotest.check

let params = C.Params.default_l1i

let workload =
  {
    W.Gen.default_profile with
    pname = "integration";
    seed = 31;
    phases = 4;
    funcs_per_phase = 7;
    shared_funcs = 2;
    iters_per_phase = 30;
    cold_funcs = 8;
  }

let test_pipeline_evaluate_kinds () =
  let p = W.Gen.build workload in
  let results =
    Pipeline.evaluate_kinds p
      ~test_input:(E.Interp.test_input ~max_blocks:60_000 ())
      ~ref_input:(E.Interp.ref_input ~max_blocks:120_000 ())
  in
  check Alcotest.int "five results" 5 (List.length results);
  let find kind = List.find (fun r -> r.Pipeline.kind = kind) results in
  let orig = find Optimizer.Original in
  check Alcotest.bool "accesses counted" true (orig.Pipeline.accesses > 0);
  check Alcotest.bool "misses <= accesses" true (orig.Pipeline.misses <= orig.Pipeline.accesses);
  List.iter
    (fun r ->
      check Alcotest.bool
        (Optimizer.kind_name r.Pipeline.kind ^ " ratio in range")
        true
        (r.Pipeline.miss_ratio >= 0.0 && r.Pipeline.miss_ratio <= 1.0))
    results;
  (* The affinity optimizers must not lose to original on this workload. *)
  check Alcotest.bool "bb affinity wins" true
    ((find Optimizer.Bb_affinity).Pipeline.miss_ratio < orig.Pipeline.miss_ratio)

let test_trace_is_layout_independent () =
  let p = W.Gen.build workload in
  let input = E.Interp.ref_input ~max_blocks:50_000 () in
  let t1 = Pipeline.reference_trace p input in
  let t2 = Pipeline.reference_trace p input in
  check Alcotest.bool "same trace across runs" true (Colayout_trace.Trace.equal t1 t2)

let test_corun_increases_misses () =
  let p = W.Gen.build workload in
  let q = W.Gen.build { workload with pname = "peer"; seed = 32 } in
  let tp = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let tq = Pipeline.reference_trace q (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let lp = Layout.original p and lq = Layout.original q in
  let solo = C.Cache_stats.miss_ratio (Pipeline.miss_ratio_solo ~params ~layout:lp tp) in
  let co = Pipeline.miss_ratio_corun ~params ~self:(lp, tp) ~peer:(lq, tq) () in
  check Alcotest.bool "corun >= solo" true (C.Cache_stats.thread_miss_ratio co 0 >= solo)

let test_footprint_model_agrees_with_sim_direction () =
  (* The Eq-1/Eq-2 model and the trace-driven simulator must agree on which
     of two layouts has the smaller footprint pressure. *)
  let p = W.Gen.build workload in
  let a = Optimizer.analyze p (E.Interp.test_input ~max_blocks:60_000 ()) in
  let tr = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let curve kind =
    Pipeline.footprint_curve ~params ~layout:(Optimizer.layout_for kind p a) tr
  in
  let capacity = C.Params.lines_total params in
  let pred_orig = Miss_prob.solo_miss_ratio (curve Optimizer.Original) ~capacity in
  let pred_bb = Miss_prob.solo_miss_ratio (curve Optimizer.Bb_affinity) ~capacity in
  check Alcotest.bool "model predicts bb-affinity packs tighter" true (pred_bb <= pred_orig)

let test_defensiveness_politeness_of_optimized_layout () =
  let p = W.Gen.build workload in
  let a = Optimizer.analyze p (E.Interp.test_input ~max_blocks:60_000 ()) in
  let tr = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let peer = W.Gen.build { workload with pname = "peer2"; seed = 33 } in
  let peer_tr = Pipeline.reference_trace peer (E.Interp.ref_input ~max_blocks:100_000 ()) in
  let peer_curve = Pipeline.footprint_curve ~params ~layout:(Layout.original peer) peer_tr in
  let capacity = C.Params.lines_total params in
  let exposure kind =
    let self = Pipeline.footprint_curve ~params ~layout:(Optimizer.layout_for kind p a) tr in
    Miss_prob.exposure ~self ~peer:peer_curve ~capacity
  in
  let orig = exposure Optimizer.Original in
  let opt = exposure Optimizer.Bb_affinity in
  (* The optimized layout must be at least as defensive and at least as
     polite as the original (it only shrinks the footprint). *)
  check Alcotest.bool "defensiveness improves" true
    (opt.Miss_prob.defensiveness <= orig.Miss_prob.defensiveness +. 1e-9);
  check Alcotest.bool "politeness improves" true
    (opt.Miss_prob.politeness <= orig.Miss_prob.politeness +. 1e-9)

let test_registry () =
  check Alcotest.int "thirteen experiments" 13 (List.length H.Registry.all);
  check Alcotest.bool "find fig6" true (H.Registry.find "fig6" <> None);
  check Alcotest.bool "find unknown" true (H.Registry.find "zzz" = None);
  List.iter
    (fun (e : H.Registry.experiment) ->
      check Alcotest.bool (e.id ^ " id nonempty") true (String.length e.id > 0))
    H.Registry.all

let test_registry_rejects_unknown () =
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  (match H.Registry.run_by_ids ctx [ "not-an-experiment" ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let test_ctx_memoization () =
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let p1 = H.Ctx.program ctx "429.mcf" in
  let p2 = H.Ctx.program ctx "429.mcf" in
  check Alcotest.bool "program memoized" true (p1 == p2);
  check Alcotest.int "fast ref fuel" 200_000 (H.Ctx.ref_fuel ctx);
  check Alcotest.bool "rate" true (H.Ctx.fetch_rate ctx "429.mcf" > 0.0)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "evaluate kinds" `Slow test_pipeline_evaluate_kinds;
          Alcotest.test_case "layout-independent trace" `Quick test_trace_is_layout_independent;
          Alcotest.test_case "corun contention" `Slow test_corun_increases_misses;
        ] );
      ( "defensiveness-politeness",
        [
          Alcotest.test_case "model vs sim direction" `Slow test_footprint_model_agrees_with_sim_direction;
          Alcotest.test_case "exposure improves" `Slow test_defensiveness_politeness_of_optimized_layout;
        ] );
      ( "harness",
        [
          Alcotest.test_case "registry" `Quick test_registry;
          Alcotest.test_case "unknown id" `Quick test_registry_rejects_unknown;
          Alcotest.test_case "ctx memo" `Quick test_ctx_memoization;
        ] );
    ]
