(* Calibration regression: the 8 deep-study analogs were tuned so their
   solo L1I miss ratios land on Table I of the paper. This pins those
   numbers (with slack) so workload or simulator changes cannot silently
   decalibrate the reproduction. Uses the harness's Full-scale fuel — the
   setting every reported number uses. *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

let check = Alcotest.check

(* (program, paper solo %, tolerance pp). Tolerances reflect how closely
   each analog was calibrated; mcf/omnetpp sit near zero by design. *)
let targets =
  [
    ("400.perlbench", 1.99, 0.60);
    ("403.gcc", 1.56, 0.40);
    ("429.mcf", 0.00, 0.15);
    ("445.gobmk", 2.73, 0.40);
    ("453.povray", 2.10, 0.50);
    ("458.sjeng", 0.60, 0.30);
    ("471.omnetpp", 0.37, 0.35);
    ("483.xalancbmk", 1.53, 0.50);
  ]

let full_fuel = 600_000

let solo name =
  let p = W.Spec.build name in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:full_fuel ()) in
  100.0
  *. C.Cache_stats.miss_ratio
       (Pipeline.miss_ratio_solo ~params:C.Params.default_l1i ~layout:(Layout.original p)
          trace)

let test_calibration () =
  List.iter
    (fun (name, paper, tol) ->
      let measured = solo name in
      if abs_float (measured -. paper) > tol then
        Alcotest.failf "%s: solo %.2f%% drifted from paper %.2f%% (tolerance %.2fpp)" name
          measured paper tol)
    targets

let test_gamess_probe_shape () =
  (* The gamess analog must keep its defining shape: tiny solo ratio, slow
     fetch, big residency — that is what makes it the worse probe. *)
  let m = solo "416.gamess" in
  check Alcotest.bool "gamess solo below 1%" true (m < 1.0);
  check Alcotest.bool "gamess is the slow-fetch probe" true
    ((W.Spec.profile "416.gamess").W.Gen.fetch_rate < (W.Spec.profile "403.gcc").W.Gen.fetch_rate)

let test_probe_ordering () =
  (* gamess must interfere more than gcc on a mid-size program. *)
  let name = "445.gobmk" in
  let p = W.Spec.build name in
  let trace = Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:full_fuel ()) in
  let co probe =
    let q = W.Spec.build probe in
    let qt = Pipeline.reference_trace q (E.Interp.ref_input ~max_blocks:full_fuel ()) in
    let s =
      Pipeline.miss_ratio_corun
        ~rates:((W.Spec.profile name).W.Gen.fetch_rate, (W.Spec.profile probe).W.Gen.fetch_rate)
        ~params:C.Params.default_l1i
        ~self:(Layout.original p, trace)
        ~peer:(Layout.original q, qt)
        ()
    in
    C.Cache_stats.thread_miss_ratio s 0
  in
  let gcc = co "403.gcc" and gamess = co "416.gamess" in
  check Alcotest.bool "corun exceeds solo" true (100.0 *. gcc > solo name);
  check Alcotest.bool "gamess worse than gcc" true (gamess > gcc)

let () =
  Alcotest.run "calibration"
    [
      ( "table1",
        [
          Alcotest.test_case "solo miss ratios" `Slow test_calibration;
          Alcotest.test_case "gamess shape" `Slow test_gamess_probe_shape;
          Alcotest.test_case "probe ordering" `Slow test_probe_ordering;
        ] );
    ]
