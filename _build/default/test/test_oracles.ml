(* Cross-implementation oracle properties: independent implementations of
   the same quantity must agree. These catch subtle drift between the fast
   production paths and the definitions. *)

open Colayout
open Colayout_trace
module C = Colayout_cache
module U = Colayout_util

let check = Alcotest.check

(* TRG edge weights, from the definition: for each pair of successive
   occurrences of one endpoint, count 1 if the other endpoint occurs in
   between. *)
let trg_weight_naive xs x y =
  let count_for a b =
    (* occurrences of a *)
    let positions = List.filteri (fun _ _ -> true) xs in
    ignore positions;
    let arr = Array.of_list xs in
    let n = Array.length arr in
    let total = ref 0 in
    let last = ref (-1) in
    for i = 0 to n - 1 do
      if arr.(i) = a then begin
        if !last >= 0 then begin
          let seen = ref false in
          for j = !last + 1 to i - 1 do
            if arr.(j) = b then seen := true
          done;
          if !seen then incr total
        end;
        last := i
      end
    done;
    !total
  in
  count_for x y + count_for y x

let trg_matches_definition =
  QCheck.Test.make ~name:"TRG stack construction matches Definition 6" ~count:150
    QCheck.(list_of_size Gen.(int_range 2 40) (int_bound 5))
    (fun xs ->
      let t = Trim.trim (Trace.of_list ~num_symbols:6 xs) in
      QCheck.assume (Trace.length t >= 2);
      let trimmed = Trace.to_list t in
      let g = Trg.build t in
      List.for_all
        (fun x ->
          List.for_all
            (fun y -> x >= y || Trg.weight g x y = trg_weight_naive trimmed x y)
            [ 0; 1; 2; 3; 4; 5 ])
        [ 0; 1; 2; 3; 4; 5 ])

(* The hierarchy's L1I leg must agree exactly with the standalone I-cache
   simulator: same geometry, same accesses, same hits. *)
let hierarchy_l1i_matches_icache =
  QCheck.Test.make ~name:"Hierarchy L1I leg equals Icache.solo" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 200) (int_bound 40))
    (fun lines ->
      let params = C.Params.default_l1i in
      let h = C.Hierarchy.create ~l1i:params () in
      List.iter (fun l -> C.Hierarchy.access_instr h ~thread:0 ~line:l) lines;
      let sa = C.Set_assoc.create params in
      let stats = C.Cache_stats.create () in
      List.iter
        (fun l -> C.Cache_stats.record stats ~thread:0 ~hit:(C.Set_assoc.access_line sa l))
        lines;
      C.Cache_stats.misses (C.Hierarchy.l1i_stats h) = C.Cache_stats.misses stats
      && C.Cache_stats.accesses (C.Hierarchy.l1i_stats h) = C.Cache_stats.accesses stats)

(* Definition 2's window footprint, at reuse points, is the stack distance
   plus one (the reused block itself). *)
let window_footprint_vs_stack_distance =
  QCheck.Test.make ~name:"fp<prev,cur> = stack distance + 1 at every reuse" ~count:100
    QCheck.(list_of_size Gen.(int_range 2 60) (int_bound 7))
    (fun xs ->
      let t = Trace.of_list ~num_symbols:8 xs in
      let naive = Stack_dist.distances_naive t in
      let arr = Array.of_list xs in
      let last = Hashtbl.create 8 in
      let ok = ref true in
      Array.iteri
        (fun i s ->
          (match (Hashtbl.find_opt last s, naive.(i)) with
          | Some prev, Some d ->
            if Affinity.window_footprint t prev i <> d + 1 then ok := false
          | None, None -> ()
          | _ -> ok := false);
          Hashtbl.replace last s i)
        arr;
      !ok)

(* Footprint theory vs Mattson measurement: a trace that cycles over m
   blocks has fp(w) = min(w?, ...) — rather than closed forms, check the
   HOTL solo window against the measured knee: the window where the
   footprint reaches c and the capacity where the miss ratio collapses
   describe the same working set for cyclic traces. *)
let test_fp_knee_consistency () =
  let m = 6 in
  let xs = List.concat (List.init 40 (fun _ -> List.init m Fun.id)) in
  let t = Trace.of_list ~num_symbols:m xs in
  let fp = Footprint.curve t in
  let mrc = Mrc.of_line_trace t in
  (* LRU thrashes below m and is perfect at m. *)
  check Alcotest.bool "thrash below" true (Mrc.miss_ratio mrc ~capacity_lines:(m - 1) > 0.5);
  check Alcotest.bool "fits at m" true (Mrc.miss_ratio mrc ~capacity_lines:m < 0.05);
  (* The footprint reaches m exactly in a window of m accesses. *)
  check Alcotest.int "fp window of full set" m (Footprint.inverse fp (float_of_int m))

(* Residual elimination composes with layout: the stripped program's code
   is strictly smaller, and the optimizers still work on it. *)
let test_residual_then_optimize () =
  let p =
    Colayout_workloads.Gen.build
      { Colayout_workloads.Gen.default_profile with pname = "ro"; seed = 61 }
  in
  let stripped, _, report = Residual.eliminate p in
  check Alcotest.bool "smaller" true
    (Colayout_ir.Program.total_code_bytes stripped < Colayout_ir.Program.total_code_bytes p);
  check Alcotest.bool "something removed" true (report.Residual.removed_blocks > 0);
  let analysis =
    Optimizer.analyze stripped (Colayout_exec.Interp.test_input ~max_blocks:30_000 ())
  in
  List.iter
    (fun kind ->
      let l = Optimizer.layout_for kind stripped analysis in
      check Alcotest.int
        (Optimizer.kind_name kind ^ " covers stripped blocks")
        (Colayout_ir.Program.num_blocks stripped)
        (Array.length l.Layout.order))
    Optimizer.all_kinds

(* The efficient affinity pass and the trimmed trace agree on occurrence
   bookkeeping: partitions at the smallest window are singletons. *)
let singleton_partition_at_w1 =
  QCheck.Test.make ~name:"w=1 partition is all singletons" ~count:80
    QCheck.(list_of_size Gen.(int_range 2 40) (int_bound 6))
    (fun xs ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      List.for_all (fun g -> List.length g = 1) (Affinity.partition t ~w:1))

let () =
  Alcotest.run "oracles"
    [
      ( "cross-implementation",
        [
          QCheck_alcotest.to_alcotest trg_matches_definition;
          QCheck_alcotest.to_alcotest hierarchy_l1i_matches_icache;
          QCheck_alcotest.to_alcotest window_footprint_vs_stack_distance;
          QCheck_alcotest.to_alcotest singleton_partition_at_w1;
          Alcotest.test_case "fp knee consistency" `Quick test_fp_knee_consistency;
          Alcotest.test_case "residual + optimize" `Quick test_residual_then_optimize;
        ] );
    ]
