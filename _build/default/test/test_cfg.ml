(* Tests for the control-flow analyses (dominators, loops, static
   frequencies) and the profile-free static layout built on them. *)

open Colayout_ir
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache

let check = Alcotest.check

(* A diamond followed by a loop:

       entry
       /   \
      a     b
       \   /
        join
         |
        loop <--+
         | \____|   (branch back)
        exit
*)
let diamond_loop () =
  let b = Builder.create ~name:"dl" () in
  let f = Builder.func b "main" in
  let entry = Builder.block b f "entry" in
  let a = Builder.block b f "a" in
  let bb = Builder.block b f "b" in
  let join = Builder.block b f "join" in
  let loop = Builder.block b f "loop" in
  let exit_ = Builder.block b f "exit" in
  let dead = Builder.block b f "dead" in
  Builder.set_body b entry []
    (Types.Branch { cond = Types.Rand 2; if_true = a; if_false = bb });
  Builder.set_body b a [ Types.Work 1 ] (Types.Jump join);
  Builder.set_body b bb [ Types.Work 1 ] (Types.Jump join);
  Builder.set_body b join [] (Types.Jump loop);
  Builder.set_body b loop [ Types.Work 1 ]
    (Types.Branch { cond = Types.Rand 2; if_true = loop; if_false = exit_ });
  Builder.set_body b exit_ [] Types.Halt;
  Builder.set_body b dead [ Types.Work 1 ] Types.Halt;
  (Builder.finish b, entry, a, bb, join, loop, exit_, dead)

let test_dominators () =
  let p, entry, a, bb, join, loop, exit_, dead = diamond_loop () in
  let cfg = Cfg.analyze p 0 in
  check Alcotest.int "entry" entry (Cfg.entry cfg);
  check (Alcotest.option Alcotest.int) "idom entry" None (Cfg.idom cfg entry);
  check (Alcotest.option Alcotest.int) "idom a" (Some entry) (Cfg.idom cfg a);
  check (Alcotest.option Alcotest.int) "idom b" (Some entry) (Cfg.idom cfg bb);
  (* join is dominated by entry, not by either diamond arm. *)
  check (Alcotest.option Alcotest.int) "idom join" (Some entry) (Cfg.idom cfg join);
  check (Alcotest.option Alcotest.int) "idom loop" (Some join) (Cfg.idom cfg loop);
  check (Alcotest.option Alcotest.int) "idom exit" (Some loop) (Cfg.idom cfg exit_);
  check Alcotest.bool "entry dominates all" true (Cfg.dominates cfg entry exit_);
  check Alcotest.bool "a does not dominate join" false (Cfg.dominates cfg a join);
  check Alcotest.bool "reflexive" true (Cfg.dominates cfg join join);
  check Alcotest.bool "dead unreachable" false (Cfg.reachable cfg dead);
  check (Alcotest.option Alcotest.int) "idom dead" None (Cfg.idom cfg dead);
  check Alcotest.bool "nothing dominates dead" false (Cfg.dominates cfg entry dead)

let test_loops_and_frequency () =
  let p, entry, a, _bb, join, loop, exit_, dead = diamond_loop () in
  let cfg = Cfg.analyze p 0 in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "one back edge" [ (loop, loop) ] (Cfg.back_edges cfg);
  check Alcotest.int "loop depth of loop" 1 (Cfg.loop_depth cfg loop);
  check Alcotest.int "loop depth of join" 0 (Cfg.loop_depth cfg join);
  check Alcotest.int "loop depth of dead" 0 (Cfg.loop_depth cfg dead);
  (* Frequencies: entry 1.0; arms 0.5; join 1.0; loop 10x its inflow. *)
  check (Alcotest.float 1e-9) "entry freq" 1.0 (Cfg.static_frequency cfg entry);
  check (Alcotest.float 1e-9) "arm freq" 0.5 (Cfg.static_frequency cfg a);
  check (Alcotest.float 1e-9) "join freq" 1.0 (Cfg.static_frequency cfg join);
  check Alcotest.bool "loop hotter than join" true
    (Cfg.static_frequency cfg loop > Cfg.static_frequency cfg join);
  check Alcotest.bool "exit cooler than loop" true
    (Cfg.static_frequency cfg exit_ < Cfg.static_frequency cfg loop);
  check (Alcotest.float 1e-9) "dead freq" 0.0 (Cfg.static_frequency cfg dead)

let test_rpo () =
  let p, entry, _, _, _, _, _, dead = diamond_loop () in
  let cfg = Cfg.analyze p 0 in
  let order = Cfg.rpo cfg in
  check Alcotest.int "entry first" entry (List.hd order);
  check Alcotest.bool "dead omitted" false (List.mem dead order);
  check Alcotest.int "six reachable blocks" 6 (List.length order)

let test_cfg_on_generated_workloads () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "cfgw"; seed = 51 } in
  Array.iter
    (fun (f : Program.func) ->
      let cfg = Cfg.analyze p f.fid in
      (* The entry dominates every reachable block. *)
      Array.iter
        (fun bid ->
          if Cfg.reachable cfg bid then begin
            if not (Cfg.dominates cfg f.entry bid) then
              Alcotest.failf "entry of f%d does not dominate b%d" f.fid bid;
            if Cfg.static_frequency cfg bid <= 0.0 then
              Alcotest.failf "reachable b%d has zero frequency" bid
          end)
        f.blocks)
    (Program.funcs p)

(* -------------------------------------------------------- Static_layout *)

let test_static_call_graph () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "scg"; seed = 52 } in
  let edges = Colayout.Static_layout.static_call_graph p in
  check Alcotest.bool "has edges" true (edges <> []);
  let main_fid = (Program.main p).fid in
  (* Every worker call comes from main in these workloads. *)
  List.iter
    (fun (caller, callee, w) ->
      check Alcotest.int "caller is main" main_fid caller;
      check Alcotest.bool "positive weight" true (w > 0);
      check Alcotest.bool "callee in range" true (callee >= 0 && callee < Program.num_funcs p))
    edges

let test_static_layout_structure () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "sl"; seed = 53 } in
  let l = Colayout.Static_layout.layout_for p in
  let sorted = Array.copy l.Colayout.Layout.order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init (Program.num_blocks p) Fun.id) sorted

let test_static_layout_beats_nothing_sanity () =
  (* The static layout is a heuristic; at minimum it must simulate and not
     be catastrophically worse than original on a phased workload. *)
  let p =
    W.Gen.build
      { W.Gen.default_profile with pname = "slq"; seed = 54; phases = 4; funcs_per_phase = 6 }
  in
  let trace = Colayout.Pipeline.reference_trace p (E.Interp.ref_input ~max_blocks:60_000 ()) in
  let params = C.Params.default_l1i in
  let miss layout =
    C.Cache_stats.miss_ratio (Colayout.Pipeline.miss_ratio_solo ~params ~layout trace)
  in
  let original = miss (Colayout.Layout.original p) in
  let static = miss (Colayout.Static_layout.layout_for p) in
  check Alcotest.bool "same order of magnitude" true (static < (4.0 *. original) +. 0.02)

let () =
  Alcotest.run "cfg"
    [
      ( "dominators",
        [
          Alcotest.test_case "diamond+loop" `Quick test_dominators;
          Alcotest.test_case "loops and frequency" `Quick test_loops_and_frequency;
          Alcotest.test_case "rpo" `Quick test_rpo;
          Alcotest.test_case "generated workloads" `Quick test_cfg_on_generated_workloads;
        ] );
      ( "static_layout",
        [
          Alcotest.test_case "call graph" `Quick test_static_call_graph;
          Alcotest.test_case "structure" `Quick test_static_layout_structure;
          Alcotest.test_case "quality sanity" `Quick test_static_layout_beats_nothing_sanity;
        ] );
    ]
