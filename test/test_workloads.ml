open Colayout_ir
module W = Colayout_workloads
module E = Colayout_exec

let check = Alcotest.check

let test_default_profile_builds () =
  let p = W.Gen.build W.Gen.default_profile in
  check Alcotest.bool "funcs" true (Program.num_funcs p > 0);
  check Alcotest.bool "blocks" true (Program.num_blocks p > 0)

let test_build_is_deterministic () =
  let p1 = W.Gen.build W.Gen.default_profile in
  let p2 = W.Gen.build W.Gen.default_profile in
  check Alcotest.int "same blocks" (Program.num_blocks p1) (Program.num_blocks p2);
  let fingerprint p =
    Array.map (fun (b : Program.block) -> (b.name, b.size_bytes, b.fn)) (Program.blocks p)
  in
  check Alcotest.bool "identical structure" true (fingerprint p1 = fingerprint p2);
  (* Same program but different seed differs in declaration order. *)
  let p3 = W.Gen.build { W.Gen.default_profile with seed = 999 } in
  check Alcotest.bool "seed changes layout" false (fingerprint p1 = fingerprint p3)

let test_profile_validation () =
  Alcotest.check_raises "zero phases" (Invalid_argument "Gen: phases must be positive")
    (fun () -> ignore (W.Gen.build { W.Gen.default_profile with phases = 0 }));
  Alcotest.check_raises "bad frac" (Invalid_argument "Gen: uncorrelated_frac must be in [0,1]")
    (fun () -> ignore (W.Gen.build { W.Gen.default_profile with uncorrelated_frac = 1.5 }));
  Alcotest.check_raises "bad dispatch"
    (Invalid_argument "Gen: dispatch table must be positive")
    (fun () ->
      ignore
        (W.Gen.build
           { W.Gen.default_profile with style = W.Gen.Dispatch { table = 0; zipf_s = 1.0 } }))

let test_phased_program_runs_to_fuel () =
  let p = W.Gen.build { W.Gen.default_profile with pname = "run-test"; seed = 5 } in
  let r = E.Interp.run p { seed = 1; params = [||]; max_blocks = 50_000 } in
  check Alcotest.int "uses all fuel" 50_000 r.E.Interp.block_execs;
  (* Function trace must show many distinct functions (phases call their
     members). *)
  check Alcotest.bool "many functions executed" true
    (Colayout_trace.Trace.distinct_count r.E.Interp.fn_trace > 10)

let test_dispatch_program_runs () =
  let p =
    W.Gen.build
      {
        W.Gen.default_profile with
        pname = "dispatch-test";
        seed = 6;
        style = W.Gen.Dispatch { table = 32; zipf_s = 1.0 };
      }
  in
  let r = E.Interp.run p { seed = 1; params = [||]; max_blocks = 50_000 } in
  check Alcotest.int "uses fuel" 50_000 r.E.Interp.block_execs;
  check Alcotest.bool "dispatch reaches many funcs" true
    (Colayout_trace.Trace.distinct_count r.E.Interp.fn_trace > 5)

let test_cold_code_never_executes () =
  let prof = { W.Gen.default_profile with pname = "cold-test"; seed = 7 } in
  let p = W.Gen.build prof in
  let r = E.Interp.run p { seed = 2; params = [||]; max_blocks = 200_000 } in
  let occ = Colayout_trace.Trace.occurrences r.E.Interp.bb_trace in
  Array.iter
    (fun (b : Program.block) ->
      let is_cold_block =
        (* cold arm blocks and cold functions carry ".cold" / "cold_" names *)
        let has_sub sub s =
          let n = String.length s and m = String.length sub in
          let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
          go 0
        in
        has_sub ".cold" b.name || has_sub "cold_" b.name
      in
      if is_cold_block && occ.(b.id) > 0 then
        Alcotest.failf "cold block %s executed %d times" b.name occ.(b.id))
    (Program.blocks p)

let test_hot_code_bytes_positive () =
  List.iter
    (fun name ->
      check Alcotest.bool (name ^ " hot bytes") true (W.Gen.hot_code_bytes (W.Spec.profile name) > 0))
    W.Spec.names

let test_spec_universe () =
  check Alcotest.int "29 programs" 29 (List.length W.Spec.names);
  check Alcotest.int "8 deep" 8 (List.length W.Spec.deep_eight);
  check Alcotest.int "2 probes" 2 (List.length W.Spec.probes);
  List.iter
    (fun n ->
      check Alcotest.bool (n ^ " in names") true (List.mem n W.Spec.names))
    (W.Spec.deep_eight @ W.Spec.probes);
  (match W.Spec.profile "429.mcf" with
  | p -> check Alcotest.string "profile name matches" "429.mcf" p.W.Gen.pname);
  Alcotest.check_raises "unknown program" Not_found (fun () -> ignore (W.Spec.profile "999.nope"))

let test_all_29_build_and_validate () =
  List.iter
    (fun name ->
      let p = W.Spec.build name in
      (* Spec.build is pure: a second call constructs a fresh program (no
         global memo) that is structurally identical. *)
      let q = W.Spec.build name in
      check Alcotest.bool (name ^ " build is pure (fresh value)") false (p == q);
      check Alcotest.int (name ^ " deterministic blocks") (Program.num_blocks p)
        (Program.num_blocks q);
      check Alcotest.int (name ^ " deterministic bytes") (Program.total_code_bytes p)
        (Program.total_code_bytes q);
      Validate.check p;
      check Alcotest.bool (name ^ " has code") true (Program.total_code_bytes p > 1000))
    W.Spec.names

let test_short_name () =
  check Alcotest.string "short" "perlbench" (W.Spec.short_name "400.perlbench");
  check Alcotest.string "no dot" "abc" (W.Spec.short_name "abc")

let test_fetch_rates_sane () =
  List.iter
    (fun name ->
      let r = (W.Spec.profile name).W.Gen.fetch_rate in
      if r <= 0.0 || r > 1.0 then Alcotest.failf "%s fetch rate %f out of (0,1]" name r)
    W.Spec.names

let () =
  Alcotest.run "workloads"
    [
      ( "gen",
        [
          Alcotest.test_case "default builds" `Quick test_default_profile_builds;
          Alcotest.test_case "deterministic" `Quick test_build_is_deterministic;
          Alcotest.test_case "validation" `Quick test_profile_validation;
          Alcotest.test_case "phased runs" `Quick test_phased_program_runs_to_fuel;
          Alcotest.test_case "dispatch runs" `Quick test_dispatch_program_runs;
          Alcotest.test_case "cold code stays cold" `Quick test_cold_code_never_executes;
          Alcotest.test_case "hot bytes" `Quick test_hot_code_bytes_positive;
        ] );
      ( "spec",
        [
          Alcotest.test_case "universe" `Quick test_spec_universe;
          Alcotest.test_case "all 29 build" `Slow test_all_29_build_and_validate;
          Alcotest.test_case "short names" `Quick test_short_name;
          Alcotest.test_case "fetch rates" `Quick test_fetch_rates_sane;
        ] );
    ]
