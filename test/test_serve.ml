(* Tests for the streaming ingest service core ([Ingest]): the sharded
   multi-walker online TRG/affinity accumulators must be bit-identical
   to the batch kernels merged per trace
   ([Ingest.batch_digests_parts]) at every walker count, shard count
   and jobs count, regardless of feed granularity (whole traces,
   odd-sized chunks, or files through the streaming reader). Each trace
   is an independent stream — the LRU stack and trim state reset at
   trace boundaries — so the merged profile is a pure function of the
   trace multiset and the round-robin walker partition cannot change
   it. Bounded-memory mode (caps + decay) is approximate by design but
   must be deterministic given the config (walker count included, pool
   schedule excluded), keep every walker-shard table under its cap at
   flush boundaries, and actually evict under pressure. The service
   driver's spool watcher must ingest files that land after the watch
   starts and exit cleanly on its deadline. *)

open Colayout
open Colayout_trace
module U = Colayout_util
module H = Colayout_harness

let check = Alcotest.check

let shard_counts = [ 1; 2; 4 ]

let jobs_counts = [ 1; 2; 4 ]

let walker_counts = [ 1; 2; 4 ]

(* Zipf-popularity user traces with deliberate consecutive repeats so the
   walker's inline trimming is exercised (the batch side trims each
   trace explicitly). *)
let user_traces ~seed ~users ~num_symbols ~len =
  let prng = U.Prng.create ~seed in
  List.init users (fun _ ->
      let t = Trace.create ~num_symbols () in
      for _ = 1 to len do
        let s = U.Prng.zipf prng ~n:num_symbols ~s:0.9 in
        Trace.push t s;
        if U.Prng.bool prng ~p:0.2 then Trace.push t s
      done;
      t)

let batch_of traces = Ingest.batch_digests_parts ~trg_window:12 ~affinity_w:6 traces

let ingest_all ?pool cfg traces =
  let ing = Ingest.create ?pool cfg in
  List.iter (fun t -> Ingest.ingest_trace ing t) traces;
  ing

(* Events surviving per-trace trimming: the first event plus every
   non-repeat. *)
let trimmed_len t =
  let kept = ref 0 and last = ref (-1) in
  Trace.iter
    (fun s ->
      if s <> !last then incr kept;
      last := s)
    t;
  !kept

(* ---------------------------------------- multi-walker online == batch *)

let test_walkers_equal_batch () =
  let num_symbols = 48 in
  List.iter
    (fun seed ->
      let traces = user_traces ~seed ~users:10 ~num_symbols ~len:300 in
      let batch = batch_of traces in
      List.iter
        (fun walkers ->
          List.iter
            (fun shards ->
              List.iter
                (fun jobs ->
                  U.Pool.with_pool ~jobs (fun pool ->
                      let cfg =
                        Ingest.config ~num_symbols ~walkers ~shards ~trg_window:12
                          ~affinity_w:6 ~flush_ops:512 ()
                      in
                      let ing = ingest_all ~pool cfg traces in
                      let online = Ingest.consensus_digests (Ingest.finalize ing) in
                      check
                        Alcotest.(pair string string)
                        (Printf.sprintf "digests (seed=%d walkers=%d shards=%d jobs=%d)"
                           seed walkers shards jobs)
                        batch online))
                jobs_counts)
            shard_counts)
        [ 1; 2 ])
    [ 1; 2; 42 ]

(* Property form: random trace sets, every walker x shard x jobs
   combination, checked against the per-trace batch merge via the
   shared digest renderings. *)
let prop_walker_partition =
  QCheck.Test.make ~count:10
    ~name:"ingest: walker-partitioned online == per-trace batch merge"
    QCheck.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, users) ->
      let num_symbols = 32 in
      let traces = user_traces ~seed ~users ~num_symbols ~len:120 in
      let batch = Ingest.batch_digests_parts ~trg_window:8 ~affinity_w:4 traces in
      List.for_all
        (fun walkers ->
          List.for_all
            (fun shards ->
              List.for_all
                (fun jobs ->
                  U.Pool.with_pool ~jobs (fun pool ->
                      let cfg =
                        Ingest.config ~num_symbols ~walkers ~shards ~trg_window:8
                          ~affinity_w:4 ~flush_ops:64 ()
                      in
                      let ing = ingest_all ~pool cfg traces in
                      Ingest.consensus_digests (Ingest.finalize ing) = batch))
                [ 1; 4 ])
            [ 1; 3 ])
        walker_counts)

(* Feeding granularity must not matter: whole traces, odd chunks, and
   trace files through the streaming reader all describe the same
   per-trace streams — at one walker and at several. *)
let test_chunked_and_file_feeds () =
  let num_symbols = 40 in
  let traces = user_traces ~seed:7 ~users:6 ~num_symbols ~len:250 in
  let cfg = Ingest.config ~num_symbols ~shards:2 ~trg_window:10 ~affinity_w:5 () in
  let whole = Ingest.consensus_digests (Ingest.finalize (ingest_all cfg traces)) in
  (* Odd-sized chunks, mid-trace boundaries. *)
  let chunked = Ingest.create cfg in
  List.iter
    (fun t ->
      let arr = U.Int_vec.to_array (Trace.events t) in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n do
        let len = min 7 (n - !pos) in
        Ingest.feed_chunk chunked (Array.sub arr !pos len) len;
        pos := !pos + len
      done;
      Ingest.end_trace chunked)
    traces;
  check
    Alcotest.(pair string string)
    "chunked == whole" whole
    (Ingest.consensus_digests (Ingest.finalize chunked));
  (* Through trace files and the chunked streaming reader, on the staged
     multi-walker path. *)
  let dir = Filename.temp_file "colayout_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let cfg2 =
        Ingest.config ~num_symbols ~walkers:2 ~shards:2 ~trg_window:10 ~affinity_w:5 ()
      in
      U.Pool.with_pool ~jobs:2 (fun pool ->
          let filed = Ingest.create ~pool cfg2 in
          List.iteri
            (fun i t ->
              let path = Filename.concat dir (Printf.sprintf "u%d.trace" i) in
              Trace_io.save ~path t;
              Ingest.feed_file filed ~path)
            traces;
          check
            Alcotest.(pair string string)
            "file-streamed at walkers=2 == whole" whole
            (Ingest.consensus_digests (Ingest.finalize filed))))

(* Dead-witness pruning is exact: epochs with pruning on must not change
   the affine set (digests equal to batch), while actually pruning. *)
let test_prune_exactness () =
  let num_symbols = 36 in
  let traces = user_traces ~seed:11 ~users:12 ~num_symbols ~len:220 in
  let batch = Ingest.batch_digests_parts ~trg_window:10 ~affinity_w:5 traces in
  let mk prune =
    let cfg =
      Ingest.config ~num_symbols ~shards:2 ~trg_window:10 ~affinity_w:5 ~epoch_traces:3
        ~prune_dead:prune ()
    in
    ingest_all cfg traces
  in
  let pruned = mk true in
  let digests = Ingest.consensus_digests (Ingest.finalize pruned) in
  check Alcotest.(pair string string) "pruned == batch" batch digests;
  check Alcotest.(pair string string) "no-prune == batch" batch
    (Ingest.consensus_digests (Ingest.finalize (mk false)));
  let s = Ingest.stats pruned in
  Alcotest.(check bool) "pruning actually fired" true (s.dead_pruned > 0);
  Alcotest.(check bool)
    "pruned table smaller than unpruned"
    (s.wits_live < (Ingest.stats (mk false)).wits_live)
    true

(* Per-trace trimming: each trace trims independently; a repeat that
   opens one trace after another trace closed on the same symbol is
   still the new trace's first event (streams are independent). *)
let test_per_trace_trimming () =
  let num_symbols = 8 in
  let mk l =
    let t = Trace.create ~num_symbols () in
    List.iter (Trace.push t) l;
    t
  in
  let parts = [ mk [ 0; 1; 2; 2 ]; mk [ 2; 2; 3 ]; mk [ 3; 3; 3 ] ] in
  let batch = Ingest.batch_digests_parts ~trg_window:4 ~affinity_w:3 parts in
  let cfg = Ingest.config ~num_symbols ~trg_window:4 ~affinity_w:3 () in
  let ing = ingest_all cfg parts in
  check Alcotest.(pair string string) "trimmed per trace" batch
    (Ingest.consensus_digests (Ingest.finalize ing));
  let s = Ingest.stats ing in
  (* [0;1;2] + [2;3] + [3]: the leading 2 and 3 survive because their
     streams restart at the boundary. *)
  check Alcotest.int "kept events" 6 s.kept_events;
  check Alcotest.int "raw events" 10 s.events

(* ---------------------------------------- walker stats + histograms *)

(* Stats are sums over walkers and a pure function of the config: raw
   and trimmed event counts match a direct fold over the traces, and
   every field is identical across jobs counts and repeats. *)
let test_walker_stats_sum () =
  let num_symbols = 48 in
  let traces = user_traces ~seed:13 ~users:9 ~num_symbols ~len:200 in
  let raw = List.fold_left (fun a t -> a + Trace.length t) 0 traces in
  let kept = List.fold_left (fun a t -> a + trimmed_len t) 0 traces in
  let run ~walkers ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let cfg =
          Ingest.config ~num_symbols ~walkers ~shards:2 ~trg_window:12 ~affinity_w:6 ()
        in
        let ing = ingest_all ~pool cfg traces in
        ignore (Ingest.finalize ing);
        Ingest.stats ing)
  in
  List.iter
    (fun walkers ->
      let s = run ~walkers ~jobs:1 in
      check Alcotest.int
        (Printf.sprintf "raw events (walkers=%d)" walkers)
        raw s.Ingest.events;
      check Alcotest.int
        (Printf.sprintf "kept events (walkers=%d)" walkers)
        kept s.Ingest.kept_events;
      check Alcotest.int (Printf.sprintf "traces (walkers=%d)" walkers) 9 s.Ingest.traces;
      (* The whole record — peaks, ops, flushes — must not depend on the
         pool schedule. *)
      List.iter
        (fun jobs ->
          Alcotest.(check bool)
            (Printf.sprintf "stats identical (walkers=%d jobs=%d)" walkers jobs)
            true
            (run ~walkers ~jobs = s))
        [ 2; 4 ])
    walker_counts

(* Per-walker latency histograms: with W walkers, trace i lands on
   walker i mod W, each observation is folded from the walker's delta
   registry into the main one at the dispatch barrier, and the shared
   ingest.trace_ns histogram still covers every trace. *)
let test_walker_histograms () =
  let num_symbols = 32 in
  let traces = user_traces ~seed:17 ~users:5 ~num_symbols ~len:80 in
  let metrics = U.Metrics.create () in
  U.Pool.with_pool ~jobs:2 (fun pool ->
      let cfg =
        Ingest.config ~num_symbols ~walkers:2 ~shards:2 ~trg_window:8 ~affinity_w:4 ()
      in
      let ing = Ingest.create ~pool ~metrics cfg in
      List.iter (Ingest.ingest_trace ing) traces;
      ignore (Ingest.finalize ing));
  let obs name = U.Metrics.observations (U.Metrics.histogram metrics name) in
  (* Round-robin: traces 0,2,4 -> walker 0; traces 1,3 -> walker 1. *)
  check Alcotest.int "walker 0 observations" 3 (obs "ingest.walker.0.trace_ns");
  check Alcotest.int "walker 1 observations" 2 (obs "ingest.walker.1.trace_ns");
  check Alcotest.int "shared trace histogram covers all" 5 (obs "ingest.trace_ns");
  List.iter
    (fun name ->
      let h = U.Metrics.histogram metrics name in
      Alcotest.(check bool)
        (name ^ " has positive total")
        true
        (U.Metrics.hist_total h > 0))
    [ "ingest.walker.0.trace_ns"; "ingest.walker.1.trace_ns" ]

(* ---------------------------------------- bounded-memory mode *)

let bounded_cfg ~num_symbols ~walkers ~shards =
  Ingest.config ~num_symbols ~walkers ~shards ~trg_window:12 ~affinity_w:6 ~trg_cap:64
    ~wits_cap:96 ~decay_shift:1 ~epoch_traces:4 ~flush_ops:256 ()

let test_bounded_caps_and_determinism () =
  let num_symbols = 64 in
  let traces = user_traces ~seed:23 ~users:16 ~num_symbols ~len:400 in
  let run ~shards ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let ing = ingest_all ~pool (bounded_cfg ~num_symbols ~walkers:1 ~shards) traces in
        let d = Ingest.consensus_digests (Ingest.finalize ing) in
        (d, Ingest.stats ing))
  in
  let reference, s = run ~shards:2 ~jobs:1 in
  (* Under pressure the caps must bite and be respected at flush
     boundaries. *)
  Alcotest.(check bool) "trg evictions fired" true (s.trg_evicted > 0);
  Alcotest.(check bool) "wits evictions fired" true (s.wits_evicted > 0);
  Alcotest.(check bool) "decay fired" true (s.decay_dropped > 0);
  Alcotest.(check bool) "trg peak within cap" true (s.trg_peak_shard <= 64);
  Alcotest.(check bool) "wits peak within cap" true (s.wits_peak_shard <= 96);
  Alcotest.(check bool) "live within caps" true
    (s.trg_live <= 2 * 64 && s.wits_live <= 2 * 96);
  (* Same ingest order => same result: across repeated runs and across
     jobs counts (shard count is part of the config, so it may change the
     approximation — but jobs must not). *)
  List.iter
    (fun jobs ->
      let d, _ = run ~shards:2 ~jobs in
      check Alcotest.(pair string string) (Printf.sprintf "jobs=%d identical" jobs) reference d)
    jobs_counts;
  let again, _ = run ~shards:2 ~jobs:2 in
  check Alcotest.(pair string string) "repeated run identical" reference again

(* Bounded mode with several walkers: the walker count, like the shard
   count, is part of the config — each count gives its own
   approximation, but that approximation (digests AND the full stats
   record: evictions, prunes, peaks, flushes) is identical at every
   jobs count and across repeats. *)
let test_bounded_walker_determinism () =
  let num_symbols = 64 in
  let traces = user_traces ~seed:29 ~users:16 ~num_symbols ~len:400 in
  let run ~walkers ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let ing = ingest_all ~pool (bounded_cfg ~num_symbols ~walkers ~shards:2) traces in
        let d = Ingest.consensus_digests (Ingest.finalize ing) in
        (d, Ingest.stats ing))
  in
  List.iter
    (fun walkers ->
      let ref_d, ref_s = run ~walkers ~jobs:1 in
      Alcotest.(check bool)
        (Printf.sprintf "caps hold (walkers=%d)" walkers)
        true
        (ref_s.Ingest.trg_peak_shard <= 64 && ref_s.Ingest.wits_peak_shard <= 96);
      List.iter
        (fun jobs ->
          let d, s = run ~walkers ~jobs in
          check
            Alcotest.(pair string string)
            (Printf.sprintf "digests deterministic (walkers=%d jobs=%d)" walkers jobs)
            ref_d d;
          Alcotest.(check bool)
            (Printf.sprintf "stats deterministic (walkers=%d jobs=%d)" walkers jobs)
            true (s = ref_s))
        [ 2; 4 ];
      let again_d, again_s = run ~walkers ~jobs:2 in
      check
        Alcotest.(pair string string)
        (Printf.sprintf "repeat identical (walkers=%d)" walkers)
        ref_d again_d;
      Alcotest.(check bool)
        (Printf.sprintf "repeat stats identical (walkers=%d)" walkers)
        true
        (again_s = ref_s))
    [ 1; 2; 4 ]

(* Decay arithmetic on a hand-checked example: one epoch of shift-1 decay
   halves (floor) every TRG weight and forgets weight-1 edges. *)
let test_decay_example () =
  let num_symbols = 8 in
  let mk_trace l =
    let t = Trace.create ~num_symbols () in
    List.iter (Trace.push t) l;
    t
  in
  (* Trace [0;1;0;1;0]: each event from the third on recurs within
     window 4 with the other symbol in between, so TRG edge (0,1) ends
     at weight 3. *)
  let cfg_decay =
    Ingest.config ~num_symbols ~trg_window:4 ~affinity_w:4 ~decay_shift:1 ~epoch_traces:1 ()
  in
  let ing = Ingest.create cfg_decay in
  Ingest.ingest_trace ing (mk_trace [ 0; 1; 0; 1; 0 ]);
  (* All of this trace's ops flush at its end_trace epoch, so the full
     weight decays once: 3 lsr 1 = 1. *)
  let c = Ingest.finalize ing in
  check Alcotest.int "decayed weight" 1 (Trg.weight c.trg 0 1);
  (* A second epoch with no new evidence forgets the edge entirely. *)
  Ingest.ingest_trace ing (mk_trace [ 2; 3 ]);
  let c2 = Ingest.finalize ing in
  check Alcotest.int "edge forgotten" 0 (Trg.weight c2.trg 0 1)

(* ---------------------------------------- the service driver *)

(* Flush-on-exit: when users is not a multiple of epoch_traces, the tail
   traces still get an epoch row (marked partial) and an obs snapshot —
   ingested work is never silently absorbed. Each snapshot carries the
   conservation-checked interference probe. *)
let serve_run users =
  let cfg =
    H.Serve.config ~users ~seed:3 ~fuel:600 ~shards:2 ~epoch_traces:2 ~reopt_steps:10
      ~program:"429.mcf" ()
  in
  let obs = U.Obs.create () in
  (H.Serve.run ~obs cfg, obs)

let test_flush_on_exit () =
  let s, obs = serve_run 5 in
  let rows = s.H.Serve.epoch_rows in
  check Alcotest.int "two full epochs + one flushed tail" 3 (List.length rows);
  (match List.rev rows with
  | last :: earlier ->
    Alcotest.(check bool) "tail row is partial" true last.H.Serve.partial;
    check Alcotest.int "tail row covers all ingested traces" 5 last.H.Serve.at_trace;
    List.iter
      (fun r -> Alcotest.(check bool) "earlier rows are full epochs" false r.H.Serve.partial)
      earlier
  | [] -> Alcotest.fail "no epoch rows");
  check Alcotest.int "one obs snapshot per epoch row" (List.length rows)
    (U.Obs.recorded obs);
  List.iter
    (fun sn ->
      Alcotest.(check bool) "snapshot carries the interference probe" true
        (List.mem_assoc "interference" sn.U.Obs.fields);
      Alcotest.(check bool) "snapshot carries the partial flag" true
        (List.mem_assoc "partial" sn.U.Obs.fields))
    (U.Obs.snapshots obs);
  (* The summary JSON carries the flag too. *)
  let json = H.Serve.summary_to_json s in
  (match Option.bind (U.Json.member "epochs" json) U.Json.to_list with
  | Some rows_json ->
    let partials =
      List.filter_map
        (fun r -> Option.bind (U.Json.member "partial" r) U.Json.to_bool)
        rows_json
    in
    check (Alcotest.list Alcotest.bool) "partial flags serialized"
      [ false; false; true ] partials
  | None -> Alcotest.fail "no epochs array in summary json");
  (* Users aligned to the epoch size: no partial row appears. *)
  let s2, obs2 = serve_run 4 in
  Alcotest.(check bool) "no partial row when aligned" true
    (List.for_all (fun r -> not r.H.Serve.partial) s2.H.Serve.epoch_rows);
  check Alcotest.int "aligned run snapshots" (List.length s2.H.Serve.epoch_rows)
    (U.Obs.recorded obs2)

(* The multi-walker service end to end: at walkers=2 the driver's own
   batch verification must pass and the summary must equal the
   single-walker run's digests (exact mode is walker-invariant). *)
let test_serve_multi_walker () =
  let run walkers =
    let cfg =
      H.Serve.config ~users:6 ~seed:5 ~fuel:500 ~walkers ~shards:2 ~epoch_traces:3
        ~verify:true ~program:"429.mcf" ()
    in
    U.Pool.with_pool ~jobs:2 (fun pool -> H.Serve.run ~pool cfg)
  in
  let s1 = run 1 and s2 = run 2 in
  Alcotest.(check (option bool)) "walkers=1 verified" (Some true) s1.H.Serve.digests_match;
  Alcotest.(check (option bool)) "walkers=2 verified" (Some true) s2.H.Serve.digests_match;
  check Alcotest.string "trg digest walker-invariant" s1.H.Serve.trg_digest
    s2.H.Serve.trg_digest;
  check Alcotest.string "affine digest walker-invariant" s1.H.Serve.affine_digest
    s2.H.Serve.affine_digest

(* Spool watching: a file present before the watch and one landing
   mid-watch are both ingested after their stats stabilize; a file from
   a different symbol universe is skipped permanently; the loop returns
   cleanly at its deadline with the digests of a direct ingest. *)
let test_watch_spool () =
  let num_symbols = 32 in
  let traces = user_traces ~seed:31 ~users:2 ~num_symbols ~len:120 in
  let t0 = List.nth traces 0 and t1 = List.nth traces 1 in
  let dir = Filename.temp_file "colayout_spool" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      Trace_io.save ~path:(Filename.concat dir "a.trc") t0;
      (* A trace from another universe: permanently skipped, not retried. *)
      let alien = Trace.create ~num_symbols:(num_symbols + 5) () in
      Trace.push alien 0;
      Trace_io.save ~path:(Filename.concat dir "alien.trc") alien;
      let cfg =
        Ingest.config ~num_symbols ~walkers:2 ~shards:2 ~trg_window:10 ~affinity_w:5 ()
      in
      let ing = Ingest.create cfg in
      let on_poll i =
        (* Lands mid-watch; needs two further stable sightings. *)
        if i = 2 then Trace_io.save ~path:(Filename.concat dir "b.trace") t1
      in
      let r = H.Serve.watch_spool ~ing ~dirs:[ dir ] ~poll_ms:20 ~on_poll ~timeout_s:0.5 () in
      check Alcotest.int "both trace files ingested" 2 r.H.Serve.sp_ingested;
      check Alcotest.int "alien universe skipped" 1 r.H.Serve.sp_skipped;
      check (Alcotest.list Alcotest.string) "nothing pending" [] r.H.Serve.sp_pending;
      Alcotest.(check bool) "polled at least twice" true (r.H.Serve.sp_polls >= 2);
      let watched = Ingest.consensus_digests (Ingest.finalize ing) in
      let direct =
        Ingest.consensus_digests (Ingest.finalize (ingest_all cfg [ t0; t1 ]))
      in
      check Alcotest.(pair string string) "watched == direct ingest" direct watched)

let () =
  Alcotest.run "serve"
    [
      ( "ingest",
        [
          Alcotest.test_case "multi-walker online == batch across walkers x shards x jobs"
            `Quick test_walkers_equal_batch;
          QCheck_alcotest.to_alcotest prop_walker_partition;
          Alcotest.test_case "chunked and file feeds equivalent" `Quick
            test_chunked_and_file_feeds;
          Alcotest.test_case "dead-witness pruning exact" `Quick test_prune_exactness;
          Alcotest.test_case "per-trace trimming" `Quick test_per_trace_trimming;
          Alcotest.test_case "walker stats sum + schedule-invariance" `Quick
            test_walker_stats_sum;
          Alcotest.test_case "per-walker latency histograms fold" `Quick
            test_walker_histograms;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "caps + determinism under pressure" `Quick
            test_bounded_caps_and_determinism;
          Alcotest.test_case "per-walker-count determinism" `Quick
            test_bounded_walker_determinism;
          Alcotest.test_case "decay example" `Quick test_decay_example;
        ] );
      ( "service",
        [
          Alcotest.test_case "flush-on-exit partial epoch" `Slow test_flush_on_exit;
          Alcotest.test_case "multi-walker serve verified" `Slow test_serve_multi_walker;
          Alcotest.test_case "spool watch loop" `Quick test_watch_spool;
        ] );
    ]
