(* Tests for the streaming ingest service core ([Ingest]): the sharded
   online TRG/affinity accumulators must be bit-identical to the batch
   kernels ([Trg.build] / [Affinity.affine_pairs]) on the trimmed
   concatenation of the fed traces, at every shard count and jobs count,
   regardless of feed granularity (whole traces, odd-sized chunks, or
   files through the streaming reader). Bounded-memory mode (caps +
   decay) is approximate by design but must be deterministic given the
   ingest order, keep every shard table under its cap at flush
   boundaries, and actually evict under pressure. *)

open Colayout
open Colayout_trace
module U = Colayout_util
module H = Colayout_harness

let check = Alcotest.check

let shard_counts = [ 1; 2; 4 ]

let jobs_counts = [ 1; 2; 4 ]

(* Zipf-popularity user traces with deliberate consecutive repeats so the
   walker's inline trimming is exercised (the batch side trims the
   concatenation explicitly). *)
let user_traces ~seed ~users ~num_symbols ~len =
  let prng = U.Prng.create ~seed in
  List.init users (fun _ ->
      let t = Trace.create ~num_symbols () in
      for _ = 1 to len do
        let s = U.Prng.zipf prng ~n:num_symbols ~s:0.9 in
        Trace.push t s;
        if U.Prng.bool prng ~p:0.2 then Trace.push t s
      done;
      t)

let concat_traces ~num_symbols traces =
  let cat = Trace.create ~num_symbols () in
  List.iter (fun t -> Trace.iter (fun s -> Trace.push cat s) t) traces;
  cat

let ingest_all ?pool cfg traces =
  let ing = Ingest.create ?pool cfg in
  List.iter (fun t -> Ingest.ingest_trace ing t) traces;
  ing

(* ---------------------------------------- sharded online == batch *)

let test_sharded_equals_batch () =
  let num_symbols = 48 in
  List.iter
    (fun seed ->
      let traces = user_traces ~seed ~users:10 ~num_symbols ~len:300 in
      let cat = concat_traces ~num_symbols traces in
      let batch = Ingest.batch_digests ~trg_window:12 ~affinity_w:6 cat in
      List.iter
        (fun shards ->
          List.iter
            (fun jobs ->
              U.Pool.with_pool ~jobs (fun pool ->
                  let cfg =
                    Ingest.config ~num_symbols ~shards ~trg_window:12 ~affinity_w:6
                      ~flush_ops:512 ()
                  in
                  let ing = ingest_all ~pool cfg traces in
                  let online = Ingest.consensus_digests (Ingest.finalize ing) in
                  check
                    Alcotest.(pair string string)
                    (Printf.sprintf "digests (seed=%d shards=%d jobs=%d)" seed shards jobs)
                    batch online))
            jobs_counts)
        shard_counts)
    [ 1; 2; 42 ]

(* Property form: random trace sets, every shard count, checked against
   the batch kernels via the shared digest renderings. *)
let prop_sharded_equals_batch =
  QCheck.Test.make ~count:12 ~name:"ingest: sharded online == batch on concatenation"
    QCheck.(pair (int_range 0 1000) (int_range 1 6))
    (fun (seed, users) ->
      let num_symbols = 32 in
      let traces = user_traces ~seed ~users ~num_symbols ~len:120 in
      let cat = concat_traces ~num_symbols traces in
      let batch = Ingest.batch_digests ~trg_window:8 ~affinity_w:4 cat in
      List.for_all
        (fun shards ->
          let cfg =
            Ingest.config ~num_symbols ~shards ~trg_window:8 ~affinity_w:4 ~flush_ops:64 ()
          in
          let ing = ingest_all cfg traces in
          Ingest.consensus_digests (Ingest.finalize ing) = batch)
        shard_counts)

(* Feeding granularity must not matter: whole traces, odd chunks, and
   trace files through the streaming reader all describe the same
   concatenated stream. *)
let test_chunked_and_file_feeds () =
  let num_symbols = 40 in
  let traces = user_traces ~seed:7 ~users:6 ~num_symbols ~len:250 in
  let cfg = Ingest.config ~num_symbols ~shards:2 ~trg_window:10 ~affinity_w:5 () in
  let whole = Ingest.consensus_digests (Ingest.finalize (ingest_all cfg traces)) in
  (* Odd-sized chunks, mid-trace boundaries. *)
  let chunked = Ingest.create cfg in
  List.iter
    (fun t ->
      let arr = U.Int_vec.to_array (Trace.events t) in
      let n = Array.length arr in
      let pos = ref 0 in
      while !pos < n do
        let len = min 7 (n - !pos) in
        Ingest.feed_chunk chunked (Array.sub arr !pos len) len;
        pos := !pos + len
      done;
      Ingest.end_trace chunked)
    traces;
  check
    Alcotest.(pair string string)
    "chunked == whole" whole
    (Ingest.consensus_digests (Ingest.finalize chunked));
  (* Through trace files and the chunked streaming reader. *)
  let dir = Filename.temp_file "colayout_serve" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let filed = Ingest.create cfg in
      List.iteri
        (fun i t ->
          let path = Filename.concat dir (Printf.sprintf "u%d.trace" i) in
          Trace_io.save ~path t;
          Ingest.feed_file filed ~path)
        traces;
      check
        Alcotest.(pair string string)
        "file-streamed == whole" whole
        (Ingest.consensus_digests (Ingest.finalize filed)))

(* Dead-witness pruning is exact: epochs with pruning on must not change
   the affine set (digests equal to batch), while actually pruning. *)
let test_prune_exactness () =
  let num_symbols = 36 in
  let traces = user_traces ~seed:11 ~users:12 ~num_symbols ~len:220 in
  let cat = concat_traces ~num_symbols traces in
  let batch = Ingest.batch_digests ~trg_window:10 ~affinity_w:5 cat in
  let mk prune =
    let cfg =
      Ingest.config ~num_symbols ~shards:2 ~trg_window:10 ~affinity_w:5 ~epoch_traces:3
        ~prune_dead:prune ()
    in
    ingest_all cfg traces
  in
  let pruned = mk true in
  let digests = Ingest.consensus_digests (Ingest.finalize pruned) in
  check Alcotest.(pair string string) "pruned == batch" batch digests;
  check Alcotest.(pair string string) "no-prune == batch" batch
    (Ingest.consensus_digests (Ingest.finalize (mk false)));
  let s = Ingest.stats pruned in
  Alcotest.(check bool) "pruning actually fired" true (s.dead_pruned > 0);
  Alcotest.(check bool)
    "pruned table smaller than unpruned"
    (s.wits_live < (Ingest.stats (mk false)).wits_live)
    true

(* ---------------------------------------- bounded-memory mode *)

let bounded_cfg ~num_symbols ~shards =
  Ingest.config ~num_symbols ~shards ~trg_window:12 ~affinity_w:6 ~trg_cap:64 ~wits_cap:96
    ~decay_shift:1 ~epoch_traces:4 ~flush_ops:256 ()

let test_bounded_caps_and_determinism () =
  let num_symbols = 64 in
  let traces = user_traces ~seed:23 ~users:16 ~num_symbols ~len:400 in
  let run ~shards ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let ing = ingest_all ~pool (bounded_cfg ~num_symbols ~shards) traces in
        let d = Ingest.consensus_digests (Ingest.finalize ing) in
        (d, Ingest.stats ing))
  in
  let reference, s = run ~shards:2 ~jobs:1 in
  (* Under pressure the caps must bite and be respected at flush
     boundaries. *)
  Alcotest.(check bool) "trg evictions fired" true (s.trg_evicted > 0);
  Alcotest.(check bool) "wits evictions fired" true (s.wits_evicted > 0);
  Alcotest.(check bool) "decay fired" true (s.decay_dropped > 0);
  Alcotest.(check bool) "trg peak within cap" true (s.trg_peak_shard <= 64);
  Alcotest.(check bool) "wits peak within cap" true (s.wits_peak_shard <= 96);
  Alcotest.(check bool) "live within caps" true
    (s.trg_live <= 2 * 64 && s.wits_live <= 2 * 96);
  (* Same ingest order => same result: across repeated runs and across
     jobs counts (shard count is part of the config, so it may change the
     approximation — but jobs must not). *)
  List.iter
    (fun jobs ->
      let d, _ = run ~shards:2 ~jobs in
      check Alcotest.(pair string string) (Printf.sprintf "jobs=%d identical" jobs) reference d)
    jobs_counts;
  let again, _ = run ~shards:2 ~jobs:2 in
  check Alcotest.(pair string string) "repeated run identical" reference again

(* Decay arithmetic on a hand-checked example: one epoch of shift-1 decay
   halves (floor) every TRG weight and forgets weight-1 edges. *)
let test_decay_example () =
  let num_symbols = 8 in
  let mk_trace l =
    let t = Trace.create ~num_symbols () in
    List.iter (Trace.push t) l;
    t
  in
  (* Trace [0;1;0;1;0]: each event from the third on recurs within
     window 4 with the other symbol in between, so TRG edge (0,1) ends
     at weight 3. *)
  let cfg_decay =
    Ingest.config ~num_symbols ~trg_window:4 ~affinity_w:4 ~decay_shift:1 ~epoch_traces:1 ()
  in
  let ing = Ingest.create cfg_decay in
  Ingest.ingest_trace ing (mk_trace [ 0; 1; 0; 1; 0 ]);
  (* All of this trace's ops flush at its end_trace epoch, so the full
     weight decays once: 3 lsr 1 = 1. *)
  let c = Ingest.finalize ing in
  check Alcotest.int "decayed weight" 1 (Trg.weight c.trg 0 1);
  (* A second epoch with no new evidence forgets the edge entirely. *)
  Ingest.ingest_trace ing (mk_trace [ 2; 3 ]);
  let c2 = Ingest.finalize ing in
  check Alcotest.int "edge forgotten" 0 (Trg.weight c2.trg 0 1)

(* Cross-boundary trimming: a trace ending in [s] followed by one
   starting with [s] contributes a single kept event, exactly like
   trimming the concatenation. *)
let test_cross_trace_trimming () =
  let num_symbols = 8 in
  let mk l =
    let t = Trace.create ~num_symbols () in
    List.iter (Trace.push t) l;
    t
  in
  let parts = [ mk [ 0; 1; 2; 2 ]; mk [ 2; 2; 3 ]; mk [ 3; 3; 3 ] ] in
  let cat = concat_traces ~num_symbols parts in
  let batch = Ingest.batch_digests ~trg_window:4 ~affinity_w:3 cat in
  let cfg = Ingest.config ~num_symbols ~trg_window:4 ~affinity_w:3 () in
  let ing = ingest_all cfg parts in
  check Alcotest.(pair string string) "trimmed across boundaries" batch
    (Ingest.consensus_digests (Ingest.finalize ing));
  let s = Ingest.stats ing in
  check Alcotest.int "kept events" 4 s.kept_events;
  check Alcotest.int "raw events" 10 s.events

(* ---------------------------------------- the service driver *)

(* Flush-on-exit: when users is not a multiple of epoch_traces, the tail
   traces still get an epoch row (marked partial) and an obs snapshot —
   ingested work is never silently absorbed. Each snapshot carries the
   conservation-checked interference probe. *)
let serve_run users =
  let cfg =
    H.Serve.config ~users ~seed:3 ~fuel:600 ~shards:2 ~epoch_traces:2 ~reopt_steps:10
      ~program:"429.mcf" ()
  in
  let obs = U.Obs.create () in
  (H.Serve.run ~obs cfg, obs)

let test_flush_on_exit () =
  let s, obs = serve_run 5 in
  let rows = s.H.Serve.epoch_rows in
  check Alcotest.int "two full epochs + one flushed tail" 3 (List.length rows);
  (match List.rev rows with
  | last :: earlier ->
    Alcotest.(check bool) "tail row is partial" true last.H.Serve.partial;
    check Alcotest.int "tail row covers all ingested traces" 5 last.H.Serve.at_trace;
    List.iter
      (fun r -> Alcotest.(check bool) "earlier rows are full epochs" false r.H.Serve.partial)
      earlier
  | [] -> Alcotest.fail "no epoch rows");
  check Alcotest.int "one obs snapshot per epoch row" (List.length rows)
    (U.Obs.recorded obs);
  List.iter
    (fun sn ->
      Alcotest.(check bool) "snapshot carries the interference probe" true
        (List.mem_assoc "interference" sn.U.Obs.fields);
      Alcotest.(check bool) "snapshot carries the partial flag" true
        (List.mem_assoc "partial" sn.U.Obs.fields))
    (U.Obs.snapshots obs);
  (* The summary JSON carries the flag too. *)
  let json = H.Serve.summary_to_json s in
  (match Option.bind (U.Json.member "epochs" json) U.Json.to_list with
  | Some rows_json ->
    let partials =
      List.filter_map
        (fun r -> Option.bind (U.Json.member "partial" r) U.Json.to_bool)
        rows_json
    in
    check (Alcotest.list Alcotest.bool) "partial flags serialized"
      [ false; false; true ] partials
  | None -> Alcotest.fail "no epochs array in summary json");
  (* Users aligned to the epoch size: no partial row appears. *)
  let s2, obs2 = serve_run 4 in
  Alcotest.(check bool) "no partial row when aligned" true
    (List.for_all (fun r -> not r.H.Serve.partial) s2.H.Serve.epoch_rows);
  check Alcotest.int "aligned run snapshots" (List.length s2.H.Serve.epoch_rows)
    (U.Obs.recorded obs2)

let () =
  Alcotest.run "serve"
    [
      ( "ingest",
        [
          Alcotest.test_case "sharded online == batch across shards x jobs" `Quick
            test_sharded_equals_batch;
          QCheck_alcotest.to_alcotest prop_sharded_equals_batch;
          Alcotest.test_case "chunked and file feeds equivalent" `Quick
            test_chunked_and_file_feeds;
          Alcotest.test_case "dead-witness pruning exact" `Quick test_prune_exactness;
          Alcotest.test_case "cross-trace trimming" `Quick test_cross_trace_trimming;
        ] );
      ( "bounded",
        [
          Alcotest.test_case "caps + determinism under pressure" `Quick
            test_bounded_caps_and_determinism;
          Alcotest.test_case "decay example" `Quick test_decay_example;
        ] );
      ( "service",
        [ Alcotest.test_case "flush-on-exit partial epoch" `Slow test_flush_on_exit ] );
    ]
