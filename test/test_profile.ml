(* The profiling subsystem end to end: differential attribution (a sink
   wired through a whole simulation must agree exactly with Cache_stats,
   solo and co-run, at any jobs count), decision tracing (pay-as-you-go,
   every optimizer placement accounted for, JSONL export), and the
   colayout/profile/v1 artifact builder. *)

open Colayout_cache
module Core = Colayout
module H = Colayout_harness
module U = Colayout_util
module T = Colayout_trace

let check = Alcotest.check

let prog = "429.mcf"

let classification_sums sink =
  check Alcotest.int "cold + capacity + conflict = misses" (Profile_sink.misses sink)
    (Profile_sink.cold_misses sink + Profile_sink.capacity_misses sink
   + Profile_sink.conflict_misses sink)

let block_sums sink =
  let rows = Profile_sink.block_rows sink in
  let sum f = List.fold_left (fun acc r -> acc + f r) 0 rows in
  check Alcotest.int "per-block accesses sum to total" (Profile_sink.accesses sink)
    (sum (fun r -> r.Profile_sink.b_accesses));
  check Alcotest.int "per-block misses sum to total" (Profile_sink.misses sink)
    (sum (fun r -> r.Profile_sink.b_misses));
  check Alcotest.int "per-block evictions sum to total" (Profile_sink.evictions sink)
    (sum (fun r -> r.Profile_sink.b_evictions))

let test_solo_differential () =
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let stats, sink = H.Ctx.profiled_solo ctx ~hw:false prog Core.Optimizer.Original in
  check Alcotest.int "accesses" (Cache_stats.accesses stats) (Profile_sink.accesses sink);
  check Alcotest.int "misses" (Cache_stats.misses stats) (Profile_sink.misses sink);
  check Alcotest.int "evictions" (Cache_stats.evictions stats) (Profile_sink.evictions sink);
  check Alcotest.bool "some misses happened" true (Profile_sink.misses sink > 0);
  classification_sums sink;
  block_sums sink;
  (* ctx.profile.* counters published. *)
  let counters = U.Metrics.counters (H.Ctx.metrics ctx) in
  check (Alcotest.option Alcotest.int) "ctx.profile.runs" (Some 1)
    (List.assoc_opt "ctx.profile.runs" counters);
  check (Alcotest.option Alcotest.int) "ctx.profile.misses"
    (Some (Profile_sink.misses sink))
    (List.assoc_opt "ctx.profile.misses" counters)

let test_corun_differential () =
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let stats, sink =
    H.Ctx.profiled_corun ctx ~hw:false
      ~self:(prog, Core.Optimizer.Original)
      ~peer:(prog, Core.Optimizer.Original)
  in
  check Alcotest.int "accesses" (Cache_stats.accesses stats) (Profile_sink.accesses sink);
  check Alcotest.int "misses" (Cache_stats.misses stats) (Profile_sink.misses sink);
  check Alcotest.int "evictions" (Cache_stats.evictions stats) (Profile_sink.evictions sink);
  classification_sums sink;
  block_sums sink;
  (* Per-thread attribution matches the per-thread stats exactly. *)
  let rows = Profile_sink.block_rows sink in
  let thread_sum th f =
    List.fold_left
      (fun acc r -> if r.Profile_sink.thread = th then acc + f r else acc)
      0 rows
  in
  List.iter
    (fun th ->
      check Alcotest.int
        (Printf.sprintf "thread %d accesses" th)
        (Cache_stats.thread_accesses stats th)
        (thread_sum th (fun r -> r.Profile_sink.b_accesses));
      check Alcotest.int
        (Printf.sprintf "thread %d misses" th)
        (Cache_stats.thread_misses stats th)
        (thread_sum th (fun r -> r.Profile_sink.b_misses)))
    [ 0; 1 ]

let test_jobs_invariance () =
  (* The attribution is a pure function of the simulation inputs: a pooled
     context (jobs=4) must produce row-for-row identical attribution to a
     sequential one. *)
  let run jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let ctx = H.Ctx.create ~scale:H.Ctx.Fast ~pool () in
        let stats, sink = H.Ctx.profiled_solo ctx ~hw:false prog Core.Optimizer.Bb_affinity in
        check Alcotest.int "accesses agree" (Cache_stats.accesses stats)
          (Profile_sink.accesses sink);
        check Alcotest.int "misses agree" (Cache_stats.misses stats)
          (Profile_sink.misses sink);
        Profile_sink.block_rows sink)
  in
  let r1 = run 1 and r4 = run 4 in
  check Alcotest.bool "attribution identical at jobs 1 and 4" true (r1 = r4)

let test_decision_trace_unit () =
  (* None sink: a no-op, by contract. *)
  Core.Decision_trace.emit None ~stage:"s" ~action:"a" ();
  let d = Core.Decision_trace.create () in
  check Alcotest.int "empty" 0 (Core.Decision_trace.count d);
  Core.Decision_trace.emit (Some d) ~stage:"s" ~action:"a" ~x:1 ~weight:3 ();
  Core.Decision_trace.emit (Some d) ~stage:"s" ~action:"b" ();
  Core.Decision_trace.emit (Some d) ~stage:"t" ~action:"a" ~x:2 ~y:1 ~group:0 ~size:2 ();
  check Alcotest.int "count" 3 (Core.Decision_trace.count d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "counts by action"
    [ ("s.a", 1); ("s.b", 1); ("t.a", 1) ]
    (Core.Decision_trace.counts_by_action d);
  let steps = List.map (fun e -> e.Core.Decision_trace.step) (Core.Decision_trace.events d) in
  check (Alcotest.list Alcotest.int) "steps sequential" [ 0; 1; 2 ] steps;
  let lines =
    String.split_on_char '\n' (Core.Decision_trace.to_jsonl d)
    |> List.filter (fun l -> l <> "")
  in
  check Alcotest.int "one line per event" 3 (List.length lines);
  let first = U.Json.parse (List.hd lines) in
  check
    (Alcotest.option Alcotest.string)
    "schema on first line" (Some "colayout/decisions/v1")
    (Option.bind (U.Json.member "schema" first) U.Json.to_str);
  (* Absent (-1) fields are omitted from the JSON, present ones kept. *)
  check (Alcotest.option Alcotest.int) "x kept" (Some 1)
    (Option.bind (U.Json.member "x" first) U.Json.to_int);
  check Alcotest.bool "y omitted" true (U.Json.member "y" first = None)

let test_pettis_hansen_decisions () =
  let g =
    Core.Pettis_hansen.graph_of_edges ~num_funcs:4 [ (0, 1, 10); (1, 2, 5); (2, 3, 2) ]
  in
  let d = Core.Decision_trace.create () in
  let order = Core.Pettis_hansen.order ~decisions:d g in
  check Alcotest.int "three chain merges" 3 (Core.Decision_trace.count d);
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "all chain-merge"
    [ ("pettis-hansen.chain-merge", 3) ]
    (Core.Decision_trace.counts_by_action d);
  (* Tracing must not perturb the result. *)
  check (Alcotest.list Alcotest.int) "order unchanged" (Core.Pettis_hansen.order g) order;
  (* The heaviest edge drives the first merge. *)
  match Core.Decision_trace.events d with
  | e :: _ -> check Alcotest.int "first merge weight" 10 e.Core.Decision_trace.weight
  | [] -> Alcotest.fail "no events"

let test_trg_reduce_decisions () =
  let tr = T.Trim.trim (T.Trace.of_list ~num_symbols:4 [ 0; 1; 0; 1; 2; 3; 2; 3 ]) in
  let trg = Core.Trg.build ~window:4 tr in
  let d = Core.Decision_trace.create () in
  let r = Core.Trg_reduce.reduce ~decisions:d trg ~slots:2 in
  (* Exactly one place/merge event per placed block. *)
  check Alcotest.int "one event per placement"
    (List.length r.Core.Trg_reduce.order)
    (Core.Decision_trace.count d);
  let undecided = Core.Trg_reduce.reduce trg ~slots:2 in
  check Alcotest.bool "order unchanged by tracing" true
    (r.Core.Trg_reduce.order = undecided.Core.Trg_reduce.order)

let test_affinity_decisions () =
  (* The paper's worked example trace. *)
  let tr = T.Trim.trim (T.Trace.of_list ~num_symbols:5 [ 0; 3; 1; 3; 1; 2; 4; 0; 3 ]) in
  let d = Core.Decision_trace.create () in
  let h = Core.Affinity_hierarchy.build ~decisions:d tr in
  check Alcotest.bool "some decisions" true (Core.Decision_trace.count d > 0);
  List.iter
    (fun e -> check Alcotest.string "stage" "affinity" e.Core.Decision_trace.stage)
    (Core.Decision_trace.events d);
  check
    (Alcotest.list Alcotest.int)
    "order unchanged by tracing"
    (Core.Affinity_hierarchy.order (Core.Affinity_hierarchy.build tr))
    (Core.Affinity_hierarchy.order h)

(* --- interference attribution ---------------------------------------- *)

(* A 2-set direct-mapped cache driven by hand, so every matrix cell is
   predictable: lines 0/2 collide in set 0 across threads, lines 1/3
   collide in set 1 within thread 0. *)
let interference_toy () =
  let p = Params.make ~size_bytes:128 ~assoc:1 ~line_bytes:64 in
  let c = Set_assoc.create p in
  let sink = Profile_sink.create ~threads:2 ~params:p () in
  List.iter
    (fun (th, l) ->
      ignore (Set_assoc.access_line_profiled c sink ~thread:th ~block:l l))
    [ (0, 0); (1, 2); (0, 0); (1, 2); (0, 1); (0, 3); (0, 1) ];
  sink

let test_interference_toy () =
  let sink = interference_toy () in
  check (Alcotest.list Alcotest.int) "first misses" [ 3; 1 ]
    (Array.to_list (Profile_sink.first_misses sink));
  let rows m = List.map Array.to_list (Array.to_list m) in
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "eviction matrix (evictor x owner)"
    [ [ 2; 1 ]; [ 2; 0 ] ]
    (rows (Profile_sink.ev_matrix sink));
  check
    (Alcotest.list (Alcotest.list Alcotest.int))
    "miss matrix (misser x last evictor)"
    [ [ 1; 1 ]; [ 1; 0 ] ]
    (rows (Profile_sink.miss_matrix sink));
  check Alcotest.int "suffered 0" 1 (Profile_sink.suffered_misses sink ~thread:0);
  check Alcotest.int "inflicted 0" 1 (Profile_sink.inflicted_misses sink ~thread:0);
  check (Alcotest.float 1e-9) "defensiveness 0" 0.8
    (Profile_sink.defensiveness sink ~thread:0);
  check (Alcotest.float 1e-9) "politeness 0" 0.5 (Profile_sink.politeness sink ~thread:0);
  check (Alcotest.float 1e-9) "defensiveness 1" 0.5
    (Profile_sink.defensiveness sink ~thread:1);
  check (Alcotest.float 1e-9) "politeness 1" 0.8 (Profile_sink.politeness sink ~thread:1);
  (* Set 0 saw only cross-thread evictions, set 1 only self-evictions. *)
  check Alcotest.int "set 0 cross evictions" 3
    (Profile_sink.set_cross_evictions sink ~set:0);
  check Alcotest.int "set 1 cross evictions" 0
    (Profile_sink.set_cross_evictions sink ~set:1)

let test_interference_conservation () =
  (* A real co-run: the matrices must partition the simulator's totals —
     interference_json enforces this and must not raise. *)
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let stats, sink =
    H.Ctx.profiled_corun ctx ~hw:false
      ~self:(prog, Core.Optimizer.Bb_affinity)
      ~peer:("445.gobmk", Core.Optimizer.Original)
  in
  let ev = Profile_sink.ev_matrix sink in
  let sum2 = Array.fold_left (fun a r -> Array.fold_left ( + ) a r) 0 in
  check Alcotest.int "ev matrix sums to evictions" (Cache_stats.evictions stats) (sum2 ev);
  Array.iteri
    (fun th row ->
      check Alcotest.int
        (Printf.sprintf "thread %d eviction row" th)
        (Profile_sink.thread_evictions sink th)
        (Array.fold_left ( + ) 0 row))
    ev;
  let ms = Profile_sink.miss_matrix sink and first = Profile_sink.first_misses sink in
  List.iter
    (fun th ->
      check Alcotest.int
        (Printf.sprintf "thread %d miss partition" th)
        (Cache_stats.thread_misses stats th)
        (Array.fold_left ( + ) first.(th) ms.(th)))
    [ 0; 1 ];
  let json = Profile.interference_json ~label:"t" ~sink ~stats in
  ignore (U.Json.parse (U.Json.to_string json))

let test_interference_json_mismatch () =
  let sink = interference_toy () in
  match Profile.interference_json ~label:"bad" ~sink ~stats:(Cache_stats.create ~threads:2 ()) with
  | _ -> Alcotest.fail "expected Invalid_argument on conservation mismatch"
  | exception Invalid_argument _ -> ()

let test_sink_transparent () =
  (* Attaching the observatory must not perturb the simulation: the
     profiled and unprofiled twins agree on every counter. *)
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  let self = (prog, Core.Optimizer.Bb_affinity)
  and peer = ("445.gobmk", Core.Optimizer.Original) in
  let stats, _ = H.Ctx.profiled_corun ctx ~hw:false ~self ~peer in
  let bare = H.Ctx.corun_stats ctx ~hw:false ~self ~peer in
  check Alcotest.int "accesses" (Cache_stats.accesses bare) (Cache_stats.accesses stats);
  check Alcotest.int "misses" (Cache_stats.misses bare) (Cache_stats.misses stats);
  check Alcotest.int "evictions" (Cache_stats.evictions bare) (Cache_stats.evictions stats);
  List.iter
    (fun th ->
      check Alcotest.int
        (Printf.sprintf "thread %d accesses" th)
        (Cache_stats.thread_accesses bare th)
        (Cache_stats.thread_accesses stats th);
      check Alcotest.int
        (Printf.sprintf "thread %d misses" th)
        (Cache_stats.thread_misses bare th)
        (Cache_stats.thread_misses stats th))
    [ 0; 1 ]

(* A Cache_stats whose totals agree with the sink, for artifact tests. *)
let stats_matching sink =
  let s = Cache_stats.create () in
  for _ = 1 to Profile_sink.misses sink do
    Cache_stats.record s ~thread:0 ~hit:false
  done;
  for _ = 1 to Profile_sink.accesses sink - Profile_sink.misses sink do
    Cache_stats.record s ~thread:0 ~hit:true
  done;
  s

let toy_sink () =
  let p = Params.make ~size_bytes:256 ~assoc:2 ~line_bytes:64 in
  let c = Set_assoc.create p in
  let sink = Profile_sink.create ~params:p () in
  List.iter
    (fun l -> ignore (Set_assoc.access_line_profiled c sink ~thread:0 ~block:l l))
    [ 0; 2; 4; 0; 1; 1 ];
  (p, sink)

let test_profile_artifact () =
  let p, sink = toy_sink () in
  let lp = { Profile.label = "original"; sink; stats = stats_matching sink } in
  let json =
    Profile.to_json ~top:3
      ~block_name:(Printf.sprintf "blk%d")
      ~decisions:[ ("affinity.join", 2) ]
      ~program:"toy" ~params:p
      ~layouts:[ lp; { lp with Profile.label = "optimized" } ]
      ()
  in
  let get k j = U.Json.member k j in
  check (Alcotest.option Alcotest.string) "schema" (Some Profile.schema)
    (Option.bind (get "schema" json) U.Json.to_str);
  (match Option.bind (get "layouts" json) U.Json.to_list with
  | Some [ _; _ ] -> ()
  | _ -> Alcotest.fail "expected two layout sections");
  (match Option.bind (get "delta" json) U.Json.to_list with
  | Some [ d ] ->
    check (Alcotest.option Alcotest.int) "self-delta is zero" (Some 0)
      (Option.bind (get "conflict_reduction" d) U.Json.to_int)
  | _ -> Alcotest.fail "expected one delta entry");
  (match Option.bind (get "decisions" json) (get "total") with
  | Some (U.Json.Int 2) -> ()
  | _ -> Alcotest.fail "decision total not embedded");
  (* Round-trip through the serializer. *)
  ignore (U.Json.parse (U.Json.to_string ~pretty:true json))

let test_profile_artifact_mismatch () =
  let _, sink = toy_sink () in
  let bad = { Profile.label = "bad"; sink; stats = Cache_stats.create () } in
  match Profile.layout_json bad with
  | _ -> Alcotest.fail "expected Invalid_argument on attribution mismatch"
  | exception Invalid_argument _ -> ()

let () =
  Alcotest.run "profile"
    [
      ( "differential",
        [
          Alcotest.test_case "solo sink = stats" `Quick test_solo_differential;
          Alcotest.test_case "corun sink = stats" `Quick test_corun_differential;
          Alcotest.test_case "jobs invariance" `Slow test_jobs_invariance;
        ] );
      ( "interference",
        [
          Alcotest.test_case "toy matrices" `Quick test_interference_toy;
          Alcotest.test_case "corun conservation" `Quick test_interference_conservation;
          Alcotest.test_case "mismatch rejected" `Quick test_interference_json_mismatch;
          Alcotest.test_case "sink transparent" `Quick test_sink_transparent;
        ] );
      ( "decisions",
        [
          Alcotest.test_case "event sink" `Quick test_decision_trace_unit;
          Alcotest.test_case "pettis-hansen" `Quick test_pettis_hansen_decisions;
          Alcotest.test_case "trg-reduce" `Quick test_trg_reduce_decisions;
          Alcotest.test_case "affinity" `Quick test_affinity_decisions;
        ] );
      ( "artifact",
        [
          Alcotest.test_case "to_json" `Quick test_profile_artifact;
          Alcotest.test_case "mismatch rejected" `Quick test_profile_artifact_mismatch;
        ] );
    ]
