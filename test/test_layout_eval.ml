(* Differential tests for the PR-5 zero-allocation evaluation engine:
   [Layout_eval] must reproduce the seed evaluator — which lives on in
   [Kernel_baseline] — bit-for-bit, over random programs, random orders
   (function and block granularity, with and without entry stubs) and a
   range of cache geometries. Also covers [eval_batch]'s determinism
   contract (pooled fan-out byte-identical to sequential at any jobs
   count), the engine-backed [Optimal]/[Anneal] rewiring, and the
   allocation-free permutation validation. *)

open Colayout
module W = Colayout_workloads
module E = Colayout_exec
module C = Colayout_cache
module U = Colayout_util

let check = Alcotest.check

let bits = Int64.bits_of_float

let check_bit_equal what a b =
  check Alcotest.int64 what (bits a) (bits b)

(* Two program shapes: phased (tight per-phase working sets) and dispatch
   (interpreter-style Zipf loop) — different trace structures, same
   evaluator contract. *)
let program_of ~seed ~style =
  W.Gen.build
    {
      W.Gen.default_profile with
      pname = Printf.sprintf "layout-eval-%d" seed;
      seed;
      style;
      phases = 2;
      funcs_per_phase = 2;
      shared_funcs = 1;
      arms = 3;
      arm_blocks = 2;
      arm_work = 30;
      cold_funcs = 1;
      iters_per_phase = 25;
    }

let programs () =
  [
    program_of ~seed:31 ~style:W.Gen.default_profile.W.Gen.style;
    program_of ~seed:77 ~style:(W.Gen.Dispatch { table = 4; zipf_s = 0.8 });
  ]

let trace_of program = Pipeline.reference_trace program (E.Interp.ref_input ~max_blocks:8_000 ())

let geometries =
  [
    C.Params.make ~size_bytes:2048 ~assoc:2 ~line_bytes:64;
    C.Params.make ~size_bytes:1024 ~assoc:1 ~line_bytes:32;
    C.Params.make ~size_bytes:4096 ~assoc:8 ~line_bytes:128;
    C.Params.default_l1i;
  ]

let random_perm prng n =
  let a = Array.init n Fun.id in
  U.Prng.shuffle prng a;
  a

(* ---------------------------------------- function orders, all geometries *)

let test_function_order_differential () =
  List.iter
    (fun program ->
      let trace = trace_of program in
      let nf = Colayout_ir.Program.num_funcs program in
      List.iter
        (fun params ->
          let engine = Layout_eval.create ~params program trace in
          let prng = U.Prng.create ~seed:(nf + params.C.Params.num_sets) in
          for i = 0 to 19 do
            let order = random_perm prng nf in
            let got = Layout_eval.miss_ratio_of_order engine order in
            let want = Kernel_baseline.miss_ratio_of_function_order ~params program trace order in
            check_bit_equal (Printf.sprintf "engine = seed (%s, order %d)"
                               (C.Params.to_string params) i)
              want got;
            (* The rewired one-shot helper must agree too. *)
            check_bit_equal "Optimal.miss_ratio_of_function_order = seed" want
              (Optimal.miss_ratio_of_function_order ~params program trace order)
          done)
        geometries)
    (programs ())

(* -------------------------------- block orders, with and without stubs *)

let test_block_order_differential () =
  List.iter
    (fun program ->
      let trace = trace_of program in
      let nb = Colayout_ir.Program.num_blocks program in
      List.iter
        (fun params ->
          let engine = Layout_eval.create ~params program trace in
          let prng = U.Prng.create ~seed:(nb * 3 + params.C.Params.assoc) in
          for i = 0 to 9 do
            let order = random_perm prng nb in
            List.iter
              (fun function_stubs ->
                let got = Layout_eval.miss_ratio_of_block_order ~function_stubs engine order in
                let want =
                  Kernel_baseline.miss_ratio_of_block_order ~function_stubs ~params program
                    trace order
                in
                check_bit_equal
                  (Printf.sprintf "block order %d (stubs=%b, %s)" i function_stubs
                     (C.Params.to_string params))
                  want got)
              [ false; true ]
          done)
        geometries)
    (programs ())

(* A random block order scatters fall-through chains, so added jump stubs
   must actually appear: the engine's byte accounting is only proven if the
   inputs exercise it. *)
let test_block_orders_add_jumps () =
  let program = List.hd (programs ()) in
  let nb = Colayout_ir.Program.num_blocks program in
  let prng = U.Prng.create ~seed:5 in
  let order = random_perm prng nb in
  let layout = Layout.of_block_order program order in
  check Alcotest.bool "shuffled block order breaks fall-throughs" true
    (layout.Layout.added_jumps > 0)

(* ----------------------------------------------- batch = sequential *)

let test_eval_batch_matches_sequential () =
  let program = List.hd (programs ()) in
  let trace = trace_of program in
  let params = List.hd geometries in
  let nf = Colayout_ir.Program.num_funcs program in
  let prng = U.Prng.create ~seed:99 in
  let orders = Array.init 17 (fun _ -> random_perm prng nf) in
  let sequential =
    let engine = Layout_eval.create ~params program trace in
    Array.map (Layout_eval.miss_ratio_of_order engine) orders
  in
  List.iter
    (fun jobs ->
      U.Pool.with_pool ~jobs (fun pool ->
          let engine = Layout_eval.create ~pool ~params program trace in
          let batched = Layout_eval.eval_batch engine orders in
          check Alcotest.int (Printf.sprintf "jobs=%d result count" jobs)
            (Array.length orders) (Array.length batched);
          Array.iteri
            (fun i got ->
              check_bit_equal (Printf.sprintf "jobs=%d candidate %d" jobs i) sequential.(i)
                got)
            batched;
          (* Re-batching through the same engine (clone reuse) stays equal. *)
          let again = Layout_eval.eval_batch engine orders in
          Array.iteri
            (fun i got ->
              check_bit_equal (Printf.sprintf "jobs=%d re-batch %d" jobs i) sequential.(i) got)
            again;
          check Alcotest.bool (Printf.sprintf "jobs=%d builds at most jobs clones" jobs) true
            (Layout_eval.clones_built engine <= jobs)))
    [ 1; 4 ]

let test_eval_batch_small_batch_clones () =
  (* n < jobs: the old chunked fan-out built an engine clone per chunk,
     including for empty ones. Per-worker lazy clones must cap at the
     number of candidates that can possibly run concurrently. *)
  let program = List.hd (programs ()) in
  let trace = trace_of program in
  let params = List.hd geometries in
  let nf = Colayout_ir.Program.num_funcs program in
  let prng = U.Prng.create ~seed:5 in
  let orders = Array.init 2 (fun _ -> random_perm prng nf) in
  let sequential =
    let engine = Layout_eval.create ~params program trace in
    Array.map (Layout_eval.miss_ratio_of_order engine) orders
  in
  U.Pool.with_pool ~jobs:4 (fun pool ->
      let engine = Layout_eval.create ~pool ~params program trace in
      check Alcotest.int "no clones before the first batch" 0
        (Layout_eval.clones_built engine);
      let batched = Layout_eval.eval_batch engine orders in
      Array.iteri
        (fun i got -> check_bit_equal (Printf.sprintf "small batch %d" i) sequential.(i) got)
        batched;
      check Alcotest.bool "no clone for a worker that ran nothing" true
        (Layout_eval.clones_built engine <= Array.length orders);
      (* A single-candidate batch takes the sequential path: no new
         clones. *)
      let built = Layout_eval.clones_built engine in
      let one = Layout_eval.eval_batch engine [| orders.(0) |] in
      check_bit_equal "singleton batch" sequential.(0) one.(0);
      check Alcotest.int "singleton batch built no clone" built
        (Layout_eval.clones_built engine))

(* ------------------------------------------- engine-backed searches *)

let test_optimal_search_engine_equivalence () =
  (* A 4-function program: the exhaustive walk visits all 24 permutations;
     its best/worst must match a brute-force walk over the seed
     evaluator. *)
  let program =
    W.Gen.build
      {
        W.Gen.default_profile with
        pname = "layout-eval-optimal";
        seed = 13;
        phases = 1;
        funcs_per_phase = 2;
        shared_funcs = 0;
        cold_funcs = 1;
        iters_per_phase = 20;
      }
  in
  let trace = trace_of program in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let nf = Colayout_ir.Program.num_funcs program in
  check Alcotest.int "4 functions" 4 nf;
  let r = Optimal.search ~params program trace in
  check Alcotest.int "evaluated 4!" 24 r.Optimal.evaluated;
  let best = ref infinity and worst = ref neg_infinity in
  let rec permute k order =
    if k = nf then begin
      let mr = Kernel_baseline.miss_ratio_of_function_order ~params program trace order in
      if mr < !best then best := mr;
      if mr > !worst then worst := mr
    end
    else
      for i = k to nf - 1 do
        let o = Array.copy order in
        let tmp = o.(k) in
        o.(k) <- o.(i);
        o.(i) <- tmp;
        permute (k + 1) o
      done
  in
  permute 0 (Array.init nf Fun.id);
  check_bit_equal "best = seed brute force" !best r.Optimal.best_miss_ratio;
  check_bit_equal "worst = seed brute force" !worst r.Optimal.worst_miss_ratio;
  check_bit_equal "best order replays through the seed evaluator"
    (Kernel_baseline.miss_ratio_of_function_order ~params program trace r.Optimal.best_order)
    r.Optimal.best_miss_ratio

let test_anneal_replays_through_seed_evaluator () =
  (* The in-place move/undo machinery must leave a genuine permutation
     whose reported ratio the seed evaluator reproduces. *)
  let program = List.hd (programs ()) in
  let trace = trace_of program in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let r = Anneal.search ~seed:21 ~steps:80 ~params program trace in
  let sorted = Array.copy r.Anneal.order in
  Array.sort compare sorted;
  check (Alcotest.array Alcotest.int) "permutation"
    (Array.init (Colayout_ir.Program.num_funcs program) Fun.id)
    sorted;
  check_bit_equal "reported ratio replays through the seed evaluator"
    (Kernel_baseline.miss_ratio_of_function_order ~params program trace r.Anneal.order)
    r.Anneal.miss_ratio;
  check Alcotest.bool "never worse than start" true
    (r.Anneal.miss_ratio <= r.Anneal.improved_from)

let test_search_batch_jobs_invariant () =
  let program = List.hd (programs ()) in
  let trace = trace_of program in
  let params = C.Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  let run ~jobs =
    U.Pool.with_pool ~jobs (fun pool ->
        let engine = Layout_eval.create ~pool ~params program trace in
        Anneal.search_batch ~seed:8 ~steps:12 ~width:6 engine)
  in
  let r1 = run ~jobs:1 in
  let r4 = run ~jobs:4 in
  check (Alcotest.array Alcotest.int) "same order at jobs 1 and 4" r1.Anneal.order
    r4.Anneal.order;
  check_bit_equal "same ratio at jobs 1 and 4" r1.Anneal.miss_ratio r4.Anneal.miss_ratio;
  check Alcotest.int "simulations reported" (1 + (12 * 6)) r1.Anneal.steps;
  check_bit_equal "batched result replays through the seed evaluator"
    (Kernel_baseline.miss_ratio_of_function_order ~params program trace r1.Anneal.order)
    r1.Anneal.miss_ratio

(* ------------------------------------------------------- validation *)

let test_rejects_bad_orders () =
  let program = List.hd (programs ()) in
  let trace = trace_of program in
  let params = List.hd geometries in
  let engine = Layout_eval.create ~params program trace in
  let nf = Layout_eval.num_funcs engine in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument
       (Printf.sprintf "Layout_eval: function order has 1 entries, expected %d" nf))
    (fun () -> ignore (Layout_eval.miss_ratio_of_order engine [| 0 |]));
  let dup = Array.init nf (fun i -> if i = nf - 1 then 0 else i) in
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Layout_eval: duplicate function id 0")
    (fun () -> ignore (Layout_eval.miss_ratio_of_order engine dup));
  let oob = Array.init nf (fun i -> if i = 0 then nf else i) in
  Alcotest.check_raises "out-of-range id"
    (Invalid_argument (Printf.sprintf "Layout_eval: bad function id %d" nf))
    (fun () -> ignore (Layout_eval.miss_ratio_of_order engine oob));
  (* A failed validation must not poison subsequent evaluations. *)
  let order = Array.init nf Fun.id in
  check_bit_equal "evaluates after rejection"
    (Kernel_baseline.miss_ratio_of_function_order ~params program trace order)
    (Layout_eval.miss_ratio_of_order engine order)

let test_rejects_foreign_trace () =
  let program = List.hd (programs ()) in
  let nb = Colayout_ir.Program.num_blocks program in
  let foreign =
    Colayout_trace.Trace.of_list ~num_symbols:(nb + 5) [ 0; nb + 1; 2 ]
  in
  Alcotest.check_raises "event beyond the block universe"
    (Invalid_argument
       (Printf.sprintf "Layout_eval.create: trace event %d is not a block id of %s" (nb + 1)
          (Colayout_ir.Program.name program)))
    (fun () ->
      ignore (Layout_eval.create ~params:(List.hd geometries) program foreign))

let () =
  Alcotest.run "layout_eval"
    [
      ( "differential",
        [
          Alcotest.test_case "function orders = seed across geometries" `Slow
            test_function_order_differential;
          Alcotest.test_case "block orders (with stubs) = seed" `Slow
            test_block_order_differential;
          Alcotest.test_case "shuffled orders exercise added jumps" `Quick
            test_block_orders_add_jumps;
        ] );
      ( "batch",
        [
          Alcotest.test_case "eval_batch jobs 1/4 = sequential" `Quick
            test_eval_batch_matches_sequential;
          Alcotest.test_case "eval_batch n < jobs builds <= n clones" `Quick
            test_eval_batch_small_batch_clones;
          Alcotest.test_case "search_batch invariant across jobs" `Quick
            test_search_batch_jobs_invariant;
        ] );
      ( "searches",
        [
          Alcotest.test_case "Optimal.search = seed brute force" `Quick
            test_optimal_search_engine_equivalence;
          Alcotest.test_case "Anneal replays through seed evaluator" `Quick
            test_anneal_replays_through_seed_evaluator;
        ] );
      ( "validation",
        [
          Alcotest.test_case "bad orders rejected, engine survives" `Quick
            test_rejects_bad_orders;
          Alcotest.test_case "foreign trace rejected at create" `Quick
            test_rejects_foreign_trace;
        ] );
    ]
