open Colayout_cache

let check = Alcotest.check

let test_params () =
  let p = Params.default_l1i in
  check Alcotest.int "sets" 128 p.Params.num_sets;
  check Alcotest.int "lines" 512 (Params.lines_total p);
  check Alcotest.int "line_of_addr" 2 (Params.line_of_addr p 128);
  check Alcotest.int "set wraps" 0 (Params.set_of_line p 128);
  check Alcotest.int "set_of_addr" 1 (Params.set_of_addr p 64);
  check (Alcotest.pair Alcotest.int Alcotest.int) "lines spanned" (1, 2)
    (Params.lines_spanned p ~addr:100 ~bytes:64);
  check (Alcotest.pair Alcotest.int Alcotest.int) "single line" (0, 0)
    (Params.lines_spanned p ~addr:0 ~bytes:64);
  check Alcotest.string "to_string" "32KB/4-way/64B (128 sets)" (Params.to_string p);
  check Alcotest.string "small to_string" "512B/1-way/64B (8 sets)"
    (Params.to_string (Params.make ~size_bytes:512 ~assoc:1 ~line_bytes:64));
  Alcotest.check_raises "non pow2" (Invalid_argument "Params.make: size must be a power of two")
    (fun () -> ignore (Params.make ~size_bytes:1000 ~assoc:4 ~line_bytes:64))

let test_cache_stats () =
  let s = Cache_stats.create ~threads:2 () in
  Cache_stats.record s ~thread:0 ~hit:true;
  Cache_stats.record s ~thread:0 ~hit:false;
  Cache_stats.record s ~thread:1 ~hit:false;
  Cache_stats.record_prefetch s;
  check Alcotest.int "accesses" 3 (Cache_stats.accesses s);
  check Alcotest.int "misses" 2 (Cache_stats.misses s);
  check Alcotest.int "hits" 1 (Cache_stats.hits s);
  check Alcotest.int "prefetches" 1 (Cache_stats.prefetches s);
  check (Alcotest.float 1e-9) "thread 0 ratio" 0.5 (Cache_stats.thread_miss_ratio s 0);
  check (Alcotest.float 1e-9) "thread 1 ratio" 1.0 (Cache_stats.thread_miss_ratio s 1);
  let s2 = Cache_stats.create ~threads:2 () in
  Cache_stats.record s2 ~thread:0 ~hit:false;
  Cache_stats.merge_into ~dst:s s2;
  check Alcotest.int "merged accesses" 4 (Cache_stats.accesses s)

let test_cache_stats_merged_evictions () =
  (* set_evictions is an absolute sync from the stats' own simulator;
     merge_into adds another run's evictions. The two must commute: syncing
     again after a merge must not erase the merged contribution. *)
  let a = Cache_stats.create () and b = Cache_stats.create () in
  Cache_stats.set_evictions a 5;
  Cache_stats.set_evictions b 3;
  check Alcotest.int "own evictions" 5 (Cache_stats.evictions a);
  Cache_stats.merge_into ~dst:a b;
  check Alcotest.int "merged evictions" 8 (Cache_stats.evictions a);
  (* The owning simulator re-syncs its (absolute, now larger) count. *)
  Cache_stats.set_evictions a 7;
  check Alcotest.int "re-sync keeps merged" 10 (Cache_stats.evictions a);
  (* Idempotent: syncing the same absolute value changes nothing. *)
  Cache_stats.set_evictions a 7;
  check Alcotest.int "sync idempotent" 10 (Cache_stats.evictions a)

(* 256 B / 2-way / 64 B lines: 2 sets, 4 lines of capacity. Even lines map
   to set 0, odd to set 1 — small enough to classify every miss by hand. *)
let classify_params = Params.make ~size_bytes:256 ~assoc:2 ~line_bytes:64

let run_classified lines =
  let c = Set_assoc.create classify_params in
  let sink = Profile_sink.create ~params:classify_params () in
  List.iter
    (fun line -> ignore (Set_assoc.access_line_profiled c sink ~thread:0 ~block:line line))
    lines;
  sink

let test_classify_cold () =
  (* First-ever touches only: every miss is cold. *)
  let sink = run_classified [ 0; 1; 2; 3 ] in
  check Alcotest.int "accesses" 4 (Profile_sink.accesses sink);
  check Alcotest.int "misses" 4 (Profile_sink.misses sink);
  check Alcotest.int "cold" 4 (Profile_sink.cold_misses sink);
  check Alcotest.int "capacity" 0 (Profile_sink.capacity_misses sink);
  check Alcotest.int "conflict" 0 (Profile_sink.conflict_misses sink)

let test_classify_conflict () =
  (* Lines 0, 2, 4 all map to set 0 (2 ways): the third evicts line 0 even
     though the cache (capacity 4) could hold all three. Re-touching 0 is a
     miss here but a hit in the fully-associative shadow — a conflict miss,
     by construction. *)
  let sink = run_classified [ 0; 2; 4; 0 ] in
  check Alcotest.int "accesses" 4 (Profile_sink.accesses sink);
  check Alcotest.int "misses" 4 (Profile_sink.misses sink);
  check Alcotest.int "cold" 3 (Profile_sink.cold_misses sink);
  check Alcotest.int "capacity" 0 (Profile_sink.capacity_misses sink);
  check Alcotest.int "conflict" 1 (Profile_sink.conflict_misses sink);
  (* The conflict is attributed to the block that re-missed (block=line 0
     here), with its access/miss counts intact. *)
  let row =
    List.find (fun r -> r.Profile_sink.block = 0) (Profile_sink.block_rows sink)
  in
  check Alcotest.int "block 0 accesses" 2 row.Profile_sink.b_accesses;
  check Alcotest.int "block 0 misses" 2 row.Profile_sink.b_misses;
  check Alcotest.int "block 0 cold" 1 row.Profile_sink.b_cold;
  check Alcotest.int "block 0 conflict" 1 row.Profile_sink.b_conflict

let test_classify_capacity () =
  (* A cyclic sweep over 8 lines — double the 4-line capacity — misses on
     every access in the second pass, in the shadow cache too (reuse
     distance 8 > 4): pure capacity misses, zero conflict. *)
  let sweep = List.init 8 Fun.id in
  let sink = run_classified (sweep @ sweep) in
  check Alcotest.int "accesses" 16 (Profile_sink.accesses sink);
  check Alcotest.int "misses" 16 (Profile_sink.misses sink);
  check Alcotest.int "cold" 8 (Profile_sink.cold_misses sink);
  check Alcotest.int "capacity" 8 (Profile_sink.capacity_misses sink);
  check Alcotest.int "conflict" 0 (Profile_sink.conflict_misses sink)

let test_sink_per_set () =
  let sink = run_classified [ 0; 2; 4; 0; 1 ] in
  check Alcotest.int "num_sets" 2 (Profile_sink.num_sets sink);
  let a0, m0, e0 = Profile_sink.set_counters sink ~set:0 in
  let a1, m1, e1 = Profile_sink.set_counters sink ~set:1 in
  check Alcotest.int "set0 accesses" 4 a0;
  check Alcotest.int "set0 misses" 4 m0;
  (* Set 0 saw lines 0,2,4,0 through 2 ways: evictions on the 3rd and 4th
     fills. Set 1 saw one cold fill of an empty way. *)
  check Alcotest.int "set0 evictions" 2 e0;
  check Alcotest.int "set1" 1 a1;
  check Alcotest.int "set1 misses" 1 m1;
  check Alcotest.int "set1 evictions" 0 e1;
  check Alcotest.int "set sums = totals" (Profile_sink.accesses sink) (a0 + a1);
  check Alcotest.int "eviction total" (Profile_sink.evictions sink) (e0 + e1)

let test_set_assoc_lru () =
  (* 1 set, 2 ways: a tiny cache with observable LRU. *)
  let p = Params.make ~size_bytes:128 ~assoc:2 ~line_bytes:64 in
  let c = Set_assoc.create p in
  check Alcotest.bool "cold miss" false (Set_assoc.access_line c 1);
  check Alcotest.bool "hit" true (Set_assoc.access_line c 1);
  check Alcotest.bool "second line" false (Set_assoc.access_line c 2);
  check Alcotest.bool "1 still resident" true (Set_assoc.access_line c 1);
  (* Insert 3: evicts LRU = 2. *)
  check Alcotest.bool "3 misses" false (Set_assoc.access_line c 3);
  check Alcotest.bool "2 evicted" false (Set_assoc.probe_line c 2);
  check Alcotest.bool "1 survived" true (Set_assoc.probe_line c 1);
  check Alcotest.int "occupancy" 2 (Set_assoc.occupancy c);
  Set_assoc.invalidate_all c;
  check Alcotest.int "after invalidate" 0 (Set_assoc.occupancy c)

let test_set_mapping_isolation () =
  let p = Params.make ~size_bytes:512 ~assoc:1 ~line_bytes:64 in
  (* 8 sets, direct-mapped: lines 0 and 8 collide; 0 and 1 do not. *)
  let c = Set_assoc.create p in
  ignore (Set_assoc.access_line c 0);
  ignore (Set_assoc.access_line c 1);
  check Alcotest.bool "no conflict different sets" true (Set_assoc.probe_line c 0);
  ignore (Set_assoc.access_line c 8);
  check Alcotest.bool "conflict same set" false (Set_assoc.probe_line c 0);
  check Alcotest.bool "line 1 untouched" true (Set_assoc.probe_line c 1)

let set_assoc_matches_fully_assoc =
  QCheck.Test.make
    ~name:"single-set set-assoc equals fully-associative LRU" ~count:100
    QCheck.(list (int_bound 10))
    (fun xs ->
      let p = Params.make ~size_bytes:(4 * 64) ~assoc:4 ~line_bytes:64 in
      (* All lines map to set 0 when we multiply by num_sets (=1 here). *)
      let sa = Set_assoc.create p in
      let fa = Fully_assoc.create ~capacity:4 in
      List.for_all (fun x -> Set_assoc.access_line sa x = Fully_assoc.access_line fa x) xs)

let test_fully_assoc_eviction () =
  let c = Fully_assoc.create ~capacity:2 in
  ignore (Fully_assoc.access_line c 1);
  ignore (Fully_assoc.access_line c 2);
  ignore (Fully_assoc.access_line c 1);
  (* MRU order: 1, 2. Adding 3 evicts 2. *)
  ignore (Fully_assoc.access_line c 3);
  check Alcotest.bool "2 evicted" false (Fully_assoc.access_line c 2);
  check (Alcotest.list Alcotest.int) "resident" [ 2; 3 ]
    (Fully_assoc.resident_lines c |> List.filteri (fun i _ -> i < 2));
  check Alcotest.int "occupancy" 2 (Fully_assoc.occupancy c)

let test_prefetch () =
  let p = Params.default_l1i in
  let c = Set_assoc.create p in
  let s = Cache_stats.create () in
  let pf = Prefetch.create ~degree:2 () in
  check Alcotest.int "degree" 2 (Prefetch.degree pf);
  Prefetch.on_miss pf c s 10;
  check Alcotest.int "prefetched" 2 (Cache_stats.prefetches s);
  check Alcotest.bool "line 11 filled" true (Set_assoc.probe_line c 11);
  check Alcotest.bool "line 12 filled" true (Set_assoc.probe_line c 12);
  check Alcotest.bool "line 10 NOT filled by prefetch" false (Set_assoc.probe_line c 10);
  (* Prefetching an already-resident line is not recounted. *)
  Prefetch.on_miss pf c s 10;
  check Alcotest.int "no double prefetch" 2 (Cache_stats.prefetches s)

let layout_of_blocks specs : Icache.layout =
  let addr = Array.map fst specs and bytes = Array.map snd specs in
  { Icache.addr; bytes }

let test_icache_solo () =
  let params = Params.default_l1i in
  (* Two blocks in the same line; one spanning two lines. *)
  let layout = layout_of_blocks [| (0, 32); (32, 32); (100, 64) |] in
  let trace = Colayout_util.Int_vec.of_list [ 0; 1; 2; 0; 1; 2 ] in
  let stats = Icache.solo ~params ~layout trace in
  (* Fetches: blk0 -> line 0 (miss); blk1 -> line 0 (hit); blk2 -> lines 1,2
     (2 misses); then all hits: 3 misses, 8 accesses. *)
  check Alcotest.int "accesses" 8 (Cache_stats.accesses stats);
  check Alcotest.int "misses" 3 (Cache_stats.misses stats)

let test_icache_lines_of_block () =
  let params = Params.default_l1i in
  let layout = layout_of_blocks [| (60, 10) |] in
  check (Alcotest.pair Alcotest.int Alcotest.int) "straddles" (0, 1)
    (Icache.lines_of_block ~params ~layout 0)

let test_icache_shared_threads_isolated_addresses () =
  let params = Params.default_l1i in
  let layout = layout_of_blocks [| (0, 64) |] in
  let t0 = Colayout_util.Int_vec.of_list [ 0; 0; 0; 0 ] in
  let t1 = Colayout_util.Int_vec.of_list [ 0; 0; 0; 0 ] in
  let stats = Icache.shared ~params ~layouts:(layout, layout) (t0, t1) in
  (* Same virtual line but different processes: each thread misses once. *)
  check Alcotest.int "thread0 misses" 1 (Cache_stats.thread_misses stats 0);
  check Alcotest.int "thread1 misses" 1 (Cache_stats.thread_misses stats 1);
  check Alcotest.bool "both ran" true
    (Cache_stats.thread_accesses stats 0 >= 4 && Cache_stats.thread_accesses stats 1 >= 4)

let test_icache_shared_rates () =
  let params = Params.default_l1i in
  let layout = layout_of_blocks [| (0, 64); (64, 64) |] in
  let mk () = Colayout_util.Int_vec.of_list (List.init 100 (fun i -> i mod 2)) in
  let stats = Icache.shared ~rates:(1.0, 0.25) ~params ~layouts:(layout, layout) (mk (), mk ()) in
  (* Both complete a pass regardless of rate. *)
  check Alcotest.bool "slow thread still completes" true (Cache_stats.thread_accesses stats 1 >= 100);
  Alcotest.check_raises "bad rate" (Invalid_argument "Icache.shared: rates must be positive")
    (fun () -> ignore (Icache.shared ~rates:(0.0, 1.0) ~params ~layouts:(layout, layout) (mk (), mk ())))

let test_icache_shared_contention () =
  let params = Params.make ~size_bytes:1024 ~assoc:2 ~line_bytes:64 in
  (* Working set of each thread = 8 lines; cache holds 16: alone each fits,
     together they collide in sets. *)
  let layout = layout_of_blocks (Array.init 8 (fun i -> (i * 64, 64))) in
  let mk () = Colayout_util.Int_vec.of_list (List.init 400 (fun i -> i mod 8)) in
  let solo = Icache.solo ~params ~layout (mk ()) in
  let shared = Icache.shared ~params ~layouts:(layout, layout) (mk (), mk ()) in
  (* The shared run may execute a handful of extra (hit) accesses past its
     first pass while the peer drains, so allow a sliver of slack. *)
  check Alcotest.bool "corun miss ratio >= solo" true
    (Cache_stats.thread_miss_ratio shared 0 >= Cache_stats.miss_ratio solo -. 0.005)

let () =
  Alcotest.run "cache"
    [
      ("params", [ Alcotest.test_case "geometry" `Quick test_params ]);
      ( "stats",
        [
          Alcotest.test_case "counters" `Quick test_cache_stats;
          Alcotest.test_case "merged evictions" `Quick test_cache_stats_merged_evictions;
        ] );
      ( "classify",
        [
          Alcotest.test_case "cold" `Quick test_classify_cold;
          Alcotest.test_case "conflict" `Quick test_classify_conflict;
          Alcotest.test_case "capacity" `Quick test_classify_capacity;
          Alcotest.test_case "per-set counters" `Quick test_sink_per_set;
        ] );
      ( "set_assoc",
        [
          Alcotest.test_case "lru" `Quick test_set_assoc_lru;
          Alcotest.test_case "set mapping" `Quick test_set_mapping_isolation;
          QCheck_alcotest.to_alcotest set_assoc_matches_fully_assoc;
        ] );
      ("fully_assoc", [ Alcotest.test_case "eviction" `Quick test_fully_assoc_eviction ]);
      ("prefetch", [ Alcotest.test_case "next line" `Quick test_prefetch ]);
      ( "icache",
        [
          Alcotest.test_case "solo" `Quick test_icache_solo;
          Alcotest.test_case "lines_of_block" `Quick test_icache_lines_of_block;
          Alcotest.test_case "shared isolation" `Quick test_icache_shared_threads_isolated_addresses;
          Alcotest.test_case "shared rates" `Quick test_icache_shared_rates;
          Alcotest.test_case "shared contention" `Quick test_icache_shared_contention;
        ] );
    ]
