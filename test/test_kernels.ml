(* Differential tests for the PR-1 packed-int kernels: the rewritten
   [Trg.build] (flat packed table + CSR finalization) and
   [Affinity.affine_pairs] (packed witness payloads) must produce results
   identical to the seed tuple-Hashtbl implementations, which live on in
   [Kernel_baseline] as oracles. Traces are randomized but seeded ([Prng]),
   and the windows cover the paper-relevant range up to w ≈ 512
   (32 KB / 64 B line). Also covers [Int_pair_tbl] itself against a
   [Hashtbl] model, and the new bounded/no-depth LRU-stack entry points. *)

open Colayout
open Colayout_trace
module U = Colayout_util

let check = Alcotest.check

(* Zipf-popularity trace: skewed like real block traces but with enough
   deep reuse to exercise large windows. *)
let random_trace ~seed ~num_symbols ~len =
  let prng = U.Prng.create ~seed in
  let t = Trace.create ~num_symbols () in
  for _ = 1 to len do
    Trace.push t (U.Prng.zipf prng ~n:num_symbols ~s:0.9)
  done;
  Trim.trim t

let windows = [ 2; 8; 64; 512 ]

let edge_list = Alcotest.list (Alcotest.triple Alcotest.int Alcotest.int Alcotest.int)

let pair_lst = Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)

(* ------------------------------------------------- TRG: packed vs seed *)

let test_trg_differential () =
  List.iter
    (fun w ->
      List.iter
        (fun seed ->
          let t = random_trace ~seed ~num_symbols:700 ~len:4_000 in
          let packed = Trg.build ~window:w t in
          let legacy = Kernel_baseline.trg_build ~window:w t in
          check edge_list
            (Printf.sprintf "edge sets identical (w=%d seed=%d)" w seed)
            (Kernel_baseline.trg_edges legacy) (Trg.edges packed);
          (* Point queries through the CSR binary search, both argument
             orders, plus degrees. *)
          let prng = U.Prng.create ~seed:(seed + 1) in
          for _ = 1 to 500 do
            let x = U.Prng.int prng 700 and y = U.Prng.int prng 700 in
            check Alcotest.int "weight" (Kernel_baseline.trg_weight legacy x y)
              (Trg.weight packed x y);
            check Alcotest.int "weight sym" (Trg.weight packed x y) (Trg.weight packed y x)
          done;
          for x = 0 to 699 do
            check Alcotest.int "degree" (Hashtbl.length legacy.Kernel_baseline.adj.(x))
              (Trg.degree packed x)
          done)
        [ 11; 42 ])
    windows

let test_trg_unbounded_differential () =
  let t = random_trace ~seed:7 ~num_symbols:200 ~len:2_000 in
  let packed = Trg.build t in
  let legacy = Kernel_baseline.trg_build t in
  check edge_list "unbounded edge sets identical" (Kernel_baseline.trg_edges legacy)
    (Trg.edges packed)

let test_trg_universe_guard () =
  let t = Trace.create ~num_symbols:(1 lsl 31) () in
  Alcotest.check_raises "2^31 symbols rejected"
    (Invalid_argument "Trg: num_symbols >= 2^31 exceeds the packed-key coordinate bound")
    (fun () -> ignore (Trg.build t))

(* -------------------------------------------- Affinity: packed vs seed *)

let test_affinity_differential () =
  List.iter
    (fun w ->
      List.iter
        (fun seed ->
          let t = random_trace ~seed ~num_symbols:700 ~len:4_000 in
          let packed = Affinity.affine_pairs t ~w in
          check pair_lst
            (Printf.sprintf "pair sets identical (w=%d seed=%d)" w seed)
            (Kernel_baseline.affine_pairs t ~w)
            (Affinity.pair_list packed))
        [ 11; 42 ])
    windows

let test_affinity_universe_guard () =
  let t = Trace.create ~num_symbols:(1 lsl 31) () in
  Alcotest.check_raises "2^31 symbols rejected"
    (Invalid_argument "Affinity: num_symbols >= 2^31 exceeds the packed-key coordinate bound")
    (fun () -> ignore (Affinity.affine_pairs t ~w:4))

(* The packed efficient algorithm must still agree with the naive oracle on
   small traces (the seed property, re-stated against the new kernels). *)
let packed_subset_of_naive =
  QCheck.Test.make ~name:"packed efficient affinity is a subset of Definition 3" ~count:100
    QCheck.(pair (int_range 1 6) (list_of_size Gen.(int_range 2 40) (int_bound 6)))
    (fun (w, xs) ->
      let t = Trim.trim (Trace.of_list ~num_symbols:7 xs) in
      QCheck.assume (Trace.length t >= 2);
      let eff = Affinity.affine_pairs t ~w in
      let exact = Affinity.affine_pairs_naive t ~w in
      List.for_all (fun (x, y) -> Affinity.is_affine exact x y) (Affinity.pair_list eff))

(* ------------------------------------------- Int_pair_tbl vs a Hashtbl *)

let test_pack_roundtrip () =
  let m = U.Int_pair_tbl.max_coord in
  List.iter
    (fun (x, y) ->
      let k = U.Int_pair_tbl.pack x y in
      check Alcotest.int "fst" x (U.Int_pair_tbl.fst_of k);
      check Alcotest.int "snd" y (U.Int_pair_tbl.snd_of k);
      check Alcotest.bool "non-negative" true (k >= 0))
    [ (0, 0); (1, 2); (m, m); (m, 0); (0, m); (12345, 67890) ]

let tbl_matches_model =
  QCheck.Test.make ~name:"Int_pair_tbl matches a Hashtbl model under random ops" ~count:200
    QCheck.(list (triple (int_bound 3) (int_bound 40) (int_range (-5) 50)))
    (fun ops ->
      let t = U.Int_pair_tbl.create ~capacity:2 () in
      let model : (int, int) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun (op, key, v) ->
          match op with
          | 0 -> (
            U.Int_pair_tbl.replace t key v;
            Hashtbl.replace model key v)
          | 1 ->
            let got = U.Int_pair_tbl.add_to t key v in
            let cur = Option.value ~default:0 (Hashtbl.find_opt model key) in
            Hashtbl.replace model key (cur + v);
            assert (got = cur + v)
          | 2 -> (
            U.Int_pair_tbl.remove t key;
            Hashtbl.remove model key)
          | _ ->
            assert (
              U.Int_pair_tbl.find t key ~default:min_int
              = Option.value ~default:min_int (Hashtbl.find_opt model key)))
        ops;
      U.Int_pair_tbl.length t = Hashtbl.length model
      && U.Int_pair_tbl.fold
           (fun k v ok -> ok && Hashtbl.find_opt model k = Some v)
           t true)

let test_tbl_negative_key_rejected () =
  let t = U.Int_pair_tbl.create () in
  Alcotest.check_raises "negative key" (Invalid_argument "Int_pair_tbl: negative key")
    (fun () -> U.Int_pair_tbl.replace t (-3) 1);
  check Alcotest.bool "mem negative" false (U.Int_pair_tbl.mem t (-3));
  check Alcotest.int "find negative" 0 (U.Int_pair_tbl.find t (-3) ~default:0)

(* --------------------------------------- Lru_stack bounded entry points *)

let test_access_bounded () =
  let s = Lru_stack.create () in
  List.iter (fun x -> ignore (Lru_stack.access s x)) [ 0; 1; 2; 3 ];
  (* Stack is now 3 2 1 0; symbol 0 sits at depth 4. *)
  check (Alcotest.option Alcotest.int) "too deep" None (Lru_stack.access_bounded s ~limit:3 0);
  (* The bounded miss still moved 0 to the top. *)
  check (Alcotest.option Alcotest.int) "moved to front" (Some 1)
    (Lru_stack.access_bounded s ~limit:8 0);
  check (Alcotest.option Alcotest.int) "within limit" (Some 4)
    (Lru_stack.access_bounded s ~limit:4 1);
  check (Alcotest.option Alcotest.int) "first access" None (Lru_stack.access_bounded s ~limit:8 9)

let test_touch () =
  let s = Lru_stack.create () in
  Lru_stack.touch s 5;
  Lru_stack.touch s 6;
  Lru_stack.touch s 5;
  check (Alcotest.list Alcotest.int) "touch orders like access" [ 5; 6 ] (Lru_stack.contents s);
  check Alcotest.int "depth" 2 (Lru_stack.depth s);
  check (Alcotest.option Alcotest.int) "access agrees" (Some 2) (Lru_stack.access s 6)

let () =
  Alcotest.run "kernels"
    [
      ( "trg-differential",
        [
          Alcotest.test_case "packed = seed across w" `Slow test_trg_differential;
          Alcotest.test_case "packed = seed unbounded" `Quick test_trg_unbounded_differential;
          Alcotest.test_case "2^31 guard" `Quick test_trg_universe_guard;
        ] );
      ( "affinity-differential",
        [
          Alcotest.test_case "packed = seed across w" `Slow test_affinity_differential;
          Alcotest.test_case "2^31 guard" `Quick test_affinity_universe_guard;
          QCheck_alcotest.to_alcotest packed_subset_of_naive;
        ] );
      ( "int-pair-tbl",
        [
          Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
          QCheck_alcotest.to_alcotest tbl_matches_model;
          Alcotest.test_case "negative keys" `Quick test_tbl_negative_key_rejected;
        ] );
      ( "lru-stack",
        [
          Alcotest.test_case "access_bounded" `Quick test_access_bounded;
          Alcotest.test_case "touch" `Quick test_touch;
        ] );
    ]
