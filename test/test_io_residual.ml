(* Tests for trace persistence (Trace_io) and residual code elimination. *)

open Colayout
open Colayout_trace
module W = Colayout_workloads
module E = Colayout_exec

let check = Alcotest.check

let tmp name = Filename.concat (Filename.get_temp_dir_name ()) ("colayout_test_" ^ name)

(* ------------------------------------------------------------- Trace_io *)

let test_varint_zigzag () =
  List.iter
    (fun n ->
      check Alcotest.int (Printf.sprintf "zigzag roundtrip %d" n) n
        (Trace_io.unzigzag (Trace_io.zigzag n)))
    [ 0; 1; -1; 63; -64; 1000000; -1000000; max_int / 4 ];
  check Alcotest.int "zigzag 0" 0 (Trace_io.zigzag 0);
  check Alcotest.int "zigzag -1" 1 (Trace_io.zigzag (-1));
  check Alcotest.int "zigzag 1" 2 (Trace_io.zigzag 1);
  let buf = Buffer.create 8 in
  Trace_io.write_varint buf 300;
  check Alcotest.int "varint 300 is 2 bytes" 2 (Buffer.length buf);
  Alcotest.check_raises "negative varint" (Invalid_argument "Trace_io.write_varint: negative")
    (fun () -> Trace_io.write_varint buf (-1))

let test_trace_roundtrip () =
  let path = tmp "roundtrip.trc" in
  let t = Trace.of_list ~num_symbols:100 [ 5; 99; 0; 5; 5; 42; 7 ] in
  Trace_io.save ~path t;
  let t' = Trace_io.load ~path in
  check Alcotest.bool "events equal" true (Trace.equal t t');
  check Alcotest.int "universe" 100 (Trace.num_symbols t');
  Sys.remove path

let trace_roundtrip_prop =
  QCheck.Test.make ~name:"trace save/load roundtrip" ~count:50
    QCheck.(list (int_bound 30))
    (fun xs ->
      let path = tmp "prop.trc" in
      let t = Trace.of_list ~num_symbols:31 xs in
      Trace_io.save ~path t;
      let t' = Trace_io.load ~path in
      Sys.remove path;
      Trace.equal t t' && Trace.num_symbols t' = 31)

let test_trace_io_real_workload () =
  let path = tmp "workload.trc" in
  let p = W.Gen.build { W.Gen.default_profile with pname = "io"; seed = 3 } in
  let r = E.Interp.run p { seed = 1; params = [||]; max_blocks = 30_000 } in
  Trace_io.save ~path r.E.Interp.bb_trace;
  let loaded = Trace_io.load ~path in
  check Alcotest.bool "30k-event roundtrip" true (Trace.equal r.E.Interp.bb_trace loaded);
  (* Delta encoding should beat 4 bytes/event comfortably. *)
  let size = (Unix.stat path).Unix.st_size in
  check Alcotest.bool "compact encoding" true (size < 3 * Trace.length loaded);
  Sys.remove path

let test_bad_magic () =
  let path = tmp "bad.trc" in
  let oc = open_out path in
  output_string oc "NOTATRACE";
  close_out oc;
  (match Trace_io.load ~path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Sys.remove path

(* The chunked streaming reader: header decoded eagerly, events handed
   out through a caller buffer whose size need not divide the stream —
   draining through odd-sized chunks must reproduce the eager load. *)
let test_streaming_reader_chunks () =
  let path = tmp "reader.trc" in
  let t =
    Trace.of_list ~num_symbols:257
      (List.init 10_000 (fun i -> ((i * i) + (i lsr 3)) mod 257))
  in
  Trace_io.save ~path t;
  let eager = Trace_io.load ~path in
  Trace_io.with_reader ~path (fun r ->
      check Alcotest.int "header num_symbols" 257 (Trace_io.reader_num_symbols r);
      check Alcotest.int "header length" (Trace.length t) (Trace_io.reader_length r);
      check Alcotest.int "nothing consumed yet" (Trace.length t)
        (Trace_io.reader_remaining r);
      let buf = Array.make 777 0 in
      let got = Trace.create ~num_symbols:257 () in
      let rec drain () =
        let n = Trace_io.read_chunk r buf in
        if n > 0 then begin
          for i = 0 to n - 1 do
            Trace.push got buf.(i)
          done;
          drain ()
        end
      in
      drain ();
      check Alcotest.int "stream drained" 0 (Trace_io.reader_remaining r);
      check Alcotest.int "read past end returns 0" 0 (Trace_io.read_chunk r buf);
      check Alcotest.bool "chunked == eager load" true (Trace.equal eager got));
  Sys.remove path

let test_fold_chunks () =
  let path = tmp "fold.trc" in
  let t = Trace.of_list ~num_symbols:97 (List.init 5_000 (fun i -> (i * 13) mod 97)) in
  Trace_io.save ~path t;
  let got = Trace.create ~num_symbols:97 () in
  let count =
    Trace_io.fold_chunks ~path ~chunk:123
      (fun c buf n ->
        for i = 0 to n - 1 do
          Trace.push got buf.(i)
        done;
        c + n)
      0
  in
  check Alcotest.int "fold sees every event" (Trace.length t) count;
  check Alcotest.bool "fold preserves order" true (Trace.equal t got);
  Sys.remove path

let test_reader_truncated_and_closed () =
  let path = tmp "trunc.trc" in
  let t = Trace.of_list ~num_symbols:50 (List.init 1_000 (fun i -> i mod 50)) in
  Trace_io.save ~path t;
  (* Chop the file mid-payload: the reader must fail loudly, not hand
     out a short stream. *)
  let bytes = In_channel.with_open_bin path In_channel.input_all in
  let oc = open_out_bin path in
  output_string oc (String.sub bytes 0 (String.length bytes / 2));
  close_out oc;
  (match
     Trace_io.fold_chunks ~path (fun c _ n -> c + n) 0
   with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on truncated stream");
  (* Reading through a closed reader is a programming error. *)
  Trace_io.save ~path t;
  let r = Trace_io.open_reader ~path in
  Trace_io.close_reader r;
  Trace_io.close_reader r;
  (match Trace_io.read_chunk r (Array.make 16 0) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument after close");
  Sys.remove path

let test_mapping_roundtrip () =
  let path = tmp "mapping.txt" in
  let names = [| "main.entry"; "f.loop"; "weird name with spaces" |] in
  Trace_io.save_mapping ~path ~names;
  let names' = Trace_io.load_mapping ~path in
  check (Alcotest.array Alcotest.string) "names" names names';
  Sys.remove path

let test_mapping_rejects_gaps () =
  let path = tmp "gaps.txt" in
  let oc = open_out path in
  output_string oc "0\ta\n2\tb\n";
  close_out oc;
  (match Trace_io.load_mapping ~path with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure");
  Sys.remove path

(* ------------------------------------------------------------- Residual *)

let workload =
  {
    W.Gen.default_profile with
    pname = "residual";
    seed = 21;
    phases = 2;
    funcs_per_phase = 3;
    shared_funcs = 1;
    cold_funcs = 4;
    cold_arms = 2;
    iters_per_phase = 25;
  }

let test_eliminate_removes_cold () =
  let p = W.Gen.build workload in
  let stripped, block_map, report = Residual.eliminate p in
  check Alcotest.bool "blocks removed" true (report.Residual.removed_blocks > 0);
  check Alcotest.bool "cold functions removed" true (report.Residual.removed_funcs >= 4);
  check Alcotest.bool "bytes removed" true (report.Residual.removed_bytes > 0);
  check Alcotest.int "kept = total - removed"
    (Colayout_ir.Program.num_blocks p - report.Residual.removed_blocks)
    report.Residual.kept_blocks;
  check Alcotest.int "stripped block count" report.Residual.kept_blocks
    (Colayout_ir.Program.num_blocks stripped);
  (* Map covers exactly the kept blocks. *)
  let mapped = Array.to_list block_map |> List.filter (fun x -> x >= 0) in
  check Alcotest.int "map cardinality" report.Residual.kept_blocks (List.length mapped);
  check (Alcotest.list Alcotest.int) "map is a bijection onto new ids"
    (List.init report.Residual.kept_blocks Fun.id)
    (List.sort compare mapped)

let test_eliminate_preserves_semantics () =
  let p = W.Gen.build workload in
  let stripped, block_map, _ = Residual.eliminate p in
  let input = { E.Interp.seed = 9; params = [||]; max_blocks = 20_000 } in
  let orig = E.Interp.run p input in
  let strp = E.Interp.run stripped input in
  let mapped =
    Residual.map_trace ~block_map orig.E.Interp.bb_trace
      ~num_symbols:(Colayout_ir.Program.num_blocks stripped)
  in
  check Alcotest.bool "identical executions" true
    (Trace.equal mapped strp.E.Interp.bb_trace);
  check Alcotest.int "same instruction count" orig.E.Interp.instr_count strp.E.Interp.instr_count

let test_eliminate_idempotent () =
  let p = W.Gen.build workload in
  let stripped, _, _ = Residual.eliminate p in
  let _, _, report2 = Residual.eliminate stripped in
  check Alcotest.int "second pass removes nothing" 0 report2.Residual.removed_blocks

let test_eliminate_keeps_everything_reachable () =
  (* A fully-reachable program loses nothing. *)
  let b = Colayout_ir.Builder.create ~name:"full" () in
  let f = Colayout_ir.Builder.func b "main" in
  let e = Colayout_ir.Builder.block b f "e" in
  let l = Colayout_ir.Builder.block b f "l" in
  Colayout_ir.Builder.set_body b e [] (Colayout_ir.Types.Jump l);
  Colayout_ir.Builder.set_body b l [ Colayout_ir.Types.Work 1 ] Colayout_ir.Types.Halt;
  let p = Colayout_ir.Builder.finish b in
  let _, _, report = Residual.eliminate p in
  check Alcotest.int "nothing removed" 0 report.Residual.removed_blocks

let test_map_trace_rejects_removed () =
  let p = W.Gen.build workload in
  let _, block_map, _ = Residual.eliminate p in
  (* Find a removed block and fabricate a trace hitting it. *)
  let removed = ref (-1) in
  Array.iteri (fun old new_ -> if new_ < 0 && !removed < 0 then removed := old) block_map;
  check Alcotest.bool "have a removed block" true (!removed >= 0);
  let t = Trace.of_list ~num_symbols:(Colayout_ir.Program.num_blocks p) [ !removed ] in
  (match Residual.map_trace ~block_map t ~num_symbols:10 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument")

let () =
  Alcotest.run "io_residual"
    [
      ( "trace_io",
        [
          Alcotest.test_case "varint/zigzag" `Quick test_varint_zigzag;
          Alcotest.test_case "roundtrip" `Quick test_trace_roundtrip;
          QCheck_alcotest.to_alcotest trace_roundtrip_prop;
          Alcotest.test_case "real workload" `Quick test_trace_io_real_workload;
          Alcotest.test_case "bad magic" `Quick test_bad_magic;
          Alcotest.test_case "streaming reader chunks" `Quick test_streaming_reader_chunks;
          Alcotest.test_case "fold_chunks" `Quick test_fold_chunks;
          Alcotest.test_case "truncated and closed" `Quick test_reader_truncated_and_closed;
          Alcotest.test_case "mapping roundtrip" `Quick test_mapping_roundtrip;
          Alcotest.test_case "mapping gaps" `Quick test_mapping_rejects_gaps;
        ] );
      ( "residual",
        [
          Alcotest.test_case "removes cold" `Quick test_eliminate_removes_cold;
          Alcotest.test_case "preserves semantics" `Quick test_eliminate_preserves_semantics;
          Alcotest.test_case "idempotent" `Quick test_eliminate_idempotent;
          Alcotest.test_case "keeps reachable" `Quick test_eliminate_keeps_everything_reachable;
          Alcotest.test_case "map rejects removed" `Quick test_map_trace_rejects_removed;
        ] );
    ]
