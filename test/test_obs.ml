(* Observability layer: Json / Metrics / Span / Fsutil units, PRNG
   differential tests against pre-refactor draw sequences, and the Ctx
   isolation + determinism + memo-consistency properties from the issue. *)

module U = Colayout_util
module H = Colayout_harness
module J = U.Json

let check = Alcotest.check

(* A deterministic nanosecond clock: returns 0, step, 2*step, ... *)
let fake_clock ?(step = 1000L) () =
  let tick = ref 0L in
  fun () ->
    let v = !tick in
    tick := Int64.add v step;
    v

(* ---------- Json ---------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("null", J.Null);
        ("t", J.Bool true);
        ("f", J.Bool false);
        ("int", J.Int (-42));
        ("float", J.Float 1.5);
        ("str", J.Str "a \"quoted\"\nline\t\\");
        ("arr", J.Arr [ J.Int 1; J.Str "x"; J.Arr []; J.Obj [] ]);
      ]
  in
  check Alcotest.bool "compact round-trip" true (J.parse (J.to_string v) = v);
  check Alcotest.bool "pretty round-trip" true (J.parse (J.to_string ~pretty:true v) = v)

let test_json_int_float_distinct () =
  check Alcotest.bool "3 is Int" true (J.parse "3" = J.Int 3);
  check Alcotest.bool "3.5 is Float" true (J.parse "3.5" = J.Float 3.5);
  check Alcotest.bool "-2e2 is Float" true (J.parse "-2e2" = J.Float (-200.))

let test_json_parse_errors () =
  let rejects s =
    match J.parse s with
    | exception J.Parse_error _ -> true
    | _ -> false
  in
  check Alcotest.bool "empty" true (rejects "");
  check Alcotest.bool "trailing garbage" true (rejects "{} x");
  check Alcotest.bool "unterminated string" true (rejects "\"abc");
  check Alcotest.bool "bad literal" true (rejects "treu");
  check Alcotest.bool "missing colon" true (rejects "{\"a\" 1}");
  check Alcotest.bool "unclosed array" true (rejects "[1, 2")

let test_json_accessors () =
  let v = J.parse {|{"a": {"b": [1, 2.5, "s"]}, "n": 7}|} in
  check Alcotest.bool "member chain" true
    (Option.bind (J.member "a" v) (J.member "b") <> None);
  check (Alcotest.option Alcotest.int) "to_int" (Some 7)
    (Option.bind (J.member "n" v) J.to_int);
  check (Alcotest.option (Alcotest.float 0.0)) "to_float on Int" (Some 7.0)
    (Option.bind (J.member "n" v) J.to_float);
  check (Alcotest.option Alcotest.int) "missing member" None
    (Option.bind (J.member "zz" v) J.to_int)

(* ---------- Metrics ---------- *)

let test_metrics_counters_gauges () =
  let m = U.Metrics.create () in
  let c = U.Metrics.counter m "a.count" in
  U.Metrics.incr c;
  U.Metrics.incr ~by:4 c;
  U.Metrics.add m "a.count" 5;
  check Alcotest.int "counter accumulates" 10 (U.Metrics.count c);
  check (Alcotest.option Alcotest.int) "find_counter" (Some 10)
    (U.Metrics.find_counter m "a.count");
  check (Alcotest.option Alcotest.int) "find_counter missing" None
    (U.Metrics.find_counter m "nope");
  U.Metrics.set_gauge m "g" 2.5;
  check Alcotest.bool "gauge listed" true (U.Metrics.gauges m = [ ("g", 2.5) ]);
  (* Same name yields the same underlying cell. *)
  let c' = U.Metrics.counter m "a.count" in
  U.Metrics.incr c';
  check Alcotest.int "handle aliases registry cell" 11 (U.Metrics.count c)

let test_metrics_timer_and_json () =
  let m = U.Metrics.create ~clock:(fake_clock ()) () in
  let r = U.Metrics.time m "work" (fun () -> 42) in
  check Alcotest.int "timer returns thunk value" 42 r;
  ignore (U.Metrics.time m "work" (fun () -> 0));
  (match U.Metrics.timers m with
  | [ ("work", 2, total) ] ->
    check Alcotest.bool "timer total positive" true (Int64.compare total 0L > 0)
  | other -> Alcotest.failf "unexpected timers: %d entries" (List.length other));
  (* Exception safety: the timer still records the failed call. *)
  (try U.Metrics.time m "work" (fun () -> failwith "boom") with Failure _ -> ());
  (match U.Metrics.timers m with
  | [ ("work", 3, _) ] -> ()
  | _ -> Alcotest.fail "timer lost a call on exception");
  U.Metrics.add m "z" 1;
  U.Metrics.add m "a" 2;
  let json = U.Metrics.to_json m in
  check (Alcotest.option Alcotest.string) "schema" (Some "colayout/metrics/v1")
    (Option.bind (J.member "schema" json) J.to_str);
  (* Snapshot JSON is itself parseable and key-sorted. *)
  let reparsed = J.parse (J.to_string ~pretty:true json) in
  (match J.member "counters" reparsed with
  | Some (J.Obj kvs) ->
    let keys = List.map fst kvs in
    check Alcotest.bool "counters sorted" true (keys = List.sort compare keys)
  | _ -> Alcotest.fail "no counters object");
  U.Metrics.reset m;
  check (Alcotest.option Alcotest.int) "reset zeroes counters" (Some 0)
    (U.Metrics.find_counter m "a")

(* Latency histograms: 62 binary-magnitude buckets, percentile = the
   upper bound (2^(i+1) - 1) of the bucket holding the requested rank. *)
let test_hist_observe_and_percentiles () =
  let m = U.Metrics.create () in
  let h = U.Metrics.histogram m "lat" in
  check (Alcotest.float 0.0) "empty percentile" 0.0 (U.Metrics.percentile h 0.99);
  for v = 1 to 10 do
    U.Metrics.observe h v
  done;
  check Alcotest.int "observations" 10 (U.Metrics.observations h);
  check Alcotest.int "total" 55 (U.Metrics.hist_total h);
  (* Buckets: {1} {2,3} {4..7} {8,9,10} = counts 1/2/4/3. Rank 1 lands in
     bucket 0 (bound 1), rank 5 in bucket 2 (bound 7), rank 10 in bucket
     3 (bound 15). *)
  check (Alcotest.float 0.0) "p10" 1.0 (U.Metrics.percentile h 0.1);
  check (Alcotest.float 0.0) "p50" 7.0 (U.Metrics.percentile h 0.5);
  check (Alcotest.float 0.0) "p95" 15.0 (U.Metrics.percentile h 0.95);
  (* Out-of-range p clamps; negative samples clamp to 0 and add nothing
     to the total. *)
  check (Alcotest.float 0.0) "p>1 clamps" 15.0 (U.Metrics.percentile h 2.0);
  U.Metrics.observe h (-5);
  check Alcotest.int "negative sample counted" 11 (U.Metrics.observations h);
  check Alcotest.int "negative sample adds 0" 55 (U.Metrics.hist_total h);
  (* [observe_ns] is a name-keyed alias for the same registry cell. *)
  U.Metrics.observe_ns m "lat" 100;
  check Alcotest.int "observe_ns aliases" 12 (U.Metrics.observations h);
  (* The factor-of-two accuracy contract, across magnitudes. *)
  List.iter
    (fun v ->
      let h1 = U.Metrics.histogram (U.Metrics.create ()) "x" in
      U.Metrics.observe h1 v;
      let p = U.Metrics.percentile h1 1.0 in
      check Alcotest.bool
        (Printf.sprintf "p100 within 2x of %d" v)
        true
        (p >= float_of_int v && p < 2.0 *. float_of_int v))
    [ 1; 2; 3; 5; 8; 1000; 65_535; 65_536; 1 lsl 40 ]

(* Merging per-domain histograms bucket-wise must give the pooled-sample
   percentiles: split a sample set across two registries, merge, compare
   against one registry that saw everything. *)
let test_hist_merge_equivalence () =
  let spread = [ 3; 900; 17; 2; 45_000; 8; 8; 129; 6; 1_000_000 ] in
  let pooled = U.Metrics.create () in
  List.iter (U.Metrics.observe_ns pooled "lat") spread;
  let a = U.Metrics.create () and b = U.Metrics.create () in
  List.iteri
    (fun i v -> U.Metrics.observe_ns (if i mod 2 = 0 then a else b) "lat" v)
    spread;
  U.Metrics.merge ~into:a b;
  let ha = U.Metrics.histogram a "lat" and hp = U.Metrics.histogram pooled "lat" in
  check Alcotest.int "merged observations" (U.Metrics.observations hp)
    (U.Metrics.observations ha);
  check Alcotest.int "merged total" (U.Metrics.hist_total hp) (U.Metrics.hist_total ha);
  List.iter
    (fun p ->
      check (Alcotest.float 0.0)
        (Printf.sprintf "p%g equal after merge" (p *. 100.0))
        (U.Metrics.percentile hp p) (U.Metrics.percentile ha p))
    [ 0.0; 0.5; 0.9; 0.95; 0.99; 1.0 ];
  (* Empty source histograms must not materialize in the destination. *)
  let c = U.Metrics.create () in
  ignore (U.Metrics.histogram c "phantom");
  U.Metrics.merge ~into:a c;
  check Alcotest.bool "empty histogram not merged" false
    (List.mem_assoc "phantom" (U.Metrics.histograms a))

let test_hist_reset_and_json () =
  let m = U.Metrics.create () in
  U.Metrics.observe_ns m "lat" 5;
  U.Metrics.observe_ns m "lat" 900;
  let json = U.Metrics.to_json m in
  (match J.member "histograms" json with
  | Some (J.Obj [ ("lat", lat) ]) ->
    check (Alcotest.option Alcotest.int) "count" (Some 2)
      (Option.bind (J.member "count" lat) J.to_int);
    check (Alcotest.option Alcotest.int) "total" (Some 905)
      (Option.bind (J.member "total" lat) J.to_int);
    check (Alcotest.option (Alcotest.float 0.0)) "p50" (Some 7.0)
      (Option.bind (J.member "p50" lat) J.to_float);
    (match Option.bind (J.member "buckets" lat) J.to_list with
    | Some l -> check Alcotest.int "two occupied buckets" 2 (List.length l)
    | None -> Alcotest.fail "no buckets array")
  | _ -> Alcotest.fail "expected one histogram in to_json");
  (* Reset zeroes in place: cached handles keep pointing at live cells. *)
  let h = U.Metrics.histogram m "lat" in
  U.Metrics.reset m;
  check Alcotest.int "reset zeroes observations" 0 (U.Metrics.observations h);
  check (Alcotest.float 0.0) "reset zeroes percentiles" 0.0 (U.Metrics.percentile h 0.5);
  U.Metrics.observe h 3;
  check Alcotest.int "handle still live after reset" 1 (U.Metrics.observations h)

(* ---------- Span ---------- *)

let test_span_nesting () =
  let t = U.Span.create ~clock:(fake_clock ()) () in
  let r =
    U.Span.with_span t ~cat:"outer" "a" (fun () ->
        U.Span.with_span t ~cat:"inner" "b" (fun () -> 7))
  in
  check Alcotest.int "value threads through" 7 r;
  match U.Span.spans t with
  | [ b; a ] ->
    (* Completion order: inner first. *)
    check Alcotest.string "inner name" "b" b.U.Span.name;
    check Alcotest.int "inner depth" 1 b.U.Span.depth;
    check Alcotest.int "outer depth" 0 a.U.Span.depth;
    (* clock: epoch=0, a start=1000, b start=2000, b end=3000, a end=4000 *)
    check Alcotest.bool "inner dur" true (b.U.Span.dur_ns = 1000L);
    check Alcotest.bool "outer dur" true (a.U.Span.dur_ns = 3000L);
    check Alcotest.bool "outer contains inner" true
      (Int64.compare a.U.Span.start_ns b.U.Span.start_ns < 0)
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_exception_safety () =
  let t = U.Span.create ~clock:(fake_clock ()) () in
  (try U.Span.with_span t "fails" (fun () -> failwith "boom")
   with Failure _ -> ());
  check Alcotest.int "span recorded despite raise" 1 (U.Span.count t);
  (* Depth is restored so the next span is top-level again. *)
  U.Span.with_span t "next" (fun () -> ());
  match U.Span.spans t with
  | [ _; next ] -> check Alcotest.int "depth restored" 0 next.U.Span.depth
  | _ -> Alcotest.fail "expected 2 spans"

let test_span_aggregate_and_categories () =
  let t = U.Span.create ~clock:(fake_clock ()) () in
  U.Span.with_span t ~cat:"sim" "run" (fun () ->
      U.Span.with_span t ~cat:"sim" "step" (fun () -> ());
      U.Span.with_span t ~cat:"io" "write" (fun () -> ()));
  U.Span.with_span t ~cat:"sim" "run" (fun () -> ());
  (match U.Span.aggregate t with
  | [ ("io", "write", 1, _); ("sim", "run", 2, _); ("sim", "step", 1, _) ] -> ()
  | agg -> Alcotest.failf "unexpected aggregate: %d rows" (List.length agg));
  (* by_category must not double-count "step" inside "run" (both cat sim),
     but "write" (cat io, nested under sim) counts fully. *)
  let cats = U.Span.by_category t in
  let total cat = Option.value ~default:(-1L) (List.assoc_opt cat cats) in
  (* run #1 spans clock 1000..6000 (dur 5000), run #2 6000..7000 wait —
     recompute: epoch=0; run1 start=1000; step 2000..3000; write 4000..5000;
     run1 end=6000 (dur 5000); run2 7000..8000 (dur 1000). *)
  check Alcotest.bool "sim total excludes nested sim" true (total "sim" = 6000L);
  check Alcotest.bool "io total" true (total "io" = 1000L)

let test_span_chrome_json () =
  let t = U.Span.create ~clock:(fake_clock ()) () in
  U.Span.with_span t ~cat:"c" "outer" (fun () ->
      U.Span.with_span t ~cat:"c" "inner" (fun () -> ()));
  let json = U.Span.to_chrome_json t in
  let reparsed = J.parse (J.to_string ~pretty:true json) in
  match Option.bind (J.member "traceEvents" reparsed) J.to_list with
  | Some events ->
    check Alcotest.int "two events" 2 (List.length events);
    List.iter
      (fun ev ->
        let field k = Option.bind (J.member k ev) J.to_int in
        check Alcotest.bool "ts non-negative" true (Option.get (field "ts") >= 0);
        check Alcotest.bool "dur non-negative" true (Option.get (field "dur") >= 0);
        check (Alcotest.option Alcotest.string) "complete event" (Some "X")
          (Option.bind (J.member "ph" ev) J.to_str))
      events
  | None -> Alcotest.fail "no traceEvents"

(* ---------- Obs snapshot ring ---------- *)

let test_obs_ring_and_drop () =
  let o = U.Obs.create ~capacity:3 ~clock:(fake_clock ()) () in
  check Alcotest.int "capacity" 3 (U.Obs.capacity o);
  for i = 0 to 4 do
    U.Obs.record o ~label:"tick" [ ("i", J.Int i) ]
  done;
  check Alcotest.int "recorded counts everything" 5 (U.Obs.recorded o);
  check Alcotest.int "dropped = recorded - resident" 2 (U.Obs.dropped o);
  match U.Obs.snapshots o with
  | [ a; b; c ] ->
    (* Oldest-first, dense seqs surviving the drops, monotone stamps. *)
    check (Alcotest.list Alcotest.int) "seqs dense" [ 2; 3; 4 ]
      [ a.U.Obs.seq; b.U.Obs.seq; c.U.Obs.seq ];
    check Alcotest.bool "timestamps monotone" true
      (Int64.compare a.U.Obs.ts_ns b.U.Obs.ts_ns < 0
      && Int64.compare b.U.Obs.ts_ns c.U.Obs.ts_ns < 0);
    check (Alcotest.option Alcotest.int) "payload survives" (Some 2)
      (Option.bind (J.member "i" (U.Obs.snapshot_json a)) J.to_int)
  | l -> Alcotest.failf "expected 3 resident snapshots, got %d" (List.length l)

let test_obs_stream_and_jsonl () =
  let o = U.Obs.create ~capacity:8 ~clock:(fake_clock ()) () in
  let streamed = ref [] in
  U.Obs.set_stream o (Some (fun line -> streamed := line :: !streamed));
  U.Obs.record o ~label:"a" [ ("x", J.Int 1) ];
  U.Obs.record o ~label:"b" [ ("x", J.Int 2) ];
  U.Obs.set_stream o None;
  U.Obs.record o ~label:"c" [];
  (* The sink saw exactly the snapshots recorded while attached, in
     order, each a parseable colayout/obs/v1 line. *)
  let lines = List.rev !streamed in
  check Alcotest.int "two streamed lines" 2 (List.length lines);
  List.iteri
    (fun i line ->
      let j = J.parse line in
      check (Alcotest.option Alcotest.string) "schema" (Some U.Obs.schema)
        (Option.bind (J.member "schema" j) J.to_str);
      check (Alcotest.option Alcotest.int) "seq" (Some i)
        (Option.bind (J.member "seq" j) J.to_int))
    lines;
  (* to_jsonl covers everything resident, including the unstreamed tail. *)
  let all = String.split_on_char '\n' (U.Obs.to_jsonl o) in
  check Alcotest.int "three jsonl lines" 3 (List.length all);
  check
    (Alcotest.option Alcotest.string)
    "last label" (Some "c")
    (Option.bind (J.member "label" (J.parse (List.nth all 2))) J.to_str)

let test_obs_field_helpers () =
  let m = U.Metrics.create ~clock:(fake_clock ()) () in
  U.Metrics.add m "work.done" 3;
  U.Metrics.set_gauge m "load" 0.5;
  U.Metrics.observe_ns m "lat" 5;
  U.Metrics.observe_ns m "lat" 900;
  let fields = U.Obs.metrics_fields m in
  let inside group key =
    Option.bind (List.assoc_opt group fields) (J.member key)
  in
  check (Alcotest.option Alcotest.int) "counter verbatim" (Some 3)
    (Option.bind (inside "counters" "work.done") J.to_int);
  check
    (Alcotest.option (Alcotest.float 0.0))
    "gauge verbatim" (Some 0.5)
    (Option.bind (inside "gauges" "load") J.to_float);
  (match inside "histograms" "lat" with
  | Some h ->
    check (Alcotest.option Alcotest.int) "hist count" (Some 2)
      (Option.bind (J.member "count" h) J.to_int);
    check Alcotest.bool "hist p95 present" true (J.member "p95_ns" h <> None)
  | None -> Alcotest.fail "histogram summary missing");
  (* gc_fields: one "gc" object with non-negative basics. *)
  match U.Obs.gc_fields () with
  | [ ("gc", gc) ] ->
    List.iter
      (fun k ->
        match J.member k gc with
        | Some (J.Int n) -> check Alcotest.bool (k ^ " non-negative") true (n >= 0)
        | Some (J.Float f) -> check Alcotest.bool (k ^ " non-negative") true (f >= 0.0)
        | _ -> Alcotest.failf "gc.%s missing" k)
      [ "minor_words"; "major_words"; "minor_collections"; "compactions"; "heap_words" ]
  | _ -> Alcotest.fail "expected exactly one gc field"

(* ---------- Fsutil ---------- *)

let test_mkdir_p () =
  let root = Filename.concat (Filename.get_temp_dir_name ()) "colayout_obs_test" in
  let nested = Filename.concat (Filename.concat root "a/b") "c" in
  U.Fsutil.mkdir_p nested;
  check Alcotest.bool "nested dir exists" true
    (Sys.file_exists nested && Sys.is_directory nested);
  (* Idempotent on existing directories. *)
  U.Fsutil.mkdir_p nested;
  U.Fsutil.mkdir_p root;
  check Alcotest.bool "still a dir" true (Sys.is_directory nested)

(* ---------- PRNG differential tests ----------

   The zipf CDF memo moved from a module-global table into Prng.t. These
   sequences were captured from the pre-refactor implementation; they pin
   down that per-instance caching changes no drawn value. *)

let draws prng ~n ~s k = List.init k (fun _ -> U.Prng.zipf prng ~n ~s)

let test_zipf_sequence_unchanged () =
  let p = U.Prng.create ~seed:42 in
  check (Alcotest.list Alcotest.int) "seed 42, n=50, s=1.2"
    [ 9; 0; 0; 1; 0; 20; 0; 13; 1; 5; 0; 2 ]
    (draws p ~n:50 ~s:1.2 12);
  let q = U.Prng.create ~seed:123 in
  check (Alcotest.list Alcotest.int) "seed 123, n=4096, s=0.9"
    [ 612; 3564; 1726; 531; 528; 460 ]
    (draws q ~n:4096 ~s:0.9 6)

let test_zipf_instances_independent () =
  (* Two same-seeded instances interleaved draw identical values: the CDF
     memo is derived data, so per-instance tables can't skew streams. *)
  let a = U.Prng.create ~seed:7 and b = U.Prng.create ~seed:7 in
  let pairs =
    List.init 8 (fun _ -> (U.Prng.zipf a ~n:10 ~s:0.9, U.Prng.zipf b ~n:10 ~s:0.9))
  in
  List.iter (fun (x, y) -> check Alcotest.int "interleaved equal" x y) pairs;
  check (Alcotest.list Alcotest.int) "seed 7 values"
    [ 1; 0; 7; 2; 1; 0; 1; 1 ]
    (List.map fst pairs);
  (* A copy taken mid-stream replays the original exactly, including zipf
     draws whose CDF the copy has not cached yet. *)
  let p = U.Prng.create ~seed:99 in
  ignore (draws p ~n:50 ~s:1.2 3);
  let c = U.Prng.copy p in
  check (Alcotest.list Alcotest.int) "copy replays original"
    (draws p ~n:50 ~s:1.2 5)
    (draws c ~n:50 ~s:1.2 5)

(* ---------- Ctx isolation, determinism, memo consistency ---------- *)

let two_experiments = [ "intro"; "model" ]

let run_ctx () =
  let ctx = H.Ctx.create ~scale:H.Ctx.Fast () in
  ignore (H.Registry.run_by_ids ctx two_experiments);
  ctx

let memo_tables =
  [
    "programs"; "ref_results"; "analyses"; "layouts"; "solo_cache";
    "corun_cache"; "smt_solo_cache"; "smt_corun_cache";
  ]

let test_ctx_two_experiment_run () =
  let ctx1 = run_ctx () in
  let snap1 = U.Metrics.counters (H.Ctx.metrics ctx1) in
  let ctx2 = run_ctx () in
  (* Determinism: two fresh contexts doing identical work take identical
     metrics snapshots (counter set and values). *)
  check Alcotest.bool "snapshots identical" true
    (snap1 = U.Metrics.counters (H.Ctx.metrics ctx2));
  (* Isolation: running ctx2 did not touch ctx1's registry... *)
  check Alcotest.bool "ctx1 unchanged by ctx2" true
    (snap1 = U.Metrics.counters (H.Ctx.metrics ctx1));
  (* ...and memoized values are per-context, not shared through a global. *)
  check Alcotest.bool "programs are distinct values" false
    (H.Ctx.program ctx1 "403.gcc" == H.Ctx.program ctx2 "403.gcc");
  (* Memo consistency: hits + misses = lookups for every table. *)
  let count ctx name =
    Option.value ~default:0 (U.Metrics.find_counter (H.Ctx.metrics ctx) name)
  in
  List.iter
    (fun tbl ->
      let pre s = Printf.sprintf "ctx.memo.%s.%s" tbl s in
      check Alcotest.int
        (Printf.sprintf "%s hits+misses=lookups" tbl)
        (count ctx1 (pre "lookups"))
        (count ctx1 (pre "hits") + count ctx1 (pre "misses")))
    memo_tables;
  (* The two-experiment run actually exercised the memo layer. *)
  let total suffix =
    List.fold_left (fun acc tbl -> acc + count ctx1 (Printf.sprintf "ctx.memo.%s.%s" tbl suffix)) 0 memo_tables
  in
  check Alcotest.bool "some hits" true (total "hits" > 0);
  check Alcotest.bool "some misses" true (total "misses" > 0);
  (* Spans: one per experiment, plus optimizer stages underneath. *)
  let names = List.map (fun s -> s.U.Span.name) (U.Span.spans (H.Ctx.spans ctx1)) in
  List.iter
    (fun id -> check Alcotest.bool ("span for " ^ id) true (List.mem ("exp:" ^ id) names))
    two_experiments;
  check Alcotest.bool "analyze spans present" true
    (List.exists (fun n -> String.length n > 8 && String.sub n 0 8 = "analyze:") names)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "int-float" `Quick test_json_int_float_distinct;
          Alcotest.test_case "parse-errors" `Quick test_json_parse_errors;
          Alcotest.test_case "accessors" `Quick test_json_accessors;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters-gauges" `Quick test_metrics_counters_gauges;
          Alcotest.test_case "timer-json" `Quick test_metrics_timer_and_json;
          Alcotest.test_case "hist-percentiles" `Quick test_hist_observe_and_percentiles;
          Alcotest.test_case "hist-merge" `Quick test_hist_merge_equivalence;
          Alcotest.test_case "hist-reset-json" `Quick test_hist_reset_and_json;
        ] );
      ( "span",
        [
          Alcotest.test_case "nesting" `Quick test_span_nesting;
          Alcotest.test_case "exception-safety" `Quick test_span_exception_safety;
          Alcotest.test_case "aggregate" `Quick test_span_aggregate_and_categories;
          Alcotest.test_case "chrome-json" `Quick test_span_chrome_json;
        ] );
      ( "obs-ring",
        [
          Alcotest.test_case "ring-drop-oldest" `Quick test_obs_ring_and_drop;
          Alcotest.test_case "stream-jsonl" `Quick test_obs_stream_and_jsonl;
          Alcotest.test_case "field-helpers" `Quick test_obs_field_helpers;
        ] );
      ("fsutil", [ Alcotest.test_case "mkdir_p" `Quick test_mkdir_p ]);
      ( "prng",
        [
          Alcotest.test_case "zipf-unchanged" `Quick test_zipf_sequence_unchanged;
          Alcotest.test_case "zipf-independent" `Quick test_zipf_instances_independent;
        ] );
      ( "ctx",
        [ Alcotest.test_case "two-experiment-run" `Slow test_ctx_two_experiment_run ] );
    ]
