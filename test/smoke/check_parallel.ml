(* Parallel-harness smoke validator, two modes:

   [check_parallel bench BENCH_parallel.json] — the bench's
   parallel-scaling manifest conforms to colayout/bench-parallel/v1:
   wall-clocked runs for jobs 1, 2 and 4, positive durations, one digest
   shared by every run (the determinism contract), and a speedup entry
   per multi-job run.

   [check_parallel csv-equal DIR1 DIR2] — two `repro run --csv` output
   directories (a jobs=1 and a jobs=N run of the same experiments) hold
   byte-identical files. *)

module J = Colayout_util.Json

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("check_parallel: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  let text = really_input_string ic (in_channel_length ic) in
  close_in ic;
  text

let check_bench path =
  let json =
    match J.parse (read_file path) with
    | v -> v
    | exception J.Parse_error (pos, msg) -> fail "%s does not parse: %s at byte %d" path msg pos
  in
  (match Option.bind (J.member "schema" json) J.to_str with
  | Some "colayout/bench-parallel/v1" -> ()
  | _ -> fail "%s: wrong or missing schema" path);
  (match Option.bind (J.member "identical_tables" json) J.to_bool with
  | Some true -> ()
  | _ -> fail "%s: identical_tables is not true — jobs counts disagreed" path);
  let runs =
    match Option.bind (J.member "runs" json) J.to_list with
    | Some (_ :: _ as runs) -> runs
    | _ -> fail "%s: no runs" path
  in
  let seen =
    List.map
      (fun run ->
        let jobs =
          match Option.bind (J.member "jobs" run) J.to_int with
          | Some j -> j
          | None -> fail "%s: run without jobs" path
        in
        (match Option.bind (J.member "wall_ns" run) J.to_int with
        | Some ns when ns > 0 -> ()
        | _ -> fail "%s: run jobs=%d has a non-positive wall_ns" path jobs);
        (match Option.bind (J.member "digest" run) J.to_str with
        | Some d when String.length d > 0 -> ()
        | _ -> fail "%s: run jobs=%d has no digest" path jobs);
        jobs)
      runs
  in
  List.iter
    (fun jobs ->
      if not (List.mem jobs seen) then fail "%s: no run for jobs=%d" path jobs)
    [ 1; 2; 4 ];
  let speedup =
    match J.member "speedup" json with
    | Some (J.Obj kvs) -> kvs
    | _ -> fail "%s: no speedup object" path
  in
  List.iter
    (fun jobs ->
      let key = Printf.sprintf "jobs%d" jobs in
      match List.assoc_opt key speedup with
      | Some v ->
        (match J.to_float v with
        | Some s when s > 0.0 -> ()
        | _ -> fail "%s: speedup.%s is not a positive number" path key)
      | None -> fail "%s: speedup.%s missing" path key)
    [ 2; 4 ];
  Printf.printf "check_parallel: %s ok (%d runs)\n" path (List.length runs)

let check_csv_equal dir1 dir2 =
  let listing dir =
    match Sys.readdir dir with
    | files ->
      Array.sort compare files;
      Array.to_list files
    | exception Sys_error e -> fail "cannot list %s: %s" dir e
  in
  let a = listing dir1 and b = listing dir2 in
  if a <> b then
    fail "%s and %s hold different file sets (%d vs %d files)" dir1 dir2 (List.length a)
      (List.length b);
  if a = [] then fail "%s is empty" dir1;
  List.iter
    (fun f ->
      let pa = Filename.concat dir1 f and pb = Filename.concat dir2 f in
      if read_file pa <> read_file pb then fail "%s differs between %s and %s" f dir1 dir2)
    a;
  Printf.printf "check_parallel: %s == %s (%d files byte-identical)\n" dir1 dir2
    (List.length a)

let () =
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | [ _; "csv-equal"; dir1; dir2 ] -> check_csv_equal dir1 dir2
  | _ ->
    prerr_endline "usage: check_parallel bench FILE | check_parallel csv-equal DIR1 DIR2";
    exit 2
