(* Parallel-harness smoke validator, two modes:

   [check_parallel bench BENCH_parallel.json] — the bench's
   parallel-scaling manifest conforms to colayout/bench-parallel/v1:
   wall-clocked runs for jobs 1, 2 and 4, positive durations, one digest
   shared by every run (the determinism contract), and a speedup entry
   per multi-job run. Speedup magnitude is gated on the recorded
   cores_available: on a multicore host the best multi-job run must not be
   slower than sequential; on a single-core host (CI containers) domains
   only add scheduling overhead, so speedups merely have to be positive.

   [check_parallel csv-equal DIR1 DIR2] — two `repro run --csv` output
   directories (a jobs=1 and a jobs=N run of the same experiments) hold
   byte-identical files. *)

module J = Colayout_util.Json
open Smoke_check

let check_bench path =
  let json = parse path in
  require_schema json ~path "colayout/bench-parallel/v1";
  if not (get_bool json ~path "identical_tables") then
    fail "%s: identical_tables is not true — jobs counts disagreed" path;
  let runs =
    match get_list json ~path "runs" with
    | [] -> fail "%s: no runs" path
    | runs -> runs
  in
  let seen =
    List.map
      (fun run ->
        let jobs = get_int run "jobs" in
        (match Option.bind (J.member "wall_ns" run) J.to_int with
        | Some ns when ns > 0 -> ()
        | _ -> fail "%s: run jobs=%d has a non-positive wall_ns" path jobs);
        (match Option.bind (J.member "digest" run) J.to_str with
        | Some d when String.length d > 0 -> ()
        | _ -> fail "%s: run jobs=%d has no digest" path jobs);
        jobs)
      runs
  in
  List.iter
    (fun jobs ->
      if not (List.mem jobs seen) then fail "%s: no run for jobs=%d" path jobs)
    [ 1; 2; 4 ];
  let speedup = get_obj json ~path "speedup" in
  let speedups =
    List.map
      (fun jobs ->
        let key = Printf.sprintf "jobs%d" jobs in
        match List.assoc_opt key speedup with
        | Some v ->
          (match J.to_float v with
          | Some s when s > 0.0 -> s
          | _ -> fail "%s: speedup.%s is not a positive number" path key)
        | None -> fail "%s: speedup.%s missing" path key)
      [ 2; 4 ]
  in
  (* The expectation scales with the recorded host width, not the CI host's
     luck: with >= 2 cores the pool must at least break even somewhere;
     with 1 core there is nothing to win and positivity is all we ask. *)
  let best = List.fold_left max 0.0 speedups in
  let cores = cores_gate json ~path ~what:"best speedup" ~floor:1.0 best in
  Printf.printf "check_parallel: %s ok (%d runs, %d cores, best speedup %.2fx)\n" path
    (List.length runs) cores best

let check_csv_equal dir1 dir2 =
  let listing dir =
    match Sys.readdir dir with
    | files ->
      Array.sort compare files;
      Array.to_list files
    | exception Sys_error e -> fail "cannot list %s: %s" dir e
  in
  let a = listing dir1 and b = listing dir2 in
  if a <> b then
    fail "%s and %s hold different file sets (%d vs %d files)" dir1 dir2 (List.length a)
      (List.length b);
  if a = [] then fail "%s is empty" dir1;
  List.iter
    (fun f ->
      let pa = Filename.concat dir1 f and pb = Filename.concat dir2 f in
      if read_file pa <> read_file pb then fail "%s differs between %s and %s" f dir1 dir2)
    a;
  Printf.printf "check_parallel: %s == %s (%d files byte-identical)\n" dir1 dir2
    (List.length a)

let () =
  set_tool "check_parallel";
  match Array.to_list Sys.argv with
  | [ _; "bench"; path ] -> check_bench path
  | [ _; "csv-equal"; dir1; dir2 ] -> check_csv_equal dir1 dir2
  | _ ->
    prerr_endline "usage: check_parallel bench FILE | check_parallel csv-equal DIR1 DIR2";
    exit 2
